package cdb_test

import (
	"testing"

	cdb "repro"
)

func TestParseRelationFacade(t *testing.T) {
	r, err := cdb.ParseRelation(`Tri(x, y) := { x >= 0, y >= 0, x + y <= 1 }`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "Tri" || !r.Contains(cdb.Vector{0.2, 0.2}) {
		t.Error("ParseRelation facade wrong")
	}
	// With a schema.
	schema := cdb.Schema{"Tri": r}
	p, err := cdb.ParseRelation(`P(x) := exists y. Tri(x, y)`, schema)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Contains(cdb.Vector{0.5}) || p.Contains(cdb.Vector{2}) {
		t.Error("schema-aware ParseRelation wrong")
	}
}

func TestParseFormulaFacade(t *testing.T) {
	f, err := cdb.ParseFormula(`x <= 1 & x >= 0`)
	if err != nil {
		t.Fatal(err)
	}
	if f.String() == "" {
		t.Error("formula must render")
	}
	if _, err := cdb.ParseFormula(`x <=`); err == nil {
		t.Error("bad formula must fail")
	}
}

func TestShapeConstructorFacades(t *testing.T) {
	b := cdb.Box(cdb.Vector{0, 0}, cdb.Vector{2, 1})
	if !b.Contains(cdb.Vector{1, 0.5}) || b.Contains(cdb.Vector{3, 0.5}) {
		t.Error("Box facade wrong")
	}
	s := cdb.Simplex(3, 1)
	if !s.Contains(cdb.Vector{0.2, 0.2, 0.2}) || s.Contains(cdb.Vector{0.5, 0.5, 0.5}) {
		t.Error("Simplex facade wrong")
	}
	c := cdb.Cube(2, -1, 1)
	if !c.Contains(cdb.Vector{0, 0}) {
		t.Error("Cube facade wrong")
	}
}

func TestErrorTaxonomyExported(t *testing.T) {
	for _, err := range []error{
		cdb.ErrGeneratorFailed, cdb.ErrNotPolyRelated,
		cdb.ErrNotWellBounded, cdb.ErrUnsupportedQuery,
	} {
		if err == nil || err.Error() == "" {
			t.Error("exported error must be non-nil with a message")
		}
	}
}
