package cdb_test

import (
	"context"
	"runtime"
	"slices"
	"strings"
	"testing"
	"time"

	cdb "repro"
)

// auditProgram: a union of two disjoint unit boxes, 2-D and 2 tuples —
// comfortably inside the exact-oracle fragment, with known canonical
// member shares (1/2, 1/2) and exact volume 2.
const auditProgram = `
rel U(x, y) := { 0 <= x <= 1, 0 <= y <= 1 } | { 2 <= x <= 3, 0 <= y <= 1 };
`

// warmU draws a deterministic batch so the sampler is prepared, cached,
// registered with the auditor and feeding the quality tracker.
func warmU(t *testing.T, db *cdb.DB) {
	t.Helper()
	pts, err := db.SampleNSeeded(context.Background(), "U", 512, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 512 {
		t.Fatalf("warm draw returned %d points", len(pts))
	}
}

// TestAuditUnbiasedPasses is the control: a correct sampler must come
// out of the audit green — no fail events, nothing flagged.
func TestAuditUnbiasedPasses(t *testing.T) {
	db, err := cdb.Open(auditProgram)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	warmU(t, db)

	events, err := db.AuditOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no audit events for a registered warm sampler")
	}
	checks := map[string]bool{}
	for _, ev := range events {
		checks[ev.Check] = true
		if ev.Outcome == cdb.AuditFail {
			t.Errorf("control sampler failed audit: %+v", ev)
		}
	}
	if !checks["cells"] || !checks["shares"] {
		t.Fatalf("audit should run both the cells and shares checks, got %v", checks)
	}
	stats := db.CacheStats().Audit
	if stats.Entries == 0 || stats.Rounds == 0 {
		t.Fatalf("audit stats not accounted: %+v", stats)
	}
	if len(stats.Flagged) != 0 {
		t.Fatalf("control sampler flagged: %v", stats.Flagged)
	}
	rep, err := db.Rel("U").Explain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.AuditFlagged {
		t.Fatal("control sampler flagged in Explain")
	}
	if rep.Quality == nil || rep.Quality.AuditOutcome != "pass" {
		t.Fatalf("Explain quality row missing or not passing: %+v", rep.Quality)
	}
	// Exact references installed by the audit: total volume 2, shares
	// 1/2 each.
	q, ok := db.QualityReport(rep.CacheKey)
	if !ok {
		t.Fatal("no quality report under the explain cache key")
	}
	if q.ExactVolume < 1.99 || q.ExactVolume > 2.01 {
		t.Fatalf("exact volume = %g, want 2", q.ExactVolume)
	}
	if len(q.ExactShares) != 2 || q.ExactShares[0] < 0.49 || q.ExactShares[0] > 0.51 {
		t.Fatalf("exact shares = %v, want [0.5 0.5]", q.ExactShares)
	}
}

// TestAuditCatchesBiasedSampler is the tentpole's acceptance test: skew
// the warm sampler's union mixture weights (the fault-injection hook)
// and the auditor must emit a fail event within a few rounds, flag the
// entry in CacheStats and Explain — and keep serving it (quarantine,
// never eviction).
func TestAuditCatchesBiasedSampler(t *testing.T) {
	db, err := cdb.Open(auditProgram)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	warmU(t, db)

	ps, err := db.Sampler(context.Background(), "U")
	if err != nil {
		t.Fatal(err)
	}
	// 5x weight on member 0: the Karp–Luby member pick now lands on the
	// first box ~5/6 of the time, and — the boxes being disjoint — every
	// pick is canonical and accepted, so the output density is skewed.
	ps.ScaleMemberWeight(0, 5)

	var failed bool
	for round := 0; round < 5 && !failed; round++ {
		events, err := db.AuditOnce(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range events {
			if ev.Outcome == cdb.AuditFail {
				failed = true
				if ev.Stat <= ev.Threshold {
					t.Errorf("fail event with stat %.2f <= threshold %.2f", ev.Stat, ev.Threshold)
				}
			}
		}
	}
	if !failed {
		t.Fatal("auditor never emitted a fail event for the skewed sampler")
	}

	stats := db.CacheStats().Audit
	if stats.Fails == 0 {
		t.Fatalf("audit fail not counted: %+v", stats)
	}
	if len(stats.Flagged) == 0 {
		t.Fatal("biased entry not flagged in CacheStats")
	}
	rep, err := db.Rel("U").Explain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.AuditFlagged {
		t.Fatal("biased entry not flagged in Explain")
	}
	if !slices.Contains(stats.Flagged, rep.CacheKey) {
		t.Fatalf("flagged keys %v do not include the explain cache key %q", stats.Flagged, rep.CacheKey)
	}
	if !strings.Contains(rep.String(), "FLAGGED") {
		t.Fatal("Explain rendering does not surface the flag")
	}
	// Quarantine, not eviction: the entry still serves draws.
	if rep.Cache != "hit" {
		t.Fatalf("flagged entry should stay cached, got %q", rep.Cache)
	}
	if _, err := db.SampleNSeeded(context.Background(), "U", 16, 9); err != nil {
		t.Fatalf("flagged entry stopped serving: %v", err)
	}
}

// TestVolumeAccuracyLedger: Volume calls must land their (ε, δ)
// requested-vs-achieved ledger in the observed-cost table.
func TestVolumeAccuracyLedger(t *testing.T) {
	db, err := cdb.Open(auditProgram)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Volume(context.Background(), "U"); err != nil {
		t.Fatal(err)
	}
	rep, err := db.Rel("U").Explain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cost, ok := db.ObservedCost(rep.CacheKey)
	if !ok {
		t.Fatal("no observed cost after Volume")
	}
	if cost.VolEstimates == 0 {
		t.Fatalf("volume ledger not recorded: %+v", cost)
	}
	if cost.VolEpsRequestedMu <= 0 || cost.VolEpsAchievedMu <= 0 {
		t.Fatalf("ledger eps fields empty: req=%d ach=%d", cost.VolEpsRequestedMu, cost.VolEpsAchievedMu)
	}
	if cost.VolDeltaRequestMu <= 0 {
		t.Fatalf("ledger delta missing: %d", cost.VolDeltaRequestMu)
	}
	// Expr.Volume uses the same key and must accumulate onto it.
	if _, err := db.Rel("U").Volume(context.Background()); err != nil {
		t.Fatal(err)
	}
	cost2, _ := db.ObservedCost(rep.CacheKey)
	if cost2.VolEstimates <= cost.VolEstimates {
		t.Fatalf("Expr.Volume did not extend the ledger: %d -> %d", cost.VolEstimates, cost2.VolEstimates)
	}
}

// TestAuditorStopsWithClose: the background loop (and its sweep
// goroutines) must terminate when the handle closes — run under -race
// in CI, this also shakes out auditor/executor data races.
func TestAuditorStopsWithClose(t *testing.T) {
	before := runtime.NumGoroutine()
	db, err := cdb.Open(auditProgram, cdb.WithAudit(cdb.AuditConfig{Interval: time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	warmU(t, db)
	if !db.CacheStats().Audit.Enabled {
		t.Fatal("auditor not running after WithAudit")
	}
	// Let a few background sweeps fire.
	deadline := time.Now().Add(2 * time.Second)
	for db.CacheStats().Audit.Rounds == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if db.CacheStats().Audit.Rounds == 0 {
		t.Fatal("background auditor never completed a round")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if db.CacheStats().Audit.Enabled {
		t.Fatal("auditor still enabled after Close")
	}
	// Goroutines must drain back to (roughly) the pre-open level.
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}

// TestWithAuditZeroIntervalStaysOff: the option with no interval must
// not spin up a goroutine, while AuditOnce still works on demand.
func TestWithAuditZeroIntervalStaysOff(t *testing.T) {
	db, err := cdb.Open(auditProgram, cdb.WithAudit(cdb.AuditConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.CacheStats().Audit.Enabled {
		t.Fatal("zero-interval audit config started the background loop")
	}
	warmU(t, db)
	events, err := db.AuditOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("on-demand audit produced no events")
	}
}
