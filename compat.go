package cdb

// The package-level compatibility surface: a lazily created default
// runtime behind the deprecated wrappers (NewSampler, EstimateVolume,
// MedianVolume, SampleMany). Historically each call paid the full
// sampler setup; they now share one warm prepared-sampler cache keyed
// by the relation's canonical plan hash — the identical key a DB
// handle or a cdbserve node computes for the same geometry — so repeat
// calls on structurally equal relations bind seeds against cached
// geometry. Signatures and error behaviour are unchanged: any
// preparation problem falls back to the original cold path, which
// produces the canonical error.

import (
	"sync"

	"repro/internal/query"
	"repro/internal/runtime"
)

// defaultHandle is the package's lazily created shared runtime: an
// anonymous registry entry plus the prepared-sampler LRU and bounded
// worker pool every deprecated wrapper routes through. Like
// database/sql's connection pools it lives for the process — there is
// no Close; the pool is bounded and idle when unused.
var defaultHandle struct {
	once  sync.Once
	rt    *runtime.Runtime
	entry *runtime.DatabaseEntry
}

// defaultRuntime returns the shared runtime, creating it on first use.
// ok is false only if the anonymous registry entry could not be
// created (never expected; callers fall back to the cold path).
func defaultRuntime() (*runtime.Runtime, *runtime.DatabaseEntry, bool) {
	defaultHandle.once.Do(func() {
		rt := runtime.New(runtime.Config{}, nil)
		entry, _, err := rt.Registry().RegisterParsed("cdb.default", "", &Database{})
		if err != nil {
			rt.Close()
			return
		}
		defaultHandle.rt, defaultHandle.entry = rt, entry
	})
	return defaultHandle.rt, defaultHandle.entry, defaultHandle.rt != nil
}

// preparedRelation returns the warm prepared sampler for an ad-hoc
// relation through the default runtime's cache. ok is false when the
// warm path cannot serve the call — a nil or empty relation, a
// per-call Interrupt hook (cancellation must not be baked into shared
// geometry), or a preparation error — and the caller must run the
// legacy cold path so error values and behaviour are unchanged.
func preparedRelation(rel *Relation, opts Options) (rt *runtime.Runtime, ps *PreparedSampler, key string, ok bool) {
	if rel == nil || len(rel.Tuples) == 0 || opts.Interrupt != nil {
		return nil, nil, "", false
	}
	rt, entry, ok := defaultRuntime()
	if !ok {
		return nil, nil, "", false
	}
	cp := query.Canonicalize(runtime.PlanOfRelation(rel))
	ps, key, _, err := rt.PreparedPlan(entry, cp, opts)
	if err != nil {
		return nil, nil, "", false
	}
	return rt, ps, key, true
}
