package cdb

// CDB-SQL: the SQL front end over the Expr algebra. Statements compile
// onto the same internal/query.Node IR as the combinator surface, so a
// SQL query and its hand-built Expr equivalent share one canonical key
// — and therefore one prepared-sampler (or symbolic) cache entry — on
// every surface: this facade, the /v1/sql and /v1/expr endpoints, and
// the cdbsql CLI.
//
//	res, err := db.ExecSQL(ctx, "SELECT * FROM parcels WHERE x <= 10 SAMPLE 100")
//	e, err := db.SQL(ctx, "SELECT x FROM parcels")   // as an *Expr

import (
	"context"
	"errors"
	"fmt"

	sqldialect "repro/internal/sql"
)

// SQLError is the positioned error type of the CDB-SQL front end: parse
// and compile errors carry the 1-based Line/Col of the offending token.
// Serving layers render it as a structured {error, line, col} body.
type SQLError = sqldialect.Error

// SQLResult is the typed result of DB.ExecSQL. Mode says which payload
// fields are populated.
type SQLResult struct {
	// Mode is the statement's inferred execution mode: "relation"
	// (bare SELECT — symbolic evaluation), "sample" (SAMPLE clause),
	// "volume" (VOLUME(*) aggregate) or "explain".
	Mode string
	// Source is the canonical rendering of the statement.
	Source string
	// Columns are the SQL-visible output columns (aliases applied).
	Columns []string
	// CanonicalKey is the plan fingerprint the statement shares with
	// structurally equal Expr trees (the symbolic-query key for full-FO
	// statements, exactly as Expr reports it).
	CanonicalKey string
	// Points holds the draws (Mode "sample").
	Points []Vector
	// Volume is the measure (Mode "volume").
	Volume float64
	// Explain is the plan report (Mode "explain").
	Explain *ExplainReport
	// Relation is the derived quantifier-free relation (Mode
	// "relation"), with columns renamed to the SQL-visible names; its
	// Source() renders a parseable `rel` declaration.
	Relation *Relation
}

// SQL compiles a CDB-SQL statement to an *Expr on the handle. The
// expression is the statement's body — SAMPLE/EXPLAIN decorations are
// ignored here (use ExecSQL to honour them); every Expr terminal
// applies. Errors are *SQLError values positioned in the statement
// text.
func (db *DB) SQL(ctx context.Context, stmt string) (*Expr, error) {
	if err := db.check(ctx); err != nil {
		return nil, err
	}
	c, err := sqldialect.Compile(db.entry.DB, stmt)
	if err != nil {
		return nil, err
	}
	return &Expr{db: db, node: c.Node}, nil
}

// ExecSQL parses, compiles and executes one CDB-SQL statement,
// dispatching on its inferred mode:
//
//   - `... SAMPLE n [SEED k]` draws n almost-uniform points (seeded
//     deterministically when SEED is given);
//   - `SELECT VOLUME(*) FROM ...` estimates the measure (exact symbolic
//     evaluation for statements outside the sampling fragment);
//   - `EXPLAIN [SYMBOLIC] ...` reports the canonical plan, cache keys
//     and per-disjunct cache residency without executing;
//   - a bare SELECT evaluates symbolically and returns the derived
//     relation.
//
// Statements flow through the identical canonicalization and cache-key
// pipeline as Expr trees: a warm Expr draw makes the equivalent SQL
// statement warm too, and vice versa.
func (db *DB) ExecSQL(ctx context.Context, stmt string) (*SQLResult, error) {
	if err := db.check(ctx); err != nil {
		return nil, err
	}
	c, err := sqldialect.Compile(db.entry.DB, stmt)
	if err != nil {
		return nil, err
	}
	e := &Expr{db: db, node: c.Node}
	res := &SQLResult{
		Mode:    string(c.Mode),
		Source:  c.Source,
		Columns: append([]string(nil), c.Columns...),
	}
	key, err := e.CanonicalKey()
	switch {
	case err == nil:
		res.CanonicalKey = key
	case errors.Is(err, ErrUnsupportedQuery):
		// Full first-order: the symbolic-query key is the fingerprint,
		// matching Expr.Explain's report for the same statement.
		sq, serr := e.compileSymbolic()
		if serr != nil {
			return nil, serr
		}
		res.CanonicalKey = sq.Key
	default:
		return nil, err
	}

	switch c.Mode {
	case sqldialect.ModeSample:
		var pts []Vector
		if c.SeedSet {
			pts, err = e.SampleNSeeded(ctx, c.N, c.Seed)
		} else {
			pts, err = e.SampleN(ctx, c.N)
		}
		if err != nil {
			return nil, err
		}
		res.Points = pts
	case sqldialect.ModeVolume:
		v, err := e.Volume(ctx)
		if errors.Is(err, ErrUnsupportedQuery) {
			v, err = e.VolumeSymbolic(ctx)
		}
		if err != nil {
			return nil, err
		}
		res.Volume = v
	case sqldialect.ModeExplain:
		var rep *ExplainReport
		if c.ExplainSymbolic {
			rep, err = e.explainSymbolicOnly()
		} else {
			rep, err = e.Explain(ctx)
		}
		if err != nil {
			return nil, err
		}
		res.Explain = rep
	case sqldialect.ModeRelation:
		rel, err := e.EvalSymbolic(ctx)
		if err != nil {
			return nil, err
		}
		if len(rel.Vars) == len(res.Columns) {
			rel.Vars = append([]string(nil), res.Columns...)
		}
		res.Relation = rel
	default:
		return nil, fmt.Errorf("cdb: unknown SQL mode %q", c.Mode)
	}
	return res, nil
}
