// Quickstart: parse a constraint database, draw almost-uniform samples
// from a relation, and estimate its volume — the two primitives the
// paper builds everything on.
package main

import (
	"fmt"
	"log"

	cdb "repro"
)

const program = `
# A generalized relation: the union of a triangle and a square
# (a linear-constraint DNF, as in Kanellakis-Kuper-Revesz).
rel Region(x, y) := { x >= 0, y >= 0, x + y <= 1 }
                  | { 2 <= x <= 3, 0 <= y <= 1 };

# A query: the horizontal extent of the region.
query Extent(x) := exists y. Region(x, y);
`

func main() {
	db, err := cdb.Parse(program)
	if err != nil {
		log.Fatal(err)
	}
	region, _ := db.Relation("Region")

	// 1. An almost-uniform (γ, ε, δ)-generator for the relation
	//    (Dyer–Frieze–Kannan walks per tuple under the union combinator).
	gen, err := cdb.NewSampler(region, 42, cdb.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("five almost-uniform samples of Region:")
	for i := 0; i < 5; i++ {
		p, err := gen.Sample()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  (%.3f, %.3f)\n", p[0], p[1])
	}

	// 2. A relative (ε, δ)-volume estimate vs the exact fixed-dimension
	//    computation (Lemma 3.1): triangle 0.5 + square 1.0 = 1.5.
	est, err := gen.Volume()
	if err != nil {
		log.Fatal(err)
	}
	exact, err := cdb.ExactVolume(region)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvolume: estimated %.4f, exact %.4f\n", est, exact)

	// 3. Query evaluation without quantifier elimination: the sampling
	//    plan estimates the volume of ∃y Region(x, y) = [0,1] ∪ [2,3].
	q, _ := db.Query("Extent")
	engine := cdb.NewEngine(db.Schema, cdb.DefaultOptions(), 7)
	qv, err := engine.EstimateVolume(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extent length: estimated %.4f (exact 2.0)\n", qv)
}
