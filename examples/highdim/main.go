// High-dimension example: Proposition 4.3's speed-up. The query
//
//	φ(x1, x2) ≡ ∃x3 ... ∃x_{2+k} R(x1, ..., x_{2+k})
//
// projects a (2+k)-dimensional convex relation onto the plane. The
// classical evaluation is Fourier–Motzkin elimination, whose constraint
// count explodes doubly exponentially in k; the paper's Algorithm 3
// samples the projection (Theorem 4.3's generator) and reconstructs the
// result as a convex hull in time polynomial in the dimension.
//
// This example runs both on the same random polytopes and prints the
// blow-up next to the flat sampling cost.
package main

import (
	"fmt"
	"log"
	"time"

	cdb "repro"
	"repro/internal/constraint"
	"repro/internal/dataset"
	"repro/internal/rng"
)

func main() {
	r := rng.New(99)
	fmt.Println("projecting a random (2+k)-polytope onto the plane: FM vs sampling")
	fmt.Printf("%-4s  %-18s  %-12s  %-14s  %-10s\n", "k", "FM atoms", "FM time", "sampling time", "hull pts")
	for _, k := range []int{1, 2, 3, 4} {
		poly := dataset.HighDimPipeline(r, 2, k, 10)

		// Classical route: eliminate the k trailing variables. Raw
		// (unpruned) FM is infeasible beyond k = 3 — which is the point —
		// so k = 4 falls back to the pruned practical variant.
		vars := make([]string, 2+k)
		for i := range vars {
			vars[i] = fmt.Sprintf("v%d", i)
		}
		rel := constraint.MustRelation("R", vars, poly.Tuple())
		drop := make([]int, k)
		for i := range drop {
			drop[i] = 2 + i
		}
		opts := constraint.EliminateOptions{SkipPruning: k <= 3}
		mode := "raw"
		if k > 3 {
			mode = "pruned"
		}
		t0 := time.Now()
		raw := constraint.EliminateAll(rel, drop, opts)
		fmTime := time.Since(t0)
		atoms := 0
		for _, tp := range raw.Tuples {
			atoms += len(tp.Atoms)
		}

		// Paper's route: Algorithm 3 — projection generator + hull.
		t1 := time.Now()
		hull, err := cdb.ProjectAndReconstruct(poly, []int{0, 1}, 250, uint64(1000+k), cdb.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		sampleTime := time.Since(t1)

		fmt.Printf("%-4d  %-18s  %-12s  %-14s  %-10d\n",
			k, fmt.Sprintf("%d (%s)", atoms, mode),
			fmTime.Round(time.Microsecond), sampleTime.Round(time.Microsecond),
			len(hull.Vertices()))
	}
	fmt.Println("\nFM atom counts follow the doubly-exponential pairing growth;")
	fmt.Println("the sampling reconstruction cost is flat in k at a fixed sample budget.")
}
