// GIS example: the paper motivates sampling with Geographical
// Information Systems, where many applications are statistical. This
// example builds a synthetic land-parcel map (a union of convex
// parcels with land-use classes), then answers approximate aggregate
// queries by sampling — no exact geometric computation anywhere:
//
//   - total residential area (volume estimation, Theorem 4.2),
//   - the share of an inspection zone covered by industry
//     (intersection, Proposition 4.1),
//   - the mean distance of park area from the city centre
//     (aggregate over uniform samples).
package main

import (
	"fmt"
	"log"
	"math"

	cdb "repro"
	"repro/internal/dataset"
	"repro/internal/rng"
)

func main() {
	r := rng.New(2006)
	m := dataset.NewParcelMap(r, 60, 100)
	fmt.Printf("synthetic map: %d parcels on a 100x100 grid\n\n", len(m.Parcels))

	opts := cdb.DefaultOptions()

	// 1. Total area by land-use class, with exact ground truth from the
	//    fixed-dimension algorithm where feasible.
	for _, kind := range dataset.Kinds {
		rel := m.Relation(kind)
		if len(rel.Tuples) == 0 {
			continue
		}
		est, err := cdb.EstimateVolume(rel, 1, opts)
		if err != nil {
			log.Fatalf("%s: %v", kind, err)
		}
		exactStr := "n/a (too many tuples for inclusion-exclusion)"
		if len(rel.Tuples) <= 18 {
			if exact, err := cdb.ExactVolume(rel); err == nil {
				exactStr = fmt.Sprintf("%.1f", exact)
			}
		}
		fmt.Printf("%-12s area ≈ %8.1f   (exact %s)\n", kind, est, exactStr)
	}

	// 2. How much of the inspection zone around (50, 50) is industrial?
	//    Sample the industrial relation, test zone membership: the
	//    rejection estimator of Proposition 4.1.
	zone := dataset.Zone(50, 50, 25)
	industrial := m.Relation("industrial")
	gen, err := cdb.NewSampler(industrial, 2, opts)
	if err != nil {
		log.Fatal(err)
	}
	inZone, n := 0, 4000
	for i := 0; i < n; i++ {
		p, err := gen.Sample()
		if err != nil {
			log.Fatal(err)
		}
		if zone.Contains(p) {
			inZone++
		}
	}
	indArea, _ := gen.Volume()
	fmt.Printf("\ninspection zone: industrial overlap ≈ %.1f area units (%.1f%% of industrial land)\n",
		indArea*float64(inZone)/float64(n), 100*float64(inZone)/float64(n))

	// 3. Mean distance of park land from the centre — an aggregate the
	//    paper's introduction calls out (statistical analysis over
	//    spatial data).
	parks := m.Relation("park")
	pgen, err := cdb.NewSampler(parks, 3, opts)
	if err != nil {
		log.Fatal(err)
	}
	var sum float64
	for i := 0; i < n; i++ {
		p, err := pgen.Sample()
		if err != nil {
			log.Fatal(err)
		}
		sum += math.Hypot(p[0]-50, p[1]-50)
	}
	fmt.Printf("mean distance of park land from centre ≈ %.1f units\n", sum/float64(n))
}
