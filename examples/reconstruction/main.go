// Reconstruction example: Definition 4.1 set-estimators in action.
// Starting from a query whose result we never compute symbolically, the
// engine draws almost-uniform samples per disjunct (Algorithm 5), builds
// convex hulls, and we measure the quality vol(S Δ Ŝ)/vol(S) against the
// symbolic ground truth — the exact acceptance criterion of the paper's
// Definition 4.1.
package main

import (
	"fmt"
	"log"

	cdb "repro"
	"repro/internal/geom"
	"repro/internal/rng"
)

const program = `
# Two observation areas and a corridor between them.
rel Area(x, y) := { 0 <= x <= 2, 0 <= y <= 2 }
                | { 5 <= x <= 7, 0 <= y <= 2 };
rel Corridor(x, y) := { 2 <= x <= 5, 0.8 <= y <= 1.2 };

# Everything reachable: the union (an existential positive query).
query Reach(x, y) := Area(x, y) | Corridor(x, y);
`

func main() {
	db, err := cdb.Parse(program)
	if err != nil {
		log.Fatal(err)
	}
	q, _ := db.Query("Reach")
	engine := cdb.NewEngine(db.Schema, cdb.DefaultOptions(), 5)

	for _, n := range []int{50, 200, 1000} {
		est, err := engine.Reconstruct(q, n)
		if err != nil {
			log.Fatal(err)
		}
		// Ground truth by symbolic evaluation + exact volume.
		sym, err := engine.EvalSymbolic(q)
		if err != nil {
			log.Fatal(err)
		}
		exactVol, err := cdb.ExactVolume(sym)
		if err != nil {
			log.Fatal(err)
		}
		// Definition 4.1's criterion: vol(S Δ Ŝ) relative to vol(S),
		// measured by Monte Carlo over the bounding box.
		lo, hi, _ := sym.BoundingBox()
		for j := range lo {
			lo[j] -= 0.25
			hi[j] += 0.25
		}
		sym2 := sym
		sd := geom.SymmetricDifferenceMC(
			func(p cdb.Vector) bool { return sym2.Contains(p) },
			est.Contains,
			lo, hi, 12000, rng.New(99),
		)
		fmt.Printf("N=%4d per disjunct: %d hulls, %3d hull points, vol(SΔŜ)/vol(S) = %.3f\n",
			n, len(est.Hulls), est.VertexCount(), sd/exactVol)
	}

	fmt.Println("\nthe defect shrinks with N following Lemma 4.1's ln^{d-1}(N)/N envelope;")
	fmt.Printf("exact result volume: %.2f (two areas + corridor)\n", 8+3*0.4)
}
