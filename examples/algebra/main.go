// Example algebra: the lazy relational-algebra query surface.
//
// db.Rel returns a lazy expression; combinators (Where, Intersect,
// Union, Minus, Project, TimeSliceAt) build it up without touching any
// geometry, and terminal verbs compile it once into a canonical plan —
// commutative operands sorted, selections pushed into tuples,
// LP-infeasible disjuncts pruned — whose hash keys the handle's
// prepared-sampler cache. Structurally equal expressions, however they
// were built, share one warm entry; provably empty expressions replay
// as O(1) cached verdicts with volume 0.
//
// Run with: go run ./examples/algebra
package main

import (
	"context"
	"fmt"
	"log"

	cdb "repro"
)

// A toy GIS program: land parcels, a flood zone and a moving storm
// cell in space-time (x, y, t).
const program = `
rel parcels(x, y)   := { 0 <= x <= 4, 0 <= y <= 3 } | { 5 <= x <= 8, 0 <= y <= 2 };
rel floodzone(x, y) := { 1 <= x <= 6, 1 <= y <= 4 };
rel reserve(x, y)   := { 10 <= x <= 12, 10 <= y <= 12 };
rel storm(x, y, t)  := { 0 <= t <= 10, t <= x <= t + 2, 0 <= y <= 3 };
`

func main() {
	log.SetFlags(0)
	db, err := cdb.Open(program)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()

	// Composed query: parcels inside the flood zone, west of x = 5.
	atRisk := db.Rel("parcels").
		Intersect(db.Rel("floodzone")).
		Where(cdb.NewAtom(cdb.Vector{1, 0}, 5, false)) // x <= 5

	// Explain before running: canonical key, normalized plan, cache state.
	rep, err := atRisk.Explain(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep)

	v, err := atRisk.Volume(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("flooded parcel area ≈ %.3g\n", v)

	pts, err := atRisk.SampleN(ctx, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("5 almost-uniform at-risk points: %.2f\n", pts)

	// The same expression built in the opposite order shares the warm
	// cache entry: no second preparation pass.
	same := db.Rel("floodzone").
		Where(cdb.NewAtom(cdb.Vector{1, 0}, 5, false)).
		Intersect(db.Rel("parcels"))
	rep, err = same.Explain(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reordered expression: cache %s (same key: %v)\n",
		rep.Cache, rep.CanonicalKey == mustKey(atRisk))
	stats := db.CacheStats()
	fmt.Printf("cache stats: %d misses, %d hits\n", stats.Misses, stats.Hits)

	// A provably empty intersection: LP pruning caches the verdict, so
	// Volume is 0 and replays never touch geometry.
	none := db.Rel("parcels").Intersect(db.Rel("reserve"))
	v, err = none.Volume(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parcels ∩ reserve: volume %g (provably empty, cached verdict)\n", v)

	// Project away a coordinate (Algorithm 2 under the hood) and slice
	// the storm cell at t = 3.
	xs, err := db.Rel("parcels").Project("x").SampleN(ctx, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("π_x(parcels) samples: %.2f\n", xs)

	slice := db.Rel("storm").TimeSliceAt(3)
	cols, _ := slice.Columns()
	sv, err := slice.Volume(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("storm at t=3 over %v: area ≈ %.3g\n", cols, sv)

	// Per-expression option overrides key into the cache, closing the
	// handle-wide-only configuration gap.
	fast, err := atRisk.WithParams(cdb.Params{Gamma: 0.3, Eps: 0.3, Delta: 0.2}).Volume(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("looser-parameter estimate ≈ %.3g\n", fast)
}

func mustKey(e *cdb.Expr) string {
	k, err := e.CanonicalKey()
	if err != nil {
		log.Fatal(err)
	}
	return k
}
