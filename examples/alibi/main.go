// Alibi example: moving objects as linear constraint relations.
//
// Two commuters are observed at a handful of timestamped positions,
// each with a known maximum speed. Between fixes, physics confines each
// to a space-time prism (bead) — a convex set of (x, y, t) — so a whole
// trajectory is exactly a generalized relation of the paper, and every
// question below is answered by the library's uniform generators:
//
//   - "where could A have been at t = 2.5?"  — the time-slice operator
//     plus sampling and area estimation of the snapshot,
//   - "could A and B have met in some window?" — the alibi query,
//     answered by sampling the meet region AND exactly by
//     Fourier–Motzkin elimination, cross-checked.
package main

import (
	"fmt"
	"log"

	cdb "repro"
)

func main() {
	// Two commuters with speed bound 3: A drives east along the x-axis,
	// B drives south crossing A's path around t = 5.
	a, err := cdb.NewTrajectory("A", 3, 0,
		cdb.Observation{T: 0, P: cdb.Vector{0, 0}},
		cdb.Observation{T: 5, P: cdb.Vector{10, 0}},
		cdb.Observation{T: 10, P: cdb.Vector{20, 0}},
	)
	if err != nil {
		log.Fatal(err)
	}
	b, err := cdb.NewTrajectory("B", 3, 0,
		cdb.Observation{T: 0, P: cdb.Vector{10, 10}},
		cdb.Observation{T: 5, P: cdb.Vector{10, 1}},
		cdb.Observation{T: 10, P: cdb.Vector{10, -10}},
	)
	if err != nil {
		log.Fatal(err)
	}
	relA, relB := a.Relation(), b.Relation()
	fmt.Printf("trajectory A: %d observations -> %d space-time prisms over (x, y, t)\n",
		len(a.Obs), len(relA.Tuples))
	fmt.Printf("trajectory B: %d observations -> %d space-time prisms\n\n", len(b.Obs), len(relB.Tuples))

	opts := cdb.DefaultOptions()

	// 1. Time slice: where could A have been at t = 2.5? The snapshot is
	//    a convex region between A's first two fixes; sample it and
	//    estimate its area.
	slice, err := cdb.TimeSlice(relA, 2.5)
	if err != nil {
		log.Fatal(err)
	}
	gen, err := cdb.NewSampler(slice, 1, opts)
	if err != nil {
		log.Fatal(err)
	}
	area, err := gen.Volume()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot A @ t=2.5: area ≈ %.2f; five possible positions:\n", area)
	for i := 0; i < 5; i++ {
		p, err := gen.Sample()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  (%6.2f, %6.2f)\n", p[0], p[1])
	}

	// A slice outside the support is empty — the degenerate case servers
	// must answer cleanly.
	empty, err := cdb.TimeSlice(relA, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot A @ t=99: %d feasible tuples (outside the support)\n\n", len(empty.Tuples))

	// 2. Alibi query over the whole day: the trajectories cross near
	//    (10, 0) just before and after t = 5, so the alibi fails.
	rep, err := cdb.AlibiQuery(relA, relB, 0, 10, 7, 1, opts)
	if err != nil {
		log.Fatal(err)
	}
	describe("alibi(A, B) on [0, 10]", rep)

	// 3. Restricted to the early window [0, 1] the objects are too far
	//    apart for their speed bounds: the alibi holds, and both the
	//    sampler and the exact elimination agree.
	rep, err = cdb.AlibiQuery(relA, relB, 0, 1, 7, 1, opts)
	if err != nil {
		log.Fatal(err)
	}
	describe("alibi(A, B) on [0, 1]", rep)
}

func describe(title string, rep *cdb.AlibiReport) {
	fmt.Printf("%s:\n", title)
	verdict := "REFUTED (they could not have met)"
	if rep.Meet {
		verdict = "POSSIBLE (they could have met)"
	}
	fmt.Printf("  verdict: %s\n", verdict)
	fmt.Printf("  sampling: meeting-volume ≈ %.4g (ε=%.2g, confidence %.0f%%)\n",
		rep.Volume, rep.RelErr, 100*rep.Confidence)
	fmt.Printf("  symbolic (Fourier–Motzkin): meet=%v", rep.SymbolicMeet)
	for _, iv := range rep.MeetTimes {
		fmt.Printf(" [%.3g, %.3g]", iv.Lo, iv.Hi)
	}
	fmt.Println()
	fmt.Printf("  cross-check consistent: %v\n\n", rep.Consistent)
}
