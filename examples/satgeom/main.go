// SAT-as-geometry example (§4.1.3 of the paper): every 3-SAT instance
// encodes as an intersection of observable unions — literal x becomes
// the slab 3/4 < x < 1, ¬x becomes 0 < x < 1/4, a clause is the union
// of its literal slabs, and the instance is the intersection of its
// clauses. If intersections were observable without the poly-related
// restriction, relative volume approximation would decide SAT.
//
// This example shows both sides of the boundary: a dense-solution
// instance where the intersection generator finds a witness quickly,
// and a contradiction where the poly-relatedness guard aborts.
package main

import (
	"errors"
	"fmt"
	"log"

	cdb "repro"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/satenc"
)

func main() {
	opts := cdb.DefaultOptions()
	opts.AcceptanceFloor = 5e-3
	opts.MaxRounds = 4000

	run := func(name string, ins satenc.Instance) {
		fmt.Printf("%s: %d vars, %d clauses, %d satisfying assignment(s), satisfying volume %.2g\n",
			name, ins.NumVars, len(ins.Clauses), ins.CountSatisfying(), ins.SatisfyingVolume())
		obs, err := ins.Observables(rng.New(1), opts)
		if err != nil {
			log.Fatal(err)
		}
		inter, err := core.NewIntersection(obs, rng.New(2), opts)
		if err != nil {
			log.Fatal(err)
		}
		x, err := inter.Sample()
		switch {
		case err == nil:
			dec := satenc.Decode(x)
			fmt.Printf("  witness sample %v decodes to partial assignment %v (satisfies all clauses: %v)\n",
				short(x), dec, ins.SatisfiedByPartial(dec))
		case errors.Is(err, core.ErrNotPolyRelated):
			fmt.Println("  generator aborted: intersection not poly-related (the paper's hardness boundary)")
		case errors.Is(err, core.ErrGeneratorFailed):
			fmt.Println("  generator exhausted its round budget (δ-abort)")
		default:
			log.Fatal(err)
		}
		fmt.Println()
	}

	// Solvable with many solutions: sampling finds witnesses easily.
	run("easy instance", satenc.Instance{
		NumVars: 3,
		Clauses: []satenc.Clause{{1, 2, 3}, {-1, 2, 3}, {1, -2, 3}},
	})

	// Contradiction: the clause intersection is empty; the guard aborts.
	run("contradiction", satenc.Instance{
		NumVars: 2,
		Clauses: []satenc.Clause{{1}, {-1}},
	})

	// Random instance near the density threshold.
	r := rng.New(7)
	run("random 3-SAT n=5 m=21", satenc.RandomKSAT(r, 5, 21, 3))
}

func short(x cdb.Vector) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = float64(int(v*100)) / 100
	}
	return out
}
