// Example handle: one cdb.DB shared across goroutines.
//
// Open parses the program once and returns a handle owning the warm
// sampling runtime — a singleflight LRU of prepared samplers and a
// bounded worker pool. Many goroutines then drive the same handle
// concurrently: the first request for each target pays the preparation
// (rounding, well-boundedness witnesses, volume estimation), everyone
// else binds seeds to the shared warm geometry, and a context deadline
// aborts in-flight walks mid-epoch.
//
// Run with: go run ./examples/handle
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	cdb "repro"
)

const program = `
rel S(x, y)  := { x >= 0, y >= 0, x + y <= 1 };
rel U(x, y)  := { 0 <= x <= 1, 0 <= y <= 1 } | { 2 <= x <= 3, 0 <= y <= 1 };
query Q(x)   := exists y. S(x, y);
`

func main() {
	log.SetFlags(0)
	db, err := cdb.Open(program,
		cdb.WithParams(cdb.Params{Gamma: 0.2, Eps: 0.25, Delta: 0.1}),
		cdb.WithWorkers(4),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Six goroutines, three distinct targets: each target is prepared
	// exactly once (concurrent requests for a cold target coalesce), and
	// all draws share the handle's bounded worker pool.
	targets := []string{"S", "U", "S", "U", "S", "U"}
	var wg sync.WaitGroup
	for i, target := range targets {
		wg.Add(1)
		go func(i int, target string) {
			defer wg.Done()
			pts, err := db.SampleN(ctx, target, 200)
			if err != nil {
				log.Printf("worker %d: %v", i, err)
				return
			}
			v, err := db.Volume(ctx, target)
			if err != nil {
				log.Printf("worker %d: %v", i, err)
				return
			}
			fmt.Printf("worker %d: %3d points of %s, volume ≈ %.3f\n", i, len(pts), target, v)
		}(i, target)
	}
	wg.Wait()

	// The streaming iterator draws from one bound generator until the
	// consumer breaks (or ctx fires).
	fmt.Println("first 3 streamed points of Q:")
	n := 0
	for p, err := range db.Samples(ctx, "Q") {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %v\n", p)
		if n++; n == 3 {
			break
		}
	}

	// A deadline aborts an in-flight call with ctx.Err() mid-walk.
	short, cancelShort := context.WithTimeout(context.Background(), 1*time.Nanosecond)
	defer cancelShort()
	if _, err := db.SampleN(short, "S", 1); err != nil {
		fmt.Printf("deadline honoured: %v\n", err)
	}
}
