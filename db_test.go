package cdb_test

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	cdb "repro"
)

const handleProgram = `
rel S(x, y) := { x >= 0, y >= 0, x + y <= 1 };
rel U(x, y) := { 0 <= x <= 1, 0 <= y <= 1 } | { 2 <= x <= 3, 0 <= y <= 1 };
query Q(x)  := exists y. S(x, y);
`

func TestOpenSampleVolume(t *testing.T) {
	db, err := cdb.Open(handleProgram)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()

	pts, err := db.SampleN(ctx, "S", 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 50 {
		t.Fatalf("got %d points, want 50", len(pts))
	}
	for _, p := range pts {
		if len(p) != 2 || p[0] < 0 || p[1] < 0 || p[0]+p[1] > 1+1e-9 {
			t.Fatalf("point %v outside S", p)
		}
	}

	// Triangle area 1/2; the estimate must be within the configured ε
	// with slack for the default parameters.
	v, err := db.Volume(ctx, "S")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-0.5) > 0.25 {
		t.Fatalf("volume(S) = %g, want ≈ 0.5", v)
	}

	// Volume is deterministic per handle configuration (prepared path).
	v2, err := db.Volume(ctx, "S")
	if err != nil {
		t.Fatal(err)
	}
	if v != v2 {
		t.Fatalf("volume not deterministic: %g vs %g", v, v2)
	}

	// Union target: two unit boxes, area 2.
	uv, err := db.Volume(ctx, "U")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(uv-2) > 1 {
		t.Fatalf("volume(U) = %g, want ≈ 2", uv)
	}
}

func TestDBQuerySurface(t *testing.T) {
	db, err := cdb.Open(handleProgram)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()

	// Q projects the triangle onto [0, 1].
	v, err := db.QueryVolume(ctx, "Q")
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 || v > 2 {
		t.Fatalf("query volume = %g, want in (0, 2]", v)
	}

	obs, err := db.Query(ctx, "Q")
	if err != nil {
		t.Fatal(err)
	}
	x, err := obs.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != 1 || x[0] < -1e-9 || x[0] > 1+1e-9 {
		t.Fatalf("query sample %v outside [0, 1]", x)
	}

	if _, err := db.Query(ctx, "nope"); err == nil {
		t.Fatal("unknown query should error")
	}

	// SampleN and Volume fall back to the engine for projection-needing
	// queries (no cacheable prepared sampler exists for them).
	pts, err := db.SampleN(ctx, "Q", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("got %d query samples, want 5", len(pts))
	}
	if _, err := db.Sampler(ctx, "Q"); !errors.Is(err, cdb.ErrNeedsProjection) {
		t.Fatalf("Sampler(Q) = %v, want ErrNeedsProjection", err)
	}
	if _, err := db.Volume(ctx, "Q"); err != nil {
		t.Fatalf("Volume(Q) fallback: %v", err)
	}
}

func TestDBSamplerSharedAcrossGoroutines(t *testing.T) {
	db, err := cdb.Open(handleProgram)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// 50 concurrent requests for the same cold target must share one
	// prepared sampler (singleflight), pointer-identically.
	const clients = 50
	results := make([]*cdb.PreparedSampler, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ps, err := db.Sampler(context.Background(), "S")
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			results[i] = ps
		}(i)
	}
	wg.Wait()
	for i, ps := range results {
		if ps != results[0] {
			t.Fatalf("client %d received a different prepared sampler", i)
		}
	}
}

func TestDBSamplesIterator(t *testing.T) {
	db, err := cdb.Open(handleProgram)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	got := 0
	for p, err := range db.Samples(context.Background(), "S") {
		if err != nil {
			t.Fatal(err)
		}
		if len(p) != 2 {
			t.Fatalf("point %v is not 2-D", p)
		}
		got++
		if got == 7 {
			break
		}
	}
	if got != 7 {
		t.Fatalf("iterator yielded %d points, want 7", got)
	}

	// A cancelled context surfaces as the iterator's error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sawErr := false
	for _, err := range db.Samples(ctx, "S") {
		if err == nil {
			t.Fatal("cancelled iterator yielded a point")
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("iterator error = %v, want context.Canceled", err)
		}
		sawErr = true
	}
	if !sawErr {
		t.Fatal("cancelled iterator yielded nothing")
	}
}

func TestDBClose(t *testing.T) {
	db, err := cdb.Open(handleProgram)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	if _, err := db.SampleN(context.Background(), "S", 1); !errors.Is(err, cdb.ErrClosed) {
		t.Fatalf("SampleN after close = %v, want ErrClosed", err)
	}
	if _, err := db.Volume(context.Background(), "S"); !errors.Is(err, cdb.ErrClosed) {
		t.Fatalf("Volume after close = %v, want ErrClosed", err)
	}
}

func TestDBSpacetimeSurface(t *testing.T) {
	prog := `
rel A(x, y, t) := { 0 <= t <= 10, t <= x <= t + 1, 0 <= y <= 1 };
`
	db, err := cdb.Open(prog)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()

	ps, err := db.TimeSlice(ctx, "A", 5.5)
	if err != nil {
		t.Fatal(err)
	}
	v, err := ps.VolumeCtx(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1) > 0.5 {
		t.Fatalf("slice area = %g, want ≈ 1", v)
	}

	// Out-of-support slice: ErrEmptySlice on the first (cold) call and
	// on the cached replay.
	for i := 0; i < 2; i++ {
		if _, err := db.TimeSlice(ctx, "A", 99); !errors.Is(err, cdb.ErrEmptySlice) {
			t.Fatalf("call %d: err = %v, want ErrEmptySlice", i, err)
		}
	}

	lo, hi, ok := db.TimeSupportOf("A")
	if !ok || lo > 1e-9 || math.Abs(hi-10) > 1e-6 {
		t.Fatalf("support = [%g, %g] ok=%v, want [0, 10]", lo, hi, ok)
	}
}

func TestDBAlibi(t *testing.T) {
	prog := `
rel A(x, y, t) := { 0 <= t <= 10, t <= x <= t + 1, 0 <= y <= 1 };
rel B(x, y, t) := { 0 <= t <= 10, t - 0.5 <= x <= t + 0.5, 0 <= y <= 1 };
rel Far(x, y, t) := { 0 <= t <= 10, 100 <= x <= 101, 0 <= y <= 1 };
`
	db, err := cdb.Open(prog)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()

	rep, err := db.Alibi(ctx, "A", "B", 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Meet || !rep.SymbolicMeet || !rep.Consistent {
		t.Fatalf("A/B should meet consistently: %+v", rep)
	}

	rep, err = db.Alibi(ctx, "A", "Far", 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Meet || rep.SymbolicMeet || !rep.Consistent {
		t.Fatalf("A/Far should be refuted consistently: %+v", rep)
	}

	if _, err := db.Alibi(ctx, "A", "B", 5, 1); err == nil {
		t.Fatal("inverted window should error")
	}
}
