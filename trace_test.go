package cdb_test

import (
	"context"
	"strings"
	"testing"

	cdb "repro"
)

// TestStartTraceSpanTree: a traced SampleN grows the
// expr.sample → {expr.prepare, sample.batch} stage tree, and the
// String rendering carries the trace id and the stage names.
func TestStartTraceSpanTree(t *testing.T) {
	db, err := cdb.Open(handleProgram)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	ctx, root := cdb.StartTrace(context.Background(), "req")
	if _, err := db.Rel("S").SampleN(ctx, 16); err != nil {
		t.Fatal(err)
	}
	root.End()

	if root.TraceID() == "" {
		t.Fatal("root span has no trace id")
	}
	kids := root.Children()
	if len(kids) != 1 || kids[0].Name() != "expr.sample" {
		t.Fatalf("root children = %v, want one expr.sample", kids)
	}
	var names []string
	kids[0].Walk(func(s *cdb.Span, depth int) { names = append(names, s.Name()) })
	joined := strings.Join(names, " ")
	for _, want := range []string{"expr.sample", "expr.prepare", "sample.batch"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("stage %q missing from span tree %q", want, joined)
		}
	}
	rendered := root.String()
	if !strings.Contains(rendered, root.TraceID()) || !strings.Contains(rendered, "sample.batch") {
		t.Fatalf("rendered tree missing trace id or stages:\n%s", rendered)
	}

	// Untraced contexts stay span-free.
	if cdb.SpanFromContext(context.Background()) != nil {
		t.Fatal("background context claims a span")
	}
	if cdb.SpanFromContext(ctx) != root {
		t.Fatal("traced context does not yield its root span")
	}
}

// TestCacheStatsPerKind: the per-kind breakdowns attribute traffic to
// the right cache and count current (and negative) entries.
func TestCacheStatsPerKind(t *testing.T) {
	db, err := cdb.Open(handleProgram)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()

	// Plan kind: one cold build, one warm replay.
	if _, err := db.Sampler(ctx, "S"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Sampler(ctx, "S"); err != nil {
		t.Fatal(err)
	}
	st := db.CacheStats()
	if st.Plan.Misses != 1 || st.Plan.Hits != 1 {
		t.Fatalf("plan stats = %+v, want 1 miss / 1 hit", st.Plan)
	}
	if st.Plan.Entries != 1 || st.Plan.NegativeEntries != 0 {
		t.Fatalf("plan residency = %+v, want 1 entry, 0 negative", st.Plan)
	}
	if st.Symbolic.Misses != 0 || st.Alibi.Misses != 0 {
		t.Fatalf("unexpected non-plan traffic: %+v", st)
	}

	// Symbolic kind: an elimination populates its own cache.
	if _, err := db.Rel("Q").EvalSymbolic(ctx); err != nil {
		t.Fatal(err)
	}
	st = db.CacheStats()
	if st.Symbolic.Misses != 1 || st.Symbolic.Entries != 1 {
		t.Fatalf("symbolic stats = %+v, want 1 miss / 1 entry", st.Symbolic)
	}
	if st.Plan.Misses != 1 {
		t.Fatalf("symbolic traffic bled into plan stats: %+v", st.Plan)
	}

	// A provably empty expression caches as a plan-kind negative entry
	// and replays as a negative hit.
	empty := db.Rel("S").Where(cdb.NewAtom(cdb.Vector{1, 0}, -5, false)) // x <= -5
	if _, err := empty.Volume(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := empty.Volume(ctx); err != nil {
		t.Fatal(err)
	}
	st = db.CacheStats()
	if st.Plan.NegativeEntries != 1 {
		t.Fatalf("plan negative residency = %+v, want 1", st.Plan)
	}
	if st.Plan.NegativeHits < 1 {
		t.Fatalf("plan negative hits = %+v, want >= 1", st.Plan)
	}

	// The legacy aggregates stay the sums of the kinds.
	if want := st.Plan.Misses + st.Symbolic.Misses + st.Alibi.Misses; st.Misses != want {
		t.Fatalf("aggregate misses = %d, want %d", st.Misses, want)
	}
	wantHits := st.Plan.Hits + st.Plan.NegativeHits +
		st.Symbolic.Hits + st.Symbolic.NegativeHits +
		st.Alibi.Hits + st.Alibi.NegativeHits
	if st.Hits != wantHits {
		t.Fatalf("aggregate hits = %d, want %d", st.Hits, wantHits)
	}
}

// TestExplainObservedCosts: after a draw, Explain reports per-stage
// timings and the observed whole-expression and per-disjunct costs.
func TestExplainObservedCosts(t *testing.T) {
	db, err := cdb.Open(handleProgram)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()

	e := db.Rel("U") // two disjuncts: observed costs split per member
	if _, err := e.SampleN(ctx, 64); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Explain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CompileNanos <= 0 {
		t.Fatal("no compile timing recorded")
	}
	stages := map[string]cdb.StageTiming{}
	for _, s := range rep.Stages {
		stages[s.Stage] = s
	}
	for _, want := range []string{"compile", "prepare", "sample", "bind"} {
		if stages[want].Nanos <= 0 && stages[want].Count <= 0 {
			t.Fatalf("stage %q missing or empty in %+v", want, rep.Stages)
		}
	}
	if rep.Observed == nil {
		t.Fatal("no observed cost for the expression")
	}
	if rep.Observed.Preps != 1 || rep.Observed.Draws != 1 || rep.Observed.Samples != 64 {
		t.Fatalf("observed = %+v", rep.Observed)
	}
	if rep.Observed.WalkSteps <= 0 || rep.Observed.OracleCalls <= 0 {
		t.Fatalf("observed walk effort missing: %+v", rep.Observed)
	}
	var attributed int64
	for i, d := range rep.Disjuncts {
		if d.Observed == nil {
			t.Fatalf("disjunct %d has no observed cost", i)
		}
		attributed += d.Observed.WalkSteps
	}
	if attributed != rep.Observed.WalkSteps {
		t.Fatalf("per-disjunct walk steps %d != total %d", attributed, rep.Observed.WalkSteps)
	}
	out := rep.String()
	for _, want := range []string{"stages:", "observed:", "walk_steps="} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered report missing %q:\n%s", want, out)
		}
	}

	// The same keys are queryable directly off the handle.
	if _, ok := db.ObservedCost(rep.CacheKey); !ok {
		t.Fatalf("no handle-level cost under %q", rep.CacheKey)
	}
	if len(db.ObservedCosts()) == 0 {
		t.Fatal("ObservedCosts returned nothing")
	}
}
