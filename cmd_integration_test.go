package cdb_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCommandLineTools exercises every binary end to end through the Go
// toolchain. Skipped with -short.
func TestCommandLineTools(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration tests skipped in -short mode")
	}
	dir := t.TempDir()
	dbPath := filepath.Join(dir, "demo.cdb")
	prog := `
rel S(x, y) := { x >= 0, y >= 0, x + y <= 1 } | { 2 <= x <= 3, 0 <= y <= 1 };
query Q(x)  := exists y. S(x, y);
query W(x, y) := S(x, y);
`
	if err := os.WriteFile(dbPath, []byte(prog), 0o644); err != nil {
		t.Fatal(err)
	}
	run := func(args ...string) string {
		t.Helper()
		cmd := exec.Command("go", append([]string{"run"}, args...)...)
		cmd.Dir = "."
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("go run %v: %v\n%s", args, err, out)
		}
		return string(out)
	}

	t.Run("cdbsample", func(t *testing.T) {
		out := run("./cmd/cdbsample", "-file", dbPath, "-rel", "S", "-n", "5", "-seed", "1")
		lines := strings.Split(strings.TrimSpace(out), "\n")
		if len(lines) != 5 {
			t.Fatalf("want 5 sample lines, got %d:\n%s", len(lines), out)
		}
		for _, l := range lines {
			if len(strings.Fields(l)) != 2 {
				t.Errorf("sample line %q is not 2-D", l)
			}
		}
	})

	t.Run("cdbvol exact", func(t *testing.T) {
		out := run("./cmd/cdbvol", "-file", dbPath, "-rel", "S", "-exact")
		if !strings.Contains(out, "1.5") {
			t.Errorf("exact volume output %q should contain 1.5", out)
		}
	})

	t.Run("cdbvol estimate", func(t *testing.T) {
		out := run("./cmd/cdbvol", "-file", dbPath, "-rel", "S", "-seed", "2")
		if !strings.Contains(out, "volume(S)") {
			t.Errorf("estimate output %q", out)
		}
	})

	t.Run("cdbquery plan and symbolic", func(t *testing.T) {
		out := run("./cmd/cdbquery", "-file", dbPath, "-query", "Q", "-mode", "plan")
		if !strings.Contains(out, "union combinator") {
			t.Errorf("plan output %q", out)
		}
		out = run("./cmd/cdbquery", "-file", dbPath, "-query", "Q", "-mode", "symbolic")
		if !strings.Contains(out, "Q(x)") {
			t.Errorf("symbolic output %q", out)
		}
	})

	t.Run("cdbquery explain", func(t *testing.T) {
		out := run("./cmd/cdbquery", "-file", dbPath, "-query", "Q", "-explain")
		for _, want := range []string{"canonical key: cplan:", "cache: miss", "disjunct 0"} {
			if !strings.Contains(out, want) {
				t.Errorf("explain output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("cdbplot", func(t *testing.T) {
		svgPath := filepath.Join(dir, "out.svg")
		run("./cmd/cdbplot", "-file", dbPath, "-rel", "S", "-samples", "30", "-hull", "-o", svgPath)
		data, err := os.ReadFile(svgPath)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), "<svg") || !strings.Contains(string(data), "<circle") {
			t.Error("SVG output missing expected elements")
		}
	})

	t.Run("cdbbench single", func(t *testing.T) {
		out := run("./cmd/cdbbench", "-run", "E3", "-quick")
		if !strings.Contains(out, "E3") || !strings.Contains(out, "within 1.35x") {
			t.Errorf("bench output %q", out)
		}
	})

	t.Run("cdbmotion fleet slice alibi", func(t *testing.T) {
		fleetPath := filepath.Join(dir, "fleet.cdb")
		run("./cmd/cdbmotion", "-mode", "fleet", "-n", "2", "-steps", "2", "-seed", "5", "-o", fleetPath)
		data, err := os.ReadFile(fleetPath)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), "rel obj0(x, y, t)") {
			t.Fatalf("fleet program missing obj0:\n%s", data)
		}

		out := run("./cmd/cdbmotion", "-mode", "slice", "-file", fleetPath, "-rel", "obj0",
			"-t0", "12.5", "-samples", "4", "-seed", "1")
		lines := strings.Split(strings.TrimSpace(out), "\n")
		if len(lines) != 4 {
			t.Fatalf("want 4 slice samples, got %d:\n%s", len(lines), out)
		}
		for _, l := range lines {
			if len(strings.Fields(l)) != 2 {
				t.Errorf("slice sample %q is not a 2-D position", l)
			}
		}

		out = run("./cmd/cdbmotion", "-mode", "alibi", "-file", fleetPath, "-a", "obj0", "-b", "obj1", "-seed", "3")
		if !strings.Contains(out, "cross-check: consistent=true") {
			t.Errorf("alibi verdicts disagree:\n%s", out)
		}

		// -trace prints the span tree to stderr (CombinedOutput folds it
		// in): the root span plus the hand-attached stage spans.
		out = run("./cmd/cdbmotion", "-mode", "alibi", "-file", fleetPath,
			"-a", "obj0", "-b", "obj1", "-seed", "3", "-trace")
		for _, want := range []string{"cdbmotion", "trace=", "alibi.report"} {
			if !strings.Contains(out, want) {
				t.Errorf("traced alibi output missing %q:\n%s", want, out)
			}
		}
		out = run("./cmd/cdbmotion", "-mode", "slice", "-file", fleetPath, "-rel", "obj0",
			"-t0", "12.5", "-samples", "2", "-seed", "1", "-trace")
		for _, want := range []string{"slice.prepare", "slice.sample"} {
			if !strings.Contains(out, want) {
				t.Errorf("traced slice output missing %q:\n%s", want, out)
			}
		}
	})

	t.Run("cdbsql", func(t *testing.T) {
		out := run("./cmd/cdbsql", "-file", dbPath, "-e", "SELECT * FROM S WHERE x + y <= 1 SAMPLE 5 SEED 1")
		lines := strings.Split(strings.TrimSpace(out), "\n")
		if len(lines) != 5 {
			t.Fatalf("want 5 sample lines, got %d:\n%s", len(lines), out)
		}
		for _, l := range lines {
			if len(strings.Fields(l)) != 2 {
				t.Errorf("sample line %q is not 2-D", l)
			}
		}

		out = run("./cmd/cdbsql", "-file", dbPath, "-e", "SELECT VOLUME(*) FROM S")
		if !strings.Contains(out, "volume ≈") {
			t.Errorf("volume output %q", out)
		}

		out = run("./cmd/cdbsql", "-file", dbPath, "-explain", "-e", "SELECT * FROM S")
		for _, want := range []string{"canonical key: cplan:", "disjunct 0"} {
			if !strings.Contains(out, want) {
				t.Errorf("explain output missing %q:\n%s", want, out)
			}
		}

		// Stdin script: two ';'-separated statements, one symbolic
		// relation and one explain.
		cmd := exec.Command("go", "run", "./cmd/cdbsql", "-file", dbPath)
		cmd.Dir = "."
		cmd.Stdin = strings.NewReader("SELECT x AS u FROM S WHERE y <= 0.5; EXPLAIN SELECT * FROM S")
		piped, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("cdbsql stdin script: %v\n%s", err, piped)
		}
		for _, want := range []string{"u", "rel", "canonical key: cplan:"} {
			if !strings.Contains(string(piped), want) {
				t.Errorf("stdin script output missing %q:\n%s", want, piped)
			}
		}
	})

	t.Run("cdbquery audit", func(t *testing.T) {
		// W is quantifier-free, so it has a cacheable prepared sampler
		// inside the exact-oracle fragment (2-D, 2 disjuncts).
		out := run("./cmd/cdbquery", "-file", dbPath, "-query", "W", "-audit")
		for _, want := range []string{"audit pass", "check=cells", "check=shares", `"audit_outcome": "pass"`} {
			if !strings.Contains(out, want) {
				t.Errorf("audit output missing %q:\n%s", want, out)
			}
		}
	})
}
