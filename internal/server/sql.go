package server

// POST /v1/sql: the CDB-SQL endpoint. The request body is one plain-text
// CDB-SQL statement — pasteable from cdbsql or a file, no JSON envelope
// — and the database id rides in the ?database= query parameter. The
// statement compiles onto the same algebra IR as /v1/expr, so the SQL
// text and the structurally equal JSON tree report one canonical key
// and warm one cache entry; the execution mode is inferred from the
// statement itself (SAMPLE → sample, VOLUME(*) → volume, EXPLAIN
// [SYMBOLIC] → explain, bare SELECT → relation via symbolic
// evaluation). Parse and compile errors come back as structured
// {error, line, col} bodies.

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	cdb "repro"
	"repro/internal/query"
	"repro/internal/runtime"
	sqldialect "repro/internal/sql"
)

// maxSQLBytes bounds one statement body.
const maxSQLBytes = 1 << 16

// sqlResponse is the /v1/expr response shape plus the statement's
// canonical rendering (so clients see exactly what was executed) and,
// for EXPLAIN SYMBOLIC, the runtime symbolic cache key.
type sqlResponse struct {
	exprResponse
	Statement   string `json:"statement"`
	SymbolicKey string `json:"symbolic_key,omitempty"`
}

func (s *Server) handleSQL(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSQLBytes))
	if err != nil {
		s.writeError(w, "sql", http.StatusBadRequest, fmt.Errorf("read statement: %w", err))
		return
	}
	q := r.URL.Query()
	entry, ok := s.rt.Registry().Get(q.Get("database"))
	if !ok {
		s.writeError(w, "sql", http.StatusNotFound, fmt.Errorf("database %q not registered (pass ?database=)", q.Get("database")))
		return
	}
	c, err := sqldialect.Compile(entry.DB, string(body))
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, query.ErrUnknownTarget) {
			status = http.StatusNotFound
		}
		s.writeError(w, "sql", status, err)
		return
	}
	trace := false
	if v := q.Get("trace"); v != "" {
		trace, _ = strconv.ParseBool(v)
	}
	workers := 0
	if v := q.Get("workers"); v != "" {
		workers, err = strconv.Atoi(v)
		if err != nil || workers < 0 {
			s.writeError(w, "sql", http.StatusBadRequest, fmt.Errorf("bad workers %q", v))
			return
		}
	}
	// Statements carry no sampler options: every SQL request shares the
	// DefaultOptions cache entries — the same fingerprint optionless
	// /v1/expr requests and the cdb facade use.
	opts := cdb.DefaultOptions()

	start := time.Now()
	resp := sqlResponse{
		exprResponse: exprResponse{Database: entry.ID, Mode: string(c.Mode), TraceID: traceID(r.Context())},
		Statement:    c.Source,
	}

	switch {
	case c.Mode == sqldialect.ModeRelation:
		// Bare SELECT: derive the quantifier-free relation symbolically —
		// the only evaluation that returns the set itself.
		sq, err := c.Node.CompileSymbolic(entry.DB)
		if err != nil {
			s.writeError(w, "sql", http.StatusUnprocessableEntity, err)
			return
		}
		if !s.execSymbolic(w, r, "sql", entry, sq, &resp.exprResponse) {
			return
		}
	case c.Mode == sqldialect.ModeExplain && c.ExplainSymbolic:
		if !s.sqlExplainSymbolic(w, entry, c.Node, &resp) {
			return
		}
	default:
		plan, err := c.Node.Compile(entry.DB)
		if err != nil {
			if errors.Is(err, cdb.ErrUnsupportedQuery) {
				// Full first-order statement outside the sampling fragment:
				// VOLUME(*) still has an exact symbolic answer, and EXPLAIN
				// degrades to the symbolic-only report — mirroring the
				// facade's fallbacks. SAMPLE has no symbolic equivalent.
				switch c.Mode {
				case sqldialect.ModeVolume:
					sq, serr := c.Node.CompileSymbolic(entry.DB)
					if serr != nil {
						s.writeError(w, "sql", http.StatusUnprocessableEntity, serr)
						return
					}
					if !s.execSymbolic(w, r, "sql", entry, sq, &resp.exprResponse) {
						return
					}
				case sqldialect.ModeExplain:
					if !s.sqlExplainSymbolic(w, entry, c.Node, &resp) {
						return
					}
				default:
					s.writeError(w, "sql", http.StatusUnprocessableEntity,
						fmt.Errorf("%w; SAMPLE needs an existential-positive statement", err))
					return
				}
				break
			}
			s.writeError(w, "sql", http.StatusBadRequest, err)
			return
		}
		cp := query.Canonicalize(plan)
		resp.Columns = cp.Plan.OutVars
		resp.CanonicalKey = cp.Key
		resp.Empty = cp.Empty()
		var seed uint64
		if c.SeedSet {
			seed = c.Seed
		}
		x := planExec{mode: string(c.Mode), n: c.N, workers: workers, seed: seed}
		if !s.execPlanMode(w, r, "sql", entry, cp, opts, x, &resp.exprResponse) {
			return
		}
	}
	// The SQL-visible columns (aliases applied) override the plan's
	// positional names; the canonical key is unaffected — keys never
	// include column names.
	if len(c.Columns) > 0 {
		resp.Columns = append([]string(nil), c.Columns...)
	}
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	resp.Spans = traceSpans(r.Context(), trace)
	writeJSON(w, http.StatusOK, resp)
}

// sqlExplainSymbolic serves EXPLAIN SYMBOLIC (and plain EXPLAIN of a
// full first-order statement): report the symbolic cache key and its
// residency without evaluating anything.
func (s *Server) sqlExplainSymbolic(w http.ResponseWriter, entry *DatabaseEntry, node *query.Node, resp *sqlResponse) bool {
	sq, err := node.CompileSymbolic(entry.DB)
	if err != nil {
		s.writeError(w, "sql", http.StatusUnprocessableEntity, err)
		return false
	}
	skey := runtime.SymbolicKey(entry.ID, sq.Key)
	resp.Columns = sq.OutVars
	resp.CanonicalKey = sq.Key
	resp.SymbolicKey = skey
	resp.Cache = residencyLabel(s.rt.SymbolicCache().Peek(skey))
	return true
}

// routeKeySQL parses the statement and routes on the exact cache key
// handleSQL will touch: the prepared-plan key for sample/volume/explain
// statements, the symbolic key for bare SELECTs, EXPLAIN SYMBOLIC and
// full first-order fallbacks. SQL requests carry no sampler options, so
// the options fingerprint is DefaultOptions' — matching the handler.
func routeKeySQL(s *Server, r *http.Request, body []byte) string {
	e, ok := s.rt.Registry().Get(r.URL.Query().Get("database"))
	if !ok {
		return ""
	}
	c, err := sqldialect.Compile(e.DB, string(body))
	if err != nil {
		return ""
	}
	symbolic := func() string {
		sq, err := c.Node.CompileSymbolic(e.DB)
		if err != nil {
			return ""
		}
		return runtime.SymbolicKey(e.ID, sq.Key)
	}
	if c.Mode == sqldialect.ModeRelation || (c.Mode == sqldialect.ModeExplain && c.ExplainSymbolic) {
		return symbolic()
	}
	plan, err := c.Node.Compile(e.DB)
	if err != nil {
		if errors.Is(err, cdb.ErrUnsupportedQuery) {
			return symbolic()
		}
		return ""
	}
	return runtime.PlanKey(e.ID, query.Canonicalize(plan).Key, cdb.DefaultOptions().CacheKey())
}
