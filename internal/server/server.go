// Package server implements cdbserve, the HTTP sampling service over the
// constraint-database library: clients register constraint database
// programs, then draw almost-uniform samples, volume estimates, query
// evaluations and shape reconstructions over HTTP.
//
// The paper's observation is that uniform generation makes constraint
// query evaluation a cheap, repeatable online operation; this package is
// the layer that actually serves it. Three mechanisms carry the load:
//
//   - a Registry of parsed databases (parse once, sample forever),
//   - a singleflight LRU SamplerCache of prepared samplers, so the
//     expensive rounding/well-boundedness/volume setup is paid once per
//     (database, relation, options) and every later request binds its
//     seed to the warm geometry, and
//   - an Executor whose shared worker pool bounds the concurrency of
//     batched /v1/sample draws and coalesces identical concurrent ones
//     (single-walker paths — query sampling, reconstruction — run
//     sequentially on their handler goroutines).
//
// Sampling is deterministic per request: the preparation seed is derived
// from the sampler's cache key and the response depends only on
// (database, relation, options, n, workers, seed).
package server

import (
	"hash/fnv"
	"net/http"
	"runtime"
	"time"
)

// Config tunes the server. The zero value picks sensible defaults.
type Config struct {
	// PoolSize is the sampling worker pool size (default GOMAXPROCS).
	PoolSize int
	// CacheSize caps the prepared-sampler LRU (default 64).
	CacheSize int
	// DefaultWorkers is the per-request logical worker count when the
	// request does not specify one (default min(4, PoolSize)).
	DefaultWorkers int
	// MaxSamples caps n for a single sample request (default 1e6).
	MaxSamples int
	// MaxSourceBytes caps the program size accepted by POST /v1/databases
	// (default 1 MiB).
	MaxSourceBytes int
	// MaxMedianK caps the median_k amplification factor of /v1/volume —
	// each of the k runs pays a full cold estimator (default 64).
	MaxMedianK int
	// MaxDatabases caps the registry size (default 1024).
	MaxDatabases int
}

func (c Config) withDefaults() Config {
	if c.PoolSize <= 0 {
		c.PoolSize = runtime.GOMAXPROCS(0)
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 64
	}
	if c.DefaultWorkers <= 0 {
		c.DefaultWorkers = min(4, c.PoolSize)
	}
	if c.MaxSamples <= 0 {
		c.MaxSamples = 1_000_000
	}
	if c.MaxSourceBytes <= 0 {
		c.MaxSourceBytes = 1 << 20
	}
	if c.MaxMedianK <= 0 {
		c.MaxMedianK = 64
	}
	if c.MaxDatabases <= 0 {
		c.MaxDatabases = 1024
	}
	return c
}

// Server wires the registry, sampler cache, batch executor and metrics
// behind an http.Handler.
type Server struct {
	cfg      Config
	registry *Registry
	cache    *SamplerCache
	pool     *Pool
	exec     *Executor
	metrics  *Metrics
}

// New builds a server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	m := NewMetrics()
	pool := NewPool(cfg.PoolSize, m)
	return &Server{
		cfg:      cfg,
		registry: NewRegistry(cfg.MaxDatabases),
		cache:    NewSamplerCache(cfg.CacheSize, m),
		pool:     pool,
		exec:     NewExecutor(pool, m),
		metrics:  m,
	}
}

// Close stops the worker pool.
func (s *Server) Close() { s.pool.Close() }

// Registry exposes the database registry (used by cmd/cdbserve to
// preload programs at boot).
func (s *Server) Registry() *Registry { return s.registry }

// Handler returns the routed HTTP handler. Every endpoint is wrapped by
// instrument, which owns the per-endpoint request count and latency
// metrics — handlers themselves only report errors.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/databases", s.instrument("databases", s.handleRegister))
	mux.HandleFunc("GET /v1/databases", s.instrument("databases", s.handleListDatabases))
	mux.HandleFunc("GET /v1/databases/{id}", s.instrument("databases", s.handleGetDatabase))
	mux.HandleFunc("POST /v1/sample", s.instrument("sample", s.handleSample))
	mux.HandleFunc("POST /v1/volume", s.instrument("volume", s.handleVolume))
	mux.HandleFunc("POST /v1/query", s.instrument("query", s.handleQuery))
	mux.HandleFunc("POST /v1/reconstruct", s.instrument("reconstruct", s.handleReconstruct))
	mux.HandleFunc("POST /v1/spacetime/slice", s.instrument("spacetime_slice", s.handleSpacetimeSlice))
	mux.HandleFunc("POST /v1/spacetime/sample", s.instrument("spacetime_sample", s.handleSpacetimeSample))
	mux.HandleFunc("POST /v1/spacetime/alibi", s.instrument("spacetime_alibi", s.handleSpacetimeAlibi))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	return mux
}

// instrument counts the request and records its wall-clock latency
// under the endpoint label.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.metrics.IncRequest(endpoint)
		start := time.Now()
		h(w, r)
		s.metrics.ObserveLatency(endpoint, time.Since(start).Seconds())
	}
}

// samplerKey is the prepared-sampler cache key: database, target kind
// ("rel" or "query"), target name and the canonical options fingerprint.
func samplerKey(dbID, kind, name, optsKey string) string {
	return dbID + "\x1f" + kind + "\x1f" + name + "\x1f" + optsKey
}

// prepSeedFor derives the preparation seed from the cache key, so the
// prepared geometry — and therefore every response — is a pure function
// of (database, target, options), stable across server restarts.
func prepSeedFor(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}
