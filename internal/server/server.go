// Package server implements cdbserve, the HTTP sampling service over the
// constraint-database library: clients register constraint database
// programs, then draw almost-uniform samples, volume estimates, query
// evaluations and shape reconstructions over HTTP.
//
// The paper's observation is that uniform generation makes constraint
// query evaluation a cheap, repeatable online operation; this package is
// the HTTP adapter that serves it. All of the heavy lifting — the
// registry of parsed databases, the singleflight LRU of prepared
// samplers (including negative entries for empty time slices and the
// prepared-alibi cache) and the bounded worker pool with request
// coalescing — lives in the shared internal/runtime package, the same
// runtime behind the cdb.DB handle. Handlers here only decode requests,
// call into the runtime with the request's context (cancelled clients
// abort their walks mid-epoch) and encode responses plus metrics.
//
// Sampling is deterministic per request: the preparation seed is derived
// from the sampler's cache key and the response depends only on
// (database, relation, options, n, workers, seed).
package server

import (
	"encoding/json"
	"expvar"
	"log"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/runtime"
)

// Config tunes the server. The zero value picks sensible defaults.
type Config struct {
	// PoolSize is the sampling worker pool size (default GOMAXPROCS).
	PoolSize int
	// CacheSize caps the prepared-sampler LRU (default 64).
	CacheSize int
	// DefaultWorkers is the per-request logical worker count when the
	// request does not specify one (default min(4, PoolSize)).
	DefaultWorkers int
	// MaxSamples caps n for a single sample request (default 1e6).
	MaxSamples int
	// MaxSourceBytes caps the program size accepted by POST /v1/databases
	// (default 1 MiB).
	MaxSourceBytes int
	// MaxMedianK caps the median_k amplification factor of /v1/volume —
	// each of the k runs pays a full cold estimator (default 64).
	MaxMedianK int
	// MaxDatabases caps the registry size (default 1024).
	MaxDatabases int
	// SlowQuery, when positive, logs any request slower than this
	// threshold with its trace id and per-stage span summary.
	SlowQuery time.Duration
	// AuditInterval, when positive, starts the background quality
	// auditor at that sweep interval: warm cache entries are
	// periodically re-drawn and cross-checked against exact symbolic
	// volumes, with verdicts on /metrics (cdbserve_audit_total), the
	// /v1/audit endpoint and /debug/quality. Zero leaves the background
	// loop off; POST /v1/audit still audits on demand.
	AuditInterval time.Duration
	// Logger receives slow-query lines (default log.Default()).
	Logger *log.Logger
	// Cluster configures multi-node mode: consistent-hash routing of
	// prepared-cache keys across Cluster.Peers with transparent
	// forwarding. The zero value (no peers) is single-node operation
	// with zero routing overhead. The config must pass
	// Cluster.Validate(); cmd/cdbserve validates before construction.
	Cluster cluster.Config
	// Admission configures admission control (bounded in-flight budget,
	// per-tenant token buckets). The zero value admits everything.
	Admission cluster.AdmissionConfig
}

func (c Config) withDefaults() Config {
	if c.Logger == nil {
		c.Logger = log.Default()
	}
	if c.MaxDatabases <= 0 {
		// The server's historical contract: non-positive means the 1024
		// default, never the runtime's "negative = unbounded" escape.
		c.MaxDatabases = 1024
	}
	if c.MaxSamples <= 0 {
		c.MaxSamples = 1_000_000
	}
	if c.MaxSourceBytes <= 0 {
		c.MaxSourceBytes = 1 << 20
	}
	if c.MaxMedianK <= 0 {
		c.MaxMedianK = 64
	}
	return c
}

// Server wires the shared sampling runtime and metrics behind an
// http.Handler. It owns no registry, cache or pool of its own — those
// live in internal/runtime.
type Server struct {
	cfg     Config
	rt      *runtime.Runtime
	metrics *Metrics

	// Cluster mode (all set even when disabled; the Local router and a
	// peerless Health make the single-node path branch-free).
	router    cluster.Router
	health    *cluster.Health
	gate      *cluster.Gate
	warm      *cluster.KeySet
	admission *cluster.Admission // nil when admission is not configured
	fwd       *http.Client       // peer forwarding + health probes
	draining  atomic.Bool
}

// New builds a server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	cfg.Cluster = cfg.Cluster.WithDefaults()
	m := NewMetrics()
	rt := runtime.NewWithSink(runtime.Config{
		PoolSize:     cfg.PoolSize,
		CacheSize:    cfg.CacheSize,
		MaxDatabases: cfg.MaxDatabases,
	}, m)
	if cfg.DefaultWorkers <= 0 {
		cfg.DefaultWorkers = min(4, rt.Pool().Size())
	}
	if cfg.AuditInterval > 0 {
		rt.Auditor().Configure(runtime.AuditConfig{Interval: cfg.AuditInterval})
		rt.Auditor().Start()
	}
	s := &Server{
		cfg:     cfg,
		rt:      rt,
		metrics: m,
		router:  cluster.NewRouter(cfg.Cluster),
		health:  cluster.NewHealth(cfg.Cluster.Peers, cfg.Cluster.Breaker),
		gate:    cluster.NewGate(),
		warm:    cluster.NewKeySet(4096),
		fwd:     &http.Client{Timeout: cfg.Cluster.ForwardTimeout},
	}
	if cfg.Admission.Enabled() {
		s.admission = cluster.NewAdmission(cfg.Admission)
	}
	if cfg.Cluster.Enabled() && cfg.Cluster.ProbeInterval > 0 {
		s.health.StartProber(s.fwd, "/healthz", cfg.Cluster.ProbeInterval)
	}
	return s
}

// Close stops the worker pool and the peer health prober.
func (s *Server) Close() {
	s.health.StopProber()
	s.rt.Close()
}

// BeginDrain flips the server into draining: /healthz turns not-ready
// (so load balancers stop sending new work) and the background prober
// stops. In-flight local and forwarded requests keep their contexts and
// finish normally — the actual connection drain is http.Server.Shutdown
// in cmd/cdbserve, bounded by -drain-timeout.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
	s.health.StopProber()
}

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Registry exposes the database registry (used by cmd/cdbserve to
// preload programs at boot).
func (s *Server) Registry() *Registry { return s.rt.Registry() }

// Runtime exposes the shared sampling runtime.
func (s *Server) Runtime() *runtime.Runtime { return s.rt }

// Handler returns the routed HTTP handler. Every endpoint is wrapped by
// instrument, which owns the per-endpoint request count and latency
// metrics — handlers themselves only report errors.
func (s *Server) Handler() http.Handler {
	// Data-plane endpoints stack instrument → admission → routing →
	// handler: a shed request is counted but never read past its
	// headers; a forwarded request never touches the local runtime.
	// With no cluster peers and no admission config both middle layers
	// collapse to the bare handler.
	routed := func(endpoint string, keyOf routeKeyFunc, h http.HandlerFunc) http.HandlerFunc {
		return s.instrument(endpoint, s.admitted(endpoint, s.routed(endpoint, keyOf, h)))
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/databases", s.instrument("databases", s.admitted("databases", s.handleRegister)))
	mux.HandleFunc("GET /v1/databases", s.instrument("databases", s.handleListDatabases))
	mux.HandleFunc("GET /v1/databases/{id}", s.instrument("databases", s.handleGetDatabase))
	mux.HandleFunc("POST /v1/sample", routed("sample", routeKeySample, s.handleSample))
	mux.HandleFunc("POST /v1/volume", routed("volume", routeKeyVolume, s.handleVolume))
	mux.HandleFunc("POST /v1/query", routed("query", routeKeyQuery, s.handleQuery))
	mux.HandleFunc("POST /v1/expr", routed("expr", routeKeyExpr, s.handleExpr))
	mux.HandleFunc("POST /v1/sql", routed("sql", routeKeySQL, s.handleSQL))
	mux.HandleFunc("POST /v1/reconstruct", routed("reconstruct", routeKeyReconstruct, s.handleReconstruct))
	mux.HandleFunc("POST /v1/spacetime/slice", routed("spacetime_slice", routeKeySpacetimeSlice, s.handleSpacetimeSlice))
	mux.HandleFunc("POST /v1/spacetime/sample", routed("spacetime_sample", routeKeySpacetimeSample, s.handleSpacetimeSample))
	mux.HandleFunc("POST /v1/spacetime/alibi", routed("spacetime_alibi", routeKeySpacetimeAlibi, s.handleSpacetimeAlibi))
	mux.HandleFunc("GET /v1/audit", s.instrument("audit", s.handleAuditStatus))
	mux.HandleFunc("POST /v1/audit", s.instrument("audit", s.handleAuditRun))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	return mux
}

// instrument counts the request, roots a trace span on its context
// (so every pipeline stage below attaches to it), records its
// wall-clock latency and the per-stage durations, and logs slow
// queries with their trace id and span summary.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.metrics.IncRequest(endpoint)
		ctx, root := obs.NewTrace(r.Context(), endpoint)
		w.Header().Set("X-Trace-Id", root.TraceID())
		start := time.Now()
		h(w, r.WithContext(ctx))
		elapsed := time.Since(start)
		root.End()
		s.metrics.ObserveLatency(endpoint, elapsed.Seconds())
		for _, c := range root.StageNanos() {
			if c.Name == endpoint {
				continue // the root span itself is the request latency
			}
			s.metrics.ObserveStage(c.Name, float64(c.Value)/1e9)
		}
		if s.cfg.SlowQuery > 0 && elapsed >= s.cfg.SlowQuery {
			s.cfg.Logger.Printf("slow query: endpoint=%s elapsed=%v trace=%s\n%s",
				endpoint, elapsed, root.TraceID(), root.String())
		}
	}
}

// DebugHandler returns the operator-only debug mux: net/http/pprof
// profiles, expvar counters and a JSON dump of the runtime's observed
// per-sampler cost table under /debug/costs.
//
// The handler is UNAUTHENTICATED and can expose memory contents
// through heap profiles — serve it on a loopback- or VPN-bound
// listener (cdbserve -debug-addr), never on the public address.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/costs", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.rt.Costs().Each())
	})
	mux.HandleFunc("/debug/cluster", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s.clusterStatusNow())
	})
	mux.HandleFunc("/debug/quality", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		// Reports() is sorted by key, so the dump is deterministic for a
		// fixed workload, like /debug/costs.
		_ = enc.Encode(map[string]any{
			"audit":   s.rt.Auditor().Stats(),
			"reports": s.rt.Quality().Reports(),
		})
	})
	return mux
}
