package server

import (
	"errors"
	"fmt"
	"sync"

	cdb "repro"
)

// Pool is a fixed-size worker pool. Every batched sample draw runs its
// worker chunks on it, so the concurrency of /v1/sample is bounded by
// the pool size no matter how many requests are in flight — concurrent
// requests are coalesced onto the same workers instead of each spawning
// their own. (Single-walker paths — query sampling, reconstruction —
// run one sequential walk on their handler goroutine and are bounded by
// the HTTP server's connection handling instead.)
type Pool struct {
	jobs    chan func()
	wg      sync.WaitGroup
	size    int
	metrics *Metrics

	mu        sync.RWMutex
	closed    bool
	closeOnce sync.Once
}

// NewPool starts size workers (minimum 1). metrics may be nil.
func NewPool(size int, metrics *Metrics) *Pool {
	if size < 1 {
		size = 1
	}
	p := &Pool{jobs: make(chan func()), size: size, metrics: metrics}
	for i := 0; i < size; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for fn := range p.jobs {
				if p.metrics != nil {
					p.metrics.BatchJobs.Add(1)
				}
				runJob(fn)
			}
		}()
	}
	return p
}

// runJob shields the worker from a panicking job: handler goroutines are
// recovered per-connection by net/http, but a bare pool goroutine would
// take the whole process down. The job's own waiters see the failure
// through their error slots (SampleManyVia converts worker panics to
// errors); the recover here is the process-level backstop.
func runJob(fn func()) {
	defer func() { _ = recover() }()
	fn()
}

// Submit schedules fn on the pool, blocking until a worker accepts it.
// After Close, fn runs synchronously on the caller instead — a request
// that raced a shutdown still completes rather than panicking on the
// closed channel.
func (p *Pool) Submit(fn func()) {
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		fn()
		return
	}
	// Hold the read lock across the send so Close cannot close the
	// channel between the check and the send.
	defer p.mu.RUnlock()
	p.jobs <- fn
}

// Size returns the number of workers.
func (p *Pool) Size() int { return p.size }

// Close stops the workers after draining queued jobs. Submitters that
// already passed the closed check finish their sends first (the workers
// keep consuming until the channel drains).
func (p *Pool) Close() {
	p.closeOnce.Do(func() {
		p.mu.Lock()
		p.closed = true
		close(p.jobs)
		p.mu.Unlock()
	})
	p.wg.Wait()
}

// Executor is the batch executor for sample requests. It does two
// things on top of the raw pool:
//
//   - every request's worker chunks run on the shared pool (bounded
//     concurrency, same deterministic output as cdb.SampleMany), and
//   - byte-identical concurrent requests — same prepared sampler, n,
//     workers and seed — are coalesced into a single draw whose result
//     every caller shares.
type Executor struct {
	pool *Pool

	mu       sync.Mutex
	inflight map[string]*draw

	metrics *Metrics
}

type draw struct {
	ready chan struct{}
	pts   []cdb.Vector
	err   error
}

// NewExecutor returns an executor over the given pool.
func NewExecutor(pool *Pool, metrics *Metrics) *Executor {
	return &Executor{pool: pool, inflight: map[string]*draw{}, metrics: metrics}
}

// SampleMany draws n points from ps with w logical workers and base seed
// seed, deterministically identical to ps.SampleMany(n, w, seed).
// samplerKey identifies the prepared sampler (the cache key); coalesced
// reports that the result was shared with an identical in-flight draw.
func (e *Executor) SampleMany(samplerKey string, ps *cdb.PreparedSampler, n, w int, seed uint64) (pts []cdb.Vector, coalesced bool, err error) {
	key := fmt.Sprintf("%s|n=%d|w=%d|seed=%d", samplerKey, n, w, seed)
	e.mu.Lock()
	if d, ok := e.inflight[key]; ok {
		e.mu.Unlock()
		if e.metrics != nil {
			e.metrics.Coalesced.Add(1)
		}
		<-d.ready
		return d.pts, true, d.err
	}
	d := &draw{ready: make(chan struct{})}
	e.inflight[key] = d
	e.mu.Unlock()

	// Release the waiters and the inflight slot even if the draw panics
	// on this goroutine, mirroring SamplerCache.Get — otherwise every
	// coalesced waiter of this key blocks forever.
	finished := false
	defer func() {
		if !finished {
			d.err = errors.New("server: batched draw panicked")
		}
		close(d.ready)
		e.mu.Lock()
		delete(e.inflight, key)
		e.mu.Unlock()
	}()
	d.pts, d.err = ps.SampleManyVia(e.pool.Submit, n, w, seed)
	finished = true
	return d.pts, false, d.err
}
