package server

// Tests of POST /v1/expr: the JSON algebra endpoint shares the
// prepared-sampler cache across operand orders (and with name-addressed
// requests), serves empty expressions as cached volume-0 verdicts, and
// explains plans without preparing geometry.

import (
	"encoding/json"
	"math"
	"net/http"
	"testing"
)

const exprProgram = `
rel A(x, y) := { 0 <= x <= 1, 0 <= y <= 1 };
rel B(x, y) := { 0.5 <= x <= 2, 0 <= y <= 1 };
rel C(x, y) := { 3 <= x <= 4, 0 <= y <= 1 };
`

func rel(name string) *exprNodeJSON { return &exprNodeJSON{Op: "rel", Name: name} }

func binOp(op string, l, r *exprNodeJSON) *exprNodeJSON {
	return &exprNodeJSON{Op: op, Args: []*exprNodeJSON{l, r}}
}

func postExpr(t *testing.T, url string, req exprRequest) (*http.Response, exprResponse, []byte) {
	t.Helper()
	resp, body := postJSON(t, url+"/v1/expr", req)
	var out exprResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("decode expr response: %v (%s)", err, body)
		}
	}
	return resp, out, body
}

// TestExprEndpointCacheSharing: the same intersection in two operand
// orders — and then via mode=sample — costs one cold build.
func TestExprEndpointCacheSharing(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	dbID := register(t, ts.URL, "exprdb", exprProgram)

	e1 := binOp("intersect", rel("A"), rel("B"))
	e2 := binOp("intersect", rel("B"), rel("A"))

	resp, out1, body := postExpr(t, ts.URL, exprRequest{Database: dbID, Expr: e1, Mode: "volume", Options: fastOpts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("expr volume: status %d (%s)", resp.StatusCode, body)
	}
	if out1.Cache != "miss" {
		t.Fatalf("cold expr cache = %q, want miss", out1.Cache)
	}
	if out1.Volume == nil || math.Abs(*out1.Volume-0.5) > 0.3 {
		t.Fatalf("volume = %v, want ≈ 0.5", out1.Volume)
	}

	resp, out2, body := postExpr(t, ts.URL, exprRequest{Database: dbID, Expr: e2, Mode: "volume", Options: fastOpts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("expr volume (reordered): status %d (%s)", resp.StatusCode, body)
	}
	if out2.Cache != "hit" {
		t.Fatalf("reordered expr cache = %q, want hit", out2.Cache)
	}
	if out1.CanonicalKey != out2.CanonicalKey {
		t.Fatalf("canonical keys differ:\n%s\n%s", out1.CanonicalKey, out2.CanonicalKey)
	}
	if *out1.Volume != *out2.Volume {
		t.Fatalf("shared entry must give identical estimates: %g vs %g", *out1.Volume, *out2.Volume)
	}

	resp, out3, body := postExpr(t, ts.URL, exprRequest{Database: dbID, Expr: e1, Mode: "sample", N: 8, Seed: 7, Options: fastOpts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("expr sample: status %d (%s)", resp.StatusCode, body)
	}
	if out3.Cache != "hit" {
		t.Fatalf("warm expr sample cache = %q, want hit", out3.Cache)
	}
	if len(out3.Points) != 8 {
		t.Fatalf("%d points, want 8", len(out3.Points))
	}
	for _, p := range out3.Points {
		if p[0] < 0.5-1e-9 || p[0] > 1+1e-9 || p[1] < -1e-9 || p[1] > 1+1e-9 {
			t.Fatalf("sample %v outside [0.5,1]×[0,1]", p)
		}
	}
}

// TestExprEndpointSharesWithNamedSample: /v1/sample on a relation and
// /v1/expr on its leaf hit one entry.
func TestExprEndpointSharesWithNamedSample(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	dbID := register(t, ts.URL, "exprdb2", exprProgram)

	resp, body := postJSON(t, ts.URL+"/v1/sample", sampleRequest{Database: dbID, Relation: "A", N: 4, Seed: 1, Options: fastOpts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("named sample: status %d (%s)", resp.StatusCode, body)
	}
	misses := s.metrics.CacheMisses.Load()
	resp2, out, body := postExpr(t, ts.URL, exprRequest{Database: dbID, Expr: rel("A"), Mode: "sample", N: 4, Seed: 1, Options: fastOpts})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("expr sample: status %d (%s)", resp2.StatusCode, body)
	}
	if out.Cache != "hit" {
		t.Fatalf("expr over warm named relation = %q, want hit", out.Cache)
	}
	if got := s.metrics.CacheMisses.Load(); got != misses {
		t.Fatalf("expr over warm named relation paid %d cold builds", got-misses)
	}
}

// TestExprEndpointEmptyNegative: an infeasible intersection serves
// volume 0, and the replay is a cached negative verdict.
func TestExprEndpointEmptyNegative(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	dbID := register(t, ts.URL, "exprdb3", exprProgram)

	empty := binOp("intersect", rel("A"), rel("C"))
	resp, out, body := postExpr(t, ts.URL, exprRequest{Database: dbID, Expr: empty, Mode: "volume", Options: fastOpts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty volume: status %d (%s)", resp.StatusCode, body)
	}
	if !out.Empty || out.Volume == nil || *out.Volume != 0 {
		t.Fatalf("empty expr: empty=%v volume=%v, want true/0", out.Empty, out.Volume)
	}
	resp, out, _ = postExpr(t, ts.URL, exprRequest{Database: dbID, Expr: empty, Mode: "volume", Options: fastOpts})
	if resp.StatusCode != http.StatusOK || out.Cache != "negative" {
		t.Fatalf("empty replay: status %d cache %q, want 200/negative", resp.StatusCode, out.Cache)
	}
	// Sampling an empty expression is a client error, not a 500.
	resp, _, _ = postExpr(t, ts.URL, exprRequest{Database: dbID, Expr: empty, Mode: "sample", N: 1, Options: fastOpts})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("sampling empty expr: status %d, want 422", resp.StatusCode)
	}

	// The name-addressed /v1/volume agrees with the expression surface:
	// an empty declared relation has volume 0; sampling it is a 422.
	emptyID := register(t, ts.URL, "exprdb3e", `rel E(x, y) := { x <= 0, x >= 1, 0 <= y <= 1 };`)
	httpResp, body := postJSON(t, ts.URL+"/v1/volume", volumeRequest{Database: emptyID, Relation: "E"})
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("volume of empty relation: status %d (%s)", httpResp.StatusCode, body)
	}
	var vout volumeResponse
	if err := json.Unmarshal(body, &vout); err != nil {
		t.Fatal(err)
	}
	if vout.Volume != 0 {
		t.Fatalf("volume of empty relation = %g, want 0", vout.Volume)
	}
	httpResp, _ = postJSON(t, ts.URL+"/v1/sample", sampleRequest{Database: emptyID, Relation: "E", N: 1, Seed: 1})
	if httpResp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("sampling empty relation: status %d, want 422", httpResp.StatusCode)
	}
}

// TestExprEndpointExplain: explain reports the canonical plan and cache
// residency without preparing anything.
func TestExprEndpointExplain(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	dbID := register(t, ts.URL, "exprdb4", exprProgram)

	e := binOp("intersect", rel("A"), rel("B"))
	resp, out, body := postExpr(t, ts.URL, exprRequest{Database: dbID, Expr: e, Mode: "explain", Options: fastOpts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain: status %d (%s)", resp.StatusCode, body)
	}
	if out.Cache != "miss" || out.Plan == "" || len(out.Disjuncts) != 1 {
		t.Fatalf("cold explain = %+v", out)
	}
	if out.Disjuncts[0].Kind != "convex" || out.Disjuncts[0].Cache != "miss" {
		t.Fatalf("disjunct = %+v", out.Disjuncts[0])
	}
	if s.metrics.CacheMisses.Load() != 0 {
		t.Fatal("explain populated the cache")
	}

	// Warm it, re-explain.
	postExpr(t, ts.URL, exprRequest{Database: dbID, Expr: e, Mode: "volume", Options: fastOpts})
	_, out, _ = postExpr(t, ts.URL, exprRequest{Database: dbID, Expr: e, Mode: "explain", Options: fastOpts})
	if out.Cache != "hit" || out.Disjuncts[0].Cache != "hit" {
		t.Fatalf("warm explain = cache %q disjunct %q, want hit/hit", out.Cache, out.Disjuncts[0].Cache)
	}
}

// TestExprEndpointProjection: a projection expression samples through
// the per-request engine fallback.
func TestExprEndpointProjection(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	dbID := register(t, ts.URL, "exprdb5", exprProgram)

	proj := &exprNodeJSON{Op: "project", Args: []*exprNodeJSON{rel("A")}, Vars: []string{"x"}}
	resp, out, body := postExpr(t, ts.URL, exprRequest{Database: dbID, Expr: proj, Mode: "sample", N: 5, Seed: 3, Options: fastOpts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("projection sample: status %d (%s)", resp.StatusCode, body)
	}
	if len(out.Points) != 5 || len(out.Points[0]) != 1 {
		t.Fatalf("projection points %d×%d, want 5×1", len(out.Points), len(out.Points[0]))
	}
	resp, out, body = postExpr(t, ts.URL, exprRequest{Database: dbID, Expr: proj, Mode: "volume", Options: fastOpts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("projection volume: status %d (%s)", resp.StatusCode, body)
	}
	if out.Volume == nil || math.Abs(*out.Volume-1) > 0.5 {
		t.Fatalf("projection volume %v, want ≈ 1", out.Volume)
	}
}

// TestExprEndpointErrors: malformed trees and unknown names map to
// client statuses.
func TestExprEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	dbID := register(t, ts.URL, "exprdb6", exprProgram)

	cases := []struct {
		name string
		req  exprRequest
		want int
	}{
		{"unknown database", exprRequest{Database: "nope", Expr: rel("A")}, http.StatusNotFound},
		{"unknown relation", exprRequest{Database: dbID, Expr: rel("Z")}, http.StatusNotFound},
		{"unknown op", exprRequest{Database: dbID, Expr: &exprNodeJSON{Op: "join"}}, http.StatusBadRequest},
		{"missing expr", exprRequest{Database: dbID}, http.StatusBadRequest},
		{"arity mismatch", exprRequest{Database: dbID, Expr: &exprNodeJSON{Op: "union", Args: []*exprNodeJSON{rel("A")}}}, http.StatusBadRequest},
		{"bad mode", exprRequest{Database: dbID, Expr: rel("A"), Mode: "dance"}, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, _, body := postExpr(t, ts.URL, c.req)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d (%s), want %d", c.name, resp.StatusCode, body, c.want)
		}
	}
}

// TestExprEndpointSymbolicMode: mode=symbolic runs full quantifier
// elimination — including trees the sampling modes reject (division) —
// returns the eliminated DNF as a parseable source plus its exact
// volume, and replays from the prepared-symbolic cache.
func TestExprEndpointSymbolicMode(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	dbID := register(t, ts.URL, "symdb", exprProgram+`
rel N(x, y) := { 0 <= x <= 3, 0 <= y <= 1, x + y <= 3 };
rel O(y)    := { 0 <= y <= 1 };
`)

	// In-fragment union: exact area 2.
	e := binOp("union", rel("A"), rel("B"))
	resp, out, body := postExpr(t, ts.URL, exprRequest{Database: dbID, Expr: e, Mode: "symbolic"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("symbolic: status %d (%s)", resp.StatusCode, body)
	}
	if out.Cache != "miss" || out.Tuples == 0 || out.Source == "" {
		t.Fatalf("cold symbolic response: cache %q, tuples %d, source %q", out.Cache, out.Tuples, out.Source)
	}
	if out.Volume == nil || math.Abs(*out.Volume-2) > 1e-6 {
		t.Fatalf("exact volume = %v, want 2", out.Volume)
	}
	if _, out, _ = postExpr(t, ts.URL, exprRequest{Database: dbID, Expr: e, Mode: "symbolic"}); out.Cache != "hit" {
		t.Fatalf("replay cache = %q, want hit", out.Cache)
	}

	// Division: unprocessable under mode=volume (outside the sampling
	// fragment, the server's 422 convention), exact [0,2] under
	// mode=symbolic.
	div := binOp("div", rel("N"), rel("O"))
	if resp, _, b := postExpr(t, ts.URL, exprRequest{Database: dbID, Expr: div, Mode: "volume", Options: fastOpts}); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("div under mode=volume: status %d, want 422 (%s)", resp.StatusCode, b)
	}
	resp, out, body = postExpr(t, ts.URL, exprRequest{Database: dbID, Expr: div, Mode: "symbolic"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("symbolic div: status %d (%s)", resp.StatusCode, body)
	}
	if out.Volume == nil || math.Abs(*out.Volume-2) > 1e-6 {
		t.Fatalf("div exact volume = %v, want 2", out.Volume)
	}
	if len(out.Columns) != 1 || out.Columns[0] != "x" {
		t.Fatalf("div columns = %v, want [x]", out.Columns)
	}

	// A provably empty difference replays as a negative verdict.
	empty := binOp("minus", rel("A"), rel("A"))
	if _, out, _ = postExpr(t, ts.URL, exprRequest{Database: dbID, Expr: empty, Mode: "symbolic"}); !out.Empty || out.Volume == nil || *out.Volume != 0 {
		t.Fatalf("empty symbolic: empty=%v volume=%v", out.Empty, out.Volume)
	}
	if _, out, _ = postExpr(t, ts.URL, exprRequest{Database: dbID, Expr: empty, Mode: "symbolic"}); out.Cache != "negative" {
		t.Fatalf("empty replay cache = %q, want negative", out.Cache)
	}
}
