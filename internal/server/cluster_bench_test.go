package server

// Cluster benchmarks: the cost of the forwarding hop on the warm path
// (BENCH_cluster.json's headline pair — warm forwarded draw vs warm
// local draw at 16-point batches, target ≤ 2x) and the owner-hit ratio
// under a deterministic SpiderWeb-style key distribution (spatial grid
// tiles requested in a fixed diagonal-weighted sequence, the load shape
// of the spatial-data-generator literature).

import (
	"encoding/json"
	"net/http"
	"strconv"
	"testing"

	"repro/internal/runtime"
)

// benchCluster builds a 3-node cluster with a registered tile program:
// a 4x4 grid of unit boxes C00..C33 plus the S/B/Q/C test program.
func benchCluster(b *testing.B) (*testCluster, []string) {
	b.Helper()
	tc := newTestCluster(b, 3, nil)
	src := testProgram
	var tiles []string
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			name := "C" + strconv.Itoa(i) + strconv.Itoa(j)
			tiles = append(tiles, name)
			src += "rel " + name + "(x, y) := { x >= " + strconv.Itoa(i) + ", x <= " + strconv.Itoa(i+1) +
				", y >= " + strconv.Itoa(j) + ", y <= " + strconv.Itoa(j+1) + " };\n"
		}
	}
	register(b, tc.urls[0], "bench", src)
	return tc, tiles
}

// drawVia posts one 16-point warm draw through the given ingress node.
func drawVia(b *testing.B, url, rel string) *http.Response {
	b.Helper()
	resp, body := postJSONHeaders(b, url+"/v1/sample",
		sampleRequest{Database: "bench", Relation: rel, N: 16, Seed: 11, Options: fastOpts}, nil)
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("sample via %s: status %d, body %s", url, resp.StatusCode, body)
	}
	var out sampleResponse
	if err := json.Unmarshal(body, &out); err != nil {
		b.Fatal(err)
	}
	if out.Cache != "hit" {
		b.Fatalf("cache = %q, want hit (warm it before timing)", out.Cache)
	}
	return resp
}

// warmS prepares relation S on its owner and returns (owner, non-owner)
// ingress URLs.
func warmS(b *testing.B, tc *testCluster) (ownerURL, forwardURL string) {
	b.Helper()
	optsKey, _ := routeOptsKey(fastOpts)
	owner := tc.ownerIndex(b, runtime.SamplerKey("bench", "rel", "S", optsKey))
	// One cold exchange through each path warms the owner's cache and the
	// non-owner's warm-key set (so timed forwards skip the cold gate).
	for i := range tc.urls {
		postJSONHeaders(b, tc.urls[i]+"/v1/sample",
			sampleRequest{Database: "bench", Relation: "S", N: 16, Seed: 11, Options: fastOpts}, nil)
	}
	return tc.urls[owner], tc.urls[(owner+1)%len(tc.urls)]
}

// BenchmarkClusterWarmLocalDraw16 is the baseline: a 16-point warm draw
// served by the key's owner directly (one HTTP exchange, zero hops).
func BenchmarkClusterWarmLocalDraw16(b *testing.B) {
	tc, _ := benchCluster(b)
	ownerURL, _ := warmS(b, tc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		drawVia(b, ownerURL, "S")
	}
}

// BenchmarkClusterWarmForwardedDraw16 is the same warm draw entering at
// a non-owner: one extra proxy hop to the owner's cache. The ratio to
// the local baseline is the forwarding overhead (target ≤ 2x).
func BenchmarkClusterWarmForwardedDraw16(b *testing.B) {
	tc, _ := benchCluster(b)
	_, forwardURL := warmS(b, tc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp := drawVia(b, forwardURL, "S")
		if resp.Header.Get("X-CDB-Owner") == "" {
			b.Fatal("draw was not forwarded — ingress node owns the key")
		}
	}
}

// BenchmarkClusterOwnerHitRatio replays a deterministic SpiderWeb-style
// workload — grid tiles in a diagonal-weighted visit order, ingress
// node rotating per request — and reports what fraction of requests
// entered at their key's owner (no hop needed). With 3 nodes and a
// balanced ring the ratio sits near 1/3; the complement is served
// warm via exactly one forward hop.
func BenchmarkClusterOwnerHitRatio(b *testing.B) {
	tc, tiles := benchCluster(b)
	// Diagonal weighting: tile (i,j) appears |4-|i-j|| times per sweep,
	// mimicking SpiderWeb's diagonal distribution without randomness.
	var visits []string
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			d := i - j
			if d < 0 {
				d = -d
			}
			for r := 0; r < 4-d; r++ {
				visits = append(visits, tiles[i*4+j])
			}
		}
	}
	// Warm every tile once (untimed) so the measured sweep is pure
	// routing + warm draws.
	for _, rel := range visits {
		postJSONHeaders(b, tc.urls[0]+"/v1/sample",
			sampleRequest{Database: "bench", Relation: rel, N: 1, Seed: 5, Options: fastOpts}, nil)
	}
	ownerHits, total := 0, 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k, rel := range visits {
			url := tc.urls[(i+k)%len(tc.urls)]
			resp, body := postJSONHeaders(b, url+"/v1/sample",
				sampleRequest{Database: "bench", Relation: rel, N: 16, Seed: 5, Options: fastOpts}, nil)
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("tile %s via %s: status %d, body %s", rel, url, resp.StatusCode, body)
			}
			total++
			if resp.Header.Get("X-CDB-Owner") == "" {
				ownerHits++
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(ownerHits)/float64(total), "owner_hit_ratio")
	b.ReportMetric(float64(len(visits)), "requests/op")
}
