package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	cdb "repro"
	"repro/internal/dataset"
	"repro/internal/linalg"
	"repro/internal/spacetime"
)

// motionProgram renders two hand-made crossing commuters (see the
// spacetime package tests) plus a third object far away, as a
// registrable program. Support is t ∈ [0, 10].
func motionProgram(t *testing.T) string {
	t.Helper()
	a, err := spacetime.NewTrajectory("A", 3, 0,
		spacetime.Observation{T: 0, P: linalg.Vector{0, 0}},
		spacetime.Observation{T: 5, P: linalg.Vector{10, 0}},
		spacetime.Observation{T: 10, P: linalg.Vector{20, 0}},
	)
	if err != nil {
		t.Fatal(err)
	}
	b, err := spacetime.NewTrajectory("B", 3, 0,
		spacetime.Observation{T: 0, P: linalg.Vector{10, 10}},
		spacetime.Observation{T: 5, P: linalg.Vector{10, 1}},
		spacetime.Observation{T: 10, P: linalg.Vector{10, -10}},
	)
	if err != nil {
		t.Fatal(err)
	}
	far, err := spacetime.NewTrajectory("Far", 3, 0,
		spacetime.Observation{T: 0, P: linalg.Vector{500, 500}},
		spacetime.Observation{T: 10, P: linalg.Vector{510, 500}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return dataset.FleetProgram([]*spacetime.Trajectory{a, b, far})
}

func TestSpacetimeSliceSampleAndCache(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	register(t, ts.URL, "motion", motionProgram(t))

	req := spacetimeSliceRequest{Database: "motion", Relation: "A", T0: 2.5, N: 40, Seed: 9, Options: fastOpts}
	resp, body := postJSON(t, ts.URL+"/v1/spacetime/slice", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("slice: status %d, body %s", resp.StatusCode, body)
	}
	var out spacetimeSliceResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Cache != "miss" {
		t.Errorf("first slice cache = %q, want miss", out.Cache)
	}
	if len(out.Points) != 40 {
		t.Fatalf("got %d points", len(out.Points))
	}
	for _, p := range out.Points {
		if len(p) != 2 {
			t.Fatalf("snapshot point %v is not spatial-only", p)
		}
	}

	// Same request again: cache hit, identical points.
	resp, body2 := postJSON(t, ts.URL+"/v1/spacetime/slice", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm slice: status %d", resp.StatusCode)
	}
	var warm spacetimeSliceResponse
	if err := json.Unmarshal(body2, &warm); err != nil {
		t.Fatal(err)
	}
	if warm.Cache != "hit" {
		t.Errorf("warm slice cache = %q, want hit", warm.Cache)
	}
	for i := range out.Points {
		if !out.Points[i].Equal(warm.Points[i], 0) {
			t.Fatalf("point %d differs between cold and warm: %v vs %v", i, out.Points[i], warm.Points[i])
		}
	}
	if got := s.rt.Cache().Len(); got != 1 {
		t.Errorf("sampler cache holds %d entries, want 1", got)
	}

	// A different t0 is a different cache entry.
	req.T0 = 7.5
	postJSON(t, ts.URL+"/v1/spacetime/slice", req)
	if got := s.rt.Cache().Len(); got != 2 {
		t.Errorf("sampler cache holds %d entries, want 2", got)
	}
}

func TestSpacetimeSliceVolumeAndDegenerate(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	register(t, ts.URL, "motion", motionProgram(t))

	// Interior slice: positive snapshot area.
	resp, body := postJSON(t, ts.URL+"/v1/spacetime/slice",
		spacetimeSliceRequest{Database: "motion", Relation: "A", T0: 2.5, Mode: "volume", Seed: 1, Options: fastOpts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("volume: status %d, body %s", resp.StatusCode, body)
	}
	var out spacetimeSliceResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Volume == nil || *out.Volume <= 0 {
		t.Fatalf("snapshot volume = %v, want > 0", out.Volume)
	}
	if out.Empty {
		t.Error("interior slice flagged empty")
	}

	// t0 outside the support: zero volume, empty flag, still 200.
	resp, body = postJSON(t, ts.URL+"/v1/spacetime/slice",
		spacetimeSliceRequest{Database: "motion", Relation: "A", T0: 99, Mode: "volume", Seed: 1, Options: fastOpts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty volume: status %d, body %s", resp.StatusCode, body)
	}
	out = spacetimeSliceResponse{}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Empty || out.Volume == nil || *out.Volume != 0 {
		t.Fatalf("empty slice: empty=%v volume=%v, want true/0", out.Empty, out.Volume)
	}

	// Sampling the empty slice is a clean 422 naming the support.
	resp, body = postJSON(t, ts.URL+"/v1/spacetime/slice",
		spacetimeSliceRequest{Database: "motion", Relation: "A", T0: 99, N: 5, Seed: 1, Options: fastOpts})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("empty slice sample: status %d, want 422 (body %s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "outside the support [0, 10]") {
		t.Errorf("error should name the support, got %s", body)
	}

	// Slicing exactly at an observation time pins the object to a single
	// point — a measure-zero snapshot, answered with a clean 422.
	resp, body = postJSON(t, ts.URL+"/v1/spacetime/slice",
		spacetimeSliceRequest{Database: "motion", Relation: "A", T0: 5, N: 5, Seed: 1, Options: fastOpts})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("observation-time slice: status %d, want 422 (body %s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "measure-zero") {
		t.Errorf("error should explain the degeneracy, got %s", body)
	}

	// Unknown relation and bad mode are client errors.
	resp, _ = postJSON(t, ts.URL+"/v1/spacetime/slice",
		spacetimeSliceRequest{Database: "motion", Relation: "Nope", T0: 1, Seed: 1})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown relation: status %d, want 404", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/spacetime/slice",
		spacetimeSliceRequest{Database: "motion", Relation: "A", T0: 1, Mode: "banana", Seed: 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad mode: status %d, want 400", resp.StatusCode)
	}
}

func TestSpacetimeSampleWholeAndWindow(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	register(t, ts.URL, "motion", motionProgram(t))

	// Whole trajectory: points are (x, y, t) with t in the support.
	resp, body := postJSON(t, ts.URL+"/v1/spacetime/sample",
		spacetimeSampleRequest{Database: "motion", Relation: "A", N: 30, Seed: 4, Options: fastOpts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sample: status %d, body %s", resp.StatusCode, body)
	}
	var out sampleResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Points) != 30 {
		t.Fatalf("got %d points", len(out.Points))
	}
	for _, p := range out.Points {
		if len(p) != 3 {
			t.Fatalf("space-time point %v is not 3-D", p)
		}
		if p[2] < -1e-9 || p[2] > 10+1e-9 {
			t.Fatalf("sample time %g outside [0, 10]", p[2])
		}
	}

	// Windowed sampling stays inside the window.
	lo, hi := 1.0, 4.0
	resp, body = postJSON(t, ts.URL+"/v1/spacetime/sample",
		spacetimeSampleRequest{Database: "motion", Relation: "A", T0: &lo, T1: &hi, N: 20, Seed: 4, Options: fastOpts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("window sample: status %d, body %s", resp.StatusCode, body)
	}
	out = sampleResponse{}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	for _, p := range out.Points {
		if p[2] < lo-1e-9 || p[2] > hi+1e-9 {
			t.Fatalf("windowed sample time %g outside [%g, %g]", p[2], lo, hi)
		}
	}

	// A window whose boundary coincides with an observation time (t = 5
	// is A's middle fix) clips one bead to a flat set; the flat piece is
	// shed and the rest samples fine.
	blo, bhi := 5.0, 10.0
	resp, body = postJSON(t, ts.URL+"/v1/spacetime/sample",
		spacetimeSampleRequest{Database: "motion", Relation: "A", T0: &blo, T1: &bhi, N: 10, Seed: 4, Options: fastOpts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("boundary window sample: status %d, body %s", resp.StatusCode, body)
	}

	// Disjoint window: clean 422; half-open window spec: 400.
	wlo, whi := 50.0, 60.0
	resp, _ = postJSON(t, ts.URL+"/v1/spacetime/sample",
		spacetimeSampleRequest{Database: "motion", Relation: "A", T0: &wlo, T1: &whi, N: 5, Seed: 1, Options: fastOpts})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("disjoint window: status %d, want 422", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/spacetime/sample",
		spacetimeSampleRequest{Database: "motion", Relation: "A", T0: &wlo, N: 5, Seed: 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("half-open window: status %d, want 400", resp.StatusCode)
	}
}

func TestSpacetimeAlibiEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	register(t, ts.URL, "motion", motionProgram(t))

	// A and B cross around t = 5.
	resp, body := postJSON(t, ts.URL+"/v1/spacetime/alibi",
		alibiRequest{Database: "motion", A: "A", B: "B", T0: 0, T1: 10, Seed: 3, Options: fastOpts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("alibi: status %d, body %s", resp.StatusCode, body)
	}
	var out alibiResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Meet || !out.SymbolicMeet || !out.Consistent {
		t.Fatalf("A/B should meet consistently: %+v", out.Report)
	}
	if out.Volume <= 0 || len(out.MeetTimes) == 0 {
		t.Fatalf("meeting volume %g, intervals %v", out.Volume, out.MeetTimes)
	}

	// A and Far cannot meet.
	resp, body = postJSON(t, ts.URL+"/v1/spacetime/alibi",
		alibiRequest{Database: "motion", A: "A", B: "Far", T0: 0, T1: 10, Seed: 3, Options: fastOpts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("alibi far: status %d, body %s", resp.StatusCode, body)
	}
	out = alibiResponse{}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Meet || out.SymbolicMeet || !out.Consistent {
		t.Fatalf("A/Far should be refuted consistently: %+v", out.Report)
	}

	// Client errors: unknown relation, inverted window, median_k cap.
	resp, _ = postJSON(t, ts.URL+"/v1/spacetime/alibi",
		alibiRequest{Database: "motion", A: "A", B: "Nope", T0: 0, T1: 1})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown b: status %d, want 404", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/spacetime/alibi",
		alibiRequest{Database: "motion", A: "A", B: "B", T0: 5, T1: 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("inverted window: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/spacetime/alibi",
		alibiRequest{Database: "motion", A: "A", B: "B", T0: 0, T1: 10, MedianK: 10_000})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("median_k cap: status %d, want 400", resp.StatusCode)
	}
}

func TestSpacetimeMetricsAndLatency(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	register(t, ts.URL, "motion", motionProgram(t))
	postJSON(t, ts.URL+"/v1/spacetime/slice",
		spacetimeSliceRequest{Database: "motion", Relation: "A", T0: 2.5, N: 3, Seed: 1, Options: fastOpts})

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, 1<<20)
	n, _ := resp.Body.Read(raw)
	resp.Body.Close()
	text := string(raw[:n])
	for _, want := range []string{
		`cdbserve_requests_total{endpoint="spacetime_slice"} 1`,
		`cdbserve_request_duration_seconds_count{endpoint="spacetime_slice"} 1`,
		`cdbserve_request_duration_seconds_sum{endpoint="spacetime_slice"}`,
		`cdbserve_request_duration_seconds_max{endpoint="spacetime_slice"}`,
		`cdbserve_request_duration_seconds_count{endpoint="databases"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
}

// TestSpacetimeSliceStream checks the NDJSON form of the slice endpoint.
func TestSpacetimeSliceStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	register(t, ts.URL, "motion", motionProgram(t))
	resp, body := postJSON(t, ts.URL+"/v1/spacetime/slice",
		spacetimeSliceRequest{Database: "motion", Relation: "A", T0: 2.5, N: 7, Seed: 2, Stream: true, Options: fastOpts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 8 { // meta + 7 points
		t.Fatalf("got %d NDJSON lines, want 8", len(lines))
	}
	var meta spacetimeSliceResponse
	if err := json.Unmarshal([]byte(lines[0]), &meta); err != nil {
		t.Fatalf("meta line: %v", err)
	}
	for _, l := range lines[1:] {
		var p cdb.Vector
		if err := json.Unmarshal([]byte(l), &p); err != nil {
			t.Fatalf("point line %q: %v", l, err)
		}
		if len(p) != 2 {
			t.Fatalf("streamed point %v not 2-D", p)
		}
	}
}
