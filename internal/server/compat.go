package server

import (
	"repro/internal/obs"
	"repro/internal/runtime"
)

// The registry, the singleflight prepared-sampler LRU and the bounded
// worker pool used to be implemented here; they now live in
// internal/runtime, shared by the cdb.DB handle, this server and the
// command-line tools. These aliases keep the server's historical
// surface (and its test suite) intact — the server contributes only
// HTTP handling and metrics on top of the shared runtime.

// Registry holds the parsed constraint databases the server can sample
// from.
type Registry = runtime.Registry

// DatabaseEntry is one registered constraint database program.
type DatabaseEntry = runtime.DatabaseEntry

// ErrConflict reports a registration under an id that already holds a
// different program.
var ErrConflict = runtime.ErrConflict

// ErrRegistryFull reports that the registry reached its capacity.
var ErrRegistryFull = runtime.ErrRegistryFull

// NewRegistry returns an empty registry holding at most capacity
// databases (0 = unbounded).
func NewRegistry(capacity int) *Registry { return runtime.NewRegistry(capacity) }

// DatabaseID returns the id a program registers under.
func DatabaseID(name, source string) string { return runtime.DatabaseID(name, source) }

// SamplerCache is the prepared-sampler cache: a singleflight LRU over
// (database, target, Options) keys whose values are warm
// *cdb.PreparedSampler instances.
type SamplerCache = runtime.SamplerCache

// NewSamplerCache returns a cache holding at most capacity prepared
// samplers (minimum 1). metrics may be nil.
func NewSamplerCache(capacity int, metrics *Metrics) *SamplerCache {
	return runtime.NewKindCache[*runtime.Prepared](capacity, obs.KindPlan, sinkFor(metrics))
}

// Pool is the fixed-size sampling worker pool.
type Pool = runtime.Pool

// NewPool starts size workers (minimum 1). metrics may be nil.
func NewPool(size int, metrics *Metrics) *Pool {
	return runtime.NewPoolWithSink(size, sinkFor(metrics))
}

// Executor is the batch executor for sample requests: bounded
// concurrency over the shared pool plus coalescing of byte-identical
// concurrent draws.
type Executor = runtime.Executor

// NewExecutor returns an executor over the given pool. metrics may be
// nil.
func NewExecutor(pool *Pool, metrics *Metrics) *Executor {
	return runtime.NewExecutorWithSink(pool, sinkFor(metrics))
}

// sinkFor adapts the server metrics to the runtime's event sink,
// avoiding the typed-nil interface trap.
func sinkFor(m *Metrics) obs.Sink {
	if m == nil {
		return nil
	}
	return m
}
