package server

import (
	"container/list"
	"errors"
	"sync"

	cdb "repro"
)

// errBuildPanic is what waiters of a flight see when the build panicked
// out of Get (the panic itself propagates on the builder's goroutine).
var errBuildPanic = errors.New("server: sampler preparation panicked")

// SamplerCache is the prepared-sampler cache: an LRU over
// (database, relation-or-query, Options) keys whose values are warm
// *cdb.PreparedSampler instances. It is singleflight — concurrent Get
// calls for the same missing key run the expensive preparation exactly
// once and all receive the one shared sampler — which is what makes a
// thundering herd of identical requests cost one rounding pass instead
// of a hundred.
type SamplerCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used; values are *cacheSlot
	slots    map[string]*cacheSlot

	metrics *Metrics
}

type cacheSlot struct {
	key   string
	elem  *list.Element
	ready chan struct{} // closed when build finishes
	ps    *cdb.PreparedSampler
	err   error
}

// NewSamplerCache returns a cache holding at most capacity prepared
// samplers (minimum 1). metrics may be nil.
func NewSamplerCache(capacity int, metrics *Metrics) *SamplerCache {
	if capacity < 1 {
		capacity = 1
	}
	return &SamplerCache{
		capacity: capacity,
		ll:       list.New(),
		slots:    map[string]*cacheSlot{},
		metrics:  metrics,
	}
}

// Get returns the prepared sampler for key, building it with build on a
// miss. hit reports whether a warm (or in-flight) sampler was reused.
// Failed builds are not cached: the error propagates to every waiter of
// that flight and the next Get retries.
func (c *SamplerCache) Get(key string, build func() (*cdb.PreparedSampler, error)) (ps *cdb.PreparedSampler, hit bool, err error) {
	c.mu.Lock()
	if slot, ok := c.slots[key]; ok {
		c.ll.MoveToFront(slot.elem)
		c.mu.Unlock()
		<-slot.ready
		if slot.err != nil {
			// Joined a flight that failed: no sampler was shared, so this
			// is neither a hit nor a countable miss.
			return nil, false, slot.err
		}
		if c.metrics != nil {
			c.metrics.CacheHits.Add(1)
		}
		return slot.ps, true, nil
	}
	slot := &cacheSlot{key: key, ready: make(chan struct{})}
	slot.elem = c.ll.PushFront(slot)
	c.slots[key] = slot
	c.evictLocked()
	c.mu.Unlock()
	if c.metrics != nil {
		c.metrics.CacheMisses.Add(1)
	}

	// The ready channel must close even if build panics (numeric code on
	// adversarial programs), or every later Get for this key would block
	// forever on an unevictable in-flight slot.
	finished := false
	defer func() {
		if !finished {
			slot.err = errBuildPanic
			close(slot.ready)
			c.remove(slot)
		}
	}()
	slot.ps, slot.err = build()
	finished = true
	close(slot.ready)
	if slot.err != nil {
		c.remove(slot)
	}
	return slot.ps, false, slot.err
}

// evictLocked drops least-recently-used completed slots until the cache
// fits its capacity. In-flight builds are never evicted (their waiters
// hold the slot anyway); callers must hold c.mu.
func (c *SamplerCache) evictLocked() {
	for c.ll.Len() > c.capacity {
		evicted := false
		for e := c.ll.Back(); e != nil; e = e.Prev() {
			slot := e.Value.(*cacheSlot)
			select {
			case <-slot.ready:
			default:
				continue // still building
			}
			c.ll.Remove(e)
			delete(c.slots, slot.key)
			if c.metrics != nil {
				c.metrics.CacheEvictions.Add(1)
			}
			evicted = true
			break
		}
		if !evicted {
			return // everything over capacity is in flight
		}
	}
}

// remove drops a slot (used for failed builds).
func (c *SamplerCache) remove(slot *cacheSlot) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.slots[slot.key]; ok && cur == slot {
		c.ll.Remove(slot.elem)
		delete(c.slots, slot.key)
	}
}

// Len returns the number of cached (or in-flight) samplers.
func (c *SamplerCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.slots)
}
