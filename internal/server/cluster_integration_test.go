package server

// In-process cluster integration tests: three real Servers behind three
// httptest listeners, wired into one consistent-hash membership. They
// prove the cluster's load-bearing claims — single ownership of warm
// entries, forwarded warm hits served from the owner's cache, breaker
// fallback under a killed peer, per-tenant shedding — with the same
// handlers a production node runs.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	cdb "repro"
	"repro/internal/cluster"
	"repro/internal/runtime"
)

// swappable lets an httptest server start (fixing its URL) before the
// cluster node behind it exists: static membership needs every member's
// URL at construction time, but the URLs only exist once the listeners
// are up.
type swappable struct{ h atomic.Pointer[http.Handler] }

func (sw *swappable) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	(*sw.h.Load()).ServeHTTP(w, r)
}

type testCluster struct {
	nodes []*Server
	urls  []string
	tss   []*httptest.Server
}

// newTestCluster builds n Servers into one membership. mutate can tweak
// each node's Config (breaker tuning, admission) before construction.
// Probing stays off so breaker state is driven by forwarding outcomes
// alone — deterministic under test.
func newTestCluster(t testing.TB, n int, mutate func(i int, cfg *Config)) *testCluster {
	t.Helper()
	tc := &testCluster{}
	handlers := make([]*swappable, n)
	for i := 0; i < n; i++ {
		sw := &swappable{}
		nf := http.NotFoundHandler()
		sw.h.Store(&nf)
		ts := httptest.NewServer(sw)
		handlers[i] = sw
		tc.tss = append(tc.tss, ts)
		tc.urls = append(tc.urls, ts.URL)
	}
	for i := 0; i < n; i++ {
		var peers []string
		for j, u := range tc.urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		cfg := Config{Cluster: cluster.Config{Self: tc.urls[i], Peers: peers}}
		if mutate != nil {
			mutate(i, &cfg)
		}
		s := New(cfg)
		h := s.Handler()
		handlers[i].h.Store(&h)
		tc.nodes = append(tc.nodes, s)
	}
	t.Cleanup(func() {
		for _, ts := range tc.tss {
			ts.Close()
		}
		for _, s := range tc.nodes {
			s.Close()
		}
	})
	return tc
}

// ownerIndex resolves the node index owning key on the shared ring
// (every node's view agrees; node 0's router answers for all).
func (tc *testCluster) ownerIndex(t testing.TB, key string) int {
	t.Helper()
	owner, local := tc.nodes[0].router.Route(key)
	if local {
		owner = tc.urls[0]
	}
	for i, u := range tc.urls {
		if u == owner {
			return i
		}
	}
	t.Fatalf("owner %q not in membership %v", owner, tc.urls)
	return -1
}

// postJSONHeaders is postJSON with request headers (tenant, forwarded
// markers).
func postJSONHeaders(t testing.TB, url string, body any, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp, out
}

// clusterTargets is the mixed workload: two declared relations (one a
// union), a quantifier-free named query and a projection-needing one.
// The projection query has no cacheable sampler — /v1/sample and
// /v1/volume answer a deterministic 400 and its owner caches the
// negative verdict, which must obey single ownership like any entry.
var clusterTargets = []struct {
	relation, query string
	wantStatus      int
}{
	{relation: "S", wantStatus: http.StatusOK},
	{relation: "B", wantStatus: http.StatusOK},
	{query: "C", wantStatus: http.StatusOK},
	{query: "Q", wantStatus: http.StatusBadRequest},
}

func TestClusterSingleOwnershipAndWarmForwarding(t *testing.T) {
	tc := newTestCluster(t, 3, nil)

	// Registering against one node replicates to the peers, so every
	// node can resolve ids and compile plans for routing.
	register(t, tc.urls[0], "test", testProgram)
	for i, s := range tc.nodes {
		if _, ok := s.Registry().Get("test"); !ok {
			t.Fatalf("node %d did not receive the replicated registration", i)
		}
	}

	// Mixed workload: every target × {sample, volume} × every ingress
	// node, concurrently. Wherever a request lands, the preparation must
	// happen on the key's owner and nowhere else.
	var wg sync.WaitGroup
	for _, target := range clusterTargets {
		for i := range tc.nodes {
			wg.Add(1)
			go func(url, rel, q string, want int) {
				defer wg.Done()
				resp, body := postJSONHeaders(t, url+"/v1/sample",
					sampleRequest{Database: "test", Relation: rel, Query: q, N: 4, Seed: 7, Options: fastOpts}, nil)
				if resp.StatusCode != want {
					t.Errorf("sample %s%s via %s: status %d, body %s", rel, q, url, resp.StatusCode, body)
				}
				resp, body = postJSONHeaders(t, url+"/v1/volume",
					volumeRequest{Database: "test", Relation: rel, Query: q, Seed: 7, Options: fastOpts}, nil)
				if resp.StatusCode != want {
					t.Errorf("volume %s%s via %s: status %d, body %s", rel, q, url, resp.StatusCode, body)
				}
			}(tc.urls[i], target.relation, target.query, target.wantStatus)
		}
	}
	wg.Wait()

	// (a) Every canonical key is warm on exactly one node: the per-node
	// prepared-cache key sets are pairwise disjoint, and each target's
	// alias routed its plan to the node the ring names.
	warm := map[string]int{}
	total := 0
	for i, s := range tc.nodes {
		for _, key := range s.Runtime().Cache().Keys() {
			if prev, dup := warm[key]; dup {
				t.Errorf("key %q warm on nodes %d and %d — ownership is not single", key, prev, i)
			}
			warm[key] = i
			total++
		}
	}
	if total < len(clusterTargets) {
		t.Fatalf("only %d warm entries cluster-wide, want >= %d", total, len(clusterTargets))
	}
	optsKey, ok := routeOptsKey(fastOpts)
	if !ok {
		t.Fatal("routeOptsKey failed")
	}
	for _, target := range clusterTargets {
		kind, name, err := runtime.TargetKindName(target.relation, target.query)
		if err != nil {
			t.Fatal(err)
		}
		alias := runtime.SamplerKey("test", kind, name, optsKey)
		owner := tc.ownerIndex(t, alias)
		// The owner must hold the target's prepared entry locally.
		if _, _, hit, err := tc.nodes[owner].Runtime().PreparedFor(mustEntry(t, tc.nodes[owner], "test"), target.relation, target.query, mustOptions(t, fastOpts)); err == nil && !hit {
			t.Errorf("target %s%s: owner node %d had no warm entry", target.relation, target.query, owner)
		}
	}

	// (b) A warm forwarded request is served from the owner's cache: the
	// response crosses back with the owner hint and a cache hit label.
	aliasS := runtime.SamplerKey("test", "rel", "S", optsKey)
	owner := tc.ownerIndex(t, aliasS)
	ingress := (owner + 1) % len(tc.nodes)
	resp, body := postJSONHeaders(t, tc.urls[ingress]+"/v1/sample",
		sampleRequest{Database: "test", Relation: "S", N: 4, Seed: 9, Options: fastOpts}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded warm sample: status %d, body %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-CDB-Owner"); got != tc.urls[owner] {
		t.Fatalf("X-CDB-Owner = %q, want %q", got, tc.urls[owner])
	}
	var out sampleResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Cache != "hit" {
		t.Fatalf("forwarded warm sample cache = %q, want %q", out.Cache, "hit")
	}

	// The clustered node's metrics expose the routing and membership
	// families.
	mresp, err := http.Get(tc.urls[ingress] + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{"cdbserve_cluster_peers 3", "cdbserve_cluster_route_total", `decision="forward"`, "cdbserve_cluster_breaker_open"} {
		if !bytes.Contains(mbody, []byte(want)) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// mustEntry resolves a registered database entry.
func mustEntry(t testing.TB, s *Server, id string) *runtime.DatabaseEntry {
	t.Helper()
	e, ok := s.Registry().Get(id)
	if !ok {
		t.Fatalf("database %q not registered", id)
	}
	return e
}

// mustOptions decodes wire options the way the handlers do.
func mustOptions(t testing.TB, o *OptionsJSON) cdb.Options {
	t.Helper()
	opts, err := o.toOptions()
	if err != nil {
		t.Fatal(err)
	}
	return opts
}

func TestClusterBreakerFallback(t *testing.T) {
	tc := newTestCluster(t, 3, func(i int, cfg *Config) {
		cfg.Cluster.Breaker = cluster.BreakerConfig{Threshold: 1, Cooldown: time.Minute}
	})
	// Eight single-interval relations guarantee the dead node owns at
	// least one key from node 0's vantage point. Distinct upper bounds
	// keep their canonical plans — and so their cache entries — distinct
	// (identical geometry would dedup into one shared plan key).
	src := ""
	names := []string{"R0", "R1", "R2", "R3", "R4", "R5", "R6", "R7"}
	for i, n := range names {
		src += "rel " + n + "(x) := { x >= 0, x <= " + strconv.Itoa(i+1) + " };\n"
	}
	register(t, tc.urls[0], "many", src)

	optsKey, _ := routeOptsKey(fastOpts)
	dead := 2
	tc.tss[dead].Close() // kill node 2's listener; its Server object survives

	var deadOwned []string
	for _, n := range names {
		if tc.ownerIndex(t, runtime.SamplerKey("many", "rel", n, optsKey)) == dead {
			deadOwned = append(deadOwned, n)
		}
	}
	if len(deadOwned) == 0 {
		t.Fatal("ring assigned no relation to the dead node — enlarge the key set")
	}

	// (c) Requests keep succeeding: the first attempt pays a transport
	// failure, trips the breaker (threshold 1) and computes locally; the
	// second is denied by the open breaker up front and also computes
	// locally.
	for round := 0; round < 2; round++ {
		for _, n := range deadOwned {
			resp, body := postJSONHeaders(t, tc.urls[0]+"/v1/sample",
				sampleRequest{Database: "many", Relation: n, N: 2, Seed: 3, Options: fastOpts}, nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("round %d relation %s: status %d, body %s", round, n, resp.StatusCode, body)
			}
			if got := resp.Header.Get("X-CDB-Owner"); got != "" {
				t.Fatalf("fallback response leaked owner header %q", got)
			}
		}
	}
	if state := tc.nodes[0].health.States()[tc.urls[dead]]; state != "open" {
		t.Fatalf("dead peer breaker = %q, want open", state)
	}
	// The fallback entries are warm locally now — degraded to duplicated
	// work, never to unavailability.
	if keys := tc.nodes[0].Runtime().Cache().Keys(); len(keys) < len(deadOwned) {
		t.Fatalf("node 0 holds %d warm entries after fallback, want >= %d", len(keys), len(deadOwned))
	}
}

func TestClusterTenantQuota429(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Admission: cluster.AdmissionConfig{TenantRate: 0.0001, TenantBurst: 2},
	})
	register(t, ts.URL, "test", testProgram)

	req := sampleRequest{Database: "test", Relation: "S", N: 1, Seed: 1, Options: fastOpts}
	alice := map[string]string{"X-CDB-Tenant": "alice"}
	for i := 0; i < 2; i++ {
		resp, body := postJSONHeaders(t, ts.URL+"/v1/sample", req, alice)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("alice request %d: status %d, body %s", i, resp.StatusCode, body)
		}
	}
	// (d) Burst exhausted: 429 with a Retry-After the client can obey.
	resp, body := postJSONHeaders(t, ts.URL+"/v1/sample", req, alice)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("alice over quota: status %d, body %s", resp.StatusCode, body)
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want >= 1 whole seconds", resp.Header.Get("Retry-After"))
	}
	var e errorResponse
	if json.Unmarshal(body, &e) != nil || e.Error == "" {
		t.Fatalf("429 body = %s, want a JSON error", body)
	}

	// Tenants are isolated; peer-forwarded requests skip tenant charging.
	if resp, body := postJSONHeaders(t, ts.URL+"/v1/sample", req, map[string]string{"X-CDB-Tenant": "bob"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("bob: status %d, body %s", resp.StatusCode, body)
	}
	if resp, body := postJSONHeaders(t, ts.URL+"/v1/sample", req,
		map[string]string{"X-CDB-Tenant": "alice", "X-CDB-Forwarded": "1"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded request must bypass the tenant bucket: status %d, body %s", resp.StatusCode, body)
	}
}

func TestClusterHealthzReadiness(t *testing.T) {
	// A partitioned node (every breaker open) must turn not-ready so load
	// balancers rotate it out, while still serving (degraded) traffic.
	tc := newTestCluster(t, 2, func(i int, cfg *Config) {
		cfg.Cluster.Breaker = cluster.BreakerConfig{Threshold: 1, Cooldown: time.Minute}
	})
	register(t, tc.urls[0], "test", testProgram)
	tc.tss[1].Close()

	optsKey, _ := routeOptsKey(fastOpts)
	// Trip the only peer's breaker with a request it owns.
	for _, rel := range []string{"S", "B"} {
		if tc.ownerIndex(t, runtime.SamplerKey("test", "rel", rel, optsKey)) == 1 {
			resp, _ := postJSONHeaders(t, tc.urls[0]+"/v1/sample",
				sampleRequest{Database: "test", Relation: rel, N: 1, Seed: 1, Options: fastOpts}, nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("fallback status %d", resp.StatusCode)
			}
		}
	}
	if !tc.nodes[0].health.AllOpen() {
		// Both relations hashed to node 0; trip the breaker directly (the
		// unit is exercised above when the ring cooperates).
		tc.nodes[0].health.Breaker(tc.urls[1]).Fail()
	}
	resp, err := http.Get(tc.urls[0] + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("partitioned healthz status = %d, want 503", resp.StatusCode)
	}
	var h healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Ready || h.Status != "degraded" {
		t.Fatalf("healthz = %+v, want ready=false status=degraded", h)
	}
	if h.Cluster == nil || !h.Cluster.Enabled || h.Cluster.OpenBreakers != 1 {
		t.Fatalf("healthz cluster field = %+v, want enabled with 1 open breaker", h.Cluster)
	}

	// Draining flips readiness too — the SIGTERM path's first step.
	tc.nodes[0].BeginDrain()
	resp2, err := http.Get(tc.urls[0] + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var h2 healthzResponse
	if err := json.NewDecoder(resp2.Body).Decode(&h2); err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusServiceUnavailable || h2.Status != "draining" || h2.Ready {
		t.Fatalf("draining healthz = %d %+v, want 503 status=draining ready=false", resp2.StatusCode, h2)
	}
}
