package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	cdb "repro"
	"repro/internal/constraint"
	"repro/internal/spacetime"
)

// The spacetime endpoints serve the moving-object workload: relations
// over (x_1..x_d, t) — typically trajectory fleets of space-time prisms
// — queried through the time-slice operator, whole-trajectory sampling
// and alibi evaluation.
//
// Time slices are where the prepared-sampler cache earns its keep for
// this workload: a dashboard replaying "where could everything have
// been at t0?" hits the same (database, relation, t0, options) key on
// every frame, so the slicing + rounding + volume setup is paid once
// per distinct t0 and every later request binds only its seed.

// errEmptySlice marks a time slice (or window) with no feasible tuple —
// t0 outside the relation's support. Mapped to 422 by writeError;
// volume-mode requests convert it to a zero-volume 200 instead.
var errEmptySlice = errors.New("empty time slice")

// sliceCacheName canonically names a slice target for the sampler
// cache: relation name plus the slice time (shortest round-trip float
// format, so 1.5 and 1.50 share an entry).
func sliceCacheName(rel string, t0 float64) string {
	return rel + "@" + strconv.FormatFloat(t0, 'g', -1, 64)
}

// windowCacheName names a windowed space-time target.
func windowCacheName(rel string, t0, t1 float64) string {
	return rel + "@" + strconv.FormatFloat(t0, 'g', -1, 64) + ":" + strconv.FormatFloat(t1, 'g', -1, 64)
}

// spacetimeRelation resolves a plain relation (spacetime targets are
// always declared relations, not queries).
func spacetimeRelation(e *DatabaseEntry, name string) (*constraint.Relation, error) {
	if name == "" {
		return nil, errors.New("missing relation name")
	}
	rel, ok := e.DB.Relation(name)
	if !ok {
		return nil, fmt.Errorf("%w: relation %q in database %q", errTargetNotFound, name, e.ID)
	}
	return rel, nil
}

// preparedSlice returns the cached prepared sampler for the t0-slice of
// a relation, slicing and preparing on first use. The returned key
// feeds the batch executor's coalescing.
func (s *Server) preparedSlice(e *DatabaseEntry, relName string, t0 float64, opts cdb.Options) (*cdb.PreparedSampler, string, bool, error) {
	key := samplerKey(e.ID, "slice", sliceCacheName(relName, t0), opts.CacheKey())
	ps, hit, err := s.cache.Get(key, func() (*cdb.PreparedSampler, error) {
		rel, err := spacetimeRelation(e, relName)
		if err != nil {
			return nil, err
		}
		slice, err := spacetime.TimeSlice(rel, spacetime.TimeColumn(rel), t0)
		if err != nil {
			return nil, err
		}
		if len(slice.Tuples) == 0 {
			if lo, hi, ok := spacetime.Support(rel, spacetime.TimeColumn(rel)); ok {
				return nil, fmt.Errorf("%w: t0=%g outside the support [%.6g, %.6g] of %q",
					errEmptySlice, t0, spacetime.SnapNoise(lo), spacetime.SnapNoise(hi), relName)
			}
			return nil, fmt.Errorf("%w: t0=%g, relation %q", errEmptySlice, t0, relName)
		}
		// Shed measure-zero pieces (e.g. a slice exactly at another
		// bead's observation time) so one degenerate tuple cannot sink a
		// snapshot that is otherwise full-dimensional.
		slice, _ = spacetime.PruneThin(slice, 0)
		if len(slice.Tuples) == 0 {
			return nil, fmt.Errorf("%w: the slice of %q at t0=%g is a measure-zero set "+
				"(t0 coincides with an observation time)", errEmptySlice, relName, t0)
		}
		return cdb.PrepareSampler(slice, prepSeedFor(key), opts)
	})
	return ps, key, hit, err
}

// preparedWindow is preparedSlice's counterpart for time windows: the
// cached prepared sampler for the [t0, t1] restriction of a relation,
// windowing and preparing on first use. A window whose boundary touches
// an observation time clips a bead to a flat (measure-zero) set, so
// thin tuples are shed before the well-boundedness setup.
func (s *Server) preparedWindow(e *DatabaseEntry, relName string, t0, t1 float64, opts cdb.Options) (*cdb.PreparedSampler, string, bool, error) {
	key := samplerKey(e.ID, "window", windowCacheName(relName, t0, t1), opts.CacheKey())
	ps, hit, err := s.cache.Get(key, func() (*cdb.PreparedSampler, error) {
		rel, err := spacetimeRelation(e, relName)
		if err != nil {
			return nil, err
		}
		win, err := spacetime.TimeWindow(rel, spacetime.TimeColumn(rel), t0, t1)
		if err != nil {
			return nil, err
		}
		win, _ = spacetime.PruneThin(win, 0)
		if len(win.Tuples) == 0 {
			return nil, fmt.Errorf("%w: window [%g, %g], relation %q", errEmptySlice, t0, t1, relName)
		}
		return cdb.PrepareSampler(win, prepSeedFor(key), opts)
	})
	return ps, key, hit, err
}

// --- POST /v1/spacetime/slice -------------------------------------------

type spacetimeSliceRequest struct {
	Database string  `json:"database"`
	Relation string  `json:"relation"`
	T0       float64 `json:"t0"`
	// Mode is "sample" (default) or "volume" (the snapshot's measure;
	// zero with empty=true when t0 lies outside the support).
	Mode    string       `json:"mode,omitempty"`
	N       int          `json:"n,omitempty"`       // default 1
	Workers int          `json:"workers,omitempty"` // default Config.DefaultWorkers
	Seed    uint64       `json:"seed"`
	Options *OptionsJSON `json:"options,omitempty"`
	Stream  bool         `json:"stream,omitempty"`
}

type spacetimeSliceResponse struct {
	Database  string       `json:"database"`
	Relation  string       `json:"relation"`
	T0        float64      `json:"t0"`
	Mode      string       `json:"mode"`
	N         int          `json:"n,omitempty"`
	Workers   int          `json:"workers,omitempty"`
	Seed      uint64       `json:"seed"`
	Cache     string       `json:"cache,omitempty"`
	Coalesced bool         `json:"coalesced,omitempty"`
	Empty     bool         `json:"empty,omitempty"`
	Volume    *float64     `json:"volume,omitempty"`
	ElapsedMS float64      `json:"elapsed_ms"`
	Points    []cdb.Vector `json:"points,omitempty"`
}

func (s *Server) handleSpacetimeSlice(w http.ResponseWriter, r *http.Request) {
	const endpoint = "spacetime_slice"
	var req spacetimeSliceRequest
	if !decodeBody(w, r, 1<<16, &req) {
		s.metrics.IncError(endpoint)
		return
	}
	entry, ok := s.registry.Get(req.Database)
	if !ok {
		s.writeError(w, endpoint, http.StatusNotFound, fmt.Errorf("database %q not registered", req.Database))
		return
	}
	opts, err := req.Options.toOptions()
	if err != nil {
		s.writeError(w, endpoint, http.StatusBadRequest, err)
		return
	}
	mode := req.Mode
	if mode == "" {
		mode = "sample"
	}
	start := time.Now()
	resp := spacetimeSliceResponse{
		Database: entry.ID, Relation: req.Relation, T0: req.T0, Mode: mode, Seed: req.Seed,
	}
	switch mode {
	case "volume":
		ps, _, hit, err := s.preparedSlice(entry, req.Relation, req.T0, opts)
		if errors.Is(err, errEmptySlice) {
			zero := 0.0
			resp.Empty, resp.Volume = true, &zero
			resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
			writeJSON(w, http.StatusOK, resp)
			return
		}
		if err != nil {
			s.writeError(w, endpoint, http.StatusBadRequest, err)
			return
		}
		v, err := ps.Volume(req.Seed)
		if err != nil {
			s.writeError(w, endpoint, http.StatusInternalServerError, err)
			return
		}
		resp.Volume, resp.Cache = &v, cacheLabel(hit)
	case "sample":
		n := req.N
		if n <= 0 {
			n = 1
		}
		if n > s.cfg.MaxSamples {
			s.writeError(w, endpoint, http.StatusBadRequest,
				fmt.Errorf("n=%d exceeds the per-request cap %d", n, s.cfg.MaxSamples))
			return
		}
		workers := req.Workers
		if workers <= 0 {
			workers = s.cfg.DefaultWorkers
		}
		ps, key, hit, err := s.preparedSlice(entry, req.Relation, req.T0, opts)
		if err != nil {
			s.writeError(w, endpoint, http.StatusBadRequest, err)
			return
		}
		pts, coalesced, err := s.exec.SampleMany(key, ps, n, workers, req.Seed)
		if err != nil {
			s.writeError(w, endpoint, http.StatusInternalServerError, err)
			return
		}
		s.metrics.SamplesServed.Add(int64(len(pts)))
		resp.N, resp.Workers, resp.Cache, resp.Coalesced = n, workers, cacheLabel(hit), coalesced
		resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
		if req.Stream {
			streamPoints(w, resp, pts)
			return
		}
		resp.Points = pts
		writeJSON(w, http.StatusOK, resp)
		return
	default:
		s.writeError(w, endpoint, http.StatusBadRequest,
			fmt.Errorf("unknown mode %q (want sample or volume)", mode))
		return
	}
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	writeJSON(w, http.StatusOK, resp)
}

// --- POST /v1/spacetime/sample ------------------------------------------

type spacetimeSampleRequest struct {
	Database string `json:"database"`
	Relation string `json:"relation"`
	// T0/T1 optionally restrict sampling to the time window [t0, t1];
	// omitted, the whole trajectory is sampled.
	T0      *float64     `json:"t0,omitempty"`
	T1      *float64     `json:"t1,omitempty"`
	N       int          `json:"n,omitempty"`
	Workers int          `json:"workers,omitempty"`
	Seed    uint64       `json:"seed"`
	Options *OptionsJSON `json:"options,omitempty"`
	Stream  bool         `json:"stream,omitempty"`
}

func (s *Server) handleSpacetimeSample(w http.ResponseWriter, r *http.Request) {
	const endpoint = "spacetime_sample"
	var req spacetimeSampleRequest
	if !decodeBody(w, r, 1<<16, &req) {
		s.metrics.IncError(endpoint)
		return
	}
	entry, ok := s.registry.Get(req.Database)
	if !ok {
		s.writeError(w, endpoint, http.StatusNotFound, fmt.Errorf("database %q not registered", req.Database))
		return
	}
	opts, err := req.Options.toOptions()
	if err != nil {
		s.writeError(w, endpoint, http.StatusBadRequest, err)
		return
	}
	if (req.T0 == nil) != (req.T1 == nil) {
		s.writeError(w, endpoint, http.StatusBadRequest, errors.New("t0 and t1 must be given together"))
		return
	}
	n := req.N
	if n <= 0 {
		n = 1
	}
	if n > s.cfg.MaxSamples {
		s.writeError(w, endpoint, http.StatusBadRequest,
			fmt.Errorf("n=%d exceeds the per-request cap %d", n, s.cfg.MaxSamples))
		return
	}
	workers := req.Workers
	if workers <= 0 {
		workers = s.cfg.DefaultWorkers
	}
	start := time.Now()
	var (
		ps  *cdb.PreparedSampler
		key string
		hit bool
	)
	if req.T0 != nil {
		ps, key, hit, err = s.preparedWindow(entry, req.Relation, *req.T0, *req.T1, opts)
	} else {
		// No window: share the cache entry with plain /v1/sample.
		ps, key, hit, err = s.preparedFor(entry, req.Relation, "", opts)
	}
	if err != nil {
		s.writeError(w, endpoint, http.StatusBadRequest, err)
		return
	}
	pts, coalesced, err := s.exec.SampleMany(key, ps, n, workers, req.Seed)
	if err != nil {
		s.writeError(w, endpoint, http.StatusInternalServerError, err)
		return
	}
	s.metrics.SamplesServed.Add(int64(len(pts)))
	resp := sampleResponse{
		Database:  entry.ID,
		Target:    req.Relation,
		N:         n,
		Workers:   workers,
		Seed:      req.Seed,
		Cache:     cacheLabel(hit),
		Coalesced: coalesced,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
	}
	if req.Stream {
		streamPoints(w, resp, pts)
		return
	}
	resp.Points = pts
	writeJSON(w, http.StatusOK, resp)
}

// --- POST /v1/spacetime/alibi -------------------------------------------

type alibiRequest struct {
	Database string  `json:"database"`
	A        string  `json:"a"`
	B        string  `json:"b"`
	T0       float64 `json:"t0"`
	T1       float64 `json:"t1"`
	Seed     uint64  `json:"seed"`
	// MedianK > 1 amplifies the meeting-volume confidence with k
	// independent estimators (capped by Config.MaxMedianK).
	MedianK int          `json:"median_k,omitempty"`
	Options *OptionsJSON `json:"options,omitempty"`
}

type alibiResponse struct {
	Database  string  `json:"database"`
	A         string  `json:"a"`
	B         string  `json:"b"`
	ElapsedMS float64 `json:"elapsed_ms"`
	spacetime.Report
}

func (s *Server) handleSpacetimeAlibi(w http.ResponseWriter, r *http.Request) {
	const endpoint = "spacetime_alibi"
	var req alibiRequest
	if !decodeBody(w, r, 1<<16, &req) {
		s.metrics.IncError(endpoint)
		return
	}
	entry, ok := s.registry.Get(req.Database)
	if !ok {
		s.writeError(w, endpoint, http.StatusNotFound, fmt.Errorf("database %q not registered", req.Database))
		return
	}
	opts, err := req.Options.toOptions()
	if err != nil {
		s.writeError(w, endpoint, http.StatusBadRequest, err)
		return
	}
	if req.MedianK > s.cfg.MaxMedianK {
		s.writeError(w, endpoint, http.StatusBadRequest,
			fmt.Errorf("median_k=%d exceeds the cap %d", req.MedianK, s.cfg.MaxMedianK))
		return
	}
	relA, err := spacetimeRelation(entry, req.A)
	if err != nil {
		s.writeError(w, endpoint, http.StatusBadRequest, fmt.Errorf("a: %w", err))
		return
	}
	relB, err := spacetimeRelation(entry, req.B)
	if err != nil {
		s.writeError(w, endpoint, http.StatusBadRequest, fmt.Errorf("b: %w", err))
		return
	}
	if req.T1 < req.T0 {
		s.writeError(w, endpoint, http.StatusBadRequest,
			fmt.Errorf("empty window [%g, %g]", req.T0, req.T1))
		return
	}
	start := time.Now()
	rep, err := spacetime.Alibi(relA, relB, spacetime.TimeColumn(relA), req.T0, req.T1, req.Seed, req.MedianK, opts)
	if err != nil {
		s.writeError(w, endpoint, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, alibiResponse{
		Database:  entry.ID,
		A:         req.A,
		B:         req.B,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
		Report:    *rep,
	})
}
