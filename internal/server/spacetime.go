package server

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	cdb "repro"
	"repro/internal/runtime"
	"repro/internal/spacetime"
)

// The spacetime endpoints serve the moving-object workload: relations
// over (x_1..x_d, t) — typically trajectory fleets of space-time prisms
// — queried through the time-slice operator, whole-trajectory sampling
// and alibi evaluation. The slicing/windowing/alibi preparation and its
// caching live in internal/runtime; handlers here only decode, call and
// encode.
//
// Time slices are where the prepared-sampler cache earns its keep for
// this workload: a dashboard replaying "where could everything have
// been at t0?" hits the same (database, relation, t0, options) key on
// every frame, so the slicing + rounding + volume setup is paid once
// per distinct t0 and every later request binds only its seed. Empty
// slices are cached as negative entries, so out-of-support replays are
// O(1) verdict lookups. Alibi queries cache the meet region, its exact
// Fourier–Motzkin meeting-time intervals and the volume observable the
// same way.

// errEmptySlice marks a time slice (or window) with no feasible tuple —
// t0 outside the relation's support. Mapped to 422 by writeError;
// volume-mode requests convert it to a zero-volume 200 instead.
var errEmptySlice = runtime.ErrEmptySlice

// --- POST /v1/spacetime/slice -------------------------------------------

type spacetimeSliceRequest struct {
	Database string  `json:"database"`
	Relation string  `json:"relation"`
	T0       float64 `json:"t0"`
	// Mode is "sample" (default) or "volume" (the snapshot's measure;
	// zero with empty=true when t0 lies outside the support).
	Mode    string       `json:"mode,omitempty"`
	N       int          `json:"n,omitempty"`       // default 1
	Workers int          `json:"workers,omitempty"` // default Config.DefaultWorkers
	Seed    uint64       `json:"seed"`
	Options *OptionsJSON `json:"options,omitempty"`
	Stream  bool         `json:"stream,omitempty"`
}

type spacetimeSliceResponse struct {
	Database  string       `json:"database"`
	Relation  string       `json:"relation"`
	T0        float64      `json:"t0"`
	Mode      string       `json:"mode"`
	N         int          `json:"n,omitempty"`
	Workers   int          `json:"workers,omitempty"`
	Seed      uint64       `json:"seed"`
	Cache     string       `json:"cache,omitempty"`
	Coalesced bool         `json:"coalesced,omitempty"`
	Empty     bool         `json:"empty,omitempty"`
	Volume    *float64     `json:"volume,omitempty"`
	ElapsedMS float64      `json:"elapsed_ms"`
	Points    []cdb.Vector `json:"points,omitempty"`
}

func (s *Server) handleSpacetimeSlice(w http.ResponseWriter, r *http.Request) {
	const endpoint = "spacetime_slice"
	var req spacetimeSliceRequest
	if !decodeBody(w, r, 1<<16, &req) {
		s.metrics.IncError(endpoint)
		return
	}
	entry, ok := s.rt.Registry().Get(req.Database)
	if !ok {
		s.writeError(w, endpoint, http.StatusNotFound, fmt.Errorf("database %q not registered", req.Database))
		return
	}
	opts, err := req.Options.toOptions()
	if err != nil {
		s.writeError(w, endpoint, http.StatusBadRequest, err)
		return
	}
	mode := req.Mode
	if mode == "" {
		mode = "sample"
	}
	start := time.Now()
	resp := spacetimeSliceResponse{
		Database: entry.ID, Relation: req.Relation, T0: req.T0, Mode: mode, Seed: req.Seed,
	}
	switch mode {
	case "volume":
		ps, _, hit, err := s.rt.PreparedSlice(entry, req.Relation, req.T0, opts)
		if errors.Is(err, errEmptySlice) {
			zero := 0.0
			resp.Empty, resp.Volume = true, &zero
			resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
			writeJSON(w, http.StatusOK, resp)
			return
		}
		if err != nil {
			s.writeError(w, endpoint, http.StatusBadRequest, err)
			return
		}
		v, err := ps.VolumeCtx(r.Context(), req.Seed)
		if err != nil {
			s.writeError(w, endpoint, http.StatusInternalServerError, err)
			return
		}
		resp.Volume, resp.Cache = &v, cacheLabel(hit)
	case "sample":
		n := req.N
		if n <= 0 {
			n = 1
		}
		if n > s.cfg.MaxSamples {
			s.writeError(w, endpoint, http.StatusBadRequest,
				fmt.Errorf("n=%d exceeds the per-request cap %d", n, s.cfg.MaxSamples))
			return
		}
		workers := req.Workers
		if workers <= 0 {
			workers = s.cfg.DefaultWorkers
		}
		ps, key, hit, err := s.rt.PreparedSlice(entry, req.Relation, req.T0, opts)
		if err != nil {
			s.writeError(w, endpoint, http.StatusBadRequest, err)
			return
		}
		pts, coalesced, err := s.rt.Executor().SampleManyCtx(r.Context(), key, ps, n, workers, req.Seed)
		if err != nil {
			s.writeError(w, endpoint, http.StatusInternalServerError, err)
			return
		}
		s.metrics.SamplesServed.Add(int64(len(pts)))
		resp.N, resp.Workers, resp.Cache, resp.Coalesced = n, workers, cacheLabel(hit), coalesced
		resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
		if req.Stream {
			streamPoints(w, resp, pts)
			return
		}
		resp.Points = pts
		writeJSON(w, http.StatusOK, resp)
		return
	default:
		s.writeError(w, endpoint, http.StatusBadRequest,
			fmt.Errorf("unknown mode %q (want sample or volume)", mode))
		return
	}
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	writeJSON(w, http.StatusOK, resp)
}

// --- POST /v1/spacetime/sample ------------------------------------------

type spacetimeSampleRequest struct {
	Database string `json:"database"`
	Relation string `json:"relation"`
	// T0/T1 optionally restrict sampling to the time window [t0, t1];
	// omitted, the whole trajectory is sampled.
	T0      *float64     `json:"t0,omitempty"`
	T1      *float64     `json:"t1,omitempty"`
	N       int          `json:"n,omitempty"`
	Workers int          `json:"workers,omitempty"`
	Seed    uint64       `json:"seed"`
	Options *OptionsJSON `json:"options,omitempty"`
	Stream  bool         `json:"stream,omitempty"`
}

func (s *Server) handleSpacetimeSample(w http.ResponseWriter, r *http.Request) {
	const endpoint = "spacetime_sample"
	var req spacetimeSampleRequest
	if !decodeBody(w, r, 1<<16, &req) {
		s.metrics.IncError(endpoint)
		return
	}
	entry, ok := s.rt.Registry().Get(req.Database)
	if !ok {
		s.writeError(w, endpoint, http.StatusNotFound, fmt.Errorf("database %q not registered", req.Database))
		return
	}
	opts, err := req.Options.toOptions()
	if err != nil {
		s.writeError(w, endpoint, http.StatusBadRequest, err)
		return
	}
	if (req.T0 == nil) != (req.T1 == nil) {
		s.writeError(w, endpoint, http.StatusBadRequest, errors.New("t0 and t1 must be given together"))
		return
	}
	n := req.N
	if n <= 0 {
		n = 1
	}
	if n > s.cfg.MaxSamples {
		s.writeError(w, endpoint, http.StatusBadRequest,
			fmt.Errorf("n=%d exceeds the per-request cap %d", n, s.cfg.MaxSamples))
		return
	}
	workers := req.Workers
	if workers <= 0 {
		workers = s.cfg.DefaultWorkers
	}
	start := time.Now()
	var (
		ps  *cdb.PreparedSampler
		key string
		hit bool
	)
	if req.T0 != nil {
		ps, key, hit, err = s.rt.PreparedWindow(entry, req.Relation, *req.T0, *req.T1, opts)
	} else {
		// No window: share the cache entry with plain /v1/sample.
		ps, key, hit, err = s.preparedFor(entry, req.Relation, "", opts)
	}
	if err != nil {
		s.writeError(w, endpoint, http.StatusBadRequest, err)
		return
	}
	pts, coalesced, err := s.rt.Executor().SampleManyCtx(r.Context(), key, ps, n, workers, req.Seed)
	if err != nil {
		s.writeError(w, endpoint, http.StatusInternalServerError, err)
		return
	}
	s.metrics.SamplesServed.Add(int64(len(pts)))
	resp := sampleResponse{
		Database:  entry.ID,
		Target:    req.Relation,
		N:         n,
		Workers:   workers,
		Seed:      req.Seed,
		Cache:     cacheLabel(hit),
		Coalesced: coalesced,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
	}
	if req.Stream {
		streamPoints(w, resp, pts)
		return
	}
	resp.Points = pts
	writeJSON(w, http.StatusOK, resp)
}

// --- POST /v1/spacetime/alibi -------------------------------------------

type alibiRequest struct {
	Database string  `json:"database"`
	A        string  `json:"a"`
	B        string  `json:"b"`
	T0       float64 `json:"t0"`
	T1       float64 `json:"t1"`
	Seed     uint64  `json:"seed"`
	// MedianK > 1 amplifies the meeting-volume confidence with k
	// independently seeded estimators (capped by Config.MaxMedianK).
	MedianK int          `json:"median_k,omitempty"`
	Options *OptionsJSON `json:"options,omitempty"`
}

type alibiResponse struct {
	Database  string  `json:"database"`
	A         string  `json:"a"`
	B         string  `json:"b"`
	Cache     string  `json:"cache,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
	spacetime.Report
}

func (s *Server) handleSpacetimeAlibi(w http.ResponseWriter, r *http.Request) {
	const endpoint = "spacetime_alibi"
	var req alibiRequest
	if !decodeBody(w, r, 1<<16, &req) {
		s.metrics.IncError(endpoint)
		return
	}
	entry, ok := s.rt.Registry().Get(req.Database)
	if !ok {
		s.writeError(w, endpoint, http.StatusNotFound, fmt.Errorf("database %q not registered", req.Database))
		return
	}
	opts, err := req.Options.toOptions()
	if err != nil {
		s.writeError(w, endpoint, http.StatusBadRequest, err)
		return
	}
	if req.MedianK > s.cfg.MaxMedianK {
		s.writeError(w, endpoint, http.StatusBadRequest,
			fmt.Errorf("median_k=%d exceeds the cap %d", req.MedianK, s.cfg.MaxMedianK))
		return
	}
	if req.T1 < req.T0 {
		s.writeError(w, endpoint, http.StatusBadRequest,
			fmt.Errorf("empty window [%g, %g]", req.T0, req.T1))
		return
	}
	start := time.Now()
	// The meet region, its Fourier–Motzkin intervals and the volume
	// observable are prepared once per (db, a, b, t0, t1, options) in the
	// shared cache; this request only binds its seed.
	pa, hit, err := s.rt.PreparedAlibi(entry, req.A, req.B, req.T0, req.T1, opts)
	if err != nil {
		s.writeError(w, endpoint, http.StatusBadRequest, err)
		return
	}
	rep, err := pa.Report(r.Context(), req.Seed, req.MedianK)
	if err != nil {
		s.writeError(w, endpoint, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, alibiResponse{
		Database:  entry.ID,
		A:         req.A,
		B:         req.B,
		Cache:     cacheLabel(hit),
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
		Report:    *rep,
	})
}
