package server

// Tests of POST /v1/sql: the plain-text SQL endpoint shares canonical
// keys and prepared-sampler cache entries with /v1/expr (and with the
// cdb facade), infers its execution mode from the statement, and
// reports parse/compile errors as structured {error, line, col} bodies.
// /v1/expr's structured {error, op_path} errors are covered here too.

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/url"
	"strings"
	"testing"

	cdb "repro"
)

const sqlProgram = `
rel R(x, y) := { 0 <= x <= 1, 0 <= y <= 1 };
rel S(x, y) := { 0.5 <= x <= 2, 0 <= y <= 1 };
rel D(y) := { 0 <= y <= 0.25 };
`

func postSQL(t testing.TB, baseURL, dbID, stmt string) (*http.Response, sqlResponse, []byte) {
	t.Helper()
	resp, err := http.Post(baseURL+"/v1/sql?database="+url.QueryEscape(dbID), "text/plain", strings.NewReader(stmt))
	if err != nil {
		t.Fatalf("POST /v1/sql: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read /v1/sql response: %v", err)
	}
	var out sqlResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("decode sql response: %v (%s)", err, body)
		}
	}
	return resp, out, body
}

// TestSQLEndpointSharesCacheWithExpr is the HTTP half of the acceptance
// test: a statement and the structurally equal /v1/expr tree report one
// canonical key (matching the cdb facade's), and whichever surface goes
// second gets a cache hit — including EXPLAIN's per-disjunct residency.
func TestSQLEndpointSharesCacheWithExpr(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	dbID := register(t, ts.URL, "sqldb", sqlProgram)

	// Cold: the JSON tree prepares the sampler. No options — /v1/sql
	// statements always run under DefaultOptions, and the cache key
	// includes the options fingerprint.
	tree := &exprNodeJSON{Op: "where", Args: []*exprNodeJSON{rel("R")},
		Atoms: []exprAtomJSON{{Coef: []float64{1, 1}, B: 1}}}
	resp, out1, body := postExpr(t, ts.URL, exprRequest{Database: dbID, Expr: tree, Mode: "sample", N: 4, Seed: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("expr sample: status %d (%s)", resp.StatusCode, body)
	}
	if out1.Cache != "miss" {
		t.Fatalf("cold expr cache = %q, want miss", out1.Cache)
	}

	// Warm: the same query as SQL text hits the entry the tree built.
	resp, out2, body := postSQL(t, ts.URL, dbID, "SELECT * FROM R WHERE x + y <= 1 SAMPLE 4 SEED 1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sql sample: status %d (%s)", resp.StatusCode, body)
	}
	if out2.CanonicalKey != out1.CanonicalKey {
		t.Fatalf("canonical keys differ:\nexpr: %s\n sql: %s", out1.CanonicalKey, out2.CanonicalKey)
	}
	if out2.Cache != "hit" {
		t.Fatalf("sql after expr: cache = %q, want hit", out2.Cache)
	}
	if len(out2.Points) != 4 {
		t.Fatalf("sql sample returned %d points, want 4", len(out2.Points))
	}

	// The facade computes the identical fingerprint for its combinators.
	db, err := cdb.Open(sqlProgram)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	facadeKey, err := db.Rel("R").Where(cdb.NewAtom(cdb.Vector{1, 1}, 1, false)).CanonicalKey()
	if err != nil {
		t.Fatal(err)
	}
	if facadeKey != out2.CanonicalKey {
		t.Fatalf("facade key %s != endpoint key %s", facadeKey, out2.CanonicalKey)
	}

	// EXPLAIN sees the warm entry, with per-disjunct residency.
	resp, out3, body := postSQL(t, ts.URL, dbID, "EXPLAIN SELECT * FROM R WHERE x + y <= 1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sql explain: status %d (%s)", resp.StatusCode, body)
	}
	if out3.Mode != "explain" || out3.Cache != "hit" || out3.CanonicalKey != out1.CanonicalKey {
		t.Fatalf("explain = {mode %q, cache %q, key %s}, want warm explain of %s",
			out3.Mode, out3.Cache, out3.CanonicalKey, out1.CanonicalKey)
	}
	if len(out3.Disjuncts) == 0 {
		t.Fatal("explain has no per-disjunct entries")
	}
	for _, d := range out3.Disjuncts {
		if d.CanonicalKey == "" || d.Cache == "" {
			t.Fatalf("disjunct missing residency: %+v", d)
		}
	}
}

// TestSQLEndpointModes: every inferred mode end to end over HTTP.
func TestSQLEndpointModes(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	dbID := register(t, ts.URL, "sqlmodes", sqlProgram)

	t.Run("volume", func(t *testing.T) {
		resp, out, body := postSQL(t, ts.URL, dbID, "SELECT VOLUME(*) FROM R")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d (%s)", resp.StatusCode, body)
		}
		if out.Mode != "volume" || out.Volume == nil {
			t.Fatalf("mode %q, volume %v", out.Mode, out.Volume)
		}
		if math.Abs(*out.Volume-1) > 0.15 {
			t.Fatalf("unit-square volume = %g, want ≈ 1", *out.Volume)
		}
	})

	t.Run("relation", func(t *testing.T) {
		resp, out, body := postSQL(t, ts.URL, dbID, "SELECT x AS u FROM R WHERE y <= 0.5")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d (%s)", resp.StatusCode, body)
		}
		if out.Mode != "relation" || out.Source == "" {
			t.Fatalf("mode %q, source %q", out.Mode, out.Source)
		}
		if len(out.Columns) != 1 || out.Columns[0] != "u" {
			t.Fatalf("columns = %v, want the SQL alias [u]", out.Columns)
		}
		if out.Statement != "SELECT x AS u FROM R WHERE y <= 0.5" {
			t.Fatalf("statement echo = %q", out.Statement)
		}
	})

	t.Run("explain symbolic", func(t *testing.T) {
		resp, out, body := postSQL(t, ts.URL, dbID, "EXPLAIN SYMBOLIC SELECT * FROM R")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d (%s)", resp.StatusCode, body)
		}
		if out.Mode != "explain" || out.SymbolicKey == "" || out.CanonicalKey == "" {
			t.Fatalf("explain symbolic = {mode %q, symbolic_key %q, key %q}", out.Mode, out.SymbolicKey, out.CanonicalKey)
		}
		if out.Cache == "" {
			t.Fatal("explain symbolic reports no cache label")
		}
	})

	t.Run("full-FO volume", func(t *testing.T) {
		// ∀y∈D (x,y)∈R keeps every x in [0,1]: exact symbolic volume 1.
		resp, out, body := postSQL(t, ts.URL, dbID, "SELECT VOLUME(*) FROM (SELECT * FROM R FOR ALL SELECT * FROM D)")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d (%s)", resp.StatusCode, body)
		}
		if out.Volume == nil || math.Abs(*out.Volume-1) > 1e-9 {
			t.Fatalf("division volume = %v, want exactly 1", out.Volume)
		}
	})
}

// TestSQLEndpointErrors: parse errors are positioned, unknown targets
// are 404s, and statements outside the sampling fragment with no
// symbolic fallback are 422s.
func TestSQLEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	dbID := register(t, ts.URL, "sqlerrs", sqlProgram)

	for _, tc := range []struct {
		stmt   string
		status int
	}{
		{"SELEC * FROM R", http.StatusBadRequest},
		{"SELECT * FROM R WHERE x <", http.StatusBadRequest},
		{"SELECT * FROM Nope", http.StatusNotFound},
		{"SELECT * FROM R FOR ALL SELECT * FROM D SAMPLE 4", http.StatusUnprocessableEntity},
	} {
		resp, _, body := postSQL(t, ts.URL, dbID, tc.stmt)
		if resp.StatusCode != tc.status {
			t.Errorf("%q: status %d, want %d (%s)", tc.stmt, resp.StatusCode, tc.status, body)
			continue
		}
		var er errorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%q: unstructured error body %s", tc.stmt, body)
			continue
		}
		if tc.status != http.StatusUnprocessableEntity && (er.Line < 1 || er.Col < 1) {
			t.Errorf("%q: unpositioned sql error %+v", tc.stmt, er)
		}
	}

	resp, _, body := postSQL(t, ts.URL, "no-such-db", "SELECT * FROM R")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown database: status %d (%s)", resp.StatusCode, body)
	}
}

// TestExprOpPathErrors: /v1/expr failures name the failing operator —
// structural mistakes during decoding, and compile-time mistakes via
// the deepest-failing-subtree probe.
func TestExprOpPathErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	dbID := register(t, ts.URL, "oppath", sqlProgram)

	for _, tc := range []struct {
		name   string
		expr   *exprNodeJSON
		status int
		opPath string
	}{
		{
			name:   "unknown op at root",
			expr:   &exprNodeJSON{Op: "frob"},
			status: http.StatusBadRequest,
			opPath: "expr",
		},
		{
			name:   "nameless rel leaf",
			expr:   binOp("intersect", rel("R"), &exprNodeJSON{Op: "rel"}),
			status: http.StatusBadRequest,
			opPath: "expr.args[1]",
		},
		{
			name:   "unknown relation",
			expr:   binOp("union", rel("R"), rel("Nope")),
			status: http.StatusNotFound,
			opPath: "expr.args[1]",
		},
		{
			name:   "arity mismatch at nested set op",
			expr:   binOp("union", rel("R"), binOp("intersect", rel("R"), rel("D"))),
			status: http.StatusBadRequest,
			opPath: "expr.args[1]",
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, _, body := postExpr(t, ts.URL, exprRequest{Database: dbID, Expr: tc.expr, Mode: "volume"})
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, tc.status, body)
			}
			var er errorResponse
			if err := json.Unmarshal(body, &er); err != nil {
				t.Fatalf("decode error body: %v (%s)", err, body)
			}
			if er.OpPath != tc.opPath {
				t.Fatalf("op_path = %q, want %q (error %q)", er.OpPath, tc.opPath, er.Error)
			}
		})
	}
}
