package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	cdb "repro"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/obs/quality"
	"repro/internal/runtime"
	sqldialect "repro/internal/sql"
	"repro/internal/walk"
)

// OptionsJSON is the wire form of cdb.Options. Zero/omitted fields keep
// the library defaults (hit-and-run walk, γ=0.2, ε=0.25, δ=0.1).
type OptionsJSON struct {
	Walk               string  `json:"walk,omitempty"` // "hit-and-run" (default), "grid", "ball"
	Gamma              float64 `json:"gamma,omitempty"`
	Eps                float64 `json:"eps,omitempty"`
	Delta              float64 `json:"delta,omitempty"`
	WalkSteps          int     `json:"walk_steps,omitempty"`
	RoundingIterations int     `json:"rounding_iterations,omitempty"`
	MaxPhaseSamples    int     `json:"max_phase_samples,omitempty"`
}

func (o *OptionsJSON) toOptions() (cdb.Options, error) {
	opts := cdb.DefaultOptions()
	if o == nil {
		return opts, nil
	}
	switch o.Walk {
	case "", "hit-and-run", "hitandrun":
		opts.Walk = walk.HitAndRun
	case "grid":
		opts.Walk = walk.GridWalk
	case "ball":
		opts.Walk = walk.BallWalk
	default:
		return opts, fmt.Errorf("unknown walk %q (want hit-and-run, grid or ball)", o.Walk)
	}
	if o.Gamma != 0 || o.Eps != 0 || o.Delta != 0 {
		p := core.DefaultParams()
		if o.Gamma != 0 {
			p.Gamma = o.Gamma
		}
		if o.Eps != 0 {
			p.Eps = o.Eps
		}
		if o.Delta != 0 {
			p.Delta = o.Delta
		}
		opts.Params = p
	}
	opts.WalkSteps = o.WalkSteps
	opts.RoundingIterations = o.RoundingIterations
	opts.MaxPhaseSamples = o.MaxPhaseSamples
	return opts, nil
}

type errorResponse struct {
	Error string `json:"error"`
	// OpPath locates the failing operator inside a /v1/expr tree, as a
	// path from the root: "expr", "expr.args[1]", "expr.args[0].args[1]".
	OpPath string `json:"op_path,omitempty"`
	// Line/Col are the 1-based position of a CDB-SQL parse or compile
	// error inside the statement text (POST /v1/sql).
	Line int `json:"line,omitempty"`
	Col  int `json:"col,omitempty"`
}

// errorBody renders err as the structured wire form: op-path errors
// (malformed /v1/expr trees) carry the failing operator's path, CDB-SQL
// errors carry the statement position.
func errorBody(err error) errorResponse {
	body := errorResponse{Error: err.Error()}
	var pe *opPathError
	var se *sqldialect.Error
	switch {
	case errors.As(err, &pe):
		body.Error = pe.err.Error()
		body.OpPath = pe.path
	case errors.As(err, &se):
		body.Line, body.Col = se.Line, se.Col
	}
	return body
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// writeError maps library errors onto HTTP statuses: client mistakes are
// 400/404, relations outside the algorithms' preconditions are 422, and
// the probability-δ generator abort is 503. Definition 2.2 allows
// failure with probability δ, but responses are deterministic per
// request, so the documented client recovery is retrying with a
// *different* seed — replaying the identical request replays the abort.
// A cancelled request context (the client went away mid-walk) is not a
// server error: it maps to 499 (nginx's "client closed request") and
// stays out of the error metrics.
func (s *Server) writeError(w http.ResponseWriter, endpoint string, status int, err error) {
	switch {
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, statusClientClosedRequest, errorBody(err))
		return
	case errors.Is(err, errTargetNotFound):
		status = http.StatusNotFound
	case errors.Is(err, errEmptySlice), errors.Is(err, runtime.ErrEmptyExpr),
		errors.Is(err, cdb.ErrNotWellBounded), errors.Is(err, cdb.ErrNotPolyRelated), errors.Is(err, cdb.ErrUnsupportedQuery):
		status = http.StatusUnprocessableEntity
	case errors.Is(err, cdb.ErrGeneratorFailed):
		status = http.StatusServiceUnavailable
	}
	s.metrics.IncError(endpoint)
	writeJSON(w, status, errorBody(err))
}

// statusClientClosedRequest is nginx's non-standard 499: the client
// cancelled the request before the response was produced.
const statusClientClosedRequest = 499

func decodeBody(w http.ResponseWriter, r *http.Request, maxBytes int64, v any) bool {
	body := http.MaxBytesReader(w, r.Body, maxBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "decode request: " + err.Error()})
		return false
	}
	return true
}

// --- POST /v1/databases -------------------------------------------------

type registerRequest struct {
	// Name is the optional database id; defaults to a content hash.
	Name string `json:"name,omitempty"`
	// Source is the constraint database program, e.g.
	// `rel S(x, y) := { x >= 0, y >= 0, x + y <= 1 };`.
	Source string `json:"source"`
}

type relationInfo struct {
	Name   string   `json:"name"`
	Vars   []string `json:"vars"`
	Tuples int      `json:"tuples"`
}

type queryInfo struct {
	Name string   `json:"name"`
	Vars []string `json:"vars"`
}

type databaseResponse struct {
	ID        string         `json:"id"`
	Name      string         `json:"name,omitempty"`
	Created   bool           `json:"created"`
	Relations []relationInfo `json:"relations"`
	Queries   []queryInfo    `json:"queries"`
}

func describeDatabase(e *DatabaseEntry, created bool) databaseResponse {
	resp := databaseResponse{
		ID:        e.ID,
		Name:      e.Name,
		Created:   created,
		Relations: []relationInfo{},
		Queries:   []queryInfo{},
	}
	for _, name := range e.DB.Names {
		rel := e.DB.Schema[name]
		resp.Relations = append(resp.Relations, relationInfo{Name: name, Vars: rel.Vars, Tuples: len(rel.Tuples)})
	}
	for _, q := range e.DB.Queries {
		resp.Queries = append(resp.Queries, queryInfo{Name: q.Name, Vars: q.Vars})
	}
	return resp
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if !decodeBody(w, r, int64(s.cfg.MaxSourceBytes), &req) {
		s.metrics.IncError("databases")
		return
	}
	if req.Source == "" {
		s.writeError(w, "databases", http.StatusBadRequest, errors.New("missing source"))
		return
	}
	entry, created, err := s.rt.Registry().Register(req.Name, req.Source)
	if err != nil {
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, ErrConflict):
			status = http.StatusConflict
		case errors.Is(err, ErrRegistryFull):
			status = http.StatusInsufficientStorage
		}
		s.writeError(w, "databases", status, err)
		return
	}
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	if created {
		// Cluster mode: replicate the registration to every peer so each
		// node can resolve ids and compile plans for routing, whichever
		// node the client registered against. Content-hash idempotent, so
		// races and replays converge; no-op for single-node servers and
		// for registrations that arrived from a peer.
		if body, err := json.Marshal(req); err == nil {
			s.replicateRegistration(r, body)
		}
	}
	writeJSON(w, status, describeDatabase(entry, created))
}

func (s *Server) handleListDatabases(w http.ResponseWriter, r *http.Request) {
	entries := s.rt.Registry().List()
	out := make([]databaseResponse, 0, len(entries))
	for _, e := range entries {
		out = append(out, describeDatabase(e, false))
	}
	writeJSON(w, http.StatusOK, map[string]any{"databases": out})
}

func (s *Server) handleGetDatabase(w http.ResponseWriter, r *http.Request) {
	entry, ok := s.rt.Registry().Get(r.PathValue("id"))
	if !ok {
		s.writeError(w, "databases", http.StatusNotFound, fmt.Errorf("database %q not registered", r.PathValue("id")))
		return
	}
	resp := describeDatabase(entry, false)
	writeJSON(w, http.StatusOK, map[string]any{
		"id": resp.ID, "name": resp.Name,
		"relations": resp.Relations, "queries": resp.Queries,
		"source": entry.Source,
	})
}

// --- sampler resolution -------------------------------------------------

// errNeedsProjection marks a query whose sampling plan requires the
// projection generator (Algorithm 2) and therefore cannot be served
// from the prepared-sampler cache (the client uses POST /v1/query).
var errNeedsProjection = runtime.ErrNeedsProjection

// errTargetNotFound marks a relation or query name absent from its
// database — a 404, like an unknown database id.
var errTargetNotFound = runtime.ErrTargetNotFound

// preparedFor returns the cached prepared sampler for the target from
// the shared runtime, building it on first use. Projection-needing
// queries gain the HTTP-level hint the runtime cannot know about.
func (s *Server) preparedFor(e *DatabaseEntry, relName, queryName string, opts cdb.Options) (*cdb.PreparedSampler, string, bool, error) {
	ps, key, hit, err := s.rt.PreparedFor(e, relName, queryName, opts)
	return ps, key, hit, hintProjection(err)
}

// hintProjection decorates the runtime's projection error with the
// endpoint that does serve such queries.
func hintProjection(err error) error {
	if errors.Is(err, errNeedsProjection) {
		return fmt.Errorf("%w; use POST /v1/query", err)
	}
	return err
}

// ctxOptions wires the request context into the options' Interrupt
// hook, so per-request generators (query engines, median estimators)
// abort their walks when the client goes away. Cached preparations are
// unaffected: the runtime strips the hook before building shared
// geometry.
func ctxOptions(ctx context.Context, opts cdb.Options) cdb.Options {
	opts.Interrupt = ctx.Err
	return opts
}

func cacheLabel(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// --- POST /v1/sample ----------------------------------------------------

type sampleRequest struct {
	Database string       `json:"database"`
	Relation string       `json:"relation,omitempty"`
	Query    string       `json:"query,omitempty"`
	N        int          `json:"n,omitempty"`       // default 1
	Workers  int          `json:"workers,omitempty"` // default Config.DefaultWorkers
	Seed     uint64       `json:"seed"`
	Options  *OptionsJSON `json:"options,omitempty"`
	// Stream selects NDJSON output: a meta line followed by one point
	// per line. Equivalent to Accept: application/x-ndjson.
	Stream bool `json:"stream,omitempty"`
	// Trace includes the request's span tree (per-stage durations and
	// counters) in the response.
	Trace bool `json:"trace,omitempty"`
}

type sampleResponse struct {
	Database  string       `json:"database"`
	Target    string       `json:"target"`
	N         int          `json:"n"`
	Workers   int          `json:"workers"`
	Seed      uint64       `json:"seed"`
	Cache     string       `json:"cache"` // "hit" or "miss"
	Coalesced bool         `json:"coalesced,omitempty"`
	ElapsedMS float64      `json:"elapsed_ms"`
	TraceID   string       `json:"trace_id,omitempty"`
	Spans     *spanJSON    `json:"spans,omitempty"`
	Points    []cdb.Vector `json:"points,omitempty"`
}

func (s *Server) handleSample(w http.ResponseWriter, r *http.Request) {
	var req sampleRequest
	if !decodeBody(w, r, 1<<16, &req) {
		s.metrics.IncError("sample")
		return
	}
	entry, ok := s.rt.Registry().Get(req.Database)
	if !ok {
		s.writeError(w, "sample", http.StatusNotFound, fmt.Errorf("database %q not registered", req.Database))
		return
	}
	opts, err := req.Options.toOptions()
	if err != nil {
		s.writeError(w, "sample", http.StatusBadRequest, err)
		return
	}
	n := req.N
	if n <= 0 {
		n = 1
	}
	if n > s.cfg.MaxSamples {
		s.writeError(w, "sample", http.StatusBadRequest,
			fmt.Errorf("n=%d exceeds the per-request cap %d", n, s.cfg.MaxSamples))
		return
	}
	workers := req.Workers
	if workers <= 0 {
		workers = s.cfg.DefaultWorkers
	}
	start := time.Now()
	ps, key, hit, err := s.preparedFor(entry, req.Relation, req.Query, opts)
	if err != nil {
		s.writeError(w, "sample", http.StatusBadRequest, err)
		return
	}
	pts, coalesced, err := s.rt.Executor().SampleManyCtx(r.Context(), key, ps, n, workers, req.Seed)
	if err != nil {
		s.writeError(w, "sample", http.StatusInternalServerError, err)
		return
	}
	s.metrics.SamplesServed.Add(int64(len(pts)))
	resp := sampleResponse{
		Database:  entry.ID,
		Target:    firstNonEmpty(req.Relation, req.Query),
		N:         n,
		Workers:   workers,
		Seed:      req.Seed,
		Cache:     cacheLabel(hit),
		Coalesced: coalesced,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
		TraceID:   traceID(r.Context()),
		Spans:     traceSpans(r.Context(), req.Trace),
	}
	if req.Stream || strings.Contains(r.Header.Get("Accept"), "application/x-ndjson") {
		streamPoints(w, resp, pts)
		return
	}
	resp.Points = pts
	writeJSON(w, http.StatusOK, resp)
}

func firstNonEmpty(a, b string) string {
	if a != "" {
		return a
	}
	return b
}

// streamPoints writes the NDJSON form: the response meta (without
// points) on the first line, then one JSON array per sample, flushing
// every flushEvery lines so clients consume points as they arrive.
func streamPoints(w http.ResponseWriter, meta any, pts []cdb.Vector) {
	const flushEvery = 256
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	if err := enc.Encode(meta); err != nil {
		return
	}
	flusher, _ := w.(http.Flusher)
	for i, p := range pts {
		if err := enc.Encode(p); err != nil {
			return // client went away; stop serializing to a dead connection
		}
		if flusher != nil && (i+1)%flushEvery == 0 {
			flusher.Flush()
		}
	}
	if flusher != nil {
		flusher.Flush()
	}
}

// --- POST /v1/volume ----------------------------------------------------

type volumeRequest struct {
	Database string `json:"database"`
	Relation string `json:"relation,omitempty"`
	Query    string `json:"query,omitempty"`
	Seed     uint64 `json:"seed"`
	// MedianK > 1 runs k independent cold estimators and returns the
	// median (cdb.MedianVolume's ln(1/δ) confidence amplification); the
	// default uses the warm prepared estimate.
	MedianK int          `json:"median_k,omitempty"`
	Options *OptionsJSON `json:"options,omitempty"`
	// Trace includes the request's span tree in the response.
	Trace bool `json:"trace,omitempty"`
}

type volumeResponse struct {
	Database  string    `json:"database"`
	Target    string    `json:"target"`
	Volume    float64   `json:"volume"`
	Method    string    `json:"method"` // "prepared" or "median"
	Cache     string    `json:"cache,omitempty"`
	ElapsedMS float64   `json:"elapsed_ms"`
	TraceID   string    `json:"trace_id,omitempty"`
	Spans     *spanJSON `json:"spans,omitempty"`
}

func (s *Server) handleVolume(w http.ResponseWriter, r *http.Request) {
	var req volumeRequest
	if !decodeBody(w, r, 1<<16, &req) {
		s.metrics.IncError("volume")
		return
	}
	entry, ok := s.rt.Registry().Get(req.Database)
	if !ok {
		s.writeError(w, "volume", http.StatusNotFound, fmt.Errorf("database %q not registered", req.Database))
		return
	}
	opts, err := req.Options.toOptions()
	if err != nil {
		s.writeError(w, "volume", http.StatusBadRequest, err)
		return
	}
	if req.MedianK > s.cfg.MaxMedianK {
		s.writeError(w, "volume", http.StatusBadRequest,
			fmt.Errorf("median_k=%d exceeds the cap %d", req.MedianK, s.cfg.MaxMedianK))
		return
	}
	start := time.Now()
	resp := volumeResponse{Database: entry.ID, Target: firstNonEmpty(req.Relation, req.Query), TraceID: traceID(r.Context())}
	if req.MedianK > 1 {
		rel, _, _, err := runtime.ResolveTarget(entry, req.Relation, req.Query, opts)
		if err != nil {
			s.writeError(w, "volume", http.StatusBadRequest, hintProjection(err))
			return
		}
		v, err := cdb.MedianVolume(rel, req.MedianK, req.Seed, ctxOptions(r.Context(), opts))
		if err != nil {
			s.writeError(w, "volume", http.StatusInternalServerError, err)
			return
		}
		resp.Volume, resp.Method = v, "median"
	} else {
		ps, _, hit, err := s.preparedFor(entry, req.Relation, req.Query, opts)
		if errors.Is(err, runtime.ErrEmptyExpr) {
			// The empty set has volume 0 — same contract as the library
			// and /v1/expr; replays serve the cached verdict.
			resp.Volume, resp.Method, resp.Cache = 0, "prepared", cacheLabel(hit)
			resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
			resp.Spans = traceSpans(r.Context(), req.Trace)
			writeJSON(w, http.StatusOK, resp)
			return
		}
		if err != nil {
			s.writeError(w, "volume", http.StatusBadRequest, err)
			return
		}
		v, err := ps.VolumeCtx(r.Context(), req.Seed)
		if err != nil {
			s.writeError(w, "volume", http.StatusInternalServerError, err)
			return
		}
		resp.Volume, resp.Method, resp.Cache = v, "prepared", cacheLabel(hit)
	}
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	resp.Spans = traceSpans(r.Context(), req.Trace)
	writeJSON(w, http.StatusOK, resp)
}

// --- POST /v1/query -----------------------------------------------------

type queryRequest struct {
	Database string `json:"database"`
	Query    string `json:"query"`
	// Mode selects the evaluation: "volume" (default), "sample", "plan",
	// "symbolic" or "reconstruct".
	Mode    string       `json:"mode,omitempty"`
	N       int          `json:"n,omitempty"` // samples for sample/reconstruct (default 100)
	Seed    uint64       `json:"seed"`
	Options *OptionsJSON `json:"options,omitempty"`
}

type queryResponse struct {
	Database  string       `json:"database"`
	Query     string       `json:"query"`
	Mode      string       `json:"mode"`
	Volume    *float64     `json:"volume,omitempty"`
	Points    []cdb.Vector `json:"points,omitempty"`
	Plan      string       `json:"plan,omitempty"`
	Source    string       `json:"source,omitempty"`
	Hulls     []hullJSON   `json:"hulls,omitempty"`
	ElapsedMS float64      `json:"elapsed_ms"`
}

type hullJSON struct {
	Vertices []cdb.Vector `json:"vertices"`
}

// hullVertices extracts a hull's extreme points for the wire. Grid-walk
// samples repeat grid points, and Hull.Vertices drops a duplicated
// extreme entirely (each copy lies in the hull of the others), so the
// point set is deduplicated first; a fully degenerate hull falls back
// to its distinct points.
func hullVertices(h *cdb.Hull) []cdb.Vector {
	pts := geom.DedupPoints(h.Points, 1e-12)
	if v := geom.NewHull(pts).Vertices(); len(v) > 0 {
		return v
	}
	return pts
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decodeBody(w, r, 1<<16, &req) {
		s.metrics.IncError("query")
		return
	}
	entry, ok := s.rt.Registry().Get(req.Database)
	if !ok {
		s.writeError(w, "query", http.StatusNotFound, fmt.Errorf("database %q not registered", req.Database))
		return
	}
	q, ok := entry.DB.Query(req.Query)
	if !ok {
		s.writeError(w, "query", http.StatusNotFound, fmt.Errorf("query %q not found in database %q", req.Query, entry.ID))
		return
	}
	opts, err := req.Options.toOptions()
	if err != nil {
		s.writeError(w, "query", http.StatusBadRequest, err)
		return
	}
	n := req.N
	if n <= 0 {
		n = 100
	}
	if n > s.cfg.MaxSamples {
		s.writeError(w, "query", http.StatusBadRequest,
			fmt.Errorf("n=%d exceeds the per-request cap %d", n, s.cfg.MaxSamples))
		return
	}
	mode := req.Mode
	if mode == "" {
		mode = "volume"
	}
	eng := cdb.NewEngine(entry.DB.Schema, ctxOptions(r.Context(), opts), req.Seed)
	start := time.Now()
	resp := queryResponse{Database: entry.ID, Query: req.Query, Mode: mode}
	switch mode {
	case "volume":
		v, err := eng.EstimateVolume(q)
		if err != nil {
			s.writeError(w, "query", http.StatusInternalServerError, err)
			return
		}
		resp.Volume = &v
	case "sample":
		obs, err := eng.Observable(q)
		if err != nil {
			s.writeError(w, "query", http.StatusInternalServerError, err)
			return
		}
		pts := make([]cdb.Vector, 0, n)
		for i := 0; i < n; i++ {
			x, err := obs.Sample()
			if err != nil {
				s.writeError(w, "query", http.StatusInternalServerError, err)
				return
			}
			pts = append(pts, x)
		}
		s.metrics.SamplesServed.Add(int64(len(pts)))
		resp.Points = pts
	case "plan":
		plan, err := eng.NewPlan(q)
		if err != nil {
			s.writeError(w, "query", http.StatusInternalServerError, err)
			return
		}
		resp.Plan = plan.Describe()
	case "symbolic":
		rel, err := eng.EvalSymbolic(q)
		if err != nil {
			s.writeError(w, "query", http.StatusInternalServerError, err)
			return
		}
		resp.Source = rel.Source()
	case "reconstruct":
		est, err := eng.Reconstruct(q, n)
		if err != nil {
			s.writeError(w, "query", http.StatusInternalServerError, err)
			return
		}
		for _, h := range est.Hulls {
			resp.Hulls = append(resp.Hulls, hullJSON{Vertices: hullVertices(h)})
		}
	default:
		s.writeError(w, "query", http.StatusBadRequest,
			fmt.Errorf("unknown mode %q (want volume, sample, plan, symbolic or reconstruct)", mode))
		return
	}
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	writeJSON(w, http.StatusOK, resp)
}

// --- POST /v1/reconstruct -----------------------------------------------

type reconstructRequest struct {
	Database string       `json:"database"`
	Relation string       `json:"relation,omitempty"`
	Query    string       `json:"query,omitempty"`
	N        int          `json:"n,omitempty"` // samples per hull (default 200)
	Seed     uint64       `json:"seed"`
	Options  *OptionsJSON `json:"options,omitempty"`
}

type reconstructResponse struct {
	Database    string     `json:"database"`
	Target      string     `json:"target"`
	N           int        `json:"n"`
	Seed        uint64     `json:"seed"`
	Cache       string     `json:"cache,omitempty"`
	Dim         int        `json:"dim"`
	Hulls       []hullJSON `json:"hulls"`
	VertexCount int        `json:"vertex_count"`
	ElapsedMS   float64    `json:"elapsed_ms"`
}

func (s *Server) handleReconstruct(w http.ResponseWriter, r *http.Request) {
	var req reconstructRequest
	if !decodeBody(w, r, 1<<16, &req) {
		s.metrics.IncError("reconstruct")
		return
	}
	entry, ok := s.rt.Registry().Get(req.Database)
	if !ok {
		s.writeError(w, "reconstruct", http.StatusNotFound, fmt.Errorf("database %q not registered", req.Database))
		return
	}
	opts, err := req.Options.toOptions()
	if err != nil {
		s.writeError(w, "reconstruct", http.StatusBadRequest, err)
		return
	}
	n := req.N
	if n <= 0 {
		n = 200
	}
	if n > s.cfg.MaxSamples {
		s.writeError(w, "reconstruct", http.StatusBadRequest,
			fmt.Errorf("n=%d exceeds the per-request cap %d", n, s.cfg.MaxSamples))
		return
	}
	start := time.Now()
	resp := reconstructResponse{Database: entry.ID, Target: firstNonEmpty(req.Relation, req.Query), N: n, Seed: req.Seed}

	// Queries with existential quantifiers need Algorithm 5 through the
	// engine; everything else reconstructs from the cached sampler.
	ps, _, hit, err := s.preparedFor(entry, req.Relation, req.Query, opts)
	if errors.Is(err, errNeedsProjection) {
		// resolveTarget found the query before reporting ∃-variables, so
		// the lookup cannot miss here.
		q, _ := entry.DB.Query(req.Query)
		eng := cdb.NewEngine(entry.DB.Schema, ctxOptions(r.Context(), opts), req.Seed)
		est, err := eng.Reconstruct(q, n)
		if err != nil {
			s.writeError(w, "reconstruct", http.StatusInternalServerError, err)
			return
		}
		resp.Dim = est.Dim()
		for _, h := range est.Hulls {
			verts := hullVertices(h)
			resp.Hulls = append(resp.Hulls, hullJSON{Vertices: verts})
			resp.VertexCount += len(verts)
		}
		resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
		writeJSON(w, http.StatusOK, resp)
		return
	}
	if err != nil {
		s.writeError(w, "reconstruct", http.StatusBadRequest, err)
		return
	}
	// One hull per convex tuple (Algorithm 5's per-disjunct estimators):
	// a single hull over a multi-tuple union would report the gaps
	// between tuples as part of the set.
	resp.Cache = cacheLabel(hit)
	resp.Dim = ps.Dim()
	for i := 0; i < ps.Tuples(); i++ {
		gen, err := ps.NewMemberObservable(i, req.Seed)
		if err != nil {
			s.writeError(w, "reconstruct", http.StatusInternalServerError, err)
			return
		}
		hull, err := cdb.ReconstructConvex(gen, n)
		if err != nil {
			s.writeError(w, "reconstruct", http.StatusInternalServerError, err)
			return
		}
		verts := hullVertices(hull)
		resp.Hulls = append(resp.Hulls, hullJSON{Vertices: verts})
		resp.VertexCount += len(verts)
	}
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	writeJSON(w, http.StatusOK, resp)
}

// --- GET/POST /v1/audit --------------------------------------------------

// auditStatusResponse is the GET /v1/audit body: the auditor's lifetime
// counters (including currently flagged keys) plus the per-sampler
// quality reports.
type auditStatusResponse struct {
	Audit   runtime.AuditStats `json:"audit"`
	Reports []quality.Report   `json:"reports"`
}

func (s *Server) handleAuditStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, auditStatusResponse{
		Audit:   s.rt.Auditor().Stats(),
		Reports: s.rt.Quality().Reports(),
	})
}

// auditRunResponse is the POST /v1/audit body: the verdicts of one
// on-demand audit sweep over every registered warm entry, sorted by
// key, plus the updated counters.
type auditRunResponse struct {
	Events []obs.AuditEvent   `json:"events"`
	Audit  runtime.AuditStats `json:"audit"`
}

func (s *Server) handleAuditRun(w http.ResponseWriter, r *http.Request) {
	events, err := s.rt.Auditor().RunOnce(r.Context())
	if err != nil {
		s.writeError(w, "audit", http.StatusInternalServerError, err)
		return
	}
	if events == nil {
		events = []obs.AuditEvent{}
	}
	writeJSON(w, http.StatusOK, auditRunResponse{
		Events: events,
		Audit:  s.rt.Auditor().Stats(),
	})
}

// --- GET /metrics, /healthz ---------------------------------------------

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.WriteTo(w, map[string]float64{
		"cdbserve_databases":          float64(s.rt.Registry().Len()),
		"cdbserve_sampler_cache_size": float64(s.rt.Cache().Len()),
		"cdbserve_pool_workers":       float64(s.rt.Pool().Size()),
		"cdbserve_audit_flagged":      float64(len(s.rt.Quality().Flagged())),
	})
	s.writeClusterMetrics(w)
}

// healthzResponse keeps "status" as its first field: legacy clients
// decode the body into map[string]string and stop at the first
// non-string value, so the one field they understand must come first.
type healthzResponse struct {
	Status  string         `json:"status"` // "ok", "draining" or "degraded"
	Ready   bool           `json:"ready"`
	Cluster *clusterStatus `json:"cluster,omitempty"`
}

// handleHealthz is both liveness and readiness: 200 while the node
// accepts work; 503 with ready=false while draining (SIGTERM received)
// or degraded (every peer breaker open — the node is partitioned from
// the whole cluster and serves everything from local compute). The
// ring membership is static, so "membership settled" holds from the
// moment the process is up.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := healthzResponse{Status: "ok", Ready: true}
	if s.cfg.Cluster.Enabled() {
		cs := s.clusterStatusNow()
		resp.Cluster = &cs
	}
	switch {
	case s.draining.Load():
		resp.Status, resp.Ready = "draining", false
	case s.cfg.Cluster.Enabled() && s.health.AllOpen():
		resp.Status, resp.Ready = "degraded", false
	}
	if !resp.Ready {
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
