package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTraceHeaderAndSpans: every instrumented request carries an
// X-Trace-Id header and echoes it in the response; "trace": true adds
// the span tree with the pipeline stages underneath the endpoint root.
func TestTraceHeaderAndSpans(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := register(t, ts.URL, "obs", testProgram)

	resp, body := postJSON(t, ts.URL+"/v1/sample", sampleRequest{
		Database: id, Relation: "S", N: 8, Seed: 7, Trace: true, Options: fastOpts,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sample: status %d, body %s", resp.StatusCode, body)
	}
	header := resp.Header.Get("X-Trace-Id")
	if header == "" {
		t.Fatal("no X-Trace-Id header")
	}
	var out sampleResponse
	mustDecode(t, body, &out)
	if out.TraceID != header {
		t.Fatalf("trace id mismatch: body %q, header %q", out.TraceID, header)
	}
	if out.Spans == nil {
		t.Fatal("trace requested but no spans in response")
	}
	if out.Spans.Name != "sample" {
		t.Fatalf("root span = %q, want sample", out.Spans.Name)
	}
	if !spanTreeHas(out.Spans, "sample.batch") {
		t.Fatalf("span tree missing sample.batch: %+v", out.Spans)
	}

	// Without the flag the id still appears but the tree is omitted.
	resp, body = postJSON(t, ts.URL+"/v1/sample", sampleRequest{
		Database: id, Relation: "S", N: 8, Seed: 7, Options: fastOpts,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sample: status %d, body %s", resp.StatusCode, body)
	}
	var out2 sampleResponse
	mustDecode(t, body, &out2)
	if out2.TraceID == "" || out2.Spans != nil {
		t.Fatalf("untraced response: trace_id=%q spans=%v", out2.TraceID, out2.Spans)
	}
	if out2.TraceID == header {
		t.Fatal("two requests share one trace id")
	}
}

func spanTreeHas(s *spanJSON, name string) bool {
	if s == nil {
		return false
	}
	if s.Name == name {
		return true
	}
	for i := range s.Children {
		if spanTreeHas(&s.Children[i], name) {
			return true
		}
	}
	return false
}

func mustDecode(t *testing.T, body []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(body, v); err != nil {
		t.Fatalf("decode %s: %v", body, err)
	}
}

// TestMetricsCacheEventsAndStages: /metrics exposes the per-kind cache
// event counters and the per-stage duration histograms after traffic.
func TestMetricsCacheEventsAndStages(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := register(t, ts.URL, "obs", testProgram)

	for i := 0; i < 2; i++ { // one cold miss, one warm hit
		resp, body := postJSON(t, ts.URL+"/v1/sample", sampleRequest{
			Database: id, Relation: "S", N: 4, Seed: 3, Options: fastOpts,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sample %d: status %d, body %s", i, resp.StatusCode, body)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		`cdbserve_cache_events_total{kind="plan",outcome="miss"} 1`,
		`cdbserve_cache_events_total{kind="plan",outcome="hit"} 1`,
		`cdbserve_stage_duration_seconds_bucket{stage="sample.batch",le="+Inf"}`,
		`cdbserve_stage_duration_seconds_count{stage="sample.batch"} 2`,
		`cdbserve_stage_duration_seconds_sum{stage="sample.batch"}`,
		"cdbserve_sampler_cache_hits_total 1",
		"cdbserve_sampler_cache_misses_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, text)
		}
	}
}

// TestDebugHandler: the operator-only mux serves pprof, expvar and the
// observed cost table.
func TestDebugHandler(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	id := register(t, ts.URL, "obs", testProgram)
	if resp, body := postJSON(t, ts.URL+"/v1/sample", sampleRequest{
		Database: id, Relation: "S", N: 4, Seed: 3, Options: fastOpts,
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("sample: status %d, body %s", resp.StatusCode, body)
	}

	debug := httptest.NewServer(s.DebugHandler())
	defer debug.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/vars", "/debug/costs"} {
		resp, err := http.Get(debug.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if path == "/debug/costs" && !strings.Contains(string(body), `"key"`) {
			t.Fatalf("cost dump has no entries:\n%s", body)
		}
	}
}

// TestSlowQueryLog: requests over the threshold land in the configured
// logger with their endpoint, duration and trace id.
func TestSlowQueryLog(t *testing.T) {
	var buf syncBuffer
	_, ts := newTestServer(t, Config{
		SlowQuery: time.Nanosecond, // everything is slow
		Logger:    log.New(&buf, "", 0),
	})
	id := register(t, ts.URL, "obs", testProgram)
	resp, body := postJSON(t, ts.URL+"/v1/sample", sampleRequest{
		Database: id, Relation: "S", N: 4, Seed: 3, Options: fastOpts,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sample: status %d, body %s", resp.StatusCode, body)
	}
	trace := resp.Header.Get("X-Trace-Id")
	logged := buf.String()
	if !strings.Contains(logged, "slow query: endpoint=sample") {
		t.Fatalf("no slow-query line for the sample endpoint:\n%s", logged)
	}
	if !strings.Contains(logged, "trace="+trace) {
		t.Fatalf("slow-query line missing trace id %s:\n%s", trace, logged)
	}
	if !strings.Contains(logged, "sample.batch") {
		t.Fatalf("slow-query line missing span summary:\n%s", logged)
	}
}

// syncBuffer is a bytes.Buffer safe for the logger's goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
