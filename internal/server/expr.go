package server

// POST /v1/expr: the relational-algebra endpoint. Clients send a small
// JSON expression tree (rel / where / intersect / union / minus /
// project / timeslice) instead of a named query; the server compiles it
// to the same canonical plan cdb.Expr produces, so structurally equal
// expressions — whichever surface built them, in whatever operand order
// — share one prepared-sampler cache entry. Provably empty expressions
// replay as O(1) cached verdicts (volume 0).

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	cdb "repro"
	"repro/internal/constraint"
	"repro/internal/query"
	"repro/internal/runtime"
)

// maxExprNodes bounds the operator count of one expression tree.
const maxExprNodes = 256

// exprNodeJSON is the wire form of one algebra operator.
type exprNodeJSON struct {
	// Op is one of "rel", "where", "intersect", "union", "minus",
	// "project", "timeslice", "div".
	Op string `json:"op"`
	// Name is the relation or query name of a "rel" leaf.
	Name string `json:"name,omitempty"`
	// Args are the operand subtrees: one for where/project/timeslice,
	// two for intersect/union/minus.
	Args []*exprNodeJSON `json:"args,omitempty"`
	// Atoms are "where" selections over the child's columns, in order.
	Atoms []exprAtomJSON `json:"atoms,omitempty"`
	// Vars are the "project" columns to keep, in order.
	Vars []string `json:"vars,omitempty"`
	// T is the "timeslice" probe time.
	T float64 `json:"t,omitempty"`
}

// exprAtomJSON is the wire form of a linear constraint coef·x <= b
// (< b when strict).
type exprAtomJSON struct {
	Coef   []float64 `json:"coef"`
	B      float64   `json:"b"`
	Strict bool      `json:"strict,omitempty"`
}

// opPathError locates an expression error at one operator of the wire
// tree. The path is dotted from the root: "expr", "expr.args[1]",
// "expr.args[0].args[1]". writeError renders it as {error, op_path}.
type opPathError struct {
	path string
	err  error
}

func (e *opPathError) Error() string { return fmt.Sprintf("%s (at %s)", e.err, e.path) }
func (e *opPathError) Unwrap() error { return e.err }

// toNode lowers the wire tree onto the algebra IR, charging each
// operator against the node budget. Errors are opPathError values
// positioned at the operator that produced them.
func (n *exprNodeJSON) toNode(budget *int, path string) (*query.Node, error) {
	fail := func(format string, args ...any) error {
		return &opPathError{path: path, err: fmt.Errorf(format, args...)}
	}
	if n == nil {
		return nil, fail("missing expr node")
	}
	*budget--
	if *budget < 0 {
		return nil, fail("expression exceeds %d operators", maxExprNodes)
	}
	one := func() (*query.Node, error) {
		if len(n.Args) != 1 {
			return nil, fail("op %q wants 1 operand, got %d", n.Op, len(n.Args))
		}
		return n.Args[0].toNode(budget, path+".args[0]")
	}
	two := func() (l, r *query.Node, err error) {
		if len(n.Args) != 2 {
			return nil, nil, fail("op %q wants 2 operands, got %d", n.Op, len(n.Args))
		}
		if l, err = n.Args[0].toNode(budget, path+".args[0]"); err != nil {
			return nil, nil, err
		}
		r, err = n.Args[1].toNode(budget, path+".args[1]")
		return l, r, err
	}
	switch n.Op {
	case "rel":
		if n.Name == "" {
			return nil, fail(`op "rel" wants a name`)
		}
		return query.NewRel(n.Name), nil
	case "where":
		child, err := one()
		if err != nil {
			return nil, err
		}
		atoms := make([]constraint.Atom, len(n.Atoms))
		for i, a := range n.Atoms {
			if len(a.Coef) == 0 {
				return nil, fail("where atom %d has no coefficients", i)
			}
			atoms[i] = constraint.NewAtom(a.Coef, a.B, a.Strict)
		}
		return child.Where(atoms...), nil
	case "intersect", "union", "minus", "div":
		l, r, err := two()
		if err != nil {
			return nil, err
		}
		switch n.Op {
		case "intersect":
			return l.Intersect(r), nil
		case "union":
			return l.Union(r), nil
		case "div":
			return l.Div(r), nil
		default:
			return l.Minus(r), nil
		}
	case "project":
		child, err := one()
		if err != nil {
			return nil, err
		}
		if len(n.Vars) == 0 {
			return nil, fail(`op "project" wants vars`)
		}
		return child.Project(n.Vars...), nil
	case "timeslice":
		child, err := one()
		if err != nil {
			return nil, err
		}
		return child.TimeSlice(n.T), nil
	default:
		return nil, fail("unknown op %q (want rel, where, intersect, union, minus, div, project or timeslice)", n.Op)
	}
}

// failingPath locates the deepest subtree that fails structural
// compilation on its own, so post-decode errors (unknown relation,
// column-arity mismatch at a set operation) still come back with an
// op_path. Children are probed first: when every child checks out the
// failure belongs to the combining operator itself. Returns "" when no
// subtree fails in isolation — e.g. a mode restriction like sampling a
// full first-order tree, which is not located at any one operator.
func (n *exprNodeJSON) failingPath(db *constraint.Database, path string) string {
	if n == nil {
		return ""
	}
	for i, a := range n.Args {
		if p := a.failingPath(db, fmt.Sprintf("%s.args[%d]", path, i)); p != "" {
			return p
		}
	}
	budget := maxExprNodes
	node, err := n.toNode(&budget, path)
	if err != nil {
		return path
	}
	if _, err := node.Columns(db); err != nil {
		return path
	}
	return ""
}

// exprCompileError reports a compile failure, decorated with the
// op_path of the deepest independently-failing subtree when there is
// one.
func (s *Server) exprCompileError(w http.ResponseWriter, endpoint string, root *exprNodeJSON, db *constraint.Database, err error) {
	status := http.StatusBadRequest
	if errors.Is(err, query.ErrUnknownTarget) {
		status = http.StatusNotFound
	}
	if p := root.failingPath(db, "expr"); p != "" {
		err = &opPathError{path: p, err: err}
	}
	s.writeError(w, endpoint, status, err)
}

// --- POST /v1/expr --------------------------------------------------------

type exprRequest struct {
	Database string        `json:"database"`
	Expr     *exprNodeJSON `json:"expr"`
	// Mode selects the evaluation: "volume" (default), "sample",
	// "explain" or "symbolic" (full first-order quantifier elimination
	// — the only mode accepting "div" and minus-of-projection trees).
	Mode    string       `json:"mode,omitempty"`
	N       int          `json:"n,omitempty"`       // samples for mode=sample (default 1)
	Workers int          `json:"workers,omitempty"` // default Config.DefaultWorkers
	Seed    uint64       `json:"seed"`
	Options *OptionsJSON `json:"options,omitempty"`
	// Trace includes the request's span tree in the response.
	Trace bool `json:"trace,omitempty"`
}

type exprDisjunctJSON struct {
	Kind         string `json:"kind"` // "convex" or "projection"
	Dim          int    `json:"dim"`
	Constraints  int    `json:"constraints"`
	ExVars       int    `json:"ex_vars,omitempty"`
	CanonicalKey string `json:"canonical_key"`
	Cache        string `json:"cache"`
}

type exprResponse struct {
	Database     string             `json:"database"`
	Mode         string             `json:"mode"`
	Columns      []string           `json:"columns"`
	CanonicalKey string             `json:"canonical_key"`
	Cache        string             `json:"cache"` // hit | miss | negative
	Empty        bool               `json:"empty,omitempty"`
	Volume       *float64           `json:"volume,omitempty"`
	Points       []cdb.Vector       `json:"points,omitempty"`
	Plan         string             `json:"plan,omitempty"`
	Disjuncts    []exprDisjunctJSON `json:"disjuncts,omitempty"`
	Coalesced    bool               `json:"coalesced,omitempty"`
	// Source and Tuples are set by mode=symbolic: the eliminated
	// quantifier-free DNF as a parseable `rel` declaration and its
	// tuple count; Volume then carries the EXACT inclusion–exclusion
	// volume (omitted when the relation is too large or unbounded).
	Source    string    `json:"source,omitempty"`
	Tuples    int       `json:"tuples,omitempty"`
	ElapsedMS float64   `json:"elapsed_ms"`
	TraceID   string    `json:"trace_id,omitempty"`
	Spans     *spanJSON `json:"spans,omitempty"`
}

func (s *Server) handleExpr(w http.ResponseWriter, r *http.Request) {
	var req exprRequest
	if !decodeBody(w, r, 1<<18, &req) {
		s.metrics.IncError("expr")
		return
	}
	entry, ok := s.rt.Registry().Get(req.Database)
	if !ok {
		s.writeError(w, "expr", http.StatusNotFound, fmt.Errorf("database %q not registered", req.Database))
		return
	}
	opts, err := req.Options.toOptions()
	if err != nil {
		s.writeError(w, "expr", http.StatusBadRequest, err)
		return
	}
	budget := maxExprNodes
	node, err := req.Expr.toNode(&budget, "expr")
	if err != nil {
		s.writeError(w, "expr", http.StatusBadRequest, err)
		return
	}
	mode := req.Mode
	if mode == "" {
		mode = "volume"
	}
	start := time.Now()
	resp := exprResponse{Database: entry.ID, Mode: mode, TraceID: traceID(r.Context())}

	if mode == "symbolic" {
		sq, err := node.CompileSymbolic(entry.DB)
		if err != nil {
			s.exprCompileError(w, "expr", req.Expr, entry.DB, err)
			return
		}
		if !s.execSymbolic(w, r, "expr", entry, sq, &resp) {
			return
		}
	} else {
		plan, err := node.Compile(entry.DB)
		if err != nil {
			s.exprCompileError(w, "expr", req.Expr, entry.DB, err)
			return
		}
		cp := query.Canonicalize(plan)
		resp.Columns = cp.Plan.OutVars
		resp.CanonicalKey = cp.Key
		resp.Empty = cp.Empty()
		x := planExec{mode: mode, n: req.N, workers: req.Workers, seed: req.Seed}
		if !s.execPlanMode(w, r, "expr", entry, cp, opts, x, &resp) {
			return
		}
	}
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	resp.Spans = traceSpans(r.Context(), req.Trace)
	writeJSON(w, http.StatusOK, resp)
}

// planExec carries the execution parameters of one volume/sample/explain
// evaluation — the surfaces (/v1/expr JSON body, /v1/sql statement)
// derive them differently but execute identically.
type planExec struct {
	mode    string
	n       int
	workers int
	seed    uint64
}

// execPlanMode evaluates a canonical plan in mode volume, sample or
// explain and fills resp — the shared execution core of /v1/expr and
// /v1/sql, so both surfaces hit the same prepared-plan cache entries
// and report the same cache labels. Returns false after writing an
// error response.
func (s *Server) execPlanMode(w http.ResponseWriter, r *http.Request, endpoint string, entry *DatabaseEntry, cp *query.CanonicalPlan, opts cdb.Options, x planExec, resp *exprResponse) bool {
	if x.mode == "explain" {
		key := runtime.PlanKey(entry.ID, cp.Key, opts.CacheKey())
		resp.Cache = peekLabel(s.rt, key)
		resp.Plan = cp.Plan.Describe()
		dkeys := cp.DisjunctKeys()
		for i, d := range cp.Plan.Disjuncts {
			kind := "convex"
			if d.ExVars > 0 {
				kind = "projection"
			}
			resp.Disjuncts = append(resp.Disjuncts, exprDisjunctJSON{
				Kind:         kind,
				Dim:          d.Poly.Dim(),
				Constraints:  d.Poly.Rows(),
				ExVars:       d.ExVars,
				CanonicalKey: dkeys[i],
				Cache:        peekLabel(s.rt, runtime.PlanKey(entry.ID, dkeys[i], opts.CacheKey())),
			})
		}
		return true
	}

	ps, key, hit, err := s.rt.PreparedPlan(entry, cp, opts)
	resp.Cache = cacheLabel(hit)
	if hit && runtime.IsNegative(err) {
		// A replayed cached verdict (empty or projection-needing plan):
		// distinguish it from warm prepared geometry.
		resp.Cache = "negative"
	}
	switch x.mode {
	case "volume":
		switch {
		case errors.Is(err, runtime.ErrEmptyExpr):
			// The empty set has volume 0; replays serve the cached verdict.
			zero := 0.0
			resp.Volume = &zero
		case errors.Is(err, runtime.ErrNeedsProjection):
			eng := cdb.NewEngine(entry.DB.Schema, ctxOptions(r.Context(), opts), x.seed)
			v, verr := eng.EstimateVolumeFromPlan(cp.Plan)
			if verr != nil {
				s.writeError(w, endpoint, http.StatusInternalServerError, verr)
				return false
			}
			resp.Volume = &v
		case err != nil:
			s.writeError(w, endpoint, http.StatusUnprocessableEntity, err)
			return false
		default:
			v, verr := ps.VolumeCtx(r.Context(), runtime.PrepSeedFor(key+"\x1fvolume"))
			if verr != nil {
				s.writeError(w, endpoint, http.StatusInternalServerError, verr)
				return false
			}
			resp.Volume = &v
		}
	case "sample":
		n := x.n
		if n <= 0 {
			n = 1
		}
		if n > s.cfg.MaxSamples {
			s.writeError(w, endpoint, http.StatusBadRequest,
				fmt.Errorf("n=%d exceeds the per-request cap %d", n, s.cfg.MaxSamples))
			return false
		}
		switch {
		case errors.Is(err, runtime.ErrNeedsProjection):
			eng := cdb.NewEngine(entry.DB.Schema, ctxOptions(r.Context(), opts), x.seed)
			obs, oerr := eng.ObservableFromPlan(cp.Plan)
			if oerr != nil {
				s.writeError(w, endpoint, http.StatusInternalServerError, oerr)
				return false
			}
			pts := make([]cdb.Vector, 0, n)
			for i := 0; i < n; i++ {
				pt, serr := obs.Sample()
				if serr != nil {
					s.writeError(w, endpoint, http.StatusInternalServerError, serr)
					return false
				}
				pts = append(pts, pt)
			}
			resp.Points = pts
		case err != nil:
			s.writeError(w, endpoint, http.StatusUnprocessableEntity, err)
			return false
		default:
			workers := x.workers
			if workers <= 0 {
				workers = s.cfg.DefaultWorkers
			}
			pts, coalesced, serr := s.rt.Executor().SampleManyCtx(r.Context(), key, ps, n, workers, x.seed)
			if serr != nil {
				s.writeError(w, endpoint, http.StatusInternalServerError, serr)
				return false
			}
			resp.Points, resp.Coalesced = pts, coalesced
		}
		s.metrics.SamplesServed.Add(int64(len(resp.Points)))
	default:
		s.writeError(w, endpoint, http.StatusBadRequest,
			fmt.Errorf("unknown mode %q (want volume, sample, explain or symbolic)", x.mode))
		return false
	}
	return true
}

// execSymbolic evaluates a compiled symbolic query through the
// prepared-symbolic cache and fills resp: the eliminated DNF as a
// parseable Source() declaration, its tuple count and, when the
// inclusion–exclusion pass is feasible, the exact volume. Options are
// irrelevant — symbolic evaluation is exact, so every configuration
// shares one cache entry per canonical plan. Returns false after
// writing an error response.
func (s *Server) execSymbolic(w http.ResponseWriter, r *http.Request, endpoint string, entry *DatabaseEntry, sq *query.SymbolicQuery, resp *exprResponse) bool {
	se, _, hit, err := s.rt.Symbolic(r.Context(), entry, sq)
	resp.Columns = sq.OutVars
	resp.CanonicalKey = sq.Key
	resp.Cache = cacheLabel(hit)
	var rel *constraint.Relation
	switch {
	case errors.Is(err, runtime.ErrEmptyExpr):
		if hit {
			resp.Cache = "negative"
		}
		resp.Empty = true
		zero := 0.0
		resp.Volume = &zero
		rel = &constraint.Relation{Name: "derived", Vars: sq.OutVars}
	case err != nil:
		s.writeError(w, endpoint, http.StatusUnprocessableEntity, err)
		return false
	default:
		rel = se.Rel
		// The exact inclusion–exclusion pass is exponential in tuple
		// count; it is computed once per cache entry and replayed here —
		// warm requests must not re-pay it. Omitted when infeasible
		// (too many tuples, unbounded).
		if v, verr := se.ExactVolume(r.Context()); verr == nil {
			resp.Volume = &v
		}
	}
	resp.Source = rel.Source()
	resp.Tuples = len(rel.Tuples)
	return true
}

// peekLabel reports prepared-plan cache residency without touching LRU
// order or metrics.
func peekLabel(rt *runtime.Runtime, key string) string {
	return residencyLabel(rt.Cache().Peek(key))
}

// residencyLabel renders a cache Peek result as the wire label.
func residencyLabel(cached, negative bool) string {
	switch {
	case !cached:
		return "miss"
	case negative:
		return "negative"
	default:
		return "hit"
	}
}
