package server

import (
	"testing"

	cdb "repro"
)

// The benchmarks quantify the prepared-sampler cache win: the naive
// serving strategy pays the full rounding + volume setup on every
// request, the cached strategy pays it once and binds seeds to the warm
// geometry. BENCH_cdbserve.json records the measured ratio.

func benchRelation() *cdb.Relation {
	return cdb.MustRelation("H", []string{"a", "b", "c", "d"},
		cdb.Cube(4, 0, 1),
		cdb.Box(cdb.Vector{1, 0, 0, 0}, cdb.Vector{2, 1, 1, 1}),
	)
}

const benchSamplesPerRequest = 16

// BenchmarkNaivePerRequestSampler is the baseline: every request builds
// its own sampler from scratch, exactly what cdb.NewSampler does.
func BenchmarkNaivePerRequestSampler(b *testing.B) {
	rel := benchRelation()
	for i := 0; i < b.N; i++ {
		obs, err := cdb.NewSampler(rel, uint64(i+1), cdb.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < benchSamplesPerRequest; j++ {
			if _, err := obs.Sample(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkWarmCachedSampler is the server's warm path: bind a request
// seed to the shared prepared geometry and draw.
func BenchmarkWarmCachedSampler(b *testing.B) {
	rel := benchRelation()
	ps, err := cdb.PrepareSampler(rel, 1, cdb.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obs, err := ps.NewObservable(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < benchSamplesPerRequest; j++ {
			if _, err := obs.Sample(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkBatchExecutorSampleMany measures the full server-side batched
// draw: prepared sampler + worker pool, 1024 points per request.
func BenchmarkBatchExecutorSampleMany(b *testing.B) {
	rel := benchRelation()
	ps, err := cdb.PrepareSampler(rel, 1, cdb.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	m := NewMetrics()
	pool := NewPool(4, m)
	defer pool.Close()
	exec := NewExecutor(pool, m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, _, err := exec.SampleMany("bench", ps, 1024, 4, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != 1024 {
			b.Fatalf("got %d points", len(pts))
		}
	}
}

// benchSingleTupleRelation is a single-tuple target, where the
// preparation-time volume estimate is already the whole answer.
func benchSingleTupleRelation() *cdb.Relation {
	return cdb.MustRelation("S", []string{"a", "b", "c", "d"}, cdb.Simplex(4, 1))
}

// BenchmarkPreparedVolumeRebind is the historical /v1/volume warm path:
// every request bound a full observable (walker initialisation included)
// just to read back the preparation-time estimate of a single-tuple
// relation.
func BenchmarkPreparedVolumeRebind(b *testing.B) {
	ps, err := cdb.PrepareSampler(benchSingleTupleRelation(), 1, cdb.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obs, err := ps.NewObservable(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := obs.Volume(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPreparedVolumeFastPath is the current warm path:
// PreparedSampler.Volume surfaces the preparation-time estimate
// directly for single-tuple relations — no observable, no walker.
func BenchmarkPreparedVolumeFastPath(b *testing.B) {
	ps, err := cdb.PrepareSampler(benchSingleTupleRelation(), 1, cdb.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ps.Volume(uint64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}
