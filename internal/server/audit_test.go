package server

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// warmAuditable samples relation B (a two-disjoint-box union inside the
// exact-oracle fragment) so its prepared sampler is cached and
// registered with the auditor.
func warmAuditable(t *testing.T, baseURL, id string) {
	t.Helper()
	resp, body := postJSON(t, baseURL+"/v1/sample", sampleRequest{
		Database: id, Relation: "B", N: 64, Seed: 11, Options: fastOpts,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm sample: status %d, body %s", resp.StatusCode, body)
	}
}

// TestAuditEndpoints: POST /v1/audit runs one sweep and returns its
// verdicts, GET /v1/audit reports the accumulated status and quality
// reports, and both feed the Prometheus audit metrics.
func TestAuditEndpoints(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	id := register(t, ts.URL, "audit", testProgram)
	warmAuditable(t, ts.URL, id)

	resp, err := http.Post(ts.URL+"/v1/audit", "application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/audit: status %d, body %s", resp.StatusCode, body)
	}
	var run auditRunResponse
	mustDecode(t, body, &run)
	if len(run.Events) == 0 {
		t.Fatalf("audit sweep produced no events: %s", body)
	}
	checks := map[string]bool{}
	for _, ev := range run.Events {
		checks[ev.Check] = true
		if ev.Outcome == obs.AuditFail {
			t.Errorf("healthy sampler failed audit: %+v", ev)
		}
		if ev.Samples == 0 || ev.Key == "" {
			t.Errorf("event missing provenance: %+v", ev)
		}
	}
	if !checks["cells"] || !checks["shares"] {
		t.Fatalf("sweep should cover cells and shares, got %v", checks)
	}
	if run.Audit.Rounds == 0 || run.Audit.Passes == 0 {
		t.Fatalf("sweep not accounted in stats: %+v", run.Audit)
	}

	resp, err = http.Get(ts.URL + "/v1/audit")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/audit: status %d, body %s", resp.StatusCode, body)
	}
	var status auditStatusResponse
	mustDecode(t, body, &status)
	if status.Audit.Entries == 0 {
		t.Fatalf("no registered auditable entries: %+v", status.Audit)
	}
	if len(status.Audit.Flagged) != 0 {
		t.Fatalf("healthy sampler quarantined: %v", status.Audit.Flagged)
	}
	if len(status.Reports) == 0 {
		t.Fatal("no quality reports after an audited sweep")
	}
	rep := status.Reports[0]
	if !rep.Audited || rep.AuditOutcome != "pass" || rep.ExactVolume < 1.99 || rep.ExactVolume > 2.01 {
		t.Fatalf("report not audited against the exact oracle: %+v", rep)
	}

	// The metrics sink saw every verdict.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		`cdbserve_audit_total{check="cells",outcome="pass"}`,
		`cdbserve_audit_total{check="shares",outcome="pass"}`,
		"cdbserve_audit_flagged 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, text)
		}
	}
	_ = s
}

// TestAuditBackgroundLoopViaConfig: Config.AuditInterval starts the
// loop; Close stops it (the runtime waits for the sweep goroutines).
func TestAuditBackgroundLoopViaConfig(t *testing.T) {
	s, ts := newTestServer(t, Config{AuditInterval: time.Millisecond})
	id := register(t, ts.URL, "audit-bg", testProgram)
	warmAuditable(t, ts.URL, id)
	if !s.rt.Auditor().Stats().Enabled {
		t.Fatal("AuditInterval did not start the background auditor")
	}
	s.Close()
	if s.rt.Auditor().Stats().Enabled {
		t.Fatal("auditor still enabled after server Close")
	}
}

// TestDebugQualityEndpoint: the operator mux serves the audit status
// plus the per-key quality reports as indented JSON.
func TestDebugQualityEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	id := register(t, ts.URL, "quality", testProgram)
	warmAuditable(t, ts.URL, id)
	resp, err := http.Post(ts.URL+"/v1/audit", "application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	debug := httptest.NewServer(s.DebugHandler())
	defer debug.Close()
	get := func() string {
		t.Helper()
		resp, err := http.Get(debug.URL + "/debug/quality")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /debug/quality: status %d", resp.StatusCode)
		}
		return string(body)
	}
	text := get()
	for _, want := range []string{`"audit"`, `"reports"`, `"audit_outcome": "pass"`, `"exact_shares"`} {
		if !strings.Contains(text, want) {
			t.Fatalf("/debug/quality missing %q:\n%s", want, text)
		}
	}
	// Deterministic for a fixed workload: two reads agree byte for byte.
	if again := get(); again != text {
		t.Fatalf("/debug/quality not deterministic:\n--- first\n%s\n--- second\n%s", text, again)
	}
}

// TestDebugCostsDeterministic: the cost dump is sorted by key and
// byte-stable across reads of an unchanged runtime — operators can diff
// two snapshots.
func TestDebugCostsDeterministic(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	id := register(t, ts.URL, "costs", testProgram)
	// Touch several relations so the table has multiple keys.
	for _, rel := range []string{"S", "B", "S"} {
		resp, body := postJSON(t, ts.URL+"/v1/sample", sampleRequest{
			Database: id, Relation: rel, N: 8, Seed: 3, Options: fastOpts,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sample %s: status %d, body %s", rel, resp.StatusCode, body)
		}
	}

	debug := httptest.NewServer(s.DebugHandler())
	defer debug.Close()
	get := func() string {
		t.Helper()
		resp, err := http.Get(debug.URL + "/debug/costs")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return string(body)
	}
	first := get()
	if again := get(); again != first {
		t.Fatalf("/debug/costs not deterministic:\n--- first\n%s\n--- second\n%s", first, again)
	}
	// Keys appear in sorted order.
	var keys []string
	for _, line := range strings.Split(first, "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, `"key":`) {
			keys = append(keys, line)
		}
	}
	if len(keys) < 2 {
		t.Fatalf("expected multiple cost entries, got %d:\n%s", len(keys), first)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] > keys[i] {
			t.Fatalf("cost dump not sorted: %q before %q", keys[i-1], keys[i])
		}
	}
}
