package server

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// formatFloat renders a histogram bucket bound the way Prometheus
// clients do: shortest decimal round-trip representation.
func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// Metrics collects the server's operational counters and renders them in
// the Prometheus text exposition format (no client library dependency —
// the format is four lines of fmt per family).
type Metrics struct {
	start time.Time

	mu          sync.Mutex
	requests    map[string]*atomic.Int64 // per-endpoint request counts
	errors      map[string]*atomic.Int64 // per-endpoint error counts
	latencies   map[string]*latencySummary
	cacheEvents map[string]*atomic.Int64  // per {kind,outcome} cache events
	auditEvents map[string]*atomic.Int64  // per {check,outcome} audit verdicts
	stages      map[string]*stageDuration // per-stage duration histograms
	routeEvents map[string]*atomic.Int64  // per {endpoint,decision} routing verdicts
	shedEvents  map[string]*atomic.Int64  // per {endpoint,reason} admission sheds

	CacheHits      atomic.Int64
	CacheMisses    atomic.Int64
	CacheEvictions atomic.Int64
	Coalesced      atomic.Int64 // sample requests served by another request's draw
	BatchJobs      atomic.Int64 // worker-pool jobs executed
	SamplesServed  atomic.Int64 // points returned across all sample responses
}

// stageBuckets are the histogram upper bounds (seconds) of
// cdbserve_stage_duration_seconds: sub-millisecond warm stages up to
// multi-second cold preparations and eliminations.
var stageBuckets = []float64{0.0001, 0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10}

// numStageBuckets must equal len(stageBuckets); the init check below
// keeps them in sync.
const numStageBuckets = 8

func init() {
	if len(stageBuckets) != numStageBuckets {
		panic("server: stageBuckets size drifted from numStageBuckets")
	}
}

// stageDuration is one Prometheus histogram: cumulative bucket counts,
// total count and sum of observations.
type stageDuration struct {
	buckets [numStageBuckets]atomic.Int64
	count   atomic.Int64
	sumNano atomic.Int64 // seconds are accumulated as integer nanoseconds
}

func (h *stageDuration) observe(seconds float64) {
	for i, ub := range stageBuckets {
		if seconds <= ub {
			h.buckets[i].Add(1)
		}
	}
	h.count.Add(1)
	h.sumNano.Add(int64(seconds * 1e9))
}

// latencySummary accumulates a Prometheus summary without quantiles:
// observation count, total seconds and the worst observation.
type latencySummary struct {
	count int64
	sum   float64
	max   float64
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{
		start:       time.Now(),
		requests:    map[string]*atomic.Int64{},
		errors:      map[string]*atomic.Int64{},
		latencies:   map[string]*latencySummary{},
		cacheEvents: map[string]*atomic.Int64{},
		auditEvents: map[string]*atomic.Int64{},
		stages:      map[string]*stageDuration{},
		routeEvents: map[string]*atomic.Int64{},
		shedEvents:  map[string]*atomic.Int64{},
	}
}

func (m *Metrics) counter(set map[string]*atomic.Int64, key string) *atomic.Int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := set[key]
	if !ok {
		c = &atomic.Int64{}
		set[key] = c
	}
	return c
}

// The obs.Sink implementation: the shared runtime reports cache and
// pool events through these, keeping the counters (and their
// Prometheus rendering) where the HTTP layer owns them.

// CacheEvent records one cache lookup outcome, both per {kind,outcome}
// (cdbserve_cache_events_total) and in the legacy aggregate scalars —
// negative hits count as hits there, matching DB.CacheStats.
func (m *Metrics) CacheEvent(kind obs.CacheKind, outcome obs.CacheOutcome) {
	m.counter(m.cacheEvents, kind.String()+"|"+outcome.String()).Add(1)
	switch outcome {
	case obs.Hit, obs.NegativeHit:
		m.CacheHits.Add(1)
	case obs.Miss:
		m.CacheMisses.Add(1)
	case obs.Eviction:
		m.CacheEvictions.Add(1)
	}
}

// CoalescedDraw records a batched draw served by an identical in-flight
// draw.
func (m *Metrics) CoalescedDraw() { m.Coalesced.Add(1) }

// BatchJob records one worker-pool job execution.
func (m *Metrics) BatchJob() { m.BatchJobs.Add(1) }

// AuditEvent records one background self-audit verdict per
// {check, outcome} (cdbserve_audit_total) — the Prometheus face of the
// quality auditor.
func (m *Metrics) AuditEvent(ev obs.AuditEvent) {
	m.counter(m.auditEvents, ev.Check+"|"+ev.Outcome.String()).Add(1)
}

var (
	_ obs.Sink      = (*Metrics)(nil)
	_ obs.AuditSink = (*Metrics)(nil)
)

// ObserveStage records one pipeline stage duration (seconds) in the
// cdbserve_stage_duration_seconds histogram under the stage label.
func (m *Metrics) ObserveStage(stage string, seconds float64) {
	m.mu.Lock()
	h, ok := m.stages[stage]
	if !ok {
		h = &stageDuration{}
		m.stages[stage] = h
	}
	m.mu.Unlock()
	h.observe(seconds)
}

// stageSnapshot copies the stage histogram pointers under the lock;
// the histograms themselves are atomic and safe to read after.
func (m *Metrics) stageSnapshot() map[string]*stageDuration {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]*stageDuration, len(m.stages))
	for k, h := range m.stages {
		out[k] = h
	}
	return out
}

// IncRoute counts one cluster routing verdict per {endpoint, decision}:
// "local" (this node owns the key or no key was extractable), "forward"
// (proxied to the owner), "fallback_breaker" / "fallback_error" (owner
// unreachable, computed locally) or "hop_limit" (forwarding chain cut).
func (m *Metrics) IncRoute(endpoint, decision string) {
	m.counter(m.routeEvents, endpoint+"|"+decision).Add(1)
}

// IncShed counts one request shed by admission control per
// {endpoint, reason}: "capacity" (in-flight budget) or "quota"
// (tenant token bucket).
func (m *Metrics) IncShed(endpoint, reason string) {
	m.counter(m.shedEvents, endpoint+"|"+reason).Add(1)
}

// IncRequest counts one request to the named endpoint.
func (m *Metrics) IncRequest(endpoint string) { m.counter(m.requests, endpoint).Add(1) }

// IncError counts one failed request to the named endpoint.
func (m *Metrics) IncError(endpoint string) { m.counter(m.errors, endpoint).Add(1) }

// ObserveLatency records one request's wall-clock duration in seconds
// under the endpoint label.
func (m *Metrics) ObserveLatency(endpoint string, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	l, ok := m.latencies[endpoint]
	if !ok {
		l = &latencySummary{}
		m.latencies[endpoint] = l
	}
	l.count++
	l.sum += seconds
	if seconds > l.max {
		l.max = seconds
	}
}

// latencySnapshot copies the latency summaries under the lock.
func (m *Metrics) latencySnapshot() map[string]latencySummary {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]latencySummary, len(m.latencies))
	for k, l := range m.latencies {
		out[k] = *l
	}
	return out
}

// snapshot copies a labelled counter family under the lock.
func (m *Metrics) snapshot(set map[string]*atomic.Int64) map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(set))
	for k, c := range set {
		out[k] = c.Load()
	}
	return out
}

// WriteTo renders the metrics in Prometheus text format. The extra
// gauges (cache size, database count) are supplied by the server, which
// owns those structures.
func (m *Metrics) WriteTo(w io.Writer, gauges map[string]float64) {
	writeFamily := func(name, help, typ string, vals map[string]int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		keys := make([]string, 0, len(vals))
		for k := range vals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "%s{endpoint=%q} %d\n", name, k, vals[k])
		}
	}
	writeFamily("cdbserve_requests_total", "Requests received per endpoint.", "counter", m.snapshot(m.requests))
	writeFamily("cdbserve_errors_total", "Failed requests per endpoint.", "counter", m.snapshot(m.errors))

	// Per-kind, per-outcome cache events: the map keys are "kind|outcome".
	events := m.snapshot(m.cacheEvents)
	ekeys := make([]string, 0, len(events))
	for k := range events {
		ekeys = append(ekeys, k)
	}
	sort.Strings(ekeys)
	fmt.Fprintf(w, "# HELP cdbserve_cache_events_total Cache lookup outcomes per cache kind.\n# TYPE cdbserve_cache_events_total counter\n")
	for _, k := range ekeys {
		kind, outcome, _ := strings.Cut(k, "|")
		fmt.Fprintf(w, "cdbserve_cache_events_total{kind=%q,outcome=%q} %d\n", kind, outcome, events[k])
	}

	// Per-check, per-outcome audit verdicts: the map keys are
	// "check|outcome".
	audits := m.snapshot(m.auditEvents)
	akeys := make([]string, 0, len(audits))
	for k := range audits {
		akeys = append(akeys, k)
	}
	sort.Strings(akeys)
	fmt.Fprintf(w, "# HELP cdbserve_audit_total Background self-audit verdicts per check.\n# TYPE cdbserve_audit_total counter\n")
	for _, k := range akeys {
		check, outcome, _ := strings.Cut(k, "|")
		fmt.Fprintf(w, "cdbserve_audit_total{check=%q,outcome=%q} %d\n", check, outcome, audits[k])
	}

	// Cluster routing verdicts and admission sheds; the families appear
	// once cluster mode (or admission control) produced an event, so
	// single-node exposition is unchanged.
	if routes := m.snapshot(m.routeEvents); len(routes) > 0 {
		rkeys := make([]string, 0, len(routes))
		for k := range routes {
			rkeys = append(rkeys, k)
		}
		sort.Strings(rkeys)
		fmt.Fprintf(w, "# HELP cdbserve_cluster_route_total Routing verdicts per endpoint (local, forward, fallback_*, hop_limit).\n# TYPE cdbserve_cluster_route_total counter\n")
		for _, k := range rkeys {
			endpoint, decision, _ := strings.Cut(k, "|")
			fmt.Fprintf(w, "cdbserve_cluster_route_total{endpoint=%q,decision=%q} %d\n", endpoint, decision, routes[k])
		}
	}
	if sheds := m.snapshot(m.shedEvents); len(sheds) > 0 {
		skeys := make([]string, 0, len(sheds))
		for k := range sheds {
			skeys = append(skeys, k)
		}
		sort.Strings(skeys)
		fmt.Fprintf(w, "# HELP cdbserve_cluster_shed_total Requests shed by admission control per endpoint (capacity, quota).\n# TYPE cdbserve_cluster_shed_total counter\n")
		for _, k := range skeys {
			endpoint, reason, _ := strings.Cut(k, "|")
			fmt.Fprintf(w, "cdbserve_cluster_shed_total{endpoint=%q,reason=%q} %d\n", endpoint, reason, sheds[k])
		}
	}

	// Per-stage pipeline durations, a Prometheus histogram per stage.
	stages := m.stageSnapshot()
	skeys := make([]string, 0, len(stages))
	for k := range stages {
		skeys = append(skeys, k)
	}
	sort.Strings(skeys)
	fmt.Fprintf(w, "# HELP cdbserve_stage_duration_seconds Pipeline stage durations (plan, prepare, sample, eliminate, ...).\n# TYPE cdbserve_stage_duration_seconds histogram\n")
	for _, k := range skeys {
		h := stages[k]
		for i, ub := range stageBuckets {
			fmt.Fprintf(w, "cdbserve_stage_duration_seconds_bucket{stage=%q,le=%q} %d\n", k, formatFloat(ub), h.buckets[i].Load())
		}
		fmt.Fprintf(w, "cdbserve_stage_duration_seconds_bucket{stage=%q,le=\"+Inf\"} %d\n", k, h.count.Load())
		fmt.Fprintf(w, "cdbserve_stage_duration_seconds_count{stage=%q} %d\n", k, h.count.Load())
		fmt.Fprintf(w, "cdbserve_stage_duration_seconds_sum{stage=%q} %g\n", k, float64(h.sumNano.Load())/1e9)
	}

	// Per-endpoint latency: a summary (count + sum, so rate(sum)/rate(count)
	// is the mean latency) plus a max gauge for outlier spotting.
	lat := m.latencySnapshot()
	keys := make([]string, 0, len(lat))
	for k := range lat {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(w, "# HELP cdbserve_request_duration_seconds Request latency per endpoint.\n# TYPE cdbserve_request_duration_seconds summary\n")
	for _, k := range keys {
		fmt.Fprintf(w, "cdbserve_request_duration_seconds_count{endpoint=%q} %d\n", k, lat[k].count)
		fmt.Fprintf(w, "cdbserve_request_duration_seconds_sum{endpoint=%q} %g\n", k, lat[k].sum)
	}
	fmt.Fprintf(w, "# HELP cdbserve_request_duration_seconds_max Worst observed request latency per endpoint.\n# TYPE cdbserve_request_duration_seconds_max gauge\n")
	for _, k := range keys {
		fmt.Fprintf(w, "cdbserve_request_duration_seconds_max{endpoint=%q} %g\n", k, lat[k].max)
	}

	scalar := func(name, help, typ string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", name, help, name, typ, name, v)
	}
	scalar("cdbserve_sampler_cache_hits_total", "Prepared-sampler cache hits.", "counter", float64(m.CacheHits.Load()))
	scalar("cdbserve_sampler_cache_misses_total", "Prepared-sampler cache misses (cold builds).", "counter", float64(m.CacheMisses.Load()))
	scalar("cdbserve_sampler_cache_evictions_total", "Prepared samplers evicted by the LRU.", "counter", float64(m.CacheEvictions.Load()))
	scalar("cdbserve_coalesced_requests_total", "Sample requests served by an identical in-flight draw.", "counter", float64(m.Coalesced.Load()))
	scalar("cdbserve_batch_jobs_total", "Jobs executed on the sampling worker pool.", "counter", float64(m.BatchJobs.Load()))
	scalar("cdbserve_samples_served_total", "Sample points returned across all responses.", "counter", float64(m.SamplesServed.Load()))
	scalar("cdbserve_uptime_seconds", "Seconds since the server started.", "gauge", time.Since(m.start).Seconds())

	names := make([]string, 0, len(gauges))
	for k := range gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		scalar(k, "See cdbserve documentation.", "gauge", gauges[k])
	}
}
