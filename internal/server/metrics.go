package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics collects the server's operational counters and renders them in
// the Prometheus text exposition format (no client library dependency —
// the format is four lines of fmt per family).
type Metrics struct {
	start time.Time

	mu        sync.Mutex
	requests  map[string]*atomic.Int64 // per-endpoint request counts
	errors    map[string]*atomic.Int64 // per-endpoint error counts
	latencies map[string]*latencySummary

	CacheHits      atomic.Int64
	CacheMisses    atomic.Int64
	CacheEvictions atomic.Int64
	Coalesced      atomic.Int64 // sample requests served by another request's draw
	BatchJobs      atomic.Int64 // worker-pool jobs executed
	SamplesServed  atomic.Int64 // points returned across all sample responses
}

// latencySummary accumulates a Prometheus summary without quantiles:
// observation count, total seconds and the worst observation.
type latencySummary struct {
	count int64
	sum   float64
	max   float64
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{
		start:     time.Now(),
		requests:  map[string]*atomic.Int64{},
		errors:    map[string]*atomic.Int64{},
		latencies: map[string]*latencySummary{},
	}
}

func (m *Metrics) counter(set map[string]*atomic.Int64, key string) *atomic.Int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := set[key]
	if !ok {
		c = &atomic.Int64{}
		set[key] = c
	}
	return c
}

// The runtime.Hooks implementation: the shared runtime reports cache
// and pool events through these, keeping the counters (and their
// Prometheus rendering) where the HTTP layer owns them.

// CacheHit records a prepared-sampler cache hit.
func (m *Metrics) CacheHit() { m.CacheHits.Add(1) }

// CacheMiss records a cold prepared-sampler build.
func (m *Metrics) CacheMiss() { m.CacheMisses.Add(1) }

// CacheEviction records an LRU eviction.
func (m *Metrics) CacheEviction() { m.CacheEvictions.Add(1) }

// CoalescedDraw records a batched draw served by an identical in-flight
// draw.
func (m *Metrics) CoalescedDraw() { m.Coalesced.Add(1) }

// BatchJob records one worker-pool job execution.
func (m *Metrics) BatchJob() { m.BatchJobs.Add(1) }

// IncRequest counts one request to the named endpoint.
func (m *Metrics) IncRequest(endpoint string) { m.counter(m.requests, endpoint).Add(1) }

// IncError counts one failed request to the named endpoint.
func (m *Metrics) IncError(endpoint string) { m.counter(m.errors, endpoint).Add(1) }

// ObserveLatency records one request's wall-clock duration in seconds
// under the endpoint label.
func (m *Metrics) ObserveLatency(endpoint string, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	l, ok := m.latencies[endpoint]
	if !ok {
		l = &latencySummary{}
		m.latencies[endpoint] = l
	}
	l.count++
	l.sum += seconds
	if seconds > l.max {
		l.max = seconds
	}
}

// latencySnapshot copies the latency summaries under the lock.
func (m *Metrics) latencySnapshot() map[string]latencySummary {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]latencySummary, len(m.latencies))
	for k, l := range m.latencies {
		out[k] = *l
	}
	return out
}

// snapshot copies a labelled counter family under the lock.
func (m *Metrics) snapshot(set map[string]*atomic.Int64) map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(set))
	for k, c := range set {
		out[k] = c.Load()
	}
	return out
}

// WriteTo renders the metrics in Prometheus text format. The extra
// gauges (cache size, database count) are supplied by the server, which
// owns those structures.
func (m *Metrics) WriteTo(w io.Writer, gauges map[string]float64) {
	writeFamily := func(name, help, typ string, vals map[string]int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		keys := make([]string, 0, len(vals))
		for k := range vals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "%s{endpoint=%q} %d\n", name, k, vals[k])
		}
	}
	writeFamily("cdbserve_requests_total", "Requests received per endpoint.", "counter", m.snapshot(m.requests))
	writeFamily("cdbserve_errors_total", "Failed requests per endpoint.", "counter", m.snapshot(m.errors))

	// Per-endpoint latency: a summary (count + sum, so rate(sum)/rate(count)
	// is the mean latency) plus a max gauge for outlier spotting.
	lat := m.latencySnapshot()
	keys := make([]string, 0, len(lat))
	for k := range lat {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(w, "# HELP cdbserve_request_duration_seconds Request latency per endpoint.\n# TYPE cdbserve_request_duration_seconds summary\n")
	for _, k := range keys {
		fmt.Fprintf(w, "cdbserve_request_duration_seconds_count{endpoint=%q} %d\n", k, lat[k].count)
		fmt.Fprintf(w, "cdbserve_request_duration_seconds_sum{endpoint=%q} %g\n", k, lat[k].sum)
	}
	fmt.Fprintf(w, "# HELP cdbserve_request_duration_seconds_max Worst observed request latency per endpoint.\n# TYPE cdbserve_request_duration_seconds_max gauge\n")
	for _, k := range keys {
		fmt.Fprintf(w, "cdbserve_request_duration_seconds_max{endpoint=%q} %g\n", k, lat[k].max)
	}

	scalar := func(name, help, typ string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", name, help, name, typ, name, v)
	}
	scalar("cdbserve_sampler_cache_hits_total", "Prepared-sampler cache hits.", "counter", float64(m.CacheHits.Load()))
	scalar("cdbserve_sampler_cache_misses_total", "Prepared-sampler cache misses (cold builds).", "counter", float64(m.CacheMisses.Load()))
	scalar("cdbserve_sampler_cache_evictions_total", "Prepared samplers evicted by the LRU.", "counter", float64(m.CacheEvictions.Load()))
	scalar("cdbserve_coalesced_requests_total", "Sample requests served by an identical in-flight draw.", "counter", float64(m.Coalesced.Load()))
	scalar("cdbserve_batch_jobs_total", "Jobs executed on the sampling worker pool.", "counter", float64(m.BatchJobs.Load()))
	scalar("cdbserve_samples_served_total", "Sample points returned across all responses.", "counter", float64(m.SamplesServed.Load()))
	scalar("cdbserve_uptime_seconds", "Seconds since the server started.", "gauge", time.Since(m.start).Seconds())

	names := make([]string, 0, len(gauges))
	for k := range gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		scalar(k, "See cdbserve documentation.", "gauge", gauges[k])
	}
}
