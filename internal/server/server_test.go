package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	cdb "repro"
)

const testProgram = `
rel S(x, y) := { x >= 0, y >= 0, x + y <= 1 };
rel B(x, y) := { x >= 0, x <= 1, y >= 0, y <= 1 } | { x >= 2, x <= 3, y >= 0, y <= 1 };
query Q(x) := exists y. S(x, y);
query C(x, y) := S(x, y) & x <= 1/2;
`

// fastOpts keeps volume passes short so the suite stays quick.
var fastOpts = &OptionsJSON{MaxPhaseSamples: 200}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t testing.TB, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	return resp, out
}

func register(t testing.TB, baseURL, name, source string) string {
	t.Helper()
	resp, body := postJSON(t, baseURL+"/v1/databases", registerRequest{Name: name, Source: source})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: status %d, body %s", resp.StatusCode, body)
	}
	var out databaseResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decode register response: %v", err)
	}
	return out.ID
}

func inSimplex(p cdb.Vector) bool {
	return len(p) == 2 && p[0] >= 0 && p[1] >= 0 && p[0]+p[1] <= 1+1e-9
}

func TestRegisterListGet(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	id := register(t, ts.URL, "test", testProgram)
	if id != "test" {
		t.Fatalf("id = %q, want %q", id, "test")
	}

	// Idempotent re-registration of identical source.
	resp, body := postJSON(t, ts.URL+"/v1/databases", registerRequest{Name: "test", Source: testProgram})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-register: status %d, body %s", resp.StatusCode, body)
	}

	// Conflicting source under the same name.
	resp, _ = postJSON(t, ts.URL+"/v1/databases", registerRequest{Name: "test", Source: `rel T(x) := { x >= 0, x <= 1 };`})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("conflict: status %d, want 409", resp.StatusCode)
	}

	// Anonymous registration gets a content-hash id.
	resp, body = postJSON(t, ts.URL+"/v1/databases", registerRequest{Source: `rel T(x) := { x >= 0, x <= 1 };`})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("anonymous register: status %d, body %s", resp.StatusCode, body)
	}
	var anon databaseResponse
	json.Unmarshal(body, &anon)
	if !strings.HasPrefix(anon.ID, "db-") {
		t.Fatalf("anonymous id = %q, want db-<hash>", anon.ID)
	}

	// Listing returns both.
	listResp, err := http.Get(ts.URL + "/v1/databases")
	if err != nil {
		t.Fatal(err)
	}
	defer listResp.Body.Close()
	var list struct {
		Databases []databaseResponse `json:"databases"`
	}
	if err := json.NewDecoder(listResp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Databases) != 2 {
		t.Fatalf("listed %d databases, want 2", len(list.Databases))
	}
	if got := list.Databases[0]; got.ID != "test" || len(got.Relations) != 2 || len(got.Queries) != 2 {
		t.Fatalf("unexpected first entry: %+v", got)
	}

	// Get by id includes the source; unknown id is 404.
	getResp, err := http.Get(ts.URL + "/v1/databases/test")
	if err != nil {
		t.Fatal(err)
	}
	var detail struct {
		Source string `json:"source"`
	}
	json.NewDecoder(getResp.Body).Decode(&detail)
	getResp.Body.Close()
	if detail.Source != testProgram {
		t.Fatalf("detail source mismatch")
	}
	missing, err := http.Get(ts.URL + "/v1/databases/nope")
	if err != nil {
		t.Fatal(err)
	}
	missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Fatalf("missing db: status %d, want 404", missing.StatusCode)
	}
}

func TestSampleEndpointDeterministicAndCached(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	register(t, ts.URL, "test", testProgram)

	req := sampleRequest{Database: "test", Relation: "S", N: 50, Seed: 42, Options: fastOpts}
	resp, body := postJSON(t, ts.URL+"/v1/sample", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sample: status %d, body %s", resp.StatusCode, body)
	}
	var first sampleResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.Cache != "miss" {
		t.Fatalf("first request cache = %q, want miss", first.Cache)
	}
	if len(first.Points) != 50 {
		t.Fatalf("got %d points, want 50", len(first.Points))
	}
	for i, p := range first.Points {
		if !inSimplex(p) {
			t.Fatalf("point %d = %v outside S", i, p)
		}
	}

	// Same request again: warm cache, identical points (per-seed
	// determinism survives the prepared-sampler reuse).
	_, body2 := postJSON(t, ts.URL+"/v1/sample", req)
	var second sampleResponse
	if err := json.Unmarshal(body2, &second); err != nil {
		t.Fatal(err)
	}
	if second.Cache != "hit" {
		t.Fatalf("second request cache = %q, want hit", second.Cache)
	}
	if !reflect.DeepEqual(first.Points, second.Points) {
		t.Fatal("same seed returned different points across cold/warm requests")
	}

	// A different seed gives a different stream.
	req.Seed = 43
	_, body3 := postJSON(t, ts.URL+"/v1/sample", req)
	var third sampleResponse
	json.Unmarshal(body3, &third)
	if reflect.DeepEqual(first.Points, third.Points) {
		t.Fatal("different seeds returned identical points")
	}
}

func TestSampleStreamNDJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	register(t, ts.URL, "test", testProgram)

	req := sampleRequest{Database: "test", Relation: "S", N: 20, Seed: 7, Options: fastOpts, Stream: true}
	resp, body := postJSON(t, ts.URL+"/v1/sample", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: status %d, body %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(bytes.NewReader(body))
	if !sc.Scan() {
		t.Fatal("missing meta line")
	}
	var meta sampleResponse
	if err := json.Unmarshal(sc.Bytes(), &meta); err != nil {
		t.Fatalf("meta line: %v", err)
	}
	if meta.N != 20 || meta.Points != nil {
		t.Fatalf("unexpected meta: %+v", meta)
	}
	lines := 0
	for sc.Scan() {
		var p cdb.Vector
		if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
			t.Fatalf("point line %d: %v", lines, err)
		}
		if !inSimplex(p) {
			t.Fatalf("streamed point %v outside S", p)
		}
		lines++
	}
	if lines != 20 {
		t.Fatalf("streamed %d points, want 20", lines)
	}

	// The streamed points match the non-streamed response for the same
	// request parameters.
	req.Stream = false
	_, plain := postJSON(t, ts.URL+"/v1/sample", req)
	var flat sampleResponse
	json.Unmarshal(plain, &flat)
	sc2 := bufio.NewScanner(bytes.NewReader(body))
	sc2.Scan() // skip meta
	for i := 0; sc2.Scan(); i++ {
		var p cdb.Vector
		json.Unmarshal(sc2.Bytes(), &p)
		if !reflect.DeepEqual(p, flat.Points[i]) {
			t.Fatalf("stream/plain mismatch at %d: %v vs %v", i, p, flat.Points[i])
		}
	}
}

func TestVolumeEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	register(t, ts.URL, "test", testProgram)

	req := volumeRequest{Database: "test", Relation: "S", Seed: 42, Options: fastOpts}
	resp, body := postJSON(t, ts.URL+"/v1/volume", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("volume: status %d, body %s", resp.StatusCode, body)
	}
	var out volumeResponse
	json.Unmarshal(body, &out)
	if out.Method != "prepared" {
		t.Fatalf("method = %q, want prepared", out.Method)
	}
	if math.Abs(out.Volume-0.5) > 0.2 {
		t.Fatalf("area(S) estimate %g too far from 0.5", out.Volume)
	}

	// Repeat is warm and returns the identical prepared estimate.
	_, body2 := postJSON(t, ts.URL+"/v1/volume", req)
	var again volumeResponse
	json.Unmarshal(body2, &again)
	if again.Cache != "hit" || again.Volume != out.Volume {
		t.Fatalf("warm volume = %+v, want cache hit with identical estimate %g", again, out.Volume)
	}

	// Median amplification across the 2-tuple relation B (area 2).
	med := volumeRequest{Database: "test", Relation: "B", Seed: 1, MedianK: 3, Options: fastOpts}
	resp, body = postJSON(t, ts.URL+"/v1/volume", med)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("median volume: status %d, body %s", resp.StatusCode, body)
	}
	json.Unmarshal(body, &out)
	if out.Method != "median" {
		t.Fatalf("method = %q, want median", out.Method)
	}
	if math.Abs(out.Volume-2) > 0.7 {
		t.Fatalf("area(B) estimate %g too far from 2", out.Volume)
	}
}

func TestQueryEndpointModes(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	register(t, ts.URL, "test", testProgram)

	// plan: the ∃ query maps onto the projection generator.
	resp, body := postJSON(t, ts.URL+"/v1/query", queryRequest{Database: "test", Query: "Q", Mode: "plan", Options: fastOpts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan: status %d, body %s", resp.StatusCode, body)
	}
	var out queryResponse
	json.Unmarshal(body, &out)
	if !strings.Contains(out.Plan, "projection generator") {
		t.Fatalf("plan missing projection generator: %q", out.Plan)
	}

	// volume: Q(x) = ∃y S(x,y) is the interval [0,1].
	resp, body = postJSON(t, ts.URL+"/v1/query", queryRequest{Database: "test", Query: "Q", Mode: "volume", Seed: 42, Options: fastOpts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query volume: status %d, body %s", resp.StatusCode, body)
	}
	json.Unmarshal(body, &out)
	if out.Volume == nil || math.Abs(*out.Volume-1) > 0.4 {
		t.Fatalf("vol(Q) = %v, want ≈ 1", out.Volume)
	}

	// sample: 1-dimensional points in [0,1].
	resp, body = postJSON(t, ts.URL+"/v1/query", queryRequest{Database: "test", Query: "Q", Mode: "sample", N: 30, Seed: 5, Options: fastOpts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query sample: status %d, body %s", resp.StatusCode, body)
	}
	json.Unmarshal(body, &out)
	if len(out.Points) != 30 {
		t.Fatalf("got %d points, want 30", len(out.Points))
	}
	for _, p := range out.Points {
		if len(p) != 1 || p[0] < -1e-9 || p[0] > 1+1e-9 {
			t.Fatalf("query sample %v outside [0,1]", p)
		}
	}

	// symbolic: Fourier–Motzkin elimination returns a program fragment.
	resp, body = postJSON(t, ts.URL+"/v1/query", queryRequest{Database: "test", Query: "Q", Mode: "symbolic"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("symbolic: status %d, body %s", resp.StatusCode, body)
	}
	json.Unmarshal(body, &out)
	if !strings.Contains(out.Source, "Q") {
		t.Fatalf("symbolic source = %q", out.Source)
	}

	// reconstruct: hulls over the query's set.
	resp, body = postJSON(t, ts.URL+"/v1/query", queryRequest{Database: "test", Query: "C", Mode: "reconstruct", N: 60, Seed: 9, Options: fastOpts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query reconstruct: status %d, body %s", resp.StatusCode, body)
	}
	json.Unmarshal(body, &out)
	if len(out.Hulls) == 0 || len(out.Hulls[0].Vertices) == 0 {
		t.Fatalf("reconstruct returned no hulls: %+v", out)
	}

	// Unknown mode is a 400.
	resp, _ = postJSON(t, ts.URL+"/v1/query", queryRequest{Database: "test", Query: "Q", Mode: "nope"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown mode: status %d, want 400", resp.StatusCode)
	}
}

func TestQuantifierFreeQueryUsesPreparedCache(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	register(t, ts.URL, "test", testProgram)

	// C(x,y) = S ∧ x ≤ 1/2 is quantifier-free, so /v1/sample serves it
	// through the prepared-sampler cache like a relation.
	req := sampleRequest{Database: "test", Query: "C", N: 40, Seed: 3, Options: fastOpts}
	resp, body := postJSON(t, ts.URL+"/v1/sample", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sample query: status %d, body %s", resp.StatusCode, body)
	}
	var out sampleResponse
	json.Unmarshal(body, &out)
	for _, p := range out.Points {
		if !inSimplex(p) || p[0] > 0.5+1e-9 {
			t.Fatalf("point %v violates C", p)
		}
	}
	if s.rt.Cache().Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", s.rt.Cache().Len())
	}

	// The ∃ query is rejected from the cached sample path with guidance.
	resp, body = postJSON(t, ts.URL+"/v1/sample", sampleRequest{Database: "test", Query: "Q", N: 5, Seed: 3})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("∃ query via /v1/sample: status %d, body %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "/v1/query") {
		t.Fatalf("error should point at /v1/query: %s", body)
	}
}

func TestReconstructEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	register(t, ts.URL, "test", testProgram)

	resp, body := postJSON(t, ts.URL+"/v1/reconstruct", reconstructRequest{Database: "test", Relation: "S", N: 120, Seed: 11, Options: fastOpts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reconstruct: status %d, body %s", resp.StatusCode, body)
	}
	var out reconstructResponse
	json.Unmarshal(body, &out)
	if out.Dim != 2 || len(out.Hulls) != 1 || out.VertexCount < 3 {
		t.Fatalf("unexpected reconstruction: %+v", out)
	}
	for _, v := range out.Hulls[0].Vertices {
		if !inSimplex(v) {
			t.Fatalf("hull vertex %v outside S", v)
		}
	}

	// A multi-tuple relation yields one hull per convex piece — a single
	// hull would claim the gap between B's two boxes.
	resp, body = postJSON(t, ts.URL+"/v1/reconstruct", reconstructRequest{Database: "test", Relation: "B", N: 80, Seed: 11, Options: fastOpts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reconstruct B: status %d, body %s", resp.StatusCode, body)
	}
	json.Unmarshal(body, &out)
	if len(out.Hulls) != 2 {
		t.Fatalf("B reconstructed into %d hulls, want 2", len(out.Hulls))
	}
	for _, h := range out.Hulls {
		for _, v := range h.Vertices {
			if v[0] > 1+1e-9 && v[0] < 2-1e-9 {
				t.Fatalf("hull vertex %v lies in the gap between B's boxes", v)
			}
		}
	}

	// The ∃ query routes through Algorithm 5.
	resp, body = postJSON(t, ts.URL+"/v1/reconstruct", reconstructRequest{Database: "test", Query: "Q", N: 60, Seed: 11, Options: fastOpts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reconstruct query: status %d, body %s", resp.StatusCode, body)
	}
	json.Unmarshal(body, &out)
	if out.Dim != 1 || len(out.Hulls) == 0 {
		t.Fatalf("unexpected query reconstruction: %+v", out)
	}
	// The 1D projection Q ⊆ [0,1] must yield real interval endpoints
	// (grid-point duplicates once hid every extreme vertex).
	if out.VertexCount < 2 {
		t.Fatalf("1D reconstruction has %d vertices, want >= 2: %+v", out.VertexCount, out.Hulls)
	}
}

func TestSamplerCacheSingleflightSharing(t *testing.T) {
	// 100 parallel requests for the same key must produce exactly one
	// build, and every caller must receive the one shared sampler.
	cache := NewSamplerCache(8, NewMetrics())
	rel := cdb.MustRelation("S", []string{"x", "y"}, cdb.Simplex(2, 1))
	var builds atomic.Int64
	build := func() (*cdb.PreparedSampler, error) {
		builds.Add(1)
		time.Sleep(10 * time.Millisecond) // widen the race window
		return cdb.PrepareSampler(rel, 1, cdb.DefaultOptions())
	}

	const clients = 100
	results := make([]*cdb.PreparedSampler, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ps, _, err := cache.Get("shared-key", build)
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			results[i] = ps
		}(i)
	}
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("build ran %d times, want 1", n)
	}
	for i, ps := range results {
		if ps != results[0] {
			t.Fatalf("client %d received a different sampler instance", i)
		}
	}
}

func TestSamplerCacheLRUEviction(t *testing.T) {
	m := NewMetrics()
	cache := NewSamplerCache(1, m)
	rel := cdb.MustRelation("S", []string{"x", "y"}, cdb.Simplex(2, 1))
	build := func() (*cdb.PreparedSampler, error) {
		return cdb.PrepareSampler(rel, 1, cdb.DefaultOptions())
	}
	if _, hit, err := cache.Get("a", build); err != nil || hit {
		t.Fatalf("first a: hit=%v err=%v", hit, err)
	}
	if _, hit, err := cache.Get("b", build); err != nil || hit {
		t.Fatalf("first b: hit=%v err=%v", hit, err)
	}
	if _, hit, err := cache.Get("a", build); err != nil || hit {
		t.Fatalf("a after eviction: hit=%v err=%v (want rebuilt miss)", hit, err)
	}
	if ev := m.CacheEvictions.Load(); ev < 1 {
		t.Fatalf("evictions = %d, want >= 1", ev)
	}
	if cache.Len() != 1 {
		t.Fatalf("cache len = %d, want 1", cache.Len())
	}
}

func TestSamplerCacheFailedBuildNotCached(t *testing.T) {
	cache := NewSamplerCache(4, nil)
	calls := 0
	failing := func() (*cdb.PreparedSampler, error) {
		calls++
		return nil, fmt.Errorf("boom %d", calls)
	}
	if _, _, err := cache.Get("k", failing); err == nil {
		t.Fatal("want error")
	}
	if _, _, err := cache.Get("k", failing); err == nil || !strings.Contains(err.Error(), "boom 2") {
		t.Fatalf("second call should retry the build, got %v", err)
	}
	if cache.Len() != 0 {
		t.Fatalf("failed builds must not stay cached, len = %d", cache.Len())
	}
}

func TestConcurrentBatchedSampling(t *testing.T) {
	// The acceptance scenario: ≥ 8 concurrent clients drawing ≥ 10,000
	// points total through the batch executor, raced, with per-seed
	// determinism across clients.
	s, ts := newTestServer(t, Config{PoolSize: 4})
	register(t, ts.URL, "test", testProgram)

	const clients = 8
	const perClient = 1250
	type result struct {
		points []cdb.Vector
		err    error
	}
	results := make([]result, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Clients 0 and 1 send byte-identical requests (coalescing
			// candidates); the rest use distinct seeds.
			seed := uint64(100 + i)
			if i == 1 {
				seed = 100
			}
			buf, _ := json.Marshal(sampleRequest{Database: "test", Relation: "B", N: perClient, Seed: seed, Workers: 4, Options: fastOpts})
			resp, err := http.Post(ts.URL+"/v1/sample", "application/json", bytes.NewReader(buf))
			if err != nil {
				results[i].err = err
				return
			}
			defer resp.Body.Close()
			var out sampleResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				results[i].err = err
				return
			}
			if resp.StatusCode != http.StatusOK {
				results[i].err = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			results[i].points = out.Points
		}(i)
	}
	wg.Wait()

	total := 0
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("client %d: %v", i, r.err)
		}
		if len(r.points) != perClient {
			t.Fatalf("client %d got %d points, want %d", i, len(r.points), perClient)
		}
		total += len(r.points)
		for _, p := range r.points {
			inB := len(p) == 2 && p[1] >= -1e-9 && p[1] <= 1+1e-9 &&
				((p[0] >= -1e-9 && p[0] <= 1+1e-9) || (p[0] >= 2-1e-9 && p[0] <= 3+1e-9))
			if !inB {
				t.Fatalf("client %d: point %v outside B", i, p)
			}
		}
	}
	if total < 10000 {
		t.Fatalf("drew %d points total, want >= 10000", total)
	}
	// Identical requests get identical results whether or not the
	// executor coalesced them.
	if !reflect.DeepEqual(results[0].points, results[1].points) {
		t.Fatal("clients 0 and 1 sent identical requests but got different points")
	}
	if reflect.DeepEqual(results[0].points, results[2].points) {
		t.Fatal("distinct seeds returned identical streams")
	}
	if jobs := s.metrics.BatchJobs.Load(); jobs < clients {
		t.Fatalf("batch jobs = %d, want >= %d (pool should carry every request)", jobs, clients)
	}
}

func TestColdVersusWarmCacheSpeedup(t *testing.T) {
	// The prepared-sampler cache must make warm requests substantially
	// cheaper than the cold request that pays rounding + volume setup.
	_, ts := newTestServer(t, Config{})
	// A 5-dimensional 3-tuple union makes the preparation genuinely
	// expensive relative to drawing a handful of warm samples.
	src := `rel H(a, b, c, d, e) :=
  { a >= 0, a <= 1, b >= 0, b <= 1, c >= 0, c <= 1, d >= 0, d <= 1, e >= 0, e <= 1 }
| { a >= 1, a <= 2, b >= 0, b <= 1, c >= 0, c <= 1, d >= 0, d <= 1, e >= 0, e <= 1 }
| { a >= 2, a <= 3, b >= 0, b <= 1, c >= 0, c <= 1, d >= 0, d <= 1, e >= 0, e <= 1 };`
	register(t, ts.URL, "hd", src)

	req := sampleRequest{Database: "hd", Relation: "H", N: 8, Seed: 42}
	timeOnce := func() (time.Duration, sampleResponse) {
		start := time.Now()
		resp, body := postJSON(t, ts.URL+"/v1/sample", req)
		elapsed := time.Since(start)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("sample: status %d, body %s", resp.StatusCode, body)
		}
		var out sampleResponse
		json.Unmarshal(body, &out)
		return elapsed, out
	}

	cold, coldOut := timeOnce()
	if coldOut.Cache != "miss" {
		t.Fatalf("first request cache = %q", coldOut.Cache)
	}
	warm := time.Duration(math.MaxInt64)
	var warmOut sampleResponse
	for i := 0; i < 3; i++ { // best of three to damp scheduler noise
		w, out := timeOnce()
		if out.Cache != "hit" {
			t.Fatalf("warm request %d cache = %q", i, out.Cache)
		}
		if w < warm {
			warm = w
			warmOut = out
		}
	}
	if !reflect.DeepEqual(coldOut.Points, warmOut.Points) {
		t.Fatal("cold and warm responses disagree for the same seed")
	}
	if warm*2 > cold {
		t.Fatalf("no cache win: cold=%v warm=%v (want warm ≤ cold/2)", cold, warm)
	}
	t.Logf("cold=%v warm=%v speedup=%.1fx", cold, warm, float64(cold)/float64(warm))
}

func TestMetricsAndHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	register(t, ts.URL, "test", testProgram)
	postJSON(t, ts.URL+"/v1/sample", sampleRequest{Database: "test", Relation: "S", N: 5, Seed: 1, Options: fastOpts})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]string
	json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if health["status"] != "ok" {
		t.Fatalf("healthz = %v", health)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(raw)
	for _, want := range []string{
		`cdbserve_requests_total{endpoint="sample"} 1`,
		`cdbserve_requests_total{endpoint="databases"} 1`,
		"cdbserve_sampler_cache_misses_total 1",
		"cdbserve_samples_served_total 5",
		"cdbserve_databases 1",
		"cdbserve_sampler_cache_size 1",
		"cdbserve_pool_workers",
		"cdbserve_uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
}

func TestErrorStatuses(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSamples: 100})
	register(t, ts.URL, "test", testProgram)

	// Unknown database → 404.
	resp, _ := postJSON(t, ts.URL+"/v1/sample", sampleRequest{Database: "nope", Relation: "S", Seed: 1})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown db: status %d, want 404", resp.StatusCode)
	}
	// Unknown relation → 404, like an unknown database.
	resp, _ = postJSON(t, ts.URL+"/v1/sample", sampleRequest{Database: "test", Relation: "Z", Seed: 1})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown relation: status %d, want 404", resp.StatusCode)
	}
	// Unbounded relation → 422 (ErrNotWellBounded).
	register(t, ts.URL, "unbounded", `rel U(x, y) := { x >= 0 };`)
	resp, body := postJSON(t, ts.URL+"/v1/sample", sampleRequest{Database: "unbounded", Relation: "U", Seed: 1})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("unbounded relation: status %d (%s), want 422", resp.StatusCode, body)
	}
	// Over the sample cap → 400.
	resp, _ = postJSON(t, ts.URL+"/v1/sample", sampleRequest{Database: "test", Relation: "S", N: 101, Seed: 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("over cap: status %d, want 400", resp.StatusCode)
	}
	// Malformed JSON → 400.
	resp, err := http.Post(ts.URL+"/v1/sample", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", resp.StatusCode)
	}
	// Relation and query together → 400, on /v1/reconstruct too (the
	// engine fallback must not swallow the conflict).
	resp, _ = postJSON(t, ts.URL+"/v1/sample", sampleRequest{Database: "test", Relation: "S", Query: "Q", Seed: 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("relation+query: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/reconstruct", reconstructRequest{Database: "test", Relation: "S", Query: "Q", Seed: 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("reconstruct relation+query: status %d, want 400", resp.StatusCode)
	}
	// Over the median_k cap → 400.
	resp, _ = postJSON(t, ts.URL+"/v1/volume", volumeRequest{Database: "test", Relation: "S", Seed: 1, MedianK: 1 << 20})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("median_k over cap: status %d, want 400", resp.StatusCode)
	}
}

func TestRegistryCapacity(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxDatabases: 1})
	register(t, ts.URL, "one", `rel R(x) := { x >= 0, x <= 1 };`)
	resp, body := postJSON(t, ts.URL+"/v1/databases", registerRequest{Name: "two", Source: `rel R(x) := { x >= 0, x <= 2 };`})
	if resp.StatusCode != http.StatusInsufficientStorage {
		t.Fatalf("over capacity: status %d (%s), want 507", resp.StatusCode, body)
	}
	// Idempotent re-registration still works at capacity.
	resp, _ = postJSON(t, ts.URL+"/v1/databases", registerRequest{Name: "one", Source: `rel R(x) := { x >= 0, x <= 1 };`})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("idempotent at capacity: status %d, want 200", resp.StatusCode)
	}
}

func TestPoolSubmitAfterCloseRunsInline(t *testing.T) {
	p := NewPool(2, nil)
	p.Close()
	ran := false
	p.Submit(func() { ran = true }) // must not panic on the closed channel
	if !ran {
		t.Fatal("job did not run after Close")
	}
}
