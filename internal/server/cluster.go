package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"time"

	"repro/internal/cluster"
	"repro/internal/query"
	"repro/internal/runtime"
)

// Cluster mode routes every prepared-cache key to exactly one owner
// node: a consistent-hash ring over the static membership decides who
// prepares (and keeps warm) each (database, target, options) key, and
// non-owner nodes transparently proxy /v1/* requests to the owner. The
// routing layer sits ABOVE the handlers — a request either forwards
// before touching the local runtime or runs the unchanged single-node
// path — so the Local (no peers) configuration is byte-identical to the
// pre-cluster server.
//
// Resilience: each peer has a circuit breaker (fed by forwarding
// outcomes and an optional background prober); a request whose owner is
// unreachable is computed locally instead — the cluster degrades to
// duplicated work, never to unavailability. Cold keys crossing the
// forwarding path are gated through a keyed singleflight latch so a
// stampede costs the owner one preparation.

const (
	// headerForwarded counts forwarding hops; its presence marks a
	// peer-originated request (loop guard, quota exemption).
	headerForwarded = "X-CDB-Forwarded"
	// headerOwner carries the routing verdict: set on forwarded requests
	// and echoed on proxied responses so clients (and tests) can see
	// which node actually served.
	headerOwner = "X-CDB-Owner"
	// headerTenant identifies the quota bucket of per-tenant admission
	// control; absent, the request charges the anonymous bucket.
	headerTenant = "X-CDB-Tenant"
)

// maxRouteBody caps how much request body the routing layer reads to
// extract a key; larger bodies are served locally and meet the
// endpoint's own MaxBytesReader downstream.
const maxRouteBody = 1 << 18

// routeKeyFunc extracts the routing key from a request: usually from
// the decoded body, but /v1/sql also reads the request's query
// parameters (its body is the bare statement text). Returning "" means
// "no routing verdict — serve locally" (unknown database, malformed
// body, …); the local handler then produces the same error a
// single-node server would.
type routeKeyFunc func(s *Server, r *http.Request, body []byte) string

// routeOptsKey resolves the wire options to their cache fingerprint;
// routing must hash exactly the key the owner's runtime will store
// under, or two nodes would disagree about ownership of one entry.
func routeOptsKey(o *OptionsJSON) (string, bool) {
	opts, err := o.toOptions()
	if err != nil {
		return "", false
	}
	return opts.CacheKey(), true
}

// routeEntryID resolves the database id the cache keys embed.
func (s *Server) routeEntryID(database string) (string, bool) {
	e, ok := s.rt.Registry().Get(database)
	if !ok {
		return "", false
	}
	return e.ID, true
}

func routeKeySample(s *Server, r *http.Request, body []byte) string {
	var req sampleRequest
	if json.Unmarshal(body, &req) != nil {
		return ""
	}
	return s.targetKey(req.Database, req.Relation, req.Query, req.Options)
}

func routeKeyVolume(s *Server, r *http.Request, body []byte) string {
	var req volumeRequest
	if json.Unmarshal(body, &req) != nil {
		return ""
	}
	return s.targetKey(req.Database, req.Relation, req.Query, req.Options)
}

func routeKeyReconstruct(s *Server, r *http.Request, body []byte) string {
	var req reconstructRequest
	if json.Unmarshal(body, &req) != nil {
		return ""
	}
	return s.targetKey(req.Database, req.Relation, req.Query, req.Options)
}

// targetKey is the name-addressed routing key: the same alias key
// runtime.PreparedFor singleflights the planning pass under. The plan
// key it resolves to is a deterministic function of the alias, so
// routing on the alias keeps each canonical plan warm on one node.
func (s *Server) targetKey(database, relation, query string, o *OptionsJSON) string {
	id, ok := s.routeEntryID(database)
	if !ok {
		return ""
	}
	kind, name, err := runtime.TargetKindName(relation, query)
	if err != nil {
		return ""
	}
	optsKey, ok := routeOptsKey(o)
	if !ok {
		return ""
	}
	return runtime.SamplerKey(id, kind, name, optsKey)
}

// routeKeyQuery routes named-query evaluation (all modes run through a
// per-request engine, but repeated evaluations of one query still gain
// from landing on one node's engine-independent caches).
func routeKeyQuery(s *Server, r *http.Request, body []byte) string {
	var req queryRequest
	if json.Unmarshal(body, &req) != nil {
		return ""
	}
	id, ok := s.routeEntryID(req.Database)
	if !ok || req.Query == "" {
		return ""
	}
	optsKey, ok := routeOptsKey(req.Options)
	if !ok {
		return ""
	}
	return runtime.SamplerKey(id, "query", req.Query, optsKey)
}

// routeKeyExpr compiles the expression tree to its canonical plan and
// routes on the same runtime.PlanKey the handler caches under, so
// structurally equal expressions reach one owner whatever surface or
// operand order produced them. Symbolic mode routes on the symbolic
// key (options are irrelevant there, matching the symbolic cache).
func routeKeyExpr(s *Server, r *http.Request, body []byte) string {
	var req exprRequest
	if json.Unmarshal(body, &req) != nil {
		return ""
	}
	e, ok := s.rt.Registry().Get(req.Database)
	if !ok {
		return ""
	}
	budget := maxExprNodes
	node, err := req.Expr.toNode(&budget, "expr")
	if err != nil {
		return ""
	}
	if req.Mode == "symbolic" {
		sq, err := node.CompileSymbolic(e.DB)
		if err != nil {
			return ""
		}
		return runtime.SymbolicKey(e.ID, sq.Key)
	}
	plan, err := node.Compile(e.DB)
	if err != nil {
		return ""
	}
	optsKey, ok := routeOptsKey(req.Options)
	if !ok {
		return ""
	}
	return runtime.PlanKey(e.ID, query.Canonicalize(plan).Key, optsKey)
}

func routeKeySpacetimeSlice(s *Server, r *http.Request, body []byte) string {
	var req spacetimeSliceRequest
	if json.Unmarshal(body, &req) != nil {
		return ""
	}
	id, ok := s.routeEntryID(req.Database)
	if !ok {
		return ""
	}
	optsKey, ok := routeOptsKey(req.Options)
	if !ok {
		return ""
	}
	return runtime.SliceKey(id, req.Relation, req.T0, optsKey)
}

func routeKeySpacetimeSample(s *Server, r *http.Request, body []byte) string {
	var req spacetimeSampleRequest
	if json.Unmarshal(body, &req) != nil {
		return ""
	}
	id, ok := s.routeEntryID(req.Database)
	if !ok {
		return ""
	}
	optsKey, ok := routeOptsKey(req.Options)
	if !ok {
		return ""
	}
	if req.T0 != nil && req.T1 != nil {
		return runtime.WindowKey(id, req.Relation, *req.T0, *req.T1, optsKey)
	}
	// No window: the handler shares /v1/sample's cache entry.
	return runtime.SamplerKey(id, "rel", req.Relation, optsKey)
}

func routeKeySpacetimeAlibi(s *Server, r *http.Request, body []byte) string {
	var req alibiRequest
	if json.Unmarshal(body, &req) != nil {
		return ""
	}
	id, ok := s.routeEntryID(req.Database)
	if !ok {
		return ""
	}
	optsKey, ok := routeOptsKey(req.Options)
	if !ok {
		return ""
	}
	return runtime.AlibiKey(id, req.A, req.B, req.T0, req.T1, optsKey)
}

// --- middleware ----------------------------------------------------------

// admitted applies admission control in front of h: the bounded
// in-flight budget and (for ingress requests) the tenant's token
// bucket. Shed requests get 429 + Retry-After and never reach the
// routing or handler layers. A nil controller (admission not
// configured) compiles down to h itself.
func (s *Server) admitted(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	if s.admission == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		release, retryAfter, err := s.admission.Admit(r.Header.Get(headerTenant), r.Header.Get(headerForwarded) != "")
		if err != nil {
			reason := "capacity"
			if errors.Is(err, cluster.ErrQuotaExceeded) {
				reason = "quota"
			}
			s.metrics.IncShed(endpoint, reason)
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(retryAfter)))
			writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
			return
		}
		defer release()
		h(w, r)
	}
}

// routed applies consistent-hash routing in front of h: requests whose
// key this node owns (or that cannot be routed) run h unchanged;
// everything else forwards to the owner, falling back to h when the
// owner is unreachable. With the Local router the middleware is h
// itself — the single-node server never pays for cluster mode.
func (s *Server) routed(endpoint string, keyOf routeKeyFunc, h http.HandlerFunc) http.HandlerFunc {
	if _, isLocal := s.router.(cluster.Local); isLocal {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(io.LimitReader(r.Body, maxRouteBody+1))
		r.Body.Close()
		if err != nil || len(body) > maxRouteBody {
			// Oversized or unreadable: let the handler's own limits decide.
			r.Body = io.NopCloser(bytes.NewReader(body))
			h(w, r)
			return
		}
		r.Body = io.NopCloser(bytes.NewReader(body))

		key := keyOf(s, r, body)
		if key == "" {
			s.metrics.IncRoute(endpoint, "local")
			h(w, r)
			return
		}
		owner, local := s.router.Route(key)
		if local {
			s.metrics.IncRoute(endpoint, "local")
			h(w, r)
			return
		}
		if hops := forwardedHops(r); hops >= s.cfg.Cluster.MaxHops {
			// A chain this long means the membership views disagree; break
			// the loop by serving locally (duplicated warmth beats a cycle).
			s.metrics.IncRoute(endpoint, "hop_limit")
			h(w, r)
			return
		}
		br := s.health.Breaker(owner)
		if !br.Allow() {
			s.metrics.IncRoute(endpoint, "fallback_breaker")
			h(w, r)
			return
		}
		if ok := s.forward(w, r, endpoint, owner, key, body, br); !ok {
			// Transport failure: the breaker heard about it; compute locally
			// so the client never sees the dead peer.
			s.metrics.IncRoute(endpoint, "fallback_error")
			r.Body = io.NopCloser(bytes.NewReader(body))
			h(w, r)
		}
	}
}

// forwardedHops counts the nodes a request already crossed.
func forwardedHops(r *http.Request) int {
	v := r.Header.Get(headerForwarded)
	if v == "" {
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		// An unparsable marker still proves at least one hop.
		return 1
	}
	return n
}

// forward proxies the request to the owner node. It reports false on
// transport-level failure (the caller then falls back to the local
// handler); HTTP-level errors from the owner are proxied verbatim —
// the owner answering 4xx/5xx is routing working, not failing.
func (s *Server) forward(w http.ResponseWriter, r *http.Request, endpoint, owner, key string, body []byte, br *cluster.Breaker) bool {
	ctx := r.Context()
	// Gate the first exchange per key: a cold-key stampede from this node
	// costs the owner one preparation, not one per caller. Warm keys skip
	// the latch entirely and forward with full concurrency.
	if !s.warm.Has(key) {
		leader, err := s.gate.Enter(ctx, key)
		if err != nil {
			br.Success() // the client died, not the peer
			writeJSON(w, statusClientClosedRequest, errorResponse{Error: err.Error()})
			return true
		}
		if leader {
			defer s.gate.Leave(key)
		}
	}

	req, err := http.NewRequestWithContext(ctx, r.Method, owner+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		br.Fail()
		return false
	}
	req.Header.Set("Content-Type", r.Header.Get("Content-Type"))
	if accept := r.Header.Get("Accept"); accept != "" {
		req.Header.Set("Accept", accept)
	}
	if tenant := r.Header.Get(headerTenant); tenant != "" {
		req.Header.Set(headerTenant, tenant)
	}
	req.Header.Set(headerForwarded, strconv.Itoa(forwardedHops(r)+1))
	req.Header.Set(headerOwner, owner)

	resp, err := s.fwd.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// The client hung up mid-forward; the peer is not to blame.
			br.Success()
			writeJSON(w, statusClientClosedRequest, errorResponse{Error: ctx.Err().Error()})
			return true
		}
		br.Fail()
		return false
	}
	defer resp.Body.Close()
	br.Success()
	s.warm.Add(key)
	s.metrics.IncRoute(endpoint, "forward")

	for _, name := range []string{"Content-Type", "X-Trace-Id", "Retry-After"} {
		if v := resp.Header.Get(name); v != "" {
			w.Header().Set(name, v)
		}
	}
	w.Header().Set(headerOwner, owner)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true
}

// replicateRegistration fans a successful database registration out to
// every peer, so each node can resolve ids and compile plans for
// routing whatever node the client happened to register against.
// Registration is content-hash idempotent, so replays and races
// converge; best-effort — an unreachable peer (breaker-gated) learns
// the database when a registration or preload reaches it later.
func (s *Server) replicateRegistration(r *http.Request, body []byte) {
	if _, isLocal := s.router.(cluster.Local); isLocal || r.Header.Get(headerForwarded) != "" {
		return
	}
	for _, peer := range s.router.Nodes() {
		if peer == s.router.Self() {
			continue
		}
		br := s.health.Breaker(peer)
		if !br.Allow() {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, peer+"/v1/databases", bytes.NewReader(body))
		if err != nil {
			br.Fail()
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(headerForwarded, "1")
		resp, err := s.fwd.Do(req)
		if err != nil {
			br.Fail()
			continue
		}
		resp.Body.Close()
		br.Success()
	}
}

// --- introspection -------------------------------------------------------

// clusterStatus is the /debug/cluster (and /healthz "cluster" field)
// document.
type clusterStatus struct {
	Enabled      bool                 `json:"enabled"`
	Self         string               `json:"self,omitempty"`
	Nodes        []string             `json:"nodes,omitempty"`
	VNodes       map[string]int       `json:"vnodes,omitempty"`
	Breakers     map[string]string    `json:"breakers,omitempty"`
	OpenBreakers int                  `json:"open_breakers"`
	Draining     bool                 `json:"draining"`
	WarmKeys     int                  `json:"warm_keys"`
	InFlight     int                  `json:"in_flight"`
	Quotas       []cluster.QuotaState `json:"quotas,omitempty"`
}

func (s *Server) clusterStatusNow() clusterStatus {
	st := clusterStatus{
		Enabled:  s.cfg.Cluster.Enabled(),
		Self:     s.router.Self(),
		Nodes:    s.router.Nodes(),
		Draining: s.draining.Load(),
		WarmKeys: s.rt.Cache().Len(),
	}
	if ring, ok := cluster.RingOf(s.router); ok {
		st.VNodes = ring.Layout()
	}
	if s.health != nil {
		st.Breakers = s.health.States()
		st.OpenBreakers = s.health.OpenCount()
	}
	if s.admission != nil {
		st.InFlight = s.admission.InFlight()
		st.Quotas = s.admission.Quotas()
	}
	return st
}

// writeClusterMetrics renders the cluster gauge families Prometheus
// text after Metrics.WriteTo (breaker states carry a peer label, which
// the scalar gauge map cannot express).
func (s *Server) writeClusterMetrics(w io.Writer) {
	if !s.cfg.Cluster.Enabled() {
		return
	}
	states := s.health.States()
	peers := make([]string, 0, len(states))
	for p := range states {
		peers = append(peers, p)
	}
	sort.Strings(peers)
	fmt.Fprintf(w, "# HELP cdbserve_cluster_breaker_open Whether the peer's circuit breaker is open (1 = open).\n# TYPE cdbserve_cluster_breaker_open gauge\n")
	for _, p := range peers {
		open := 0
		if states[p] == "open" {
			open = 1
		}
		fmt.Fprintf(w, "cdbserve_cluster_breaker_open{peer=%q} %d\n", p, open)
	}
	fmt.Fprintf(w, "# HELP cdbserve_cluster_peers Cluster membership size (including this node).\n# TYPE cdbserve_cluster_peers gauge\ncdbserve_cluster_peers %d\n", len(s.router.Nodes()))
	inFlight := 0
	if s.admission != nil {
		inFlight = s.admission.InFlight()
	}
	fmt.Fprintf(w, "# HELP cdbserve_cluster_inflight Currently admitted in-flight requests.\n# TYPE cdbserve_cluster_inflight gauge\ncdbserve_cluster_inflight %d\n", inFlight)
}

// retryAfterSeconds renders a Retry-After duration as whole seconds
// (minimum 1 — a 0 would tell clients to hammer immediately).
func retryAfterSeconds(d time.Duration) int {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}
