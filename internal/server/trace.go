package server

// Wire form of the per-request trace: every instrumented request runs
// under a root span (see instrument), and responses echo its trace id
// so clients can correlate with the X-Trace-Id header and slow-query
// log lines. Requests that set "trace": true additionally get the full
// span tree — per-stage durations and counters — in the response.

import (
	"context"

	"repro/internal/obs"
)

// spanJSON is one trace span on the wire.
type spanJSON struct {
	Name       string           `json:"name"`
	Key        string           `json:"key,omitempty"`
	DurationUS float64          `json:"duration_us"`
	Counters   map[string]int64 `json:"counters,omitempty"`
	Children   []spanJSON       `json:"children,omitempty"`
}

// spanTree serializes a span and its subtree. Un-ended spans (the root
// is still open while its handler serializes the response) report
// their running duration.
func spanTree(s *obs.Span) *spanJSON {
	if s == nil {
		return nil
	}
	out := &spanJSON{
		Name:       s.Name(),
		Key:        s.Key(),
		DurationUS: float64(s.Duration().Nanoseconds()) / 1e3,
	}
	if cs := s.Counters(); len(cs) > 0 {
		out.Counters = make(map[string]int64, len(cs))
		for _, c := range cs {
			out.Counters[c.Name] = c.Value
		}
	}
	for _, c := range s.Children() {
		out.Children = append(out.Children, *spanTree(c))
	}
	return out
}

// traceID returns the request's trace id, or "" when untraced (e.g.
// handlers exercised without the instrument wrapper in tests).
func traceID(ctx context.Context) string {
	return obs.FromContext(ctx).TraceID()
}

// traceSpans returns the serialized span tree when the client asked
// for it, nil otherwise.
func traceSpans(ctx context.Context, want bool) *spanJSON {
	if !want {
		return nil
	}
	return spanTree(obs.FromContext(ctx))
}
