package runtime

import (
	"container/list"
	"errors"
	"sync"

	"repro/internal/obs"
)

// errBuildPanic is what waiters of a flight see when the build panicked
// out of Get (the panic itself propagates on the builder's goroutine).
var errBuildPanic = errors.New("runtime: prepared build panicked")

// negativeEntry wraps a build error that is worth caching: the build
// deterministically proved its target empty (or otherwise permanently
// unusable), so replays should be O(1) lookups instead of repeated
// failed builds. The wrapped error stays visible to errors.Is/As.
type negativeEntry struct{ err error }

func (n negativeEntry) Error() string { return n.err.Error() }
func (n negativeEntry) Unwrap() error { return n.err }

// Negative marks err as cacheable: a build returning Negative(err) is
// stored as a negative entry and every later Get for the key returns
// the error immediately (hit=true), until the entry is evicted.
// Transient failures must NOT be marked — a plain error is never cached
// and the next Get retries the build.
func Negative(err error) error { return negativeEntry{err: err} }

// IsNegative reports whether err carries the Negative marker.
func IsNegative(err error) bool {
	var n negativeEntry
	return errors.As(err, &n)
}

// Cache is a singleflight LRU: values are built at most once per key no
// matter how many goroutines ask concurrently — all waiters of a flight
// receive the one shared value — and completed entries are evicted
// least-recently-used beyond the capacity. Failed builds are not cached
// (the error propagates to every waiter and the next Get retries)
// unless the build marks the error with Negative, in which case the
// verdict itself is cached.
//
// This is the mechanism that makes a thundering herd of identical
// requests cost one rounding pass instead of a hundred; SamplerCache is
// its prepared-sampler instantiation.
type Cache[V any] struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used; values are *cacheSlot[V]
	slots    map[string]*cacheSlot[V]

	// kind labels this cache's events (plan / symbolic / alibi) for the
	// sink; sink receives per-access outcomes and may be nil.
	kind obs.CacheKind
	sink obs.Sink
}

type cacheSlot[V any] struct {
	key      string
	elem     *list.Element
	ready    chan struct{} // closed when build finishes
	val      V
	err      error
	negative bool
}

// NewCache returns a cache holding at most capacity completed entries
// (minimum 1). hooks may be nil. Events report under obs.KindPlan; use
// NewKindCache to label a cache's events with another kind.
func NewCache[V any](capacity int, hooks Hooks) *Cache[V] {
	return NewKindCache[V](capacity, obs.KindPlan, sinkFor(hooks))
}

// NewKindCache returns a cache whose events carry the given kind label.
// sink may be nil.
func NewKindCache[V any](capacity int, kind obs.CacheKind, sink obs.Sink) *Cache[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[V]{
		capacity: capacity,
		ll:       list.New(),
		slots:    map[string]*cacheSlot[V]{},
		kind:     kind,
		sink:     sink,
	}
}

// event reports one outcome to the sink, if any.
func (c *Cache[V]) event(outcome obs.CacheOutcome) {
	if c.sink != nil {
		c.sink.CacheEvent(c.kind, outcome)
	}
}

// Get returns the value for key, building it with build on a miss. hit
// reports whether a warm (or in-flight, or negative) entry was reused.
func (c *Cache[V]) Get(key string, build func() (V, error)) (val V, hit bool, err error) {
	var zero V
	c.mu.Lock()
	if slot, ok := c.slots[key]; ok {
		// Completed negative entries stay at the eviction end: a cached
		// empty verdict must never out-compete warm geometry that cost
		// real preparation work (see the negative placement in the build
		// path below).
		refresh := true
		select {
		case <-slot.ready:
			refresh = !slot.negative
		default:
		}
		if refresh {
			c.ll.MoveToFront(slot.elem)
		}
		c.mu.Unlock()
		<-slot.ready
		if slot.err != nil {
			if slot.negative {
				// A cached verdict: the target is deterministically empty
				// or unusable; O(1) replay of the error.
				c.event(obs.NegativeHit)
				return zero, true, slot.err
			}
			// Joined a flight that failed transiently: no value was
			// shared, so this is neither a hit nor a countable miss.
			return zero, false, slot.err
		}
		c.event(obs.Hit)
		return slot.val, true, nil
	}
	slot := &cacheSlot[V]{key: key, ready: make(chan struct{})}
	slot.elem = c.ll.PushFront(slot)
	c.slots[key] = slot
	// Capacity is enforced after the build completes, when the entry's
	// kind is known: an in-flight build must not evict warm geometry
	// only to turn out to be a cheap negative verdict.
	c.mu.Unlock()
	c.event(obs.Miss)

	// The ready channel must close even if build panics (numeric code on
	// adversarial programs), or every later Get for this key would block
	// forever on an unevictable in-flight slot.
	finished := false
	defer func() {
		if !finished {
			slot.err = errBuildPanic
			close(slot.ready)
			c.remove(slot)
		}
	}()
	slot.val, slot.err = build()
	finished = true
	slot.negative = slot.err != nil && IsNegative(slot.err)
	close(slot.ready)
	if slot.err != nil && !slot.negative {
		c.remove(slot)
		return slot.val, false, slot.err
	}
	c.mu.Lock()
	if cur, ok := c.slots[slot.key]; ok && cur == slot && slot.negative {
		// Park negative entries at the LRU's eviction end: they are
		// cheap to rebuild (a support check), so a sweep of distinct
		// empty probes evicts earlier negatives first and never pushes
		// expensively prepared geometry out of the cache.
		c.ll.MoveToBack(slot.elem)
	}
	c.evictLocked(slot)
	c.mu.Unlock()
	return slot.val, false, slot.err
}

// evictLocked drops completed slots until the cache fits its capacity,
// never evicting keep (the slot whose completion triggered the pass —
// a fresh negative verdict must not evict itself, or negative caching
// silently disables at capacity). Within the budget it prefers
// evicting completed negative entries (cheap verdicts) over positives
// (expensive geometry), oldest first; in-flight builds are never
// evicted (their waiters hold the slot anyway). Callers must hold
// c.mu.
func (c *Cache[V]) evictLocked(keep *cacheSlot[V]) {
	for c.ll.Len() > c.capacity {
		victim := c.victimLocked(keep, true) // other negatives first
		if victim == nil {
			victim = c.victimLocked(keep, false)
		}
		if victim == nil {
			return // everything over capacity is in flight or keep
		}
		c.ll.Remove(victim.elem)
		delete(c.slots, victim.key)
		c.event(obs.Eviction)
	}
}

// victimLocked scans from the eviction end for a completed slot other
// than keep; negativeOnly restricts the scan to negative entries.
func (c *Cache[V]) victimLocked(keep *cacheSlot[V], negativeOnly bool) *cacheSlot[V] {
	for e := c.ll.Back(); e != nil; e = e.Prev() {
		slot := e.Value.(*cacheSlot[V])
		if slot == keep {
			continue
		}
		select {
		case <-slot.ready:
		default:
			continue // still building
		}
		if negativeOnly && !slot.negative {
			continue
		}
		return slot
	}
	return nil
}

// remove drops a slot (used for transiently failed builds).
func (c *Cache[V]) remove(slot *cacheSlot[V]) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.slots[slot.key]; ok && cur == slot {
		c.ll.Remove(slot.elem)
		delete(c.slots, slot.key)
	}
}

// Peek reports whether key holds a completed entry, without touching
// the LRU order, joining an in-flight build or counting hit/miss
// metrics. negative reports whether the entry is a cached verdict.
// Explain-style introspection uses it to label cache residency.
func (c *Cache[V]) Peek(key string) (cached, negative bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	slot, ok := c.slots[key]
	if !ok {
		return false, false
	}
	select {
	case <-slot.ready:
		return true, slot.negative
	default:
		return false, false // still building
	}
}

// Keys snapshots the keys of all completed entries (in-flight builds
// are excluded), in no particular order. The LRU order and metrics are
// untouched. Cluster tests use it to assert that each key is warm on
// exactly one node.
func (c *Cache[V]) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.slots))
	for key, slot := range c.slots {
		select {
		case <-slot.ready:
			out = append(out, key)
		default:
		}
	}
	return out
}

// Len returns the number of cached (or in-flight) entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.slots)
}

// Counts reports the completed entries resident in the cache and how
// many of them are negative verdicts. In-flight builds are excluded;
// the LRU order and the metrics are untouched (introspection only).
func (c *Cache[V]) Counts() (entries, negatives int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, slot := range c.slots {
		select {
		case <-slot.ready:
			entries++
			if slot.negative {
				negatives++
			}
		default:
		}
	}
	return entries, negatives
}

// SamplerCache is the prepared-sampler cache: a singleflight LRU over
// (database, target, Options) keys whose values are warm *Prepared
// instances.
type SamplerCache = Cache[*Prepared]

// NewSamplerCache returns a sampler cache holding at most capacity
// prepared samplers (minimum 1). hooks may be nil.
func NewSamplerCache(capacity int, hooks Hooks) *SamplerCache {
	return NewCache[*Prepared](capacity, hooks)
}
