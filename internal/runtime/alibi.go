package runtime

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/spacetime"
)

// PreparedAlibi is the warm form of an alibi query "could A and B have
// met during [t0, t1]?": the meet region, its exact Fourier–Motzkin
// meeting-time intervals and the prepared volume observable over the
// non-degenerate part of the region, all computed once. Replays only
// bind seeds — the region construction, the elimination pass and the
// rounding/volume setup are never repeated for the same
// (database, a, b, t0, t1, options) key.
type PreparedAlibi struct {
	times        []spacetime.Interval
	window       spacetime.Interval
	regionTuples int
	prunedTuples int
	prep         *Prepared // nil when every region tuple is degenerate
	eps, delta   float64
}

func alibiCacheName(a, b string, t0, t1 float64) string {
	return a + "\x1e" + b + "@" + strconv.FormatFloat(t0, 'g', -1, 64) + ":" + strconv.FormatFloat(t1, 'g', -1, 64)
}

// AlibiKey is the cache key PreparedAlibi stores under — exported for
// the cluster routing layer. optsKey is Options.CacheKey().
func AlibiKey(dbID, a, b string, t0, t1 float64, optsKey string) string {
	return SamplerKey(dbID, "alibi", alibiCacheName(a, b, t0, t1), optsKey)
}

// PreparedAlibi returns the cached alibi preparation for (a, b, [t0, t1]),
// building it on first use.
func (rt *Runtime) PreparedAlibi(e *DatabaseEntry, aName, bName string, t0, t1 float64, opts core.Options) (*PreparedAlibi, bool, error) {
	key := AlibiKey(e.ID, aName, bName, t0, t1, opts.CacheKey())
	pa, hit, err := rt.alibis.Get(key, func() (*PreparedAlibi, error) {
		relA, err := spacetimeRelation(e, aName)
		if err != nil {
			return nil, fmt.Errorf("a: %w", err)
		}
		relB, err := spacetimeRelation(e, bName)
		if err != nil {
			return nil, fmt.Errorf("b: %w", err)
		}
		start := time.Now()
		pa, err := PrepareAlibi(relA, relB, t0, t1, PrepSeedFor(key), opts)
		if err == nil {
			c := rt.costs.For(key)
			c.Preps.Add(1)
			c.PrepNanos.Add(time.Since(start).Nanoseconds())
		}
		return pa, err
	})
	return pa, hit, err
}

// PrepareAlibi runs the full alibi setup: meet region construction, the
// exact Fourier–Motzkin meeting-time elimination, degenerate-tuple
// pruning and — when the region has positive measure — the prepared
// sampler over it under prepSeed.
func PrepareAlibi(relA, relB *constraint.Relation, t0, t1 float64, prepSeed uint64, opts core.Options) (*PreparedAlibi, error) {
	timeCol := spacetime.TimeColumn(relA)
	region, err := spacetime.MeetRegion(relA, relB, timeCol, t0, t1)
	if err != nil {
		return nil, err
	}
	times := spacetime.MeetTimesOf(region, timeCol)
	p := opts.Params
	if p.Gamma == 0 && p.Eps == 0 && p.Delta == 0 {
		p = core.DefaultParams()
	}
	pa := &PreparedAlibi{
		times:  times,
		window: spacetime.Interval{Lo: t0, Hi: t1},
		eps:    p.Eps,
		delta:  p.Delta,
	}
	fat, pruned := spacetime.PruneThin(region, 0)
	pa.prunedTuples = pruned
	pa.regionTuples = len(fat.Tuples)
	if len(fat.Tuples) == 0 {
		return pa, nil
	}
	prep, err := Prepare(fat, prepSeed, opts)
	if err != nil {
		return nil, fmt.Errorf("runtime: alibi meet-region preparation: %w", err)
	}
	pa.prep = prep
	return pa, nil
}

// Report binds seed to the warm meet-region geometry and returns the
// two-sided alibi verdict, exactly shaped like spacetime.Alibi's. k > 1
// amplifies the meeting-volume confidence with a median of k
// independently seeded acceptance passes (single-tuple regions reuse
// the preparation-time estimate, which is already an (ε, δ) answer).
func (pa *PreparedAlibi) Report(ctx context.Context, seed uint64, k int) (*spacetime.Report, error) {
	rep := &spacetime.Report{
		SymbolicMeet: len(pa.times) > 0,
		MeetTimes:    pa.times,
		RelErr:       pa.eps,
		Confidence:   1 - pa.delta,
		Window:       pa.window,
		RegionTuples: pa.regionTuples,
		PrunedTuples: pa.prunedTuples,
	}
	if pa.prep == nil {
		rep.Consistent = rep.Meet == rep.SymbolicMeet
		return rep, nil
	}
	var vol float64
	var err error
	if k <= 1 {
		vol, err = pa.prep.VolumeCtx(ctx, seed)
	} else {
		vol, err = pa.prep.MedianVolumeCtx(ctx, k, seed)
	}
	if err != nil {
		return nil, fmt.Errorf("runtime: alibi volume estimate: %w", err)
	}
	rep.Volume = vol
	rep.Meet = vol > 0
	rep.Consistent = rep.Meet == rep.SymbolicMeet
	return rep, nil
}
