package runtime

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/query"
)

// recordingSink counts events per (kind, outcome) plus the pool/draw
// events — the richer delivery surface the legacy countingHooks cannot
// see.
type recordingSink struct {
	mu        sync.Mutex
	events    map[obs.CacheKind]map[obs.CacheOutcome]int
	coalesced int
	jobs      int
}

func newRecordingSink() *recordingSink {
	return &recordingSink{events: map[obs.CacheKind]map[obs.CacheOutcome]int{}}
}

func (s *recordingSink) CacheEvent(kind obs.CacheKind, outcome obs.CacheOutcome) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.events[kind]
	if m == nil {
		m = map[obs.CacheOutcome]int{}
		s.events[kind] = m
	}
	m[outcome]++
}

func (s *recordingSink) CoalescedDraw() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.coalesced++
}

func (s *recordingSink) BatchJob() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs++
}

func (s *recordingSink) count(kind obs.CacheKind, outcome obs.CacheOutcome) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.events[kind][outcome]
}

// TestSinkPerKindEvents: every cache kind reports its own events —
// plan misses/hits, symbolic misses/hits, alibi misses/hits — and
// negative verdicts surface as negative hits, not plain hits.
func TestSinkPerKindEvents(t *testing.T) {
	sink := newRecordingSink()
	rt := NewWithSink(Config{PoolSize: 2, CacheSize: 8}, sink)
	t.Cleanup(rt.Close)
	entry, _, err := rt.Registry().Register("motion", motionProgram)
	if err != nil {
		t.Fatal(err)
	}
	opts := testOptions()
	ctx := context.Background()

	// Plan kind: cold build then warm hit.
	if _, _, hit, err := rt.PreparedFor(entry, "A", "", opts); err != nil || hit {
		t.Fatalf("cold PreparedFor: hit=%v err=%v", hit, err)
	}
	if _, _, hit, err := rt.PreparedFor(entry, "A", "", opts); err != nil || !hit {
		t.Fatalf("warm PreparedFor: hit=%v err=%v", hit, err)
	}
	if got := sink.count(obs.KindPlan, obs.Miss); got != 1 {
		t.Fatalf("plan misses = %d, want 1", got)
	}
	if got := sink.count(obs.KindPlan, obs.Hit); got != 1 {
		t.Fatalf("plan hits = %d, want 1", got)
	}

	// Negative plan verdict (empty slice) replays as a negative hit.
	if _, _, _, err := rt.PreparedSlice(entry, "A", 99, opts); !errors.Is(err, ErrEmptySlice) {
		t.Fatalf("cold empty slice: %v", err)
	}
	if _, _, hit, err := rt.PreparedSlice(entry, "A", 99, opts); !errors.Is(err, ErrEmptySlice) || !hit {
		t.Fatalf("replayed empty slice: hit=%v err=%v", hit, err)
	}
	if got := sink.count(obs.KindPlan, obs.NegativeHit); got != 1 {
		t.Fatalf("plan negative hits = %d, want 1", got)
	}
	if got := sink.count(obs.KindPlan, obs.Hit); got != 1 {
		t.Fatalf("plan hits after negative replay = %d, want still 1", got)
	}

	// Symbolic kind.
	cp, err := canonicalFor(entry, "A", "", opts)
	if err != nil {
		t.Fatal(err)
	}
	sq := query.SymbolicFromPlan(cp)
	if _, _, hit, err := rt.Symbolic(ctx, entry, sq); err != nil || hit {
		t.Fatalf("cold Symbolic: hit=%v err=%v", hit, err)
	}
	if _, _, hit, err := rt.Symbolic(ctx, entry, sq); err != nil || !hit {
		t.Fatalf("warm Symbolic: hit=%v err=%v", hit, err)
	}
	if got := sink.count(obs.KindSymbolic, obs.Miss); got != 1 {
		t.Fatalf("symbolic misses = %d, want 1", got)
	}
	if got := sink.count(obs.KindSymbolic, obs.Hit); got != 1 {
		t.Fatalf("symbolic hits = %d, want 1", got)
	}

	// Alibi kind.
	if _, hit, err := rt.PreparedAlibi(entry, "A", "B", 0, 10, opts); err != nil || hit {
		t.Fatalf("cold PreparedAlibi: hit=%v err=%v", hit, err)
	}
	if _, hit, err := rt.PreparedAlibi(entry, "A", "B", 0, 10, opts); err != nil || !hit {
		t.Fatalf("warm PreparedAlibi: hit=%v err=%v", hit, err)
	}
	if got := sink.count(obs.KindAlibi, obs.Miss); got != 1 {
		t.Fatalf("alibi misses = %d, want 1", got)
	}
	if got := sink.count(obs.KindAlibi, obs.Hit); got != 1 {
		t.Fatalf("alibi hits = %d, want 1", got)
	}

	// Kinds never bleed into each other: the plan counters are
	// untouched by the symbolic and alibi traffic above.
	if got := sink.count(obs.KindPlan, obs.Miss); got != 2 { // A + empty slice
		t.Fatalf("plan misses after other kinds = %d, want 2", got)
	}

	// Preparation costs landed under the prepared keys.
	_, key, _, err := rt.PreparedFor(entry, "A", "", opts)
	if err != nil {
		t.Fatal(err)
	}
	snap, ok := rt.Costs().Snapshot(key)
	if !ok || snap.Preps != 1 || snap.PrepNanos <= 0 {
		t.Fatalf("prep cost for %q = %+v ok=%v", key, snap, ok)
	}
	ssnap, ok := rt.Costs().Snapshot(SymbolicKey(entry.ID, sq.Key))
	if !ok || ssnap.Evals != 1 {
		t.Fatalf("symbolic cost = %+v ok=%v", ssnap, ok)
	}
}

// TestDrawCostsAndCoalescedNoDoubleCount: a coalesced draw's effort is
// attributed exactly once (by the initiator); the waiter records only
// the coalesced counter.
func TestDrawCostsAndCoalescedNoDoubleCount(t *testing.T) {
	sink := newRecordingSink()
	// One pool worker: a blocker job parks the initiator's draw in the
	// job queue, guaranteeing it is still in flight when the second
	// caller looks it up.
	rt := NewWithSink(Config{PoolSize: 1, CacheSize: 8}, sink)
	t.Cleanup(rt.Close)
	entry, _, err := rt.Registry().Register("motion", motionProgram)
	if err != nil {
		t.Fatal(err)
	}
	opts := testOptions()
	ps, key, _, err := rt.PreparedFor(entry, "A", "", opts)
	if err != nil {
		t.Fatal(err)
	}

	exec := rt.Executor()
	const n, w, seed = 16, 2, 42

	release := make(chan struct{})
	exec.pool.Submit(func() { <-release })

	type result struct {
		coalesced bool
		err       error
	}
	first := make(chan result, 1)
	go func() {
		_, co, err := exec.SampleMany(key, ps, n, w, seed)
		first <- result{co, err}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		exec.mu.Lock()
		registered := len(exec.inflight) > 0
		exec.mu.Unlock()
		if registered {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("initiator never registered its draw")
		}
		time.Sleep(100 * time.Microsecond)
	}
	// While the blocker holds the pool the draw cannot complete, so the
	// second call below is guaranteed to join it. The draw is released
	// shortly after — the waiter's select fires on the closed ready
	// channel whichever order the two events land in.
	time.AfterFunc(100*time.Millisecond, func() { close(release) })
	_, co2, err := exec.SampleMany(key, ps, n, w, seed)
	if err != nil {
		t.Fatal(err)
	}
	r1 := <-first
	if r1.err != nil {
		t.Fatal(r1.err)
	}
	if r1.coalesced || !co2 {
		t.Fatalf("want initiator uncoalesced and second caller coalesced, got %v and %v", r1.coalesced, co2)
	}

	snap, ok := rt.Costs().Snapshot(key)
	if !ok {
		t.Fatalf("no cost recorded under %q", key)
	}
	if snap.Draws != 1 {
		t.Fatalf("Draws = %d, want 1 (coalesced waiter must not double-count)", snap.Draws)
	}
	if snap.Samples != n {
		t.Fatalf("Samples = %d, want %d", snap.Samples, n)
	}
	if snap.Binds != w || snap.BindNanos <= 0 {
		t.Fatalf("Binds = %d (nanos %d), want %d binds", snap.Binds, snap.BindNanos, w)
	}
	if snap.WalkSteps <= 0 || snap.OracleCalls <= 0 {
		t.Fatalf("draw effort missing: %+v", snap)
	}
	if snap.Coalesced != 1 {
		t.Fatalf("Coalesced = %d, want 1", snap.Coalesced)
	}
	if sink.coalesced != 1 {
		t.Fatalf("sink coalesced = %d, want 1", sink.coalesced)
	}

	// Per-member attribution: relation A is a single convex tuple, so
	// member 0 carries the whole walk effort.
	msnap, ok := rt.Costs().Snapshot(key + "#0")
	if !ok || msnap.WalkSteps != snap.WalkSteps {
		t.Fatalf("member cost = %+v ok=%v, want walk steps %d", msnap, ok, snap.WalkSteps)
	}
}

// TestSampleBatchSpan: a traced context grows a sample.batch span
// carrying the sampler key and the draw's effort counters.
func TestSampleBatchSpan(t *testing.T) {
	rt := NewWithSink(Config{PoolSize: 2, CacheSize: 8}, nil)
	t.Cleanup(rt.Close)
	entry, _, err := rt.Registry().Register("motion", motionProgram)
	if err != nil {
		t.Fatal(err)
	}
	opts := testOptions()
	ps, key, _, err := rt.PreparedFor(entry, "A", "", opts)
	if err != nil {
		t.Fatal(err)
	}

	ctx, root := obs.NewTrace(context.Background(), "test")
	if _, _, err := rt.Executor().SampleManyCtx(ctx, key, ps, 8, 2, 1); err != nil {
		t.Fatal(err)
	}
	root.End()
	kids := root.Children()
	if len(kids) != 1 || kids[0].Name() != "sample.batch" {
		t.Fatalf("children = %v", kids)
	}
	sp := kids[0]
	if sp.Key() != key {
		t.Fatalf("span key = %q, want %q", sp.Key(), key)
	}
	counters := map[string]int64{}
	for _, c := range sp.Counters() {
		counters[c.Name] = c.Value
	}
	if counters["n"] != 8 || counters["samples"] != 8 {
		t.Fatalf("span counters = %v", counters)
	}
	if counters["walk_steps"] <= 0 || counters["oracle_calls"] <= 0 {
		t.Fatalf("span missing walk effort: %v", counters)
	}
}
