// Package runtime is the shared warm-geometry runtime behind every
// surface of the library: the cdb.DB handle, the cdbserve HTTP service
// and the command-line tools all drive the same three mechanisms:
//
//   - a Registry of parsed constraint database programs (parse once,
//     sample forever),
//   - a singleflight LRU Cache of prepared samplers, so the expensive
//     rounding/well-boundedness/volume setup is paid once per
//     (database, target, options) and every later request binds its
//     seed to the warm geometry — including negative entries for
//     provably empty targets (an out-of-support time slice replays as
//     an O(1) cached verdict instead of a repeated failed build), and
//   - a bounded worker Pool with a batch Executor that coalesces
//     identical concurrent draws.
//
// The paper's pipeline — prepare a (γ, ε, δ)-generator once, then draw
// cheap almost-uniform samples and volume estimates from it — is a
// connection/statement lifecycle, and this package is the connection
// pool. Everything here is safe for concurrent use.
package runtime

import (
	"hash/fnv"
	"runtime"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/quality"
)

// Hooks is the legacy five-counter event interface. It predates
// obs.Sink, which additionally attributes cache events to their kind
// (plan / symbolic / alibi) and distinguishes negative hits; new
// integrations should implement obs.Sink and use NewWithSink. A Hooks
// value that also implements obs.Sink receives the richer events
// directly; otherwise events are folded down (hits and negative hits
// both land on CacheHit). All methods must be safe for concurrent use.
// A nil Hooks is valid and drops every event.
type Hooks interface {
	// CacheHit records a prepared-sampler cache hit (including negative
	// entries and joins of an in-flight build).
	CacheHit()
	// CacheMiss records a cold build.
	CacheMiss()
	// CacheEviction records an LRU eviction.
	CacheEviction()
	// CoalescedDraw records a batched draw served by an identical
	// in-flight draw.
	CoalescedDraw()
	// BatchJob records one worker-pool job execution.
	BatchJob()
}

// sinkFor adapts a legacy Hooks onto obs.Sink: nil stays nil, a Hooks
// that already implements obs.Sink is used directly, anything else is
// wrapped so kind information is dropped and negative hits fold onto
// CacheHit — exactly the aggregation the five counters always had.
func sinkFor(h Hooks) obs.Sink {
	if h == nil {
		return nil
	}
	if s, ok := h.(obs.Sink); ok {
		return s
	}
	return legacySink{h}
}

type legacySink struct{ h Hooks }

func (l legacySink) CacheEvent(_ obs.CacheKind, outcome obs.CacheOutcome) {
	switch outcome {
	case obs.Hit, obs.NegativeHit:
		l.h.CacheHit()
	case obs.Miss:
		l.h.CacheMiss()
	case obs.Eviction:
		l.h.CacheEviction()
	}
}
func (l legacySink) CoalescedDraw() { l.h.CoalescedDraw() }
func (l legacySink) BatchJob()      { l.h.BatchJob() }

// Config tunes the runtime. The zero value picks sensible defaults.
type Config struct {
	// PoolSize is the sampling worker pool size (default GOMAXPROCS).
	PoolSize int
	// CacheSize caps each prepared LRU — samplers and alibi preparations
	// (default 64).
	CacheSize int
	// MaxDatabases caps the registry (default 1024; negative = unbounded).
	MaxDatabases int
}

func (c Config) withDefaults() Config {
	if c.PoolSize <= 0 {
		c.PoolSize = runtime.GOMAXPROCS(0)
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 64
	}
	switch {
	case c.MaxDatabases == 0:
		c.MaxDatabases = 1024
	case c.MaxDatabases < 0:
		c.MaxDatabases = 0 // registry convention: 0 = unbounded
	}
	return c
}

// Runtime owns the registry, the prepared caches and the worker pool —
// one shared, concurrency-safe instance per handle or server.
type Runtime struct {
	cfg      Config
	registry *Registry
	cache    *SamplerCache
	alibis   *Cache[*PreparedAlibi]
	symbolic *Cache[*SymbolicEntry]
	pool     *Pool
	exec     *Executor

	// planKeys maps name-addressed targets — (db, kind, name, options)
	// — to the canonical plan key of their prepared geometry, so warm
	// name lookups skip the planning pass entirely. It is itself a
	// singleflight cache: a thundering herd of identical cold requests
	// runs the planning pass (NNF/DNF expansion plus LP pruning) once,
	// not once per caller. Hookless — alias lookups are bookkeeping,
	// not prepared-cache traffic.
	planKeys *Cache[string]

	// costs is the observed per-key cost table: preparation time, walk
	// effort and elimination effort attributed to the same canonical
	// keys the caches use — the measured input of a cost-based planner.
	costs *obs.Costs

	// quality accumulates per-sampler statistical diagnostics (cell
	// counts, member shares, mixing) under the same keys; auditor is
	// the background self-audit cross-checking warm entries against
	// exact symbolic volumes.
	quality *quality.Tracker
	auditor *Auditor
}

// maxPlanKeys bounds the name → plan-key alias cache.
const maxPlanKeys = 4096

// maxCostKeys bounds the observed-cost table (plan keys plus their
// per-disjunct "key#i" sub-entries, symbolic and alibi keys).
const maxCostKeys = 4096

// New builds a runtime from cfg. hooks may be nil (see Hooks for how
// legacy hooks fold the per-kind cache events).
func New(cfg Config, hooks Hooks) *Runtime {
	return NewWithSink(cfg, sinkFor(hooks))
}

// NewWithSink builds a runtime whose events report through an obs.Sink
// with full per-kind cache attribution. sink may be nil.
func NewWithSink(cfg Config, sink obs.Sink) *Runtime {
	cfg = cfg.withDefaults()
	costs := obs.NewCosts(maxCostKeys)
	qt := quality.NewTracker(0)
	pool := newPool(cfg.PoolSize, sink)
	rt := &Runtime{
		cfg:      cfg,
		registry: NewRegistry(cfg.MaxDatabases),
		cache:    NewKindCache[*Prepared](cfg.CacheSize, obs.KindPlan, sink),
		alibis:   NewKindCache[*PreparedAlibi](cfg.CacheSize, obs.KindAlibi, sink),
		symbolic: NewKindCache[*SymbolicEntry](cfg.CacheSize, obs.KindSymbolic, sink),
		pool:     pool,
		exec:     newExecutor(pool, sink, costs),
		planKeys: NewCache[string](maxPlanKeys, nil),
		costs:    costs,
		quality:  qt,
	}
	rt.exec.quality = qt
	rt.auditor = newAuditor(rt, sink)
	return rt
}

// Close stops the background auditor, then the worker pool after
// draining queued jobs.
func (rt *Runtime) Close() {
	rt.auditor.Close()
	rt.pool.Close()
}

// Registry returns the database registry.
func (rt *Runtime) Registry() *Registry { return rt.registry }

// Cache returns the prepared-sampler cache.
func (rt *Runtime) Cache() *SamplerCache { return rt.cache }

// AlibiCache returns the prepared-alibi cache.
func (rt *Runtime) AlibiCache() *Cache[*PreparedAlibi] { return rt.alibis }

// SymbolicCache returns the prepared-symbolic cache: eliminated
// (quantifier-free DNF) relations, plus their lazily computed exact
// volumes, keyed by canonical plan hash.
func (rt *Runtime) SymbolicCache() *Cache[*SymbolicEntry] { return rt.symbolic }

// Pool returns the bounded worker pool.
func (rt *Runtime) Pool() *Pool { return rt.pool }

// Costs returns the observed per-key cost table.
func (rt *Runtime) Costs() *obs.Costs { return rt.costs }

// Quality returns the statistical-quality tracker.
func (rt *Runtime) Quality() *quality.Tracker { return rt.quality }

// Auditor returns the background self-auditor. It exists from
// construction; its background loop runs only after Start.
func (rt *Runtime) Auditor() *Auditor { return rt.auditor }

// RecordVolumeAccuracy adds one volume estimate's (ε, δ) ledger under
// key — requested vs achieved half-width and confidence.
func (rt *Runtime) RecordVolumeAccuracy(key string, acc core.VolumeAccuracy) {
	rt.costs.For(key).RecordVolume(
		acc.RequestedEps, acc.AchievedEps, acc.RequestedDelta, acc.AchievedDelta, acc.Capped)
}

// Executor returns the batch executor over the pool.
func (rt *Runtime) Executor() *Executor { return rt.exec }

// SamplerKey is the prepared cache key: database, target kind ("rel",
// "query", "slice", "window", "alibi"), target name and the canonical
// options fingerprint.
func SamplerKey(dbID, kind, name, optsKey string) string {
	return dbID + "\x1f" + kind + "\x1f" + name + "\x1f" + optsKey
}

// PrepSeedFor derives the preparation seed from the cache key, so the
// prepared geometry — and therefore every response — is a pure function
// of (database, target, options), stable across restarts.
func PrepSeedFor(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}
