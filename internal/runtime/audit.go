package runtime

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/obs/quality"
	"repro/internal/polytope"
)

// AuditConfig tunes the background self-audit of warm cached samplers
// against their exact symbolic volumes. The zero value picks defaults;
// Interval 0 disables the background loop (RunOnce stays available).
type AuditConfig struct {
	// Interval between background audit sweeps (0 = no background
	// goroutine; audits run only via RunOnce).
	Interval time.Duration
	// Batch is the number of fresh draws per audited entry per round
	// (default 256).
	Batch int
	// Workers is the number of concurrent per-entry audits inside one
	// sweep (default 1).
	Workers int
	// MaxCells caps the cell partition (default 16).
	MaxCells int
	// MaxAuditDim and MaxAuditTuples bound the entries eligible for
	// exact cross-checks — the inclusion–exclusion oracle is 2^tuples
	// and cell integration multiplies by MaxCells, so audits stay in
	// the small-description regime where exact answers are feasible
	// (defaults 4 and 8).
	MaxAuditDim    int
	MaxAuditTuples int
	// WarnZ and FailZ are the tolerance-normalized z-score thresholds
	// of the ε-tolerance cell test (defaults 3 and 4). The ε allowance
	// itself comes from the audited sampler's own Params.Eps — a
	// correct generator that is merely ε-close must pass.
	WarnZ, FailZ float64
}

func (c AuditConfig) withDefaults() AuditConfig {
	if c.Batch <= 0 {
		c.Batch = 256
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.MaxCells <= 0 {
		c.MaxCells = 16
	}
	if c.MaxAuditDim <= 0 {
		c.MaxAuditDim = 4
	}
	if c.MaxAuditTuples <= 0 {
		c.MaxAuditTuples = 8
	}
	if c.WarnZ <= 0 {
		c.WarnZ = 3
	}
	if c.FailZ <= 0 {
		c.FailZ = 4
	}
	return c
}

// maxAuditables bounds the audit registry.
const maxAuditables = 1024

// auditable is one registered warm sampler: the derived quantifier-free
// relation (the symbolic oracle's input), the prepared geometry to
// re-draw from, and the memoized exact references.
type auditable struct {
	key string
	rel *constraint.Relation
	ps  *Prepared

	once      sync.Once
	exactErr  error
	cellProbs []float64
	shares    []float64
	vol       float64

	rounds atomic.Int64
}

// AuditStats summarizes the auditor's lifetime counters.
type AuditStats struct {
	// Enabled reports a running background loop.
	Enabled bool `json:"enabled"`
	// Entries is the number of registered auditable samplers.
	Entries int `json:"entries"`
	// Rounds counts completed per-entry audit rounds; Passes/Warns/
	// Fails count emitted events by outcome.
	Rounds int64 `json:"rounds"`
	Passes int64 `json:"passes"`
	Warns  int64 `json:"warns"`
	Fails  int64 `json:"fails"`
	// Flagged lists the cache keys currently quarantined by a failing
	// audit (flagged in reports and Explain — never evicted).
	Flagged []string `json:"flagged,omitempty"`
}

// Auditor periodically re-draws small batches from warm cache entries
// and cross-checks empirical cell masses and canonical member shares
// against exact symbolic volumes. Verdicts are emitted as typed
// obs.AuditEvents and recorded on the quality tracker; failing entries
// are flagged, never evicted — quarantine is visible, not silent.
type Auditor struct {
	rt   *Runtime
	cfg  AuditConfig
	sink obs.AuditSink // may be nil

	mu      sync.Mutex
	entries map[string]*auditable

	rounds, passes, warns, fails atomic.Int64

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
	running   atomic.Bool
}

// newAuditor builds the auditor over rt. sink is the runtime's obs
// sink when it also implements obs.AuditSink.
func newAuditor(rt *Runtime, sink obs.Sink) *Auditor {
	a := &Auditor{
		rt:      rt,
		cfg:     AuditConfig{}.withDefaults(),
		entries: map[string]*auditable{},
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if as, ok := sink.(obs.AuditSink); ok {
		a.sink = as
	}
	return a
}

// Configure replaces the auditor's configuration. Call before Start.
func (a *Auditor) Configure(cfg AuditConfig) {
	a.mu.Lock()
	a.cfg = cfg.withDefaults()
	a.mu.Unlock()
}

// config returns a copy of the current configuration.
func (a *Auditor) config() AuditConfig {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cfg
}

// register adds a warm sampler to the audit registry when it is in the
// auditable fragment: bounded description (the derived relation is
// always quantifier-free DNF — PR 5's symbolic fragment), small enough
// for the exact inclusion–exclusion oracle.
func (a *Auditor) register(key string, rel *constraint.Relation, ps *Prepared) {
	cfg := a.config()
	if rel.Arity() > cfg.MaxAuditDim || len(rel.Tuples) > cfg.MaxAuditTuples {
		return
	}
	if _, _, ok := ps.BoundingBox(); !ok {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, dup := a.entries[key]; dup || len(a.entries) >= maxAuditables {
		return
	}
	a.entries[key] = &auditable{key: key, rel: rel, ps: ps}
}

// Start launches the background sweep loop at the configured interval.
// A zero interval (or a second Start) is a no-op. The loop stops with
// the runtime's Close.
func (a *Auditor) Start() {
	cfg := a.config()
	if cfg.Interval <= 0 {
		return
	}
	a.startOnce.Do(func() {
		a.running.Store(true)
		go func() {
			defer close(a.done)
			ticker := time.NewTicker(cfg.Interval)
			defer ticker.Stop()
			for {
				select {
				case <-a.stop:
					return
				case <-ticker.C:
					ctx, cancel := context.WithCancel(context.Background())
					go func() {
						select {
						case <-a.stop:
							cancel()
						case <-ctx.Done():
						}
					}()
					_, _ = a.RunOnce(ctx)
					cancel()
				}
			}
		}()
	})
}

// Close stops the background loop and waits for an in-flight sweep.
func (a *Auditor) Close() {
	a.stopOnce.Do(func() { close(a.stop) })
	if a.running.Load() {
		<-a.done
		a.running.Store(false)
	}
}

// Stats returns the auditor's lifetime counters and the currently
// flagged keys.
func (a *Auditor) Stats() AuditStats {
	a.mu.Lock()
	entries := len(a.entries)
	a.mu.Unlock()
	return AuditStats{
		Enabled: a.running.Load(),
		Entries: entries,
		Rounds:  a.rounds.Load(),
		Passes:  a.passes.Load(),
		Warns:   a.warns.Load(),
		Fails:   a.fails.Load(),
		Flagged: a.rt.Quality().Flagged(),
	}
}

// RunOnce audits every registered warm entry once (entries evicted
// from the sampler cache are skipped, not forgotten) and returns the
// emitted events sorted by key. Safe to call concurrently with the
// background loop — rounds are per-entry seeded, so verdicts stay
// deterministic per (key, round).
func (a *Auditor) RunOnce(ctx context.Context) ([]obs.AuditEvent, error) {
	a.mu.Lock()
	keys := make([]string, 0, len(a.entries))
	for k := range a.entries {
		keys = append(keys, k)
	}
	ents := make([]*auditable, 0, len(keys))
	sort.Strings(keys)
	for _, k := range keys {
		ents = append(ents, a.entries[k])
	}
	a.mu.Unlock()

	cfg := a.config()
	events := make([][]obs.AuditEvent, len(ents))
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	for i, ent := range ents {
		if err := ctx.Err(); err != nil {
			return flatEvents(events), err
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, ent *auditable) {
			defer wg.Done()
			defer func() { <-sem }()
			events[i] = a.auditOne(ctx, ent, cfg)
		}(i, ent)
	}
	wg.Wait()
	return flatEvents(events), ctx.Err()
}

func flatEvents(evs [][]obs.AuditEvent) []obs.AuditEvent {
	var out []obs.AuditEvent
	for _, e := range evs {
		out = append(out, e...)
	}
	return out
}

// auditOne runs one audit round for a single registered entry: ensure
// the exact references, re-draw a batch with a deterministic per-round
// seed, run the ε-tolerance cell and share tests, emit and record the
// verdicts.
func (a *Auditor) auditOne(ctx context.Context, ent *auditable, cfg AuditConfig) []obs.AuditEvent {
	cached, negative := a.rt.cache.Peek(ent.key)
	if !cached || negative {
		return nil
	}
	qt := a.rt.Quality()
	lo, hi, ok := ent.ps.BoundingBox()
	if !ok {
		return nil
	}
	qt.Bind(ent.key, lo, hi, ent.ps.MemberVolumes())
	part := qt.Partition(ent.key)
	if part == nil {
		return nil
	}
	ent.once.Do(func() { a.computeExact(ctx, ent, part) })
	if ent.exactErr != nil {
		return nil
	}
	if !qt.HasExact(ent.key) {
		qt.SetExact(ent.key, ent.cellProbs, ent.shares, ent.vol)
	}

	round := ent.rounds.Add(1)
	seed := PrepSeedFor(ent.key+"\x1faudit") + uint64(round)
	o, err := ent.ps.NewObservableCtx(ctx, seed)
	if err != nil {
		return nil
	}
	counts := make([]int64, part.Cells())
	memberDraws := make([]int64, len(ent.shares))
	pts := make([]linalg.Vector, 0, cfg.Batch)
	for i := 0; i < cfg.Batch; i++ {
		if ctx.Err() != nil {
			return nil
		}
		x, err := o.Sample()
		if err != nil {
			continue
		}
		counts[part.CellOf(x)]++
		if j := ent.rel.CanonicalIndex(x); j >= 0 && j < len(memberDraws) {
			memberDraws[j]++
		}
		pts = append(pts, x)
	}
	if len(pts) == 0 {
		return nil
	}

	p := ent.ps.Options().Params
	if p.Eps <= 0 {
		p = core.DefaultParams()
	}
	evs := []obs.AuditEvent{
		a.verdict(ent.key, "cells", quality.CellTest(counts, ent.cellProbs, p.Eps), cfg),
		a.verdict(ent.key, "shares", quality.CellTest(memberDraws, ent.shares, p.Eps), cfg),
	}
	qt.RecordAudit(ent.key, evs)
	// Feed the audit draws into the streaming accumulators too: they
	// are real draws from the warm sampler, so audits of otherwise idle
	// entries still advance the cell counts and the drift window.
	qt.ObserveDraw(ent.key, pts, quality.Effort{MemberDraws: memberDraws, Accepts: int64(len(pts))})
	for _, ev := range evs {
		a.count(ev)
		if a.sink != nil {
			a.sink.AuditEvent(ev)
		}
	}
	a.rounds.Add(1)
	return evs
}

// verdict maps a cell-test result onto a typed audit event.
func (a *Auditor) verdict(key, check string, v quality.CellVerdict, cfg AuditConfig) obs.AuditEvent {
	out := obs.AuditPass
	switch {
	case v.Worst > cfg.FailZ:
		out = obs.AuditFail
	case v.Worst > cfg.WarnZ:
		out = obs.AuditWarn
	}
	ev := obs.AuditEvent{
		Key:       key,
		Check:     check,
		Outcome:   out,
		Stat:      v.Worst,
		Threshold: cfg.FailZ,
		Samples:   int(v.Samples),
	}
	if v.Cell >= 0 {
		ev.Detail = fmt.Sprintf("worst %s index %d", checkNoun(check), v.Cell)
	}
	return ev
}

func checkNoun(check string) string {
	if check == "shares" {
		return "member"
	}
	return "cell"
}

func (a *Auditor) count(ev obs.AuditEvent) {
	switch ev.Outcome {
	case obs.AuditFail:
		a.fails.Add(1)
	case obs.AuditWarn:
		a.warns.Add(1)
	default:
		a.passes.Add(1)
	}
}

// computeExact derives the exact references for one entry from the
// symbolic oracle: total inclusion–exclusion volume, canonical member
// shares (cumulative prefix volumes V_i − V_{i−1} — the mass member i
// contributes canonically, which for overlapping members is NOT its
// plain volume share), and per-cell masses by integrating the relation
// restricted to each partition cell.
func (a *Auditor) computeExact(ctx context.Context, ent *auditable, part *quality.Partition) {
	interrupt := func() error { return ctx.Err() }
	vol, err := polytope.RelationVolumeInterruptible(ent.rel, interrupt)
	if err != nil {
		ent.exactErr = err
		return
	}
	if vol <= 0 {
		ent.exactErr = fmt.Errorf("runtime: audit oracle: zero exact volume for %q", ent.key)
		return
	}
	ent.vol = vol

	m := len(ent.rel.Tuples)
	ent.shares = make([]float64, m)
	prev := 0.0
	for i := 1; i <= m; i++ {
		var vi float64
		if i == m {
			vi = vol
		} else {
			prefix, err := constraint.NewRelation(ent.rel.Name, ent.rel.Vars, ent.rel.Tuples[:i]...)
			if err != nil {
				ent.exactErr = err
				return
			}
			vi, err = polytope.RelationVolumeInterruptible(prefix, interrupt)
			if err != nil {
				ent.exactErr = err
				return
			}
		}
		ent.shares[i-1] = (vi - prev) / vol
		if ent.shares[i-1] < 0 {
			ent.shares[i-1] = 0
		}
		prev = vi
	}

	ent.cellProbs = make([]float64, part.Cells())
	for c := 0; c < part.Cells(); c++ {
		lo, hi := part.CellBounds(c)
		restricted, err := restrictToBox(ent.rel, lo, hi)
		if err != nil {
			ent.exactErr = err
			return
		}
		cv, err := polytope.RelationVolumeInterruptible(restricted, interrupt)
		if err != nil {
			ent.exactErr = err
			return
		}
		ent.cellProbs[c] = cv / vol
	}
}

// restrictToBox conjoins the box [lo, hi] onto every tuple of rel.
func restrictToBox(rel *constraint.Relation, lo, hi linalg.Vector) (*constraint.Relation, error) {
	d := rel.Arity()
	tuples := make([]constraint.Tuple, 0, len(rel.Tuples))
	for _, t := range rel.Tuples {
		atoms := make([]constraint.Atom, 0, len(t.Atoms)+2*d)
		atoms = append(atoms, t.Atoms...)
		for i := 0; i < d; i++ {
			up := make(linalg.Vector, d)
			up[i] = 1
			atoms = append(atoms, constraint.NewAtom(up, hi[i], false))
			down := make(linalg.Vector, d)
			down[i] = -1
			atoms = append(atoms, constraint.NewAtom(down, -lo[i], false))
		}
		tuples = append(tuples, constraint.NewTuple(d, atoms...))
	}
	return constraint.NewRelation(rel.Name, rel.Vars, tuples...)
}
