package runtime

import (
	"errors"
	"fmt"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/query"
)

// ErrNeedsProjection marks a query whose sampling plan requires the
// projection generator (Algorithm 2) and therefore cannot be served
// from the prepared-sampler cache.
var ErrNeedsProjection = errors.New("query needs the projection generator")

// ErrTargetNotFound marks a relation or query name absent from its
// database.
var ErrTargetNotFound = errors.New("target not found")

// TargetKindName validates the relation/query arguments and returns the
// cache-key kind and name. Shared by ResolveTarget and PreparedFor so
// the two cannot diverge.
func TargetKindName(relName, queryName string) (kind, name string, err error) {
	switch {
	case relName != "" && queryName != "":
		return "", "", errors.New("specify relation or query, not both")
	case relName != "":
		return "rel", relName, nil
	case queryName != "":
		return "query", queryName, nil
	default:
		return "", "", errors.New("missing relation (or query) name")
	}
}

// ResolveTarget finds the relation to sample: either a declared relation
// or a query whose sampling plan is quantifier-free (every disjunct is a
// plain conjunction), which compiles to an equivalent relation over the
// output variables. Queries that need the projection generator are
// served per-request through a query engine instead of the prepared
// cache (ErrNeedsProjection).
func ResolveTarget(e *DatabaseEntry, relName, queryName string, opts core.Options) (*constraint.Relation, string, string, error) {
	kind, _, err := TargetKindName(relName, queryName)
	if err != nil {
		return nil, "", "", err
	}
	switch kind {
	case "rel":
		rel, ok := e.DB.Relation(relName)
		if !ok {
			return nil, "", "", fmt.Errorf("%w: relation %q in database %q", ErrTargetNotFound, relName, e.ID)
		}
		return rel, "rel", relName, nil
	default:
		q, ok := e.DB.Query(queryName)
		if !ok {
			return nil, "", "", fmt.Errorf("%w: query %q in database %q", ErrTargetNotFound, queryName, e.ID)
		}
		eng := query.NewEngine(e.DB.Schema, opts, 0)
		plan, err := eng.NewPlan(q)
		if err != nil {
			return nil, "", "", err
		}
		tuples := make([]constraint.Tuple, 0, len(plan.Disjuncts))
		for _, d := range plan.Disjuncts {
			if d.ExVars > 0 {
				return nil, "", "", fmt.Errorf("%w: query %q", ErrNeedsProjection, queryName)
			}
			tuples = append(tuples, d.Poly.Tuple())
		}
		rel, err := constraint.NewRelation(queryName, plan.OutVars, tuples...)
		if err != nil {
			return nil, "", "", err
		}
		return rel, "query", queryName, nil
	}
}

// PreparedFor returns the cached prepared sampler for the target,
// building it on first use. Target resolution — including the query
// planning pass — runs inside the build closure, so a warm request pays
// only the cache lookup; on a hit the target necessarily resolved when
// the entry was built. A per-call Interrupt hook in opts affects only
// the cache key's absence — preparation always strips it (see Prepare).
func (rt *Runtime) PreparedFor(e *DatabaseEntry, relName, queryName string, opts core.Options) (*Prepared, string, bool, error) {
	return rt.preparedFor(e, relName, queryName, opts, nil)
}

// PreparedForWithSeed is PreparedFor with an explicit preparation seed
// overriding the key-derived default. The cache key is unchanged, so a
// caller must use one consistent seed per key (the cdb.DB handle pins
// one per handle via WithPrepSeed).
func (rt *Runtime) PreparedForWithSeed(e *DatabaseEntry, relName, queryName string, opts core.Options, prepSeed uint64) (*Prepared, string, bool, error) {
	return rt.preparedFor(e, relName, queryName, opts, &prepSeed)
}

func (rt *Runtime) preparedFor(e *DatabaseEntry, relName, queryName string, opts core.Options, prepSeed *uint64) (*Prepared, string, bool, error) {
	kind, name, err := TargetKindName(relName, queryName)
	if err != nil {
		return nil, "", false, err
	}
	key := SamplerKey(e.ID, kind, name, opts.CacheKey())
	ps, hit, err := rt.cache.Get(key, func() (*Prepared, error) {
		rel, _, _, err := ResolveTarget(e, relName, queryName, opts)
		if errors.Is(err, ErrNeedsProjection) {
			// A deterministic verdict of the program text: cache it, so
			// repeated calls on an ∃-query skip straight to the engine
			// fallback instead of re-running the planning pass.
			return nil, Negative(err)
		}
		if err != nil {
			return nil, err
		}
		seed := PrepSeedFor(key)
		if prepSeed != nil {
			seed = *prepSeed
		}
		return Prepare(rel, seed, opts)
	})
	return ps, key, hit, err
}
