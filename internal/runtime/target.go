package runtime

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/polytope"
	"repro/internal/query"
)

// ErrNeedsProjection marks a query whose sampling plan requires the
// projection generator (Algorithm 2) and therefore cannot be served
// from the prepared-sampler cache.
var ErrNeedsProjection = errors.New("query needs the projection generator")

// ErrTargetNotFound marks a relation or query name absent from its
// database.
var ErrTargetNotFound = errors.New("target not found")

// ErrEmptyExpr marks a target whose canonical plan has no full-
// dimensional LP-feasible disjunct: the expression provably denotes an
// empty (or measure-zero) set. The verdict is cached as a negative
// entry, so replays are O(1) and — negatives park at the LRU's
// eviction end — never evict warm geometry. Callers that want set
// semantics (an empty set has volume 0) translate it; callers that
// need a sampler surface it as an error.
var ErrEmptyExpr = errors.New("expression denotes an empty (or measure-zero) set")

// TargetKindName validates the relation/query arguments and returns the
// cache-key kind and name. Shared by ResolveTarget and PreparedFor so
// the two cannot diverge.
func TargetKindName(relName, queryName string) (kind, name string, err error) {
	switch {
	case relName != "" && queryName != "":
		return "", "", errors.New("specify relation or query, not both")
	case relName != "":
		return "rel", relName, nil
	case queryName != "":
		return "query", queryName, nil
	default:
		return "", "", errors.New("missing relation (or query) name")
	}
}

// ResolveTarget finds the relation to sample: either a declared relation
// or a query whose sampling plan is quantifier-free (every disjunct is a
// plain conjunction), which compiles to an equivalent relation over the
// output variables. Queries that need the projection generator are
// served per-request through a query engine instead of the prepared
// cache (ErrNeedsProjection).
func ResolveTarget(e *DatabaseEntry, relName, queryName string, opts core.Options) (*constraint.Relation, string, string, error) {
	kind, _, err := TargetKindName(relName, queryName)
	if err != nil {
		return nil, "", "", err
	}
	switch kind {
	case "rel":
		rel, ok := e.DB.Relation(relName)
		if !ok {
			return nil, "", "", fmt.Errorf("%w: relation %q in database %q", ErrTargetNotFound, relName, e.ID)
		}
		return rel, "rel", relName, nil
	default:
		q, ok := e.DB.Query(queryName)
		if !ok {
			return nil, "", "", fmt.Errorf("%w: query %q in database %q", ErrTargetNotFound, queryName, e.ID)
		}
		eng := query.NewEngine(e.DB.Schema, opts, 0)
		plan, err := eng.NewPlan(q)
		if err != nil {
			return nil, "", "", err
		}
		tuples := make([]constraint.Tuple, 0, len(plan.Disjuncts))
		for _, d := range plan.Disjuncts {
			if d.ExVars > 0 {
				return nil, "", "", fmt.Errorf("%w: query %q", ErrNeedsProjection, queryName)
			}
			tuples = append(tuples, d.Poly.Tuple())
		}
		rel, err := constraint.NewRelation(queryName, plan.OutVars, tuples...)
		if err != nil {
			return nil, "", "", err
		}
		return rel, "query", queryName, nil
	}
}

// canonicalFor compiles the named target to its canonical plan: declared
// relations become one disjunct per tuple; named queries run the plan
// pipeline. Either way the result is the same normal form cdb.Expr and
// the /v1/expr endpoint reach, so all surfaces share cache entries.
func canonicalFor(e *DatabaseEntry, relName, queryName string, opts core.Options) (*query.CanonicalPlan, error) {
	kind, _, err := TargetKindName(relName, queryName)
	if err != nil {
		return nil, err
	}
	if kind == "rel" {
		rel, ok := e.DB.Relation(relName)
		if !ok {
			return nil, fmt.Errorf("%w: relation %q in database %q", ErrTargetNotFound, relName, e.ID)
		}
		return query.Canonicalize(PlanOfRelation(rel)), nil
	}
	q, ok := e.DB.Query(queryName)
	if !ok {
		return nil, fmt.Errorf("%w: query %q in database %q", ErrTargetNotFound, queryName, e.ID)
	}
	plan, err := query.NewEngine(e.DB.Schema, opts, 0).NewPlan(q)
	if err != nil {
		return nil, err
	}
	return query.Canonicalize(plan), nil
}

// PlanOfRelation lifts a declared relation into plan form: one
// quantifier-free disjunct per tuple.
func PlanOfRelation(rel *constraint.Relation) *query.Plan {
	p := &query.Plan{OutVars: rel.Vars}
	for _, t := range rel.Tuples {
		p.Disjuncts = append(p.Disjuncts, query.PlanDisjunct{Poly: polytope.FromTuple(t)})
	}
	return p
}

// PreparedFor returns the cached prepared sampler for the target,
// building it on first use. The cache key is the target's canonical
// plan hash — not its name — so a named query, a declared relation and
// a structurally equal cdb.Expr all share one entry. A name → plan-key
// alias map makes warm requests pay only two lookups (the planning pass
// runs once per (target, options)). A per-call Interrupt hook in opts
// affects only the cache key's absence — preparation always strips it
// (see Prepare).
func (rt *Runtime) PreparedFor(e *DatabaseEntry, relName, queryName string, opts core.Options) (*Prepared, string, bool, error) {
	return rt.preparedFor(e, relName, queryName, opts, nil)
}

// PreparedForWithSeed is PreparedFor with an explicit preparation seed
// overriding the key-derived default. The cache key is unchanged, so a
// caller must use one consistent seed per key (the cdb.DB handle pins
// one per handle via WithPrepSeed).
func (rt *Runtime) PreparedForWithSeed(e *DatabaseEntry, relName, queryName string, opts core.Options, prepSeed uint64) (*Prepared, string, bool, error) {
	return rt.preparedFor(e, relName, queryName, opts, &prepSeed)
}

func (rt *Runtime) preparedFor(e *DatabaseEntry, relName, queryName string, opts core.Options, prepSeed *uint64) (*Prepared, string, bool, error) {
	kind, name, err := TargetKindName(relName, queryName)
	if err != nil {
		return nil, "", false, err
	}
	aliasKey := SamplerKey(e.ID, kind, name, opts.CacheKey())
	// The alias cache singleflights the planning pass: concurrent cold
	// requests for one target plan once. Only the building caller's cp
	// is set; waiters (and later callers whose prepared entry was
	// evicted) re-plan inside the prepared build closure below.
	var cp *query.CanonicalPlan
	key, _, err := rt.planKeys.Get(aliasKey, func() (string, error) {
		p, err := canonicalFor(e, relName, queryName, opts)
		if err != nil {
			return "", err
		}
		cp = p
		return PlanKey(e.ID, p.Key, opts.CacheKey()), nil
	})
	if err != nil {
		return nil, "", false, err
	}
	ps, hit, err := rt.cache.Get(key, func() (*Prepared, error) {
		if cp == nil {
			// Alias hit but the prepared entry was (re)built: re-plan.
			p, err := canonicalFor(e, relName, queryName, opts)
			if err != nil {
				return nil, err
			}
			cp = p
		}
		return rt.buildFromPlan(cp, key, prepSeed, opts)
	})
	return ps, key, hit, err
}

// PlanKey is the prepared cache key of a canonical plan under a
// database and options fingerprint.
func PlanKey(dbID, canonKey, optsKey string) string {
	return SamplerKey(dbID, "plan", canonKey, optsKey)
}

// PreparedPlan returns the cached prepared sampler for a pre-compiled
// canonical plan — the execution path of cdb.Expr and /v1/expr. The key
// is the plan's canonical hash, so structurally equal expressions (and
// name-addressed targets with the same geometry) share the entry.
// Provably empty plans cache as Negative(ErrEmptyExpr); plans needing
// the projection generator cache as Negative(ErrNeedsProjection) —
// both O(1) on replay.
func (rt *Runtime) PreparedPlan(e *DatabaseEntry, cp *query.CanonicalPlan, opts core.Options) (*Prepared, string, bool, error) {
	return rt.preparedPlan(e, cp, opts, nil)
}

// PreparedPlanWithSeed is PreparedPlan with an explicit preparation
// seed; see PreparedForWithSeed for the consistency contract.
func (rt *Runtime) PreparedPlanWithSeed(e *DatabaseEntry, cp *query.CanonicalPlan, opts core.Options, prepSeed uint64) (*Prepared, string, bool, error) {
	return rt.preparedPlan(e, cp, opts, &prepSeed)
}

func (rt *Runtime) preparedPlan(e *DatabaseEntry, cp *query.CanonicalPlan, opts core.Options, prepSeed *uint64) (*Prepared, string, bool, error) {
	key := PlanKey(e.ID, cp.Key, opts.CacheKey())
	ps, hit, err := rt.cache.Get(key, func() (*Prepared, error) {
		return rt.buildFromPlan(cp, key, prepSeed, opts)
	})
	return ps, key, hit, err
}

// buildFromPlan is the shared cold-build closure body: empty and
// projection-needing plans become cached verdicts, everything else
// materialises as a derived relation and pays the preparation pass.
// The cached verdicts carry no target name — the entry is shared by
// every structurally equal target, whatever it was called. The
// preparation time (rounding + volume passes) lands in the cost table
// under the prepared key.
func (rt *Runtime) buildFromPlan(cp *query.CanonicalPlan, key string, prepSeed *uint64, opts core.Options) (*Prepared, error) {
	if cp.Empty() {
		return nil, Negative(ErrEmptyExpr)
	}
	if cp.NeedsProjection() {
		return nil, Negative(ErrNeedsProjection)
	}
	rel, err := cp.Relation("derived")
	if err != nil {
		return nil, err
	}
	seed := PrepSeedFor(key)
	if prepSeed != nil {
		seed = *prepSeed
	}
	start := time.Now()
	ps, err := Prepare(rel, seed, opts)
	if err == nil {
		c := rt.costs.For(key)
		c.Preps.Add(1)
		c.PrepNanos.Add(time.Since(start).Nanoseconds())
		// Every successfully prepared plan is a candidate for the
		// background self-audit: the derived relation is already
		// quantifier-free DNF, i.e. inside the symbolic-capable
		// fragment (the auditor itself filters by description size).
		rt.auditor.register(key, rel, ps)
	}
	return ps, err
}
