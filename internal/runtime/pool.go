package runtime

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/obs/quality"
)

// Pool is a fixed-size worker pool. Every batched sample draw runs its
// worker chunks on it, so the concurrency of batched sampling is bounded
// by the pool size no matter how many requests are in flight —
// concurrent requests are coalesced onto the same workers instead of
// each spawning their own. (Single-walker paths — query sampling,
// reconstruction — run one sequential walk on their caller's goroutine
// and are bounded by the caller's own concurrency.)
type Pool struct {
	jobs chan func()
	wg   sync.WaitGroup
	size int
	sink obs.Sink

	mu        sync.RWMutex
	closed    bool
	closeOnce sync.Once
}

// NewPool starts size workers (minimum 1). hooks may be nil.
func NewPool(size int, hooks Hooks) *Pool {
	return newPool(size, sinkFor(hooks))
}

// NewPoolWithSink is NewPool reporting to an obs.Sink (may be nil).
func NewPoolWithSink(size int, sink obs.Sink) *Pool {
	return newPool(size, sink)
}

// newPool is NewPool over an obs.Sink (may be nil).
func newPool(size int, sink obs.Sink) *Pool {
	if size < 1 {
		size = 1
	}
	p := &Pool{jobs: make(chan func()), size: size, sink: sink}
	for i := 0; i < size; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for fn := range p.jobs {
				if p.sink != nil {
					p.sink.BatchJob()
				}
				runJob(fn)
			}
		}()
	}
	return p
}

// runJob shields the worker from a panicking job: handler goroutines are
// recovered per-connection by net/http, but a bare pool goroutine would
// take the whole process down. The job's own waiters see the failure
// through their error slots (SampleManyVia converts worker panics to
// errors); the recover here is the process-level backstop.
func runJob(fn func()) {
	defer func() { _ = recover() }()
	fn()
}

// Submit schedules fn on the pool, blocking until a worker accepts it.
// After Close, fn runs synchronously on the caller instead — a request
// that raced a shutdown still completes rather than panicking on the
// closed channel.
func (p *Pool) Submit(fn func()) {
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		fn()
		return
	}
	// Hold the read lock across the send so Close cannot close the
	// channel between the check and the send.
	defer p.mu.RUnlock()
	p.jobs <- fn
}

// Size returns the number of workers.
func (p *Pool) Size() int { return p.size }

// Close stops the workers after draining queued jobs. Submitters that
// already passed the closed check finish their sends first (the workers
// keep consuming until the channel drains).
func (p *Pool) Close() {
	p.closeOnce.Do(func() {
		p.mu.Lock()
		p.closed = true
		close(p.jobs)
		p.mu.Unlock()
	})
	p.wg.Wait()
}

// Executor is the batch executor for sample requests. It does two
// things on top of the raw pool:
//
//   - every request's worker chunks run on the shared pool (bounded
//     concurrency, same deterministic output as Prepared.SampleMany), and
//   - byte-identical concurrent requests — same prepared sampler, n,
//     workers and seed — are coalesced into a single draw whose result
//     every caller shares.
type Executor struct {
	pool *Pool

	mu       sync.Mutex
	inflight map[string]*draw

	sink obs.Sink
	// costs, when non-nil, receives the measured effort of every
	// executed draw under the draw's sampler key (and "key#i" for each
	// union member). A coalesced waiter records only its Coalesced
	// count — the draw's effort ran once, so it is counted once, by the
	// caller that executed it.
	costs *obs.Costs
	// quality, when non-nil, accumulates the draw's points and member
	// shares into the per-sampler statistical diagnostics.
	quality *quality.Tracker
}

type draw struct {
	ready chan struct{}
	pts   []linalg.Vector
	err   error
}

// NewExecutor returns an executor over the given pool. hooks may be nil.
func NewExecutor(pool *Pool, hooks Hooks) *Executor {
	return newExecutor(pool, sinkFor(hooks), nil)
}

// NewExecutorWithSink is NewExecutor reporting to an obs.Sink (may be
// nil).
func NewExecutorWithSink(pool *Pool, sink obs.Sink) *Executor {
	return newExecutor(pool, sink, nil)
}

// newExecutor is NewExecutor over an obs.Sink and a cost table (either
// may be nil).
func newExecutor(pool *Pool, sink obs.Sink, costs *obs.Costs) *Executor {
	return &Executor{pool: pool, inflight: map[string]*draw{}, sink: sink, costs: costs}
}

// SampleMany draws n points from ps with w logical workers and base seed
// seed, deterministically identical to ps.SampleMany(n, w, seed).
// samplerKey identifies the prepared sampler (the cache key); coalesced
// reports that the result was shared with an identical in-flight draw.
func (e *Executor) SampleMany(samplerKey string, ps *Prepared, n, w int, seed uint64) (pts []linalg.Vector, coalesced bool, err error) {
	return e.SampleManyCtx(context.Background(), samplerKey, ps, n, w, seed)
}

// SampleManyCtx is SampleMany with cooperative cancellation: the draw's
// workers poll ctx between samples and inside every walk epoch, and a
// coalesced waiter stops waiting when its own ctx is cancelled. The
// shared draw runs under the initiating request's ctx; if the initiator
// cancels while a coalesced waiter's ctx is still live, that waiter
// does not inherit the cancellation — it re-enters and runs the draw
// itself (output unchanged: the result is deterministic in the seed).
// Workers always return to the pool — a cancelled batch cannot leak
// pool capacity.
func (e *Executor) SampleManyCtx(ctx context.Context, samplerKey string, ps *Prepared, n, w int, seed uint64) (pts []linalg.Vector, coalesced bool, err error) {
	key := fmt.Sprintf("%s|n=%d|w=%d|seed=%d", samplerKey, n, w, seed)
	ctx, span := obs.Start(ctx, "sample.batch")
	defer span.End()
	span.SetKey(samplerKey)
	span.Set("n", int64(n))
	span.Set("workers", int64(w))
	for {
		e.mu.Lock()
		d, ok := e.inflight[key]
		if !ok {
			d = &draw{ready: make(chan struct{})}
			e.inflight[key] = d
			e.mu.Unlock()
			// Whether this caller is the first arrival or a waiter that
			// took over a cancelled draw, it did the work itself:
			// coalesced=false, and no CoalescedDraw event — the metric
			// and the response field report only actual work-sharing.
			pts, err := e.runDraw(ctx, key, samplerKey, d, ps, n, w, seed, span)
			return pts, false, err
		}
		e.mu.Unlock()
		select {
		case <-d.ready:
			if d.err != nil && isContextErr(d.err) && ctx.Err() == nil {
				// The initiator was cancelled, not us: take over. The
				// dead draw is already out of the inflight map (runDraw
				// unregisters before signalling ready), so the next loop
				// iteration either joins a fresh draw or initiates one.
				continue
			}
			if e.sink != nil {
				e.sink.CoalescedDraw()
			}
			span.Set("coalesced", 1)
			e.costs.For(samplerKey).Coalesced.Add(1)
			return d.pts, true, d.err
		case <-ctx.Done():
			// Nothing was shared with this caller either.
			return nil, false, ctx.Err()
		}
	}
}

// runDraw executes one batched draw and publishes the result. The
// inflight slot is unregistered before ready is signalled, so waiters
// that decide to retry never re-join this finished draw. The defer
// releases waiters even if the draw panics on this goroutine, mirroring
// Cache.Get — otherwise every coalesced waiter would block forever.
//
// The draw's measured effort — bind and queue-wait time, walk steps,
// oracle calls, rejection rounds — lands in the cost table under
// samplerKey, with per-union-member attribution under "samplerKey#i",
// and on the surrounding span when one is active.
func (e *Executor) runDraw(ctx context.Context, key, samplerKey string, d *draw, ps *Prepared, n, w int, seed uint64, span *obs.Span) ([]linalg.Vector, error) {
	finished := false
	defer func() {
		if !finished {
			d.err = errors.New("runtime: batched draw panicked")
		}
		e.mu.Lock()
		delete(e.inflight, key)
		e.mu.Unlock()
		close(d.ready)
	}()
	var ds DrawStats
	start := time.Now()
	d.pts, d.err = ps.SampleManyObserved(ctx, e.pool.Submit, n, w, seed, &ds)
	elapsed := time.Since(start).Nanoseconds()
	finished = true
	e.recordDraw(samplerKey, len(d.pts), elapsed, &ds, span)
	e.recordQuality(samplerKey, ps, d.pts, &ds)
	return d.pts, d.err
}

// recordQuality folds one executed draw into the statistical
// diagnostics: the first draw of a sampler registers its bounding-box
// partition, every draw adds cell counts, member shares and mixing
// effort. Hot-path cost when quality is nil (or the box unbounded):
// one nil check.
func (e *Executor) recordQuality(samplerKey string, ps *Prepared, pts []linalg.Vector, ds *DrawStats) {
	if e.quality == nil {
		return
	}
	lo, hi, ok := ps.BoundingBox()
	if !ok {
		return
	}
	e.quality.Bind(samplerKey, lo, hi, ps.MemberVolumes())
	eff := quality.Effort{
		WalkSteps:      ds.Total.WalkSteps,
		WalkAccepted:   ds.Total.WalkAccepted,
		OracleCalls:    ds.Total.OracleCalls,
		InterruptPolls: ds.Total.InterruptPolls,
		Rounds:         ds.Total.Rounds,
		Accepts:        ds.Total.Accepts,
		RoundsHist:     ds.Total.RoundsHist,
		MemberDraws:    ds.MemberDraws,
	}
	e.quality.ObserveDraw(samplerKey, pts, eff)
}

// recordDraw attributes one executed draw's effort to the cost table
// and the active span.
func (e *Executor) recordDraw(samplerKey string, samples int, elapsedNanos int64, ds *DrawStats, span *obs.Span) {
	c := e.costs.For(samplerKey)
	c.Draws.Add(1)
	c.Samples.Add(int64(samples))
	c.SampleNanos.Add(elapsedNanos)
	c.QueueNanos.Add(ds.QueueNanos)
	c.Binds.Add(ds.Binds)
	c.BindNanos.Add(ds.BindNanos)
	addSampleStats(c, ds.Total)
	for i, ms := range ds.Members {
		if ms.IsZero() {
			continue
		}
		mc := e.costs.For(fmt.Sprintf("%s#%d", samplerKey, i))
		addSampleStats(mc, ms)
	}
	if span != nil {
		span.Add("samples", int64(samples))
		span.Add("binds", ds.Binds)
		span.Add("bind_nanos", ds.BindNanos)
		span.Add("queue_nanos", ds.QueueNanos)
		span.Add("walk_steps", ds.Total.WalkSteps)
		span.Add("walk_accepted", ds.Total.WalkAccepted)
		span.Add("oracle_calls", ds.Total.OracleCalls)
		span.Add("interrupt_polls", ds.Total.InterruptPolls)
		span.Add("rounds", ds.Total.Rounds)
		span.Add("accepts", ds.Total.Accepts)
	}
}

// addSampleStats merges a core.SampleStats into a cost cell.
func addSampleStats(c *obs.Cost, s core.SampleStats) {
	c.WalkSteps.Add(s.WalkSteps)
	c.WalkAccepted.Add(s.WalkAccepted)
	c.OracleCalls.Add(s.OracleCalls)
	c.InterruptPolls.Add(s.InterruptPolls)
	c.Rounds.Add(s.Rounds)
	c.Accepts.Add(s.Accepts)
}

// isContextErr reports a cancellation/deadline error — the only errors
// a coalesced waiter refuses to share, because they belong to the
// initiating request, not to the draw.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
