package runtime

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/linalg"
)

// Pool is a fixed-size worker pool. Every batched sample draw runs its
// worker chunks on it, so the concurrency of batched sampling is bounded
// by the pool size no matter how many requests are in flight —
// concurrent requests are coalesced onto the same workers instead of
// each spawning their own. (Single-walker paths — query sampling,
// reconstruction — run one sequential walk on their caller's goroutine
// and are bounded by the caller's own concurrency.)
type Pool struct {
	jobs  chan func()
	wg    sync.WaitGroup
	size  int
	hooks Hooks

	mu        sync.RWMutex
	closed    bool
	closeOnce sync.Once
}

// NewPool starts size workers (minimum 1). hooks may be nil.
func NewPool(size int, hooks Hooks) *Pool {
	if size < 1 {
		size = 1
	}
	p := &Pool{jobs: make(chan func()), size: size, hooks: hooks}
	for i := 0; i < size; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for fn := range p.jobs {
				if p.hooks != nil {
					p.hooks.BatchJob()
				}
				runJob(fn)
			}
		}()
	}
	return p
}

// runJob shields the worker from a panicking job: handler goroutines are
// recovered per-connection by net/http, but a bare pool goroutine would
// take the whole process down. The job's own waiters see the failure
// through their error slots (SampleManyVia converts worker panics to
// errors); the recover here is the process-level backstop.
func runJob(fn func()) {
	defer func() { _ = recover() }()
	fn()
}

// Submit schedules fn on the pool, blocking until a worker accepts it.
// After Close, fn runs synchronously on the caller instead — a request
// that raced a shutdown still completes rather than panicking on the
// closed channel.
func (p *Pool) Submit(fn func()) {
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		fn()
		return
	}
	// Hold the read lock across the send so Close cannot close the
	// channel between the check and the send.
	defer p.mu.RUnlock()
	p.jobs <- fn
}

// Size returns the number of workers.
func (p *Pool) Size() int { return p.size }

// Close stops the workers after draining queued jobs. Submitters that
// already passed the closed check finish their sends first (the workers
// keep consuming until the channel drains).
func (p *Pool) Close() {
	p.closeOnce.Do(func() {
		p.mu.Lock()
		p.closed = true
		close(p.jobs)
		p.mu.Unlock()
	})
	p.wg.Wait()
}

// Executor is the batch executor for sample requests. It does two
// things on top of the raw pool:
//
//   - every request's worker chunks run on the shared pool (bounded
//     concurrency, same deterministic output as Prepared.SampleMany), and
//   - byte-identical concurrent requests — same prepared sampler, n,
//     workers and seed — are coalesced into a single draw whose result
//     every caller shares.
type Executor struct {
	pool *Pool

	mu       sync.Mutex
	inflight map[string]*draw

	hooks Hooks
}

type draw struct {
	ready chan struct{}
	pts   []linalg.Vector
	err   error
}

// NewExecutor returns an executor over the given pool. hooks may be nil.
func NewExecutor(pool *Pool, hooks Hooks) *Executor {
	return &Executor{pool: pool, inflight: map[string]*draw{}, hooks: hooks}
}

// SampleMany draws n points from ps with w logical workers and base seed
// seed, deterministically identical to ps.SampleMany(n, w, seed).
// samplerKey identifies the prepared sampler (the cache key); coalesced
// reports that the result was shared with an identical in-flight draw.
func (e *Executor) SampleMany(samplerKey string, ps *Prepared, n, w int, seed uint64) (pts []linalg.Vector, coalesced bool, err error) {
	return e.SampleManyCtx(context.Background(), samplerKey, ps, n, w, seed)
}

// SampleManyCtx is SampleMany with cooperative cancellation: the draw's
// workers poll ctx between samples and inside every walk epoch, and a
// coalesced waiter stops waiting when its own ctx is cancelled. The
// shared draw runs under the initiating request's ctx; if the initiator
// cancels while a coalesced waiter's ctx is still live, that waiter
// does not inherit the cancellation — it re-enters and runs the draw
// itself (output unchanged: the result is deterministic in the seed).
// Workers always return to the pool — a cancelled batch cannot leak
// pool capacity.
func (e *Executor) SampleManyCtx(ctx context.Context, samplerKey string, ps *Prepared, n, w int, seed uint64) (pts []linalg.Vector, coalesced bool, err error) {
	key := fmt.Sprintf("%s|n=%d|w=%d|seed=%d", samplerKey, n, w, seed)
	for {
		e.mu.Lock()
		d, ok := e.inflight[key]
		if !ok {
			d = &draw{ready: make(chan struct{})}
			e.inflight[key] = d
			e.mu.Unlock()
			// Whether this caller is the first arrival or a waiter that
			// took over a cancelled draw, it did the work itself:
			// coalesced=false, and no CoalescedDraw event — the metric
			// and the response field report only actual work-sharing.
			pts, err := e.runDraw(ctx, key, d, ps, n, w, seed)
			return pts, false, err
		}
		e.mu.Unlock()
		select {
		case <-d.ready:
			if d.err != nil && isContextErr(d.err) && ctx.Err() == nil {
				// The initiator was cancelled, not us: take over. The
				// dead draw is already out of the inflight map (runDraw
				// unregisters before signalling ready), so the next loop
				// iteration either joins a fresh draw or initiates one.
				continue
			}
			if e.hooks != nil {
				e.hooks.CoalescedDraw()
			}
			return d.pts, true, d.err
		case <-ctx.Done():
			// Nothing was shared with this caller either.
			return nil, false, ctx.Err()
		}
	}
}

// runDraw executes one batched draw and publishes the result. The
// inflight slot is unregistered before ready is signalled, so waiters
// that decide to retry never re-join this finished draw. The defer
// releases waiters even if the draw panics on this goroutine, mirroring
// Cache.Get — otherwise every coalesced waiter would block forever.
func (e *Executor) runDraw(ctx context.Context, key string, d *draw, ps *Prepared, n, w int, seed uint64) ([]linalg.Vector, error) {
	finished := false
	defer func() {
		if !finished {
			d.err = errors.New("runtime: batched draw panicked")
		}
		e.mu.Lock()
		delete(e.inflight, key)
		e.mu.Unlock()
		close(d.ready)
	}()
	d.pts, d.err = ps.SampleManyCtx(ctx, e.pool.Submit, n, w, seed)
	finished = true
	return d.pts, d.err
}

// isContextErr reports a cancellation/deadline error — the only errors
// a coalesced waiter refuses to share, because they belong to the
// initiating request, not to the draw.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
