package runtime

// The prepared-symbolic cache entry kind: quantifier elimination is the
// one evaluation whose cost (doubly exponential in eliminated
// variables, experiment E9) dwarfs even sampler preparation, so its
// results — quantifier-free DNF relations — are cached in their own
// singleflight LRU, keyed by the same canonical plan hash the sampler
// cache uses. A provably empty result caches as a Negative(ErrEmptyExpr)
// verdict, parked at the LRU's eviction end like every negative entry.

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/constraint"
	"repro/internal/obs"
	"repro/internal/polytope"
	"repro/internal/query"
)

// interruptOf converts a request context into the poll hook the
// elimination and inclusion–exclusion passes understand.
func interruptOf(ctx context.Context) func() error {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	return ctx.Err
}

// SymbolicEntry is a cached symbolic-evaluation result: the eliminated
// quantifier-free DNF relation plus its lazily computed exact volume.
// Entries are shared by every caller of a key — treat Rel as immutable.
type SymbolicEntry struct {
	// Rel is the eliminated relation, infeasible tuples pruned.
	Rel *constraint.Relation
	// Stats measures the elimination that built Rel: per-disjunct
	// eliminated-variable counts, Fourier–Motzkin rounds and atom
	// growth. Frozen at build time — warm replays report the effort the
	// entry originally cost.
	Stats query.ElimStats

	volMu   sync.Mutex
	volDone bool
	vol     float64
	volErr  error
}

// ExactVolume returns the exact inclusion–exclusion volume of the
// eliminated DNF, computed once per cache entry (the pass is
// exponential in tuple count and dimension, so warm replays must not
// re-pay it per request). The pass polls ctx per term; a cancellation
// aborts THIS caller without memoizing — the next request recomputes.
func (se *SymbolicEntry) ExactVolume(ctx context.Context) (float64, error) {
	se.volMu.Lock()
	defer se.volMu.Unlock()
	if se.volDone {
		return se.vol, se.volErr
	}
	v, err := polytope.RelationVolumeInterruptible(se.Rel, interruptOf(ctx))
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return 0, err // transient: never memoize someone's cancellation
	}
	se.volDone, se.vol, se.volErr = true, v, err
	return v, err
}

// SymbolicKey is the prepared-symbolic cache key of an expression
// under a database. Symbolic evaluation is exact — it depends on no
// sampling options, so the options fingerprint slot stays empty and
// every walk/params configuration shares one entry.
func SymbolicKey(dbID, symKey string) string {
	return SamplerKey(dbID, "symbolic", symKey, "")
}

// Symbolic returns the cached eliminated relation for a compiled
// symbolic query, building it (once, under singleflight) on first use.
// The build polls the builder's ctx between formula nodes and
// elimination rounds; a cancelled build is a transient error — never
// cached. A waiter that joined a flight whose BUILDER cancelled (its
// own ctx still live) rebuilds under its own ctx instead of surfacing
// someone else's cancellation. Provably empty results come back as
// ErrEmptyExpr with hit=true on replay; callers wanting set semantics
// translate the error to an empty relation over sq.OutVars.
func (rt *Runtime) Symbolic(ctx context.Context, e *DatabaseEntry, sq *query.SymbolicQuery) (*SymbolicEntry, string, bool, error) {
	key := SymbolicKey(e.ID, sq.Key)
	ctx, span := obs.Start(ctx, "symbolic.eliminate")
	defer span.End()
	span.SetKey(key)
	for {
		se, hit, err := rt.symbolic.Get(key, func() (*SymbolicEntry, error) {
			start := time.Now()
			rel, st, err := sq.EvalCtxStats(ctx)
			if err != nil {
				return nil, err
			}
			rt.recordElim(key, time.Since(start).Nanoseconds(), st, span)
			if len(rel.Tuples) == 0 {
				return nil, Negative(ErrEmptyExpr)
			}
			return &SymbolicEntry{Rel: rel, Stats: st}, nil
		})
		if err != nil && ctx != nil && ctx.Err() == nil &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			// The flight we joined died with its builder's cancellation,
			// not ours; the failed slot is gone, so looping makes us the
			// builder under our own ctx.
			continue
		}
		if hit {
			span.Set("cache_hit", 1)
		}
		return se, key, hit, err
	}
}

// recordElim attributes one symbolic evaluation's effort to the cost
// table and the active span.
func (rt *Runtime) recordElim(key string, elapsedNanos int64, st query.ElimStats, span *obs.Span) {
	c := rt.costs.For(key)
	c.Evals.Add(1)
	c.ElimNanos.Add(elapsedNanos)
	c.ElimRounds.Add(int64(st.Rounds))
	c.ElimVars.Add(int64(st.ElimVars))
	c.AtomsIn.Add(int64(st.AtomsIn))
	c.AtomsOut.Add(int64(st.AtomsOut))
	if span != nil {
		span.Add("elim_rounds", int64(st.Rounds))
		span.Add("elim_vars", int64(st.ElimVars))
		span.Add("atoms_in", int64(st.AtomsIn))
		span.Add("atoms_out", int64(st.AtomsOut))
		span.Add("disjuncts", int64(st.Disjuncts))
	}
}
