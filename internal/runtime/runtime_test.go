package runtime

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/walk"
)

const motionProgram = `
rel A(x, y, t) := { 0 <= t <= 10, t <= x <= t + 1, 0 <= y <= 1 };
rel B(x, y, t) := { 0 <= t <= 10, t - 0.5 <= x <= t + 0.5, 0 <= y <= 1 };
rel Far(x, y, t) := { 0 <= t <= 10, 100 <= x <= 101, 0 <= y <= 1 };
`

type countingHooks struct {
	hits, misses, evictions, coalesced, jobs atomic.Int64
}

func (h *countingHooks) CacheHit()      { h.hits.Add(1) }
func (h *countingHooks) CacheMiss()     { h.misses.Add(1) }
func (h *countingHooks) CacheEviction() { h.evictions.Add(1) }
func (h *countingHooks) CoalescedDraw() { h.coalesced.Add(1) }
func (h *countingHooks) BatchJob()      { h.jobs.Add(1) }

func testOptions() core.Options {
	return core.Options{Params: core.DefaultParams(), Walk: walk.HitAndRun}
}

func newTestRuntime(t *testing.T) (*Runtime, *DatabaseEntry, *countingHooks) {
	t.Helper()
	hooks := &countingHooks{}
	rt := New(Config{PoolSize: 2, CacheSize: 8}, hooks)
	t.Cleanup(rt.Close)
	entry, _, err := rt.Registry().Register("motion", motionProgram)
	if err != nil {
		t.Fatal(err)
	}
	return rt, entry, hooks
}

// TestEmptySliceNegativeCache: an out-of-support slice fails its first
// build, but the verdict is cached — the replay is a hit that never
// re-runs the slicing/support analysis.
func TestEmptySliceNegativeCache(t *testing.T) {
	rt, entry, hooks := newTestRuntime(t)
	opts := testOptions()

	_, _, hit, err := rt.PreparedSlice(entry, "A", 99, opts)
	if !errors.Is(err, ErrEmptySlice) {
		t.Fatalf("cold empty slice: err = %v, want ErrEmptySlice", err)
	}
	if hit {
		t.Fatal("cold empty slice reported a hit")
	}
	misses := hooks.misses.Load()

	_, _, hit, err = rt.PreparedSlice(entry, "A", 99, opts)
	if !errors.Is(err, ErrEmptySlice) {
		t.Fatalf("replay: err = %v, want ErrEmptySlice", err)
	}
	if !hit {
		t.Fatal("replayed empty slice should be a (negative) cache hit")
	}
	if hooks.misses.Load() != misses {
		t.Fatal("replay re-ran the failed build")
	}

	// Negative entries live in the same LRU as positive ones.
	if rt.Cache().Len() != 1 {
		t.Fatalf("cache len = %d, want 1 negative entry", rt.Cache().Len())
	}

	// A transient error (unknown relation) is still not cached.
	if _, _, _, err := rt.PreparedSlice(entry, "Nope", 1, opts); !errors.Is(err, ErrTargetNotFound) {
		t.Fatalf("unknown relation: %v", err)
	}
	if rt.Cache().Len() != 1 {
		t.Fatalf("cache len = %d after transient failure, want 1", rt.Cache().Len())
	}
}

// TestPreparedAlibiCacheReplay: the second identical alibi request hits
// the prepared-alibi cache and binds only seeds; reports are
// deterministic per seed and consistent across the two paths.
func TestPreparedAlibiCacheReplay(t *testing.T) {
	rt, entry, _ := newTestRuntime(t)
	opts := testOptions()
	ctx := context.Background()

	pa1, hit, err := rt.PreparedAlibi(entry, "A", "B", 0, 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("cold alibi reported a hit")
	}
	pa2, hit, err := rt.PreparedAlibi(entry, "A", "B", 0, 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !hit || pa1 != pa2 {
		t.Fatalf("replay should share the prepared alibi (hit=%v, same=%v)", hit, pa1 == pa2)
	}

	rep1, err := pa1.Report(ctx, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := pa2.Report(ctx, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Volume != rep2.Volume || rep1.Meet != rep2.Meet {
		t.Fatalf("same-seed replays disagree: %+v vs %+v", rep1, rep2)
	}
	if !rep1.Meet || !rep1.SymbolicMeet || !rep1.Consistent {
		t.Fatalf("A/B should meet consistently: %+v", rep1)
	}

	// Refuted pair, including the empty-meet fast path (no sampler).
	far, _, err := rt.PreparedAlibi(entry, "A", "Far", 0, 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := far.Report(ctx, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Meet || rep.SymbolicMeet || !rep.Consistent {
		t.Fatalf("A/Far should be refuted consistently: %+v", rep)
	}
}

// TestPreparedForWithSeed: an explicit preparation seed produces the
// same prepared geometry on every process (here: two runtimes).
func TestPreparedForWithSeed(t *testing.T) {
	rt1, e1, _ := newTestRuntime(t)
	rt2, e2, _ := newTestRuntime(t)
	opts := testOptions()

	ps1, _, _, err := rt1.PreparedForWithSeed(e1, "A", "", opts, 123)
	if err != nil {
		t.Fatal(err)
	}
	ps2, _, _, err := rt2.PreparedForWithSeed(e2, "A", "", opts, 123)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ps1.SampleMany(16, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ps2.SampleMany(16, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("sample %d differs across identically seeded preparations", i)
			}
		}
	}
}

// TestCacheNegativeMarker: the marker survives wrapping and is not
// triggered by plain errors.
func TestCacheNegativeMarker(t *testing.T) {
	base := errors.New("boom")
	if IsNegative(base) {
		t.Fatal("plain error is not negative")
	}
	neg := Negative(base)
	if !IsNegative(neg) || !errors.Is(neg, base) {
		t.Fatal("Negative must mark and preserve the cause")
	}

	cache := NewCache[*constraint.Relation](2, nil)
	calls := 0
	_, _, err := cache.Get("k", func() (*constraint.Relation, error) {
		calls++
		return nil, Negative(base)
	})
	if !errors.Is(err, base) {
		t.Fatal(err)
	}
	_, hit, err := cache.Get("k", func() (*constraint.Relation, error) {
		calls++
		return nil, Negative(base)
	})
	if !errors.Is(err, base) || !hit || calls != 1 {
		t.Fatalf("negative replay: hit=%v calls=%d err=%v", hit, calls, err)
	}
}

// TestCoalescedWaiterSurvivesInitiatorCancel: a waiter coalesced onto a
// draw whose initiator gets cancelled must not inherit the initiator's
// ctx error — it takes the draw over under its own (live) context.
func TestCoalescedWaiterSurvivesInitiatorCancel(t *testing.T) {
	rt, entry, _ := newTestRuntime(t)
	ps, key, _, err := rt.PreparedFor(entry, "A", "", testOptions())
	if err != nil {
		t.Fatal(err)
	}
	exec := rt.Executor()

	// Plant a fake in-flight draw under the executor's draw key and
	// finish it the way a cancelled initiator does: unregister, publish
	// ctx.Err(), signal ready.
	drawKey := fmt.Sprintf("%s|n=%d|w=%d|seed=%d", key, 64, 2, 7)
	d := &draw{ready: make(chan struct{})}
	exec.mu.Lock()
	exec.inflight[drawKey] = d
	exec.mu.Unlock()
	go func() {
		time.Sleep(20 * time.Millisecond)
		d.err = context.Canceled
		exec.mu.Lock()
		delete(exec.inflight, drawKey)
		exec.mu.Unlock()
		close(d.ready)
	}()

	pts, coalesced, err := exec.SampleManyCtx(context.Background(), key, ps, 64, 2, 7)
	if err != nil {
		t.Fatalf("waiter inherited the initiator's cancellation: %v", err)
	}
	if coalesced {
		t.Error("a takeover ran the draw itself and must not report coalesced")
	}
	want, err := ps.SampleMany(64, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(want) {
		t.Fatalf("takeover drew %d points, want %d", len(pts), len(want))
	}
	for i := range pts {
		for j := range pts[i] {
			if pts[i][j] != want[i][j] {
				t.Fatalf("takeover point %d differs from the deterministic draw", i)
			}
		}
	}
}

// TestNegativeEntriesDoNotEvictWarmGeometry: a sweep of distinct
// out-of-support probes must never push expensively prepared samplers
// out of the LRU — negatives park at the eviction end and cannibalise
// each other instead.
func TestNegativeEntriesDoNotEvictWarmGeometry(t *testing.T) {
	rt, entry, _ := newTestRuntime(t) // CacheSize 8
	opts := testOptions()

	// Warm four positive slices.
	for _, t0 := range []float64{1, 2, 3, 4} {
		if _, _, _, err := rt.PreparedSlice(entry, "A", t0, opts); err != nil {
			t.Fatalf("warm t0=%g: %v", t0, err)
		}
	}
	// Flood with twelve distinct empty probes (beyond capacity).
	for i := 0; i < 12; i++ {
		if _, _, _, err := rt.PreparedSlice(entry, "A", 1000+float64(i), opts); !errors.Is(err, ErrEmptySlice) {
			t.Fatalf("probe %d: %v", i, err)
		}
	}
	// Every warm positive must still be cached.
	for _, t0 := range []float64{1, 2, 3, 4} {
		_, _, hit, err := rt.PreparedSlice(entry, "A", t0, opts)
		if err != nil || !hit {
			t.Fatalf("warm t0=%g after negative flood: hit=%v err=%v", t0, hit, err)
		}
	}
	if got := rt.Cache().Len(); got > 8 {
		t.Fatalf("cache len = %d, want <= capacity 8", got)
	}
}

// TestNegativeReplayAtCapacity: with the cache full of warm positives,
// an empty probe's verdict must still be retained (displacing at most
// one positive, never itself), so the replay is an O(1) hit.
func TestNegativeReplayAtCapacity(t *testing.T) {
	hooks := &countingHooks{}
	rt := New(Config{PoolSize: 1, CacheSize: 2}, hooks)
	t.Cleanup(rt.Close)
	entry, _, err := rt.Registry().Register("motion", motionProgram)
	if err != nil {
		t.Fatal(err)
	}
	opts := testOptions()

	// Fill the cache to capacity with positive slices.
	for _, t0 := range []float64{1, 2} {
		if _, _, _, err := rt.PreparedSlice(entry, "A", t0, opts); err != nil {
			t.Fatalf("warm t0=%g: %v", t0, err)
		}
	}

	if _, _, hit, err := rt.PreparedSlice(entry, "A", 777, opts); !errors.Is(err, ErrEmptySlice) || hit {
		t.Fatalf("cold empty probe at capacity: hit=%v err=%v", hit, err)
	}
	if _, _, hit, err := rt.PreparedSlice(entry, "A", 777, opts); !errors.Is(err, ErrEmptySlice) || !hit {
		t.Fatalf("negative verdict evicted itself at capacity: hit=%v err=%v", hit, err)
	}
}

// TestProjectionVerdictNegativeCached: the "needs the projection
// generator" verdict on an ∃-query is deterministic in the program, so
// it is cached negatively — replays skip the planning pass.
func TestProjectionVerdictNegativeCached(t *testing.T) {
	hooks := &countingHooks{}
	rt := New(Config{PoolSize: 1, CacheSize: 4}, hooks)
	t.Cleanup(rt.Close)
	entry, _, err := rt.Registry().Register("q", `
rel S(x, y) := { x >= 0, y >= 0, x + y <= 1 };
query Q(x)  := exists y. S(x, y);
`)
	if err != nil {
		t.Fatal(err)
	}
	opts := testOptions()

	_, _, hit, err := rt.PreparedFor(entry, "", "Q", opts)
	if !errors.Is(err, ErrNeedsProjection) || hit {
		t.Fatalf("cold ∃-query: hit=%v err=%v", hit, err)
	}
	misses := hooks.misses.Load()
	_, _, hit, err = rt.PreparedFor(entry, "", "Q", opts)
	if !errors.Is(err, ErrNeedsProjection) || !hit {
		t.Fatalf("replayed ∃-query verdict should hit the cache: hit=%v err=%v", hit, err)
	}
	if hooks.misses.Load() != misses {
		t.Fatal("replay re-ran the planning pass")
	}
}
