package runtime

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/walk"
)

// fingerprintExempt mirrors the cachekey analyzer's exclusion list
// (internal/analysis/cachekey): fields deliberately outside the
// CacheKey fingerprint. Interrupt is per-call state — baking a
// request's context into shared prepared geometry would poison the
// sampler cache — so the test asserts it does NOT move the key.
var fingerprintExempt = map[string]bool{
	"Interrupt": true,
}

// TestOptionsFingerprintComplete walks core.Options by reflection and
// checks that perturbing each field individually changes CacheKey (or,
// for exempt fields, leaves it unchanged). It is the value-level twin
// of the cachekey analyzer's compile-time reachability check: a new
// Options field that is forgotten in CacheKey fails both, here because
// two differently-behaving Options would share a cache entry.
func TestOptionsFingerprintComplete(t *testing.T) {
	// The baseline avoids every zero value that CacheKey collapses to a
	// default (Params zero -> DefaultParams, RoundingIterations 0 -> 3,
	// MaxPhaseSamples 0 -> 1500, AcceptanceFloor 0 -> 1e-4), so a
	// perturbation can never land on the baseline's own encoding.
	base := core.Options{
		Params:             core.Params{Gamma: 0.2, Eps: 0.25, Delta: 0.1},
		Walk:               walk.GridWalk,
		WalkSteps:          777,
		RoundingIterations: 7,
		MaxPhaseSamples:    1100,
		MaxRounds:          9,
		AcceptanceFloor:    0.123,
	}
	baseKey := base.CacheKey()

	rt := reflect.TypeOf(base)
	for i := 0; i < rt.NumField(); i++ {
		field := rt.Field(i)
		mod := base
		perturb(t, field.Name, reflect.ValueOf(&mod).Elem().Field(i))
		modKey := mod.CacheKey()
		switch {
		case fingerprintExempt[field.Name]:
			if modKey != baseKey {
				t.Errorf("exempt field Options.%s moved CacheKey:\n  base %s\n  mod  %s\nper-call state must stay outside the fingerprint", field.Name, baseKey, modKey)
			}
		case modKey == baseKey:
			t.Errorf("Options.%s does not perturb CacheKey (%s): two Options differing only in %s would share a prepared-sampler cache entry — fold the field into CacheKey or add it to the documented exclusion lists", field.Name, baseKey, field.Name)
		}
	}
}

// perturb mutates v to a value distinct from the baseline's, failing
// the test on a field kind it does not know how to handle (so adding
// an exotic field forces a conscious decision here).
func perturb(t *testing.T, name string, v reflect.Value) {
	t.Helper()
	switch v.Kind() {
	case reflect.Float64, reflect.Float32:
		v.SetFloat(v.Float() + 0.101)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(v.Int() + 1)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(v.Uint() + 1)
	case reflect.Bool:
		v.SetBool(!v.Bool())
	case reflect.String:
		v.SetString(v.String() + "#alt")
	case reflect.Func:
		v.Set(reflect.MakeFunc(v.Type(), func([]reflect.Value) []reflect.Value {
			err := errors.New("perturbed")
			return []reflect.Value{reflect.ValueOf(&err).Elem()}
		}))
	case reflect.Struct:
		// Perturb every leaf so a nested struct (Params) moves the key
		// whenever any of its fields is fingerprinted.
		for i := 0; i < v.NumField(); i++ {
			perturb(t, name+"."+v.Type().Field(i).Name, v.Field(i))
		}
	default:
		t.Fatalf("Options field %s has kind %s the fingerprint test cannot perturb: teach perturb() about it", name, v.Kind())
	}
}

// TestOptionsFingerprintNestedParams pins the sub-field granularity for
// the one nested struct: each Params component must move the key on its
// own, not only when Params changes wholesale.
func TestOptionsFingerprintNestedParams(t *testing.T) {
	base := core.Options{Params: core.Params{Gamma: 0.2, Eps: 0.25, Delta: 0.1}}
	baseKey := base.CacheKey()
	for _, tc := range []struct {
		name string
		mod  core.Options
	}{
		{"Gamma", core.Options{Params: core.Params{Gamma: 0.3, Eps: 0.25, Delta: 0.1}}},
		{"Eps", core.Options{Params: core.Params{Gamma: 0.2, Eps: 0.35, Delta: 0.1}}},
		{"Delta", core.Options{Params: core.Params{Gamma: 0.2, Eps: 0.25, Delta: 0.2}}},
	} {
		if tc.mod.CacheKey() == baseKey {
			t.Errorf("Params.%s does not perturb CacheKey", tc.name)
		}
	}
}
