package runtime

import (
	"context"
	"sync"
	"time"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/rng"
)

// Prepared is the cache-friendly form of a relation sampler: the
// expensive setup (per-tuple rounding, well-boundedness witnesses and
// volume estimation) is paid once by Prepare, and NewObservable then
// binds request seeds to the warm geometry for the cost of a walker
// initialisation. A Prepared is safe for concurrent use — binds create
// independent generators — and is what the sampler cache stores.
//
// The cdb package re-exports this type as cdb.PreparedSampler.
type Prepared struct {
	prep *core.PreparedRelation
	opts core.Options
}

// Prepare runs the full sampler setup for a well-bounded relation under
// a fixed preparation seed. The prepared geometry (and therefore every
// volume estimate and every sample stream drawn from it) is
// deterministic in (rel, prepSeed, opts). A per-call Interrupt hook in
// opts is stripped: cancellation is a per-request concern and must
// never be baked into geometry shared across requests.
func Prepare(rel *constraint.Relation, prepSeed uint64, opts core.Options) (*Prepared, error) {
	opts.Interrupt = nil
	p, err := core.PrepareRelation(rel, rng.New(prepSeed), opts)
	if err != nil {
		return nil, err
	}
	return &Prepared{prep: p, opts: opts}, nil
}

// NewObservable binds a sampling seed to the prepared geometry and
// returns an independent generator/estimator. Calls with the same seed
// return generators producing identical streams.
func (p *Prepared) NewObservable(seed uint64) (core.Observable, error) {
	return p.prep.Bind(rng.New(seed))
}

// NewObservableCtx is NewObservable with ctx polled inside every hot
// loop of the returned generator, so in-flight Sample and Volume calls
// abort with ctx.Err() within one walk epoch of cancellation. The
// sample stream for a given seed is identical to NewObservable's.
func (p *Prepared) NewObservableCtx(ctx context.Context, seed uint64) (core.Observable, error) {
	return p.prep.BindCtx(ctx, rng.New(seed))
}

// Dim returns the ambient dimension.
func (p *Prepared) Dim() int { return p.prep.Dim() }

// Tuples returns the number of non-empty tuples under the union.
func (p *Prepared) Tuples() int { return p.prep.Tuples() }

// BoundingBox returns the prepared relation's axis-aligned bounding
// box (ok = false for an unbounded description) — the deterministic
// seed of the quality layer's cell partition.
func (p *Prepared) BoundingBox() (lo, hi linalg.Vector, ok bool) {
	return p.prep.BoundingBox()
}

// MemberVolumes returns the per-tuple preparation-time volume
// estimates μ̂_i.
func (p *Prepared) MemberVolumes() []float64 { return p.prep.MemberVolumes() }

// VolumeAccuracy reports the (ε, δ) ledger of the preparation-time
// volume passes.
func (p *Prepared) VolumeAccuracy() (core.VolumeAccuracy, bool) {
	return p.prep.VolumeAccuracy()
}

// ScaleMemberWeight skews the prepared mixture weights — a
// fault-injection hook for quality-audit tests only (see
// core.PreparedRelation.ScaleMemberWeight).
func (p *Prepared) ScaleMemberWeight(i int, factor float64) {
	p.prep.ScaleMemberWeight(i, factor)
}

// NewMemberObservable binds a seed to the i-th non-empty tuple alone —
// the per-convex-piece generator reconstruction builds hulls from.
func (p *Prepared) NewMemberObservable(i int, seed uint64) (core.Observable, error) {
	return p.prep.BindMember(i, rng.New(seed))
}

// Volume returns the relation's volume estimate from the warm geometry.
// Single-tuple relations surface the preparation-time estimate directly
// — no observable is bound, no walker initialised — because the
// per-tuple estimate is already the whole relation's estimate. Unions
// bind seed for the Karp–Luby acceptance pass that corrects overlap.
func (p *Prepared) Volume(seed uint64) (float64, error) {
	return p.VolumeCtx(context.Background(), seed)
}

// VolumeCtx is Volume with cooperative cancellation of the acceptance
// pass (the single-tuple fast path never blocks and ignores ctx).
func (p *Prepared) VolumeCtx(ctx context.Context, seed uint64) (float64, error) {
	if v, ok := p.prep.PreparedVolume(); ok {
		return v, nil
	}
	obs, err := p.prep.BindCtx(ctx, rng.New(seed))
	if err != nil {
		return 0, err
	}
	return obs.Volume()
}

// VolumeWithAccuracy is VolumeCtx returning the estimate's (ε, δ)
// ledger alongside it: for single-tuple relations the preparation-time
// ledger, for unions the bound estimator's acceptance pass folded with
// the worst member pass. accOK is false when no ledger is available.
func (p *Prepared) VolumeWithAccuracy(ctx context.Context, seed uint64) (v float64, acc core.VolumeAccuracy, accOK bool, err error) {
	if v, ok := p.prep.PreparedVolume(); ok {
		acc, accOK = p.prep.VolumeAccuracy()
		return v, acc, accOK, nil
	}
	o, err := p.prep.BindCtx(ctx, rng.New(seed))
	if err != nil {
		return 0, core.VolumeAccuracy{}, false, err
	}
	v, err = o.Volume()
	if err != nil {
		return 0, core.VolumeAccuracy{}, false, err
	}
	acc, accOK = core.VolumeAccuracyOf(o)
	return v, acc, accOK, nil
}

// MedianVolumeCtx amplifies the volume confidence over the warm
// geometry: k independently seeded estimators (the same seed schedule
// as the classical ln(1/δ) median powering) run concurrently and the
// median estimate is returned. Unlike the deprecated package-level
// MedianVolume, no estimator pays a cold sampler setup. Note that for
// single-tuple relations every bound estimator shares the
// preparation-time estimate, so amplification is meaningful only for
// unions (whose acceptance pass depends on the seed).
func (p *Prepared) MedianVolumeCtx(ctx context.Context, k int, baseSeed uint64) (float64, error) {
	return core.MedianVolume(func(s uint64) (core.Observable, error) {
		return p.NewObservableCtx(ctx, s)
	}, k, baseSeed)
}

// SampleMany draws n samples with w parallel workers from the warm
// geometry; worker i owns seed baseSeed+7919·i and the indices ≡ i
// (mod w), so the output is deterministic in (n, w, baseSeed).
func (p *Prepared) SampleMany(n, w int, baseSeed uint64) ([]linalg.Vector, error) {
	return core.SampleMany(p.NewObservable, n, w, baseSeed)
}

// SampleManyVia is SampleMany with worker execution scheduled through
// submit (e.g. the runtime's bounded worker pool). The output is
// identical to SampleMany for the same arguments.
func (p *Prepared) SampleManyVia(submit core.Submitter, n, w int, baseSeed uint64) ([]linalg.Vector, error) {
	return core.SampleManyVia(submit, p.NewObservable, n, w, baseSeed)
}

// SampleManyCtx is SampleManyVia with cooperative cancellation: workers
// poll ctx between samples and the bound generators poll it inside
// their walk epochs. Points drawn for a given seed are identical to
// SampleMany's when the context never fires.
func (p *Prepared) SampleManyCtx(ctx context.Context, submit core.Submitter, n, w int, baseSeed uint64) ([]linalg.Vector, error) {
	return core.SampleManyCtx(ctx, submit, func(seed uint64) (core.Observable, error) {
		return p.NewObservableCtx(ctx, seed)
	}, n, w, baseSeed)
}

// DrawStats is the measured effort of one batched draw: per-seed bind
// count and time, cumulative pool queue wait, the aggregated generator
// effort, and — when the bound generators are unions — the per-member
// (per-disjunct) effort split the executor attributes to "key#i".
type DrawStats struct {
	Binds      int64
	BindNanos  int64
	QueueNanos int64
	Total      core.SampleStats
	Members    []core.SampleStats
	// MemberDraws counts accepted draws per canonical union member,
	// aggregated across the bound generators — the observed mixture the
	// quality tracker compares against exact volume shares.
	MemberDraws []int64
}

// SampleManyObserved is SampleManyCtx with effort measurement: binds
// are timed, queue waits measured, and after the draw the bound
// generators' walk/rejection counters are aggregated into ds. The
// sample stream is identical to SampleManyCtx's for the same
// arguments. ds must be non-nil and unshared until the call returns.
func (p *Prepared) SampleManyObserved(ctx context.Context, submit core.Submitter, n, w int, baseSeed uint64, ds *DrawStats) ([]linalg.Vector, error) {
	var mu sync.Mutex
	var bound []core.Observable
	factory := func(seed uint64) (core.Observable, error) {
		t0 := time.Now()
		o, err := p.NewObservableCtx(ctx, seed)
		dt := time.Since(t0).Nanoseconds()
		mu.Lock()
		ds.Binds++
		ds.BindNanos += dt
		if err == nil {
			bound = append(bound, o)
		}
		mu.Unlock()
		return o, err
	}
	timedSubmit := func(fn func()) {
		queued := time.Now()
		submit(func() {
			wait := time.Since(queued).Nanoseconds()
			mu.Lock()
			ds.QueueNanos += wait
			mu.Unlock()
			fn()
		})
	}
	pts, err := core.SampleManyCtx(ctx, timedSubmit, factory, n, w, baseSeed)
	// SampleManyCtx waits for every worker before returning, so the
	// bound generators' counters are quiescent here.
	for _, o := range bound {
		ds.Total.Merge(core.EffortOf(o))
		if u, ok := o.(*core.Union); ok {
			for i, md := range u.MemberDraws() {
				for len(ds.MemberDraws) <= i {
					ds.MemberDraws = append(ds.MemberDraws, 0)
				}
				ds.MemberDraws[i] += md
			}
			for i := 0; i < u.Members(); i++ {
				for len(ds.Members) <= i {
					ds.Members = append(ds.Members, core.SampleStats{})
				}
				ds.Members[i].Merge(u.MemberEffort(i))
			}
		} else {
			if len(ds.Members) == 0 {
				ds.Members = append(ds.Members, core.SampleStats{})
			}
			ds.Members[0].Merge(core.EffortOf(o))
		}
	}
	return pts, err
}

// CacheKey fingerprints the options the prepared geometry was built
// with; combined with a database id, relation name and preparation seed
// it uniquely identifies the prepared sampler.
func (p *Prepared) CacheKey() string { return p.opts.CacheKey() }

// Options returns the options the geometry was prepared with.
func (p *Prepared) Options() core.Options { return p.opts }
