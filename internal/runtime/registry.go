package runtime

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"repro/internal/constraint"
)

// ErrConflict reports a registration under an id that already holds a
// different program.
var ErrConflict = errors.New("runtime: database id already registered with different source")

// ErrRegistryFull reports that the registry reached its capacity.
var ErrRegistryFull = errors.New("runtime: database registry is full")

// DatabaseEntry is one registered constraint database program.
type DatabaseEntry struct {
	ID        string
	Name      string
	Source    string
	DB        *constraint.Database
	CreatedAt time.Time
}

// Registry holds the parsed constraint databases a runtime can sample
// from. Registration parses and compiles the program once; all later
// requests address relations and queries by (database id, name).
type Registry struct {
	mu    sync.RWMutex
	byID  map[string]*DatabaseEntry
	order []string // registration order for stable listings
	cap   int      // 0 = unbounded
}

// NewRegistry returns an empty registry holding at most capacity
// databases (0 = unbounded).
func NewRegistry(capacity int) *Registry {
	return &Registry{byID: map[string]*DatabaseEntry{}, cap: capacity}
}

// DatabaseID returns the id a program registers under: the explicit name
// when given, otherwise a content hash of the source — so anonymous
// re-registrations of the same program are idempotent.
func DatabaseID(name, source string) string {
	if name != "" {
		return name
	}
	h := fnv.New64a()
	h.Write([]byte(source))
	return fmt.Sprintf("db-%012x", h.Sum64()&0xffffffffffff)
}

// Register parses source and stores it under DatabaseID(name, source).
// Re-registering identical source under the same id is idempotent
// (created=false); a conflicting source for an existing id is an error.
func (r *Registry) Register(name, source string) (entry *DatabaseEntry, created bool, err error) {
	db, err := constraint.Parse(source)
	if err != nil {
		return nil, false, fmt.Errorf("parse: %w", err)
	}
	return r.add(name, source, db)
}

// RegisterParsed stores an already-parsed database under
// DatabaseID(name, source) with the same idempotence and conflict rules
// as Register. Source may be empty for databases built in code; the id
// then hashes the empty string unless a name is given.
func (r *Registry) RegisterParsed(name, source string, db *constraint.Database) (*DatabaseEntry, bool, error) {
	return r.add(name, source, db)
}

func (r *Registry) add(name, source string, db *constraint.Database) (*DatabaseEntry, bool, error) {
	id := DatabaseID(name, source)
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.byID[id]; ok {
		if existing.Source == source {
			return existing, false, nil
		}
		return nil, false, fmt.Errorf("%w: %q", ErrConflict, id)
	}
	if r.cap > 0 && len(r.byID) >= r.cap {
		return nil, false, fmt.Errorf("%w (capacity %d)", ErrRegistryFull, r.cap)
	}
	entry := &DatabaseEntry{ID: id, Name: name, Source: source, DB: db, CreatedAt: time.Now()}
	r.byID[id] = entry
	r.order = append(r.order, id)
	return entry, true, nil
}

// Get returns a registered database by id.
func (r *Registry) Get(id string) (*DatabaseEntry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.byID[id]
	return e, ok
}

// List returns the registered databases in registration order.
func (r *Registry) List() []*DatabaseEntry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*DatabaseEntry, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, r.byID[id])
	}
	return out
}

// Len returns the number of registered databases.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byID)
}
