package runtime

import (
	"errors"
	"fmt"
	"strconv"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/spacetime"
)

// The spacetime preparations serve the moving-object workload: relations
// over (x_1..x_d, t) — typically trajectory fleets of space-time prisms
// — queried through the time-slice operator, window sampling and alibi
// evaluation.
//
// Time slices are where the prepared-sampler cache earns its keep for
// this workload: a dashboard replaying "where could everything have
// been at t0?" hits the same (database, relation, t0, options) key on
// every frame, so the slicing + rounding + volume setup is paid once
// per distinct t0 and every later request binds only its seed. Empty
// slices — t0 outside the support — are cached as negative entries, so
// out-of-support replays are O(1) verdict lookups instead of repeated
// failed builds.

// ErrEmptySlice marks a time slice (or window) with no feasible tuple —
// t0 outside the relation's support. Serving layers map it to an empty
// result or a client error; it is cached negatively.
var ErrEmptySlice = errors.New("empty time slice")

// sliceCacheName canonically names a slice target for the sampler
// cache: relation name plus the slice time (shortest round-trip float
// format, so 1.5 and 1.50 share an entry).
func sliceCacheName(rel string, t0 float64) string {
	return rel + "@" + strconv.FormatFloat(t0, 'g', -1, 64)
}

// windowCacheName names a windowed space-time target.
func windowCacheName(rel string, t0, t1 float64) string {
	return rel + "@" + strconv.FormatFloat(t0, 'g', -1, 64) + ":" + strconv.FormatFloat(t1, 'g', -1, 64)
}

// SliceKey is the cache key PreparedSlice stores under — exported so
// routing layers can compute a request's owner without resolving the
// target locally. optsKey is Options.CacheKey().
func SliceKey(dbID, rel string, t0 float64, optsKey string) string {
	return SamplerKey(dbID, "slice", sliceCacheName(rel, t0), optsKey)
}

// WindowKey is the cache key PreparedWindow stores under.
func WindowKey(dbID, rel string, t0, t1 float64, optsKey string) string {
	return SamplerKey(dbID, "window", windowCacheName(rel, t0, t1), optsKey)
}

// spacetimeRelation resolves a plain relation (spacetime targets are
// always declared relations, not queries).
func spacetimeRelation(e *DatabaseEntry, name string) (*constraint.Relation, error) {
	if name == "" {
		return nil, errors.New("missing relation name")
	}
	rel, ok := e.DB.Relation(name)
	if !ok {
		return nil, fmt.Errorf("%w: relation %q in database %q", ErrTargetNotFound, name, e.ID)
	}
	return rel, nil
}

// PreparedSlice returns the cached prepared sampler for the t0-slice of
// a relation, slicing and preparing on first use. The returned key
// feeds the batch executor's coalescing. Empty slices are cached as
// negative entries (hit=true on replay, err wrapping ErrEmptySlice).
func (rt *Runtime) PreparedSlice(e *DatabaseEntry, relName string, t0 float64, opts core.Options) (*Prepared, string, bool, error) {
	key := SliceKey(e.ID, relName, t0, opts.CacheKey())
	ps, hit, err := rt.cache.Get(key, func() (*Prepared, error) {
		rel, err := spacetimeRelation(e, relName)
		if err != nil {
			return nil, err
		}
		slice, err := spacetime.TimeSlice(rel, spacetime.TimeColumn(rel), t0)
		if err != nil {
			return nil, err
		}
		if len(slice.Tuples) == 0 {
			if lo, hi, ok := spacetime.Support(rel, spacetime.TimeColumn(rel)); ok {
				return nil, Negative(fmt.Errorf("%w: t0=%g outside the support [%.6g, %.6g] of %q",
					ErrEmptySlice, t0, spacetime.SnapNoise(lo), spacetime.SnapNoise(hi), relName))
			}
			return nil, Negative(fmt.Errorf("%w: t0=%g, relation %q", ErrEmptySlice, t0, relName))
		}
		// Shed measure-zero pieces (e.g. a slice exactly at another
		// bead's observation time) so one degenerate tuple cannot sink a
		// snapshot that is otherwise full-dimensional.
		slice, _ = spacetime.PruneThin(slice, 0)
		if len(slice.Tuples) == 0 {
			return nil, Negative(fmt.Errorf("%w: the slice of %q at t0=%g is a measure-zero set "+
				"(t0 coincides with an observation time)", ErrEmptySlice, relName, t0))
		}
		return Prepare(slice, PrepSeedFor(key), opts)
	})
	return ps, key, hit, err
}

// PreparedWindow is PreparedSlice's counterpart for time windows: the
// cached prepared sampler for the [t0, t1] restriction of a relation,
// windowing and preparing on first use. A window whose boundary touches
// an observation time clips a bead to a flat (measure-zero) set, so
// thin tuples are shed before the well-boundedness setup. Empty windows
// are cached negatively, like empty slices.
func (rt *Runtime) PreparedWindow(e *DatabaseEntry, relName string, t0, t1 float64, opts core.Options) (*Prepared, string, bool, error) {
	key := WindowKey(e.ID, relName, t0, t1, opts.CacheKey())
	ps, hit, err := rt.cache.Get(key, func() (*Prepared, error) {
		rel, err := spacetimeRelation(e, relName)
		if err != nil {
			return nil, err
		}
		win, err := spacetime.TimeWindow(rel, spacetime.TimeColumn(rel), t0, t1)
		if err != nil {
			return nil, err
		}
		win, _ = spacetime.PruneThin(win, 0)
		if len(win.Tuples) == 0 {
			return nil, Negative(fmt.Errorf("%w: window [%g, %g], relation %q", ErrEmptySlice, t0, t1, relName))
		}
		return Prepare(win, PrepSeedFor(key), opts)
	})
	return ps, key, hit, err
}
