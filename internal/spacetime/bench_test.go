package spacetime_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/rng"
	"repro/internal/spacetime"
)

// The benchmarks quantify the slice-cache win the /v1/spacetime/slice
// endpoint gets from the prepared-sampler cache: repeated time-slice
// sampling at the same t0 either re-slices and re-prepares per request
// (cold) or binds request seeds to the one warm prepared snapshot
// (warm). BENCH_spacetime.json records the measured ratio.

const benchSliceSamples = 16

func benchSlice(b *testing.B) (*spacetime.Trajectory, float64) {
	b.Helper()
	tr := dataset.RandomTrajectory(rng.New(99), "bench", dataset.TrajectoryConfig{Steps: 4})
	lo, hi := tr.Support()
	return tr, lo + 0.37*(hi-lo) // generic interior slice time
}

// BenchmarkColdTimeSliceSampling is the naive serving strategy: every
// request slices the trajectory and pays the full rounding + volume
// preparation before drawing.
func BenchmarkColdTimeSliceSampling(b *testing.B) {
	tr, t0 := benchSlice(b)
	rel := tr.Relation()
	tc := spacetime.TimeColumn(rel)
	opts := core.Options{}
	for i := 0; i < b.N; i++ {
		slice, err := spacetime.TimeSlice(rel, tc, t0)
		if err != nil {
			b.Fatal(err)
		}
		prep, err := core.PrepareRelation(slice, rng.New(1), opts)
		if err != nil {
			b.Fatal(err)
		}
		obs, err := prep.Bind(rng.New(uint64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < benchSliceSamples; j++ {
			if _, err := obs.Sample(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkWarmTimeSliceSampling is the served warm path: the slice is
// prepared once (what the sampler cache stores under (db, relation,
// t0, options)) and every request only binds its seed.
func BenchmarkWarmTimeSliceSampling(b *testing.B) {
	tr, t0 := benchSlice(b)
	rel := tr.Relation()
	tc := spacetime.TimeColumn(rel)
	opts := core.Options{}
	slice, err := spacetime.TimeSlice(rel, tc, t0)
	if err != nil {
		b.Fatal(err)
	}
	prep, err := core.PrepareRelation(slice, rng.New(1), opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obs, err := prep.Bind(rng.New(uint64(i + 1)))
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < benchSliceSamples; j++ {
			if _, err := obs.Sample(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkAlibiSampling measures one full sampled alibi evaluation on
// a crossing pair (meet region build + volume estimate), the cost the
// paper's sampling path pays where exact elimination would blow up.
func BenchmarkAlibiSampling(b *testing.B) {
	a, t2 := dataset.CrossingPair(rng.New(42), dataset.TrajectoryConfig{Steps: 3})
	ra, rb := a.Relation(), t2.Relation()
	tc := spacetime.TimeColumn(ra)
	lo, hi := a.Support()
	for i := 0; i < b.N; i++ {
		rep, err := spacetime.Alibi(ra, rb, tc, lo, hi, uint64(i+1), 1, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Meet {
			b.Fatal("crossing pair stopped meeting")
		}
	}
}
