// Package spacetime models moving objects as linear constraint
// relations over (space × time) and evaluates spatio-temporal queries on
// them with the library's uniform generators.
//
// A trajectory is reconstructed from timestamped observations plus a
// speed bound: between two consecutive observations (t_i, p_i) and
// (t_{i+1}, p_{i+1}) the object can only have been inside the
// *space-time prism* (a.k.a. bead)
//
//	{ (x, t) : t_i ≤ t ≤ t_{i+1},
//	           ‖x − p_i‖ ≤ v·(t − t_i),
//	           ‖x − p_{i+1}‖ ≤ v·(t_{i+1} − t) },
//
// the intersection of a forward and a backward speed cone. With a
// polyhedral speed norm (a regular k-gon in the plane, the axis norm in
// other dimensions) every bead is a convex conjunction of linear
// constraints over (x_1..x_d, t), so a trajectory is exactly a
// generalized relation of the paper — a finite union of convex tuples —
// and the whole sampling machinery (union generator, volume estimator,
// prepared samplers, Fourier–Motzkin baseline) applies unchanged.
//
// On top of the model the package provides the two core spatio-temporal
// operators:
//
//   - TimeSlice (slice.go): fix t = t0 and obtain the convex snapshot
//     relation over space — the time-slice operator that FO-complete
//     spatio-temporal query languages are built around.
//   - Alibi (alibi.go): "could objects A and B have met during
//     [t0, t1]?", answered both by sampling the meet region and
//     symbolically by Fourier–Motzkin elimination, cross-checked.
package spacetime

import (
	"fmt"
	"math"

	"repro/internal/constraint"
	"repro/internal/linalg"
)

// DefaultFacets is the default number of facets of the planar speed
// polygon. A regular 8-gon circumscribes the Euclidean speed disc
// within 1/cos(π/8) ≈ 1.082 of its radius. More facets sharpen the
// beads at linear sampling cost — but the exact Fourier–Motzkin alibi
// path degrades quickly with facet count (the alibi-query literature's
// point about exact quantifier elimination), whereas the sampling path
// does not.
const DefaultFacets = 8

// Observation is one timestamped position fix of a moving object.
type Observation struct {
	T float64
	P linalg.Vector
}

// Trajectory is a moving object reconstructed from observations: the
// union of the space-time prisms between consecutive fixes under the
// speed bound VMax.
type Trajectory struct {
	Name   string
	VMax   float64
	Facets int // speed-polygon facets (2-D only; see SpeedDirections)
	Obs    []Observation

	dirs []linalg.Vector // unit speed-norm directions, fixed at construction
}

// SpeedDirections returns the outer normals of the polyhedral unit
// speed ball in d spatial dimensions: a regular k-gon for d = 2, the
// segment {±1} for d = 1 and the 2d axis directions (the L∞ ball) for
// d ≥ 3. The polyhedral ball contains the Euclidean unit ball, so the
// beads are conservative supersets of the Euclidean ones — an alibi
// refutation ("they could not have met") under the polyhedral norm is
// also a refutation under the Euclidean norm.
func SpeedDirections(d, facets int) []linalg.Vector {
	switch {
	case d == 1:
		return []linalg.Vector{{1}, {-1}}
	case d == 2:
		if facets < 3 {
			facets = DefaultFacets
		}
		dirs := make([]linalg.Vector, facets)
		for j := range dirs {
			ang := 2 * math.Pi * float64(j) / float64(facets)
			dirs[j] = linalg.Vector{math.Cos(ang), math.Sin(ang)}
		}
		return dirs
	default:
		dirs := make([]linalg.Vector, 0, 2*d)
		for i := 0; i < d; i++ {
			up := make(linalg.Vector, d)
			up[i] = 1
			down := make(linalg.Vector, d)
			down[i] = -1
			dirs = append(dirs, up, down)
		}
		return dirs
	}
}

// NewTrajectory validates the observations (at least two, strictly
// increasing timestamps, consistent dimension, every leg reachable under
// the Euclidean speed bound — which implies polyhedral feasibility) and
// returns the trajectory.
func NewTrajectory(name string, vmax float64, facets int, obs ...Observation) (*Trajectory, error) {
	if len(obs) < 2 {
		return nil, fmt.Errorf("spacetime: trajectory %q needs at least 2 observations, got %d", name, len(obs))
	}
	if vmax <= 0 {
		return nil, fmt.Errorf("spacetime: trajectory %q needs a positive speed bound, got %g", name, vmax)
	}
	d := len(obs[0].P)
	if d == 0 {
		return nil, fmt.Errorf("spacetime: trajectory %q has zero spatial dimension", name)
	}
	for i := 1; i < len(obs); i++ {
		if len(obs[i].P) != d {
			return nil, fmt.Errorf("spacetime: trajectory %q observation %d has dimension %d, want %d",
				name, i, len(obs[i].P), d)
		}
		dt := obs[i].T - obs[i-1].T
		if dt <= 0 {
			return nil, fmt.Errorf("spacetime: trajectory %q timestamps not strictly increasing at observation %d", name, i)
		}
		if dist := obs[i].P.Dist(obs[i-1].P); dist > vmax*dt*(1+1e-9) {
			return nil, fmt.Errorf("spacetime: trajectory %q leg %d needs speed %g > bound %g",
				name, i, dist/dt, vmax)
		}
	}
	return &Trajectory{
		Name: name, VMax: vmax, Facets: facets, Obs: obs,
		// Computed eagerly so a shared *Trajectory is safe for
		// concurrent Bead/Relation calls.
		dirs: SpeedDirections(d, facets),
	}, nil
}

// SpatialDim returns the number of spatial coordinates.
func (tr *Trajectory) SpatialDim() int { return len(tr.Obs[0].P) }

// Beads returns the number of space-time prisms (legs).
func (tr *Trajectory) Beads() int { return len(tr.Obs) - 1 }

// Support returns the time span [first, last] covered by the trajectory.
func (tr *Trajectory) Support() (t0, t1 float64) {
	return tr.Obs[0].T, tr.Obs[len(tr.Obs)-1].T
}

func (tr *Trajectory) directions() []linalg.Vector {
	if tr.dirs == nil {
		// A Trajectory built by literal rather than NewTrajectory; no
		// concurrency guarantee is owed there.
		tr.dirs = SpeedDirections(tr.SpatialDim(), tr.Facets)
	}
	return tr.dirs
}

// Bead returns leg i (between observations i and i+1) as a generalized
// tuple over (x_1..x_d, t): the time window plus, for every speed-ball
// direction n, the forward cone n·(x − p_i) ≤ v·(t − t_i) and the
// backward cone n·(x − p_{i+1}) ≤ v·(t_{i+1} − t).
func (tr *Trajectory) Bead(i int) constraint.Tuple {
	if i < 0 || i >= tr.Beads() {
		panic(fmt.Sprintf("spacetime: trajectory %q has no bead %d", tr.Name, i))
	}
	d := tr.SpatialDim()
	lo, hi := tr.Obs[i], tr.Obs[i+1]
	atoms := make([]constraint.Atom, 0, 2+2*len(tr.directions()))

	// t ≤ t_{i+1} and −t ≤ −t_i.
	up := make(linalg.Vector, d+1)
	up[d] = 1
	atoms = append(atoms, constraint.NewAtom(up, hi.T, false))
	down := make(linalg.Vector, d+1)
	down[d] = -1
	atoms = append(atoms, constraint.NewAtom(down, -lo.T, false))

	for _, n := range tr.directions() {
		// Forward cone: n·x − v·t ≤ n·p_i − v·t_i.
		fwd := make(linalg.Vector, d+1)
		copy(fwd, n)
		fwd[d] = -tr.VMax
		atoms = append(atoms, constraint.NewAtom(fwd, n.Dot(lo.P)-tr.VMax*lo.T, false))
		// Backward cone: n·x + v·t ≤ n·p_{i+1} + v·t_{i+1}.
		bwd := make(linalg.Vector, d+1)
		copy(bwd, n)
		bwd[d] = tr.VMax
		atoms = append(atoms, constraint.NewAtom(bwd, n.Dot(hi.P)+tr.VMax*hi.T, false))
	}
	return constraint.NewTuple(d+1, atoms...)
}

// Vars returns the column names of the trajectory relation: the spatial
// coordinates followed by TimeVar.
func (tr *Trajectory) Vars() []string {
	d := tr.SpatialDim()
	vars := make([]string, d+1)
	for i := 0; i < d; i++ {
		vars[i] = spatialVar(i, d)
	}
	vars[d] = TimeVar
	return vars
}

// spatialVar names spatial column i: x, y, z for d ≤ 3, x0.. otherwise.
func spatialVar(i, d int) string {
	if d <= 3 {
		return [...]string{"x", "y", "z"}[i]
	}
	return fmt.Sprintf("x%d", i)
}

// Relation returns the trajectory as a generalized relation over
// (x_1..x_d, t): the union of its beads. The result plugs directly into
// the library's samplers, volume estimators and the Fourier–Motzkin
// path, and Relation().Source() renders it as a registrable program
// declaration.
func (tr *Trajectory) Relation() *constraint.Relation {
	tuples := make([]constraint.Tuple, tr.Beads())
	for i := range tuples {
		tuples[i] = tr.Bead(i)
	}
	return constraint.MustRelation(tr.Name, tr.Vars(), tuples...)
}
