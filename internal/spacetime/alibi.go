package spacetime

import (
	"fmt"
	"sort"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/lp"
	"repro/internal/rng"
)

// thinTol is the Chebyshev-radius floor below which a meet-region tuple
// counts as degenerate (measure ~zero): it contributes nothing to the
// meeting volume and would break the well-boundedness witnesses.
const thinTol = DefaultThinTol

// Interval is a closed time interval [Lo, Hi].
type Interval struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// Report is the outcome of an alibi query "could A and B have met during
// [t0, t1]?", answered two independent ways:
//
//   - Meet: the sampling verdict — the meet region has positive measure
//     under the paper's volume estimator, with Volume its meeting-volume
//     estimate (relative error ε with confidence 1−δ from the Options,
//     amplified to median-of-k when k > 1).
//   - SymbolicMeet: the Fourier–Motzkin verdict — spatial coordinates
//     eliminated exactly, leaving the meeting-time intervals.
//
// Consistent reports whether the two verdicts agree; they can disagree
// only on degenerate (measure-zero) contacts, where the symbolic path
// sees a grazing touch the sampler cannot.
type Report struct {
	Meet         bool       `json:"meet"`
	SymbolicMeet bool       `json:"symbolic_meet"`
	Consistent   bool       `json:"consistent"`
	Volume       float64    `json:"volume"`
	RelErr       float64    `json:"rel_err"`
	Confidence   float64    `json:"confidence"`
	MeetTimes    []Interval `json:"meet_times,omitempty"`
	RegionTuples int        `json:"region_tuples"`
	PrunedTuples int        `json:"pruned_tuples"` // degenerate tuples dropped before sampling
	Window       Interval   `json:"window"`
}

// MeetRegion returns the set of (x, t) with t ∈ [t0, t1] where both
// relations hold — the conjunction A ∧ B ∧ (t0 ≤ t ≤ t1) as a
// generalized relation. Both relations must share the arity and time
// column convention.
func MeetRegion(a, b *constraint.Relation, timeCol int, t0, t1 float64) (*constraint.Relation, error) {
	if a.Arity() != b.Arity() {
		return nil, fmt.Errorf("spacetime: alibi arity mismatch: %q has %d columns, %q has %d",
			a.Name, a.Arity(), b.Name, b.Arity())
	}
	// Intersection is positional, so the relations must agree on what
	// each column means — permuted frames (a(x, y, t) vs b(t, x, y))
	// would silently treat one object's time as the other's position.
	for i, v := range a.Vars {
		if b.Vars[i] != v {
			return nil, fmt.Errorf("spacetime: alibi column mismatch: %q has columns %v, %q has %v",
				a.Name, a.Vars, b.Name, b.Vars)
		}
	}
	m, err := a.Intersect(b)
	if err != nil {
		return nil, err
	}
	m.Name = fmt.Sprintf("meet(%s,%s)", a.Name, b.Name)
	return TimeWindow(m, timeCol, t0, t1)
}

// MeetTimes eliminates the spatial coordinates of the meet region by
// Fourier–Motzkin and returns the exact meeting-time intervals, merged
// and sorted. An empty slice means the objects provably could not have
// met — the alibi holds.
func MeetTimes(a, b *constraint.Relation, timeCol int, t0, t1 float64) ([]Interval, error) {
	m, err := MeetRegion(a, b, timeCol, t0, t1)
	if err != nil {
		return nil, err
	}
	return meetTimesOf(m, timeCol), nil
}

// MeetTimesOf eliminates the spatial coordinates of an already-built
// meet region — the exported form warm-cache layers use to share one
// region construction between the symbolic and sampling paths.
func MeetTimesOf(region *constraint.Relation, timeCol int) []Interval {
	return meetTimesOf(region, timeCol)
}

// meetTimesOf eliminates the spatial coordinates of an already-built
// meet region. It simplifies region's tuples in place (RemoveRedundant
// preserves the denoted set).
func meetTimesOf(region *constraint.Relation, timeCol int) []Interval {
	// Pre-prune each conjunction to its minimal facet description —
	// intersecting two beads duplicates window and near-parallel cone
	// atoms, and Fourier–Motzkin's blow-up is quadratic per eliminated
	// variable in whatever survives.
	for i, t := range region.Tuples {
		region.Tuples[i] = constraint.RemoveRedundant(t)
	}
	spatial := make([]int, 0, region.Arity()-1)
	for j := 0; j < region.Arity(); j++ {
		if j != timeCol {
			spatial = append(spatial, j)
		}
	}
	times := constraint.EliminateAll(region, spatial, constraint.EliminateOptions{})
	return intervals1D(times)
}

// intervals1D reads each non-empty tuple of a 1-D relation as a closed
// interval and merges overlaps.
func intervals1D(rel *constraint.Relation) []Interval {
	var out []Interval
	for _, t := range rel.Tuples {
		a, b := t.System()
		lo, hi, ok := polytopeInterval(a, b)
		if !ok {
			continue
		}
		out = append(out, Interval{Lo: lo, Hi: hi})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Lo < out[j].Lo })
	merged := out[:0]
	for _, iv := range out {
		if n := len(merged); n > 0 && iv.Lo <= merged[n-1].Hi+1e-12 {
			if iv.Hi > merged[n-1].Hi {
				merged[n-1].Hi = iv.Hi
			}
			continue
		}
		merged = append(merged, iv)
	}
	return merged
}

// polytopeInterval bounds a 1-D constraint system by two LPs; ok is
// false for infeasible or unbounded systems.
func polytopeInterval(a []linalg.Vector, b []float64) (lo, hi float64, ok bool) {
	hi, okHi := lp.Extent(a, b, linalg.Vector{1})
	negLo, okLo := lp.Extent(a, b, linalg.Vector{-1})
	if !okHi || !okLo {
		return 0, 0, false
	}
	return -negLo, hi, true
}

// Alibi answers "could objects A and B have met during [t0, t1]?" both
// ways and cross-checks:
//
//   - Sampling path: build the meet region, drop degenerate tuples
//     (Chebyshev radius below thinTol) and estimate its volume with the
//     prepared machinery — median-of-k estimates when k > 1. The verdict
//     is Meet = volume > 0.
//   - Symbolic path: Fourier–Motzkin elimination of the spatial
//     coordinates, yielding the exact meeting-time intervals.
//
// A non-nil Report is returned even when the region is empty; err is
// reserved for structural failures (arity mismatch, invalid window,
// generator aborts).
func Alibi(a, b *constraint.Relation, timeCol int, t0, t1 float64, seed uint64, k int, opts core.Options) (*Report, error) {
	region, err := MeetRegion(a, b, timeCol, t0, t1)
	if err != nil {
		return nil, err
	}
	times := meetTimesOf(region, timeCol)
	p := opts.Params
	if p.Gamma == 0 && p.Eps == 0 && p.Delta == 0 {
		p = core.DefaultParams()
	}
	rep := &Report{
		SymbolicMeet: len(times) > 0,
		MeetTimes:    times,
		RelErr:       p.Eps,
		Confidence:   1 - p.Delta,
		Window:       Interval{Lo: t0, Hi: t1},
	}

	// Sampling path: prune measure-zero tuples, then estimate the volume.
	fat, pruned := PruneThin(region, thinTol)
	rep.PrunedTuples = pruned
	rep.RegionTuples = len(fat.Tuples)
	if len(fat.Tuples) == 0 {
		rep.Consistent = rep.Meet == rep.SymbolicMeet
		return rep, nil
	}
	vol, err := estimateVolume(fat, seed, k, opts)
	if err != nil {
		return nil, fmt.Errorf("spacetime: alibi volume estimate: %w", err)
	}
	rep.Volume = vol
	rep.Meet = vol > 0
	rep.Consistent = rep.Meet == rep.SymbolicMeet
	return rep, nil
}

// estimateVolume runs the relation volume estimator, median-of-k when
// k > 1 (the classical ln(1/δ) confidence powering).
func estimateVolume(rel *constraint.Relation, seed uint64, k int, opts core.Options) (float64, error) {
	factory := func(s uint64) (core.Observable, error) {
		return core.NewRelationObservable(rel, rng.New(s), opts)
	}
	if k <= 1 {
		obs, err := factory(seed)
		if err != nil {
			return 0, err
		}
		return obs.Volume()
	}
	return core.MedianVolume(factory, k, seed)
}
