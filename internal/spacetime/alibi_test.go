package spacetime_test

import (
	"testing"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/linalg"
	"repro/internal/rng"
	"repro/internal/spacetime"
)

func fastOpts() core.Options {
	return core.Options{MaxPhaseSamples: 200}
}

// twoCommuters builds a hand-made pair whose meeting window is known:
// both pass near the origin-side of the x axis around t = 5.
func twoCommuters(t *testing.T) (a, b *constraint.Relation) {
	t.Helper()
	ta, err := spacetime.NewTrajectory("A", 3, 0,
		spacetime.Observation{T: 0, P: linalg.Vector{0, 0}},
		spacetime.Observation{T: 5, P: linalg.Vector{10, 0}},
		spacetime.Observation{T: 10, P: linalg.Vector{20, 0}},
	)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := spacetime.NewTrajectory("B", 3, 0,
		spacetime.Observation{T: 0, P: linalg.Vector{10, 10}},
		spacetime.Observation{T: 5, P: linalg.Vector{10, 1}},
		spacetime.Observation{T: 10, P: linalg.Vector{10, -10}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return ta.Relation(), tb.Relation()
}

func TestAlibiMeetAndRefute(t *testing.T) {
	a, b := twoCommuters(t)
	tc := spacetime.TimeColumn(a)

	// Full window: the objects cross near (10, 0) around t = 5.
	rep, err := spacetime.Alibi(a, b, tc, 0, 10, 42, 1, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SymbolicMeet {
		t.Error("symbolic path should find a meeting")
	}
	if !rep.Meet || rep.Volume <= 0 {
		t.Errorf("sampling path should find a meeting (volume %g)", rep.Volume)
	}
	if !rep.Consistent {
		t.Error("verdicts should agree")
	}
	if len(rep.MeetTimes) == 0 {
		t.Fatal("no meeting-time intervals")
	}
	// At t = 5 the observations pin A to (10, 0) and B to (10, 1) — one
	// unit apart — so no meeting interval may contain t = 5; the
	// possible meetings cluster on both sides of it.
	near := false
	for _, iv := range rep.MeetTimes {
		if iv.Lo <= 5 && 5 <= iv.Hi {
			t.Errorf("meeting interval [%g, %g] contains the pinned-apart time t = 5", iv.Lo, iv.Hi)
		}
		if iv.Lo >= iv.Hi {
			t.Errorf("degenerate meeting interval [%g, %g]", iv.Lo, iv.Hi)
		}
		if (iv.Hi > 4 && iv.Hi < 5) || (iv.Lo > 5 && iv.Lo < 6) {
			near = true
		}
	}
	if !near {
		t.Errorf("no meeting interval near the crossing: %v", rep.MeetTimes)
	}

	// Early window: at t ∈ [0, 1], A is near the origin and B is ten
	// units away with speed bound 3 — no meeting possible.
	rep, err = spacetime.Alibi(a, b, tc, 0, 1, 42, 1, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rep.SymbolicMeet || rep.Meet {
		t.Errorf("alibi should hold in [0, 1]: symbolic=%v sampling=%v", rep.SymbolicMeet, rep.Meet)
	}
	if !rep.Consistent {
		t.Error("verdicts should agree on the refutation")
	}
	if rep.Volume != 0 {
		t.Errorf("refuted alibi volume = %g, want 0", rep.Volume)
	}
}

func TestAlibiMedianAmplification(t *testing.T) {
	a, b := twoCommuters(t)
	tc := spacetime.TimeColumn(a)
	rep, err := spacetime.Alibi(a, b, tc, 0, 10, 7, 3, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Meet || rep.Volume <= 0 {
		t.Errorf("median-of-3 alibi lost the meeting (volume %g)", rep.Volume)
	}
}

func TestAlibiArityMismatch(t *testing.T) {
	a, _ := twoCommuters(t)
	flat := constraint.MustRelation("F", []string{"x", "t"}, constraint.Cube(2, 0, 1))
	if _, err := spacetime.Alibi(a, flat, 2, 0, 1, 1, 1, fastOpts()); err == nil {
		t.Error("arity mismatch should fail")
	}
	// Same arity but a permuted frame: intersecting positionally would
	// silently read b's time column as a position.
	permuted := constraint.MustRelation("P", []string{"t", "x", "y"}, constraint.Cube(3, 0, 1))
	if _, err := spacetime.Alibi(a, permuted, 2, 0, 1, 1, 1, fastOpts()); err == nil {
		t.Error("column-order mismatch should fail")
	}
}

// TestAlibiCrossCheckSuite is the acceptance suite: on generated
// trajectory pairs — half engineered to meet, half provably separated —
// the sampling verdict must agree with the exact Fourier–Motzkin one.
func TestAlibiCrossCheckSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("alibi cross-check suite skipped in -short mode")
	}
	const pairs = 12 // per class; ≥ 20 verdicts in total
	cfg := dataset.TrajectoryConfig{Steps: 3}
	opts := fastOpts()

	meets, refutes := 0, 0
	for i := 0; i < pairs; i++ {
		r := rng.New(uint64(1000 + i))
		a, b := dataset.CrossingPair(r, cfg)
		ra, rb := a.Relation(), b.Relation()
		lo, hi := a.Support()
		rep, err := spacetime.Alibi(ra, rb, spacetime.TimeColumn(ra), lo, hi, uint64(i+1), 1, opts)
		if err != nil {
			t.Fatalf("crossing pair %d: %v", i, err)
		}
		if !rep.SymbolicMeet {
			t.Errorf("crossing pair %d: symbolic path missed the engineered meeting", i)
		}
		if !rep.Consistent {
			t.Errorf("crossing pair %d: verdicts disagree (sampling=%v symbolic=%v volume=%g pruned=%d)",
				i, rep.Meet, rep.SymbolicMeet, rep.Volume, rep.PrunedTuples)
		}
		if rep.Meet {
			meets++
		}
	}
	for i := 0; i < pairs; i++ {
		r := rng.New(uint64(2000 + i))
		a, b := dataset.SeparatedPair(r, cfg)
		ra, rb := a.Relation(), b.Relation()
		lo, hi := a.Support()
		rep, err := spacetime.Alibi(ra, rb, spacetime.TimeColumn(ra), lo, hi, uint64(i+1), 1, opts)
		if err != nil {
			t.Fatalf("separated pair %d: %v", i, err)
		}
		if rep.SymbolicMeet {
			t.Errorf("separated pair %d: symbolic path found a phantom meeting", i)
		}
		if !rep.Consistent {
			t.Errorf("separated pair %d: verdicts disagree (sampling=%v symbolic=%v volume=%g)",
				i, rep.Meet, rep.SymbolicMeet, rep.Volume)
		}
		if !rep.Meet {
			refutes++
		}
	}
	if meets != pairs || refutes != pairs {
		t.Fatalf("agreement: %d/%d meets, %d/%d refutations", meets, pairs, refutes, pairs)
	}
	t.Logf("alibi cross-check: %d meet + %d no-meet pairs, all consistent", meets, refutes)
}
