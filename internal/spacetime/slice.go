package spacetime

import (
	"fmt"
	"math"

	"repro/internal/constraint"
	"repro/internal/linalg"
	"repro/internal/lp"
	"repro/internal/polytope"
)

// TimeVar is the conventional name of the time column.
const TimeVar = "t"

// TimeColumn returns the index of the time coordinate of a space-time
// relation: the column named TimeVar when present, the last column
// otherwise.
func TimeColumn(rel *constraint.Relation) int {
	for i, v := range rel.Vars {
		if v == TimeVar {
			return i
		}
	}
	return len(rel.Vars) - 1
}

// TimeSlice fixes t = t0 in every tuple of a space-time relation and
// returns the snapshot relation over the remaining (spatial)
// coordinates — the time-slice operator. Substitution is per atom:
// coef·(x, t) ≤ b becomes coef_x·x ≤ b − coef_t·t0, preserving
// strictness; atoms made constant by the substitution either drop
// (satisfied) or kill their tuple (violated), and tuples the LP proves
// infeasible are pruned. The result is empty — zero tuples — when t0
// lies outside the relation's support.
func TimeSlice(rel *constraint.Relation, timeCol int, t0 float64) (*constraint.Relation, error) {
	d := rel.Arity()
	if timeCol < 0 || timeCol >= d {
		return nil, fmt.Errorf("spacetime: time column %d out of range for arity %d", timeCol, d)
	}
	if d < 2 {
		return nil, fmt.Errorf("spacetime: relation %q has no spatial coordinates to slice onto", rel.Name)
	}
	vars := make([]string, 0, d-1)
	for i, v := range rel.Vars {
		if i != timeCol {
			vars = append(vars, v)
		}
	}
	out := &constraint.Relation{
		Name: fmt.Sprintf("%s@t=%g", rel.Name, t0),
		Vars: vars,
	}
tuples:
	for _, t := range rel.Tuples {
		atoms := make([]constraint.Atom, 0, len(t.Atoms))
		for _, a := range t.Atoms {
			coef := make(linalg.Vector, 0, d-1)
			for i, c := range a.Coef {
				if i != timeCol {
					coef = append(coef, c)
				}
			}
			na := constraint.Atom{Coef: coef, B: a.B - a.Coef[timeCol]*t0, Strict: a.Strict}
			if trivial, sat := na.IsTrivial(); trivial {
				if !sat {
					continue tuples
				}
				continue
			}
			atoms = append(atoms, na)
		}
		nt := constraint.NewTuple(d-1, atoms...)
		if nt.IsEmpty() {
			continue
		}
		out.Tuples = append(out.Tuples, nt)
	}
	return out, nil
}

// TimeWindow restricts a space-time relation to t0 ≤ t ≤ t1, keeping the
// arity: each tuple gains the two window atoms, and tuples that become
// infeasible are pruned. t1 < t0 is an error.
func TimeWindow(rel *constraint.Relation, timeCol int, t0, t1 float64) (*constraint.Relation, error) {
	d := rel.Arity()
	if timeCol < 0 || timeCol >= d {
		return nil, fmt.Errorf("spacetime: time column %d out of range for arity %d", timeCol, d)
	}
	if t1 < t0 {
		return nil, fmt.Errorf("spacetime: empty time window [%g, %g]", t0, t1)
	}
	up := make(linalg.Vector, d)
	up[timeCol] = 1
	down := make(linalg.Vector, d)
	down[timeCol] = -1
	out := &constraint.Relation{
		Name: fmt.Sprintf("%s@t=[%g,%g]", rel.Name, t0, t1),
		Vars: rel.Vars,
	}
	for _, t := range rel.Tuples {
		nt := t.With(constraint.NewAtom(up, t1, false), constraint.NewAtom(down, -t0, false))
		if nt.IsEmpty() {
			continue
		}
		out.Tuples = append(out.Tuples, nt)
	}
	return out, nil
}

// SnapNoise rounds LP epsilon off a support bound for presentation
// (1e-9 grid, −0 normalized). Display-only: cache keys and constraint
// math use the exact values.
func SnapNoise(v float64) float64 {
	r := math.Round(v*1e9) / 1e9
	if r == 0 {
		return 0
	}
	return r
}

// DefaultThinTol is the inscribed-radius floor below which a tuple
// counts as degenerate (measure ~zero) for sampling purposes.
const DefaultThinTol = 1e-7

// PruneThin returns a copy of rel without tuples whose inscribed
// (Chebyshev) radius is at most tol (≤ 0 selects DefaultThinTol), plus
// the number of tuples dropped. Sampling paths use it to shed
// measure-zero pieces — a bead clipped to a window boundary, a slice
// taken exactly at an observation time — which carry no volume but
// would break the sampler's well-boundedness witnesses. Exact paths
// (Fourier–Motzkin) keep the unpruned relation.
func PruneThin(rel *constraint.Relation, tol float64) (*constraint.Relation, int) {
	if tol <= 0 {
		tol = DefaultThinTol
	}
	out := &constraint.Relation{Name: rel.Name, Vars: rel.Vars}
	pruned := 0
	for _, t := range rel.Tuples {
		if _, r, err := polytope.FromTuple(t).Chebyshev(); err == nil && r > tol {
			out.Tuples = append(out.Tuples, t)
		} else {
			pruned++
		}
	}
	return out, pruned
}

// Support returns the time extent [lo, hi] of a space-time relation,
// computed by two LPs per tuple. ok is false when the relation is empty
// or unbounded in time.
func Support(rel *constraint.Relation, timeCol int) (lo, hi float64, ok bool) {
	first := true
	for _, t := range rel.Tuples {
		a, b := t.System()
		dir := make(linalg.Vector, rel.Arity())
		dir[timeCol] = 1
		tmax, okMax := lp.Extent(a, b, dir)
		dir = make(linalg.Vector, rel.Arity())
		dir[timeCol] = -1
		tminNeg, okMin := lp.Extent(a, b, dir)
		if !okMax || !okMin {
			if t.IsEmpty() {
				continue
			}
			return 0, 0, false
		}
		tmin := -tminNeg
		if first {
			lo, hi, first = tmin, tmax, false
			continue
		}
		if tmin < lo {
			lo = tmin
		}
		if tmax > hi {
			hi = tmax
		}
	}
	if first {
		return 0, 0, false
	}
	// Normalize the LP's negative zeros for presentable bounds.
	if lo == 0 {
		lo = 0
	}
	if hi == 0 {
		hi = 0
	}
	return lo, hi, true
}
