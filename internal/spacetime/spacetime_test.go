package spacetime

import (
	"math"
	"strings"
	"testing"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/linalg"
	"repro/internal/rng"
)

// fastOpts keeps volume passes short so the suite stays quick.
func fastOpts() core.Options {
	return core.Options{MaxPhaseSamples: 200}
}

// commuter is a simple 2-D trajectory: origin → (10, 0) → (10, 10) over
// t ∈ [0, 10] with a generous speed bound.
func commuter(t *testing.T) *Trajectory {
	t.Helper()
	tr, err := NewTrajectory("A", 2.5, 0,
		Observation{T: 0, P: linalg.Vector{0, 0}},
		Observation{T: 5, P: linalg.Vector{10, 0}},
		Observation{T: 10, P: linalg.Vector{10, 10}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewTrajectoryValidation(t *testing.T) {
	p := linalg.Vector{0, 0}
	if _, err := NewTrajectory("T", 1, 0, Observation{T: 0, P: p}); err == nil {
		t.Error("single observation should fail")
	}
	if _, err := NewTrajectory("T", 0, 0, Observation{T: 0, P: p}, Observation{T: 1, P: p}); err == nil {
		t.Error("zero speed bound should fail")
	}
	if _, err := NewTrajectory("T", 1, 0, Observation{T: 1, P: p}, Observation{T: 1, P: p}); err == nil {
		t.Error("non-increasing timestamps should fail")
	}
	if _, err := NewTrajectory("T", 1, 0,
		Observation{T: 0, P: linalg.Vector{0, 0}},
		Observation{T: 1, P: linalg.Vector{5, 0}}); err == nil {
		t.Error("unreachable leg (speed 5 > bound 1) should fail")
	}
	if _, err := NewTrajectory("T", 1, 0,
		Observation{T: 0, P: linalg.Vector{0, 0}},
		Observation{T: 1, P: linalg.Vector{0, 0, 0}}); err == nil {
		t.Error("mixed dimensions should fail")
	}
}

func TestTrajectoryRelationShape(t *testing.T) {
	tr := commuter(t)
	rel := tr.Relation()
	if got, want := rel.Arity(), 3; got != want {
		t.Fatalf("arity = %d, want %d", got, want)
	}
	if got := rel.Vars; got[0] != "x" || got[1] != "y" || got[2] != "t" {
		t.Fatalf("vars = %v", got)
	}
	if got, want := len(rel.Tuples), tr.Beads(); got != want {
		t.Fatalf("tuples = %d, want %d beads", got, want)
	}
	// Observations themselves are in the relation; far-away points are not.
	for _, o := range tr.Obs {
		pt := append(o.P.Clone(), o.T)
		if !rel.Contains(pt) {
			t.Errorf("observation %v not contained", pt)
		}
	}
	if rel.Contains(linalg.Vector{50, 50, 5}) {
		t.Error("unreachable point contained")
	}
	// The midpoint of a leg at its mid-time is reachable.
	if !rel.Contains(linalg.Vector{5, 0, 2.5}) {
		t.Error("leg midpoint not contained")
	}
	// Round-trip through the parser: the trajectory is a plain program.
	src := rel.Source()
	if !strings.Contains(src, "rel A(x, y, t)") {
		t.Fatalf("source header: %s", src[:40])
	}
	back, err := constraint.ParseRelation(strings.TrimPrefix(src, "rel "), nil)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if back.Arity() != 3 || len(back.Tuples) != len(rel.Tuples) {
		t.Fatalf("round-trip changed shape: %v", back)
	}
}

func TestSpeedDirections(t *testing.T) {
	for _, d := range []int{1, 2, 3, 5} {
		dirs := SpeedDirections(d, 0)
		if len(dirs) == 0 {
			t.Fatalf("d=%d: no directions", d)
		}
		for _, n := range dirs {
			if len(n) != d {
				t.Fatalf("d=%d: direction %v has wrong dim", d, n)
			}
			if math.Abs(n.Norm()-1) > 1e-12 {
				t.Errorf("d=%d: direction %v not unit", d, n)
			}
		}
	}
	if got := len(SpeedDirections(2, 12)); got != 12 {
		t.Errorf("k-gon facets = %d, want 12", got)
	}
}

func TestTrajectorySamplesStayInBeads(t *testing.T) {
	tr := commuter(t)
	rel := tr.Relation()
	obs, err := core.NewRelationObservable(rel, rng.New(7), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := tr.Support()
	for i := 0; i < 50; i++ {
		x, err := obs.Sample()
		if err != nil {
			t.Fatal(err)
		}
		if !rel.Contains(x) {
			t.Fatalf("sample %v outside the trajectory", x)
		}
		if ts := x[2]; ts < lo-1e-9 || ts > hi+1e-9 {
			t.Fatalf("sample time %g outside support [%g, %g]", ts, lo, hi)
		}
	}
}

func TestTimeSliceSnapshot(t *testing.T) {
	tr := commuter(t)
	rel := tr.Relation()
	tc := TimeColumn(rel)
	if tc != 2 {
		t.Fatalf("time column = %d, want 2", tc)
	}

	// Slice in the middle of leg 0: the snapshot is the intersection of
	// the two speed balls, a full-dimensional convex set around (5, 0).
	slice, err := TimeSlice(rel, tc, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if slice.Arity() != 2 {
		t.Fatalf("slice arity = %d", slice.Arity())
	}
	if len(slice.Tuples) == 0 {
		t.Fatal("interior slice is empty")
	}
	if !slice.Contains(linalg.Vector{5, 0}) {
		t.Error("snapshot misses the expected position (5, 0)")
	}
	if slice.Contains(linalg.Vector{10, 10}) {
		t.Error("snapshot contains an unreachable position")
	}
	// Slice membership agrees with space-time membership on a grid.
	for _, x := range []float64{2, 5, 8} {
		for _, y := range []float64{-2, 0, 2} {
			p2, p3 := linalg.Vector{x, y}, linalg.Vector{x, y, 2.5}
			if slice.Contains(p2) != rel.Contains(p3) {
				t.Errorf("slice/space-time membership disagree at (%g, %g)", x, y)
			}
		}
	}

	// The snapshot samples and has positive area.
	obs, err := core.NewRelationObservable(slice, rng.New(3), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	v, err := obs.Volume()
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 {
		t.Fatalf("snapshot area = %g, want > 0", v)
	}
}

func TestTimeSliceDegenerate(t *testing.T) {
	tr := commuter(t)
	rel := tr.Relation()
	tc := TimeColumn(rel)

	// t0 outside the support: empty relation, zero tuples.
	for _, t0 := range []float64{-5, 10.001, 999} {
		slice, err := TimeSlice(rel, tc, t0)
		if err != nil {
			t.Fatalf("t0=%g: %v", t0, err)
		}
		if len(slice.Tuples) != 0 {
			t.Fatalf("t0=%g: slice has %d tuples, want empty", t0, len(slice.Tuples))
		}
		if !slice.IsEmpty() {
			t.Fatalf("t0=%g: slice not empty", t0)
		}
		// The sampler reports a clean error, not a panic.
		if _, err := core.NewRelationObservable(slice, rng.New(1), fastOpts()); err == nil {
			t.Fatalf("t0=%g: sampler on empty slice should fail", t0)
		}
	}

	// Exactly at an observation time the snapshot is a single point:
	// feasible but measure-zero, so the sampler must reject it cleanly.
	slice, err := TimeSlice(rel, tc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(slice.Tuples) == 0 {
		t.Fatal("slice at an observation time should contain the point")
	}
	if !slice.Contains(linalg.Vector{0, 0}) {
		t.Error("slice at t=0 should contain the origin")
	}
	if _, err := core.NewRelationObservable(slice, rng.New(1), fastOpts()); err == nil {
		t.Error("sampler on a point slice should fail cleanly")
	}
}

func TestTimeSliceErrors(t *testing.T) {
	tr := commuter(t)
	rel := tr.Relation()
	if _, err := TimeSlice(rel, -1, 0); err == nil {
		t.Error("negative time column should fail")
	}
	if _, err := TimeSlice(rel, 3, 0); err == nil {
		t.Error("out-of-range time column should fail")
	}
	one := constraint.MustRelation("I", []string{"t"}, constraint.Cube(1, 0, 1))
	if _, err := TimeSlice(one, 0, 0.5); err == nil {
		t.Error("slicing a 1-D relation should fail (no spatial coordinates)")
	}
}

func TestPruneThin(t *testing.T) {
	tr := commuter(t)
	rel := tr.Relation()
	tc := TimeColumn(rel)

	// A window ending exactly at the observation time t = 5 clips leg 1
	// to the flat plane t = 5: feasible, but measure zero.
	w, err := TimeWindow(rel, tc, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Tuples) != 2 {
		t.Fatalf("window [1, 5] keeps %d tuples, want 2 (one flat)", len(w.Tuples))
	}
	fat, pruned := PruneThin(w, 0)
	if pruned != 1 || len(fat.Tuples) != 1 {
		t.Fatalf("PruneThin dropped %d, kept %d; want 1/1", pruned, len(fat.Tuples))
	}
	// The survivor samples fine.
	if _, err := core.NewRelationObservable(fat, rng.New(1), fastOpts()); err != nil {
		t.Fatalf("pruned window should be samplable: %v", err)
	}

	// A slice exactly at an observation time is all-thin.
	slice, err := TimeSlice(rel, tc, 5)
	if err != nil {
		t.Fatal(err)
	}
	fat, pruned = PruneThin(slice, 0)
	if len(fat.Tuples) != 0 || pruned != len(slice.Tuples) {
		t.Fatalf("observation-time slice: kept %d, pruned %d", len(fat.Tuples), pruned)
	}
}

func TestTimeWindowAndSupport(t *testing.T) {
	tr := commuter(t)
	rel := tr.Relation()
	tc := TimeColumn(rel)

	lo, hi, ok := Support(rel, tc)
	if !ok || math.Abs(lo-0) > 1e-6 || math.Abs(hi-10) > 1e-6 {
		t.Fatalf("support = [%g, %g] ok=%v, want [0, 10]", lo, hi, ok)
	}

	w, err := TimeWindow(rel, tc, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Tuples) != 1 {
		t.Fatalf("window [1,4] should keep only leg 0, got %d tuples", len(w.Tuples))
	}
	if _, err := TimeWindow(rel, tc, 4, 1); err == nil {
		t.Error("inverted window should fail")
	}
	w, err = TimeWindow(rel, tc, 100, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Tuples) != 0 {
		t.Error("disjoint window should be empty")
	}
}
