package semialg

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// ParseBody parses a conjunction of polynomial constraints over the
// named variables, one constraint per ';' or newline:
//
//	x^2 + y^2 <= 1
//	x*y - 1/2 < 0; x >= 0
//
// Grammar per constraint: polyExpr (<=|<|>=|>) polyExpr. Polynomial
// expressions support +, -, products of variables and powers with
// integer exponents (x^3), numeric coefficients (decimals or fractions),
// and parentheses. '>' and '>=' normalise by negation so every stored
// constraint is P(x) <= 0 (or < 0).
func ParseBody(src string, vars []string) (*Body, error) {
	d := len(vars)
	index := map[string]int{}
	for i, v := range vars {
		index[v] = i
	}
	var cs []Constraint
	for _, line := range splitConstraints(src) {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		c, err := parseConstraint(line, d, index)
		if err != nil {
			return nil, fmt.Errorf("semialg: %q: %w", line, err)
		}
		cs = append(cs, c)
	}
	if len(cs) == 0 {
		return nil, fmt.Errorf("semialg: no constraints in %q", src)
	}
	return NewBody(d, cs...)
}

func splitConstraints(src string) []string {
	return strings.FieldsFunc(src, func(r rune) bool { return r == ';' || r == '\n' })
}

func parseConstraint(s string, d int, index map[string]int) (Constraint, error) {
	op, pos := findComparison(s)
	if pos < 0 {
		return Constraint{}, fmt.Errorf("missing comparison operator")
	}
	lhsSrc := s[:pos]
	rhsSrc := s[pos+len(op):]
	lp := &polyParser{src: lhsSrc, d: d, index: index}
	lhs, err := lp.parseExpr()
	if err != nil {
		return Constraint{}, err
	}
	if err := lp.expectEOF(); err != nil {
		return Constraint{}, err
	}
	rp := &polyParser{src: rhsSrc, d: d, index: index}
	rhs, err := rp.parseExpr()
	if err != nil {
		return Constraint{}, err
	}
	if err := rp.expectEOF(); err != nil {
		return Constraint{}, err
	}
	// Normalise to P <= 0 / P < 0.
	var diff *Polynomial
	strict := false
	switch op {
	case "<=":
		diff = sub(lhs, rhs)
	case "<":
		diff = sub(lhs, rhs)
		strict = true
	case ">=":
		diff = sub(rhs, lhs)
	case ">":
		diff = sub(rhs, lhs)
		strict = true
	}
	return Constraint{P: diff, Strict: strict}, nil
}

// findComparison locates the first comparison operator outside any
// parentheses.
func findComparison(s string) (string, int) {
	depth := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case '<', '>':
			if depth == 0 {
				if i+1 < len(s) && s[i+1] == '=' {
					return s[i : i+2], i
				}
				return s[i : i+1], i
			}
		}
	}
	return "", -1
}

func sub(a, b *Polynomial) *Polynomial {
	out := NewPolynomial(a.Dim)
	for _, m := range a.Terms {
		out.AddTerm(m.Coef, m.Exps)
	}
	for _, m := range b.Terms {
		out.AddTerm(-m.Coef, m.Exps)
	}
	return out
}

func mul(a, b *Polynomial) *Polynomial {
	out := NewPolynomial(a.Dim)
	for _, ma := range a.Terms {
		for _, mb := range b.Terms {
			exps := make([]int, a.Dim)
			for i := range exps {
				exps[i] = ma.Exps[i] + mb.Exps[i]
			}
			out.AddTerm(ma.Coef*mb.Coef, exps)
		}
	}
	return out
}

// polyParser is a tiny recursive-descent parser over polynomial
// expressions.
type polyParser struct {
	src   string
	pos   int
	d     int
	index map[string]int
}

func (p *polyParser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *polyParser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *polyParser) expectEOF() error {
	p.skipSpace()
	if p.pos < len(p.src) {
		return fmt.Errorf("unexpected %q at offset %d", p.src[p.pos:], p.pos)
	}
	return nil
}

// parseExpr := term (('+'|'-') term)*
func (p *polyParser) parseExpr() (*Polynomial, error) {
	out := NewPolynomial(p.d)
	sign := 1.0
	if c := p.peek(); c == '-' {
		p.pos++
		sign = -1
	} else if c == '+' {
		p.pos++
	}
	for {
		t, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		for _, m := range t.Terms {
			out.AddTerm(sign*m.Coef, m.Exps)
		}
		switch p.peek() {
		case '+':
			p.pos++
			sign = 1
		case '-':
			p.pos++
			sign = -1
		default:
			return out, nil
		}
	}
}

// parseTerm := factor ('*'? factor)*  — adjacency means product (2x, x y).
func (p *polyParser) parseTerm() (*Polynomial, error) {
	out, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		c := p.peek()
		switch {
		case c == '*':
			p.pos++
			f, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			out = mul(out, f)
		case c == '(' || c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)):
			f, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			out = mul(out, f)
		default:
			return out, nil
		}
	}
}

// parseFactor := base ('^' INT)?  where base := NUMBER ['/' NUMBER] | VAR | '(' expr ')'
func (p *polyParser) parseFactor() (*Polynomial, error) {
	base, err := p.parseBase()
	if err != nil {
		return nil, err
	}
	if p.peek() == '^' {
		p.pos++
		p.skipSpace()
		start := p.pos
		for p.pos < len(p.src) && unicode.IsDigit(rune(p.src[p.pos])) {
			p.pos++
		}
		if start == p.pos {
			return nil, fmt.Errorf("expected integer exponent")
		}
		n, err := strconv.Atoi(p.src[start:p.pos])
		if err != nil || n < 0 || n > 30 {
			return nil, fmt.Errorf("bad exponent %q", p.src[start:p.pos])
		}
		out := constPoly(p.d, 1)
		for i := 0; i < n; i++ {
			out = mul(out, base)
		}
		return out, nil
	}
	return base, nil
}

func (p *polyParser) parseBase() (*Polynomial, error) {
	c := p.peek()
	switch {
	case c == '(':
		p.pos++
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("missing ')'")
		}
		p.pos++
		return e, nil
	case unicode.IsDigit(rune(c)) || c == '.':
		start := p.pos
		for p.pos < len(p.src) && (unicode.IsDigit(rune(p.src[p.pos])) || p.src[p.pos] == '.') {
			p.pos++
		}
		v, err := strconv.ParseFloat(p.src[start:p.pos], 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", p.src[start:p.pos])
		}
		// Optional fraction.
		if p.peek() == '/' {
			save := p.pos
			p.pos++
			dstart := p.pos
			for p.pos < len(p.src) && unicode.IsDigit(rune(p.src[p.pos])) {
				p.pos++
			}
			if dstart == p.pos {
				p.pos = save // a '/' that is not a fraction: leave it
			} else {
				den, err := strconv.ParseFloat(p.src[dstart:p.pos], 64)
				if err != nil || den == 0 {
					return nil, fmt.Errorf("bad denominator")
				}
				v /= den
			}
		}
		return constPoly(p.d, v), nil
	case unicode.IsLetter(rune(c)) || c == '_':
		start := p.pos
		for p.pos < len(p.src) &&
			(unicode.IsLetter(rune(p.src[p.pos])) || unicode.IsDigit(rune(p.src[p.pos])) || p.src[p.pos] == '_') {
			p.pos++
		}
		name := p.src[start:p.pos]
		idx, ok := p.index[name]
		if !ok {
			return nil, fmt.Errorf("unknown variable %q", name)
		}
		exps := make([]int, p.d)
		exps[idx] = 1
		out := NewPolynomial(p.d)
		out.AddTerm(1, exps)
		return out, nil
	default:
		return nil, fmt.Errorf("unexpected %q", string(c))
	}
}

func constPoly(d int, v float64) *Polynomial {
	p := NewPolynomial(d)
	p.AddTerm(v, make([]int, d))
	return p
}
