package semialg

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
	"repro/internal/rng"
)

func TestPolynomialEval(t *testing.T) {
	// p(x, y) = 2x²y − 3y + 1
	p := NewPolynomial(2)
	p.AddTerm(2, []int{2, 1})
	p.AddTerm(-3, []int{0, 1})
	p.AddTerm(1, []int{0, 0})
	got := p.Eval(linalg.Vector{2, 3})
	want := 2.0*4*3 - 3*3 + 1 // 24 - 9 + 1 = 16
	if got != want {
		t.Errorf("Eval = %g, want %g", got, want)
	}
	if p.Degree() != 3 {
		t.Errorf("Degree = %d, want 3", p.Degree())
	}
	if p.IsLinear() {
		t.Error("cubic-total-degree polynomial is not linear")
	}
}

func TestAddTermMerges(t *testing.T) {
	p := NewPolynomial(1)
	p.AddTerm(2, []int{1})
	p.AddTerm(3, []int{1})
	if len(p.Terms) != 1 || p.Terms[0].Coef != 5 {
		t.Errorf("terms = %+v, want merged coefficient 5", p.Terms)
	}
}

func TestAddTermPanicsOnArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("wrong exponent arity must panic")
		}
	}()
	NewPolynomial(2).AddTerm(1, []int{1})
}

func TestGradient(t *testing.T) {
	// p = x² + xy: ∇p = (2x + y, x).
	p := NewPolynomial(2)
	p.AddTerm(1, []int{2, 0})
	p.AddTerm(1, []int{1, 1})
	g := p.Gradient(linalg.Vector{3, 4})
	if !g.Equal((linalg.Vector{10, 3}), 1e-12) {
		t.Errorf("Gradient = %v, want [10 3]", g)
	}
}

func TestGradientNumerically(t *testing.T) {
	// Property: analytic gradient matches finite differences.
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		d := 1 + r.Intn(3)
		p := NewPolynomial(d)
		for k := 0; k < 4; k++ {
			exps := make([]int, d)
			for j := range exps {
				exps[j] = r.Intn(3)
			}
			p.AddTerm(r.Normal(), exps)
		}
		x := make(linalg.Vector, d)
		for j := range x {
			x[j] = r.Uniform(-1, 1)
		}
		g := p.Gradient(x)
		const h = 1e-6
		for j := 0; j < d; j++ {
			xp := x.Clone()
			xm := x.Clone()
			xp[j] += h
			xm[j] -= h
			fd := (p.Eval(xp) - p.Eval(xm)) / (2 * h)
			if math.Abs(fd-g[j]) > 1e-4*(1+math.Abs(fd)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBodyMembership(t *testing.T) {
	disk, err := ParseBody(`x^2 + y^2 <= 1`, []string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	if !disk.Contains(linalg.Vector{0.5, 0.5}) {
		t.Error("interior point must be inside")
	}
	if disk.Contains(linalg.Vector{0.9, 0.9}) {
		t.Error("exterior point must be outside")
	}
	if disk.Dim() != 2 {
		t.Error("dim wrong")
	}
}

func TestParseBodyVariants(t *testing.T) {
	cases := []struct {
		src     string
		inside  linalg.Vector
		outside linalg.Vector
	}{
		{`x^2 + y^2 <= 1`, linalg.Vector{0, 0}, linalg.Vector{1, 1}},
		{`x^2 + y^2 < 1; x >= 0`, linalg.Vector{0.5, 0}, linalg.Vector{-0.5, 0}},
		{`2x^2 + 3 y^2 <= 6`, linalg.Vector{1, 1}, linalg.Vector{2, 0}},
		{`(x + y)^2 <= 1`, linalg.Vector{0.4, 0.4}, linalg.Vector{1, 1}},
		{`x*y <= 1/2; 0 <= x; x <= 2; 0 <= y; y <= 2`, linalg.Vector{0.5, 0.5}, linalg.Vector{1.5, 1.5}},
		{`x^2 - y <= 0; y <= 1`, linalg.Vector{0.5, 0.5}, linalg.Vector{1, 0.5}},
	}
	for _, c := range cases {
		b, err := ParseBody(c.src, []string{"x", "y"})
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		if !b.Contains(c.inside) {
			t.Errorf("%q: %v should be inside", c.src, c.inside)
		}
		if b.Contains(c.outside) {
			t.Errorf("%q: %v should be outside", c.src, c.outside)
		}
	}
}

func TestParseBodyErrors(t *testing.T) {
	cases := []string{
		``,
		`x + y`,        // no comparison
		`x^ <= 1`,      // missing exponent
		`z <= 1`,       // unknown variable
		`x <= (y`,      // unbalanced paren
		`x ^-2 <= 1`,   // negative exponent
		`1/0 x <= 1`,   // zero denominator
		`x <= 1 extra`, // trailing garbage
	}
	for _, src := range cases {
		if _, err := ParseBody(src, []string{"x", "y"}); err == nil {
			t.Errorf("ParseBody(%q) should fail", src)
		}
	}
}

func TestParseBodyComments(t *testing.T) {
	b, err := ParseBody("# a disk\nx^2 + y^2 <= 1\n# done", []string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Constraints) != 1 {
		t.Errorf("constraints = %d, want 1", len(b.Constraints))
	}
}

func TestEllipsoidBody(t *testing.T) {
	e, err := Ellipsoid(linalg.Vector{1, -1}, []float64{2, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !e.Contains(linalg.Vector{1, -1}) || !e.Contains(linalg.Vector{2.5, -1}) {
		t.Error("ellipsoid interior wrong")
	}
	if e.Contains(linalg.Vector{3.5, -1}) || e.Contains(linalg.Vector{1, 0}) {
		t.Error("ellipsoid exterior wrong")
	}
	if _, err := Ellipsoid(linalg.Vector{0}, []float64{1, 2}); err == nil {
		t.Error("axes/dimension mismatch must fail")
	}
}

func TestConvexityProbePasses(t *testing.T) {
	disk, _ := ParseBody(`x^2 + y^2 <= 1`, []string{"x", "y"})
	err := disk.ConvexityProbe(linalg.Vector{-1, -1}, linalg.Vector{1, 1}, 300, rng.New(1))
	if err != nil {
		t.Errorf("disk must pass the convexity probe: %v", err)
	}
}

func TestConvexityProbeCatchesNonConvex(t *testing.T) {
	// x² - y² >= 1 with |x| <= 2: two hyperbola branches — non-convex.
	body, err := ParseBody(`1 - x^2 + y^2 <= 0; x <= 2; -2 <= x; y <= 2; -2 <= y`, []string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	err = body.ConvexityProbe(linalg.Vector{-2, -2}, linalg.Vector{2, 2}, 500, rng.New(2))
	if !errors.Is(err, ErrNotConvex) {
		t.Errorf("hyperbola branches must fail the probe, got %v", err)
	}
}

func TestPolynomialString(t *testing.T) {
	p := NewPolynomial(2)
	p.AddTerm(2, []int{2, 1})
	p.AddTerm(-1, []int{0, 0})
	s := p.String()
	if !strings.Contains(s, "x0^2") || !strings.Contains(s, "x1") {
		t.Errorf("String = %q", s)
	}
	if NewPolynomial(1).String() != "0" {
		t.Error("zero polynomial must render as 0")
	}
}

func TestBodyArityMismatch(t *testing.T) {
	p := NewPolynomial(1)
	p.AddTerm(1, []int{1})
	if _, err := NewBody(2, Constraint{P: p}); err == nil {
		t.Error("dimension mismatch must fail")
	}
}
