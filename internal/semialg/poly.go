// Package semialg implements the paper's §5 extension: polynomial
// constraints. The Dyer–Frieze–Kannan generator needs only a membership
// oracle, so a convex set defined by polynomial inequalities samples and
// estimates through exactly the same machinery as the linear case — the
// package provides sparse multivariate polynomials, conjunctive
// polynomial bodies satisfying walk.Body, and convexity spot-checking
// (the paper notes that a conjunction of polynomial constraints "does
// not necessarily define a convex set"; the oracle machinery assumes
// convexity, so the check makes violations loud).
package semialg

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/linalg"
	"repro/internal/rng"
)

// Monomial is an exponent vector: Exps[i] is the power of variable i.
type Monomial struct {
	Coef float64
	Exps []int
}

// Polynomial is a sparse multivariate polynomial over d variables.
type Polynomial struct {
	Dim   int
	Terms []Monomial
}

// NewPolynomial returns the zero polynomial in d variables.
func NewPolynomial(d int) *Polynomial { return &Polynomial{Dim: d} }

// AddTerm accumulates coef·x^exps, merging with an existing monomial of
// the same exponent vector. It panics on a wrong-length exponent vector,
// which is always a programming error.
func (p *Polynomial) AddTerm(coef float64, exps []int) *Polynomial {
	if len(exps) != p.Dim {
		panic(fmt.Sprintf("semialg: exponent vector of length %d for %d variables", len(exps), p.Dim))
	}
	for i := range p.Terms {
		if sameExps(p.Terms[i].Exps, exps) {
			p.Terms[i].Coef += coef
			return p
		}
	}
	p.Terms = append(p.Terms, Monomial{Coef: coef, Exps: append([]int{}, exps...)})
	return p
}

func sameExps(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Eval evaluates the polynomial at x.
func (p *Polynomial) Eval(x linalg.Vector) float64 {
	var sum float64
	for _, m := range p.Terms {
		t := m.Coef
		for i, e := range m.Exps {
			switch e {
			case 0:
			case 1:
				t *= x[i]
			case 2:
				t *= x[i] * x[i]
			default:
				t *= math.Pow(x[i], float64(e))
			}
		}
		sum += t
	}
	return sum
}

// Degree returns the total degree (0 for the zero polynomial).
func (p *Polynomial) Degree() int {
	deg := 0
	for _, m := range p.Terms {
		d := 0
		for _, e := range m.Exps {
			d += e
		}
		if d > deg {
			deg = d
		}
	}
	return deg
}

// IsLinear reports whether every monomial has total degree <= 1.
func (p *Polynomial) IsLinear() bool { return p.Degree() <= 1 }

// Gradient evaluates the gradient at x (used by the convexity probe).
func (p *Polynomial) Gradient(x linalg.Vector) linalg.Vector {
	g := make(linalg.Vector, p.Dim)
	for _, m := range p.Terms {
		for j, ej := range m.Exps {
			if ej == 0 {
				continue
			}
			t := m.Coef * float64(ej)
			for i, e := range m.Exps {
				pow := e
				if i == j {
					pow = e - 1
				}
				switch pow {
				case 0:
				case 1:
					t *= x[i]
				default:
					t *= math.Pow(x[i], float64(pow))
				}
			}
			g[j] += t
		}
	}
	return g
}

// String renders the polynomial with x0, x1, ... variables.
func (p *Polynomial) String() string {
	if len(p.Terms) == 0 {
		return "0"
	}
	terms := append([]Monomial{}, p.Terms...)
	sort.Slice(terms, func(i, j int) bool {
		return totalDeg(terms[i].Exps) > totalDeg(terms[j].Exps)
	})
	var parts []string
	for _, m := range terms {
		var sb strings.Builder
		fmt.Fprintf(&sb, "%g", m.Coef)
		for i, e := range m.Exps {
			switch {
			case e == 1:
				fmt.Fprintf(&sb, "*x%d", i)
			case e > 1:
				fmt.Fprintf(&sb, "*x%d^%d", i, e)
			}
		}
		parts = append(parts, sb.String())
	}
	return strings.Join(parts, " + ")
}

func totalDeg(exps []int) int {
	d := 0
	for _, e := range exps {
		d += e
	}
	return d
}

// Constraint is the polynomial inequality P(x) <= 0 (strict when Strict).
type Constraint struct {
	P      *Polynomial
	Strict bool
}

// Holds reports whether x satisfies the constraint.
func (c Constraint) Holds(x linalg.Vector) bool {
	v := c.P.Eval(x)
	if c.Strict {
		return v < 0
	}
	return v <= 1e-12
}

// Body is a conjunction of polynomial constraints — a basic closed
// semi-algebraic set. It satisfies walk.Body (membership only), which is
// all the §5 machinery requires. Convexity is the caller's promise; use
// ConvexityProbe to spot-check it.
type Body struct {
	dim         int
	Constraints []Constraint
}

// NewBody returns a body over d variables.
func NewBody(d int, cs ...Constraint) (*Body, error) {
	for _, c := range cs {
		if c.P.Dim != d {
			return nil, fmt.Errorf("semialg: constraint over %d variables in a %d-variable body", c.P.Dim, d)
		}
	}
	return &Body{dim: d, Constraints: cs}, nil
}

// Dim returns the ambient dimension (walk.Body).
func (b *Body) Dim() int { return b.dim }

// Contains implements the membership oracle (walk.Body).
func (b *Body) Contains(x linalg.Vector) bool {
	for _, c := range b.Constraints {
		if !c.Holds(x) {
			return false
		}
	}
	return true
}

// ErrNotConvex is returned by ConvexityProbe when a midpoint violation
// is found.
var ErrNotConvex = errors.New("semialg: body failed the convexity probe")

// ConvexityProbe samples n pairs of points of the body inside the given
// box and checks midpoint membership — a randomized refutation check for
// the convexity assumption the sampling machinery relies on (the paper's
// caveat that polynomial conjunctions need not be convex). A nil error
// means no violation was found, not a proof of convexity.
func (b *Body) ConvexityProbe(lo, hi linalg.Vector, n int, r *rng.RNG) error {
	if len(lo) != b.dim || len(hi) != b.dim {
		return fmt.Errorf("semialg: probe box dimension mismatch")
	}
	inside := make([]linalg.Vector, 0, 64)
	x := make(linalg.Vector, b.dim)
	attempts := 0
	for len(inside) < 64 && attempts < 50000 {
		attempts++
		for j := range x {
			x[j] = r.Uniform(lo[j], hi[j])
		}
		if b.Contains(x) {
			inside = append(inside, x.Clone())
		}
	}
	if len(inside) < 2 {
		return nil // too thin to probe; nothing refuted
	}
	for i := 0; i < n; i++ {
		a := inside[r.Intn(len(inside))]
		c := inside[r.Intn(len(inside))]
		mid := a.Add(c).Scale(0.5)
		if !b.Contains(mid) {
			return fmt.Errorf("%w: midpoint of %v and %v escapes", ErrNotConvex, a, c)
		}
	}
	return nil
}

// Ellipsoid returns the body Σ ((x_i - c_i)/a_i)² − 1 <= 0.
func Ellipsoid(center linalg.Vector, axes []float64) (*Body, error) {
	d := len(center)
	if len(axes) != d {
		return nil, fmt.Errorf("semialg: %d axes for %d dimensions", len(axes), d)
	}
	p := NewPolynomial(d)
	constTerm := -1.0
	for i := 0; i < d; i++ {
		inv := 1 / (axes[i] * axes[i])
		e2 := make([]int, d)
		e2[i] = 2
		p.AddTerm(inv, e2)
		if center[i] != 0 {
			e1 := make([]int, d)
			e1[i] = 1
			p.AddTerm(-2*center[i]*inv, e1)
			constTerm += center[i] * center[i] * inv
		}
	}
	p.AddTerm(constTerm, make([]int, d))
	return NewBody(d, Constraint{P: p})
}
