package cluster

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestRingDeterministicAndBalanced(t *testing.T) {
	nodes := []string{"http://c:1", "http://a:1", "http://b:1"}
	r1 := NewRing(nodes, 64)
	r2 := NewRing([]string{"http://b:1", "http://a:1", "http://c:1", "http://a:1"}, 64)

	if !reflect.DeepEqual(r1.Nodes(), []string{"http://a:1", "http://b:1", "http://c:1"}) {
		t.Fatalf("Nodes() = %v", r1.Nodes())
	}

	counts := map[string]int{}
	for i := 0; i < 3000; i++ {
		key := fmt.Sprintf("db\x1fplan\x1fkey-%d\x1fopts", i)
		o1, o2 := r1.Owner(key), r2.Owner(key)
		if o1 != o2 {
			t.Fatalf("rings built from permuted membership disagree on %q: %q vs %q", key, o1, o2)
		}
		counts[o1]++
	}
	for n, c := range counts {
		if c < 300 {
			t.Errorf("node %s owns only %d/3000 keys — ring badly imbalanced", n, c)
		}
	}
}

func TestRingOwnershipStableUnderGrowth(t *testing.T) {
	small := NewRing([]string{"http://a:1", "http://b:1", "http://c:1"}, 64)
	big := NewRing([]string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}, 64)
	moved := 0
	const total = 4000
	for i := 0; i < total; i++ {
		key := fmt.Sprintf("key-%d", i)
		if small.Owner(key) != big.Owner(key) {
			moved++
		}
	}
	// Consistent hashing moves ~1/4 of the space when a 4th node joins;
	// fail only on gross breakage (e.g. mod-N hashing moves ~3/4).
	if moved > total/2 {
		t.Fatalf("adding one node moved %d/%d keys — not consistent hashing", moved, total)
	}
	if moved == 0 {
		t.Fatal("adding a node moved no keys — new node owns nothing")
	}
}

func TestRingEmptyAndLayout(t *testing.T) {
	if owner := NewRing(nil, 8).Owner("k"); owner != "" {
		t.Fatalf("empty ring owner = %q", owner)
	}
	layout := NewRing([]string{"a", "b"}, 16).Layout()
	if layout["a"] != 16 || layout["b"] != 16 {
		t.Fatalf("layout = %v", layout)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	b := NewBreaker(BreakerConfig{Threshold: 2, Cooldown: 20 * time.Millisecond})

	if !b.Allow() {
		t.Fatal("fresh breaker should allow")
	}
	b.Fail()
	if b.State() != BreakerClosed {
		t.Fatalf("one failure below threshold tripped: %v", b.State())
	}
	b.Fail()
	if b.State() != BreakerOpen {
		t.Fatalf("threshold failures did not trip: %v", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker within cooldown allowed a request")
	}

	time.Sleep(30 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("cooled-down breaker refused the probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after probe admission = %v", b.State())
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}

	b.Fail() // probe failed: re-open immediately
	if b.State() != BreakerOpen {
		t.Fatalf("failed probe did not re-open: %v", b.State())
	}

	time.Sleep(30 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("second probe refused")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("successful probe did not close: %v", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused")
	}
}

func TestHealthAllOpen(t *testing.T) {
	h := NewHealth([]string{"http://a:1", "http://b:1"}, BreakerConfig{Threshold: 1, Cooldown: time.Hour})
	if h.AllOpen() {
		t.Fatal("fresh health reports all-open")
	}
	h.Breaker("http://a:1").Fail()
	if h.AllOpen() || h.OpenCount() != 1 {
		t.Fatalf("one open breaker: AllOpen=%v OpenCount=%d", h.AllOpen(), h.OpenCount())
	}
	h.Breaker("http://b:1").Fail()
	if !h.AllOpen() {
		t.Fatal("both breakers open but AllOpen is false")
	}
	if got := h.States()["http://a:1"]; got != "open" {
		t.Fatalf("States()[a] = %q", got)
	}
	// No peers: never all-open (a single node is never "partitioned").
	if NewHealth(nil, BreakerConfig{}).AllOpen() {
		t.Fatal("empty health reports all-open")
	}
}

func TestGateLeaderAndWaiters(t *testing.T) {
	g := NewGate()
	leader, err := g.Enter(context.Background(), "k")
	if err != nil || !leader {
		t.Fatalf("first Enter: leader=%v err=%v", leader, err)
	}

	const waiters = 8
	var wg sync.WaitGroup
	released := make(chan bool, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lead, err := g.Enter(context.Background(), "k")
			released <- lead && err == nil
		}()
	}

	// Waiters must be parked, not leading.
	select {
	case <-released:
		t.Fatal("a waiter proceeded before the leader left")
	case <-time.After(20 * time.Millisecond):
	}

	g.Leave("k")
	wg.Wait()
	close(released)
	for lead := range released {
		if lead {
			t.Fatal("a waiter was admitted as a second leader")
		}
	}

	// The flight is gone: the next Enter leads again.
	if leader, _ := g.Enter(context.Background(), "k"); !leader {
		t.Fatal("Enter after Leave did not lead")
	}
	g.Leave("k")
}

func TestGateWaiterContextCancel(t *testing.T) {
	g := NewGate()
	if leader, _ := g.Enter(context.Background(), "k"); !leader {
		t.Fatal("setup: first Enter did not lead")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := g.Enter(ctx, "k"); err != context.DeadlineExceeded {
		t.Fatalf("cancelled waiter err = %v", err)
	}
	g.Leave("k")
}

func TestAdmissionInFlightBudget(t *testing.T) {
	a := NewAdmission(AdmissionConfig{MaxInFlight: 2})
	rel1, _, err := a.Admit("t", false)
	if err != nil {
		t.Fatalf("admit 1: %v", err)
	}
	rel2, _, err := a.Admit("t", false)
	if err != nil {
		t.Fatalf("admit 2: %v", err)
	}
	if _, retry, err := a.Admit("t", false); err != ErrOverCapacity || retry <= 0 {
		t.Fatalf("over-budget admit: err=%v retry=%v", err, retry)
	}
	// Forwarded requests also count against the budget.
	if _, _, err := a.Admit("t", true); err != ErrOverCapacity {
		t.Fatalf("forwarded over-budget admit: %v", err)
	}
	rel1()
	rel1() // double release is a no-op, not a double decrement
	if got := a.InFlight(); got != 1 {
		t.Fatalf("in-flight after release = %d", got)
	}
	if rel, _, err := a.Admit("t", false); err != nil {
		t.Fatalf("admit after release: %v", err)
	} else {
		rel()
	}
	rel2()
	if got := a.InFlight(); got != 0 {
		t.Fatalf("in-flight after all releases = %d", got)
	}
}

func TestAdmissionTenantQuota(t *testing.T) {
	a := NewAdmission(AdmissionConfig{TenantRate: 0.001, TenantBurst: 2})
	for i := 0; i < 2; i++ {
		rel, _, err := a.Admit("alice", false)
		if err != nil {
			t.Fatalf("alice admit %d: %v", i, err)
		}
		rel()
	}
	_, retry, err := a.Admit("alice", false)
	if err != ErrQuotaExceeded {
		t.Fatalf("alice over quota: %v", err)
	}
	if retry <= 0 {
		t.Fatalf("Retry-After hint = %v", retry)
	}
	// Other tenants have their own buckets.
	if rel, _, err := a.Admit("bob", false); err != nil {
		t.Fatalf("bob admit: %v", err)
	} else {
		rel()
	}
	// Forwarded requests skip the tenant charge entirely.
	if rel, _, err := a.Admit("alice", true); err != nil {
		t.Fatalf("forwarded admit for exhausted tenant: %v", err)
	} else {
		rel()
	}
	qs := a.Quotas()
	if len(qs) != 2 || qs[0].Tenant != "alice" || qs[1].Tenant != "bob" {
		t.Fatalf("Quotas() = %+v", qs)
	}
}

func TestAdmissionZeroConfigAdmitsEverything(t *testing.T) {
	a := NewAdmission(AdmissionConfig{})
	if a.Config().Enabled() {
		t.Fatal("zero config reports enabled")
	}
	for i := 0; i < 100; i++ {
		rel, _, err := a.Admit("t", false)
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		rel()
	}
}

func TestAdmissionTenantTableBounded(t *testing.T) {
	a := NewAdmission(AdmissionConfig{TenantRate: 100, TenantBurst: 5, MaxTenants: 4})
	for i := 0; i < 20; i++ {
		rel, _, err := a.Admit(fmt.Sprintf("tenant-%d", i), false)
		if err != nil {
			t.Fatalf("admit tenant-%d: %v", i, err)
		}
		rel()
	}
	if got := len(a.Quotas()); got > 4 {
		t.Fatalf("tenant table grew to %d entries (cap 4)", got)
	}
}

func TestConfigValidateAndParsePeers(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("single-node config invalid: %v", err)
	}
	if err := (Config{Peers: []string{"http://b:1"}}).Validate(); err == nil {
		t.Fatal("missing self accepted")
	}
	if err := (Config{Self: "http://a:1", Peers: []string{"not a url"}}).Validate(); err == nil {
		t.Fatal("relative peer URL accepted")
	}
	if err := (Config{Self: "http://a:1", Peers: []string{"http://a:1"}}).Validate(); err == nil {
		t.Fatal("duplicate member accepted")
	}
	ok := Config{Self: "http://a:1", Peers: []string{"http://b:1", "http://c:1"}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if got := ok.Members(); !reflect.DeepEqual(got, []string{"http://a:1", "http://b:1", "http://c:1"}) {
		t.Fatalf("Members() = %v", got)
	}

	got := ParsePeers(" http://b:1 , ,http://c:1,")
	if !reflect.DeepEqual(got, []string{"http://b:1", "http://c:1"}) {
		t.Fatalf("ParsePeers = %v", got)
	}
	if ParsePeers("") != nil {
		t.Fatal("ParsePeers(\"\") != nil")
	}
}

func TestLoadConfig(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cluster.json")
	if err := os.WriteFile(path, []byte(`{"self":"http://a:1","peers":["http://b:1"],"vnodes":16,"max_hops":3}`), 0o600); err != nil {
		t.Fatal(err)
	}
	c, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Self != "http://a:1" || len(c.Peers) != 1 || c.VNodes != 16 || c.MaxHops != 3 {
		t.Fatalf("LoadConfig = %+v", c)
	}
	if _, err := LoadConfig(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRouterLocalAndRing(t *testing.T) {
	var l Router = Local{}
	if owner, local := l.Route("k"); owner != "" || !local {
		t.Fatalf("Local.Route = (%q, %v)", owner, local)
	}
	if NewRouter(Config{}) != (Local{}) {
		t.Fatal("NewRouter without peers is not Local")
	}

	cfg := Config{Self: "http://a:1", Peers: []string{"http://b:1", "http://c:1"}}
	r := NewRouter(cfg)
	if r.Self() != "http://a:1" || len(r.Nodes()) != 3 {
		t.Fatalf("ring router identity: self=%q nodes=%v", r.Self(), r.Nodes())
	}
	sawLocal, sawRemote := false, false
	for i := 0; i < 200; i++ {
		owner, local := r.Route(fmt.Sprintf("key-%d", i))
		if owner == "" {
			t.Fatal("ring router returned empty owner")
		}
		if local != (owner == "http://a:1") {
			t.Fatalf("local flag disagrees with owner %q", owner)
		}
		if local {
			sawLocal = true
		} else {
			sawRemote = true
		}
	}
	if !sawLocal || !sawRemote {
		t.Fatalf("degenerate routing: local=%v remote=%v", sawLocal, sawRemote)
	}
	if _, ok := RingOf(r); !ok {
		t.Fatal("RingOf(ring router) not ok")
	}
	if _, ok := RingOf(Local{}); ok {
		t.Fatal("RingOf(Local) ok")
	}
}

func TestKeySet(t *testing.T) {
	s := NewKeySet(2)
	s.Add("a")
	s.Add("b")
	if !s.Has("a") || !s.Has("b") {
		t.Fatal("fresh keys missing")
	}
	s.Add("a") // re-add is a no-op, not a duplicate order entry
	s.Add("c") // evicts "a" (oldest)
	if s.Has("a") {
		t.Fatal("oldest key survived eviction")
	}
	if !s.Has("b") || !s.Has("c") {
		t.Fatal("newer keys evicted")
	}
}
