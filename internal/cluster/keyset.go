package cluster

import "sync"

// KeySet is a bounded approximate set of "keys known to be warm on
// their owner": the forwarding layer gates the first hop per key
// through the Gate (one upstream preparation) and skips the gate for
// keys already seen, so warm traffic forwards with full concurrency.
// Bounded FIFO eviction — forgetting a key only costs one unnecessary
// gate pass, never correctness. Safe for concurrent use.
type KeySet struct {
	mu    sync.Mutex
	cap   int
	seen  map[string]bool
	order []string // insertion order; head is the eviction candidate
}

// NewKeySet returns a set holding at most capacity keys (minimum 1).
func NewKeySet(capacity int) *KeySet {
	if capacity < 1 {
		capacity = 1
	}
	return &KeySet{cap: capacity, seen: map[string]bool{}}
}

// Has reports whether key was added (and not yet evicted).
func (s *KeySet) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seen[key]
}

// Add inserts key, evicting the oldest entry beyond capacity.
func (s *KeySet) Add(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seen[key] {
		return
	}
	if len(s.order) >= s.cap {
		delete(s.seen, s.order[0])
		s.order = s.order[1:]
	}
	s.seen[key] = true
	s.order = append(s.order, key)
}
