// Package cluster is the horizontal scale-out layer of cdbserve: a
// consistent-hash ring over a static set of nodes that assigns every
// prepared-cache key — canonical plan keys, symbolic keys, time-slice
// and alibi keys — to exactly one owner node, so each expensive
// preparation (rounding, well-boundedness witnesses, volume passes,
// Fourier–Motzkin eliminations) is warm in one place cluster-wide
// instead of duplicated per node.
//
// The warm cache is the whole performance story of the serving layer
// (~636x over naive per-request setup); this package is what lets that
// story span machines. It provides four small mechanisms, each usable
// on its own:
//
//   - Ring / Router: consistent hashing with virtual nodes. The Local
//     router is the degenerate single-node case — everything routes to
//     the local runtime, keeping single-node deployments byte-identical
//     to the pre-cluster behaviour.
//   - Breaker / Health: per-peer circuit breakers (trip after
//     consecutive failures, half-open probes after a cooldown) plus an
//     optional background prober, so a dead peer degrades requests to
//     local computation instead of making them fail.
//   - Gate: a keyed singleflight latch for the forwarding side — a cold
//     key reaching a non-owner causes ONE upstream preparation, with
//     concurrent identical requests waiting for the leader instead of
//     stampeding the owner.
//   - Admission: a bounded in-flight request budget plus per-tenant
//     token-bucket quotas, so overload sheds requests with 429 +
//     Retry-After instead of collapsing the node.
//
// Membership is static (a -cluster-peers flag or a JSON config file);
// the serving layer in internal/server wires these pieces into the
// /v1/* request path. The package depends only on the standard library.
package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/url"
	"os"
	"sort"
	"strings"
	"time"
)

// DefaultVNodes is the default virtual-node count per member. 64 keeps
// the key-space imbalance across a handful of nodes under a few percent
// while the ring stays tiny (hundreds of points).
const DefaultVNodes = 64

// Config describes one node's static cluster membership.
type Config struct {
	// Self is this node's advertised base URL (e.g. "http://10.0.0.1:8080"),
	// the identity its ring slots hash under. Required when Peers is
	// non-empty.
	Self string `json:"self"`
	// Peers are the other members' advertised base URLs. An empty list
	// means single-node operation (the Local router).
	Peers []string `json:"peers"`
	// VNodes is the virtual-node count per member (default DefaultVNodes).
	VNodes int `json:"vnodes,omitempty"`
	// MaxHops caps forwarding chains; a request that already crossed
	// MaxHops nodes is served locally instead of forwarded again
	// (default 2 — with a consistent ring one hop suffices; the second
	// absorbs a briefly disagreeing peer during a config rollout).
	MaxHops int `json:"max_hops,omitempty"`
	// ForwardTimeout bounds one forwarded request (default 30s).
	ForwardTimeout time.Duration `json:"-"`
	// Breaker tunes the per-peer circuit breakers.
	Breaker BreakerConfig `json:"-"`
	// ProbeInterval is the background health-probe cadence; 0 disables
	// the prober (breakers are then driven by forwarding outcomes only).
	ProbeInterval time.Duration `json:"-"`
}

// Enabled reports whether the config names any peers.
func (c Config) Enabled() bool { return len(c.Peers) > 0 }

// WithDefaults returns the config with unset tunables filled in
// (VNodes, MaxHops, ForwardTimeout); the serving layer applies it once
// at construction so flag omissions and the zero value behave alike.
func (c Config) WithDefaults() Config { return c.withDefaults() }

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.MaxHops <= 0 {
		c.MaxHops = 2
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 30 * time.Second
	}
	return c
}

// Validate checks the membership for the mistakes that would silently
// split the ring: a missing self, unparsable URLs, duplicate members.
func (c Config) Validate() error {
	if !c.Enabled() {
		return nil
	}
	if c.Self == "" {
		return errors.New("cluster: peers given but self address missing")
	}
	seen := map[string]bool{}
	for _, n := range append([]string{c.Self}, c.Peers...) {
		u, err := url.Parse(n)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return fmt.Errorf("cluster: member %q is not an absolute URL", n)
		}
		if seen[n] {
			return fmt.Errorf("cluster: duplicate member %q", n)
		}
		seen[n] = true
	}
	return nil
}

// ParsePeers splits a comma-separated -cluster-peers flag value into
// trimmed, non-empty peer URLs.
func ParsePeers(flag string) []string {
	var peers []string
	for _, p := range strings.Split(flag, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	return peers
}

// LoadConfig reads a JSON membership file:
//
//	{"self": "http://a:8080", "peers": ["http://b:8080", "http://c:8080"], "vnodes": 64}
//
// Flag-provided values take precedence; the file fills what the flags
// left empty (see cmd/cdbserve).
func LoadConfig(path string) (Config, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Config{}, err
	}
	var c Config
	if err := json.Unmarshal(raw, &c); err != nil {
		return Config{}, fmt.Errorf("cluster: parse %s: %w", path, err)
	}
	return c, nil
}

// Members returns the full sorted membership (self + peers).
func (c Config) Members() []string {
	all := append([]string{c.Self}, c.Peers...)
	sort.Strings(all)
	return all
}
