package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring with virtual nodes: each member owns
// vnodes pseudo-randomly placed points on a 64-bit circle, and a key
// belongs to the member owning the first point clockwise of the key's
// hash. Adding or removing one member moves only ~1/n of the key space,
// so a rolling membership change re-prepares a fraction of the warm
// cache instead of all of it.
//
// A Ring is immutable after construction and safe for concurrent use.
type Ring struct {
	points []ringPoint
	nodes  []string // sorted members
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds a ring over the given member identities (deduplicated,
// sorted) with vnodes virtual nodes each (minimum 1).
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = 1
	}
	seen := map[string]bool{}
	var uniq []string
	for _, n := range nodes {
		if n != "" && !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	sort.Strings(uniq)
	r := &Ring{nodes: uniq, points: make([]ringPoint, 0, len(uniq)*vnodes)}
	for _, n := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: ringHash(n + "#" + strconv.Itoa(i)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on the member id so every node sorts identically and
		// the ring stays consistent across the cluster.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// ringHash is FNV-64a — stable across processes, architectures and Go
// versions, which is what keeps independently built rings identical on
// every member.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Owner returns the member owning key, or "" for an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the first point clockwise of the top of the circle
	}
	return r.points[i].node
}

// Nodes returns the sorted members.
func (r *Ring) Nodes() []string { return r.nodes }

// Layout returns each member's virtual-node count — the ops view of the
// ring (every member has the same count by construction; the map shape
// keeps /debug/cluster future-proof for weighted members).
func (r *Ring) Layout() map[string]int {
	out := make(map[string]int, len(r.nodes))
	for _, p := range r.points {
		out[p.node]++
	}
	return out
}
