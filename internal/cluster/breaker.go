package cluster

import (
	"net/http"
	"sync"
	"time"
)

// BreakerState is a circuit breaker's current disposition.
type BreakerState uint8

const (
	// BreakerClosed: the peer is healthy; requests flow.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the peer tripped; requests fall back to local compute
	// until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed; exactly one probe request
	// is allowed through to test the peer.
	BreakerHalfOpen
)

// String returns the metric/ops label of the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerConfig tunes a circuit breaker. The zero value picks defaults.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that trips the breaker
	// (default 3).
	Threshold int
	// Cooldown is how long a tripped breaker stays open before allowing
	// a half-open probe (default 5s).
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	return c
}

// Breaker is one peer's circuit breaker: closed while the peer answers,
// open after Threshold consecutive failures, half-open (one probe at a
// time) after the cooldown. Forwarding layers call Allow before a hop,
// then Success or Fail with the outcome; a denied hop falls back to
// local computation — degraded, never unavailable.
//
// A Breaker is safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the breaker last tripped
	probing  bool      // a half-open probe is in flight
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether a request may be sent to the peer now. In the
// half-open state only one caller at a time is admitted (the probe);
// everyone else falls back to local compute until the probe settles.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if time.Since(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a successful exchange with the peer and closes the
// breaker.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.fails = 0
	b.probing = false
}

// Fail records a failed exchange. A failure while half-open re-opens
// immediately; while closed, Threshold consecutive failures trip the
// breaker.
func (b *Breaker) Fail() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if b.state == BreakerHalfOpen {
		b.state = BreakerOpen
		b.openedAt = time.Now()
		return
	}
	b.fails++
	if b.fails >= b.cfg.Threshold {
		b.state = BreakerOpen
		b.openedAt = time.Now()
	}
}

// State returns the breaker's current state (open breakers past their
// cooldown still report open until an Allow promotes them to
// half-open).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Health is the per-peer breaker set plus an optional background
// prober. It is the forwarding layer's single view of "which peers can
// I talk to right now".
type Health struct {
	breakers map[string]*Breaker // fixed key set; values handle their own locking
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// NewHealth builds one breaker per peer.
func NewHealth(peers []string, cfg BreakerConfig) *Health {
	h := &Health{breakers: make(map[string]*Breaker, len(peers))}
	for _, p := range peers {
		h.breakers[p] = NewBreaker(cfg)
	}
	return h
}

// Breaker returns the peer's breaker (an always-closed fresh breaker
// for unknown peers, so lookups on a stale ring never panic).
func (h *Health) Breaker(peer string) *Breaker {
	if b, ok := h.breakers[peer]; ok {
		return b
	}
	return NewBreaker(BreakerConfig{})
}

// States snapshots every peer's breaker state, keyed by peer URL.
func (h *Health) States() map[string]string {
	out := make(map[string]string, len(h.breakers))
	for p, b := range h.breakers {
		out[p] = b.State().String()
	}
	return out
}

// OpenCount returns how many breakers are currently open.
func (h *Health) OpenCount() int {
	n := 0
	for _, b := range h.breakers {
		if b.State() == BreakerOpen {
			n++
		}
	}
	return n
}

// AllOpen reports whether every peer's breaker is open — the "this node
// is partitioned from the whole cluster" readiness signal. False when
// there are no peers.
func (h *Health) AllOpen() bool {
	if len(h.breakers) == 0 {
		return false
	}
	return h.OpenCount() == len(h.breakers)
}

// StartProber launches a background loop probing each peer's path
// (typically /healthz) every interval and feeding the outcomes into the
// breakers. ANY HTTP response counts as success — a peer answering 503
// (e.g. draining, or degraded readiness) is still alive and can serve
// forwarded requests for the keys it owns; only transport-level
// failures (refused, timeout) count against the breaker. Stop with
// StopProber; a second Start is a no-op.
func (h *Health) StartProber(client *http.Client, path string, interval time.Duration) {
	if h.stop != nil || interval <= 0 {
		return
	}
	h.stop = make(chan struct{})
	h.done = make(chan struct{})
	go func() {
		defer close(h.done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-h.stop:
				return
			case <-ticker.C:
			}
			for peer, b := range h.breakers {
				resp, err := client.Get(peer + path)
				if err != nil {
					b.Fail()
					continue
				}
				resp.Body.Close()
				b.Success()
			}
		}
	}()
}

// StopProber stops the background prober and waits for it to exit.
func (h *Health) StopProber() {
	h.stopOnce.Do(func() {
		if h.stop != nil {
			close(h.stop)
			<-h.done
		}
	})
}
