package cluster

import (
	"context"
	"sync"
)

// Gate is a keyed singleflight latch for the forwarding side: the first
// request for a key enters as the leader and performs the upstream hop
// (paying the owner's cold preparation); concurrent requests for the
// same key wait until the leader finishes, then proceed — by which time
// the owner's cache is warm, so the stampede costs one preparation, not
// one per caller.
//
// Unlike a response-sharing singleflight, waiters re-issue their own
// requests after the leader completes: identical keys do not imply
// identical requests (different n, seed, streaming mode), and the
// owner's warm cache makes the follow-up hops cheap anyway. This also
// keeps NDJSON streaming responses out of shared buffers.
type Gate struct {
	mu      sync.Mutex
	flights map[string]chan struct{}
}

// NewGate returns an empty gate.
func NewGate() *Gate {
	return &Gate{flights: map[string]chan struct{}{}}
}

// Enter joins the flight for key. The first caller becomes the leader
// (leader=true) and MUST call Leave(key) when its upstream exchange
// settles; later callers block until then (or until ctx fires) and
// return leader=false. A waiter whose ctx fires returns ctx.Err() —
// the dead client's hop is never issued.
func (g *Gate) Enter(ctx context.Context, key string) (leader bool, err error) {
	g.mu.Lock()
	ch, ok := g.flights[key]
	if !ok {
		g.flights[key] = make(chan struct{})
		g.mu.Unlock()
		return true, nil
	}
	g.mu.Unlock()
	select {
	case <-ch:
		return false, nil
	case <-ctx.Done():
		return false, ctx.Err()
	}
}

// Leave releases the flight for key, waking every waiter. Only the
// leader calls it; a Leave without a flight is a no-op.
func (g *Gate) Leave(key string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if ch, ok := g.flights[key]; ok {
		delete(g.flights, key)
		close(ch)
	}
}
