package cluster

import (
	"errors"
	"math"
	"sync"
	"time"
)

// ErrOverCapacity reports that the node's bounded in-flight budget is
// exhausted — the server-wide overload backstop.
var ErrOverCapacity = errors.New("cluster: node over in-flight capacity")

// ErrQuotaExceeded reports that one tenant's token bucket is empty —
// the per-tenant fairness control.
var ErrQuotaExceeded = errors.New("cluster: tenant quota exceeded")

// AdmissionConfig tunes admission control. The zero value admits
// everything (no budget, no quotas) — single-node deployments keep
// their existing behaviour unless the operator opts in.
type AdmissionConfig struct {
	// MaxInFlight caps concurrently executing data-plane requests on
	// this node (0 = unlimited). Requests over the cap are shed with
	// 429 + Retry-After instead of queueing unboundedly.
	MaxInFlight int
	// TenantRate is each tenant's sustained request rate in requests
	// per second (0 = no per-tenant quotas). Tenants are identified by
	// the X-CDB-Tenant header; requests without one share the ""
	// tenant's bucket.
	TenantRate float64
	// TenantBurst is each tenant's bucket capacity (default
	// max(1, ceil(TenantRate))).
	TenantBurst int
	// MaxTenants bounds the tenant-bucket table (default 1024); beyond
	// it, new tenants evict the stalest bucket (a full bucket refills
	// instantly, so eviction never penalizes an idle tenant).
	MaxTenants int
}

// Enabled reports whether any admission mechanism is configured.
func (c AdmissionConfig) Enabled() bool { return c.MaxInFlight > 0 || c.TenantRate > 0 }

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.TenantRate > 0 && c.TenantBurst <= 0 {
		c.TenantBurst = int(math.Max(1, math.Ceil(c.TenantRate)))
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = 1024
	}
	return c
}

// tenantBucket is one tenant's token bucket (lazy refill).
type tenantBucket struct {
	tokens float64
	last   time.Time
}

// Admission is the node's admission controller: a bounded in-flight
// budget plus per-tenant token buckets. Safe for concurrent use.
type Admission struct {
	cfg AdmissionConfig

	mu       sync.Mutex
	inFlight int
	buckets  map[string]*tenantBucket
}

// NewAdmission builds a controller from cfg.
func NewAdmission(cfg AdmissionConfig) *Admission {
	return &Admission{cfg: cfg.withDefaults(), buckets: map[string]*tenantBucket{}}
}

// Admit asks to run one data-plane request for tenant. On success the
// returned release MUST be called when the request finishes (it returns
// the in-flight slot). On refusal release is nil, err is
// ErrOverCapacity or ErrQuotaExceeded, and retryAfter is the client's
// Retry-After hint.
//
// forwarded marks a request that arrived from a peer (X-CDB-Forwarded):
// it still counts against the in-flight budget — the budget protects
// this node's resources whatever the origin — but skips the tenant
// charge, which the ingress node already took; otherwise every
// forwarded hop would double-bill the tenant.
func (a *Admission) Admit(tenant string, forwarded bool) (release func(), retryAfter time.Duration, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.cfg.MaxInFlight > 0 && a.inFlight >= a.cfg.MaxInFlight {
		return nil, time.Second, ErrOverCapacity
	}
	if a.cfg.TenantRate > 0 && !forwarded {
		b := a.bucketLocked(tenant)
		now := time.Now()
		b.tokens = math.Min(float64(a.cfg.TenantBurst), b.tokens+now.Sub(b.last).Seconds()*a.cfg.TenantRate)
		b.last = now
		if b.tokens < 1 {
			wait := time.Duration((1 - b.tokens) / a.cfg.TenantRate * float64(time.Second))
			return nil, wait, ErrQuotaExceeded
		}
		b.tokens--
	}
	a.inFlight++
	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			a.inFlight--
			a.mu.Unlock()
		})
	}, 0, nil
}

// bucketLocked returns tenant's bucket, creating a full one on first
// sight and evicting the stalest bucket beyond MaxTenants.
func (a *Admission) bucketLocked(tenant string) *tenantBucket {
	if b, ok := a.buckets[tenant]; ok {
		return b
	}
	if len(a.buckets) >= a.cfg.MaxTenants {
		var stalest string
		var oldest time.Time
		first := true
		for t, b := range a.buckets {
			if first || b.last.Before(oldest) {
				stalest, oldest, first = t, b.last, false
			}
		}
		delete(a.buckets, stalest)
	}
	b := &tenantBucket{tokens: float64(a.cfg.TenantBurst), last: time.Now()}
	a.buckets[tenant] = b
	return b
}

// InFlight returns the currently admitted request count.
func (a *Admission) InFlight() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inFlight
}

// QuotaState is one tenant's bucket snapshot for /debug/cluster.
type QuotaState struct {
	Tenant string  `json:"tenant"`
	Tokens float64 `json:"tokens"`
}

// Quotas snapshots every known tenant's remaining tokens (refreshed to
// now), sorted by tenant, for ops introspection.
func (a *Admission) Quotas() []QuotaState {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]QuotaState, 0, len(a.buckets))
	now := time.Now()
	for t, b := range a.buckets {
		tokens := math.Min(float64(a.cfg.TenantBurst), b.tokens+now.Sub(b.last).Seconds()*a.cfg.TenantRate)
		out = append(out, QuotaState{Tenant: t, Tokens: tokens})
	}
	sortQuotas(out)
	return out
}

func sortQuotas(qs []QuotaState) {
	for i := 1; i < len(qs); i++ {
		for j := i; j > 0 && qs[j].Tenant < qs[j-1].Tenant; j-- {
			qs[j], qs[j-1] = qs[j-1], qs[j]
		}
	}
}

// Config returns the controller's effective configuration.
func (a *Admission) Config() AdmissionConfig { return a.cfg }
