package cluster

// Router decides which member owns a prepared-cache key. The serving
// layer consults it before touching the local runtime: local keys are
// prepared and cached here, remote keys are forwarded to their owner so
// every cache entry is warm on exactly one node cluster-wide.
//
// Local is the degenerate single-node router; NewRouter builds the
// consistent-hash router from a Config.
type Router interface {
	// Route returns the owner of key and whether this node is it. The
	// empty owner ("") means "no routing information — serve locally".
	Route(key string) (owner string, local bool)
	// Self returns this node's advertised identity ("" for Local).
	Self() string
	// Nodes returns the sorted membership (empty for Local).
	Nodes() []string
}

// Local routes everything to the local runtime — the single-node case.
// It is the zero-cost default: the serving layer skips body inspection
// entirely when the router is Local.
type Local struct{}

// Route reports the local node as the owner of every key.
func (Local) Route(string) (string, bool) { return "", true }

// Self returns "".
func (Local) Self() string { return "" }

// Nodes returns nil.
func (Local) Nodes() []string { return nil }

// ringRouter is the consistent-hash Router over a static membership.
type ringRouter struct {
	self string
	ring *Ring
}

// NewRouter builds the router for cfg: Local when no peers are
// configured, otherwise a consistent-hash router over self + peers.
func NewRouter(cfg Config) Router {
	if !cfg.Enabled() {
		return Local{}
	}
	cfg = cfg.withDefaults()
	return &ringRouter{self: cfg.Self, ring: NewRing(append([]string{cfg.Self}, cfg.Peers...), cfg.VNodes)}
}

func (r *ringRouter) Route(key string) (string, bool) {
	owner := r.ring.Owner(key)
	return owner, owner == "" || owner == r.self
}

func (r *ringRouter) Self() string { return r.self }

func (r *ringRouter) Nodes() []string { return r.ring.Nodes() }

// RingOf exposes the underlying ring of a NewRouter-built router for
// ops introspection (/debug/cluster); ok is false for Local.
func RingOf(r Router) (*Ring, bool) {
	rr, ok := r.(*ringRouter)
	if !ok {
		return nil, false
	}
	return rr.ring, true
}
