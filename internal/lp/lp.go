// Package lp implements a dense two-phase primal simplex solver for the
// small linear programs that pervade the sampler stack: feasibility and
// emptiness of generalized tuples, Chebyshev centres (inner balls of
// Definition "well-bounded"), per-coordinate bounding boxes, and
// point-in-convex-hull membership tests.
//
// The solver maximises c·x subject to A x <= b with x free, using variable
// splitting, slack variables, artificial variables in phase 1, and Bland's
// anti-cycling rule. Problems in this repository have at most a few dozen
// variables and a few hundred constraints, so a dense tableau is the right
// tool.
package lp

import (
	"errors"
	"math"

	"repro/internal/linalg"
)

// Status describes the outcome of a solve.
type Status int

const (
	// Optimal means an optimal solution was found.
	Optimal Status = iota
	// Infeasible means the constraint system has no solution.
	Infeasible
	// Unbounded means the objective is unbounded above on the feasible set.
	Unbounded
	// Stalled means the iteration limit was exceeded (should not happen
	// with Bland's rule; kept as a defensive signal).
	Stalled
)

// String returns a human-readable status name.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return "stalled"
	}
}

// ErrNoSolution is returned by helpers that require an optimal solution.
var ErrNoSolution = errors.New("lp: no optimal solution")

const tol = 1e-9

// Result carries the solution of a solve.
type Result struct {
	Status Status
	X      linalg.Vector // solution point (valid when Status == Optimal)
	Value  float64       // objective value c·X
}

// Solve maximises c·x subject to A x <= b with x free in R^n.
// Rows of a must have length len(c), and len(a) == len(b).
func Solve(c []float64, a []linalg.Vector, b []float64) Result {
	n := len(c)
	m := len(a)
	t := newTableau(n, m, a, b)
	if t.needPhase1() {
		if !t.phase1() {
			return Result{Status: Infeasible}
		}
	}
	st := t.phase2(c)
	if st != Optimal {
		return Result{Status: st}
	}
	x := t.extract()
	return Result{Status: Optimal, X: x, Value: linalg.Vector(c).Dot(x)}
}

// Feasible reports whether {x : A x <= b} is non-empty and returns a
// witness point when it is.
func Feasible(a []linalg.Vector, b []float64) (linalg.Vector, bool) {
	n := 0
	if len(a) > 0 {
		n = len(a[0])
	}
	res := Solve(make([]float64, n), a, b)
	if res.Status != Optimal {
		return nil, false
	}
	return res.X, true
}

// ChebyshevCenter returns the centre and radius of the largest ball
// inscribed in {x : A x <= b}. The radius is 0 for flat (lower-dimensional)
// feasible sets and the call fails with ErrNoSolution for empty or
// unbounded-inradius systems.
func ChebyshevCenter(a []linalg.Vector, b []float64) (linalg.Vector, float64, error) {
	if len(a) == 0 {
		return nil, 0, ErrNoSolution
	}
	n := len(a[0])
	// Variables (x, r); maximise r subject to a_i·x + ||a_i|| r <= b_i, r >= 0.
	rows := make([]linalg.Vector, 0, len(a)+1)
	rhs := make([]float64, 0, len(b)+1)
	for i, ai := range a {
		row := make(linalg.Vector, n+1)
		copy(row, ai)
		row[n] = ai.Norm()
		rows = append(rows, row)
		rhs = append(rhs, b[i])
	}
	neg := make(linalg.Vector, n+1)
	neg[n] = -1
	rows = append(rows, neg)
	rhs = append(rhs, 0)

	c := make([]float64, n+1)
	c[n] = 1
	res := Solve(c, rows, rhs)
	if res.Status != Optimal {
		return nil, 0, ErrNoSolution
	}
	center := make(linalg.Vector, n)
	copy(center, res.X[:n])
	r := res.X[n]
	if r < 0 {
		r = 0
	}
	return center, r, nil
}

// Extent returns max dir·x over {x : A x <= b}. ok is false when the
// program is infeasible or unbounded in that direction.
func Extent(a []linalg.Vector, b []float64, dir linalg.Vector) (float64, bool) {
	res := Solve(dir, a, b)
	if res.Status != Optimal {
		return 0, false
	}
	return res.Value, true
}

// BoundingBox returns per-coordinate lower and upper bounds of
// {x : A x <= b}. ok is false when the set is empty or unbounded in some
// coordinate direction.
func BoundingBox(a []linalg.Vector, b []float64) (lo, hi linalg.Vector, ok bool) {
	if len(a) == 0 {
		return nil, nil, false
	}
	n := len(a[0])
	lo = make(linalg.Vector, n)
	hi = make(linalg.Vector, n)
	dir := make(linalg.Vector, n)
	for j := 0; j < n; j++ {
		for k := range dir {
			dir[k] = 0
		}
		dir[j] = 1
		up, okUp := Extent(a, b, dir)
		if !okUp {
			return nil, nil, false
		}
		dir[j] = -1
		down, okDown := Extent(a, b, dir)
		if !okDown {
			return nil, nil, false
		}
		hi[j] = up
		lo[j] = -down
	}
	return lo, hi, true
}

// InConvexHull reports whether p lies in the convex hull of pts, by
// solving the LP feasibility problem over barycentric weights. It is
// polynomial in both the number of points and the dimension, unlike
// explicit facet enumeration (the paper's §4.3.1 observation).
func InConvexHull(p linalg.Vector, pts []linalg.Vector) bool {
	if len(pts) == 0 {
		return false
	}
	d := len(p)
	k := len(pts)
	// Weights w_1..w_k >= 0, sum w = 1, sum w_i pts_i = p.
	// Encode equalities as <= pairs.
	var rows []linalg.Vector
	var rhs []float64
	addEq := func(coef linalg.Vector, v float64) {
		rows = append(rows, coef)
		rhs = append(rhs, v)
		neg := coef.Scale(-1)
		rows = append(rows, neg)
		rhs = append(rhs, -v)
	}
	for dim := 0; dim < d; dim++ {
		coef := make(linalg.Vector, k)
		for i, pt := range pts {
			coef[i] = pt[dim]
		}
		addEq(coef, p[dim])
	}
	ones := make(linalg.Vector, k)
	for i := range ones {
		ones[i] = 1
	}
	addEq(ones, 1)
	for i := 0; i < k; i++ {
		coef := make(linalg.Vector, k)
		coef[i] = -1
		rows = append(rows, coef)
		rhs = append(rhs, 0)
	}
	_, ok := Feasible(rows, rhs)
	return ok
}

// tableau is a dense two-phase simplex tableau. Columns are laid out as
// [u_0..u_{n-1}, v_0..v_{n-1}, s_0..s_{m-1}, artificials...], modelling
// free x = u - v with slacks s.
type tableau struct {
	n, m    int // original vars, constraints
	cols    int // structural columns (2n + m), before artificials
	total   int // cols + number of artificial columns
	rows    [][]float64
	rhs     []float64
	basis   []int
	active  []bool // rows still participating (redundant rows get disabled)
	artBase int    // first artificial column index
}

func newTableau(n, m int, a []linalg.Vector, b []float64) *tableau {
	cols := 2*n + m
	t := &tableau{n: n, m: m, cols: cols, artBase: cols}
	t.rows = make([][]float64, m)
	t.rhs = make([]float64, m)
	t.basis = make([]int, m)
	t.active = make([]bool, m)
	artCount := 0
	for i := 0; i < m; i++ {
		row := make([]float64, cols)
		for j := 0; j < n; j++ {
			row[j] = a[i][j]
			row[n+j] = -a[i][j]
		}
		row[2*n+i] = 1
		r := b[i]
		if r < 0 {
			for j := range row {
				row[j] = -row[j]
			}
			r = -r
			artCount++
			t.basis[i] = -1 // needs artificial
		} else {
			t.basis[i] = 2*n + i
		}
		t.rows[i] = row
		t.rhs[i] = r
		t.active[i] = true
	}
	t.total = cols + artCount
	if artCount > 0 {
		art := cols
		for i := 0; i < m; i++ {
			ext := make([]float64, t.total)
			copy(ext, t.rows[i])
			if t.basis[i] == -1 {
				ext[art] = 1
				t.basis[i] = art
				art++
			}
			t.rows[i] = ext
		}
	}
	return t
}

func (t *tableau) needPhase1() bool { return t.total > t.cols }

// reducedCosts computes the reduced-cost row and current objective value
// for the cost vector cost (indexed over all t.total columns).
func (t *tableau) reducedCosts(cost []float64) ([]float64, float64) {
	red := make([]float64, t.total)
	copy(red, cost)
	var val float64
	for i := 0; i < t.m; i++ {
		if !t.active[i] {
			continue
		}
		cb := cost[t.basis[i]]
		if cb == 0 {
			continue
		}
		val += cb * t.rhs[i]
		row := t.rows[i]
		for j := 0; j < t.total; j++ {
			red[j] -= cb * row[j]
		}
	}
	return red, val
}

// pivot performs a pivot on (r, j), updating rows, rhs and the reduced
// cost row red in place.
func (t *tableau) pivot(r, j int, red []float64) {
	prow := t.rows[r]
	inv := 1 / prow[j]
	for k := range prow {
		prow[k] *= inv
	}
	t.rhs[r] *= inv
	prow[j] = 1 // kill residual rounding
	for i := 0; i < t.m; i++ {
		if i == r || !t.active[i] {
			continue
		}
		f := t.rows[i][j]
		if f == 0 {
			continue
		}
		row := t.rows[i]
		for k := range row {
			row[k] -= f * prow[k]
		}
		row[j] = 0
		t.rhs[i] -= f * t.rhs[r]
		if t.rhs[i] < 0 && t.rhs[i] > -tol {
			t.rhs[i] = 0
		}
	}
	if f := red[j]; f != 0 {
		for k := range red {
			red[k] -= f * prow[k]
		}
		red[j] = 0
	}
	t.basis[r] = j
}

// iterate runs Bland-rule simplex iterations maximising the objective
// whose reduced costs are red, restricted to columns allowed[j].
func (t *tableau) iterate(red []float64, allowed func(j int) bool) Status {
	maxIter := 2000 * (t.m + t.total + 1)
	for it := 0; it < maxIter; it++ {
		// Bland: entering column = smallest index with positive reduced cost.
		enter := -1
		for j := 0; j < t.total; j++ {
			if red[j] > tol && allowed(j) {
				enter = j
				break
			}
		}
		if enter < 0 {
			return Optimal
		}
		// Ratio test; Bland tie-break on smallest basis variable index.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			if !t.active[i] {
				continue
			}
			aij := t.rows[i][enter]
			if aij <= tol {
				continue
			}
			ratio := t.rhs[i] / aij
			if ratio < bestRatio-tol ||
				(ratio < bestRatio+tol && (leave < 0 || t.basis[i] < t.basis[leave])) {
				bestRatio = ratio
				leave = i
			}
		}
		if leave < 0 {
			return Unbounded
		}
		t.pivot(leave, enter, red)
	}
	return Stalled
}

// phase1 drives artificial variables to zero; it reports feasibility.
func (t *tableau) phase1() bool {
	cost := make([]float64, t.total)
	for j := t.artBase; j < t.total; j++ {
		cost[j] = -1 // maximise -sum(artificials)
	}
	red, _ := t.reducedCosts(cost)
	st := t.iterate(red, func(int) bool { return true })
	if st != Optimal {
		return false
	}
	// Objective value = -sum of artificials at optimum.
	var sum float64
	for i := 0; i < t.m; i++ {
		if t.active[i] && t.basis[i] >= t.artBase {
			sum += t.rhs[i]
		}
	}
	if sum > 1e-7 {
		return false
	}
	// Drive remaining basic artificials (at value zero) out of the basis.
	for i := 0; i < t.m; i++ {
		if !t.active[i] || t.basis[i] < t.artBase {
			continue
		}
		pivoted := false
		for j := 0; j < t.cols; j++ {
			if math.Abs(t.rows[i][j]) > tol {
				t.pivot(i, j, red)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant constraint: deactivate the row entirely.
			t.active[i] = false
		}
	}
	return true
}

// phase2 maximises the user objective c over the original free variables.
func (t *tableau) phase2(c []float64) Status {
	cost := make([]float64, t.total)
	for j := 0; j < t.n; j++ {
		cost[j] = c[j]
		cost[t.n+j] = -c[j]
	}
	red, _ := t.reducedCosts(cost)
	allowed := func(j int) bool { return j < t.cols } // never re-enter artificials
	return t.iterate(red, allowed)
}

// extract reads the solution x = u - v off the basis.
func (t *tableau) extract() linalg.Vector {
	vals := make([]float64, t.total)
	for i := 0; i < t.m; i++ {
		if t.active[i] {
			vals[t.basis[i]] = t.rhs[i]
		}
	}
	x := make(linalg.Vector, t.n)
	for j := 0; j < t.n; j++ {
		x[j] = vals[j] - vals[t.n+j]
	}
	return x
}
