package lp

import (
	"fmt"
	"testing"

	"repro/internal/linalg"
	"repro/internal/rng"
)

func randomSystem(r *rng.RNG, d, extra int) ([]linalg.Vector, []float64) {
	a, b := box(d, -1, 1)
	for k := 0; k < extra; k++ {
		row := make(linalg.Vector, d)
		for j := range row {
			row[j] = r.Normal()
		}
		a = append(a, row)
		b = append(b, r.Uniform(0.3, 1.5))
	}
	return a, b
}

func BenchmarkSolve(b *testing.B) {
	for _, d := range []int{2, 8, 16} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			r := rng.New(1)
			a, rhs := randomSystem(r, d, 2*d)
			c := make([]float64, d)
			c[0] = 1
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := Solve(c, a, rhs)
				if res.Status != Optimal {
					b.Fatal(res.Status)
				}
			}
		})
	}
}

func BenchmarkChebyshevCenter(b *testing.B) {
	for _, d := range []int{2, 8} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			r := rng.New(2)
			a, rhs := randomSystem(r, d, d)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := ChebyshevCenter(a, rhs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkInConvexHull(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("pts=%d", n), func(b *testing.B) {
			r := rng.New(3)
			pts := make([]linalg.Vector, n)
			for i := range pts {
				pts[i] = linalg.Vector{r.Normal(), r.Normal()}
			}
			probe := linalg.Vector{0.05, -0.02}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				InConvexHull(probe, pts)
			}
		})
	}
}
