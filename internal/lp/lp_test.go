package lp

import (
	"math"
	"testing"

	"repro/internal/linalg"
	"repro/internal/rng"
)

// box returns the constraint system for the cube [lo, hi]^d.
func box(d int, lo, hi float64) ([]linalg.Vector, []float64) {
	var a []linalg.Vector
	var b []float64
	for j := 0; j < d; j++ {
		up := make(linalg.Vector, d)
		up[j] = 1
		a = append(a, up)
		b = append(b, hi)
		down := make(linalg.Vector, d)
		down[j] = -1
		a = append(a, down)
		b = append(b, -lo)
	}
	return a, b
}

func TestSolveSimpleMax(t *testing.T) {
	// max x + y subject to x <= 2, y <= 3, x + y <= 4, x,y >= 0.
	a := []linalg.Vector{{1, 0}, {0, 1}, {1, 1}, {-1, 0}, {0, -1}}
	b := []float64{2, 3, 4, 0, 0}
	res := Solve([]float64{1, 1}, a, b)
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Value-4) > 1e-9 {
		t.Errorf("value = %g, want 4", res.Value)
	}
}

func TestSolveNegativeRHS(t *testing.T) {
	// Feasible region needs phase 1: x >= 1, x <= 3; maximise -x -> x = 1.
	a := []linalg.Vector{{-1}, {1}}
	b := []float64{-1, 3}
	res := Solve([]float64{-1}, a, b)
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.X[0]-1) > 1e-9 {
		t.Errorf("x = %g, want 1", res.X[0])
	}
}

func TestSolveInfeasible(t *testing.T) {
	a := []linalg.Vector{{1}, {-1}}
	b := []float64{1, -2} // x <= 1 and x >= 2
	res := Solve([]float64{1}, a, b)
	if res.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", res.Status)
	}
}

func TestSolveUnbounded(t *testing.T) {
	a := []linalg.Vector{{-1}}
	b := []float64{0} // x >= 0
	res := Solve([]float64{1}, a, b)
	if res.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", res.Status)
	}
}

func TestSolveFreeVariables(t *testing.T) {
	// Free variable optimum at a negative coordinate:
	// max -x subject to x >= -5 -> x = -5.
	a := []linalg.Vector{{-1}}
	b := []float64{5}
	res := Solve([]float64{-1}, a, b)
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.X[0]+5) > 1e-9 {
		t.Errorf("x = %g, want -5", res.X[0])
	}
}

func TestSolveDegenerate(t *testing.T) {
	// Redundant constraints sharing the optimum vertex (degeneracy):
	// Bland's rule must still terminate.
	a := []linalg.Vector{{1, 0}, {0, 1}, {1, 1}, {1, 1}, {-1, 0}, {0, -1}}
	b := []float64{1, 1, 2, 2, 0, 0}
	res := Solve([]float64{1, 1}, a, b)
	if res.Status != Optimal || math.Abs(res.Value-2) > 1e-9 {
		t.Errorf("degenerate solve: status=%v value=%g", res.Status, res.Value)
	}
}

func TestSolveEqualityViaPairs(t *testing.T) {
	// x + y == 1 encoded as two inequalities; max x with y >= 0.25.
	a := []linalg.Vector{{1, 1}, {-1, -1}, {0, -1}}
	b := []float64{1, -1, -0.25}
	res := Solve([]float64{1, 0}, a, b)
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.X[0]-0.75) > 1e-9 || math.Abs(res.X[1]-0.25) > 1e-9 {
		t.Errorf("solution = %v, want [0.75 0.25]", res.X)
	}
}

func TestFeasibleWitness(t *testing.T) {
	a, b := box(3, -1, 1)
	x, ok := Feasible(a, b)
	if !ok {
		t.Fatal("box should be feasible")
	}
	for j, v := range x {
		if v < -1-1e-9 || v > 1+1e-9 {
			t.Errorf("witness coordinate %d out of box: %g", j, v)
		}
	}
	a2 := []linalg.Vector{{1, 0}, {-1, 0}}
	b2 := []float64{0, -1}
	if _, ok := Feasible(a2, b2); ok {
		t.Error("infeasible system reported feasible")
	}
}

func TestChebyshevCenterCube(t *testing.T) {
	a, b := box(2, 0, 2)
	c, r, err := ChebyshevCenter(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal((linalg.Vector{1, 1}), 1e-8) {
		t.Errorf("center = %v, want [1 1]", c)
	}
	if math.Abs(r-1) > 1e-8 {
		t.Errorf("radius = %g, want 1", r)
	}
}

func TestChebyshevCenterTriangle(t *testing.T) {
	// Right triangle x,y >= 0, x + y <= 1: inradius (2-sqrt(2))/2.
	a := []linalg.Vector{{-1, 0}, {0, -1}, {1, 1}}
	b := []float64{0, 0, 1}
	_, r, err := ChebyshevCenter(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := (2 - math.Sqrt2) / 2
	if math.Abs(r-want) > 1e-8 {
		t.Errorf("inradius = %g, want %g", r, want)
	}
}

func TestChebyshevCenterEmpty(t *testing.T) {
	a := []linalg.Vector{{1}, {-1}}
	b := []float64{0, -1}
	if _, _, err := ChebyshevCenter(a, b); err == nil {
		t.Error("expected error for empty polytope")
	}
}

func TestExtent(t *testing.T) {
	a, b := box(2, -2, 3)
	v, ok := Extent(a, b, linalg.Vector{1, 0})
	if !ok || math.Abs(v-3) > 1e-9 {
		t.Errorf("Extent = %g ok=%v, want 3", v, ok)
	}
	v, ok = Extent(a, b, linalg.Vector{-1, -1})
	if !ok || math.Abs(v-4) > 1e-9 {
		t.Errorf("Extent = %g ok=%v, want 4", v, ok)
	}
}

func TestBoundingBox(t *testing.T) {
	// Simplex x,y >= 0, x+y <= 1.
	a := []linalg.Vector{{-1, 0}, {0, -1}, {1, 1}}
	b := []float64{0, 0, 1}
	lo, hi, ok := BoundingBox(a, b)
	if !ok {
		t.Fatal("bounding box failed")
	}
	if !lo.Equal((linalg.Vector{0, 0}), 1e-8) || !hi.Equal((linalg.Vector{1, 1}), 1e-8) {
		t.Errorf("box = %v..%v", lo, hi)
	}
}

func TestBoundingBoxUnbounded(t *testing.T) {
	a := []linalg.Vector{{-1, 0}, {0, -1}} // positive quadrant
	b := []float64{0, 0}
	if _, _, ok := BoundingBox(a, b); ok {
		t.Error("unbounded set must not return a bounding box")
	}
}

func TestInConvexHull(t *testing.T) {
	square := []linalg.Vector{{0, 0}, {1, 0}, {1, 1}, {0, 1}}
	if !InConvexHull(linalg.Vector{0.5, 0.5}, square) {
		t.Error("center of square should be in hull")
	}
	if !InConvexHull(linalg.Vector{0, 0}, square) {
		t.Error("vertex should be in hull")
	}
	if !InConvexHull(linalg.Vector{0.5, 0}, square) {
		t.Error("edge midpoint should be in hull")
	}
	if InConvexHull(linalg.Vector{1.5, 0.5}, square) {
		t.Error("outside point reported inside")
	}
	if InConvexHull(linalg.Vector{0.5, 0.5}, nil) {
		t.Error("empty hull contains nothing")
	}
}

func TestInConvexHullHighDim(t *testing.T) {
	// Simplex vertices in R^6; centroid inside, far point outside.
	d := 6
	pts := make([]linalg.Vector, d+1)
	pts[0] = make(linalg.Vector, d)
	centroid := make(linalg.Vector, d)
	for i := 1; i <= d; i++ {
		v := make(linalg.Vector, d)
		v[i-1] = 1
		pts[i] = v
	}
	for j := 0; j < d; j++ {
		centroid[j] = 1.0 / float64(d+1)
	}
	if !InConvexHull(centroid, pts) {
		t.Error("centroid must lie in the simplex hull")
	}
	outside := make(linalg.Vector, d)
	outside[0] = 2
	if InConvexHull(outside, pts) {
		t.Error("distant point reported inside simplex")
	}
}

func TestRandomLPsAgainstVertexEnumeration(t *testing.T) {
	// Property: for random bounded 2-D LPs with known box constraints plus
	// random cuts, the simplex optimum matches brute force over the
	// arrangement vertices.
	r := rng.New(77)
	for trial := 0; trial < 40; trial++ {
		a, b := box(2, -1, 1)
		for k := 0; k < 3; k++ {
			row := linalg.Vector{r.Normal(), r.Normal()}
			if row.Norm() < 0.1 {
				continue
			}
			a = append(a, row)
			b = append(b, r.Uniform(0.2, 1.5))
		}
		c := []float64{r.Normal(), r.Normal()}
		res := Solve(c, a, b)
		if res.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, res.Status)
		}
		// Brute force: intersect every pair of constraint boundaries.
		best := math.Inf(-1)
		for i := 0; i < len(a); i++ {
			for j := i + 1; j < len(a); j++ {
				det := a[i][0]*a[j][1] - a[i][1]*a[j][0]
				if math.Abs(det) < 1e-9 {
					continue
				}
				x := (b[i]*a[j][1] - b[j]*a[i][1]) / det
				y := (a[i][0]*b[j] - a[j][0]*b[i]) / det
				pt := linalg.Vector{x, y}
				ok := true
				for k := range a {
					if a[k].Dot(pt) > b[k]+1e-7 {
						ok = false
						break
					}
				}
				if ok {
					if v := linalg.Vector(c).Dot(pt); v > best {
						best = v
					}
				}
			}
		}
		if math.Abs(res.Value-best) > 1e-6 {
			t.Errorf("trial %d: simplex %g vs brute force %g", trial, res.Value, best)
		}
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" || Stalled.String() != "stalled" {
		t.Error("Status.String misbehaves")
	}
}
