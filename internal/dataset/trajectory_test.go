package dataset

import (
	"strings"
	"testing"

	"repro/internal/constraint"
	"repro/internal/rng"
	"repro/internal/spacetime"
)

func TestRandomTrajectoryAndFleet(t *testing.T) {
	r := rng.New(11)
	fleet := Fleet(r, 5, TrajectoryConfig{})
	if len(fleet) != 5 {
		t.Fatalf("fleet size = %d", len(fleet))
	}
	for _, tr := range fleet {
		if tr.SpatialDim() != 2 || tr.Beads() != 4 {
			t.Fatalf("%s: dim=%d beads=%d", tr.Name, tr.SpatialDim(), tr.Beads())
		}
		rel := tr.Relation()
		if rel.IsEmpty() {
			t.Fatalf("%s: empty relation", tr.Name)
		}
		for _, o := range tr.Obs {
			if o.P[0] < 0 || o.P[0] > 100 || o.P[1] < 0 || o.P[1] > 100 {
				t.Fatalf("%s: waypoint %v escapes the extent", tr.Name, o.P)
			}
		}
	}
}

func TestFleetProgramRegistrable(t *testing.T) {
	r := rng.New(5)
	prog := FleetProgram(Fleet(r, 3, TrajectoryConfig{Steps: 2}))
	db, err := constraint.Parse(prog)
	if err != nil {
		t.Fatalf("parse fleet program: %v\n%s", err, prog)
	}
	if len(db.Names) != 3 {
		t.Fatalf("parsed %d relations, want 3", len(db.Names))
	}
	for _, name := range db.Names {
		if !strings.HasPrefix(name, "obj") {
			t.Errorf("unexpected relation name %q", name)
		}
		rel := db.Schema[name]
		if rel.Arity() != 3 {
			t.Errorf("%s: arity %d, want 3", name, rel.Arity())
		}
	}
}

func TestCrossingPairSharesWaypoint(t *testing.T) {
	r := rng.New(3)
	a, b := CrossingPair(r, TrajectoryConfig{})
	mid := len(a.Obs) / 2
	if a.Obs[mid].T != b.Obs[mid].T {
		t.Fatalf("mid times differ: %g vs %g", a.Obs[mid].T, b.Obs[mid].T)
	}
	if d := a.Obs[mid].P.Dist(b.Obs[mid].P); d > 1e-12 {
		t.Fatalf("mid waypoints %g apart", d)
	}
}

func TestSeparatedPairDisjoint(t *testing.T) {
	r := rng.New(4)
	a, b := SeparatedPair(r, TrajectoryConfig{})
	ra, rb := a.Relation(), b.Relation()
	tc := spacetime.TimeColumn(ra)
	_, t1 := a.Support()
	m, err := spacetime.MeetRegion(ra, rb, tc, 0, t1)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Tuples) != 0 {
		t.Fatalf("separated pair has a non-empty meet region (%d tuples)", len(m.Tuples))
	}
}
