package dataset

import (
	"math"
	"testing"

	"repro/internal/linalg"
	"repro/internal/num"
	"repro/internal/rng"
)

func TestRandomPolytopeBoundedNonEmpty(t *testing.T) {
	r := rng.New(1)
	for d := 2; d <= 5; d++ {
		p := RandomPolytope(r, d, 2*d, 0.8)
		if p.IsEmpty() {
			t.Fatalf("d=%d: random polytope empty (tangent sphere keeps the origin inside)", d)
		}
		if !p.Contains(make(linalg.Vector, d)) {
			t.Errorf("d=%d: origin must stay inside (cuts tangent to radius-0.8 sphere)", d)
		}
		if _, _, err := p.BoundingBox(); err != nil {
			t.Errorf("d=%d: bounding box: %v", d, err)
		}
	}
}

func TestRandomPolytopeCutsBite(t *testing.T) {
	r := rng.New(2)
	p := RandomPolytope(r, 3, 20, 0.5)
	v, err := p.Volume()
	if err != nil {
		t.Fatal(err)
	}
	if v >= 8 {
		t.Errorf("20 tangent cuts at radius 0.5 must reduce the cube volume, got %g", v)
	}
	if v <= 0 {
		t.Error("volume must stay positive")
	}
}

func TestRandomRotationOrthogonal(t *testing.T) {
	r := rng.New(3)
	for d := 2; d <= 6; d++ {
		rot := RandomRotation(r, d)
		// Columns orthonormal: M^T M = I.
		mt := rot.M.Transpose()
		prod := mt.Mul(rot.M)
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(prod.At(i, j)-want) > 1e-9 {
					t.Fatalf("d=%d: M^T M != I at (%d,%d): %g", d, i, j, prod.At(i, j))
				}
			}
		}
		if math.Abs(rot.DetAbs()-1) > 1e-9 {
			t.Errorf("d=%d: |det| = %g, want 1", d, rot.DetAbs())
		}
	}
}

func TestRotatedBoxPreservesVolume(t *testing.T) {
	r := rng.New(4)
	p := RotatedBox(r, []float64{1, 2, 0.5})
	v, err := p.Volume()
	if err != nil {
		t.Fatal(err)
	}
	want := 8.0 * 1 * 2 * 0.5 // prod(2*halfExtent)
	if num.RelErr(v, want) > 1e-6 {
		t.Errorf("rotated box volume = %g, want %g", v, want)
	}
}

func TestDumbbellStructure(t *testing.T) {
	rel := Dumbbell(2, 10, 0.05)
	if len(rel.Tuples) != 3 {
		t.Fatalf("dumbbell tuples = %d, want 3", len(rel.Tuples))
	}
	// Left cube, right cube, tube midpoint.
	if !rel.Contains(linalg.Vector{0, 0}) {
		t.Error("left cube missing")
	}
	if !rel.Contains(linalg.Vector{9, 0}) {
		t.Error("right cube missing")
	}
	if !rel.Contains(linalg.Vector{5, 0}) {
		t.Error("tube missing")
	}
	if rel.Contains(linalg.Vector{5, 0.5}) {
		t.Error("point above the tube must be outside")
	}
	if rel.Contains(linalg.Vector{20, 0}) {
		t.Error("far point must be outside")
	}
}

func TestParcelMapGeneratesParcels(t *testing.T) {
	r := rng.New(5)
	m := NewParcelMap(r, 40, 100)
	if len(m.Parcels) < 30 {
		t.Fatalf("parcels = %d, want most of 40", len(m.Parcels))
	}
	kinds := map[string]int{}
	for _, p := range m.Parcels {
		kinds[p.Kind]++
		// Parcels stay inside the map.
		a, b := p.Tuple.System()
		for i := range a {
			_ = b[i]
		}
	}
	if len(kinds) < 2 {
		t.Errorf("kinds seen = %v, want variety", kinds)
	}
	rel := m.Relation("")
	if len(rel.Tuples) != len(m.Parcels) {
		t.Error("full relation must include every parcel")
	}
	res := m.Relation("residential")
	if len(res.Tuples) != kinds["residential"] {
		t.Error("kind filter wrong")
	}
}

func TestParcelsInsideExtent(t *testing.T) {
	r := rng.New(6)
	m := NewParcelMap(r, 30, 50)
	rel := m.Relation("")
	lo, hi, ok := rel.BoundingBox()
	if !ok {
		t.Fatal("parcel map must be bounded")
	}
	if lo[0] < -1e-9 || lo[1] < -1e-9 || hi[0] > 50+1e-9 || hi[1] > 50+1e-9 {
		t.Errorf("parcels leak outside the map: %v..%v", lo, hi)
	}
}

func TestZoneOctagon(t *testing.T) {
	z := Zone(10, 10, 2)
	if !z.Contains(linalg.Vector{10, 10}) || !z.Contains(linalg.Vector{11.5, 10}) {
		t.Error("zone must contain its centre and interior")
	}
	if z.Contains(linalg.Vector{13, 10}) {
		t.Error("zone must exclude points beyond its radius")
	}
}

func TestHighDimPipeline(t *testing.T) {
	r := rng.New(7)
	p := HighDimPipeline(r, 2, 3, 6)
	if p.Dim() != 5 {
		t.Fatalf("pipeline dim = %d, want 5", p.Dim())
	}
	if p.IsEmpty() {
		t.Error("pipeline polytope empty")
	}
}
