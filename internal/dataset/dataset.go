// Package dataset generates the synthetic workloads the experiments run
// on: classic bodies (cubes, simplices, cross-polytopes), random
// sphere-tangent polytopes, rotated and elongated boxes (rounding stress
// tests), dumbbells (the union worst case sketched in Section 4.1.1),
// and a GIS-style land-parcel map (the paper's motivating application
// domain — spatial databases never fix a dataset, so any bounded union
// of convex parcels exercises the same code paths; see DESIGN.md).
package dataset

import (
	"fmt"
	"math"

	"repro/internal/constraint"
	"repro/internal/linalg"
	"repro/internal/polytope"
	"repro/internal/rng"
)

// RandomPolytope returns a bounded polytope: the cube [-1, 1]^d cut by m
// random halfspaces tangent to a sphere of radius tangentR (uniformly
// random outer normals). With tangentR < 1 the cuts bite; with
// tangentR ≥ √d they are redundant.
func RandomPolytope(r *rng.RNG, d, m int, tangentR float64) *polytope.Polytope {
	p := polytope.FromTuple(constraint.Cube(d, -1, 1))
	dir := make(linalg.Vector, d)
	for k := 0; k < m; k++ {
		r.OnSphere(dir)
		p = p.WithHalfspace(dir.Clone(), tangentR)
	}
	return p
}

// RandomRotation returns a uniform-ish random orthogonal map (QR of a
// Gaussian matrix via Gram–Schmidt).
func RandomRotation(r *rng.RNG, d int) *linalg.AffineMap {
	cols := make([]linalg.Vector, d)
	for j := 0; j < d; j++ {
		v := make(linalg.Vector, d)
		for i := range v {
			v[i] = r.Normal()
		}
		// Gram–Schmidt against previous columns.
		for k := 0; k < j; k++ {
			v.AddScaled(-v.Dot(cols[k]), cols[k])
		}
		n := v.Norm()
		if n < 1e-9 {
			j-- // retry a degenerate draw
			continue
		}
		cols[j] = v.Scale(1 / n)
	}
	m := linalg.NewMatrix(d, d)
	for j, col := range cols {
		for i, val := range col {
			m.Set(i, j, val)
		}
	}
	am, err := linalg.NewAffineMap(m, make(linalg.Vector, d))
	if err != nil {
		// An orthogonal matrix is always invertible; retry on numerical
		// freak accidents.
		return RandomRotation(r, d)
	}
	return am
}

// RotatedBox returns a randomly rotated axis box with the given
// half-extents — the paper's "very elongated form" rounding stress case
// when the extents are skewed.
func RotatedBox(r *rng.RNG, halfExtents []float64) *polytope.Polytope {
	d := len(halfExtents)
	lo := make(linalg.Vector, d)
	hi := make(linalg.Vector, d)
	for i, h := range halfExtents {
		lo[i] = -h
		hi[i] = h
	}
	box := polytope.FromTuple(constraint.Box(lo, hi))
	return box.Image(RandomRotation(r, d))
}

// Dumbbell returns the union workload of Section 4.1.1's remark: two
// large cubes linked by a thin tube. A direct random walk needs
// exponential time to cross the tube; the union generator (Theorem 4.1)
// is immune. width is the tube's cross-section half-width.
func Dumbbell(d int, sep, width float64) *constraint.Relation {
	vars := make([]string, d)
	for i := range vars {
		vars[i] = fmt.Sprintf("x%d", i)
	}
	left := constraint.Cube(d, -1, 1)
	// Right cube shifted by sep along axis 0.
	lo := make(linalg.Vector, d)
	hi := make(linalg.Vector, d)
	for i := range lo {
		lo[i], hi[i] = -1, 1
	}
	lo[0], hi[0] = sep-2, sep
	right := constraint.Box(lo, hi)
	// Tube along axis 0 between the cubes.
	tlo := make(linalg.Vector, d)
	thi := make(linalg.Vector, d)
	tlo[0], thi[0] = 1, sep-2
	for i := 1; i < d; i++ {
		tlo[i], thi[i] = -width, width
	}
	tube := constraint.Box(tlo, thi)
	return constraint.MustRelation("dumbbell", vars, left, right, tube)
}

// Parcel is one convex land parcel of the GIS map.
type Parcel struct {
	Tuple constraint.Tuple
	Kind  string // "residential", "industrial", "park"
}

// ParcelMap is a synthetic 2-D land-use map: a union of convex parcels
// in [0, extent]^2 with land-use classes, the shape of workload the
// paper's GIS motivation describes.
type ParcelMap struct {
	Extent  float64
	Parcels []Parcel
}

// Kinds lists the land-use classes generated.
var Kinds = []string{"residential", "industrial", "park"}

// NewParcelMap generates n random parcels: axis-aligned rectangles and
// right triangles of random size and class.
func NewParcelMap(r *rng.RNG, n int, extent float64) *ParcelMap {
	m := &ParcelMap{Extent: extent}
	for i := 0; i < n; i++ {
		cx := r.Uniform(0, extent)
		cy := r.Uniform(0, extent)
		w := r.Uniform(extent/40, extent/8)
		h := r.Uniform(extent/40, extent/8)
		kind := Kinds[r.Intn(len(Kinds))]
		lo := linalg.Vector{math.Max(0, cx-w/2), math.Max(0, cy-h/2)}
		hi := linalg.Vector{math.Min(extent, cx+w/2), math.Min(extent, cy+h/2)}
		if hi[0]-lo[0] < 1e-9 || hi[1]-lo[1] < 1e-9 {
			continue
		}
		var tup constraint.Tuple
		if r.Bool() {
			tup = constraint.Box(lo, hi)
		} else {
			// Right triangle: box cut by a diagonal halfspace.
			diag := constraint.NewAtom(linalg.Vector{1 / (hi[0] - lo[0]), 1 / (hi[1] - lo[1])},
				lo[0]/(hi[0]-lo[0])+lo[1]/(hi[1]-lo[1])+1, false)
			tup = constraint.Box(lo, hi).With(diag)
		}
		m.Parcels = append(m.Parcels, Parcel{Tuple: tup, Kind: kind})
	}
	return m
}

// Relation returns the union of all parcels of the given kind ("" for
// all) as a generalized relation over (x, y).
func (m *ParcelMap) Relation(kind string) *constraint.Relation {
	var tuples []constraint.Tuple
	for _, p := range m.Parcels {
		if kind == "" || p.Kind == kind {
			tuples = append(tuples, p.Tuple)
		}
	}
	name := kind
	if name == "" {
		name = "parcels"
	}
	return constraint.MustRelation(name, []string{"x", "y"}, tuples...)
}

// Zone returns a convex query window: the disk-ish octagon centred at
// (cx, cy) with radius rad, as a tuple.
func Zone(cx, cy, rad float64) constraint.Tuple {
	var atoms []constraint.Atom
	for k := 0; k < 8; k++ {
		ang := 2 * math.Pi * float64(k) / 8
		n := linalg.Vector{math.Cos(ang), math.Sin(ang)}
		atoms = append(atoms, constraint.NewAtom(n, n[0]*cx+n[1]*cy+rad, false))
	}
	return constraint.NewTuple(2, atoms...)
}

// HighDimPipeline returns the (d+e)-dimensional convex relation used by
// the projection experiments: a random polytope in R^{d+e} whose
// projection onto the first e coordinates is the query result of
// Proposition 4.3's motivating query φ(x₁..x_e) ≡ ∃x_{e+1}..x_{e+d} R(x̄).
func HighDimPipeline(r *rng.RNG, e, d, cuts int) *polytope.Polytope {
	return RandomPolytope(r, e+d, cuts, 0.9)
}
