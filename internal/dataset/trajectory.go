package dataset

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/linalg"
	"repro/internal/rng"
	"repro/internal/spacetime"
)

// TrajectoryConfig tunes the random moving-object generator. The zero
// value of a field selects the default noted on it.
type TrajectoryConfig struct {
	Dim    int     // spatial dimension (default 2)
	Steps  int     // number of legs, i.e. observations-1 (default 4)
	Extent float64 // positions stay in [0, Extent]^d (default 100)
	DT     float64 // seconds between observations (default 10)
	VMax   float64 // speed bound (default 0.9·Extent/(Steps·DT) keeps walks inside)
	Facets int     // speed-polygon facets for d=2 (default spacetime.DefaultFacets)
	Slack  float64 // fraction of VMax·DT actually travelled per leg (default 0.6)
}

func (c TrajectoryConfig) withDefaults() TrajectoryConfig {
	if c.Dim <= 0 {
		c.Dim = 2
	}
	if c.Steps <= 0 {
		c.Steps = 4
	}
	if c.Extent <= 0 {
		c.Extent = 100
	}
	if c.DT <= 0 {
		c.DT = 10
	}
	if c.VMax <= 0 {
		c.VMax = 0.9 * c.Extent / (float64(c.Steps) * c.DT)
	}
	if c.Slack <= 0 || c.Slack >= 1 {
		c.Slack = 0.6
	}
	return c
}

// RandomTrajectory generates one moving object: a random walk of Steps
// legs inside [0, Extent]^d, each leg travelling at most Slack·VMax·DT
// in Euclidean norm — strictly inside the speed bound, so every bead is
// full-dimensional and the trajectory validates under any polyhedral
// speed norm (the polyhedral ball contains the Euclidean one).
func RandomTrajectory(r *rng.RNG, name string, cfg TrajectoryConfig) *spacetime.Trajectory {
	cfg = cfg.withDefaults()
	pos := make(linalg.Vector, cfg.Dim)
	for i := range pos {
		pos[i] = r.Uniform(0.2*cfg.Extent, 0.8*cfg.Extent)
	}
	obs := make([]spacetime.Observation, 0, cfg.Steps+1)
	obs = append(obs, spacetime.Observation{T: 0, P: pos.Clone()})
	dir := make(linalg.Vector, cfg.Dim)
	for s := 1; s <= cfg.Steps; s++ {
		r.OnSphere(dir)
		step := r.Uniform(0.2, cfg.Slack) * cfg.VMax * cfg.DT
		next := pos.Clone()
		next.AddScaled(step, dir)
		for i := range next {
			next[i] = math.Min(math.Max(next[i], 0), cfg.Extent)
		}
		// Clamping only shortens the leg, so reachability is preserved.
		pos = next
		obs = append(obs, spacetime.Observation{T: float64(s) * cfg.DT, P: pos.Clone()})
	}
	tr, err := spacetime.NewTrajectory(name, cfg.VMax, cfg.Facets, obs...)
	if err != nil {
		// The construction keeps every leg strictly inside the bound, so
		// this is unreachable short of a generator bug.
		panic(fmt.Sprintf("dataset: random trajectory invalid: %v", err))
	}
	return tr
}

// Fleet generates n independent random trajectories named obj0..obj{n-1}
// — the moving-object workload for the spacetime endpoints and
// benchmarks.
func Fleet(r *rng.RNG, n int, cfg TrajectoryConfig) []*spacetime.Trajectory {
	out := make([]*spacetime.Trajectory, n)
	for i := range out {
		out[i] = RandomTrajectory(r, fmt.Sprintf("obj%d", i), cfg)
	}
	return out
}

// FleetProgram renders trajectories as a constraint database program —
// one `rel` declaration per object over (x, .., t) — registrable with
// cdbserve or loadable by the CLIs.
func FleetProgram(fleet []*spacetime.Trajectory) string {
	var sb strings.Builder
	sb.WriteString("// moving-object fleet: unions of space-time prisms over (x, y, t)\n")
	for _, tr := range fleet {
		sb.WriteString(tr.Relation().Source())
		sb.WriteString("\n")
	}
	return sb.String()
}

// CrossingPair returns two trajectories guaranteed to have been able to
// meet: both pass through the same waypoint at the same time (the
// middle observation), with generous speed slack, so the meet region is
// full-dimensional. The pair is the positive control of the alibi
// cross-check suite.
func CrossingPair(r *rng.RNG, cfg TrajectoryConfig) (a, b *spacetime.Trajectory) {
	cfg = cfg.withDefaults()
	a = RandomTrajectory(r, "A", cfg)
	mid := len(a.Obs) / 2
	// B shares A's middle fix exactly and wanders off on its own.
	bObs := make([]spacetime.Observation, len(a.Obs))
	bObs[mid] = spacetime.Observation{T: a.Obs[mid].T, P: a.Obs[mid].P.Clone()}
	dir := make(linalg.Vector, cfg.Dim)
	for i := mid - 1; i >= 0; i-- {
		bObs[i] = stepFrom(r, bObs[i+1], -cfg.DT, cfg, dir)
	}
	for i := mid + 1; i < len(bObs); i++ {
		bObs[i] = stepFrom(r, bObs[i-1], cfg.DT, cfg, dir)
	}
	b, err := spacetime.NewTrajectory("B", cfg.VMax, cfg.Facets, bObs...)
	if err != nil {
		panic(fmt.Sprintf("dataset: crossing pair invalid: %v", err))
	}
	return a, b
}

// stepFrom extends an observation by one leg of dt seconds (dt < 0
// steps backwards in time) within the speed and extent bounds.
func stepFrom(r *rng.RNG, from spacetime.Observation, dt float64, cfg TrajectoryConfig, dir linalg.Vector) spacetime.Observation {
	r.OnSphere(dir)
	step := r.Uniform(0.2, cfg.Slack) * cfg.VMax * math.Abs(dt)
	p := from.P.Clone()
	p.AddScaled(step, dir)
	for i := range p {
		p[i] = math.Min(math.Max(p[i], 0), cfg.Extent)
	}
	return spacetime.Observation{T: from.T + dt, P: p}
}

// SeparatedPair returns two trajectories that provably could not have
// met: each is confined to its own spatial box and the boxes are
// farther apart than the objects' speed cones can bridge. The pair is
// the negative control of the alibi cross-check suite.
func SeparatedPair(r *rng.RNG, cfg TrajectoryConfig) (a, b *spacetime.Trajectory) {
	cfg = cfg.withDefaults()
	// Confine each walk to a box of a quarter extent; the gap between the
	// boxes along axis 0 is half the extent. A bead reaches at most
	// ~1.1·VMax·DT beyond its waypoints under the polyhedral norm, so
	// capping VMax·DT at Extent/16 leaves a provable gap.
	boxed := cfg
	boxed.Extent = cfg.Extent / 4
	if boxed.VMax*boxed.DT > cfg.Extent/16 {
		boxed.VMax = cfg.Extent / 16 / boxed.DT
	}
	a = RandomTrajectory(r, "A", boxed)
	b = RandomTrajectory(r, "B", boxed)
	// Shift B's box to the far side of the extent along axis 0.
	shift := 3 * cfg.Extent / 4
	obs := make([]spacetime.Observation, len(b.Obs))
	for i, o := range b.Obs {
		p := o.P.Clone()
		p[0] += shift
		obs[i] = spacetime.Observation{T: o.T, P: p}
	}
	shifted, err := spacetime.NewTrajectory("B", b.VMax, b.Facets, obs...)
	if err != nil {
		panic(fmt.Sprintf("dataset: separated pair invalid: %v", err))
	}
	return a, shifted
}
