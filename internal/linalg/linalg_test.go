package linalg

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestVectorOps(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	if got := v.Dot(w); got != 32 {
		t.Errorf("Dot = %g, want 32", got)
	}
	if got := v.Add(w); !got.Equal((Vector{5, 7, 9}), 0) {
		t.Errorf("Add = %v", got)
	}
	if got := w.Sub(v); !got.Equal((Vector{3, 3, 3}), 0) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); !got.Equal((Vector{2, 4, 6}), 0) {
		t.Errorf("Scale = %v", got)
	}
	if got := (Vector{3, 4}).Norm(); got != 5 {
		t.Errorf("Norm = %g, want 5", got)
	}
	if got := (Vector{-3, 4}).Norm1(); got != 7 {
		t.Errorf("Norm1 = %g, want 7", got)
	}
	if got := (Vector{-3, 4}).NormInf(); got != 4 {
		t.Errorf("NormInf = %g, want 4", got)
	}
	if got := v.Dist(w); math.Abs(got-math.Sqrt(27)) > 1e-14 {
		t.Errorf("Dist = %g", got)
	}
	u := v.Clone()
	u.AddScaled(2, w)
	if !u.Equal((Vector{9, 12, 15}), 0) {
		t.Errorf("AddScaled = %v", u)
	}
	if !v.Equal((Vector{1, 2, 3}), 0) {
		t.Error("Clone aliases storage")
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Dot with mismatched lengths must panic")
		}
	}()
	Vector{1}.Dot(Vector{1, 2})
}

func TestMatrixMulVec(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	got := m.MulVec(Vector{1, 1, 1})
	if !got.Equal((Vector{6, 15}), 1e-14) {
		t.Errorf("MulVec = %v", got)
	}
	gotT := m.TMulVec(Vector{1, 1})
	if !gotT.Equal((Vector{5, 7, 9}), 1e-14) {
		t.Errorf("TMulVec = %v", gotT)
	}
}

func TestMatrixMulAndTranspose(t *testing.T) {
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{1, 2, 3, 4})
	b := NewMatrix(2, 2)
	copy(b.Data, []float64{5, 6, 7, 8})
	c := a.Mul(b)
	want := []float64{19, 22, 43, 50}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("Mul: got %v, want %v", c.Data, want)
		}
	}
	at := a.Transpose()
	if at.At(0, 1) != 3 || at.At(1, 0) != 2 {
		t.Errorf("Transpose wrong: %v", at.Data)
	}
}

func TestLUSolveKnownSystem(t *testing.T) {
	a := NewMatrix(3, 3)
	copy(a.Data, []float64{2, 1, -1, -3, -1, 2, -2, 1, 2})
	b := Vector{8, -11, -3}
	x, err := SolveSystem(a, b, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !x.Equal((Vector{2, 3, -1}), 1e-10) {
		t.Errorf("solution = %v, want [2 3 -1]", x)
	}
}

func TestLUDeterminant(t *testing.T) {
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{3, 8, 4, 6})
	f, err := Factor(a, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Det(); math.Abs(got-(-14)) > 1e-12 {
		t.Errorf("Det = %g, want -14", got)
	}
	if got := Identity(5); math.Abs(mustDet(t, got)-1) > 1e-14 {
		t.Error("det(I) != 1")
	}
}

func mustDet(t *testing.T, m *Matrix) float64 {
	t.Helper()
	f, err := Factor(m, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	return f.Det()
}

func TestSingularDetection(t *testing.T) {
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{1, 2, 2, 4})
	if _, err := Factor(a, 1e-12); err != ErrSingular {
		t.Errorf("expected ErrSingular, got %v", err)
	}
}

func TestInverseRoundTrip(t *testing.T) {
	r := rng.New(101)
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(6)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = r.Normal()
		}
		f, err := Factor(a, 1e-12)
		if err != nil {
			continue // singular random draw; skip
		}
		inv := f.Inverse()
		prod := a.Mul(inv)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(prod.At(i, j)-want) > 1e-8 {
					t.Fatalf("A*A^-1 not identity at (%d,%d): %g", i, j, prod.At(i, j))
				}
			}
		}
	}
}

func TestSolvePropertyRandomSystems(t *testing.T) {
	// Property: for random well-conditioned A and x, Solve(A, A x) == x.
	r := rng.New(999)
	f := func(seed uint64) bool {
		rr := rng.New(seed)
		n := 1 + rr.Intn(5)
		a := Identity(n)
		// Diagonally dominant perturbation keeps the system well conditioned.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Data[i*n+j] += 0.3 * rr.Normal() / float64(n)
			}
			a.Data[i*n+i] += 2
		}
		x := make(Vector, n)
		for i := range x {
			x[i] = rr.Normal()
		}
		b := a.MulVec(x)
		got, err := SolveSystem(a, b, 1e-12)
		if err != nil {
			return false
		}
		return got.Equal(x, 1e-8)
	}
	cfg := &quick.Config{MaxCount: 50, Values: nil}
	_ = r
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCholesky(t *testing.T) {
	a := NewMatrix(3, 3)
	copy(a.Data, []float64{4, 12, -16, 12, 37, -43, -16, -43, 98})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 0, 0, 6, 1, 0, -8, 5, 3}
	for i, v := range want {
		if math.Abs(l.Data[i]-v) > 1e-10 {
			t.Fatalf("Cholesky: got %v, want %v", l.Data, want)
		}
	}
	// Not positive definite.
	bad := NewMatrix(2, 2)
	copy(bad.Data, []float64{1, 2, 2, 1})
	if _, err := Cholesky(bad); err != ErrNotSPD {
		t.Errorf("expected ErrNotSPD, got %v", err)
	}
}

func TestAffineMapRoundTrip(t *testing.T) {
	m := NewMatrix(2, 2)
	copy(m.Data, []float64{2, 1, 0, 3})
	am, err := NewAffineMap(m, Vector{5, -1})
	if err != nil {
		t.Fatal(err)
	}
	x := Vector{1, 2}
	y := am.Apply(x)
	if !y.Equal((Vector{9, 5}), 1e-12) {
		t.Errorf("Apply = %v", y)
	}
	back := am.Invert(y)
	if !back.Equal(x, 1e-10) {
		t.Errorf("Invert(Apply(x)) = %v, want %v", back, x)
	}
	if got := am.DetAbs(); math.Abs(got-6) > 1e-12 {
		t.Errorf("DetAbs = %g, want 6", got)
	}
}

func TestAffineCompose(t *testing.T) {
	m1 := NewMatrix(2, 2)
	copy(m1.Data, []float64{2, 0, 0, 2})
	a, _ := NewAffineMap(m1, Vector{1, 0})
	m2 := NewMatrix(2, 2)
	copy(m2.Data, []float64{0, -1, 1, 0})
	b, _ := NewAffineMap(m2, Vector{0, 1})
	ab, err := a.Compose(b)
	if err != nil {
		t.Fatal(err)
	}
	x := Vector{3, 4}
	want := a.Apply(b.Apply(x))
	if got := ab.Apply(x); !got.Equal(want, 1e-12) {
		t.Errorf("Compose mismatch: %v vs %v", got, want)
	}
}

func TestIdentityMap(t *testing.T) {
	id := IdentityMap(3)
	x := Vector{1, -2, 3}
	if !id.Apply(x).Equal(x, 0) || !id.Invert(x).Equal(x, 0) {
		t.Error("identity map is not identity")
	}
	if id.DetAbs() != 1 {
		t.Error("identity determinant != 1")
	}
}
