// Package linalg implements the small dense linear algebra kernel used by
// the samplers: vectors, matrices, LU decomposition with partial pivoting
// (solve, inverse, determinant), Cholesky factorisation, and invertible
// affine maps.
//
// Dimensions in this repository are modest (d ≲ 50), so everything is
// dense, allocation-conscious, and written for clarity over blocking.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorisation meets a numerically
// singular matrix.
var ErrSingular = errors.New("linalg: singular matrix")

// ErrNotSPD is returned by Cholesky when the input is not symmetric
// positive definite.
var ErrNotSPD = errors.New("linalg: matrix not positive definite")

// Vector is a point or direction in R^d.
type Vector []float64

// NewVector returns a zero vector of dimension d.
func NewVector(d int) Vector { return make(Vector, d) }

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	w := make(Vector, len(v))
	copy(w, v)
	return w
}

// Dot returns the inner product v·w. The vectors must have equal length.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: Dot dimension mismatch %d vs %d", len(v), len(w)))
	}
	var s float64
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func (v Vector) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm1 returns the l1 norm of v.
func (v Vector) Norm1() float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// NormInf returns the l-infinity norm of v.
func (v Vector) NormInf() float64 {
	var s float64
	for _, x := range v {
		if a := math.Abs(x); a > s {
			s = a
		}
	}
	return s
}

// Add returns v + w as a new vector.
func (v Vector) Add(w Vector) Vector {
	u := v.Clone()
	for i := range u {
		u[i] += w[i]
	}
	return u
}

// Sub returns v - w as a new vector.
func (v Vector) Sub(w Vector) Vector {
	u := v.Clone()
	for i := range u {
		u[i] -= w[i]
	}
	return u
}

// Scale returns s*v as a new vector.
func (v Vector) Scale(s float64) Vector {
	u := v.Clone()
	for i := range u {
		u[i] *= s
	}
	return u
}

// AddScaled sets v = v + s*w in place.
func (v Vector) AddScaled(s float64, w Vector) {
	for i := range v {
		v[i] += s * w[i]
	}
}

// Dist returns the Euclidean distance between v and w.
func (v Vector) Dist(w Vector) float64 {
	var s float64
	for i := range v {
		d := v[i] - w[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Equal reports whether v and w agree within tol component-wise.
func (v Vector) Equal(w Vector, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > tol {
			return false
		}
	}
	return true
}

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix returns a zero Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Identity returns the d x d identity matrix.
func Identity(d int) *Matrix {
	m := NewMatrix(d, d)
	for i := 0; i < d; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Row returns row i as a vector sharing no storage with m.
func (m *Matrix) Row(i int) Vector {
	r := make(Vector, m.Cols)
	copy(r, m.Data[i*m.Cols:(i+1)*m.Cols])
	return r
}

// MulVec returns m * v.
func (m *Matrix) MulVec(v Vector) Vector {
	if len(v) != m.Cols {
		panic("linalg: MulVec dimension mismatch")
	}
	out := make(Vector, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, x := range row {
			s += x * v[j]
		}
		out[i] = s
	}
	return out
}

// TMulVec returns m^T * v.
func (m *Matrix) TMulVec(v Vector) Vector {
	if len(v) != m.Rows {
		panic("linalg: TMulVec dimension mismatch")
	}
	out := make(Vector, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		vi := v[i]
		for j, x := range row {
			out[j] += x * vi
		}
	}
	return out
}

// Mul returns m * n.
func (m *Matrix) Mul(n *Matrix) *Matrix {
	if m.Cols != n.Rows {
		panic("linalg: Mul dimension mismatch")
	}
	out := NewMatrix(m.Rows, n.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < n.Cols; j++ {
				out.Data[i*out.Cols+j] += a * n.At(k, j)
			}
		}
	}
	return out
}

// Transpose returns m^T.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// LU holds the partial-pivoting factorisation PA = LU of a square matrix.
type LU struct {
	lu    *Matrix
	pivot []int
	sign  float64
}

// Factor computes the LU decomposition of the square matrix a. It returns
// ErrSingular when a pivot falls below tol.
func Factor(a *Matrix, tol float64) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: Factor requires a square matrix")
	}
	n := a.Rows
	lu := a.Clone()
	pivot := make([]int, n)
	sign := 1.0
	for i := range pivot {
		pivot[i] = i
	}
	for col := 0; col < n; col++ {
		// Partial pivoting.
		best, bestAbs := col, math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if a := math.Abs(lu.At(r, col)); a > bestAbs {
				best, bestAbs = r, a
			}
		}
		if bestAbs <= tol {
			return nil, ErrSingular
		}
		if best != col {
			for j := 0; j < n; j++ {
				lu.Data[best*n+j], lu.Data[col*n+j] = lu.Data[col*n+j], lu.Data[best*n+j]
			}
			pivot[best], pivot[col] = pivot[col], pivot[best]
			sign = -sign
		}
		inv := 1 / lu.At(col, col)
		for r := col + 1; r < n; r++ {
			f := lu.At(r, col) * inv
			lu.Set(r, col, f)
			if f == 0 {
				continue
			}
			for j := col + 1; j < n; j++ {
				lu.Data[r*n+j] -= f * lu.Data[col*n+j]
			}
		}
	}
	return &LU{lu: lu, pivot: pivot, sign: sign}, nil
}

// Solve returns x with A x = b.
func (f *LU) Solve(b Vector) Vector {
	n := f.lu.Rows
	x := make(Vector, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.pivot[i]]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		var s float64
		for j := 0; j < i; j++ {
			s += f.lu.At(i, j) * x[j]
		}
		x[i] -= s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		var s float64
		for j := i + 1; j < n; j++ {
			s += f.lu.At(i, j) * x[j]
		}
		x[i] = (x[i] - s) / f.lu.At(i, i)
	}
	return x
}

// Det returns det(A).
func (f *LU) Det() float64 {
	det := f.sign
	for i := 0; i < f.lu.Rows; i++ {
		det *= f.lu.At(i, i)
	}
	return det
}

// Inverse returns A^{-1}.
func (f *LU) Inverse() *Matrix {
	n := f.lu.Rows
	inv := NewMatrix(n, n)
	e := make(Vector, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col := f.Solve(e)
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv
}

// SolveSystem solves A x = b directly, returning ErrSingular for
// numerically singular systems.
func SolveSystem(a *Matrix, b Vector, tol float64) (Vector, error) {
	f, err := Factor(a, tol)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// Cholesky returns the lower-triangular L with A = L L^T for a symmetric
// positive definite A.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: Cholesky requires a square matrix")
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return nil, ErrNotSPD
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return l, nil
}

// AffineMap is the invertible map x -> M x + T.
type AffineMap struct {
	M *Matrix
	T Vector
	// inv caches M^{-1}; it is computed on first use.
	inv    *Matrix
	detAbs float64
}

// NewAffineMap builds an affine map and eagerly validates invertibility.
func NewAffineMap(m *Matrix, t Vector) (*AffineMap, error) {
	f, err := Factor(m, 1e-12)
	if err != nil {
		return nil, err
	}
	return &AffineMap{M: m, T: t, inv: f.Inverse(), detAbs: math.Abs(f.Det())}, nil
}

// IdentityMap returns the identity affine map on R^d.
func IdentityMap(d int) *AffineMap {
	am, _ := NewAffineMap(Identity(d), NewVector(d))
	return am
}

// Apply returns M x + T.
func (a *AffineMap) Apply(x Vector) Vector {
	y := a.M.MulVec(x)
	for i := range y {
		y[i] += a.T[i]
	}
	return y
}

// Invert returns M^{-1} (y - T).
func (a *AffineMap) Invert(y Vector) Vector {
	z := y.Clone()
	for i := range z {
		z[i] -= a.T[i]
	}
	return a.inv.MulVec(z)
}

// DetAbs returns |det M|, the volume scaling factor of the map.
func (a *AffineMap) DetAbs() float64 { return a.detAbs }

// InvTMulVec returns (M^{-1})^T v, the normal-vector transform used when
// mapping halfspaces through the affine map.
func (a *AffineMap) InvTMulVec(v Vector) Vector { return a.inv.TMulVec(v) }

// Compose returns the map x -> a(b(x)).
func (a *AffineMap) Compose(b *AffineMap) (*AffineMap, error) {
	m := a.M.Mul(b.M)
	t := a.M.MulVec(b.T)
	for i := range t {
		t[i] += a.T[i]
	}
	return NewAffineMap(m, t)
}
