package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give identical streams")
		}
	}
}

func TestSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("adjacent seeds collided %d times in 64 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	s := r.Split()
	// The split stream must not be a shifted copy of the parent stream.
	parent := make([]uint64, 32)
	child := make([]uint64, 32)
	for i := range parent {
		parent[i] = r.Uint64()
		child[i] = s.Uint64()
	}
	for i := range parent {
		if parent[i] == child[i] {
			t.Fatalf("split stream collides with parent at %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %g, want ~0.5", mean)
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(5)
	const k = 7
	counts := make([]int, k)
	const n = 70000
	for i := 0; i < n; i++ {
		counts[r.Intn(k)]++
	}
	want := float64(n) / k
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("Intn bucket %d count %d deviates from %g", v, c, want)
		}
	}
}

func TestIntnPanicsOnBadBound(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) must panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := r.Normal()
		sum += x
		sum2 += x * x
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %g, want ~1", variance)
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(17)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exponential()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %g, want ~1", mean)
	}
}

func TestOnSphereNorm(t *testing.T) {
	r := New(19)
	for d := 1; d <= 8; d++ {
		v := make([]float64, d)
		for i := 0; i < 100; i++ {
			r.OnSphere(v)
			var n2 float64
			for _, x := range v {
				n2 += x * x
			}
			if math.Abs(n2-1) > 1e-9 {
				t.Fatalf("d=%d: sphere point has norm^2 %g", d, n2)
			}
		}
	}
}

func TestInBallInside(t *testing.T) {
	r := New(23)
	v := make([]float64, 5)
	for i := 0; i < 1000; i++ {
		r.InBall(v)
		var n2 float64
		for _, x := range v {
			n2 += x * x
		}
		if n2 > 1+1e-9 {
			t.Fatalf("ball point outside unit ball: norm^2 = %g", n2)
		}
	}
}

func TestInBallRadialDistribution(t *testing.T) {
	// In dimension d the radius R of a uniform ball point satisfies
	// P(R <= t) = t^d; check the median for d = 3: t = 2^{-1/3}.
	r := New(29)
	const d, n = 3, 100000
	v := make([]float64, d)
	below := 0
	median := math.Pow(0.5, 1.0/d)
	for i := 0; i < n; i++ {
		r.InBall(v)
		var n2 float64
		for _, x := range v {
			n2 += x * x
		}
		if math.Sqrt(n2) <= median {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("radial median fraction = %g, want ~0.5", frac)
	}
}

func TestPerm(t *testing.T) {
	r := New(31)
	p := r.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
	// First element should be uniform over 10 values.
	counts := make([]int, 10)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[r.Perm(10)[0]]++
	}
	want := float64(n) / 10
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("Perm first-element bucket %d count %d deviates from %g", v, c, want)
		}
	}
}

func TestBoolBalance(t *testing.T) {
	r := New(37)
	trues := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool() {
			trues++
		}
	}
	if math.Abs(float64(trues)/n-0.5) > 0.01 {
		t.Errorf("Bool imbalance: %d/%d", trues, n)
	}
}

func TestUniformRange(t *testing.T) {
	r := New(41)
	for i := 0; i < 10000; i++ {
		x := r.Uniform(-3, 5)
		if x < -3 || x >= 5 {
			t.Fatalf("Uniform out of range: %g", x)
		}
	}
}
