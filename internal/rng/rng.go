// Package rng provides the deterministic, splittable source of randomness
// used by every sampler in the repository.
//
// All experiments in the paper are randomized algorithms; reproducibility
// of the test suite and of EXPERIMENTS.md requires that every random
// choice flows from an explicit seed. The generator is a 64-bit
// xorshift-multiply stream seeded through splitmix64, which is small,
// fast, and has no external dependencies.
package rng

import "math"

// RNG is a deterministic pseudo-random number generator. It is not safe
// for concurrent use; derive per-goroutine generators with Split.
type RNG struct {
	state uint64
	inc   uint64
	// cached spare standard normal deviate for Box-Muller.
	hasSpare bool
	spare    float64
}

// New returns a generator seeded with seed. Distinct seeds yield
// uncorrelated streams.
func New(seed uint64) *RNG {
	r := &RNG{inc: splitmix64(seed^0x9e3779b97f4a7c15)<<1 | 1}
	r.state = splitmix64(seed)
	// Warm up so that nearby seeds diverge immediately.
	r.Uint64()
	r.Uint64()
	return r
}

// splitmix64 is the finalizer from Steele et al.; it is used to expand
// seeds into well-mixed initial states.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	// xorshift128+ style single-stream step with an odd increment to
	// guarantee full period of the underlying Weyl sequence.
	r.state += r.inc
	x := r.state
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Split returns a new generator whose stream is independent of r's
// remaining stream. It consumes entropy from r.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive bound")
	}
	// Lemire's nearly-divisionless method is overkill here; modulo bias
	// is below 2^-32 for the bounds used in this repository, but we use
	// rejection to keep the streams exactly uniform.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Bool returns a fair coin flip.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }

// Uniform returns a uniform float64 in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Normal returns a standard normal deviate (Box-Muller with caching).
func (r *RNG) Normal() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * f
	r.hasSpare = true
	return u * f
}

// Exponential returns an Exp(1) deviate.
func (r *RNG) Exponential() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// OnSphere fills dst with a uniform point on the unit sphere S^{d-1},
// d = len(dst), and returns dst.
func (r *RNG) OnSphere(dst []float64) []float64 {
	for {
		var norm2 float64
		for i := range dst {
			dst[i] = r.Normal()
			norm2 += dst[i] * dst[i]
		}
		if norm2 > 1e-24 {
			inv := 1 / math.Sqrt(norm2)
			for i := range dst {
				dst[i] *= inv
			}
			return dst
		}
	}
}

// InBall fills dst with a uniform point in the unit ball of dimension
// len(dst) and returns dst.
func (r *RNG) InBall(dst []float64) []float64 {
	r.OnSphere(dst)
	d := float64(len(dst))
	scale := math.Pow(r.Float64(), 1/d)
	for i := range dst {
		dst[i] *= scale
	}
	return dst
}

// Perm returns a uniform permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
