package rounding

import (
	"math"
	"testing"

	"repro/internal/constraint"
	"repro/internal/linalg"
	"repro/internal/polytope"
	"repro/internal/rng"
	"repro/internal/walk"
)

func TestRoundTranslatesAndScales(t *testing.T) {
	// Cube [10, 12]^2: inner ball radius 1 at (11, 11).
	p := polytope.FromTuple(constraint.Cube(2, 10, 12))
	c, r, err := p.Chebyshev()
	if err != nil {
		t.Fatal(err)
	}
	_, outer, err := p.EnclosingBall()
	if err != nil {
		t.Fatal(err)
	}
	ro, err := Round(p, c, r, outer, rng.New(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Origin must be deep inside the rounded body, and the unit ball
	// must fit.
	d := 2
	if !ro.Body.Contains(make(linalg.Vector, d)) {
		t.Error("origin not inside rounded body")
	}
	probe := linalg.Vector{0.99, 0}
	if !ro.Body.Contains(probe) {
		t.Error("unit ball does not fit in rounded body")
	}
	if ro.InnerRadius != 1 {
		t.Errorf("inner radius = %g, want 1", ro.InnerRadius)
	}
	if ro.Ratio() < 1 || ro.Ratio() > 3 {
		t.Errorf("cube sandwich ratio = %g, want ~sqrt(2)", ro.Ratio())
	}
}

func TestRoundRequiresInnerBall(t *testing.T) {
	p := polytope.FromTuple(constraint.Cube(2, 0, 1))
	if _, err := Round(p, linalg.Vector{0.5, 0.5}, 0, 1, rng.New(2), Options{}); err != ErrNotWellBounded {
		t.Errorf("err = %v, want ErrNotWellBounded", err)
	}
}

func TestRoundVolumePreservedThroughDeterminant(t *testing.T) {
	// vol(K) = vol(rounded K) / |det M|: check with an exactly computable
	// rounded volume (cube stays a box under the translate+scale map).
	p := polytope.FromTuple(constraint.Cube(2, 3, 7)) // volume 16
	c, r, _ := p.Chebyshev()
	_, outer, _ := p.EnclosingBall()
	ro, err := Round(p, c, r, outer, rng.New(3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	img := p.Image(ro.Map)
	v, err := img.Volume()
	if err != nil {
		t.Fatal(err)
	}
	back := v / ro.Map.DetAbs()
	if math.Abs(back-16) > 1e-6 {
		t.Errorf("volume through map = %g, want 16", back)
	}
}

func TestIsotropyRoundingImprovesElongatedBody(t *testing.T) {
	// A 1 x 100 box has sandwich ratio ~100 after recentring; covariance
	// rounding must bring it within a small constant.
	p := polytope.FromTuple(constraint.Box(
		linalg.Vector{0, 0}, linalg.Vector{100, 1}))
	c, r, err := p.Chebyshev()
	if err != nil {
		t.Fatal(err)
	}
	_, outer, err := p.EnclosingBall()
	if err != nil {
		t.Fatal(err)
	}
	noRound, err := Round(p, c, r, outer, rng.New(4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if noRound.Ratio() < 50 {
		t.Fatalf("sanity: unrounded ratio = %g, expected ~100", noRound.Ratio())
	}
	rounded, err := Round(p, c, r, outer, rng.New(4), Options{Iterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rounded.Ratio() > 12 {
		t.Errorf("rounded ratio = %g, want < 12", rounded.Ratio())
	}
	// The rounded body must still contain the unit ball direction probes.
	if !rounded.Body.Contains(make(linalg.Vector, 2)) {
		t.Error("origin missing from rounded body")
	}
}

func TestRoundedMembershipConsistent(t *testing.T) {
	// Membership through the map agrees with the original body.
	p := polytope.FromTuple(constraint.Box(linalg.Vector{0, 0}, linalg.Vector{10, 1}))
	c, r, _ := p.Chebyshev()
	_, outer, _ := p.EnclosingBall()
	ro, err := Round(p, c, r, outer, rng.New(5), Options{Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	rr := rng.New(6)
	for i := 0; i < 500; i++ {
		x := linalg.Vector{rr.Uniform(-1, 11), rr.Uniform(-0.5, 1.5)}
		y := ro.Map.Apply(x)
		if p.Contains(x) != ro.Body.Contains(y) {
			t.Fatalf("membership mismatch at %v", x)
		}
	}
}

func TestRoundMembershipOnlyBody(t *testing.T) {
	// An ellipsoid oracle (no chords in the stripped wrapper).
	ell := oracleBody{walk.BallBody{Center: linalg.Vector{5, 5}, Radius: 2}}
	ro, err := Round(ell, linalg.Vector{5, 5}, 2, 2, rng.New(7), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ro.Body.Contains(linalg.Vector{0.9, 0}) {
		t.Error("rounded oracle body must contain the unit ball")
	}
	if ro.Body.Contains(linalg.Vector{1.5, 0}) {
		t.Error("rounded ball of radius 1 must exclude 1.5")
	}
}

type oracleBody struct{ b walk.Body }

func (o oracleBody) Dim() int                      { return o.b.Dim() }
func (o oracleBody) Contains(x linalg.Vector) bool { return o.b.Contains(x) }
