// Package rounding puts convex bodies into well-rounded position: the
// first step of the Dyer–Frieze–Kannan generator computes a non-singular
// affine transformation Q such that Q(K) contains the unit ball and is
// contained in a ball of radius O(d^{3/2}) (Section 2 of the paper).
//
// For H-polytopes the package recentres on the Chebyshev ball exactly and
// then runs isotropy (covariance) rounding with hit-and-run samples; for
// membership-only bodies it applies the caller-supplied inner/outer
// witnesses. The resulting sandwiching ratio is reported so samplers can
// budget their walks.
package rounding

import (
	"errors"
	"math"

	"repro/internal/linalg"
	"repro/internal/rng"
	"repro/internal/walk"
)

// ErrNotWellBounded is returned when no inner ball witness is available
// (the paper's algorithms all assume well-bounded relations).
var ErrNotWellBounded = errors.New("rounding: body is not well-bounded (no inner ball)")

// Rounded describes a body in well-rounded position.
type Rounded struct {
	// Body is the rounded body: Map applied to the original.
	Body walk.Body
	// Map sends original-space points to rounded-space points.
	Map *linalg.AffineMap
	// InnerRadius and OuterRadius sandwich the rounded body:
	// B(0, InnerRadius) ⊆ Body ⊆ B(0, OuterRadius).
	InnerRadius, OuterRadius float64
}

// Ratio returns the sandwiching ratio R/r of the rounded body.
func (ro *Rounded) Ratio() float64 { return ro.OuterRadius / ro.InnerRadius }

// Options tunes the rounding pass.
type Options struct {
	// Iterations of covariance rounding (0 disables; 2–3 suffice for the
	// elongated bodies in the experiments).
	Iterations int
	// SamplesPerIteration used to estimate the covariance (default 4d+16).
	SamplesPerIteration int
	// WalkSteps per covariance sample (default DefaultHitAndRunSteps).
	WalkSteps int
}

// Round places the body in well-rounded position. innerCenter/innerR and
// outerR are the well-boundedness witnesses r_inf and r_sup of the
// paper; innerR must be positive.
func Round(body walk.Body, innerCenter linalg.Vector, innerR, outerR float64, r *rng.RNG, opts Options) (*Rounded, error) {
	if innerR <= 0 {
		return nil, ErrNotWellBounded
	}
	d := body.Dim()
	// Step 1: translate the inner centre to the origin and scale by 1/r
	// so the unit ball fits inside.
	m := linalg.Identity(d)
	for i := 0; i < d; i++ {
		m.Set(i, i, 1/innerR)
	}
	t := make(linalg.Vector, d)
	for i := range t {
		t[i] = -innerCenter[i] / innerR
	}
	am, err := linalg.NewAffineMap(m, t)
	if err != nil {
		return nil, err
	}
	cur := &Rounded{
		Body:        walk.MappedBody{Orig: body, Map: am},
		Map:         am,
		InnerRadius: 1,
		OuterRadius: outerR / innerR,
	}
	if opts.Iterations <= 0 {
		return cur, nil
	}
	samples := opts.SamplesPerIteration
	if samples <= 0 {
		samples = 4*d + 16
	}
	for it := 0; it < opts.Iterations; it++ {
		if cur.Ratio() < 4 {
			break // already well-rounded enough for fast mixing
		}
		next, err := isotropyStep(body, cur, samples, opts.WalkSteps, r)
		if err != nil {
			// Rounding is best-effort: return the current sandwich.
			return cur, nil
		}
		cur = next
	}
	return cur, nil
}

// isotropyStep samples the current rounded body, computes the sample
// covariance, and composes the whitening transform into the map.
func isotropyStep(orig walk.Body, cur *Rounded, samples, walkSteps int, r *rng.RNG) (*Rounded, error) {
	d := orig.Dim()
	if walkSteps <= 0 {
		walkSteps = walk.DefaultHitAndRunSteps(d, cur.Ratio())
	}
	w, err := walk.New(cur.Body, make(linalg.Vector, d), r, walk.Config{
		Kind:        walk.HitAndRun,
		OuterRadius: cur.OuterRadius,
	})
	if err != nil {
		return nil, err
	}
	pts := make([]linalg.Vector, samples)
	for i := range pts {
		pts[i] = w.Sample(walkSteps)
	}
	mean := make(linalg.Vector, d)
	for _, p := range pts {
		mean.AddScaled(1, p)
	}
	mean = mean.Scale(1 / float64(samples))
	cov := linalg.NewMatrix(d, d)
	for _, p := range pts {
		diff := p.Sub(mean)
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				cov.Set(i, j, cov.At(i, j)+diff[i]*diff[j])
			}
		}
	}
	for i := range cov.Data {
		cov.Data[i] /= float64(samples - 1)
	}
	// Regularise: keep the covariance comfortably positive definite.
	for i := 0; i < d; i++ {
		cov.Set(i, i, cov.At(i, i)+1e-8)
	}
	l, err := linalg.Cholesky(cov)
	if err != nil {
		return nil, err
	}
	// Whitening map y = L^{-1}(x - mean); build L^{-1} via solves.
	linv, err := invertLowerTriangular(l)
	if err != nil {
		return nil, err
	}
	shift := linv.MulVec(mean).Scale(-1)
	white, err := linalg.NewAffineMap(linv, shift)
	if err != nil {
		return nil, err
	}
	composed, err := white.Compose(cur.Map)
	if err != nil {
		return nil, err
	}
	body := walk.MappedBody{Orig: orig, Map: composed}
	inner, outer, err := sandwich(body, r)
	if err != nil {
		return nil, err
	}
	// Rescale so the inner radius is exactly 1.
	scale := linalg.Identity(d)
	for i := 0; i < d; i++ {
		scale.Set(i, i, 1/inner)
	}
	scaleMap, err := linalg.NewAffineMap(scale, make(linalg.Vector, d))
	if err != nil {
		return nil, err
	}
	finalMap, err := scaleMap.Compose(composed)
	if err != nil {
		return nil, err
	}
	return &Rounded{
		Body:        walk.MappedBody{Orig: orig, Map: finalMap},
		Map:         finalMap,
		InnerRadius: 1,
		OuterRadius: outer / inner,
	}, nil
}

// sandwich probes the body along random directions through the origin to
// estimate inner and outer radii of the (assumed origin-containing)
// body. The inner estimate is the minimum boundary distance, the outer
// the maximum, both over 8d directions.
func sandwich(body walk.Body, r *rng.RNG) (inner, outer float64, err error) {
	d := body.Dim()
	if !body.Contains(make(linalg.Vector, d)) {
		return 0, 0, errors.New("rounding: origin left the body during rounding")
	}
	dir := make(linalg.Vector, d)
	inner, outer = math.Inf(1), 0
	hasChord := walk.ChordSupport(body)
	var cb walk.ChordBody
	if hasChord {
		cb = body.(walk.ChordBody)
	}
	for k := 0; k < 8*d; k++ {
		r.OnSphere(dir)
		var lo, hi float64
		if hasChord {
			var ok bool
			lo, hi, ok = cb.Chord(make(linalg.Vector, d), dir)
			if !ok {
				continue
			}
		} else {
			hi = probeBoundary(body, dir, +1)
			lo = -probeBoundary(body, dir, -1)
		}
		for _, t := range []float64{math.Abs(lo), math.Abs(hi)} {
			if t < inner {
				inner = t
			}
			if t > outer {
				outer = t
			}
		}
	}
	if math.IsInf(inner, 1) || inner <= 0 {
		return 0, 0, errors.New("rounding: could not sandwich the body")
	}
	return inner, outer, nil
}

// probeBoundary doubles then bisects along ±dir from the origin.
func probeBoundary(body walk.Body, dir linalg.Vector, sign float64) float64 {
	probe := make(linalg.Vector, len(dir))
	at := func(t float64) bool {
		for i := range probe {
			probe[i] = sign * t * dir[i]
		}
		return body.Contains(probe)
	}
	hi := 1.0
	for at(hi) && hi < 1e12 {
		hi *= 2
	}
	lo := 0.0
	for i := 0; i < 50; i++ {
		mid := (lo + hi) / 2
		if at(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// invertLowerTriangular inverts a lower-triangular matrix by forward
// substitution on unit vectors.
func invertLowerTriangular(l *linalg.Matrix) (*linalg.Matrix, error) {
	n := l.Rows
	inv := linalg.NewMatrix(n, n)
	for col := 0; col < n; col++ {
		for i := 0; i < n; i++ {
			var rhs float64
			if i == col {
				rhs = 1
			}
			s := rhs
			for k := 0; k < i; k++ {
				s -= l.At(i, k) * inv.At(k, col)
			}
			diag := l.At(i, i)
			if diag == 0 {
				return nil, linalg.ErrSingular
			}
			inv.Set(i, col, s/diag)
		}
	}
	return inv, nil
}
