package sql

import (
	"fmt"
	"math"

	"repro/internal/constraint"
	"repro/internal/linalg"
	"repro/internal/query"
)

// Mode is the execution mode a statement compiles to, inferred from its
// syntax: a bare SELECT denotes the relation itself (evaluated
// symbolically), SAMPLE draws points, VOLUME(*) measures, EXPLAIN
// reports the plan.
type Mode string

const (
	ModeRelation Mode = "relation"
	ModeSample   Mode = "sample"
	ModeVolume   Mode = "volume"
	ModeExplain  Mode = "explain"
)

// Compiled is a statement lowered onto the algebra IR. Node flows
// through the exact same Compile → Canonicalize pipeline as hand-built
// expressions, so the statement shares their cache entries.
type Compiled struct {
	Node    *query.Node
	Columns []string // SQL-visible output columns (aliases applied)
	Mode    Mode
	// Sampling parameters (ModeSample).
	N       int
	Seed    uint64
	SeedSet bool
	// EXPLAIN SYMBOLIC requested the symbolic evaluation path.
	ExplainSymbolic bool
	// Source is the canonical rendering of the statement.
	Source string
}

// maxWhereDisjuncts bounds the DNF blowup of a WHERE condition; beyond
// this the statement is rejected rather than silently exploding the
// plan.
const maxWhereDisjuncts = 64

// Compile parses and compiles a statement against the database in one
// step.
func Compile(db *constraint.Database, stmt string) (*Compiled, error) {
	ast, err := Parse(stmt)
	if err != nil {
		return nil, err
	}
	return CompileStatement(db, ast)
}

// CompileStatement lowers a parsed statement to the algebra IR,
// resolving relation and column names against the database schema.
func CompileStatement(db *constraint.Database, stmt *Statement) (*Compiled, error) {
	c := &compiler{db: db}
	out := &Compiled{Source: stmt.Source()}

	// VOLUME(*) is an aggregate over the whole result: it only makes
	// sense on the outermost SELECT, and not under SAMPLE.
	if sel, ok := stmt.Body.(*Select); ok && sel.Volume {
		if stmt.Sample != nil {
			return nil, errAt(sel.Pos, "VOLUME(*) cannot be combined with SAMPLE")
		}
		node, cols, err := c.selectBody(sel)
		if err != nil {
			return nil, err
		}
		out.Node, out.Columns, out.Mode = node, cols, ModeVolume
	} else {
		node, cols, err := c.setExpr(stmt.Body)
		if err != nil {
			return nil, err
		}
		out.Node, out.Columns = node, cols
		out.Mode = ModeRelation
		if stmt.Sample != nil {
			out.Mode = ModeSample
			out.N = stmt.Sample.N
			out.Seed, out.SeedSet = stmt.Sample.Seed, stmt.Sample.SeedSet
		}
	}
	if stmt.Explain {
		out.Mode = ModeExplain
		out.ExplainSymbolic = stmt.ExplainSymbolic
	}
	return out, nil
}

type compiler struct {
	db *constraint.Database
}

// setExpr compiles a set-level expression to (node, visible columns).
// Column names returned here are the SQL-visible ones (after aliasing);
// the node's own columns keep the underlying names, which is irrelevant
// for canonical keys (they are positional) but matters when relabeling
// results for the user.
func (c *compiler) setExpr(e SetExpr) (*query.Node, []string, error) {
	switch x := e.(type) {
	case *Select:
		if x.Volume {
			return nil, nil, errAt(x.Pos, "VOLUME(*) is only allowed on the outermost SELECT")
		}
		return c.selectNode(x)
	case *RelRef:
		node, cols, err := c.rel(x)
		return node, cols, err
	case *ExistsExpr:
		node, cols, err := c.setExpr(x.Body)
		if err != nil {
			return nil, nil, err
		}
		have := map[string]int{}
		for i, v := range cols {
			have[v] = i
		}
		drop := map[string]bool{}
		for _, cr := range x.Cols {
			if _, ok := have[cr.Name]; !ok {
				return nil, nil, errAt(cr.P, "EXISTS column %q not among %v", cr.Name, cols)
			}
			if drop[cr.Name] {
				return nil, nil, errAt(cr.P, "EXISTS column %q repeated", cr.Name)
			}
			drop[cr.Name] = true
		}
		var keep []string
		for _, v := range cols {
			if !drop[v] {
				keep = append(keep, v)
			}
		}
		if len(keep) == 0 {
			return nil, nil, errAt(x.P, "EXISTS would project every column away")
		}
		// EXISTS binds SQL-visible names; project the node by the
		// underlying columns at the same positions.
		return c.projectPositional(node, cols, keep, x.P)
	case *SetOp:
		l, lcols, err := c.setExpr(x.Left)
		if err != nil {
			return nil, nil, err
		}
		r, rcols, err := c.setExpr(x.Right)
		if err != nil {
			return nil, nil, err
		}
		if x.Op == OpForAll {
			if len(rcols) == 0 || len(rcols) >= len(lcols) {
				return nil, nil, errAt(x.P, "FOR ALL divisor arity %d must be positive and below the dividend's %d", len(rcols), len(lcols))
			}
			return l.Div(r), append([]string(nil), lcols[:len(lcols)-len(rcols)]...), nil
		}
		if len(lcols) != len(rcols) {
			return nil, nil, errAt(x.P, "%s arity mismatch: %d vs %d columns", x.Op, len(lcols), len(rcols))
		}
		switch x.Op {
		case OpUnion:
			return l.Union(r), lcols, nil
		case OpIntersect:
			return l.Intersect(r), lcols, nil
		default:
			return l.Minus(r), lcols, nil
		}
	}
	return nil, nil, fmt.Errorf("sql: unknown set expression %T", e)
}

// rel resolves a relation or named query leaf.
func (c *compiler) rel(r *RelRef) (*query.Node, []string, error) {
	if rel, ok := c.db.Relation(r.Name); ok {
		return query.NewRel(r.Name), append([]string(nil), rel.Vars...), nil
	}
	if q, ok := c.db.Query(r.Name); ok {
		return query.NewRel(r.Name), append([]string(nil), q.Vars...), nil
	}
	return nil, nil, &Error{Line: r.P.Line, Col: r.P.Col,
		Msg: fmt.Sprintf("unknown relation or query %q", r.Name), Err: query.ErrUnknownTarget}
}

// selectNode compiles a SELECT in relation position: FROM + WHERE, then
// the projection implied by the column list.
func (c *compiler) selectNode(s *Select) (*query.Node, []string, error) {
	node, cols, err := c.selectBody(s)
	if err != nil {
		return nil, nil, err
	}
	if s.Star || s.Volume {
		return node, cols, nil
	}
	names := make([]string, len(s.Cols))
	visible := make([]string, len(s.Cols))
	seen := map[string]bool{}
	for i, col := range s.Cols {
		if seen[col.Name] {
			return nil, nil, errAt(col.Pos, "column %q selected twice", col.Name)
		}
		seen[col.Name] = true
		found := false
		for _, v := range cols {
			if v == col.Name {
				found = true
				break
			}
		}
		if !found {
			return nil, nil, errAt(col.Pos, "unknown column %q (have %v)", col.Name, cols)
		}
		names[i] = col.Name
		visible[i] = col.Name
		if col.Alias != "" {
			visible[i] = col.Alias
		}
	}
	seenVis := map[string]bool{}
	for i, v := range visible {
		if seenVis[v] {
			return nil, nil, errAt(s.Cols[i].Pos, "output column %q repeated (aliases must be distinct)", v)
		}
		seenVis[v] = true
	}
	// Selecting every column in source order is the identity — skip the
	// Project node so `SELECT * FROM R` and `SELECT x, y FROM R` land
	// on the same canonical key as the bare relation.
	if len(names) == len(cols) {
		same := true
		for i := range names {
			if names[i] != cols[i] {
				same = false
				break
			}
		}
		if same {
			return node, visible, nil
		}
	}
	proj, _, err := c.projectPositional(node, cols, names, s.Pos)
	if err != nil {
		return nil, nil, err
	}
	return proj, visible, nil
}

// selectBody compiles FROM + WHERE of a SELECT (no projection yet).
func (c *compiler) selectBody(s *Select) (*query.Node, []string, error) {
	node, cols, err := c.setExpr(s.From)
	if err != nil {
		return nil, nil, err
	}
	if s.Where == nil {
		return node, cols, nil
	}
	dnf, err := condDNF(s.Where, false, cols)
	if err != nil {
		return nil, nil, err
	}
	if len(dnf) == 0 {
		// An unsatisfiable condition (e.g. `NOT (x = x)` simplified to
		// nothing) — keep a trivially-false atom so the plan is empty.
		dim := len(cols)
		falseAtom := constraint.NewAtom(make(linalg.Vector, dim), -1, false)
		return node.Where(falseAtom), cols, nil
	}
	var out *query.Node
	for _, conj := range dnf {
		branch := node
		if len(conj) > 0 {
			branch = node.Where(conj...)
		}
		if out == nil {
			out = branch
		} else {
			out = out.Union(branch)
		}
	}
	return out, cols, nil
}

// projectPositional maps SQL-visible kept names back to positions and
// projects the node by its own column names at those positions. The
// node's columns may differ from the visible ones (aliases introduced
// by inner selects), so projection must go through positions, and the
// underlying names at those positions must be distinct for the algebra
// Project to be well-formed.
func (c *compiler) projectPositional(node *query.Node, visible, keep []string, at Pos) (*query.Node, []string, error) {
	under, err := node.Columns(c.db)
	if err != nil {
		return nil, nil, err
	}
	if len(under) != len(visible) {
		return nil, nil, errAt(at, "internal: column arity drift (%d vs %d)", len(under), len(visible))
	}
	idx := map[string]int{}
	for i, v := range visible {
		idx[v] = i
	}
	names := make([]string, len(keep))
	seenUnder := map[string]bool{}
	for i, v := range keep {
		j := idx[v]
		u := under[j]
		if seenUnder[u] {
			return nil, nil, errAt(at, "projection keeps two columns that share the underlying name %q; alias them apart first", u)
		}
		seenUnder[u] = true
		names[i] = u
	}
	return node.Project(names...), keep, nil
}

// condDNF lowers a condition to disjunctive normal form over full-width
// atoms (coefficient vectors aligned to cols). neg requests the negated
// condition (NNF is driven down through the recursion).
func condDNF(cond Cond, neg bool, cols []string) ([][]constraint.Atom, error) {
	switch x := cond.(type) {
	case *CondNot:
		return condDNF(x.F, !neg, cols)
	case *CondAnd:
		if neg {
			return orDNF(x.Fs, true, cols, x.condPos())
		}
		return andDNF(x.Fs, false, cols, x.condPos())
	case *CondOr:
		if neg {
			return andDNF(x.Fs, true, cols, x.condPos())
		}
		return orDNF(x.Fs, false, cols, x.condPos())
	case *CondCmp:
		return cmpDNF(x, neg, cols)
	}
	return nil, fmt.Errorf("sql: unknown condition %T", cond)
}

// andDNF conjoins the members' DNFs (cross product, bounded).
func andDNF(fs []Cond, neg bool, cols []string, at Pos) ([][]constraint.Atom, error) {
	acc := [][]constraint.Atom{nil} // one empty conjunct: identity
	for _, f := range fs {
		d, err := condDNF(f, neg, cols)
		if err != nil {
			return nil, err
		}
		var next [][]constraint.Atom
		for _, a := range acc {
			for _, b := range d {
				conj := make([]constraint.Atom, 0, len(a)+len(b))
				conj = append(conj, a...)
				conj = append(conj, b...)
				next = append(next, conj)
			}
		}
		if len(next) > maxWhereDisjuncts {
			return nil, errAt(at, "WHERE condition expands to more than %d disjuncts", maxWhereDisjuncts)
		}
		acc = next
	}
	return acc, nil
}

// orDNF concatenates the members' DNFs (bounded).
func orDNF(fs []Cond, neg bool, cols []string, at Pos) ([][]constraint.Atom, error) {
	var acc [][]constraint.Atom
	for _, f := range fs {
		d, err := condDNF(f, neg, cols)
		if err != nil {
			return nil, err
		}
		acc = append(acc, d...)
		if len(acc) > maxWhereDisjuncts {
			return nil, errAt(at, "WHERE condition expands to more than %d disjuncts", maxWhereDisjuncts)
		}
	}
	return acc, nil
}

// cmpDNF lowers one comparison chain. Unnegated: a chain is a single
// conjunct of atoms (with `=` contributing both sides and `!=` two
// strict disjuncts). Negated: De Morgan over the chain's atoms.
func cmpDNF(c *CondCmp, neg bool, cols []string) ([][]constraint.Atom, error) {
	if len(c.Ops) == 1 && c.Ops[0] == CmpNE {
		lt, err := chainAtom(c, c.Exprs[0], c.Exprs[1], true, cols) // l - r < 0
		if err != nil {
			return nil, err
		}
		gt, err := chainAtom(c, c.Exprs[1], c.Exprs[0], true, cols) // r - l < 0
		if err != nil {
			return nil, err
		}
		if neg { // equality
			return [][]constraint.Atom{{lt.Negate(), gt.Negate()}}, nil
		}
		return [][]constraint.Atom{{lt}, {gt}}, nil
	}
	var atoms []constraint.Atom
	for i, op := range c.Ops {
		l, r := c.Exprs[i], c.Exprs[i+1]
		switch op {
		case CmpLE, CmpLT:
			a, err := chainAtom(c, l, r, op == CmpLT, cols)
			if err != nil {
				return nil, err
			}
			atoms = append(atoms, a)
		case CmpGE, CmpGT:
			a, err := chainAtom(c, r, l, op == CmpGT, cols)
			if err != nil {
				return nil, err
			}
			atoms = append(atoms, a)
		case CmpEQ:
			a1, err := chainAtom(c, l, r, false, cols)
			if err != nil {
				return nil, err
			}
			a2, err := chainAtom(c, r, l, false, cols)
			if err != nil {
				return nil, err
			}
			atoms = append(atoms, a1, a2)
		default:
			return nil, errAt(c.P, "'!=' cannot appear in a comparison chain")
		}
	}
	if !neg {
		return [][]constraint.Atom{atoms}, nil
	}
	// ¬(a1 ∧ ... ∧ ak) = ¬a1 ∨ ... ∨ ¬ak.
	out := make([][]constraint.Atom, len(atoms))
	for i, a := range atoms {
		out[i] = []constraint.Atom{a.Negate()}
	}
	return out, nil
}

// chainAtom builds the full-width atom l - r <= 0 (or < 0 when strict)
// over cols.
func chainAtom(c *CondCmp, l, r *LinExpr, strict bool, cols []string) (constraint.Atom, error) {
	d := l.sub(r)
	coef := make(linalg.Vector, len(cols))
	idx := map[string]int{}
	for i, v := range cols {
		idx[v] = i
	}
	for i, v := range d.Vars {
		j, ok := idx[v]
		if !ok {
			return constraint.Atom{}, errAt(c.P, "unknown column %q in WHERE (have %v)", v, cols)
		}
		coef[j] = d.Coefs[i]
	}
	b := -d.Const
	if math.IsInf(b, 0) || math.IsNaN(b) {
		return constraint.Atom{}, errAt(c.P, "non-finite bound in comparison")
	}
	return constraint.NewAtom(coef, b, strict), nil
}
