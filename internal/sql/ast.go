package sql

import (
	"sort"
	"strconv"
	"strings"
)

// Statement is one parsed CDB-SQL statement.
type Statement struct {
	Explain         bool
	ExplainSymbolic bool
	Body            SetExpr
	Sample          *SampleClause
}

// SampleClause is the trailing `SAMPLE n [SEED k]`.
type SampleClause struct {
	N       int
	Seed    uint64
	SeedSet bool
}

// SetExpr is a set-level expression: SELECT, a set operator, an EXISTS
// projection, or a parenthesized subquery (represented structurally).
type SetExpr interface {
	// source appends the canonical rendering. unitCtx requests a form
	// valid in `unit` position (set operators get parenthesized).
	source(sb *strings.Builder, unitCtx bool)
	pos() Pos
}

// Select is `SELECT <list> FROM <source> [WHERE <cond>]`.
type Select struct {
	Pos    Pos
	Star   bool     // SELECT *
	Volume bool     // SELECT VOLUME(*)
	Cols   []SelCol // explicit column list (neither Star nor Volume)
	From   SetExpr  // *RelRef or a subquery
	Where  Cond     // nil when absent
}

// SelCol is one selected column with an optional alias.
type SelCol struct {
	Pos   Pos
	Name  string
	Alias string // "" when not aliased
}

// RelRef names a declared relation or query in FROM position.
type RelRef struct {
	P    Pos
	Name string
}

// SetOpKind discriminates the binary set operators.
type SetOpKind int

const (
	OpUnion SetOpKind = iota
	OpIntersect
	OpExcept
	OpForAll // relational division: left FOR ALL right
)

func (k SetOpKind) String() string {
	switch k {
	case OpUnion:
		return "UNION"
	case OpIntersect:
		return "INTERSECT"
	case OpExcept:
		return "EXCEPT"
	case OpForAll:
		return "FOR ALL"
	}
	return "?"
}

// SetOp is `left <op> right`, left-associative.
type SetOp struct {
	P           Pos
	Op          SetOpKind
	Left, Right SetExpr
}

// ExistsExpr is `EXISTS (c1, ..., ck) body`: project the named columns
// away, keeping the rest in order.
type ExistsExpr struct {
	P    Pos
	Cols []ColRef
	Body SetExpr
}

// ColRef is a positioned column name.
type ColRef struct {
	P    Pos
	Name string
}

func (s *Select) pos() Pos     { return s.Pos }
func (r *RelRef) pos() Pos     { return r.P }
func (o *SetOp) pos() Pos      { return o.P }
func (e *ExistsExpr) pos() Pos { return e.P }

// Cond is a boolean condition over the FROM source's columns.
type Cond interface {
	condSource(sb *strings.Builder, prec int)
	condPos() Pos
}

// Precedence levels for condition rendering: OR < AND < NOT/atom.
const (
	precOr = iota
	precAnd
	precNot
)

// CondOr is a disjunction.
type CondOr struct{ Fs []Cond }

// CondAnd is a conjunction.
type CondAnd struct{ Fs []Cond }

// CondNot is a negation.
type CondNot struct {
	P Pos
	F Cond
}

// CmpOp is a comparison operator in a chain.
type CmpOp int

const (
	CmpLE CmpOp = iota
	CmpLT
	CmpGE
	CmpGT
	CmpEQ
	CmpNE
)

func (o CmpOp) String() string {
	switch o {
	case CmpLE:
		return "<="
	case CmpLT:
		return "<"
	case CmpGE:
		return ">="
	case CmpGT:
		return ">"
	case CmpEQ:
		return "="
	case CmpNE:
		return "!="
	}
	return "?"
}

// CondCmp is a comparison chain e0 op0 e1 op1 e2 ... (as in
// `0 <= x <= 1`). A CmpNE chain has exactly one operator.
type CondCmp struct {
	P     Pos
	Exprs []*LinExpr
	Ops   []CmpOp
}

func (c *CondOr) condPos() Pos  { return c.Fs[0].condPos() }
func (c *CondAnd) condPos() Pos { return c.Fs[0].condPos() }
func (c *CondNot) condPos() Pos { return c.P }
func (c *CondCmp) condPos() Pos { return c.P }

// LinExpr is a linear expression in canonical form: variables sorted by
// name with nonzero coefficients, plus a constant.
type LinExpr struct {
	Vars  []string
	Coefs []float64
	Const float64
}

// newLinExpr canonicalizes a coefficient map: zero coefficients drop
// out, variables sort by name.
func newLinExpr(coef map[string]float64, konst float64) *LinExpr {
	e := &LinExpr{Const: konst}
	for v, c := range coef {
		if c != 0 {
			e.Vars = append(e.Vars, v)
		}
	}
	sort.Strings(e.Vars)
	e.Coefs = make([]float64, len(e.Vars))
	for i, v := range e.Vars {
		e.Coefs[i] = coef[v]
	}
	return e
}

// sub returns e - o.
func (e *LinExpr) sub(o *LinExpr) *LinExpr {
	coef := map[string]float64{}
	for i, v := range e.Vars {
		coef[v] += e.Coefs[i]
	}
	for i, v := range o.Vars {
		coef[v] -= o.Coefs[i]
	}
	return newLinExpr(coef, e.Const-o.Const)
}

func formatNum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// String renders the expression canonically: `2*x + y - 0.5`, constants
// folded last, `0` when empty. The rendering re-parses to an equal
// LinExpr, which is what makes Statement.Source a fixpoint.
func (e *LinExpr) String() string {
	var sb strings.Builder
	for i, v := range e.Vars {
		c := e.Coefs[i]
		neg := c < 0
		if i == 0 {
			if neg {
				sb.WriteString("-")
			}
		} else if neg {
			sb.WriteString(" - ")
		} else {
			sb.WriteString(" + ")
		}
		if a := abs(c); a != 1 {
			sb.WriteString(formatNum(a))
			sb.WriteString("*")
		}
		sb.WriteString(v)
	}
	if len(e.Vars) == 0 {
		sb.WriteString(formatNum(e.Const))
	} else if e.Const != 0 {
		if e.Const < 0 {
			sb.WriteString(" - ")
			sb.WriteString(formatNum(-e.Const))
		} else {
			sb.WriteString(" + ")
			sb.WriteString(formatNum(e.Const))
		}
	}
	return sb.String()
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Source renders the statement in canonical CDB-SQL: upper-case
// keywords, single spaces, explicit parentheses only where the grammar
// needs them. Parsing the result yields an equal AST (and therefore an
// identical Source), which the fuzzer checks as a fixpoint.
func (s *Statement) Source() string {
	var sb strings.Builder
	if s.Explain {
		sb.WriteString("EXPLAIN ")
		if s.ExplainSymbolic {
			sb.WriteString("SYMBOLIC ")
		}
	}
	s.Body.source(&sb, false)
	if s.Sample != nil {
		sb.WriteString(" SAMPLE ")
		sb.WriteString(strconv.Itoa(s.Sample.N))
		if s.Sample.SeedSet {
			sb.WriteString(" SEED ")
			sb.WriteString(strconv.FormatUint(s.Sample.Seed, 10))
		}
	}
	return sb.String()
}

func (s *Select) source(sb *strings.Builder, _ bool) {
	sb.WriteString("SELECT ")
	switch {
	case s.Volume:
		sb.WriteString("VOLUME(*)")
	case s.Star:
		sb.WriteString("*")
	default:
		for i, c := range s.Cols {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(c.Name)
			if c.Alias != "" {
				sb.WriteString(" AS ")
				sb.WriteString(c.Alias)
			}
		}
	}
	sb.WriteString(" FROM ")
	if r, ok := s.From.(*RelRef); ok {
		sb.WriteString(r.Name)
	} else {
		sb.WriteString("(")
		s.From.source(sb, false)
		sb.WriteString(")")
	}
	if s.Where != nil {
		sb.WriteString(" WHERE ")
		s.Where.condSource(sb, precOr)
	}
}

func (r *RelRef) source(sb *strings.Builder, _ bool) {
	// A bare relation is only valid in FROM position; as a unit it must
	// be written SELECT * FROM name. The parser never produces a RelRef
	// in unit position, so render the SELECT form defensively.
	sb.WriteString("SELECT * FROM ")
	sb.WriteString(r.Name)
}

func (o *SetOp) source(sb *strings.Builder, unitCtx bool) {
	if unitCtx {
		sb.WriteString("(")
	}
	// Left-associative chains render flat (a SetOp left operand needs
	// no parentheses); a right operand that is itself a set op was
	// parenthesized in the input and renders parenthesized again.
	o.Left.source(sb, false)
	sb.WriteString(" ")
	sb.WriteString(o.Op.String())
	sb.WriteString(" ")
	o.Right.source(sb, true)
	if unitCtx {
		sb.WriteString(")")
	}
}

func (e *ExistsExpr) source(sb *strings.Builder, unitCtx bool) {
	sb.WriteString("EXISTS (")
	for i, c := range e.Cols {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(c.Name)
	}
	sb.WriteString(") ")
	e.Body.source(sb, true)
}

func (c *CondOr) condSource(sb *strings.Builder, prec int) {
	if prec > precOr {
		sb.WriteString("(")
	}
	for i, f := range c.Fs {
		if i > 0 {
			sb.WriteString(" OR ")
		}
		f.condSource(sb, precAnd)
	}
	if prec > precOr {
		sb.WriteString(")")
	}
}

func (c *CondAnd) condSource(sb *strings.Builder, prec int) {
	if prec > precAnd {
		sb.WriteString("(")
	}
	for i, f := range c.Fs {
		if i > 0 {
			sb.WriteString(" AND ")
		}
		f.condSource(sb, precNot)
	}
	if prec > precAnd {
		sb.WriteString(")")
	}
}

func (c *CondNot) condSource(sb *strings.Builder, _ int) {
	sb.WriteString("NOT (")
	c.F.condSource(sb, precOr)
	sb.WriteString(")")
}

func (c *CondCmp) condSource(sb *strings.Builder, _ int) {
	sb.WriteString(c.Exprs[0].String())
	for i, op := range c.Ops {
		sb.WriteString(" ")
		sb.WriteString(op.String())
		sb.WriteString(" ")
		sb.WriteString(c.Exprs[i+1].String())
	}
}
