package sql

import (
	"errors"
	"testing"
)

// FuzzSQLParse checks the parser never panics and that for every
// accepted statement the canonical rendering is a fixpoint:
// Source(Parse(Source(Parse(s)))) == Source(Parse(s)).
func FuzzSQLParse(f *testing.F) {
	seeds := []string{
		"SELECT * FROM R",
		"SELECT x, y FROM R WHERE 0 <= x <= 1 AND y > 2",
		"SELECT x AS a FROM R WHERE x != y OR NOT (x >= 1/2)",
		"SELECT * FROM R UNION SELECT * FROM S INTERSECT SELECT * FROM T",
		"SELECT * FROM R EXCEPT (SELECT * FROM S UNION SELECT * FROM T)",
		"EXISTS (y) SELECT * FROM R WHERE 2*x + 3*y <= 6",
		"SELECT * FROM R FOR ALL SELECT * FROM D",
		"SELECT VOLUME(*) FROM R WHERE x <= 1",
		"EXPLAIN SYMBOLIC SELECT * FROM R SAMPLE 16 SEED 7",
		"SELECT * FROM R WHERE x - 1e-3 < y | ! (x = y)",
		"select x from (select * from R where y <= 1) sample 100",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmt, err := Parse(src)
		if err != nil {
			var serr *Error
			if !errors.As(err, &serr) {
				t.Fatalf("Parse(%q): error %T is not *Error: %v", src, err, err)
			}
			return
		}
		first := stmt.Source()
		again, err := Parse(first)
		if err != nil {
			t.Fatalf("rendering of accepted statement does not reparse:\n input: %q\nrender: %q\n  err: %v", src, first, err)
		}
		second := again.Source()
		if second != first {
			t.Fatalf("Source not a fixpoint:\n input: %q\n first: %q\nsecond: %q", src, first, second)
		}
	})
}
