package sql

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/constraint"
	"repro/internal/linalg"
	"repro/internal/query"
)

const testProgram = `
rel R(x, y) := { 0 <= x <= 1, 0 <= y <= 1 };
rel S(x, y) := { 0.5 <= x <= 2, 0 <= y <= 1 };
rel T(x, y) := { 3 <= x <= 4, 0 <= y <= 1 };
rel D(y) := { 0 <= y <= 0.25 };
`

func testDB(t *testing.T) *constraint.Database {
	t.Helper()
	db, err := constraint.Parse(testProgram)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func compileKey(t *testing.T, db *constraint.Database, stmt string) string {
	t.Helper()
	c, err := Compile(db, stmt)
	if err != nil {
		t.Fatalf("Compile(%q): %v", stmt, err)
	}
	plan, err := c.Node.Compile(db)
	if err != nil {
		t.Fatalf("plan Compile(%q): %v", stmt, err)
	}
	return query.Canonicalize(plan).Key
}

func nodeKey(t *testing.T, db *constraint.Database, n *query.Node) string {
	t.Helper()
	plan, err := n.Compile(db)
	if err != nil {
		t.Fatal(err)
	}
	return query.Canonicalize(plan).Key
}

// TestDifferentialKeys asserts SQL statements and hand-built algebra
// trees produce byte-identical canonical keys — the property that makes
// SQL traffic share the prepared-sampler cache with Expr traffic.
func TestDifferentialKeys(t *testing.T) {
	db := testDB(t)
	atom := func(coef []float64, b float64, strict bool) constraint.Atom {
		return constraint.NewAtom(linalg.Vector(coef), b, strict)
	}
	cases := []struct {
		name string
		stmt string
		node *query.Node
	}{
		{"bare relation", "SELECT * FROM R", query.NewRel("R")},
		{"identity column list", "SELECT x, y FROM R", query.NewRel("R")},
		{"aliases do not affect the key", "SELECT x AS a, y AS b FROM R", query.NewRel("R")},
		{"where atom", "SELECT * FROM R WHERE x + y <= 1",
			query.NewRel("R").Where(atom([]float64{1, 1}, 1, false))},
		{"where chain", "SELECT * FROM R WHERE 0.25 <= x <= 0.75",
			query.NewRel("R").Where(
				atom([]float64{-1, 0}, -0.25, false),
				atom([]float64{1, 0}, 0.75, false))},
		{"where or is a union", "SELECT * FROM R WHERE x <= 0.25 OR y <= 0.25",
			query.NewRel("R").Where(atom([]float64{1, 0}, 0.25, false)).
				Union(query.NewRel("R").Where(atom([]float64{0, 1}, 0.25, false)))},
		{"union", "SELECT * FROM R UNION SELECT * FROM S",
			query.NewRel("R").Union(query.NewRel("S"))},
		{"intersect", "SELECT * FROM R INTERSECT SELECT * FROM S",
			query.NewRel("R").Intersect(query.NewRel("S"))},
		{"except", "SELECT * FROM R EXCEPT SELECT * FROM S",
			query.NewRel("R").Minus(query.NewRel("S"))},
		{"projection", "SELECT x FROM R", query.NewRel("R").Project("x")},
		{"exists", "EXISTS (y) SELECT * FROM R", query.NewRel("R").Project("x")},
		{"subquery", "SELECT x FROM (SELECT * FROM R WHERE y <= 0.5)",
			query.NewRel("R").Where(atom([]float64{0, 1}, 0.5, false)).Project("x")},
		{"left-assoc set ops", "SELECT * FROM R UNION SELECT * FROM S EXCEPT SELECT * FROM T",
			query.NewRel("R").Union(query.NewRel("S")).Minus(query.NewRel("T"))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sqlKey := compileKey(t, db, tc.stmt)
			exprKey := nodeKey(t, db, tc.node)
			if sqlKey != exprKey {
				t.Fatalf("keys differ:\n  sql:  %s\n  expr: %s", sqlKey, exprKey)
			}
		})
	}
}

// TestCompileModes checks mode inference and sampling parameters.
func TestCompileModes(t *testing.T) {
	db := testDB(t)
	cases := []struct {
		stmt string
		mode Mode
	}{
		{"SELECT * FROM R", ModeRelation},
		{"SELECT * FROM R SAMPLE 10", ModeSample},
		{"SELECT VOLUME(*) FROM R", ModeVolume},
		{"EXPLAIN SELECT * FROM R", ModeExplain},
		{"EXPLAIN SYMBOLIC SELECT * FROM R", ModeExplain},
	}
	for _, tc := range cases {
		c, err := Compile(db, tc.stmt)
		if err != nil {
			t.Fatalf("Compile(%q): %v", tc.stmt, err)
		}
		if c.Mode != tc.mode {
			t.Errorf("Compile(%q).Mode = %q, want %q", tc.stmt, c.Mode, tc.mode)
		}
	}
	c, err := Compile(db, "SELECT * FROM R SAMPLE 32 SEED 9")
	if err != nil {
		t.Fatal(err)
	}
	if c.N != 32 || !c.SeedSet || c.Seed != 9 {
		t.Fatalf("sample params = (%d, %v, %d), want (32, true, 9)", c.N, c.SeedSet, c.Seed)
	}
	c, err = Compile(db, "EXPLAIN SYMBOLIC SELECT * FROM R")
	if err != nil {
		t.Fatal(err)
	}
	if !c.ExplainSymbolic {
		t.Fatal("ExplainSymbolic not set")
	}
}

// TestCompileColumns checks visible-column tracking through aliases,
// projections and set operators.
func TestCompileColumns(t *testing.T) {
	db := testDB(t)
	cases := []struct {
		stmt string
		cols []string
	}{
		{"SELECT * FROM R", []string{"x", "y"}},
		{"SELECT y, x FROM R", []string{"y", "x"}},
		{"SELECT x AS a, y FROM R", []string{"a", "y"}},
		{"EXISTS (x) SELECT * FROM R", []string{"y"}},
		{"SELECT * FROM R UNION SELECT * FROM S", []string{"x", "y"}},
		{"SELECT * FROM R FOR ALL SELECT * FROM D", []string{"x"}},
		{"SELECT a FROM (SELECT y AS a, x FROM R)", []string{"a"}},
	}
	for _, tc := range cases {
		c, err := Compile(db, tc.stmt)
		if err != nil {
			t.Fatalf("Compile(%q): %v", tc.stmt, err)
		}
		if len(c.Columns) != len(tc.cols) {
			t.Fatalf("Compile(%q).Columns = %v, want %v", tc.stmt, c.Columns, tc.cols)
		}
		for i := range tc.cols {
			if c.Columns[i] != tc.cols[i] {
				t.Fatalf("Compile(%q).Columns = %v, want %v", tc.stmt, c.Columns, tc.cols)
			}
		}
	}
}

// TestCompileErrors checks schema-level errors carry positions and the
// unknown-target sentinel where applicable.
func TestCompileErrors(t *testing.T) {
	db := testDB(t)
	cases := []struct {
		stmt    string
		wantMsg string
	}{
		{"SELECT * FROM Nope", "unknown relation or query"},
		{"SELECT z FROM R", "unknown column"},
		{"SELECT * FROM R WHERE z <= 1", "unknown column"},
		{"SELECT x, x FROM R", "selected twice"},
		{"SELECT x AS a, y AS a FROM R", "repeated"},
		{"EXISTS (z) SELECT * FROM R", "not among"},
		{"EXISTS (x, y) SELECT * FROM R", "project every column away"},
		{"SELECT * FROM R UNION SELECT y FROM S", "arity mismatch"},
		{"SELECT * FROM R FOR ALL SELECT * FROM S", "divisor arity"},
		{"SELECT x FROM (SELECT VOLUME(*) FROM R)", "outermost SELECT"},
		{"SELECT VOLUME(*) FROM R SAMPLE 5", "cannot be combined with SAMPLE"},
	}
	for _, tc := range cases {
		_, err := Compile(db, tc.stmt)
		if err == nil {
			t.Errorf("Compile(%q): want error %q, got nil", tc.stmt, tc.wantMsg)
			continue
		}
		var serr *Error
		if !errors.As(err, &serr) {
			t.Errorf("Compile(%q): error %T is not *Error (%v)", tc.stmt, err, err)
			continue
		}
		if !strings.Contains(serr.Error(), tc.wantMsg) {
			t.Errorf("Compile(%q) = %q, want substring %q", tc.stmt, serr.Error(), tc.wantMsg)
		}
	}
	_, err := Compile(db, "SELECT * FROM Nope")
	if !errors.Is(err, query.ErrUnknownTarget) {
		t.Fatalf("unknown relation error does not wrap ErrUnknownTarget: %v", err)
	}
}

// TestWhereNegationSemantics checks NOT compiles through NNF→DNF to the
// complementary region, via the symbolic evaluator.
func TestWhereNegationSemantics(t *testing.T) {
	db := testDB(t)
	c, err := Compile(db, "SELECT * FROM R WHERE NOT (x <= 0.5 AND y <= 0.5)")
	if err != nil {
		t.Fatal(err)
	}
	sq, err := c.Node.CompileSymbolic(db)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := sq.Eval()
	if err != nil {
		t.Fatal(err)
	}
	in := [][]float64{{0.75, 0.25}, {0.25, 0.75}, {0.9, 0.9}}
	out := [][]float64{{0.25, 0.25}, {0.4, 0.4}}
	for _, p := range in {
		if !rel.Contains(p) {
			t.Errorf("point %v should satisfy NOT(x<=0.5 AND y<=0.5)", p)
		}
	}
	for _, p := range out {
		if rel.Contains(p) {
			t.Errorf("point %v should not satisfy NOT(x<=0.5 AND y<=0.5)", p)
		}
	}
}
