package sql

import (
	"math"
	"strconv"
	"strings"
)

// Parse parses one CDB-SQL statement (an optional trailing ';' is
// accepted). Errors are *Error values carrying the 1-based line/column
// of the offending token.
func Parse(src string) (*Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokSemi {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, errAt(p.peek().pos, "unexpected %q after statement", p.peek().text)
	}
	return stmt, nil
}

// SplitStatements splits a script on top-level semicolons (the dialect
// has no string literals, so every ';' terminates a statement). Empty
// fragments are dropped.
func SplitStatements(script string) []string {
	var out []string
	for _, part := range strings.Split(script, ";") {
		if strings.TrimSpace(part) != "" {
			out = append(out, part)
		}
	}
	return out
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) expect(kind tokKind, what string) (token, error) {
	t := p.peek()
	if t.kind != kind {
		return t, errAt(t.pos, "expected %s, got %q", what, t.text)
	}
	return p.next(), nil
}

// expectKw consumes the given keyword or errors.
func (p *parser) expectKw(name string) (token, error) {
	t := p.peek()
	if !t.kw(name) {
		return t, errAt(t.pos, "expected %s, got %q", name, t.text)
	}
	return p.next(), nil
}

// ident consumes a non-keyword identifier.
func (p *parser) ident(what string) (token, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return t, errAt(t.pos, "expected %s, got %q", what, t.text)
	}
	if isKeyword(t.text) {
		return t, errAt(t.pos, "expected %s, got keyword %q", what, t.text)
	}
	return p.next(), nil
}

func (p *parser) parseStatement() (*Statement, error) {
	stmt := &Statement{}
	if p.peek().kw("EXPLAIN") {
		p.next()
		stmt.Explain = true
		if p.peek().kw("SYMBOLIC") {
			p.next()
			stmt.ExplainSymbolic = true
		}
	}
	body, err := p.parseSetExpr()
	if err != nil {
		return nil, err
	}
	stmt.Body = body
	if p.peek().kw("SAMPLE") {
		p.next()
		nt, err := p.expect(tokNumber, "sample size")
		if err != nil {
			return nil, err
		}
		n, err2 := strconv.Atoi(nt.text)
		if err2 != nil || n <= 0 {
			return nil, errAt(nt.pos, "SAMPLE size must be a positive integer, got %q", nt.text)
		}
		sc := &SampleClause{N: n}
		if p.peek().kw("SEED") {
			p.next()
			st, err := p.expect(tokNumber, "seed")
			if err != nil {
				return nil, err
			}
			seed, err2 := strconv.ParseUint(st.text, 10, 64)
			if err2 != nil {
				return nil, errAt(st.pos, "SEED must be an unsigned integer, got %q", st.text)
			}
			sc.Seed, sc.SeedSet = seed, true
		}
		stmt.Sample = sc
	}
	return stmt, nil
}

func (p *parser) parseSetExpr() (SetExpr, error) {
	left, err := p.parseUnit()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		var op SetOpKind
		switch {
		case t.kw("UNION"):
			op = OpUnion
		case t.kw("INTERSECT"):
			op = OpIntersect
		case t.kw("EXCEPT"):
			op = OpExcept
		case t.kw("FOR"):
			p.next()
			if _, err := p.expectKw("ALL"); err != nil {
				return nil, err
			}
			right, err := p.parseUnit()
			if err != nil {
				return nil, err
			}
			left = &SetOp{P: t.pos, Op: OpForAll, Left: left, Right: right}
			continue
		default:
			return left, nil
		}
		p.next()
		right, err := p.parseUnit()
		if err != nil {
			return nil, err
		}
		left = &SetOp{P: t.pos, Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseUnit() (SetExpr, error) {
	t := p.peek()
	switch {
	case t.kw("SELECT"):
		return p.parseSelect()
	case t.kw("EXISTS"):
		p.next()
		if _, err := p.expect(tokLParen, "'('"); err != nil {
			return nil, err
		}
		var cols []ColRef
		for {
			id, err := p.ident("column name")
			if err != nil {
				return nil, err
			}
			cols = append(cols, ColRef{P: id.pos, Name: id.text})
			if p.peek().kind == tokComma {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		body, err := p.parseUnit()
		if err != nil {
			return nil, err
		}
		return &ExistsExpr{P: t.pos, Cols: cols, Body: body}, nil
	case t.kind == tokLParen:
		p.next()
		inner, err := p.parseSetExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return nil, errAt(t.pos, "expected SELECT, EXISTS or '(', got %q", t.text)
}

func (p *parser) parseSelect() (*Select, error) {
	kw, err := p.expectKw("SELECT")
	if err != nil {
		return nil, err
	}
	sel := &Select{Pos: kw.pos}
	switch {
	case p.peek().kind == tokStar:
		p.next()
		sel.Star = true
	case p.peek().kw("VOLUME"):
		p.next()
		if _, err := p.expect(tokLParen, "'('"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokStar, "'*'"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		sel.Volume = true
	default:
		for {
			id, err := p.ident("column name")
			if err != nil {
				return nil, err
			}
			col := SelCol{Pos: id.pos, Name: id.text}
			if p.peek().kw("AS") {
				p.next()
				al, err := p.ident("alias")
				if err != nil {
					return nil, err
				}
				col.Alias = al.text
			}
			sel.Cols = append(sel.Cols, col)
			if p.peek().kind == tokComma {
				p.next()
				continue
			}
			break
		}
	}
	if _, err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	t := p.peek()
	switch {
	case t.kind == tokIdent && !isKeyword(t.text):
		p.next()
		sel.From = &RelRef{P: t.pos, Name: t.text}
	case t.kind == tokLParen:
		p.next()
		inner, err := p.parseSetExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		sel.From = inner
	default:
		return nil, errAt(t.pos, "expected relation name or subquery after FROM, got %q", t.text)
	}
	if p.peek().kw("WHERE") {
		p.next()
		cond, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		sel.Where = cond
	}
	return sel, nil
}

// parseCond parses a disjunction (OR / '|').
func (p *parser) parseCond() (Cond, error) {
	first, err := p.parseConj()
	if err != nil {
		return nil, err
	}
	fs := []Cond{first}
	for p.peek().kw("OR") || p.peek().kind == tokPipe {
		p.next()
		f, err := p.parseConj()
		if err != nil {
			return nil, err
		}
		fs = append(fs, f)
	}
	if len(fs) == 1 {
		return first, nil
	}
	return &CondOr{Fs: fs}, nil
}

// parseConj parses a conjunction (AND / '&').
func (p *parser) parseConj() (Cond, error) {
	first, err := p.parseNeg()
	if err != nil {
		return nil, err
	}
	fs := []Cond{first}
	for p.peek().kw("AND") || p.peek().kind == tokAmp {
		p.next()
		f, err := p.parseNeg()
		if err != nil {
			return nil, err
		}
		fs = append(fs, f)
	}
	if len(fs) == 1 {
		return first, nil
	}
	return &CondAnd{Fs: fs}, nil
}

// parseNeg parses NOT/'!' prefixes, parenthesized conditions, and
// comparisons. A '(' is ambiguous — it may open a grouped condition or
// a parenthesized arithmetic expression; conditions contain comparison
// operators at depth 0 of their first comparison, so we resolve by
// lookahead: '(' followed by a condition is only produced via NOT or
// grouping, and the dialect's linexpr grammar has no parentheses, so
// '(' always opens a grouped condition here.
func (p *parser) parseNeg() (Cond, error) {
	t := p.peek()
	if t.kw("NOT") || t.kind == tokBang {
		p.next()
		f, err := p.parseNeg()
		if err != nil {
			return nil, err
		}
		return &CondNot{P: t.pos, F: f}, nil
	}
	if t.kind == tokLParen {
		p.next()
		inner, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return p.parseComparison()
}

// parseComparison parses a chained comparison like the constraint
// language's: `0 <= x + y <= 1` conjoins adjacent pairs; `=` is the
// two-sided non-strict pair; `!=` cannot chain.
func (p *parser) parseComparison() (Cond, error) {
	start := p.peek().pos
	left, err := p.parseLinExpr()
	if err != nil {
		return nil, err
	}
	cmp := &CondCmp{P: start, Exprs: []*LinExpr{left}}
	for {
		var op CmpOp
		switch p.peek().kind {
		case tokLE:
			op = CmpLE
		case tokLT:
			op = CmpLT
		case tokGE:
			op = CmpGE
		case tokGT:
			op = CmpGT
		case tokEQ:
			op = CmpEQ
		case tokNE:
			op = CmpNE
		default:
			if len(cmp.Ops) == 0 {
				return nil, errAt(p.peek().pos, "expected comparison operator, got %q", p.peek().text)
			}
			return cmp, nil
		}
		opPos := p.next().pos
		if op == CmpNE && len(cmp.Ops) > 0 || len(cmp.Ops) > 0 && cmp.Ops[len(cmp.Ops)-1] == CmpNE {
			return nil, errAt(opPos, "'!=' cannot appear in a comparison chain")
		}
		right, err := p.parseLinExpr()
		if err != nil {
			return nil, err
		}
		cmp.Ops = append(cmp.Ops, op)
		cmp.Exprs = append(cmp.Exprs, right)
	}
}

func (p *parser) parseLinExpr() (*LinExpr, error) {
	coef := map[string]float64{}
	konst := 0.0
	sign := 1.0
	for p.peek().kind == tokMinus || p.peek().kind == tokPlus {
		if p.next().kind == tokMinus {
			sign = -sign
		}
	}
	for {
		if err := p.parseTermInto(coef, &konst, sign); err != nil {
			return nil, err
		}
		switch p.peek().kind {
		case tokPlus:
			p.next()
			sign = 1
		case tokMinus:
			p.next()
			sign = -1
		default:
			e := newLinExpr(coef, konst)
			// Coefficient accumulation must stay finite: a ±Inf or NaN
			// would render unparseably and poison the atom bounds.
			for _, c := range e.Coefs {
				if math.IsInf(c, 0) || math.IsNaN(c) {
					return nil, errAt(p.peek().pos, "non-finite coefficient in expression")
				}
			}
			if math.IsInf(e.Const, 0) || math.IsNaN(e.Const) {
				return nil, errAt(p.peek().pos, "non-finite constant in expression")
			}
			return e, nil
		}
	}
}

// parseTermInto parses NUMBER ['/' NUMBER] ['*'] [IDENT] | IDENT,
// mirroring the constraint-language term grammar.
func (p *parser) parseTermInto(coef map[string]float64, konst *float64, sign float64) error {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return errAt(t.pos, "bad number %q", t.text)
		}
		if p.peek().kind == tokSlash {
			p.next()
			dt := p.peek()
			if dt.kind != tokNumber {
				return errAt(dt.pos, "expected denominator after '/', got %q", dt.text)
			}
			p.next()
			den, err := strconv.ParseFloat(dt.text, 64)
			if err != nil || den == 0 {
				return errAt(dt.pos, "bad denominator %q", dt.text)
			}
			v /= den
		}
		if p.peek().kind == tokStar {
			p.next()
			id, err := p.ident("variable after '*'")
			if err != nil {
				return err
			}
			coef[id.text] += sign * v
			return nil
		}
		if nt := p.peek(); nt.kind == tokIdent && !isKeyword(nt.text) {
			p.next()
			coef[nt.text] += sign * v
			return nil
		}
		*konst += sign * v
		return nil
	case tokIdent:
		if isKeyword(t.text) {
			return errAt(t.pos, "unexpected keyword %q in expression", t.text)
		}
		p.next()
		coef[t.text] += sign
		return nil
	default:
		return errAt(t.pos, "expected term, got %q", t.text)
	}
}
