// Package sql implements CDB-SQL: a small SQL dialect over the
// constraint-database algebra. Statements parse to an AST (Parse),
// render back to a canonical form (Statement.Source), and compile to
// the shared internal/query.Node IR (Compile), so every SQL query flows
// through the same canonicalization, LP pruning, plan-hash cache keys,
// symbolic evaluation and tracing as hand-built Expr trees — and lands
// on the same cache entries.
//
// Grammar (keywords case-insensitive, identifiers case-sensitive):
//
//	statement := [EXPLAIN [SYMBOLIC]] query [';']
//	query     := setexpr [SAMPLE INT [SEED INT]]
//	setexpr   := unit ((UNION | INTERSECT | EXCEPT | FOR ALL) unit)*
//	unit      := select
//	           | EXISTS '(' ident {',' ident} ')' unit
//	           | '(' setexpr ')'
//	select    := SELECT sellist FROM source [WHERE cond]
//	sellist   := '*' | VOLUME '(' '*' ')' | col [AS alias] {',' col [AS alias]}
//	source    := ident | '(' setexpr ')'
//	cond      := conjunction {(OR | '|') conjunction}
//	conjunction := negation {(AND | '&') negation}
//	negation  := (NOT | '!') negation | '(' cond ')' | comparison
//	comparison := linexpr (cmpop linexpr)+        -- chains: 0 <= x <= 1
//	cmpop     := '<=' | '<' | '>=' | '>' | '=' | '!=' | '<>'
//	linexpr   := ['+'|'-'] term {('+'|'-') term}
//	term      := NUMBER ['/' NUMBER] ['*'] [ident] | ident
//
// Set operators associate left. UNION, INTERSECT and EXCEPT map to the
// algebra's Union/Intersect/Minus; FOR ALL maps to relational division
// (Div, the ∀ of the paper's FO fragment); EXISTS (cols) projects the
// named columns away (Project keeps the rest). VOLUME(*) computes the
// measure of the row set and is only allowed on the outermost SELECT.
package sql

import (
	"fmt"
	"strings"
)

// Error is a positioned CDB-SQL error: parse errors and compile errors
// both carry the 1-based line/column of the offending token, so serving
// layers can return structured {error, line, col} bodies.
type Error struct {
	Line int
	Col  int
	Msg  string
	Err  error // optional wrapped cause (e.g. query.ErrUnknownTarget)
}

func (e *Error) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("sql: line %d:%d: %s", e.Line, e.Col, e.Msg)
	}
	return "sql: " + e.Msg
}

func (e *Error) Unwrap() error { return e.Err }

// Pos locates a token in the statement text (1-based).
type Pos struct {
	Line int
	Col  int
}

func errAt(p Pos, format string, args ...interface{}) *Error {
	return &Error{Line: p.Line, Col: p.Col, Msg: fmt.Sprintf(format, args...)}
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokLParen
	tokRParen
	tokComma
	tokSemi
	tokStar
	tokPlus
	tokMinus
	tokSlash
	tokLE
	tokLT
	tokGE
	tokGT
	tokEQ
	tokNE
	tokAmp
	tokPipe
	tokBang
)

type token struct {
	kind tokKind
	text string
	pos  Pos
}

// lex tokenizes a statement. Comments run from "--" to end of line.
func lex(src string) ([]token, error) {
	var toks []token
	line, col := 1, 1
	i := 0
	emit := func(kind tokKind, text string, p Pos) {
		toks = append(toks, token{kind: kind, text: text, pos: p})
	}
	for i < len(src) {
		c := src[i]
		p := Pos{Line: line, Col: col}
		switch {
		case c == '\n':
			line++
			col = 1
			i++
			continue
		case c == ' ' || c == '\t' || c == '\r':
			i++
			col++
			continue
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				i++
			}
			continue
		case isIdentStart(c):
			j := i
			for j < len(src) && isIdentPart(src[j]) {
				j++
			}
			emit(tokIdent, src[i:j], p)
			col += j - i
			i = j
			continue
		case c >= '0' && c <= '9' || c == '.' && i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9':
			j := i
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				j++
			}
			// Exponent suffix: 1e-7, 2.5E+3.
			if j < len(src) && (src[j] == 'e' || src[j] == 'E') {
				k := j + 1
				if k < len(src) && (src[k] == '+' || src[k] == '-') {
					k++
				}
				if k < len(src) && src[k] >= '0' && src[k] <= '9' {
					for k < len(src) && src[k] >= '0' && src[k] <= '9' {
						k++
					}
					j = k
				}
			}
			emit(tokNumber, src[i:j], p)
			col += j - i
			i = j
			continue
		}
		two := ""
		if i+1 < len(src) {
			two = src[i : i+2]
		}
		switch {
		case two == "<=":
			emit(tokLE, two, p)
			i, col = i+2, col+2
		case two == ">=":
			emit(tokGE, two, p)
			i, col = i+2, col+2
		case two == "!=" || two == "<>":
			emit(tokNE, "!=", p)
			i, col = i+2, col+2
		case two == "==":
			emit(tokEQ, "=", p)
			i, col = i+2, col+2
		case c == '<':
			emit(tokLT, "<", p)
			i, col = i+1, col+1
		case c == '>':
			emit(tokGT, ">", p)
			i, col = i+1, col+1
		case c == '=':
			emit(tokEQ, "=", p)
			i, col = i+1, col+1
		case c == '(':
			emit(tokLParen, "(", p)
			i, col = i+1, col+1
		case c == ')':
			emit(tokRParen, ")", p)
			i, col = i+1, col+1
		case c == ',':
			emit(tokComma, ",", p)
			i, col = i+1, col+1
		case c == ';':
			emit(tokSemi, ";", p)
			i, col = i+1, col+1
		case c == '*':
			emit(tokStar, "*", p)
			i, col = i+1, col+1
		case c == '+':
			emit(tokPlus, "+", p)
			i, col = i+1, col+1
		case c == '-':
			emit(tokMinus, "-", p)
			i, col = i+1, col+1
		case c == '/':
			emit(tokSlash, "/", p)
			i, col = i+1, col+1
		case c == '&':
			emit(tokAmp, "&", p)
			i, col = i+1, col+1
		case c == '|':
			emit(tokPipe, "|", p)
			i, col = i+1, col+1
		case c == '!':
			emit(tokBang, "!", p)
			i, col = i+1, col+1
		default:
			return nil, errAt(p, "unexpected character %q", string(c))
		}
	}
	toks = append(toks, token{kind: tokEOF, text: "<eof>", pos: Pos{Line: line, Col: col}})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

// Statement keywords. Matched case-insensitively against identifier
// tokens; identifiers themselves stay case-sensitive.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AS": true,
	"UNION": true, "INTERSECT": true, "EXCEPT": true,
	"EXISTS": true, "FOR": true, "ALL": true,
	"VOLUME": true, "SAMPLE": true, "SEED": true,
	"EXPLAIN": true, "SYMBOLIC": true,
	"AND": true, "OR": true, "NOT": true,
}

// isKeyword reports whether an identifier token is a reserved word.
func isKeyword(text string) bool { return keywords[strings.ToUpper(text)] }

// kw reports whether tok is the given keyword (upper-case name).
func (t token) kw(name string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, name)
}
