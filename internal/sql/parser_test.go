package sql

import (
	"bufio"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestParserGolden parses every statement in testdata/statements.sql,
// checks the canonical rendering against testdata/statements.golden,
// and checks the parse → Source → parse round trip is a fixpoint.
func TestParserGolden(t *testing.T) {
	inputs := readStatements(t, filepath.Join("testdata", "statements.sql"))
	var renders []string
	for _, in := range inputs {
		stmt, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		src := stmt.Source()
		renders = append(renders, src)

		again, err := Parse(src)
		if err != nil {
			t.Fatalf("reparse of %q (from %q): %v", src, in, err)
		}
		if got := again.Source(); got != src {
			t.Errorf("Source not a fixpoint:\n input: %s\n first: %s\nsecond: %s", in, src, got)
		}
	}
	goldenPath := filepath.Join("testdata", "statements.golden")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(strings.Join(renders, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	want := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	if len(want) != len(renders) {
		t.Fatalf("golden has %d lines, parsed %d statements (run with -update)", len(want), len(renders))
	}
	for i, in := range inputs {
		if renders[i] != want[i] {
			t.Errorf("statement %d: %q\n  got:  %s\n  want: %s", i, in, renders[i], want[i])
		}
	}
}

func readStatements(t *testing.T, path string) []string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var out []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "--") {
			continue
		}
		out = append(out, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestParseErrors checks malformed statements produce positioned
// *Error values.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		in      string
		wantMsg string
	}{
		{"", "expected SELECT"},
		{"SELECT", "expected column name"},
		{"SELECT * FROM", "expected relation name or subquery"},
		{"SELECT * FROM R WHERE", "expected term"},
		{"SELECT * FROM R WHERE x", "expected comparison operator"},
		{"SELECT * FROM R WHERE x <= 1 <= 2 != 3", "'!=' cannot appear in a comparison chain"},
		{"SELECT * FROM R WHERE x != 1 != 2", "'!=' cannot appear in a comparison chain"},
		{"SELECT * FROM R SAMPLE 0", "SAMPLE size must be a positive integer"},
		{"SELECT * FROM R SAMPLE -3", "expected sample size"},
		{"SELECT * FROM R extra", "unexpected \"extra\" after statement"},
		{"SELECT * FROM R WHERE select <= 1", "unexpected keyword"},
		{"SELECT x, x FROM R extra", "unexpected"},
		{"SELECT * FROM R; SELECT * FROM S", "unexpected"},
		{"SELECT VOLUME(x) FROM R", "expected '*'"},
		{"SELECT * FROM R WHERE x @ 1", "unexpected character"},
		{"EXISTS () SELECT * FROM R", "expected column name"},
		{"SELECT * FROM R FOR EACH SELECT * FROM S", "expected ALL"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.in)
		if err == nil {
			t.Errorf("Parse(%q): want error containing %q, got nil", tc.in, tc.wantMsg)
			continue
		}
		var serr *Error
		if !errors.As(err, &serr) {
			t.Errorf("Parse(%q): error %T is not *Error", tc.in, err)
			continue
		}
		if !strings.Contains(serr.Error(), tc.wantMsg) {
			t.Errorf("Parse(%q) = %q, want substring %q", tc.in, serr.Error(), tc.wantMsg)
		}
		if serr.Line < 1 || serr.Col < 1 {
			t.Errorf("Parse(%q): error position %d:%d not 1-based", tc.in, serr.Line, serr.Col)
		}
	}
}

// TestErrorPositions spot-checks line/column accuracy on a multi-line
// statement.
func TestErrorPositions(t *testing.T) {
	_, err := Parse("SELECT *\nFROM R\nWHERE bogus @")
	var serr *Error
	if !errors.As(err, &serr) {
		t.Fatalf("want *Error, got %v", err)
	}
	if serr.Line != 3 || serr.Col != 13 {
		t.Fatalf("error at %d:%d, want 3:13 (%s)", serr.Line, serr.Col, serr.Msg)
	}
}

func TestSplitStatements(t *testing.T) {
	got := SplitStatements("SELECT * FROM R;\n\nSELECT * FROM S;;")
	if len(got) != 2 {
		t.Fatalf("SplitStatements: got %d fragments, want 2 (%q)", len(got), got)
	}
}
