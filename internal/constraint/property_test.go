package constraint

import (
	"strconv"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
	"repro/internal/lp"
	"repro/internal/rng"
)

// randomBoundedTuple cuts the cube [-1,1]^d with extra random halfspaces.
func randomBoundedTuple(r *rng.RNG, d, cuts int) Tuple {
	atoms := append([]Atom{}, Cube(d, -1, 1).Atoms...)
	for k := 0; k < cuts; k++ {
		coef := make(linalg.Vector, d)
		for j := range coef {
			coef[j] = r.Normal()
		}
		atoms = append(atoms, NewAtom(coef, r.Uniform(0.2, 1.5), false))
	}
	return NewTuple(d, atoms...)
}

// TestPropertyEliminationSoundAndComplete: for random tuples and random
// probe points, membership in the Fourier–Motzkin projection agrees with
// LP feasibility of the lifted system (∃-completion). This is the
// soundness+completeness property of quantifier elimination.
func TestPropertyEliminationSoundAndComplete(t *testing.T) {
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		d := 2 + r.Intn(3) // 2..4
		tup := randomBoundedTuple(r, d, r.Intn(4))
		if tup.IsEmpty() {
			return true
		}
		rel := &Relation{Vars: varNames(d), Tuples: []Tuple{tup}}
		col := r.Intn(d)
		proj := Eliminate(rel, col, EliminateOptions{})
		a, b := tup.System()
		for i := 0; i < 25; i++ {
			// Probe in the projected space.
			probe := make(linalg.Vector, d-1)
			for j := range probe {
				probe[j] = r.Uniform(-1.3, 1.3)
			}
			// Ground truth: fix the kept coordinates, ask the LP whether a
			// completion exists.
			rows := append([]linalg.Vector{}, a...)
			rhs := append([]float64{}, b...)
			kept := 0
			for j := 0; j < d; j++ {
				if j == col {
					continue
				}
				e := make(linalg.Vector, d)
				e[j] = 1
				rows = append(rows, e, e.Scale(-1))
				rhs = append(rhs, probe[kept], -probe[kept])
				kept++
			}
			_, want := lp.Feasible(rows, rhs)
			got := proj.Contains(probe)
			if got != want {
				// Tolerance band around the boundary: re-probe strictly
				// inside by shrinking toward the origin.
				shrunk := probe.Scale(0.999)
				rows2 := append([]linalg.Vector{}, a...)
				rhs2 := append([]float64{}, b...)
				kept = 0
				for j := 0; j < d; j++ {
					if j == col {
						continue
					}
					e := make(linalg.Vector, d)
					e[j] = 1
					rows2 = append(rows2, e, e.Scale(-1))
					rhs2 = append(rhs2, shrunk[kept], -shrunk[kept])
					kept++
				}
				_, want2 := lp.Feasible(rows2, rhs2)
				if proj.Contains(shrunk) != want2 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyComplementPartition: for random relations and random
// points, exactly one of r, Complement(r) contains the point (away from
// boundaries).
func TestPropertyComplementPartition(t *testing.T) {
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		d := 1 + r.Intn(3)
		nt := 1 + r.Intn(3)
		tuples := make([]Tuple, nt)
		for i := range tuples {
			tuples[i] = randomBoundedTuple(r, d, r.Intn(3))
		}
		rel := &Relation{Vars: varNames(d), Tuples: tuples}
		comp := Complement(rel)
		for i := 0; i < 30; i++ {
			p := make(linalg.Vector, d)
			for j := range p {
				p[j] = r.Uniform(-1.5, 1.5)
			}
			in, out := rel.Contains(p), comp.Contains(p)
			if in == out {
				// Probe may sit in the tolerance band; perturb and retry
				// once before failing.
				for j := range p {
					p[j] += 1e-4 * r.Normal()
				}
				if rel.Contains(p) == comp.Contains(p) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestPropertyIntersectionCommutes: membership in r.Intersect(s) equals
// membership in s.Intersect(r) equals conjunction of memberships.
func TestPropertyIntersectionCommutes(t *testing.T) {
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		d := 1 + r.Intn(3)
		relA := &Relation{Vars: varNames(d), Tuples: []Tuple{randomBoundedTuple(r, d, 1)}}
		relB := &Relation{Vars: varNames(d), Tuples: []Tuple{randomBoundedTuple(r, d, 1)}}
		ab, err := relA.Intersect(relB)
		if err != nil {
			return false
		}
		ba, err := relB.Intersect(relA)
		if err != nil {
			return false
		}
		for i := 0; i < 40; i++ {
			p := make(linalg.Vector, d)
			for j := range p {
				p[j] = r.Uniform(-1.5, 1.5)
			}
			want := relA.Contains(p) && relB.Contains(p)
			if ab.Contains(p) != want || ba.Contains(p) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertyParserRoundTrip: every generated box relation survives a
// render-reparse loop with identical membership.
func TestPropertyParserRoundTrip(t *testing.T) {
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		lo := linalg.Vector{r.Uniform(-5, 0), r.Uniform(-5, 0)}
		hi := linalg.Vector{lo[0] + r.Uniform(0.5, 5), lo[1] + r.Uniform(0.5, 5)}
		src := `rel B(x0, x1) := { ` +
			formatAtomSrc(linalg.Vector{1, 0}, hi[0]) + `, ` +
			formatAtomSrc(linalg.Vector{-1, 0}, -lo[0]) + `, ` +
			formatAtomSrc(linalg.Vector{0, 1}, hi[1]) + `, ` +
			formatAtomSrc(linalg.Vector{0, -1}, -lo[1]) + ` };`
		db, err := Parse(src)
		if err != nil {
			return false
		}
		got := db.Schema["B"]
		want := Box(lo, hi)
		for i := 0; i < 30; i++ {
			p := linalg.Vector{r.Uniform(-6, 6), r.Uniform(-6, 6)}
			if got.Contains(p) != want.Contains(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func formatAtomSrc(coef linalg.Vector, b float64) string {
	out := ""
	first := true
	for i, c := range coef {
		if c == 0 {
			continue
		}
		if !first {
			out += " + "
		}
		first = false
		switch c {
		case 1:
			out += varNames(len(coef))[i]
		case -1:
			out += "-" + varNames(len(coef))[i]
		default:
			out += formatFloat(c) + " " + varNames(len(coef))[i]
		}
	}
	return out + " <= " + formatFloat(b)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'f', 6, 64)
}

func varNames(d int) []string {
	names := []string{"x0", "x1", "x2", "x3", "x4", "x5"}
	return names[:d]
}
