package constraint

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/linalg"
)

// Formula is a first-order formula over the linear structure and a
// relational schema (FO+LIN). The compile pipeline turns a formula into a
// generalized relation (quantifier-free DNF) by predicate inlining,
// negation normal form, DNF distribution and Fourier–Motzkin quantifier
// elimination — the classical symbolic evaluation the paper's samplers
// are designed to avoid.
type Formula interface {
	fmt.Stringer
	collectVars(free map[string]bool, bound map[string]bool, inScope map[string]bool)
}

// AtomF is an atomic linear constraint over named variables. Vars aligns
// with Atom.Coef; names may repeat (coefficients fold on compile).
type AtomF struct {
	Vars []string
	Atom Atom
}

// Pred references a schema relation by name, applied to variables.
type Pred struct {
	Name string
	Args []string
}

// Not negates a formula.
type Not struct{ F Formula }

// And is an n-ary conjunction.
type And struct{ Fs []Formula }

// Or is an n-ary disjunction.
type Or struct{ Fs []Formula }

// Exists existentially quantifies Vars in F.
type Exists struct {
	Vars []string
	F    Formula
}

// ForAll universally quantifies Vars in F (compiled as ¬∃¬).
type ForAll struct {
	Vars []string
	F    Formula
}

func (a AtomF) String() string {
	parts := make([]string, 0, len(a.Vars))
	for i, v := range a.Vars {
		parts = append(parts, fmt.Sprintf("%g*%s", a.Atom.Coef[i], v))
	}
	op := "<="
	if a.Atom.Strict {
		op = "<"
	}
	return fmt.Sprintf("%s %s %g", strings.Join(parts, " + "), op, a.Atom.B)
}
func (p Pred) String() string { return fmt.Sprintf("%s(%s)", p.Name, strings.Join(p.Args, ", ")) }
func (n Not) String() string  { return "!(" + n.F.String() + ")" }
func (a And) String() string  { return "(" + joinFormulas(a.Fs, " & ") + ")" }
func (o Or) String() string   { return "(" + joinFormulas(o.Fs, " | ") + ")" }
func (e Exists) String() string {
	return fmt.Sprintf("exists %s. %s", strings.Join(e.Vars, ", "), e.F.String())
}
func (f ForAll) String() string {
	return fmt.Sprintf("forall %s. %s", strings.Join(f.Vars, ", "), f.F.String())
}

func joinFormulas(fs []Formula, sep string) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = f.String()
	}
	return strings.Join(parts, sep)
}

func (a AtomF) collectVars(free, bound, inScope map[string]bool) {
	for _, v := range a.Vars {
		if !inScope[v] {
			free[v] = true
		}
	}
}
func (p Pred) collectVars(free, bound, inScope map[string]bool) {
	for _, v := range p.Args {
		if !inScope[v] {
			free[v] = true
		}
	}
}
func (n Not) collectVars(free, bound, inScope map[string]bool) {
	n.F.collectVars(free, bound, inScope)
}
func (a And) collectVars(free, bound, inScope map[string]bool) {
	for _, f := range a.Fs {
		f.collectVars(free, bound, inScope)
	}
}
func (o Or) collectVars(free, bound, inScope map[string]bool) {
	for _, f := range o.Fs {
		f.collectVars(free, bound, inScope)
	}
}
func (e Exists) collectVars(free, bound, inScope map[string]bool) {
	inner := copyScope(inScope)
	for _, v := range e.Vars {
		bound[v] = true
		inner[v] = true
	}
	e.F.collectVars(free, bound, inner)
}
func (f ForAll) collectVars(free, bound, inScope map[string]bool) {
	inner := copyScope(inScope)
	for _, v := range f.Vars {
		bound[v] = true
		inner[v] = true
	}
	f.F.collectVars(free, bound, inner)
}

func copyScope(m map[string]bool) map[string]bool {
	c := make(map[string]bool, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// Eval evaluates a formula under a variable assignment and a schema.
// Quantifier-free formulas (including predicate references) evaluate
// directly; quantified formulas return an error — evaluate them through
// Compile or the sampling engine instead.
func Eval(f Formula, env map[string]float64, schema Schema) (bool, error) {
	switch g := f.(type) {
	case AtomF:
		x := make(linalg.Vector, len(g.Vars))
		for i, v := range g.Vars {
			val, ok := env[v]
			if !ok {
				return false, fmt.Errorf("constraint: unbound variable %q", v)
			}
			x[i] = val
		}
		return g.Atom.Holds(x), nil
	case Pred:
		rel, ok := schema[g.Name]
		if !ok {
			return false, fmt.Errorf("constraint: unknown relation %q", g.Name)
		}
		if len(g.Args) != rel.Arity() {
			return false, fmt.Errorf("constraint: %s arity %d applied to %d args", g.Name, rel.Arity(), len(g.Args))
		}
		x := make(linalg.Vector, len(g.Args))
		for i, v := range g.Args {
			val, ok := env[v]
			if !ok {
				return false, fmt.Errorf("constraint: unbound variable %q", v)
			}
			x[i] = val
		}
		return rel.Contains(x), nil
	case Not:
		in, err := Eval(g.F, env, schema)
		return !in, err
	case And:
		for _, sub := range g.Fs {
			ok, err := Eval(sub, env, schema)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	case Or:
		for _, sub := range g.Fs {
			ok, err := Eval(sub, env, schema)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	case Exists, ForAll:
		return false, fmt.Errorf("constraint: Eval cannot decide quantified formulas; use Compile")
	default:
		return false, fmt.Errorf("constraint: unknown formula node %T", f)
	}
}

// FreeVars returns the sorted free variables of f.
func FreeVars(f Formula) []string {
	free := map[string]bool{}
	f.collectVars(free, map[string]bool{}, map[string]bool{})
	out := make([]string, 0, len(free))
	for v := range free {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Schema maps relation names to their stored generalized relations.
type Schema map[string]*Relation

// Compile evaluates f symbolically against schema and returns the
// generalized relation it defines over outVars. outVars must contain
// every free variable of f; extra columns become unconstrained (and are
// rejected, since they would make the result unbounded) — pass exactly
// the free variables in the order you want the columns.
//
// This is the classical constraint-database evaluation (quantifier
// elimination + DNF); its cost explodes with the number of eliminated
// variables, which is precisely what the paper's sampling approach avoids
// (Prop 4.3, experiment E9).
func Compile(f Formula, schema Schema, outVars []string) (*Relation, error) {
	return CompileInterruptible(f, schema, outVars, nil)
}

// CompileInterruptible is Compile with an optional interrupt hook,
// polled at every formula node and between eliminated/complemented
// tuples. Quantifier elimination has no useful cost bound, so serving
// layers pass their request context's Err here; a non-nil return
// aborts the compilation with that error.
func CompileInterruptible(f Formula, schema Schema, outVars []string, interrupt func() error) (*Relation, error) {
	for _, v := range FreeVars(f) {
		if indexOf(outVars, v) < 0 {
			return nil, fmt.Errorf("constraint: free variable %q not in output variables %v", v, outVars)
		}
	}
	// Alpha-rename bound variables to unique fresh names, then build the
	// full frame: outVars followed by all bound variables.
	ctr := 0
	f = alphaRename(f, map[string]string{}, &ctr)
	boundSet := map[string]bool{}
	f.collectVars(map[string]bool{}, boundSet, map[string]bool{})
	frame := append([]string{}, outVars...)
	bound := make([]string, 0, len(boundSet))
	for v := range boundSet {
		bound = append(bound, v)
	}
	sort.Strings(bound)
	frame = append(frame, bound...)

	c := &compiler{schema: schema, frame: frame, index: map[string]int{}, interrupt: interrupt}
	for i, v := range frame {
		c.index[v] = i
	}
	rel, err := c.compile(f)
	if err != nil {
		return nil, err
	}
	// Project away the bound-variable columns; after elimination they must
	// be unconstrained in every tuple.
	out := &Relation{Vars: outVars}
	keep := len(outVars)
	for _, t := range rel.Tuples {
		atoms := make([]Atom, 0, len(t.Atoms))
		for _, a := range t.Atoms {
			for j := keep; j < len(frame); j++ {
				if abs(a.Coef[j]) > 1e-12 {
					return nil, fmt.Errorf("constraint: internal: bound variable %s survives elimination", frame[j])
				}
			}
			atoms = append(atoms, Atom{Coef: a.Coef[:keep].Clone(), B: a.B, Strict: a.Strict})
		}
		out.Tuples = append(out.Tuples, NewTuple(keep, atoms...))
	}
	return out.PruneEmpty(), nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func indexOf(xs []string, v string) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

// alphaRename renames bound variables to fresh "$k" names so that the
// full frame has no collisions between scopes.
func alphaRename(f Formula, env map[string]string, ctr *int) Formula {
	switch g := f.(type) {
	case AtomF:
		vars := make([]string, len(g.Vars))
		for i, v := range g.Vars {
			vars[i] = renameVar(v, env)
		}
		return AtomF{Vars: vars, Atom: g.Atom}
	case Pred:
		args := make([]string, len(g.Args))
		for i, v := range g.Args {
			args[i] = renameVar(v, env)
		}
		return Pred{Name: g.Name, Args: args}
	case Not:
		return Not{F: alphaRename(g.F, env, ctr)}
	case And:
		fs := make([]Formula, len(g.Fs))
		for i, sub := range g.Fs {
			fs[i] = alphaRename(sub, env, ctr)
		}
		return And{Fs: fs}
	case Or:
		fs := make([]Formula, len(g.Fs))
		for i, sub := range g.Fs {
			fs[i] = alphaRename(sub, env, ctr)
		}
		return Or{Fs: fs}
	case Exists:
		inner, fresh := pushScope(g.Vars, env, ctr)
		return Exists{Vars: fresh, F: alphaRename(g.F, inner, ctr)}
	case ForAll:
		inner, fresh := pushScope(g.Vars, env, ctr)
		return ForAll{Vars: fresh, F: alphaRename(g.F, inner, ctr)}
	default:
		panic(fmt.Sprintf("constraint: unknown formula type %T", f))
	}
}

func renameVar(v string, env map[string]string) string {
	if nv, ok := env[v]; ok {
		return nv
	}
	return v
}

func pushScope(vars []string, env map[string]string, ctr *int) (map[string]string, []string) {
	inner := make(map[string]string, len(env)+len(vars))
	for k, v := range env {
		inner[k] = v
	}
	fresh := make([]string, len(vars))
	for i, v := range vars {
		*ctr++
		fresh[i] = fmt.Sprintf("%s$%d", v, *ctr)
		inner[v] = fresh[i]
	}
	return inner, fresh
}

type compiler struct {
	schema    Schema
	frame     []string
	index     map[string]int
	interrupt func() error
}

// check polls the interrupt hook.
func (c *compiler) check() error {
	if c.interrupt == nil {
		return nil
	}
	return c.interrupt()
}

// embed lifts an atom over named variables into the full frame,
// folding repeated variables.
func (c *compiler) embed(vars []string, a Atom) (Atom, error) {
	coef := make(linalg.Vector, len(c.frame))
	for i, v := range vars {
		j, ok := c.index[v]
		if !ok {
			return Atom{}, fmt.Errorf("constraint: variable %q not in frame", v)
		}
		coef[j] += a.Coef[i]
	}
	return Atom{Coef: coef, B: a.B, Strict: a.Strict}, nil
}

func (c *compiler) compile(f Formula) (*Relation, error) {
	if err := c.check(); err != nil {
		return nil, err
	}
	switch g := f.(type) {
	case AtomF:
		a, err := c.embed(g.Vars, g.Atom)
		if err != nil {
			return nil, err
		}
		return &Relation{Vars: c.frame, Tuples: []Tuple{NewTuple(len(c.frame), a)}}, nil
	case Pred:
		rel, ok := c.schema[g.Name]
		if !ok {
			return nil, fmt.Errorf("constraint: unknown relation %q", g.Name)
		}
		if len(g.Args) != rel.Arity() {
			return nil, fmt.Errorf("constraint: %s has arity %d, applied to %d arguments",
				g.Name, rel.Arity(), len(g.Args))
		}
		out := &Relation{Vars: c.frame}
		for _, t := range rel.Tuples {
			atoms := make([]Atom, 0, len(t.Atoms))
			for _, a := range t.Atoms {
				ea, err := c.embed(g.Args, a)
				if err != nil {
					return nil, err
				}
				atoms = append(atoms, ea)
			}
			out.Tuples = append(out.Tuples, NewTuple(len(c.frame), atoms...))
		}
		return out, nil
	case And:
		if len(g.Fs) == 0 {
			// Empty conjunction is true: the whole space.
			return &Relation{Vars: c.frame, Tuples: []Tuple{NewTuple(len(c.frame))}}, nil
		}
		acc, err := c.compile(g.Fs[0])
		if err != nil {
			return nil, err
		}
		for _, sub := range g.Fs[1:] {
			r, err := c.compile(sub)
			if err != nil {
				return nil, err
			}
			acc, err = acc.Intersect(r)
			if err != nil {
				return nil, err
			}
		}
		return acc, nil
	case Or:
		out := &Relation{Vars: c.frame}
		for _, sub := range g.Fs {
			r, err := c.compile(sub)
			if err != nil {
				return nil, err
			}
			out.Tuples = append(out.Tuples, r.Tuples...)
		}
		return out, nil
	case Not:
		r, err := c.compile(g.F)
		if err != nil {
			return nil, err
		}
		return complement(r, c.interrupt)
	case Exists:
		r, err := c.compile(g.F)
		if err != nil {
			return nil, err
		}
		for _, v := range g.Vars {
			j, ok := c.index[v]
			if !ok {
				return nil, fmt.Errorf("constraint: bound variable %q not in frame", v)
			}
			r, err = EliminateInFrameCtx(r, j, c.interrupt)
			if err != nil {
				return nil, err
			}
		}
		return r, nil
	case ForAll:
		return c.compile(Not{F: Exists{Vars: g.Vars, F: Not{F: g.F}}})
	default:
		return nil, fmt.Errorf("constraint: unknown formula type %T", f)
	}
}

// Complement returns the relation denoting the set complement of r over
// the same columns, by De Morgan and DNF distribution (exponential in the
// worst case, as in classical quantifier elimination).
func Complement(r *Relation) *Relation {
	out, _ := complement(r, nil)
	return out
}

// complement is Complement with an interrupt polled per distributed
// tuple — the DNF expansion is the exponential half of ¬∃¬.
func complement(r *Relation, interrupt func() error) (*Relation, error) {
	d := r.Arity()
	// ¬(T1 ∨ ... ∨ Tk) = ¬T1 ∧ ... ∧ ¬Tk; each ¬Ti is a disjunction of
	// negated atoms. Distribute the conjunction of disjunctions into DNF.
	acc := []Tuple{NewTuple(d)} // true
	for _, t := range r.Tuples {
		var next []Tuple
		for _, partial := range acc {
			if interrupt != nil {
				if err := interrupt(); err != nil {
					return nil, err
				}
			}
			for _, a := range t.Atoms {
				cand := partial.With(a.Negate())
				if !cand.IsEmpty() {
					next = append(next, cand)
				}
			}
		}
		acc = next
		if len(acc) == 0 {
			break
		}
	}
	return &Relation{Vars: r.Vars, Tuples: acc}, nil
}
