// Package constraint implements the linear constraint database model of
// Kanellakis, Kuper and Revesz as used by the paper: generalized tuples
// (conjunctions of linear constraints over the structure
// ⟨R, +, −, <, 0, 1⟩), generalized relations (finite unions of tuples,
// i.e. quantifier-free DNF), a first-order formula AST (FO+LIN), a text
// parser, and Fourier–Motzkin quantifier elimination.
//
// A d-ary generalized tuple denotes a convex subset of R^d (a finite
// intersection of halfspaces); a generalized relation denotes a finite
// union of such convex sets. These are exactly the objects the paper's
// generators and estimators operate on.
package constraint

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/linalg"
	"repro/internal/lp"
	"repro/internal/num"
)

// Atom is the atomic linear constraint Coef·x ⋈ B where ⋈ is <= (Strict
// false) or < (Strict true). Equalities are represented as a pair of
// opposite Atoms at construction time.
type Atom struct {
	Coef   linalg.Vector
	B      float64
	Strict bool
}

// NewAtom returns the atom coef·x <= b (or < b when strict).
func NewAtom(coef linalg.Vector, b float64, strict bool) Atom {
	return Atom{Coef: coef, B: b, Strict: strict}
}

// Dim returns the arity of the atom.
func (a Atom) Dim() int { return len(a.Coef) }

// Holds reports whether x satisfies the atom, honouring strictness with
// the repository tolerance (boundary points of non-strict atoms are in).
func (a Atom) Holds(x linalg.Vector) bool {
	v := a.Coef.Dot(x)
	if a.Strict {
		return v < a.B-num.Eps
	}
	return v <= a.B+num.Eps
}

// Negate returns the complementary atom: ¬(a·x <= b) ≡ −a·x < −b and
// ¬(a·x < b) ≡ −a·x <= −b.
func (a Atom) Negate() Atom {
	return Atom{Coef: a.Coef.Scale(-1), B: -a.B, Strict: !a.Strict}
}

// Normalize scales the atom so that the coefficient vector has unit
// infinity norm; constant (all-zero coefficient) atoms are returned
// unchanged. Normalisation makes duplicate detection reliable.
func (a Atom) Normalize() Atom {
	m := a.Coef.NormInf()
	if m <= num.Eps {
		return a
	}
	return Atom{Coef: a.Coef.Scale(1 / m), B: a.B / m, Strict: a.Strict}
}

// IsTrivial reports whether the atom has no variable dependence; sat
// reports whether it is then satisfied.
func (a Atom) IsTrivial() (trivial, sat bool) {
	if a.Coef.NormInf() > num.Eps {
		return false, false
	}
	if a.Strict {
		return true, 0 < a.B-num.Eps
	}
	return true, 0 <= a.B+num.Eps
}

// String renders the atom over variable names x0, x1, ...
func (a Atom) String() string {
	var sb strings.Builder
	first := true
	for i, c := range a.Coef {
		if math.Abs(c) < 1e-15 {
			continue
		}
		switch {
		case first && c < 0:
			sb.WriteString("-")
		case !first && c < 0:
			sb.WriteString(" - ")
		case !first:
			sb.WriteString(" + ")
		}
		if ac := math.Abs(c); ac != 1 {
			fmt.Fprintf(&sb, "%g", ac)
		}
		fmt.Fprintf(&sb, "x%d", i)
		first = false
	}
	if first {
		sb.WriteString("0")
	}
	if a.Strict {
		sb.WriteString(" < ")
	} else {
		sb.WriteString(" <= ")
	}
	fmt.Fprintf(&sb, "%g", a.B)
	return sb.String()
}

// Tuple is a generalized tuple: a conjunction of atoms denoting a convex
// subset of R^dim.
type Tuple struct {
	Atoms []Atom
	dim   int
}

// NewTuple returns a tuple of the given arity with the given atoms. It
// panics when an atom has a different arity, which is always a programming
// error.
func NewTuple(dim int, atoms ...Atom) Tuple {
	for _, a := range atoms {
		if a.Dim() != dim {
			panic(fmt.Sprintf("constraint: atom arity %d in tuple of arity %d", a.Dim(), dim))
		}
	}
	return Tuple{Atoms: atoms, dim: dim}
}

// Dim returns the arity of the tuple.
func (t Tuple) Dim() int { return t.dim }

// Contains reports whether x satisfies all atoms.
func (t Tuple) Contains(x linalg.Vector) bool {
	for _, a := range t.Atoms {
		if !a.Holds(x) {
			return false
		}
	}
	return true
}

// With returns a new tuple with extra atoms appended.
func (t Tuple) With(atoms ...Atom) Tuple {
	all := make([]Atom, 0, len(t.Atoms)+len(atoms))
	all = append(all, t.Atoms...)
	all = append(all, atoms...)
	return NewTuple(t.dim, all...)
}

// System returns the constraint matrix and right-hand side of the tuple
// (strictness dropped: the closure has the same volume).
func (t Tuple) System() ([]linalg.Vector, []float64) {
	a := make([]linalg.Vector, len(t.Atoms))
	b := make([]float64, len(t.Atoms))
	for i, at := range t.Atoms {
		a[i] = at.Coef
		b[i] = at.B
	}
	return a, b
}

// IsEmpty reports whether the (closure of the) tuple is infeasible.
func (t Tuple) IsEmpty() bool {
	a, b := t.System()
	_, ok := lp.Feasible(a, b)
	return !ok
}

// Size returns the description size of the tuple: the total number of
// symbols (coefficients and bounds) in its formula, matching the paper's
// complexity parameter.
func (t Tuple) Size() int { return len(t.Atoms) * (t.dim + 1) }

// String renders the tuple as a conjunction.
func (t Tuple) String() string {
	parts := make([]string, len(t.Atoms))
	for i, a := range t.Atoms {
		parts[i] = a.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Relation is a generalized relation: a finite union of generalized
// tuples over a common arity, i.e. a quantifier-free DNF definable set.
type Relation struct {
	Name   string
	Vars   []string // column names; len(Vars) == arity
	Tuples []Tuple
}

// NewRelation builds a relation. All tuples must share the arity
// len(vars).
func NewRelation(name string, vars []string, tuples ...Tuple) (*Relation, error) {
	for _, t := range tuples {
		if t.Dim() != len(vars) {
			return nil, fmt.Errorf("constraint: tuple arity %d != relation arity %d", t.Dim(), len(vars))
		}
	}
	return &Relation{Name: name, Vars: vars, Tuples: tuples}, nil
}

// MustRelation is NewRelation for statically known-good inputs.
func MustRelation(name string, vars []string, tuples ...Tuple) *Relation {
	r, err := NewRelation(name, vars, tuples...)
	if err != nil {
		panic(err)
	}
	return r
}

// Arity returns the number of columns.
func (r *Relation) Arity() int { return len(r.Vars) }

// Contains reports whether x belongs to the union of tuples.
func (r *Relation) Contains(x linalg.Vector) bool {
	for _, t := range r.Tuples {
		if t.Contains(x) {
			return true
		}
	}
	return false
}

// CanonicalIndex returns the smallest tuple index containing x, or -1.
// This is the paper's j(x), used by the union generator's acceptance test.
func (r *Relation) CanonicalIndex(x linalg.Vector) int {
	for i, t := range r.Tuples {
		if t.Contains(x) {
			return i
		}
	}
	return -1
}

// Size returns the description size of the relation.
func (r *Relation) Size() int {
	s := 0
	for _, t := range r.Tuples {
		s += t.Size()
	}
	return s
}

// PruneEmpty returns a copy without infeasible tuples.
func (r *Relation) PruneEmpty() *Relation {
	out := &Relation{Name: r.Name, Vars: r.Vars}
	for _, t := range r.Tuples {
		if !t.IsEmpty() {
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out
}

// IsEmpty reports whether every tuple is infeasible.
func (r *Relation) IsEmpty() bool {
	for _, t := range r.Tuples {
		if !t.IsEmpty() {
			return false
		}
	}
	return true
}

// Union returns the relation r ∪ s (same arity required).
func (r *Relation) Union(s *Relation) (*Relation, error) {
	if r.Arity() != s.Arity() {
		return nil, fmt.Errorf("constraint: union arity mismatch %d vs %d", r.Arity(), s.Arity())
	}
	out := &Relation{Name: "", Vars: r.Vars}
	out.Tuples = append(out.Tuples, r.Tuples...)
	out.Tuples = append(out.Tuples, s.Tuples...)
	return out, nil
}

// Intersect returns the relation r ∩ s as the cross product of tuple
// conjunctions.
func (r *Relation) Intersect(s *Relation) (*Relation, error) {
	if r.Arity() != s.Arity() {
		return nil, fmt.Errorf("constraint: intersect arity mismatch %d vs %d", r.Arity(), s.Arity())
	}
	out := &Relation{Vars: r.Vars}
	for _, t1 := range r.Tuples {
		for _, t2 := range s.Tuples {
			out.Tuples = append(out.Tuples, t1.With(t2.Atoms...))
		}
	}
	return out.PruneEmpty(), nil
}

// BoundingBox returns the coordinate-wise bounding box of the relation.
// ok is false for empty or unbounded relations.
func (r *Relation) BoundingBox() (lo, hi linalg.Vector, ok bool) {
	first := true
	for _, t := range r.Tuples {
		a, b := t.System()
		tlo, thi, tok := lp.BoundingBox(a, b)
		if !tok {
			// Empty tuples don't affect the box; unbounded ones poison it.
			if t.IsEmpty() {
				continue
			}
			return nil, nil, false
		}
		if first {
			lo, hi, first = tlo, thi, false
			continue
		}
		for j := range lo {
			lo[j] = math.Min(lo[j], tlo[j])
			hi[j] = math.Max(hi[j], thi[j])
		}
	}
	if first {
		return nil, nil, false
	}
	return lo, hi, true
}

// Source renders the relation as a parseable `rel` declaration:
// ParseRelation(r.Source(), nil) reproduces the same set. Strict atoms
// render with '<', non-strict with '<='.
func (r *Relation) Source() string {
	var sb strings.Builder
	name := r.Name
	if name == "" {
		name = "R"
	}
	fmt.Fprintf(&sb, "rel %s(%s) := ", name, strings.Join(r.Vars, ", "))
	if len(r.Tuples) == 0 {
		// An empty relation: an unsatisfiable tuple keeps it parseable.
		sb.WriteString("{ ")
		sb.WriteString(r.Vars[0])
		sb.WriteString(" < ")
		sb.WriteString(r.Vars[0])
		sb.WriteString(" };")
		return sb.String()
	}
	for ti, t := range r.Tuples {
		if ti > 0 {
			sb.WriteString(" | ")
		}
		sb.WriteString("{ ")
		for ai, a := range t.Atoms {
			if ai > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(atomSource(a, r.Vars))
		}
		if len(t.Atoms) == 0 {
			// A constraint-free tuple (the whole space) is unbounded and
			// unusual; render a tautology.
			sb.WriteString("0 ")
			sb.WriteString(r.Vars[0])
			sb.WriteString(" <= 1")
		}
		sb.WriteString(" }")
	}
	sb.WriteString(";")
	return sb.String()
}

// atomSource renders one atom over named variables in parseable syntax.
func atomSource(a Atom, vars []string) string {
	var sb strings.Builder
	first := true
	for i, c := range a.Coef {
		if math.Abs(c) < 1e-15 {
			continue
		}
		switch {
		case first && c < 0:
			sb.WriteString("-")
		case !first && c < 0:
			sb.WriteString(" - ")
		case !first:
			sb.WriteString(" + ")
		}
		if ac := math.Abs(c); math.Abs(ac-1) > 1e-15 {
			sb.WriteString(sourceFloat(ac))
			sb.WriteString(" ")
		}
		sb.WriteString(vars[i])
		first = false
	}
	if first {
		// All-zero coefficients: render "0 v".
		sb.WriteString("0 ")
		sb.WriteString(vars[0])
	}
	if a.Strict {
		sb.WriteString(" < ")
	} else {
		sb.WriteString(" <= ")
	}
	sb.WriteString(sourceFloat(a.B))
	return sb.String()
}

// sourceFloat renders a number for Source output: the shortest decimal
// that round-trips the float64 exactly, in plain (never scientific)
// notation — so tiny bounds like 6.1e-14 stay parseable by any reader
// and a coefficient juxtaposed to a variable cannot be mistaken for an
// exponent.
func sourceFloat(v float64) string {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return fmt.Sprintf("%g", v) // unparseable anyway; keep it visible
	}
	return strconv.FormatFloat(v, 'f', -1, 64)
}

// String renders the relation as a DNF.
func (r *Relation) String() string {
	parts := make([]string, len(r.Tuples))
	for i, t := range r.Tuples {
		parts[i] = t.String()
	}
	name := r.Name
	if name == "" {
		name = "R"
	}
	return fmt.Sprintf("%s(%s) := %s", name, strings.Join(r.Vars, ", "), strings.Join(parts, " | "))
}

// Box returns the tuple for the axis-aligned box [lo_i, hi_i]^d; a
// convenience used throughout the tests and workload generators.
func Box(lo, hi linalg.Vector) Tuple {
	d := len(lo)
	atoms := make([]Atom, 0, 2*d)
	for j := 0; j < d; j++ {
		up := make(linalg.Vector, d)
		up[j] = 1
		atoms = append(atoms, NewAtom(up, hi[j], false))
		down := make(linalg.Vector, d)
		down[j] = -1
		atoms = append(atoms, NewAtom(down, -lo[j], false))
	}
	return NewTuple(d, atoms...)
}

// Cube returns the tuple for [lo, hi]^d.
func Cube(d int, lo, hi float64) Tuple {
	l := make(linalg.Vector, d)
	h := make(linalg.Vector, d)
	for i := range l {
		l[i] = lo
		h[i] = hi
	}
	return Box(l, h)
}

// Simplex returns the tuple for {x : x_i >= 0, sum x_i <= s}.
func Simplex(d int, s float64) Tuple {
	atoms := make([]Atom, 0, d+1)
	for j := 0; j < d; j++ {
		down := make(linalg.Vector, d)
		down[j] = -1
		atoms = append(atoms, NewAtom(down, 0, false))
	}
	ones := make(linalg.Vector, d)
	for j := range ones {
		ones[j] = 1
	}
	atoms = append(atoms, NewAtom(ones, s, false))
	return NewTuple(d, atoms...)
}

// CrossPolytope returns the l1-ball of radius r as a tuple with 2^d
// facets (sign pattern constraints). Use small d only.
func CrossPolytope(d int, r float64) Tuple {
	n := 1 << d
	atoms := make([]Atom, 0, n)
	for mask := 0; mask < n; mask++ {
		coef := make(linalg.Vector, d)
		for j := 0; j < d; j++ {
			if mask&(1<<j) != 0 {
				coef[j] = 1
			} else {
				coef[j] = -1
			}
		}
		atoms = append(atoms, NewAtom(coef, r, false))
	}
	return NewTuple(d, atoms...)
}
