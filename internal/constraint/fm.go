package constraint

import (
	"fmt"
	"sort"

	"repro/internal/linalg"
	"repro/internal/lp"
	"repro/internal/num"
)

// redundancyPruneLimit bounds the tuple size up to which the LP-based
// redundancy filter runs after each elimination step. Beyond it the
// quadratic pass in LP solves would dominate; callers measuring the
// raw Fourier–Motzkin blow-up (experiment E9) can exceed it on purpose
// via EliminateOptions.
const redundancyPruneLimit = 256

// EliminateOptions tunes Fourier–Motzkin elimination.
type EliminateOptions struct {
	// SkipPruning disables LP-based redundancy removal, exposing the raw
	// doubly-exponential growth of iterated elimination.
	SkipPruning bool
}

// EliminateInFrame eliminates column j from every tuple of r while
// keeping the arity: resulting atoms have zero coefficient on column j,
// so the result denotes the cylinder over the projection. Used by the
// formula compiler, which trims unconstrained columns at the end.
func EliminateInFrame(r *Relation, j int) *Relation {
	out, _ := EliminateInFrameCtx(r, j, nil)
	return out
}

// EliminateInFrameCtx is EliminateInFrame with an optional interrupt
// polled between tuples: quantifier elimination is the one pass whose
// cost is doubly exponential (experiment E9), so a cancelled request
// must be able to abandon it mid-relation. A non-nil interrupt return
// aborts with that error.
func EliminateInFrameCtx(r *Relation, j int, interrupt func() error) (*Relation, error) {
	out := &Relation{Vars: r.Vars}
	for _, t := range r.Tuples {
		if interrupt != nil {
			if err := interrupt(); err != nil {
				return nil, err
			}
		}
		nt, ok := eliminateTuple(t, j, EliminateOptions{})
		if ok {
			out.Tuples = append(out.Tuples, nt)
		}
	}
	return out, nil
}

// Eliminate removes the variable in column j from every tuple of r and
// drops the column, returning a relation of arity d-1: the projection
// ∃x_j r. This is the classical Fourier–Motzkin implementation of the
// paper's §4.3 baseline.
func Eliminate(r *Relation, j int, opts EliminateOptions) *Relation {
	vars := make([]string, 0, len(r.Vars)-1)
	for i, v := range r.Vars {
		if i != j {
			vars = append(vars, v)
		}
	}
	out := &Relation{Vars: vars}
	for _, t := range r.Tuples {
		nt, ok := eliminateTuple(t, j, opts)
		if !ok {
			continue
		}
		atoms := make([]Atom, 0, len(nt.Atoms))
		for _, a := range nt.Atoms {
			coef := make(linalg.Vector, 0, len(a.Coef)-1)
			for i, c := range a.Coef {
				if i != j {
					coef = append(coef, c)
				}
			}
			atoms = append(atoms, Atom{Coef: coef, B: a.B, Strict: a.Strict})
		}
		out.Tuples = append(out.Tuples, NewTuple(len(vars), atoms...))
	}
	return out
}

// EliminateAll projects out the columns js (indices into r's columns),
// returning the relation over the remaining columns in their original
// order. Duplicate indices are folded (∃x ∃x ≡ ∃x); an out-of-range
// index panics with a clear message — after the first elimination a
// stale index would silently address a different column, so it is
// always a programming error (same contract as NewTuple).
func EliminateAll(r *Relation, js []int, opts EliminateOptions) *Relation {
	// Dedupe first: eliminating a column shifts every higher index, so a
	// repeated index in the descending sweep would re-eliminate whatever
	// column slid into its place.
	seen := make(map[int]bool, len(js))
	sorted := make([]int, 0, len(js))
	for _, j := range js {
		if j < 0 || j >= r.Arity() {
			panic(fmt.Sprintf("constraint: EliminateAll index %d out of range for arity %d", j, r.Arity()))
		}
		if seen[j] {
			continue
		}
		seen[j] = true
		sorted = append(sorted, j)
	}
	// Eliminate from the highest index down so earlier indices stay valid.
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	out := r
	for _, j := range sorted {
		out = Eliminate(out, j, opts)
	}
	return out
}

// eliminateTuple removes variable j from one tuple by pairing lower and
// upper bounds; the returned tuple has zero coefficients on column j.
// ok is false when the elimination proves the tuple empty.
func eliminateTuple(t Tuple, j int, opts EliminateOptions) (Tuple, bool) {
	var uppers, lowers, rest []Atom
	for _, a := range t.Atoms {
		switch {
		case a.Coef[j] > num.Eps:
			uppers = append(uppers, a)
		case a.Coef[j] < -num.Eps:
			lowers = append(lowers, a)
		default:
			// Zero the residual coefficient for exact frame invariants.
			na := a
			na.Coef = a.Coef.Clone()
			na.Coef[j] = 0
			rest = append(rest, na)
		}
	}
	atoms := rest
	for _, u := range uppers {
		for _, l := range lowers {
			// u: u·x <= ub with u_j > 0;  l: l·x <= lb with l_j < 0.
			// (-l_j)·u + u_j·l has zero j-coefficient.
			uj, lj := u.Coef[j], l.Coef[j]
			coef := make(linalg.Vector, len(u.Coef))
			for i := range coef {
				coef[i] = -lj*u.Coef[i] + uj*l.Coef[i]
			}
			coef[j] = 0
			b := -lj*u.B + uj*l.B
			a := Atom{Coef: coef, B: b, Strict: u.Strict || l.Strict}
			if trivial, sat := a.IsTrivial(); trivial {
				if !sat {
					return Tuple{}, false
				}
				continue
			}
			atoms = append(atoms, a.Normalize())
		}
	}
	nt := NewTuple(t.Dim(), dedupAtoms(atoms)...)
	if !opts.SkipPruning && len(nt.Atoms) <= redundancyPruneLimit {
		nt = RemoveRedundant(nt)
	}
	if nt.IsEmpty() {
		return Tuple{}, false
	}
	return nt, true
}

// dedupAtoms removes exact duplicates after normalisation.
func dedupAtoms(atoms []Atom) []Atom {
	out := atoms[:0:0]
	for _, a := range atoms {
		na := a.Normalize()
		dup := false
		for _, b := range out {
			if na.Strict == b.Strict && num.Eq(na.B, b.B) && na.Coef.Equal(b.Coef, num.Eps) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, na)
		}
	}
	return out
}

// RemoveRedundant drops atoms implied by the rest of the tuple, using one
// LP per atom: a·x <= b is redundant when max a·x over the remaining
// atoms is at most b. The LP sees only closures, so strictness needs
// separate care: a strict atom active at the survivors' boundary (its
// bound is attained) is NOT implied by a coinciding non-strict atom —
// dropping it would close an open face and change Source() round-trips.
// Such an atom either transfers its strictness to a survivor on the
// same hyperplane or is kept.
func RemoveRedundant(t Tuple) Tuple {
	atoms := append([]Atom{}, t.Atoms...)
	for i := 0; i < len(atoms); i++ {
		others := make([]linalg.Vector, 0, len(atoms)-1)
		rhs := make([]float64, 0, len(atoms)-1)
		for k, a := range atoms {
			if k == i {
				continue
			}
			others = append(others, a.Coef)
			rhs = append(rhs, a.B)
		}
		if len(others) == 0 {
			break
		}
		v, ok := lp.Extent(others, rhs, atoms[i].Coef)
		if !ok || v > atoms[i].B+num.Eps {
			continue
		}
		if atoms[i].Strict && v >= atoms[i].B-num.Eps {
			// The strict bound is attained by the survivors' closure: the
			// open face matters. Move the strictness onto a survivor on
			// the same hyperplane, or keep the atom.
			ni := atoms[i].Normalize()
			transferred := false
			for k := range atoms {
				if k == i {
					continue
				}
				na := atoms[k].Normalize()
				if num.Eq(na.B, ni.B) && na.Coef.Equal(ni.Coef, num.Eps) {
					atoms[k].Strict = true
					transferred = true
					break
				}
			}
			if !transferred {
				continue
			}
		}
		atoms = append(atoms[:i], atoms[i+1:]...)
		i--
	}
	return NewTuple(t.Dim(), atoms...)
}
