package constraint

import (
	"repro/internal/linalg"
	"repro/internal/lp"
	"repro/internal/num"
)

// redundancyPruneLimit bounds the tuple size up to which the LP-based
// redundancy filter runs after each elimination step. Beyond it the
// quadratic pass in LP solves would dominate; callers measuring the
// raw Fourier–Motzkin blow-up (experiment E9) can exceed it on purpose
// via EliminateOptions.
const redundancyPruneLimit = 256

// EliminateOptions tunes Fourier–Motzkin elimination.
type EliminateOptions struct {
	// SkipPruning disables LP-based redundancy removal, exposing the raw
	// doubly-exponential growth of iterated elimination.
	SkipPruning bool
}

// EliminateInFrame eliminates column j from every tuple of r while
// keeping the arity: resulting atoms have zero coefficient on column j,
// so the result denotes the cylinder over the projection. Used by the
// formula compiler, which trims unconstrained columns at the end.
func EliminateInFrame(r *Relation, j int) *Relation {
	out := &Relation{Vars: r.Vars}
	for _, t := range r.Tuples {
		nt, ok := eliminateTuple(t, j, EliminateOptions{})
		if ok {
			out.Tuples = append(out.Tuples, nt)
		}
	}
	return out
}

// Eliminate removes the variable in column j from every tuple of r and
// drops the column, returning a relation of arity d-1: the projection
// ∃x_j r. This is the classical Fourier–Motzkin implementation of the
// paper's §4.3 baseline.
func Eliminate(r *Relation, j int, opts EliminateOptions) *Relation {
	vars := make([]string, 0, len(r.Vars)-1)
	for i, v := range r.Vars {
		if i != j {
			vars = append(vars, v)
		}
	}
	out := &Relation{Vars: vars}
	for _, t := range r.Tuples {
		nt, ok := eliminateTuple(t, j, opts)
		if !ok {
			continue
		}
		atoms := make([]Atom, 0, len(nt.Atoms))
		for _, a := range nt.Atoms {
			coef := make(linalg.Vector, 0, len(a.Coef)-1)
			for i, c := range a.Coef {
				if i != j {
					coef = append(coef, c)
				}
			}
			atoms = append(atoms, Atom{Coef: coef, B: a.B, Strict: a.Strict})
		}
		out.Tuples = append(out.Tuples, NewTuple(len(vars), atoms...))
	}
	return out
}

// EliminateAll projects out the columns js (indices into r's columns),
// returning the relation over the remaining columns in their original
// order.
func EliminateAll(r *Relation, js []int, opts EliminateOptions) *Relation {
	// Eliminate from the highest index down so earlier indices stay valid.
	sorted := append([]int{}, js...)
	for i := 0; i < len(sorted); i++ {
		for k := i + 1; k < len(sorted); k++ {
			if sorted[k] > sorted[i] {
				sorted[i], sorted[k] = sorted[k], sorted[i]
			}
		}
	}
	out := r
	for _, j := range sorted {
		out = Eliminate(out, j, opts)
	}
	return out
}

// eliminateTuple removes variable j from one tuple by pairing lower and
// upper bounds; the returned tuple has zero coefficients on column j.
// ok is false when the elimination proves the tuple empty.
func eliminateTuple(t Tuple, j int, opts EliminateOptions) (Tuple, bool) {
	var uppers, lowers, rest []Atom
	for _, a := range t.Atoms {
		switch {
		case a.Coef[j] > num.Eps:
			uppers = append(uppers, a)
		case a.Coef[j] < -num.Eps:
			lowers = append(lowers, a)
		default:
			// Zero the residual coefficient for exact frame invariants.
			na := a
			na.Coef = a.Coef.Clone()
			na.Coef[j] = 0
			rest = append(rest, na)
		}
	}
	atoms := rest
	for _, u := range uppers {
		for _, l := range lowers {
			// u: u·x <= ub with u_j > 0;  l: l·x <= lb with l_j < 0.
			// (-l_j)·u + u_j·l has zero j-coefficient.
			uj, lj := u.Coef[j], l.Coef[j]
			coef := make(linalg.Vector, len(u.Coef))
			for i := range coef {
				coef[i] = -lj*u.Coef[i] + uj*l.Coef[i]
			}
			coef[j] = 0
			b := -lj*u.B + uj*l.B
			a := Atom{Coef: coef, B: b, Strict: u.Strict || l.Strict}
			if trivial, sat := a.IsTrivial(); trivial {
				if !sat {
					return Tuple{}, false
				}
				continue
			}
			atoms = append(atoms, a.Normalize())
		}
	}
	nt := NewTuple(t.Dim(), dedupAtoms(atoms)...)
	if !opts.SkipPruning && len(nt.Atoms) <= redundancyPruneLimit {
		nt = RemoveRedundant(nt)
	}
	if nt.IsEmpty() {
		return Tuple{}, false
	}
	return nt, true
}

// dedupAtoms removes exact duplicates after normalisation.
func dedupAtoms(atoms []Atom) []Atom {
	out := atoms[:0:0]
	for _, a := range atoms {
		na := a.Normalize()
		dup := false
		for _, b := range out {
			if na.Strict == b.Strict && num.Eq(na.B, b.B) && na.Coef.Equal(b.Coef, num.Eps) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, na)
		}
	}
	return out
}

// RemoveRedundant drops atoms implied by the rest of the tuple, using one
// LP per atom: a·x <= b is redundant when max a·x over the remaining
// atoms is at most b.
func RemoveRedundant(t Tuple) Tuple {
	atoms := append([]Atom{}, t.Atoms...)
	for i := 0; i < len(atoms); i++ {
		others := make([]linalg.Vector, 0, len(atoms)-1)
		rhs := make([]float64, 0, len(atoms)-1)
		for k, a := range atoms {
			if k == i {
				continue
			}
			others = append(others, a.Coef)
			rhs = append(rhs, a.B)
		}
		if len(others) == 0 {
			break
		}
		v, ok := lp.Extent(others, rhs, atoms[i].Coef)
		if ok && v <= atoms[i].B+num.Eps {
			atoms = append(atoms[:i], atoms[i+1:]...)
			i--
		}
	}
	return NewTuple(t.Dim(), atoms...)
}
