package constraint

import (
	"testing"

	"repro/internal/linalg"
	"repro/internal/rng"
)

func TestSelect(t *testing.T) {
	r := MustRelation("R", []string{"x", "y"}, Cube(2, 0, 2))
	s, err := Select(r, NewAtom(linalg.Vector{1, 0}, 1, false)) // x <= 1
	if err != nil {
		t.Fatal(err)
	}
	if !s.Contains(linalg.Vector{0.5, 1.5}) || s.Contains(linalg.Vector{1.5, 1.5}) {
		t.Error("selection membership wrong")
	}
	// Empty selection prunes.
	empty, err := Select(r, NewAtom(linalg.Vector{1, 0}, -1, false)) // x <= -1
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Tuples) != 0 {
		t.Error("infeasible selection must prune")
	}
	if _, err := Select(r, NewAtom(linalg.Vector{1}, 0, false)); err == nil {
		t.Error("arity mismatch must fail")
	}
}

func TestProjectKeepsOrder(t *testing.T) {
	r := MustRelation("R", []string{"x", "y", "z"},
		Box(linalg.Vector{0, 10, -1}, linalg.Vector{1, 20, 1}))
	// Reversed column order.
	p, err := Project(r, []string{"z", "x"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Vars[0] != "z" || p.Vars[1] != "x" {
		t.Fatalf("projected vars = %v", p.Vars)
	}
	if !p.Contains(linalg.Vector{0, 0.5}) {
		t.Error("(z=0, x=0.5) should be in the projection")
	}
	if p.Contains(linalg.Vector{0.5, 2}) {
		t.Error("(z=0.5, x=2) should be outside")
	}
	if _, err := Project(r, []string{"w"}); err == nil {
		t.Error("unknown column must fail")
	}
	if _, err := Project(r, []string{"x", "x"}); err == nil {
		t.Error("duplicate column must fail")
	}
}

func TestProjectTriangle(t *testing.T) {
	tri := NewTuple(2,
		NewAtom(linalg.Vector{-1, 0}, 0, false),
		NewAtom(linalg.Vector{0, -1}, 0, false),
		NewAtom(linalg.Vector{1, 1}, 1, false),
	)
	r := MustRelation("T", []string{"x", "y"}, tri)
	p, err := Project(r, []string{"y"})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Contains(linalg.Vector{0.5}) || p.Contains(linalg.Vector{1.5}) {
		t.Error("projection onto y must be [0, 1]")
	}
}

func TestRename(t *testing.T) {
	r := MustRelation("R", []string{"x", "y"}, Cube(2, 0, 1))
	rn, err := Rename(r, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if rn.Vars[0] != "a" || !rn.Contains(linalg.Vector{0.5, 0.5}) {
		t.Error("rename wrong")
	}
	if _, err := Rename(r, []string{"a"}); err == nil {
		t.Error("wrong arity must fail")
	}
}

func TestProduct(t *testing.T) {
	a := MustRelation("A", []string{"x"}, Cube(1, 0, 1))
	b := MustRelation("B", []string{"y"}, Cube(1, 5, 6))
	p, err := Product(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if p.Arity() != 2 {
		t.Fatalf("product arity = %d", p.Arity())
	}
	if !p.Contains(linalg.Vector{0.5, 5.5}) || p.Contains(linalg.Vector{0.5, 4}) {
		t.Error("product membership wrong")
	}
	// Column clash.
	c := MustRelation("C", []string{"x"}, Cube(1, 0, 1))
	if _, err := Product(a, c); err == nil {
		t.Error("column clash must fail")
	}
}

func TestJoinNatural(t *testing.T) {
	// A(x, y): strip 0<=x<=2, 0<=y<=1; B(y, z): strip 0<=y<=1, 3<=z<=4.
	a := MustRelation("A", []string{"x", "y"}, Box(linalg.Vector{0, 0}, linalg.Vector{2, 1}))
	b := MustRelation("B", []string{"y", "z"}, Box(linalg.Vector{0, 3}, linalg.Vector{1, 4}))
	j, err := Join(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if j.Arity() != 3 || j.Vars[0] != "x" || j.Vars[1] != "y" || j.Vars[2] != "z" {
		t.Fatalf("join columns = %v", j.Vars)
	}
	if !j.Contains(linalg.Vector{1, 0.5, 3.5}) {
		t.Error("joined point missing")
	}
	if j.Contains(linalg.Vector{1, 1.5, 3.5}) || j.Contains(linalg.Vector{1, 0.5, 5}) {
		t.Error("join membership wrong")
	}
}

func TestJoinRestrictsSharedColumn(t *testing.T) {
	// A(x, y) with y in [0, 1]; B(y) with y in [0.5, 2]: join y-range is
	// the intersection [0.5, 1].
	a := MustRelation("A", []string{"x", "y"}, Box(linalg.Vector{0, 0}, linalg.Vector{1, 1}))
	b := MustRelation("B", []string{"y"}, Cube(1, 0.5, 2))
	j, err := Join(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if j.Arity() != 2 {
		t.Fatalf("arity = %d", j.Arity())
	}
	if !j.Contains(linalg.Vector{0.5, 0.75}) || j.Contains(linalg.Vector{0.5, 0.25}) {
		t.Error("join y-restriction wrong")
	}
}

func TestAlgebraCompositionMatchesCompile(t *testing.T) {
	// π_x(σ_{x+y<=1}(A × B)) computed by the algebra equals the
	// compiled formula ∃y (A(x) & B(y) & x + y <= 1).
	a := MustRelation("A", []string{"x"}, Cube(1, 0, 1))
	b := MustRelation("B", []string{"y"}, Cube(1, 0, 1))
	prod, err := Product(a, b)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := Select(prod, NewAtom(linalg.Vector{1, 1}, 1, false))
	if err != nil {
		t.Fatal(err)
	}
	alg, err := Project(sel, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	f, err := ParseFormula(`exists y. (A(x) & B(y) & x + y <= 1)`)
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := Compile(f, Schema{"A": a, "B": b}, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	for i := 0; i < 300; i++ {
		p := linalg.Vector{r.Uniform(-0.3, 1.3)}
		if nearAny(p[0], 0, 1) {
			continue
		}
		if alg.Contains(p) != compiled.Contains(p) {
			t.Fatalf("algebra and compile disagree at %v", p)
		}
	}
}
