package constraint

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/linalg"
)

// The text language accepted by Parse:
//
//	# comment                            -- '#' or '//' to end of line
//	rel S(x, y) := { x >= 0, y >= 0, x + y <= 1 }
//	             | { 2x + 3y < 6, x >= 1 };
//	rel T(x)    := exists y. S(x, y) & y >= 1/2;
//	query Q(x)  := T(x) | !S(x, x);
//
// Formulas combine atomic linear constraints (with chained comparisons,
// e.g. 0 <= x <= 1), tuple literals {c1, ..., ck} (sugar for their
// conjunction), predicate applications, !, &, |, exists and forall.
// Precedence: ! binds tightest, then &, then |; quantifiers extend to the
// end of the enclosing formula; parentheses group.
//
// A `rel` statement is compiled immediately against the relations declared
// so far (so its body may use quantifiers and negation); a `query`
// statement stores the formula unevaluated for later symbolic or
// sampling-based evaluation.

// Query is a named, not-yet-evaluated query formula.
type Query struct {
	Name string
	Vars []string
	F    Formula
}

// Database is the result of parsing a program: relations compiled in
// declaration order plus stored queries.
type Database struct {
	Names   []string // relation names in declaration order
	Schema  Schema
	Queries []Query
}

// Relation returns a declared relation by name.
func (db *Database) Relation(name string) (*Relation, bool) {
	r, ok := db.Schema[name]
	return r, ok
}

// Query returns a stored query by name.
func (db *Database) Query(name string) (Query, bool) {
	for _, q := range db.Queries {
		if q.Name == name {
			return q, true
		}
	}
	return Query{}, false
}

// Parse parses and compiles a whole program.
func Parse(src string) (*Database, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	db := &Database{Schema: Schema{}}
	for !p.atEOF() {
		kw := p.peek()
		if kw.kind != tokIdent || (kw.text != "rel" && kw.text != "query") {
			return nil, p.errorf("expected 'rel' or 'query', got %q", kw.text)
		}
		p.next()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		vars, err := p.parseVarList()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokAssign); err != nil {
			return nil, err
		}
		f, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		if kw.text == "rel" {
			rel, err := Compile(f, db.Schema, vars)
			if err != nil {
				return nil, fmt.Errorf("compiling %s: %w", name, err)
			}
			rel.Name = name
			if _, dup := db.Schema[name]; dup {
				return nil, fmt.Errorf("relation %q declared twice", name)
			}
			db.Schema[name] = rel
			db.Names = append(db.Names, name)
		} else {
			db.Queries = append(db.Queries, Query{Name: name, Vars: vars, F: f})
		}
	}
	return db, nil
}

// ParseFormula parses a single formula (no trailing semicolon needed).
func ParseFormula(src string) (Formula, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f, err := p.parseFormula()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errorf("unexpected trailing input %q", p.peek().text)
	}
	return f, nil
}

// ParseRelation parses and compiles "Name(vars) := body" with an optional
// trailing semicolon against an optional schema.
func ParseRelation(src string, schema Schema) (*Relation, error) {
	if schema == nil {
		schema = Schema{}
	}
	src = strings.TrimSpace(src)
	if !strings.HasSuffix(src, ";") {
		src += ";"
	}
	db0 := &Database{Schema: schema}
	toks, err := lex("rel " + src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	p.next() // 'rel'
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	vars, err := p.parseVarList()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokAssign); err != nil {
		return nil, err
	}
	f, err := p.parseFormula()
	if err != nil {
		return nil, err
	}
	rel, err := Compile(f, db0.Schema, vars)
	if err != nil {
		return nil, err
	}
	rel.Name = name
	return rel, nil
}

// ---- lexer ----

type tokKind int

const (
	tokIdent tokKind = iota
	tokNumber
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokComma
	tokSemi
	tokDot
	tokAssign // :=
	tokPlus
	tokMinus
	tokStar
	tokSlash
	tokAmp
	tokPipe
	tokBang
	tokLE // <=
	tokLT // <
	tokGE // >=
	tokGT // >
	tokEQ // =
	tokNE // !=
	tokEOF
)

type token struct {
	kind tokKind
	text string
	pos  int
}

func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '#':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				i++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < n && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], i})
			i = j
		case unicode.IsDigit(rune(c)) || (c == '.' && i+1 < n && unicode.IsDigit(rune(src[i+1]))):
			j := i
			seenDot := false
			for j < n && (unicode.IsDigit(rune(src[j])) || (src[j] == '.' && !seenDot)) {
				if src[j] == '.' {
					// A dot not followed by a digit terminates the number
					// (it is the quantifier dot).
					if j+1 >= n || !unicode.IsDigit(rune(src[j+1])) {
						break
					}
					seenDot = true
				}
				j++
			}
			// Optional exponent ([eE][+-]?digits) for externally written
			// programs. Consumed only when a digit follows, so
			// `exists e. ...` still lexes `e` as an identifier. Caveat: a
			// coefficient juxtaposed to a variable named like e1 ("2e1")
			// now reads as the number 20 — write "2 e1" for the product.
			if j < n && (src[j] == 'e' || src[j] == 'E') {
				k := j + 1
				if k < n && (src[k] == '+' || src[k] == '-') {
					k++
				}
				if k < n && unicode.IsDigit(rune(src[k])) {
					for k < n && unicode.IsDigit(rune(src[k])) {
						k++
					}
					j = k
				}
			}
			toks = append(toks, token{tokNumber, src[i:j], i})
			i = j
		default:
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch {
			case two == ":=":
				toks = append(toks, token{tokAssign, two, i})
				i += 2
			case two == "<=":
				toks = append(toks, token{tokLE, two, i})
				i += 2
			case two == ">=":
				toks = append(toks, token{tokGE, two, i})
				i += 2
			case two == "!=":
				toks = append(toks, token{tokNE, two, i})
				i += 2
			case two == "==":
				toks = append(toks, token{tokEQ, two, i})
				i += 2
			case two == "&&":
				toks = append(toks, token{tokAmp, two, i})
				i += 2
			case two == "||":
				toks = append(toks, token{tokPipe, two, i})
				i += 2
			default:
				kind, ok := map[byte]tokKind{
					'(': tokLParen, ')': tokRParen, '{': tokLBrace, '}': tokRBrace,
					',': tokComma, ';': tokSemi, '.': tokDot, '+': tokPlus,
					'-': tokMinus, '*': tokStar, '/': tokSlash, '&': tokAmp,
					'|': tokPipe, '!': tokBang, '<': tokLT, '>': tokGT, '=': tokEQ,
				}[c]
				if !ok {
					return nil, fmt.Errorf("constraint: lex error at offset %d: unexpected %q", i, string(c))
				}
				toks = append(toks, token{kind, string(c), i})
				i++
			}
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

// ---- parser ----

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }
func (p *parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("constraint: parse error at offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

func (p *parser) expect(kind tokKind) error {
	if p.peek().kind != kind {
		return p.errorf("unexpected %q", p.peek().text)
	}
	p.next()
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if p.peek().kind != tokIdent {
		return "", p.errorf("expected identifier, got %q", p.peek().text)
	}
	return p.next().text, nil
}

func (p *parser) parseVarList() ([]string, error) {
	if err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var vars []string
	for {
		v, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		vars = append(vars, v)
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return vars, nil
}

func (p *parser) parseFormula() (Formula, error) { return p.parseOr() }

func (p *parser) parseOr() (Formula, error) {
	f, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	fs := []Formula{f}
	for p.peek().kind == tokPipe {
		p.next()
		g, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		fs = append(fs, g)
	}
	if len(fs) == 1 {
		return fs[0], nil
	}
	return Or{Fs: fs}, nil
}

func (p *parser) parseAnd() (Formula, error) {
	f, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	fs := []Formula{f}
	for p.peek().kind == tokAmp {
		p.next()
		g, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		fs = append(fs, g)
	}
	if len(fs) == 1 {
		return fs[0], nil
	}
	return And{Fs: fs}, nil
}

func (p *parser) parseUnary() (Formula, error) {
	switch t := p.peek(); {
	case t.kind == tokBang:
		p.next()
		f, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Not{F: f}, nil
	case t.kind == tokIdent && (t.text == "exists" || t.text == "forall"):
		p.next()
		var vars []string
		for {
			v, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			vars = append(vars, v)
			if p.peek().kind == tokComma {
				p.next()
				continue
			}
			break
		}
		if err := p.expect(tokDot); err != nil {
			return nil, err
		}
		body, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		if t.text == "exists" {
			return Exists{Vars: vars, F: body}, nil
		}
		return ForAll{Vars: vars, F: body}, nil
	case t.kind == tokLBrace:
		return p.parseTupleLiteral()
	case t.kind == tokLParen:
		// Could be a grouped formula; linear expressions never start with
		// '(' in this grammar, so '(' always opens a formula.
		p.next()
		f, err := p.parseFormula()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return f, nil
	case t.kind == tokIdent && p.toks[p.pos+1].kind == tokLParen:
		p.next()
		args, err := p.parseVarList()
		if err != nil {
			return nil, err
		}
		return Pred{Name: t.text, Args: args}, nil
	default:
		return p.parseComparison()
	}
}

func (p *parser) parseTupleLiteral() (Formula, error) {
	if err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	var fs []Formula
	for {
		f, err := p.parseComparison()
		if err != nil {
			return nil, err
		}
		fs = append(fs, f)
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if err := p.expect(tokRBrace); err != nil {
		return nil, err
	}
	if len(fs) == 1 {
		return fs[0], nil
	}
	return And{Fs: fs}, nil
}

// linExpr is a linear expression under construction.
type linExpr struct {
	coef  map[string]float64
	konst float64
}

func (e *linExpr) sub(o *linExpr) *linExpr {
	out := &linExpr{coef: map[string]float64{}, konst: e.konst - o.konst}
	for v, c := range e.coef {
		out.coef[v] += c
	}
	for v, c := range o.coef {
		out.coef[v] -= c
	}
	return out
}

// atomF converts "e ⋈ 0" into an AtomF with deterministic variable order.
func (e *linExpr) atomF(strict bool) AtomF {
	vars := make([]string, 0, len(e.coef))
	for v := range e.coef {
		vars = append(vars, v)
	}
	// Insertion sort for determinism (tiny lists).
	for i := 1; i < len(vars); i++ {
		for j := i; j > 0 && vars[j] < vars[j-1]; j-- {
			vars[j], vars[j-1] = vars[j-1], vars[j]
		}
	}
	coef := make(linalg.Vector, len(vars))
	for i, v := range vars {
		coef[i] = e.coef[v]
	}
	return AtomF{Vars: vars, Atom: Atom{Coef: coef, B: -e.konst, Strict: strict}}
}

func (p *parser) parseComparison() (Formula, error) {
	left, err := p.parseLinExpr()
	if err != nil {
		return nil, err
	}
	var conj []Formula
	sawCmp := false
	for {
		op := p.peek().kind
		if op != tokLE && op != tokLT && op != tokGE && op != tokGT && op != tokEQ && op != tokNE {
			break
		}
		p.next()
		right, err := p.parseLinExpr()
		if err != nil {
			return nil, err
		}
		sawCmp = true
		switch op {
		case tokLE:
			conj = append(conj, left.sub(right).atomF(false))
		case tokLT:
			conj = append(conj, left.sub(right).atomF(true))
		case tokGE:
			conj = append(conj, right.sub(left).atomF(false))
		case tokGT:
			conj = append(conj, right.sub(left).atomF(true))
		case tokEQ:
			conj = append(conj, left.sub(right).atomF(false), right.sub(left).atomF(false))
		case tokNE:
			if len(conj) > 0 {
				return nil, p.errorf("'!=' cannot appear in a comparison chain")
			}
			d := left.sub(right)
			lt := d.atomF(true)
			gt := right.sub(left).atomF(true)
			return Or{Fs: []Formula{lt, gt}}, nil
		}
		left = right
	}
	if !sawCmp {
		return nil, p.errorf("expected comparison operator")
	}
	if len(conj) == 1 {
		return conj[0], nil
	}
	return And{Fs: conj}, nil
}

func (p *parser) parseLinExpr() (*linExpr, error) {
	e := &linExpr{coef: map[string]float64{}}
	sign := 1.0
	// Optional leading sign.
	for p.peek().kind == tokMinus || p.peek().kind == tokPlus {
		if p.next().kind == tokMinus {
			sign = -sign
		}
	}
	for {
		if err := p.parseTermInto(e, sign); err != nil {
			return nil, err
		}
		switch p.peek().kind {
		case tokPlus:
			p.next()
			sign = 1
		case tokMinus:
			p.next()
			sign = -1
		default:
			return e, nil
		}
	}
}

// parseTermInto parses NUMBER [('/' NUMBER)] ['*'] [IDENT] | IDENT and
// accumulates into e with the given sign.
func (p *parser) parseTermInto(e *linExpr, sign float64) error {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return p.errorf("bad number %q", t.text)
		}
		if p.peek().kind == tokSlash {
			p.next()
			dt := p.peek()
			if dt.kind != tokNumber {
				return p.errorf("expected denominator after '/'")
			}
			p.next()
			den, err := strconv.ParseFloat(dt.text, 64)
			if err != nil || den == 0 {
				return p.errorf("bad denominator %q", dt.text)
			}
			v /= den
		}
		if p.peek().kind == tokStar {
			p.next()
			id, err := p.expectIdent()
			if err != nil {
				return err
			}
			e.coef[id] += sign * v
			return nil
		}
		if p.peek().kind == tokIdent && !isKeyword(p.peek().text) {
			id := p.next().text
			e.coef[id] += sign * v
			return nil
		}
		e.konst += sign * v
		return nil
	case tokIdent:
		if isKeyword(t.text) {
			return p.errorf("unexpected keyword %q in expression", t.text)
		}
		p.next()
		e.coef[t.text] += sign
		return nil
	default:
		return p.errorf("expected term, got %q", t.text)
	}
}

func isKeyword(s string) bool {
	switch s {
	case "rel", "query", "exists", "forall":
		return true
	}
	return false
}
