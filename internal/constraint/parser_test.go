package constraint

import (
	"strings"
	"testing"

	"repro/internal/linalg"
)

func TestParseSimpleRelation(t *testing.T) {
	db, err := Parse(`rel S(x, y) := { x >= 0, y >= 0, x + y <= 1 };`)
	if err != nil {
		t.Fatal(err)
	}
	s, ok := db.Relation("S")
	if !ok {
		t.Fatal("relation S missing")
	}
	if s.Arity() != 2 || len(s.Tuples) != 1 {
		t.Fatalf("S arity=%d tuples=%d", s.Arity(), len(s.Tuples))
	}
	if !s.Contains(linalg.Vector{0.3, 0.3}) || s.Contains(linalg.Vector{0.8, 0.8}) {
		t.Error("parsed triangle membership wrong")
	}
}

func TestParseUnionOfTuples(t *testing.T) {
	db, err := Parse(`
		# two unit squares
		rel R(x, y) := { 0 <= x, x <= 1, 0 <= y, y <= 1 }
		             | { 2 <= x, x <= 3, 0 <= y, y <= 1 };
	`)
	if err != nil {
		t.Fatal(err)
	}
	r := db.Schema["R"]
	if len(r.Tuples) != 2 {
		t.Fatalf("tuples = %d, want 2", len(r.Tuples))
	}
	if !r.Contains(linalg.Vector{2.5, 0.5}) || r.Contains(linalg.Vector{1.5, 0.5}) {
		t.Error("union membership wrong")
	}
}

func TestParseChainedComparison(t *testing.T) {
	db, err := Parse(`rel I(x) := { 0 <= x <= 1 };`)
	if err != nil {
		t.Fatal(err)
	}
	i := db.Schema["I"]
	if !i.Contains(linalg.Vector{0.5}) || i.Contains(linalg.Vector{1.5}) || i.Contains(linalg.Vector{-0.5}) {
		t.Error("chained comparison wrong")
	}
}

func TestParseCoefficients(t *testing.T) {
	db, err := Parse(`rel C(x, y) := { 2x + 3*y <= 6, x >= 0, y >= 0, 1/2 x <= 1 };`)
	if err != nil {
		t.Fatal(err)
	}
	c := db.Schema["C"]
	if !c.Contains(linalg.Vector{1, 1}) {
		t.Error("(1,1) should satisfy 2x+3y<=6")
	}
	if c.Contains(linalg.Vector{3, 1}) {
		t.Error("(3,1) violates 2x+3y<=6")
	}
	if c.Contains(linalg.Vector{2.5, 0}) {
		t.Error("(2.5,0) violates x/2<=1")
	}
}

func TestParseFractionsAndDecimals(t *testing.T) {
	db, err := Parse(`rel F(x) := { 3/4 < x, x < 1 } | { 0 < x, x < 1/4 };`)
	if err != nil {
		t.Fatal(err)
	}
	f := db.Schema["F"]
	cases := []struct {
		x    float64
		want bool
	}{{0.1, true}, {0.8, true}, {0.5, false}, {0.25, false}, {1.5, false}}
	for _, c := range cases {
		if got := f.Contains(linalg.Vector{c.x}); got != c.want {
			t.Errorf("F(%g) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestParseEquality(t *testing.T) {
	db, err := Parse(`rel L(x, y) := { x = y, 0 <= x <= 1 };`)
	if err != nil {
		t.Fatal(err)
	}
	l := db.Schema["L"]
	if !l.Contains(linalg.Vector{0.5, 0.5}) {
		t.Error("diagonal point should satisfy x = y")
	}
	if l.Contains(linalg.Vector{0.5, 0.6}) {
		t.Error("off-diagonal point should fail x = y")
	}
}

func TestParseDisequality(t *testing.T) {
	db, err := Parse(`rel D(x) := x != 0 & -1 <= x & x <= 1;`)
	if err != nil {
		t.Fatal(err)
	}
	d := db.Schema["D"]
	if !d.Contains(linalg.Vector{0.5}) || !d.Contains(linalg.Vector{-0.5}) {
		t.Error("non-zero points should satisfy")
	}
	if d.Contains(linalg.Vector{0}) {
		t.Error("zero must fail x != 0")
	}
}

func TestParsePredicatesAndQuantifiers(t *testing.T) {
	db, err := Parse(`
		rel S(x, y) := { x >= 0, y >= 0, x + y <= 1 };
		rel P(x)    := exists y. S(x, y);
		rel N(x, y) := S(x, y) & !(x + y <= 1/2);
	`)
	if err != nil {
		t.Fatal(err)
	}
	p := db.Schema["P"]
	if !p.Contains(linalg.Vector{0.5}) || p.Contains(linalg.Vector{1.5}) {
		t.Error("P must be [0,1]")
	}
	n := db.Schema["N"]
	if !n.Contains(linalg.Vector{0.4, 0.4}) || n.Contains(linalg.Vector{0.1, 0.1}) {
		t.Error("N membership wrong")
	}
}

func TestParseForAll(t *testing.T) {
	db, err := Parse(`
		rel G(x) := forall y. (y < 0 | y > 1 | x + y <= 2);
	`)
	if err != nil {
		t.Fatal(err)
	}
	g := db.Schema["G"]
	if !g.Contains(linalg.Vector{0.5}) || g.Contains(linalg.Vector{1.5}) {
		t.Error("forall relation must be x <= 1")
	}
}

func TestParseQueryStoredUnevaluated(t *testing.T) {
	db, err := Parse(`
		rel S(x, y) := { 0 <= x <= 1, 0 <= y <= 1 };
		query Q(x) := exists y. S(x, y);
	`)
	if err != nil {
		t.Fatal(err)
	}
	q, ok := db.Query("Q")
	if !ok {
		t.Fatal("query Q missing")
	}
	if len(q.Vars) != 1 || q.Vars[0] != "x" {
		t.Errorf("query vars = %v", q.Vars)
	}
	if _, isExists := q.F.(Exists); !isExists {
		t.Errorf("query formula kept as %T, want Exists", q.F)
	}
	if _, ok := db.Query("Nope"); ok {
		t.Error("missing query must report !ok")
	}
}

func TestParseOperatorPrecedence(t *testing.T) {
	// a | b & c parses as a | (b & c).
	f, err := ParseFormula(`x <= 0 | x >= 1 & x <= 2`)
	if err != nil {
		t.Fatal(err)
	}
	or, ok := f.(Or)
	if !ok || len(or.Fs) != 2 {
		t.Fatalf("top level = %T", f)
	}
	if _, ok := or.Fs[1].(And); !ok {
		t.Errorf("right disjunct = %T, want And", or.Fs[1])
	}
}

func TestParseParenthesesOverridePrecedence(t *testing.T) {
	f, err := ParseFormula(`(x <= 0 | x >= 1) & x <= 2`)
	if err != nil {
		t.Fatal(err)
	}
	and, ok := f.(And)
	if !ok {
		t.Fatalf("top level = %T, want And", f)
	}
	if _, ok := and.Fs[0].(Or); !ok {
		t.Errorf("left conjunct = %T, want Or", and.Fs[0])
	}
}

func TestParseDoubleCharOperators(t *testing.T) {
	f, err := ParseFormula(`x <= 1 && x >= 0 || x == 5`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.(Or); !ok {
		t.Fatalf("top level = %T, want Or", f)
	}
}

func TestParseComments(t *testing.T) {
	db, err := Parse(`
		# hash comment
		// slash comment
		rel A(x) := { 0 <= x <= 1 }; # trailing
	`)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := db.Relation("A"); !ok {
		t.Error("relation A missing")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`rel S(x) := ;`,
		`rel S(x) := { x <= };`,
		`rel S(x) := { x ?? 1 };`,
		`rel (x) := { x <= 1 };`,
		`rel S(x) { x <= 1 };`,
		`rel S(x) := { x <= 1 }`,
		`rel S(x) := T(x);`,
		`rel S(x) := exists . x <= 1;`,
		`rel S(x) := { 1/0 x <= 1 };`,
		`rel S(x) := { 0 <= x != 1 };`,
		`query`,
		`frobnicate S(x) := { x <= 1};`,
		`rel S(x) := { y <= 1 };`, // free var y not declared
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseDuplicateRelation(t *testing.T) {
	_, err := Parse(`
		rel S(x) := { 0 <= x <= 1 };
		rel S(x) := { 0 <= x <= 2 };
	`)
	if err == nil || !strings.Contains(err.Error(), "twice") {
		t.Errorf("duplicate relation error = %v", err)
	}
}

func TestParseRelationConvenience(t *testing.T) {
	r, err := ParseRelation(`Tri(x, y) := { x >= 0, y >= 0, x + y <= 1 }`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "Tri" || r.Arity() != 2 {
		t.Errorf("relation = %s arity %d", r.Name, r.Arity())
	}
	// With schema reference.
	schema := Schema{"Tri": r}
	p, err := ParseRelation(`P(x) := exists y. Tri(x, y);`, schema)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Contains(linalg.Vector{0.5}) || p.Contains(linalg.Vector{2}) {
		t.Error("projection via ParseRelation wrong")
	}
}

func TestParseNegativeCoefficientsAndConstants(t *testing.T) {
	db, err := Parse(`rel N(x, y) := { -x + 2 >= y - 3, -2 <= x, x <= 2, -2 <= y, y <= 2 };`)
	if err != nil {
		t.Fatal(err)
	}
	n := db.Schema["N"]
	// -x + 2 >= y - 3  ⟺  x + y <= 5: all of the box qualifies.
	if !n.Contains(linalg.Vector{2, 2}) || !n.Contains(linalg.Vector{-2, -2}) {
		t.Error("constant folding in comparisons wrong")
	}
}

func TestParseQuantifierDotVersusDecimal(t *testing.T) {
	// '3.5' is a decimal; 'exists y. ...' uses the dot token.
	db, err := Parse(`rel M(x) := exists y. (y >= 3.5 & y <= 4 & x = y - 3.5);`)
	if err != nil {
		t.Fatal(err)
	}
	m := db.Schema["M"]
	if !m.Contains(linalg.Vector{0.25}) || m.Contains(linalg.Vector{0.75}) {
		t.Error("decimal/dot disambiguation wrong")
	}
}
