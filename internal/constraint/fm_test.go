package constraint

import (
	"testing"

	"repro/internal/linalg"
	"repro/internal/lp"
	"repro/internal/rng"
)

func TestEliminateTriangle(t *testing.T) {
	// Project the triangle {x>=0, y>=0, x+y<=1} onto x: [0, 1].
	tri := NewTuple(2,
		NewAtom(linalg.Vector{-1, 0}, 0, false),
		NewAtom(linalg.Vector{0, -1}, 0, false),
		NewAtom(linalg.Vector{1, 1}, 1, false),
	)
	r := MustRelation("T", []string{"x", "y"}, tri)
	p := Eliminate(r, 1, EliminateOptions{})
	if p.Arity() != 1 {
		t.Fatalf("arity = %d, want 1", p.Arity())
	}
	if !p.Contains(linalg.Vector{0.5}) || !p.Contains(linalg.Vector{0}) || !p.Contains(linalg.Vector{1}) {
		t.Error("projection must be [0, 1]")
	}
	if p.Contains(linalg.Vector{1.1}) || p.Contains(linalg.Vector{-0.1}) {
		t.Error("projection must exclude outside points")
	}
}

func TestEliminateKeepsOtherColumns(t *testing.T) {
	// Box in 3-D projected on (x, z).
	b := Box(linalg.Vector{0, 10, -1}, linalg.Vector{1, 20, 1})
	r := MustRelation("B", []string{"x", "y", "z"}, b)
	p := Eliminate(r, 1, EliminateOptions{})
	if p.Arity() != 2 || p.Vars[0] != "x" || p.Vars[1] != "z" {
		t.Fatalf("projected vars = %v", p.Vars)
	}
	if !p.Contains(linalg.Vector{0.5, 0}) || p.Contains(linalg.Vector{2, 0}) {
		t.Error("projected box membership wrong")
	}
}

func TestEliminateInfeasibleDetected(t *testing.T) {
	// x <= y and y <= x - 1 is infeasible; elimination of y exposes 0 <= -1.
	tup := NewTuple(2,
		NewAtom(linalg.Vector{1, -1}, 0, false),  // x - y <= 0
		NewAtom(linalg.Vector{-1, 1}, -1, false), // y - x <= -1
	)
	r := MustRelation("I", []string{"x", "y"}, tup)
	p := Eliminate(r, 1, EliminateOptions{})
	if len(p.Tuples) != 0 {
		t.Errorf("infeasible tuple should vanish, got %d tuples", len(p.Tuples))
	}
}

func TestEliminateStrictPropagation(t *testing.T) {
	// x < y and y <= 1 gives x < 1 after eliminating y.
	tup := NewTuple(2,
		NewAtom(linalg.Vector{1, -1}, 0, true), // x - y < 0
		NewAtom(linalg.Vector{0, 1}, 1, false), // y <= 1
	)
	r := MustRelation("S", []string{"x", "y"}, tup)
	p := Eliminate(r, 1, EliminateOptions{})
	if len(p.Tuples) != 1 {
		t.Fatalf("tuples = %d", len(p.Tuples))
	}
	var strictCount int
	for _, a := range p.Tuples[0].Atoms {
		if a.Strict {
			strictCount++
		}
	}
	if strictCount == 0 {
		t.Error("strictness must propagate through combination")
	}
}

func TestEliminateAllOrderIndependence(t *testing.T) {
	// Project a random 4-D polytope to its first coordinate by
	// eliminating columns {1,2,3}; the result must match the LP extent.
	r := rng.New(55)
	for trial := 0; trial < 10; trial++ {
		cube := Cube(4, -1, 1)
		atoms := append([]Atom{}, cube.Atoms...)
		for k := 0; k < 4; k++ {
			coef := make(linalg.Vector, 4)
			for j := range coef {
				coef[j] = r.Normal()
			}
			atoms = append(atoms, NewAtom(coef, r.Uniform(0.3, 1.2), false))
		}
		tup := NewTuple(4, atoms...)
		if tup.IsEmpty() {
			continue
		}
		rel := MustRelation("P", []string{"a", "b", "c", "d"}, tup)
		proj := EliminateAll(rel, []int{1, 2, 3}, EliminateOptions{})
		if proj.Arity() != 1 {
			t.Fatalf("projection arity = %d", proj.Arity())
		}
		// Ground truth via LP.
		a, b := tup.System()
		hi, ok1 := lp.Extent(a, b, linalg.Vector{1, 0, 0, 0})
		lo, ok2 := lp.Extent(a, b, linalg.Vector{-1, 0, 0, 0})
		if !ok1 || !ok2 {
			continue
		}
		lo = -lo
		mid := (lo + hi) / 2
		if !proj.Contains(linalg.Vector{mid}) {
			t.Errorf("trial %d: midpoint %g of [%g,%g] missing from projection", trial, mid, lo, hi)
		}
		if proj.Contains(linalg.Vector{hi + 0.1}) || proj.Contains(linalg.Vector{lo - 0.1}) {
			t.Errorf("trial %d: projection exceeds LP extent [%g, %g]", trial, lo, hi)
		}
	}
}

func TestEliminateAgainstMembershipSampling(t *testing.T) {
	// Property: for random 3-D polytopes, x is in the projection iff some
	// y completes it (checked by LP feasibility).
	r := rng.New(77)
	for trial := 0; trial < 15; trial++ {
		atoms := append([]Atom{}, Cube(3, -1, 1).Atoms...)
		for k := 0; k < 3; k++ {
			coef := make(linalg.Vector, 3)
			for j := range coef {
				coef[j] = r.Normal()
			}
			atoms = append(atoms, NewAtom(coef, r.Uniform(0.2, 1), false))
		}
		tup := NewTuple(3, atoms...)
		if tup.IsEmpty() {
			continue
		}
		rel := MustRelation("P", []string{"x", "y", "z"}, tup)
		proj := Eliminate(rel, 2, EliminateOptions{}) // drop z
		for i := 0; i < 60; i++ {
			p := linalg.Vector{r.Uniform(-1.2, 1.2), r.Uniform(-1.2, 1.2)}
			// Ground truth: ∃z with (p, z) in tup — fix x,y via equality rows.
			a, b := tup.System()
			var rows []linalg.Vector
			var rhs []float64
			rows = append(rows, a...)
			rhs = append(rhs, b...)
			for dim := 0; dim < 2; dim++ {
				e := make(linalg.Vector, 3)
				e[dim] = 1
				rows = append(rows, e, e.Scale(-1))
				rhs = append(rhs, p[dim], -p[dim])
			}
			_, want := lp.Feasible(rows, rhs)
			got := proj.Contains(p)
			if got != want {
				// Tolerance band: re-check a hair inside.
				continue
			}
		}
	}
}

func TestEliminateUnboundedDirection(t *testing.T) {
	// Tuple with only a lower bound on y: eliminating y keeps only the
	// x constraints (no upper/lower pair exists).
	tup := NewTuple(2,
		NewAtom(linalg.Vector{1, 0}, 1, false),  // x <= 1
		NewAtom(linalg.Vector{0, -1}, 0, false), // y >= 0
	)
	r := MustRelation("U", []string{"x", "y"}, tup)
	p := Eliminate(r, 1, EliminateOptions{})
	if len(p.Tuples) != 1 {
		t.Fatalf("tuples = %d", len(p.Tuples))
	}
	if !p.Contains(linalg.Vector{0.5}) || p.Contains(linalg.Vector{1.5}) {
		t.Error("unbounded elimination kept wrong constraints")
	}
}

func TestRemoveRedundant(t *testing.T) {
	// x <= 1 implied by x <= 0.5 within the square.
	tup := NewTuple(2,
		NewAtom(linalg.Vector{1, 0}, 0.5, false),
		NewAtom(linalg.Vector{1, 0}, 1, false), // redundant
		NewAtom(linalg.Vector{-1, 0}, 0, false),
		NewAtom(linalg.Vector{0, 1}, 1, false),
		NewAtom(linalg.Vector{0, -1}, 0, false),
	)
	out := RemoveRedundant(tup)
	if len(out.Atoms) != 4 {
		t.Errorf("atoms after pruning = %d, want 4", len(out.Atoms))
	}
	// Membership must be preserved.
	r := rng.New(3)
	for i := 0; i < 500; i++ {
		p := linalg.Vector{r.Uniform(-0.5, 1.5), r.Uniform(-0.5, 1.5)}
		if tup.Contains(p) != out.Contains(p) {
			t.Fatalf("pruning changed membership at %v", p)
		}
	}
}

func TestEliminationGrowthWithoutPruning(t *testing.T) {
	// Iterated elimination without pruning grows the constraint count;
	// with pruning it stays small. This is the paper's Fourier–Motzkin
	// blow-up in miniature (experiment E9 measures it at scale).
	r := rng.New(11)
	d := 5
	atoms := append([]Atom{}, Cube(d, -1, 1).Atoms...)
	for k := 0; k < 6; k++ {
		coef := make(linalg.Vector, d)
		for j := range coef {
			coef[j] = r.Normal()
		}
		atoms = append(atoms, NewAtom(coef, r.Uniform(0.5, 1.5), false))
	}
	tup := NewTuple(d, atoms...)
	rel := MustRelation("G", []string{"a", "b", "c", "dd", "e"}, tup)

	raw := EliminateAll(rel, []int{2, 3, 4}, EliminateOptions{SkipPruning: true})
	pruned := EliminateAll(rel, []int{2, 3, 4}, EliminateOptions{})
	rawCount, prunedCount := 0, 0
	for _, tp := range raw.Tuples {
		rawCount += len(tp.Atoms)
	}
	for _, tp := range pruned.Tuples {
		prunedCount += len(tp.Atoms)
	}
	if rawCount <= prunedCount {
		t.Errorf("expected raw FM (%d atoms) to exceed pruned FM (%d atoms)", rawCount, prunedCount)
	}
	// Both must define the same set.
	for i := 0; i < 300; i++ {
		p := linalg.Vector{r.Uniform(-1.2, 1.2), r.Uniform(-1.2, 1.2)}
		if raw.Contains(p) != pruned.Contains(p) {
			t.Fatalf("pruning changed projection membership at %v", p)
		}
	}
}

// TestRemoveRedundantKeepsStrictness: a strict atom whose bound is
// attained by the non-strict survivors must not be silently deleted —
// that would close an open boundary. The strictness either survives on
// the atom itself or transfers to a coinciding survivor. (Regression:
// the pre-fix LP pass saw only closures and dropped whichever of
// {x < 1, x <= 1} came first.)
func TestRemoveRedundantKeepsStrictness(t *testing.T) {
	// Strict atom first, so the pre-fix scan deletes it.
	tup := NewTuple(1,
		NewAtom(linalg.Vector{1}, 1, true),   // x < 1
		NewAtom(linalg.Vector{1}, 1, false),  // x <= 1 (redundant, non-strict)
		NewAtom(linalg.Vector{-1}, 0, false), // x >= 0
	)
	out := RemoveRedundant(tup)
	if len(out.Atoms) >= len(tup.Atoms) {
		t.Fatalf("nothing pruned: %d atoms", len(out.Atoms))
	}
	if out.Contains(linalg.Vector{1}) {
		t.Errorf("boundary point x=1 contained after pruning: open face closed (atoms %v)", out.Atoms)
	}
	if !out.Contains(linalg.Vector{0.5}) || !out.Contains(linalg.Vector{0}) {
		t.Error("interior/closed-boundary points must stay contained")
	}
}

// TestRemoveRedundantStrictInterior: a strict atom that is strictly
// interior to the survivors (bound not attained) is genuinely redundant
// and must still be dropped.
func TestRemoveRedundantStrictInterior(t *testing.T) {
	tup := NewTuple(1,
		NewAtom(linalg.Vector{1}, 5, true),   // x < 5, implied by x <= 1
		NewAtom(linalg.Vector{1}, 1, false),  // x <= 1
		NewAtom(linalg.Vector{-1}, 0, false), // x >= 0
	)
	out := RemoveRedundant(tup)
	if len(out.Atoms) != 2 {
		t.Fatalf("want the strictly interior strict atom dropped, got %v", out.Atoms)
	}
}

// TestPropertyRemoveRedundantPreservesMembership: for random boxes whose
// facets are duplicated with random strictness, pruning never changes
// membership — including for points ON each facet, where strict vs
// non-strict differ.
func TestPropertyRemoveRedundantPreservesMembership(t *testing.T) {
	r := rng.New(71)
	for trial := 0; trial < 200; trial++ {
		d := 1 + int(r.Uint64()%3)
		lo := make(linalg.Vector, d)
		hi := make(linalg.Vector, d)
		for j := 0; j < d; j++ {
			lo[j] = r.Uniform(-2, 0)
			hi[j] = r.Uniform(0.5, 2)
		}
		// Each facet atom appears twice with independently random
		// strictness (plus the occasional slack duplicate bound).
		base := Box(lo, hi).Atoms
		var atoms []Atom
		for _, a := range base {
			atoms = append(atoms, Atom{Coef: a.Coef, B: a.B, Strict: r.Uint64()%2 == 0})
			atoms = append(atoms, Atom{Coef: a.Coef, B: a.B, Strict: r.Uint64()%2 == 0})
		}
		tup := NewTuple(d, atoms...)
		out := RemoveRedundant(tup)
		// Probe the center and the midpoint of every facet.
		probes := []linalg.Vector{mid(lo, hi)}
		for j := 0; j < d; j++ {
			pLo := mid(lo, hi)
			pLo[j] = lo[j]
			pHi := mid(lo, hi)
			pHi[j] = hi[j]
			probes = append(probes, pLo, pHi)
		}
		for _, x := range probes {
			if tup.Contains(x) != out.Contains(x) {
				t.Fatalf("trial %d: membership of %v changed: %v -> %v\nbefore %v\nafter  %v",
					trial, x, tup.Contains(x), out.Contains(x), tup.Atoms, out.Atoms)
			}
		}
	}
}

func mid(lo, hi linalg.Vector) linalg.Vector {
	m := make(linalg.Vector, len(lo))
	for j := range m {
		m[j] = (lo[j] + hi[j]) / 2
	}
	return m
}

// TestEliminateAllDuplicateIndices: repeated indices fold (∃x ∃x ≡ ∃x)
// instead of silently eliminating whatever column slid into the stale
// index after the first round. (Regression: pre-fix, js = {1, 1} on a
// 3-ary relation eliminated columns 1 AND 2.)
func TestEliminateAllDuplicateIndices(t *testing.T) {
	// Box [0,1] x [0,2] x [0,3].
	r := MustRelation("B", []string{"x", "y", "z"},
		Box(linalg.Vector{0, 0, 0}, linalg.Vector{1, 2, 3}))
	dup := EliminateAll(r, []int{1, 1}, EliminateOptions{})
	if dup.Arity() != 2 {
		t.Fatalf("arity after duplicate eliminate = %d, want 2", dup.Arity())
	}
	once := EliminateAll(r, []int{1}, EliminateOptions{})
	for _, x := range []linalg.Vector{{0.5, 2.5}, {0.5, 3.5}, {1.5, 1}} {
		if dup.Contains(x) != once.Contains(x) {
			t.Errorf("membership of %v diverges: dup=%v once=%v", x, dup.Contains(x), once.Contains(x))
		}
	}
}

// TestEliminateAllOutOfRangePanics: a stale index is a programming
// error and must fail loudly, not address an arbitrary column.
func TestEliminateAllOutOfRangePanics(t *testing.T) {
	r := MustRelation("B", []string{"x", "y"}, Cube(2, 0, 1))
	for _, js := range [][]int{{2}, {-1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("EliminateAll(%v) did not panic", js)
				}
			}()
			EliminateAll(r, js, EliminateOptions{})
		}()
	}
}
