package constraint

import (
	"testing"

	"repro/internal/linalg"
)

func TestEvalQuantifierFree(t *testing.T) {
	schema := Schema{
		"S": MustRelation("S", []string{"u", "v"}, Cube(2, 0, 1)),
	}
	f, err := ParseFormula(`S(x, y) & !(x <= 1/2) | y >= 10`)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		x, y float64
		want bool
	}{
		{0.8, 0.5, true},  // in S, x > 1/2
		{0.3, 0.5, false}, // in S but x <= 1/2
		{0.8, 1.5, false}, // outside S
		{0.0, 11.0, true}, // y >= 10 branch
	}
	for _, c := range cases {
		got, err := Eval(f, map[string]float64{"x": c.x, "y": c.y}, schema)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Eval(x=%g, y=%g) = %v, want %v", c.x, c.y, got, c.want)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	f, _ := ParseFormula(`x <= 1`)
	if _, err := Eval(f, map[string]float64{}, nil); err == nil {
		t.Error("unbound variable must error")
	}
	q, _ := ParseFormula(`exists y. y <= x`)
	if _, err := Eval(q, map[string]float64{"x": 0}, nil); err == nil {
		t.Error("quantified formula must error")
	}
	p := Pred{Name: "Missing", Args: []string{"x"}}
	if _, err := Eval(p, map[string]float64{"x": 0}, Schema{}); err == nil {
		t.Error("unknown relation must error")
	}
	s := MustRelation("S", []string{"u"}, Cube(1, 0, 1))
	bad := Pred{Name: "S", Args: []string{"x", "y"}}
	if _, err := Eval(bad, map[string]float64{"x": 0, "y": 0}, Schema{"S": s}); err == nil {
		t.Error("arity mismatch must error")
	}
	pr := Pred{Name: "S", Args: []string{"z"}}
	if _, err := Eval(pr, map[string]float64{}, Schema{"S": s}); err == nil {
		t.Error("unbound predicate argument must error")
	}
}

func TestEvalAgainstCompile(t *testing.T) {
	// Property-ish: Eval of a quantifier-free formula agrees with
	// membership in its compilation.
	schema := Schema{
		"A": MustRelation("A", []string{"u", "v"}, Cube(2, 0, 2)),
		"B": MustRelation("B", []string{"u", "v"}, Cube(2, 1, 3)),
	}
	f, err := ParseFormula(`A(x, y) & !B(x, y) | B(x, y) & x <= 3/2`)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := Compile(f, schema, []string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	for x := -0.45; x < 3.5; x += 0.4 {
		for y := -0.45; y < 3.5; y += 0.4 {
			got, err := Eval(f, map[string]float64{"x": x, "y": y}, schema)
			if err != nil {
				t.Fatal(err)
			}
			if want := rel.Contains(linalg.Vector{x, y}); got != want {
				t.Errorf("(%g, %g): Eval=%v Compile=%v", x, y, got, want)
			}
		}
	}
}
