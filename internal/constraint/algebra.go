package constraint

import (
	"fmt"

	"repro/internal/linalg"
)

// This file provides the relational-algebra view of generalized
// relations: selection, projection, renaming and cartesian product. They
// are the operator building blocks of the constraint algebra equivalent
// to FO+LIN (Kanellakis–Kuper–Revesz), and the symbolic counterparts of
// the paper's sampling combinators.

// Select returns σ_atom(r): every tuple conjoined with the extra atom,
// empty results pruned. The atom's arity must match the relation's.
func Select(r *Relation, atom Atom) (*Relation, error) {
	if atom.Dim() != r.Arity() {
		return nil, fmt.Errorf("constraint: selection atom arity %d != relation arity %d", atom.Dim(), r.Arity())
	}
	out := &Relation{Name: r.Name, Vars: r.Vars}
	for _, t := range r.Tuples {
		out.Tuples = append(out.Tuples, t.With(atom))
	}
	return out.PruneEmpty(), nil
}

// Project returns π_cols(r): the named columns in the given order, with
// the remaining columns existentially eliminated by Fourier–Motzkin.
func Project(r *Relation, cols []string) (*Relation, error) {
	keep := make([]int, 0, len(cols))
	seen := map[int]bool{}
	for _, c := range cols {
		idx := indexOf(r.Vars, c)
		if idx < 0 {
			return nil, fmt.Errorf("constraint: projection column %q not in %v", c, r.Vars)
		}
		if seen[idx] {
			return nil, fmt.Errorf("constraint: duplicate projection column %q", c)
		}
		seen[idx] = true
		keep = append(keep, idx)
	}
	var drop []int
	for j := range r.Vars {
		if !seen[j] {
			drop = append(drop, j)
		}
	}
	proj := EliminateAll(r, drop, EliminateOptions{})
	// EliminateAll preserves the original relative order of the kept
	// columns; reorder to the caller's order.
	return reorderColumns(proj, cols)
}

// reorderColumns permutes relation columns into the order names.
func reorderColumns(r *Relation, names []string) (*Relation, error) {
	perm := make([]int, len(names))
	for i, n := range names {
		idx := indexOf(r.Vars, n)
		if idx < 0 {
			return nil, fmt.Errorf("constraint: column %q missing after elimination", n)
		}
		perm[i] = idx
	}
	out := &Relation{Name: r.Name, Vars: append([]string{}, names...)}
	for _, t := range r.Tuples {
		atoms := make([]Atom, len(t.Atoms))
		for ai, a := range t.Atoms {
			coef := make(linalg.Vector, len(perm))
			for i, j := range perm {
				coef[i] = a.Coef[j]
			}
			atoms[ai] = Atom{Coef: coef, B: a.B, Strict: a.Strict}
		}
		out.Tuples = append(out.Tuples, NewTuple(len(perm), atoms...))
	}
	return out, nil
}

// Rename returns ρ(r) with new column names (same geometry).
func Rename(r *Relation, vars []string) (*Relation, error) {
	if len(vars) != r.Arity() {
		return nil, fmt.Errorf("constraint: rename arity %d != %d", len(vars), r.Arity())
	}
	out := &Relation{Name: r.Name, Vars: append([]string{}, vars...), Tuples: r.Tuples}
	return out, nil
}

// Product returns r × s over the concatenated columns: each pair of
// tuples contributes the conjunction of r's atoms (padded with zero
// coefficients on s's columns) and s's atoms (padded on r's columns).
func Product(r, s *Relation) (*Relation, error) {
	for _, v := range s.Vars {
		if indexOf(r.Vars, v) >= 0 {
			return nil, fmt.Errorf("constraint: product column clash %q (rename first)", v)
		}
	}
	dr, ds := r.Arity(), s.Arity()
	out := &Relation{Vars: append(append([]string{}, r.Vars...), s.Vars...)}
	for _, tr := range r.Tuples {
		for _, ts := range s.Tuples {
			atoms := make([]Atom, 0, len(tr.Atoms)+len(ts.Atoms))
			for _, a := range tr.Atoms {
				coef := make(linalg.Vector, dr+ds)
				copy(coef, a.Coef)
				atoms = append(atoms, Atom{Coef: coef, B: a.B, Strict: a.Strict})
			}
			for _, a := range ts.Atoms {
				coef := make(linalg.Vector, dr+ds)
				copy(coef[dr:], a.Coef)
				atoms = append(atoms, Atom{Coef: coef, B: a.B, Strict: a.Strict})
			}
			out.Tuples = append(out.Tuples, NewTuple(dr+ds, atoms...))
		}
	}
	return out, nil
}

// Join returns the natural join r ⋈ s on shared column names: the
// product restricted by equality of shared columns, projected back to
// the union of the column sets (r's columns first, then s's extras).
func Join(r, s *Relation) (*Relation, error) {
	shared := []string{}
	for _, v := range s.Vars {
		if indexOf(r.Vars, v) >= 0 {
			shared = append(shared, v)
		}
	}
	// Rename s's shared columns to temporaries, product, select equality,
	// then project the temporaries away.
	tmpVars := append([]string{}, s.Vars...)
	for i, v := range tmpVars {
		if indexOf(shared, v) >= 0 {
			tmpVars[i] = v + "$j"
		}
	}
	s2, err := Rename(s, tmpVars)
	if err != nil {
		return nil, err
	}
	prod, err := Product(r, s2)
	if err != nil {
		return nil, err
	}
	for _, v := range shared {
		i := indexOf(prod.Vars, v)
		j := indexOf(prod.Vars, v+"$j")
		eq1 := make(linalg.Vector, prod.Arity())
		eq1[i], eq1[j] = 1, -1
		eq2 := eq1.Scale(-1)
		prod, err = Select(prod, NewAtom(eq1, 0, false))
		if err != nil {
			return nil, err
		}
		prod, err = Select(prod, NewAtom(eq2, 0, false))
		if err != nil {
			return nil, err
		}
	}
	// Keep r's columns and s's non-shared columns.
	keep := append([]string{}, r.Vars...)
	for _, v := range s.Vars {
		if indexOf(shared, v) < 0 {
			keep = append(keep, v)
		}
	}
	return Project(prod, keep)
}
