package constraint

import (
	"strings"
	"testing"

	"repro/internal/linalg"
	"repro/internal/rng"
)

// evalFormulaBF evaluates a quantifier-free formula by brute force
// against an assignment (reference semantics for compile tests).
func evalFormulaBF(f Formula, env map[string]float64, schema Schema) bool {
	switch g := f.(type) {
	case AtomF:
		x := make(linalg.Vector, len(g.Vars))
		for i, v := range g.Vars {
			x[i] = env[v]
		}
		return g.Atom.Holds(x)
	case Pred:
		rel := schema[g.Name]
		x := make(linalg.Vector, len(g.Args))
		for i, v := range g.Args {
			x[i] = env[v]
		}
		return rel.Contains(x)
	case Not:
		return !evalFormulaBF(g.F, env, schema)
	case And:
		for _, sub := range g.Fs {
			if !evalFormulaBF(sub, env, schema) {
				return false
			}
		}
		return true
	case Or:
		for _, sub := range g.Fs {
			if evalFormulaBF(sub, env, schema) {
				return true
			}
		}
		return false
	default:
		panic("quantified formula in brute-force eval")
	}
}

func atomLE(vars []string, coef linalg.Vector, b float64) AtomF {
	return AtomF{Vars: vars, Atom: NewAtom(coef, b, false)}
}

func TestFreeVars(t *testing.T) {
	f := Exists{Vars: []string{"y"}, F: And{Fs: []Formula{
		atomLE([]string{"x", "y"}, linalg.Vector{1, 1}, 1),
		Pred{Name: "S", Args: []string{"y", "z"}},
	}}}
	got := FreeVars(f)
	want := []string{"x", "z"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("FreeVars = %v, want %v", got, want)
	}
}

func TestCompileAtomAndConjunction(t *testing.T) {
	// x >= 0 & y >= 0 & x + y <= 1 over (x, y): the triangle.
	f := And{Fs: []Formula{
		atomLE([]string{"x"}, linalg.Vector{-1}, 0),
		atomLE([]string{"y"}, linalg.Vector{-1}, 0),
		atomLE([]string{"x", "y"}, linalg.Vector{1, 1}, 1),
	}}
	rel, err := Compile(f, Schema{}, []string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Tuples) != 1 {
		t.Fatalf("tuples = %d, want 1", len(rel.Tuples))
	}
	if !rel.Contains(linalg.Vector{0.2, 0.2}) || rel.Contains(linalg.Vector{0.8, 0.8}) {
		t.Error("compiled triangle membership wrong")
	}
}

func TestCompileRepeatedVariableFolds(t *testing.T) {
	// x + x <= 1 → 2x <= 1.
	f := atomLE([]string{"x", "x"}, linalg.Vector{1, 1}, 1)
	rel, err := Compile(f, Schema{}, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if !rel.Contains(linalg.Vector{0.4}) || rel.Contains(linalg.Vector{0.6}) {
		t.Error("coefficient folding wrong")
	}
}

func TestCompilePredicateInlining(t *testing.T) {
	s := MustRelation("S", []string{"u", "v"}, Cube(2, 0, 1))
	schema := Schema{"S": s}
	// S(y, x): swapped arguments on a non-symmetric set.
	rect := Box(linalg.Vector{0, 0}, linalg.Vector{2, 1}) // 0<=u<=2, 0<=v<=1
	schema["Rect"] = MustRelation("Rect", []string{"u", "v"}, rect)
	f := Pred{Name: "Rect", Args: []string{"y", "x"}}
	rel, err := Compile(f, schema, []string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	// Rect(y, x) means 0<=y<=2 and 0<=x<=1.
	if !rel.Contains(linalg.Vector{0.5, 1.5}) {
		t.Error("swapped predicate should contain (x=0.5, y=1.5)")
	}
	if rel.Contains(linalg.Vector{1.5, 0.5}) {
		t.Error("swapped predicate should exclude (x=1.5, y=0.5)")
	}
}

func TestCompilePredicateArityError(t *testing.T) {
	s := MustRelation("S", []string{"u", "v"}, Cube(2, 0, 1))
	f := Pred{Name: "S", Args: []string{"x"}}
	if _, err := Compile(f, Schema{"S": s}, []string{"x"}); err == nil {
		t.Error("arity mismatch must fail")
	}
	if _, err := Compile(Pred{Name: "T", Args: []string{"x"}}, Schema{}, []string{"x"}); err == nil {
		t.Error("unknown predicate must fail")
	}
}

func TestCompileUnionAndNegationAgainstBruteForce(t *testing.T) {
	s := MustRelation("S", []string{"u", "v"}, Cube(2, 0, 2))
	tRel := MustRelation("T", []string{"u", "v"}, Cube(2, 1, 3))
	schema := Schema{"S": s, "T": tRel}
	// (S(x,y) & !T(x,y)) | (T(x,y) & x <= 1.5)
	f := Or{Fs: []Formula{
		And{Fs: []Formula{
			Pred{Name: "S", Args: []string{"x", "y"}},
			Not{F: Pred{Name: "T", Args: []string{"x", "y"}}},
		}},
		And{Fs: []Formula{
			Pred{Name: "T", Args: []string{"x", "y"}},
			atomLE([]string{"x"}, linalg.Vector{1}, 1.5),
		}},
	}}
	rel, err := Compile(f, schema, []string{"x", "y"})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2024)
	mismatches := 0
	for i := 0; i < 3000; i++ {
		x, y := r.Uniform(-0.5, 3.5), r.Uniform(-0.5, 3.5)
		// Skip the tolerance band around every boundary.
		if nearAny(x, -0.5, 0, 1, 1.5, 2, 3) || nearAny(y, -0.5, 0, 1, 2, 3) {
			continue
		}
		want := evalFormulaBF(f, map[string]float64{"x": x, "y": y}, schema)
		got := rel.Contains(linalg.Vector{x, y})
		if got != want {
			mismatches++
		}
	}
	if mismatches > 0 {
		t.Errorf("compiled relation disagrees with formula semantics at %d points", mismatches)
	}
}

func nearAny(v float64, bounds ...float64) bool {
	for _, b := range bounds {
		if v > b-1e-3 && v < b+1e-3 {
			return true
		}
	}
	return false
}

func TestCompileExistsProjection(t *testing.T) {
	// ∃y (0<=x, 0<=y, x+y<=1): projection of the triangle is [0, 1].
	f := Exists{Vars: []string{"y"}, F: And{Fs: []Formula{
		atomLE([]string{"x"}, linalg.Vector{-1}, 0),
		atomLE([]string{"y"}, linalg.Vector{-1}, 0),
		atomLE([]string{"x", "y"}, linalg.Vector{1, 1}, 1),
	}}}
	rel, err := Compile(f, Schema{}, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if !rel.Contains(linalg.Vector{0.0}) || !rel.Contains(linalg.Vector{0.99}) {
		t.Error("projection must contain [0,1)")
	}
	if rel.Contains(linalg.Vector{1.2}) || rel.Contains(linalg.Vector{-0.2}) {
		t.Error("projection must exclude points outside [0,1]")
	}
}

func TestCompileExistsOverUnion(t *testing.T) {
	// ∃y (S(x,y)) where S is a union of two boxes with different x-extents.
	s := MustRelation("S", []string{"u", "v"},
		Box(linalg.Vector{0, 0}, linalg.Vector{1, 1}),
		Box(linalg.Vector{3, 5}, linalg.Vector{4, 6}),
	)
	f := Exists{Vars: []string{"y"}, F: Pred{Name: "S", Args: []string{"x", "y"}}}
	rel, err := Compile(f, Schema{"S": s}, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		x    float64
		want bool
	}{{0.5, true}, {3.5, true}, {2.0, false}, {5.0, false}} {
		if got := rel.Contains(linalg.Vector{c.x}); got != c.want {
			t.Errorf("x=%g: got %v, want %v", c.x, got, c.want)
		}
	}
}

func TestCompileForAll(t *testing.T) {
	// ∀y (0<=y<=1 → x+y<=2) ≡ ∀y (y<0 | y>1 | x+y<=2): holds iff x <= 1.
	f := ForAll{Vars: []string{"y"}, F: Or{Fs: []Formula{
		AtomF{Vars: []string{"y"}, Atom: NewAtom(linalg.Vector{1}, 0, true)},   // y < 0
		AtomF{Vars: []string{"y"}, Atom: NewAtom(linalg.Vector{-1}, -1, true)}, // y > 1
		atomLE([]string{"x", "y"}, linalg.Vector{1, 1}, 2),
	}}}
	rel, err := Compile(f, Schema{}, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if !rel.Contains(linalg.Vector{0.5}) || !rel.Contains(linalg.Vector{-5}) {
		t.Error("forall must hold for x <= 1")
	}
	if rel.Contains(linalg.Vector{1.5}) {
		t.Error("forall must fail for x > 1")
	}
}

func TestCompileNestedQuantifierShadowing(t *testing.T) {
	// ∃y (y >= x & ∃y (y <= x - 1)): inner y shadows outer; formula is
	// satisfiable for every x (inner pick y = x-1, outer y = x).
	inner := Exists{Vars: []string{"y"}, F: atomLE([]string{"y", "x"}, linalg.Vector{1, -1}, -1)}
	f := Exists{Vars: []string{"y"}, F: And{Fs: []Formula{
		atomLE([]string{"x", "y"}, linalg.Vector{1, -1}, 0), // x <= y
		inner,
	}}}
	rel, err := Compile(f, Schema{}, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-2, 0, 3.7} {
		if !rel.Contains(linalg.Vector{x}) {
			t.Errorf("x=%g should satisfy the shadowed formula", x)
		}
	}
}

func TestCompileMissingFreeVariable(t *testing.T) {
	f := atomLE([]string{"x", "y"}, linalg.Vector{1, 1}, 1)
	if _, err := Compile(f, Schema{}, []string{"x"}); err == nil {
		t.Error("free variable not in output list must fail")
	}
}

func TestComplementRoundTrip(t *testing.T) {
	// Complement twice over a box returns the same membership away from
	// boundaries.
	r := MustRelation("R", []string{"x", "y"}, Cube(2, 0, 1),
		Box(linalg.Vector{2, 0}, linalg.Vector{3, 1}))
	cc := Complement(Complement(r))
	rr := rng.New(7)
	for i := 0; i < 2000; i++ {
		p := linalg.Vector{rr.Uniform(-1, 4), rr.Uniform(-1, 2)}
		if nearAny(p[0], 0, 1, 2, 3) || nearAny(p[1], 0, 1) {
			continue
		}
		if r.Contains(p) != cc.Contains(p) {
			t.Fatalf("double complement changed membership at %v", p)
		}
	}
}

func TestComplementOfEmptyIsEverything(t *testing.T) {
	empty := &Relation{Vars: []string{"x"}}
	c := Complement(empty)
	if !c.Contains(linalg.Vector{123}) {
		t.Error("complement of empty must be the whole line")
	}
}

func TestEmptyConjunctionIsTrue(t *testing.T) {
	rel, err := Compile(And{}, Schema{}, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if !rel.Contains(linalg.Vector{42}) {
		t.Error("empty conjunction must be the whole space")
	}
}

func TestEmptyDisjunctionIsFalse(t *testing.T) {
	rel, err := Compile(Or{}, Schema{}, []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Contains(linalg.Vector{0}) {
		t.Error("empty disjunction must be empty")
	}
}

func TestFormulaStrings(t *testing.T) {
	f := Exists{Vars: []string{"y"}, F: And{Fs: []Formula{
		Pred{Name: "S", Args: []string{"x", "y"}},
		Not{F: atomLE([]string{"x"}, linalg.Vector{1}, 0)},
	}}}
	s := f.String()
	for _, want := range []string{"exists y", "S(x, y)", "!"} {
		if !strings.Contains(s, want) {
			t.Errorf("formula string %q missing %q", s, want)
		}
	}
	fa := ForAll{Vars: []string{"z"}, F: Or{Fs: []Formula{atomLE([]string{"z"}, linalg.Vector{1}, 0)}}}
	if !strings.Contains(fa.String(), "forall z") {
		t.Errorf("forall string = %q", fa.String())
	}
}
