package constraint

import (
	"strings"
	"testing"

	"repro/internal/linalg"
	"repro/internal/rng"
)

func TestAtomHolds(t *testing.T) {
	a := NewAtom(linalg.Vector{1, 1}, 1, false) // x + y <= 1
	if !a.Holds(linalg.Vector{0.4, 0.4}) {
		t.Error("interior point must satisfy")
	}
	if !a.Holds(linalg.Vector{0.5, 0.5}) {
		t.Error("boundary must satisfy non-strict atom")
	}
	if a.Holds(linalg.Vector{0.8, 0.8}) {
		t.Error("exterior point must not satisfy")
	}
	s := NewAtom(linalg.Vector{1, 1}, 1, true) // x + y < 1
	if s.Holds(linalg.Vector{0.5, 0.5}) {
		t.Error("boundary must not satisfy strict atom")
	}
}

func TestAtomNegate(t *testing.T) {
	a := NewAtom(linalg.Vector{2, -1}, 3, false)
	n := a.Negate()
	// Any point satisfies exactly one of a, n (except the measure-zero
	// tolerance band).
	pts := []linalg.Vector{{0, 0}, {5, 0}, {0, -10}, {1.5, 0}, {-3, 2}}
	for _, p := range pts {
		ha, hn := a.Holds(p), n.Holds(p)
		if ha == hn {
			t.Errorf("point %v: atom %v, negation %v — must differ", p, ha, hn)
		}
	}
	if n.Strict == a.Strict {
		t.Error("negation must flip strictness")
	}
}

func TestAtomNormalizeAndTrivial(t *testing.T) {
	a := NewAtom(linalg.Vector{4, -2}, 8, false).Normalize()
	if !a.Coef.Equal(linalg.Vector{1, -0.5}, 1e-12) || a.B != 2 {
		t.Errorf("Normalize = %v <= %g", a.Coef, a.B)
	}
	trivial, sat := NewAtom(linalg.Vector{0, 0}, 1, false).IsTrivial()
	if !trivial || !sat {
		t.Error("0 <= 1 must be trivially satisfied")
	}
	trivial, sat = NewAtom(linalg.Vector{0, 0}, -1, false).IsTrivial()
	if !trivial || sat {
		t.Error("0 <= -1 must be trivially unsatisfied")
	}
	trivial, sat = NewAtom(linalg.Vector{0, 0}, 0, true).IsTrivial()
	if !trivial || sat {
		t.Error("0 < 0 must be trivially unsatisfied")
	}
	if trivial, _ := NewAtom(linalg.Vector{1, 0}, 0, false).IsTrivial(); trivial {
		t.Error("x <= 0 is not trivial")
	}
}

func TestTupleContains(t *testing.T) {
	tri := NewTuple(2,
		NewAtom(linalg.Vector{-1, 0}, 0, false),
		NewAtom(linalg.Vector{0, -1}, 0, false),
		NewAtom(linalg.Vector{1, 1}, 1, false),
	)
	if !tri.Contains(linalg.Vector{0.2, 0.2}) {
		t.Error("triangle interior")
	}
	if tri.Contains(linalg.Vector{0.8, 0.8}) {
		t.Error("outside hypotenuse")
	}
	if tri.Contains(linalg.Vector{-0.1, 0.2}) {
		t.Error("outside x >= 0")
	}
}

func TestTuplePanicsOnArityMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTuple with wrong-arity atom must panic")
		}
	}()
	NewTuple(2, NewAtom(linalg.Vector{1}, 0, false))
}

func TestTupleEmptiness(t *testing.T) {
	empty := NewTuple(1,
		NewAtom(linalg.Vector{1}, 0, false),
		NewAtom(linalg.Vector{-1}, -1, false), // x >= 1 and x <= 0
	)
	if !empty.IsEmpty() {
		t.Error("infeasible tuple must be empty")
	}
	if Cube(3, 0, 1).IsEmpty() {
		t.Error("cube must not be empty")
	}
}

func TestRelationContainsAndCanonicalIndex(t *testing.T) {
	left := Cube(1, 0, 2)
	right := Cube(1, 1, 3)
	r := MustRelation("R", []string{"x"}, left, right)
	if !r.Contains(linalg.Vector{0.5}) || !r.Contains(linalg.Vector{2.5}) {
		t.Error("union membership broken")
	}
	if r.Contains(linalg.Vector{3.5}) {
		t.Error("outside union")
	}
	if got := r.CanonicalIndex(linalg.Vector{1.5}); got != 0 {
		t.Errorf("overlap point canonical index = %d, want 0", got)
	}
	if got := r.CanonicalIndex(linalg.Vector{2.5}); got != 1 {
		t.Errorf("right-only point canonical index = %d, want 1", got)
	}
	if got := r.CanonicalIndex(linalg.Vector{5}); got != -1 {
		t.Errorf("outside point canonical index = %d, want -1", got)
	}
}

func TestRelationArityChecks(t *testing.T) {
	if _, err := NewRelation("R", []string{"x"}, Cube(2, 0, 1)); err == nil {
		t.Error("arity mismatch must error")
	}
	r1 := MustRelation("A", []string{"x"}, Cube(1, 0, 1))
	r2 := MustRelation("B", []string{"x", "y"}, Cube(2, 0, 1))
	if _, err := r1.Union(r2); err == nil {
		t.Error("union arity mismatch must error")
	}
	if _, err := r1.Intersect(r2); err == nil {
		t.Error("intersect arity mismatch must error")
	}
}

func TestRelationUnionIntersect(t *testing.T) {
	a := MustRelation("A", []string{"x", "y"}, Cube(2, 0, 2))
	b := MustRelation("B", []string{"x", "y"}, Cube(2, 1, 3))
	u, err := a.Union(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Tuples) != 2 {
		t.Errorf("union tuples = %d", len(u.Tuples))
	}
	i, err := a.Intersect(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(i.Tuples) != 1 {
		t.Fatalf("intersection tuples = %d", len(i.Tuples))
	}
	// Intersection is [1,2]^2.
	if !i.Contains(linalg.Vector{1.5, 1.5}) || i.Contains(linalg.Vector{0.5, 0.5}) {
		t.Error("intersection membership wrong")
	}
	// Disjoint intersection prunes to empty.
	c := MustRelation("C", []string{"x", "y"}, Cube(2, 10, 11))
	j, err := a.Intersect(c)
	if err != nil {
		t.Fatal(err)
	}
	if !j.IsEmpty() || len(j.Tuples) != 0 {
		t.Error("disjoint intersection must prune to empty")
	}
}

func TestRelationBoundingBox(t *testing.T) {
	r := MustRelation("R", []string{"x"}, Cube(1, 0, 1), Cube(1, 5, 7))
	lo, hi, ok := r.BoundingBox()
	if !ok {
		t.Fatal("bounding box failed")
	}
	if lo[0] != 0 || hi[0] != 7 {
		t.Errorf("box = [%g, %g], want [0, 7]", lo[0], hi[0])
	}
	// Unbounded tuple poisons the box.
	unb := NewTuple(1, NewAtom(linalg.Vector{-1}, 0, false))
	r2 := MustRelation("U", []string{"x"}, unb)
	if _, _, ok := r2.BoundingBox(); ok {
		t.Error("unbounded relation must not have a bounding box")
	}
	// Empty tuples are skipped.
	emptyT := NewTuple(1, NewAtom(linalg.Vector{1}, 0, false), NewAtom(linalg.Vector{-1}, -1, false))
	r3 := MustRelation("E", []string{"x"}, Cube(1, 2, 3), emptyT)
	lo, hi, ok = r3.BoundingBox()
	if !ok || lo[0] != 2 || hi[0] != 3 {
		t.Errorf("box with empty tuple = [%v, %v] ok=%v", lo, hi, ok)
	}
}

func TestShapeConstructors(t *testing.T) {
	r := rng.New(1)
	cube := Cube(4, -1, 1)
	simplex := Simplex(4, 1)
	cross := CrossPolytope(4, 1)
	inCube, inSimplex, inCross := 0, 0, 0
	for i := 0; i < 2000; i++ {
		x := make(linalg.Vector, 4)
		for j := range x {
			x[j] = r.Uniform(-1, 1)
		}
		if cube.Contains(x) {
			inCube++
		}
		var sum, l1 float64
		pos := true
		for _, v := range x {
			sum += v
			if v < 0 {
				pos = false
			}
			if v < 0 {
				l1 -= v
			} else {
				l1 += v
			}
		}
		if simplex.Contains(x) != (pos && sum <= 1+1e-9) {
			inSimplex++
		}
		if cross.Contains(x) != (l1 <= 1+1e-9) {
			inCross++
		}
	}
	if inCube != 2000 {
		t.Errorf("cube should contain every sample of [-1,1]^4, got %d", inCube)
	}
	if inSimplex != 0 {
		t.Errorf("simplex membership disagreed with the definition %d times", inSimplex)
	}
	if inCross != 0 {
		t.Errorf("cross-polytope membership disagreed with the l1 ball %d times", inCross)
	}
}

func TestBoxConstructor(t *testing.T) {
	b := Box(linalg.Vector{-1, 2}, linalg.Vector{1, 5})
	if !b.Contains(linalg.Vector{0, 3}) || b.Contains(linalg.Vector{0, 6}) || b.Contains(linalg.Vector{-2, 3}) {
		t.Error("Box membership wrong")
	}
}

func TestStringRendering(t *testing.T) {
	a := NewAtom(linalg.Vector{1, -2}, 3, false)
	if s := a.String(); !strings.Contains(s, "x0") || !strings.Contains(s, "<=") {
		t.Errorf("atom string = %q", s)
	}
	str := NewAtom(linalg.Vector{0, 1}, 0, true).String()
	if !strings.Contains(str, "<") || strings.Contains(str, "<=") {
		t.Errorf("strict atom string = %q", str)
	}
	zero := NewAtom(linalg.Vector{0, 0}, 1, false).String()
	if !strings.HasPrefix(zero, "0") {
		t.Errorf("zero atom string = %q", zero)
	}
	r := MustRelation("R", []string{"x", "y"}, Cube(2, 0, 1))
	if s := r.String(); !strings.Contains(s, "R(x, y)") {
		t.Errorf("relation string = %q", s)
	}
}

func TestSizeAccounting(t *testing.T) {
	cube := Cube(3, 0, 1) // 6 atoms * (3+1)
	if got := cube.Size(); got != 24 {
		t.Errorf("tuple size = %d, want 24", got)
	}
	r := MustRelation("R", []string{"x", "y", "z"}, cube, Simplex(3, 1))
	if got := r.Size(); got != 24+16 {
		t.Errorf("relation size = %d, want 40", got)
	}
}

func TestPruneEmpty(t *testing.T) {
	emptyT := NewTuple(1, NewAtom(linalg.Vector{1}, 0, false), NewAtom(linalg.Vector{-1}, -1, false))
	r := MustRelation("R", []string{"x"}, Cube(1, 0, 1), emptyT)
	pruned := r.PruneEmpty()
	if len(pruned.Tuples) != 1 {
		t.Errorf("pruned tuples = %d, want 1", len(pruned.Tuples))
	}
}
