package constraint

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
	"repro/internal/rng"
)

func TestSourceRoundTripBasic(t *testing.T) {
	r := MustRelation("S", []string{"x", "y"},
		Cube(2, 0, 1),
		NewTuple(2,
			NewAtom(linalg.Vector{1, 1}, 1, true),
			NewAtom(linalg.Vector{-1, 0}, 0, false),
			NewAtom(linalg.Vector{0, -1}, 0, false),
		),
	)
	src := r.Source()
	back, err := ParseRelation(strings.TrimPrefix(src, "rel "), nil)
	if err != nil {
		t.Fatalf("reparse %q: %v", src, err)
	}
	rr := rng.New(1)
	for i := 0; i < 500; i++ {
		p := linalg.Vector{rr.Uniform(-0.5, 1.5), rr.Uniform(-0.5, 1.5)}
		if r.Contains(p) != back.Contains(p) {
			t.Fatalf("round trip changed membership at %v (source %q)", p, src)
		}
	}
}

func TestSourceRoundTripProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rr := rng.New(seed)
		d := 1 + rr.Intn(3)
		nt := 1 + rr.Intn(3)
		vars := varNames(d)
		tuples := make([]Tuple, nt)
		for i := range tuples {
			tuples[i] = randomBoundedTuple(rr, d, rr.Intn(3))
		}
		r := MustRelation("G", vars, tuples...)
		back, err := ParseRelation(strings.TrimPrefix(r.Source(), "rel "), nil)
		if err != nil {
			return false
		}
		for i := 0; i < 40; i++ {
			p := make(linalg.Vector, d)
			for j := range p {
				p[j] = rr.Uniform(-1.5, 1.5)
			}
			if r.Contains(p) != back.Contains(p) {
				// Tolerance band retry.
				for j := range p {
					p[j] += 1e-5 * rr.Normal()
				}
				if r.Contains(p) != back.Contains(p) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSourceEmptyAndDegenerate(t *testing.T) {
	empty := &Relation{Name: "E", Vars: []string{"x"}}
	src := empty.Source()
	back, err := ParseRelation(strings.TrimPrefix(src, "rel "), nil)
	if err != nil {
		t.Fatalf("reparse %q: %v", src, err)
	}
	if back.Contains(linalg.Vector{0}) {
		t.Error("empty relation source must stay empty")
	}
	// Constraint-free tuple renders a tautology.
	full := MustRelation("F", []string{"x"}, NewTuple(1))
	src = full.Source()
	back, err = ParseRelation(strings.TrimPrefix(src, "rel "), nil)
	if err != nil {
		t.Fatalf("reparse %q: %v", src, err)
	}
	if !back.Contains(linalg.Vector{123}) {
		t.Error("full relation source must stay full")
	}
}
