package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSpanSafety(t *testing.T) {
	var s *Span
	s.Add("x", 1)
	s.Set("y", 2)
	s.SetKey("k")
	s.End()
	if got := s.StartChild("c"); got != nil {
		t.Fatalf("StartChild on nil = %v, want nil", got)
	}
	if s.Name() != "" || s.Key() != "" || s.TraceID() != "" {
		t.Fatalf("nil span accessors should return zero values")
	}
	if s.Duration() != 0 || s.String() != "" || s.Counters() != nil || s.Children() != nil {
		t.Fatalf("nil span accessors should return zero values")
	}
	s.Walk(func(*Span, int) { t.Fatal("walk visited a nil span") })
	if s.StageNanos() != nil {
		t.Fatalf("StageNanos on nil should be nil")
	}
}

func TestStartWithoutTraceIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, s := Start(ctx, "stage")
	if s != nil {
		t.Fatalf("Start without a trace returned a span")
	}
	if ctx2 != ctx {
		t.Fatalf("Start without a trace should return ctx unchanged")
	}
	if Enabled(ctx) {
		t.Fatalf("Enabled on a bare context")
	}
	if FromContext(ctx) != nil {
		t.Fatalf("FromContext on a bare context")
	}
}

func TestTraceTree(t *testing.T) {
	ctx, root := NewTrace(context.Background(), "query")
	if root == nil || root.TraceID() == "" {
		t.Fatalf("NewTrace must return a root with a trace ID")
	}
	if !Enabled(ctx) || FromContext(ctx) != root {
		t.Fatalf("context does not carry the root span")
	}

	cctx, child := Start(ctx, "prepare")
	if child == nil {
		t.Fatalf("Start under a trace returned nil")
	}
	child.SetKey("cdb1|plan|abc")
	child.Add("walk_steps", 100)
	child.Add("walk_steps", 28)
	child.Set("n", 64)
	child.End()
	d1 := child.Duration()
	time.Sleep(time.Millisecond)
	if child.Duration() != d1 {
		t.Fatalf("End did not freeze the duration")
	}

	_, g := Start(cctx, "bind")
	g.End()
	root.End()

	kids := root.Children()
	if len(kids) != 1 || kids[0] != child {
		t.Fatalf("root children = %v", kids)
	}
	if gk := child.Children(); len(gk) != 1 || gk[0].Name() != "bind" {
		t.Fatalf("child children = %v", gk)
	}

	counts := child.Counters()
	if len(counts) != 2 || counts[0].Name != "walk_steps" || counts[0].Value != 128 ||
		counts[1].Name != "n" || counts[1].Value != 64 {
		t.Fatalf("counters = %v", counts)
	}

	out := root.String()
	for _, want := range []string{"query ", "trace=" + root.TraceID(), "  prepare ", "key=cdb1|plan|abc", "walk_steps=128", "    bind "} {
		if !strings.Contains(out, want) {
			t.Fatalf("String() = %q, missing %q", out, want)
		}
	}

	var names []string
	var depths []int
	root.Walk(func(s *Span, d int) { names = append(names, s.Name()); depths = append(depths, d) })
	if len(names) != 3 || names[0] != "query" || names[1] != "prepare" || names[2] != "bind" {
		t.Fatalf("walk order = %v", names)
	}
	if depths[0] != 0 || depths[1] != 1 || depths[2] != 2 {
		t.Fatalf("walk depths = %v", depths)
	}

	stages := root.StageNanos()
	if len(stages) != 3 {
		t.Fatalf("StageNanos = %v", stages)
	}
	for _, c := range stages {
		if c.Value < 0 {
			t.Fatalf("negative stage time %v", c)
		}
	}
}

func TestSpanConcurrency(t *testing.T) {
	_, root := NewTrace(context.Background(), "root")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c := root.StartChild("w")
				c.Add("steps", 1)
				c.End()
				root.Add("total", 1)
			}
		}()
	}
	wg.Wait()
	root.End()
	if got := len(root.Children()); got != 800 {
		t.Fatalf("children = %d, want 800", got)
	}
	counts := root.Counters()
	if len(counts) != 1 || counts[0].Value != 800 {
		t.Fatalf("counters = %v", counts)
	}
}

func TestTraceIDsUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("trace id %q length %d", id, len(id))
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %q", id)
		}
		seen[id] = true
	}
}

func TestKindAndOutcomeLabels(t *testing.T) {
	if KindPlan.String() != "plan" || KindSymbolic.String() != "symbolic" || KindAlibi.String() != "alibi" {
		t.Fatalf("kind labels wrong")
	}
	if Hit.String() != "hit" || NegativeHit.String() != "negative_hit" || Miss.String() != "miss" || Eviction.String() != "eviction" {
		t.Fatalf("outcome labels wrong")
	}
}

func TestCostsTable(t *testing.T) {
	tab := NewCosts(2)
	a := tab.For("a")
	a.Preps.Add(1)
	a.PrepNanos.Add(1000)
	a.WalkSteps.Add(512)
	if again := tab.For("a"); again != a {
		t.Fatalf("For must return the same cell")
	}
	b := tab.For("b")
	b.Draws.Add(3)

	// Table is at capacity: further keys share the overflow cell.
	c := tab.For("c")
	d := tab.For("d")
	if c != d {
		t.Fatalf("overflow keys must share one cell")
	}
	c.Samples.Add(7)

	snap, ok := tab.Snapshot("a")
	if !ok || snap.Preps != 1 || snap.PrepNanos != 1000 || snap.WalkSteps != 512 || snap.Key != "a" {
		t.Fatalf("snapshot a = %+v ok=%v", snap, ok)
	}
	if _, ok := tab.Snapshot("zzz"); ok {
		t.Fatalf("snapshot of unknown key reported ok")
	}
	if snap.IsZero() {
		t.Fatalf("non-empty snapshot reported zero")
	}
	if !(CostSnapshot{Key: "k"}).IsZero() {
		t.Fatalf("empty snapshot not zero")
	}

	all := tab.Each()
	if len(all) != 3 { // a, b, <overflow>
		t.Fatalf("Each = %v", all)
	}
	if all[0].Key != overflowKey {
		t.Fatalf("sorted dump should lead with %q, got %q", overflowKey, all[0].Key)
	}
	if tab.Len() != 3 {
		t.Fatalf("Len = %d", tab.Len())
	}
}

func TestCostsNilSafety(t *testing.T) {
	var tab *Costs
	cell := tab.For("x")
	if cell == nil {
		t.Fatalf("nil table must hand back a throwaway cell")
	}
	cell.Preps.Add(1)
	if _, ok := tab.Snapshot("x"); ok {
		t.Fatalf("nil table should report nothing")
	}
	if tab.Each() != nil || tab.Len() != 0 {
		t.Fatalf("nil table accessors should return zero values")
	}
}

func TestCostsConcurrency(t *testing.T) {
	tab := NewCosts(8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				tab.For("shared").WalkSteps.Add(1)
			}
		}()
	}
	wg.Wait()
	snap, _ := tab.Snapshot("shared")
	if snap.WalkSteps != 1600 {
		t.Fatalf("WalkSteps = %d, want 1600", snap.WalkSteps)
	}
}

func TestNopSink(t *testing.T) {
	var s Sink = NopSink{}
	s.CacheEvent(KindPlan, Hit)
	s.CoalescedDraw()
	s.BatchJob()
}
