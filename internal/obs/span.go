package obs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one timed stage of a request: plan compilation, sampler
// preparation, a batched draw, a symbolic elimination. Spans form a
// tree rooted at the trace created by NewTrace; children are started
// with StartChild or, more commonly, by passing the span's context to
// the next stage and calling Start there.
//
// Every method is nil-safe: instrumented code calls Add/Set/End
// unconditionally, and when tracing is off (Start on a context with no
// trace returns a nil span) the calls cost one branch. Spans are safe
// for concurrent use — batch draws add counters from several workers.
type Span struct {
	name    string
	traceID string // set on the root span only
	start   time.Time

	mu       sync.Mutex
	key      string
	dur      time.Duration
	done     bool
	counts   []Counter
	children []*Span
}

// Counter is one named span counter, in insertion order.
type Counter struct {
	Name  string
	Value int64
}

// ctxKey is the context key for the active span.
type ctxKey struct{}

// NewTrace starts a new trace rooted at a span with the given name and
// returns a derived context carrying it. Use FromContext to recover the
// root later (e.g. to render it after the request finishes).
func NewTrace(ctx context.Context, name string) (context.Context, *Span) {
	s := &Span{name: name, traceID: NewTraceID(), start: time.Now()}
	return context.WithValue(ctx, ctxKey{}, s), s
}

// Start begins a child span under the span carried by ctx. When ctx
// carries no trace it returns ctx unchanged and a nil span, so the
// instrumented path pays only the context lookup.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(ctxKey{}).(*Span)
	if parent == nil {
		return ctx, nil
	}
	s := parent.StartChild(name)
	return context.WithValue(ctx, ctxKey{}, s), s
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// Enabled reports whether ctx carries an active trace. Stages that
// would pay real cost just assembling counter values can guard on it.
func Enabled(ctx context.Context) bool {
	return FromContext(ctx) != nil
}

// StartChild starts and returns a child span. On a nil receiver it
// returns nil.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End freezes the span's duration. Later Ends are ignored, so deferred
// and explicit Ends may coexist.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.done {
		s.done = true
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

// Add increments the named counter by v (creating it at zero first).
func (s *Span) Add(name string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for i := range s.counts {
		if s.counts[i].Name == name {
			s.counts[i].Value += v
			s.mu.Unlock()
			return
		}
	}
	s.counts = append(s.counts, Counter{Name: name, Value: v})
	s.mu.Unlock()
}

// Set sets the named counter to v.
func (s *Span) Set(name string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for i := range s.counts {
		if s.counts[i].Name == name {
			s.counts[i].Value = v
			s.mu.Unlock()
			return
		}
	}
	s.counts = append(s.counts, Counter{Name: name, Value: v})
	s.mu.Unlock()
}

// SetKey attaches the canonical plan (or sampler/symbolic cache) key
// the span worked on.
func (s *Span) SetKey(key string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.key = key
	s.mu.Unlock()
}

// Name returns the span name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// TraceID returns the trace identifier ("" on non-root and nil spans).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.traceID
}

// Key returns the attached canonical key ("" when unset or nil).
func (s *Span) Key() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.key
}

// Duration returns the frozen duration, or the running duration for a
// span not yet ended (0 on nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return s.dur
	}
	return time.Since(s.start)
}

// Counters returns a copy of the counters in insertion order.
func (s *Span) Counters() []Counter {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Counter(nil), s.counts...)
}

// Children returns a copy of the child slice.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Walk visits the span and its descendants depth-first, calling fn with
// each span and its depth (0 for the receiver). A nil receiver is a
// no-op.
func (s *Span) Walk(fn func(s *Span, depth int)) {
	if s == nil {
		return
	}
	s.walk(fn, 0)
}

func (s *Span) walk(fn func(*Span, int), depth int) {
	fn(s, depth)
	for _, c := range s.Children() {
		c.walk(fn, depth+1)
	}
}

// String renders the span tree with durations, keys and counters:
//
//	query 12.3ms trace=5f1d…
//	  plan.compile 0.8ms
//	  sample.batch 11.2ms key=cdb1|plan|…  n=256 walk_steps=81920
func (s *Span) String() string {
	if s == nil {
		return ""
	}
	var sb strings.Builder
	s.Walk(func(sp *Span, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&sb, "%s %s", sp.Name(), fmtDuration(sp.Duration()))
		if id := sp.TraceID(); id != "" {
			fmt.Fprintf(&sb, " trace=%s", id)
		}
		if k := sp.Key(); k != "" {
			fmt.Fprintf(&sb, " key=%s", k)
		}
		for _, c := range sp.Counters() {
			fmt.Fprintf(&sb, " %s=%d", c.Name, c.Value)
		}
		sb.WriteByte('\n')
	})
	return sb.String()
}

// fmtDuration renders a duration with stable precision for terminals.
func fmtDuration(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// StageNanos flattens the tree into cumulative nanoseconds per span
// name, sorted by name — the input for per-stage histograms.
func (s *Span) StageNanos() []Counter {
	if s == nil {
		return nil
	}
	acc := make(map[string]int64)
	s.Walk(func(sp *Span, _ int) {
		acc[sp.Name()] += sp.Duration().Nanoseconds()
	})
	out := make([]Counter, 0, len(acc))
	for name, ns := range acc {
		out = append(out, Counter{Name: name, Value: ns})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
