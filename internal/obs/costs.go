package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Cost accumulates observed effort for one canonical key (a prepared
// plan, one of its disjuncts, a symbolic elimination or an alibi
// build). All fields are atomics: samplers on several workers update
// one Cost concurrently. Use Snapshot for a consistent-enough plain
// copy.
type Cost struct {
	// Preparation: rounding + volume passes behind a cache miss.
	Preps     atomic.Int64
	PrepNanos atomic.Int64

	// Batched draws: one Draws per executed (non-coalesced) draw,
	// Samples points produced, SampleNanos wall time of the draw,
	// QueueNanos cumulative pool queue wait, BindNanos per-seed binds.
	Draws       atomic.Int64
	Samples     atomic.Int64
	SampleNanos atomic.Int64
	QueueNanos  atomic.Int64
	Binds       atomic.Int64
	BindNanos   atomic.Int64
	Coalesced   atomic.Int64

	// Walk effort, aggregated across workers and draws.
	WalkSteps      atomic.Int64
	WalkAccepted   atomic.Int64
	OracleCalls    atomic.Int64
	InterruptPolls atomic.Int64

	// Rejection effort (union canonical-index rounds, intersection /
	// difference / projection trials).
	Rounds  atomic.Int64
	Accepts atomic.Int64

	// Symbolic (Fourier–Motzkin) effort.
	Evals      atomic.Int64
	ElimNanos  atomic.Int64
	ElimRounds atomic.Int64
	ElimVars   atomic.Int64
	AtomsIn    atomic.Int64
	AtomsOut   atomic.Int64

	// (ε, δ) budget ledger for volume estimation: per estimate, the
	// requested and achieved half-width ε and confidence δ are summed in
	// micro-units (1e-6), so requested/achieved averages are
	// sum/VolEstimates/1e6. Achieved can be worse than requested when
	// the per-phase Chernoff sample count hits its cap (VolCapped counts
	// those estimates) — exactly the silent accuracy loss this ledger
	// exists to make visible.
	VolEstimates       atomic.Int64
	VolEpsRequestedMu  atomic.Int64
	VolEpsAchievedMu   atomic.Int64
	VolDeltaRequestMu  atomic.Int64
	VolDeltaAchievedMu atomic.Int64
	VolCapped          atomic.Int64
}

// CostSnapshot is a plain copy of a Cost, suitable for reports and
// JSON.
type CostSnapshot struct {
	Key string `json:"key,omitempty"`

	Preps     int64 `json:"preps,omitempty"`
	PrepNanos int64 `json:"prep_nanos,omitempty"`

	Draws       int64 `json:"draws,omitempty"`
	Samples     int64 `json:"samples,omitempty"`
	SampleNanos int64 `json:"sample_nanos,omitempty"`
	QueueNanos  int64 `json:"queue_nanos,omitempty"`
	Binds       int64 `json:"binds,omitempty"`
	BindNanos   int64 `json:"bind_nanos,omitempty"`
	Coalesced   int64 `json:"coalesced,omitempty"`

	WalkSteps      int64 `json:"walk_steps,omitempty"`
	WalkAccepted   int64 `json:"walk_accepted,omitempty"`
	OracleCalls    int64 `json:"oracle_calls,omitempty"`
	InterruptPolls int64 `json:"interrupt_polls,omitempty"`

	Rounds  int64 `json:"rounds,omitempty"`
	Accepts int64 `json:"accepts,omitempty"`

	Evals      int64 `json:"evals,omitempty"`
	ElimNanos  int64 `json:"elim_nanos,omitempty"`
	ElimRounds int64 `json:"elim_rounds,omitempty"`
	ElimVars   int64 `json:"elim_vars,omitempty"`
	AtomsIn    int64 `json:"atoms_in,omitempty"`
	AtomsOut   int64 `json:"atoms_out,omitempty"`

	VolEstimates       int64 `json:"vol_estimates,omitempty"`
	VolEpsRequestedMu  int64 `json:"vol_eps_requested_micro,omitempty"`
	VolEpsAchievedMu   int64 `json:"vol_eps_achieved_micro,omitempty"`
	VolDeltaRequestMu  int64 `json:"vol_delta_requested_micro,omitempty"`
	VolDeltaAchievedMu int64 `json:"vol_delta_achieved_micro,omitempty"`
	VolCapped          int64 `json:"vol_capped,omitempty"`
}

// IsZero reports whether nothing has been observed.
func (c CostSnapshot) IsZero() bool {
	z := c
	z.Key = ""
	return z == CostSnapshot{}
}

// Snapshot copies the atomics into a CostSnapshot.
func (c *Cost) Snapshot() CostSnapshot {
	if c == nil {
		return CostSnapshot{}
	}
	return CostSnapshot{
		Preps:          c.Preps.Load(),
		PrepNanos:      c.PrepNanos.Load(),
		Draws:          c.Draws.Load(),
		Samples:        c.Samples.Load(),
		SampleNanos:    c.SampleNanos.Load(),
		QueueNanos:     c.QueueNanos.Load(),
		Binds:          c.Binds.Load(),
		BindNanos:      c.BindNanos.Load(),
		Coalesced:      c.Coalesced.Load(),
		WalkSteps:      c.WalkSteps.Load(),
		WalkAccepted:   c.WalkAccepted.Load(),
		OracleCalls:    c.OracleCalls.Load(),
		InterruptPolls: c.InterruptPolls.Load(),
		Rounds:         c.Rounds.Load(),
		Accepts:        c.Accepts.Load(),
		Evals:          c.Evals.Load(),
		ElimNanos:      c.ElimNanos.Load(),
		ElimRounds:     c.ElimRounds.Load(),
		ElimVars:       c.ElimVars.Load(),
		AtomsIn:        c.AtomsIn.Load(),
		AtomsOut:       c.AtomsOut.Load(),

		VolEstimates:       c.VolEstimates.Load(),
		VolEpsRequestedMu:  c.VolEpsRequestedMu.Load(),
		VolEpsAchievedMu:   c.VolEpsAchievedMu.Load(),
		VolDeltaRequestMu:  c.VolDeltaRequestMu.Load(),
		VolDeltaAchievedMu: c.VolDeltaAchievedMu.Load(),
		VolCapped:          c.VolCapped.Load(),
	}
}

// Micro converts a unitless quantity (an ε or δ) to the ledger's
// micro-unit fixed point, saturating rather than overflowing.
func Micro(v float64) int64 {
	switch {
	case v != v || v > 9e12: // NaN or absurd
		return 9e18
	case v < 0:
		return 0
	default:
		return int64(v*1e6 + 0.5)
	}
}

// RecordVolume adds one volume estimate to the cell's (ε, δ) ledger.
func (c *Cost) RecordVolume(epsReq, epsAch, deltaReq, deltaAch float64, capped bool) {
	c.VolEstimates.Add(1)
	c.VolEpsRequestedMu.Add(Micro(epsReq))
	c.VolEpsAchievedMu.Add(Micro(epsAch))
	c.VolDeltaRequestMu.Add(Micro(deltaReq))
	c.VolDeltaAchievedMu.Add(Micro(deltaAch))
	if capped {
		c.VolCapped.Add(1)
	}
}

// overflowKey aggregates observations once the table is full, so a key
// churn cannot grow the table without bound while totals stay honest.
const overflowKey = "<overflow>"

// Costs is a bounded concurrent table of per-key observed costs. Keys
// are the canonical cache keys (plan, per-disjunct "key#i", symbolic,
// alibi). Once capacity distinct keys exist, further keys share one
// overflow entry.
type Costs struct {
	mu  sync.RWMutex
	cap int
	m   map[string]*Cost
}

// NewCosts creates a table bounded to capacity distinct keys
// (minimum 1).
func NewCosts(capacity int) *Costs {
	if capacity < 1 {
		capacity = 1
	}
	return &Costs{cap: capacity, m: make(map[string]*Cost)}
}

// For returns the Cost cell for key, creating it if the table has
// room; at capacity it returns the shared overflow cell. A nil table
// returns a throwaway cell so callers never branch.
func (t *Costs) For(key string) *Cost {
	if t == nil {
		return &Cost{}
	}
	t.mu.RLock()
	c := t.m[key]
	t.mu.RUnlock()
	if c != nil {
		return c
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if c = t.m[key]; c != nil {
		return c
	}
	if len(t.m) >= t.cap {
		if c = t.m[overflowKey]; c == nil {
			c = &Cost{}
			t.m[overflowKey] = c
		}
		return c
	}
	c = &Cost{}
	t.m[key] = c
	return c
}

// Snapshot returns the observed cost for key; ok is false when nothing
// has been recorded under it.
func (t *Costs) Snapshot(key string) (CostSnapshot, bool) {
	if t == nil {
		return CostSnapshot{}, false
	}
	t.mu.RLock()
	c := t.m[key]
	t.mu.RUnlock()
	if c == nil {
		return CostSnapshot{}, false
	}
	s := c.Snapshot()
	s.Key = key
	return s, true
}

// Each returns snapshots of every key with recorded cost, sorted by
// key — the debug-endpoint dump.
func (t *Costs) Each() []CostSnapshot {
	if t == nil {
		return nil
	}
	t.mu.RLock()
	out := make([]CostSnapshot, 0, len(t.m))
	for key, c := range t.m {
		s := c.Snapshot()
		s.Key = key
		out = append(out, s)
	}
	t.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Len returns the number of distinct keys tracked.
func (t *Costs) Len() int {
	if t == nil {
		return 0
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.m)
}
