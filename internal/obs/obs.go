// Package obs is the observability layer threaded through every stage
// of the sampling pipeline: plan canonicalization, sampler preparation
// (rounding + volume), per-seed binds, walk epochs, batch execution,
// cache lookups and symbolic (Fourier–Motzkin) evaluation.
//
// It provides three small, allocation-conscious mechanisms:
//
//   - Span: a timed stage of one request, carrying counters and child
//     stages, propagated via context.Context. Every method is nil-safe,
//     so code paths instrument unconditionally and pay (almost) nothing
//     when no trace is active — one context lookup per stage, zero per
//     walk step.
//   - Sink: the event interface the runtime reports cache/pool events
//     through, with per-cache-kind attribution (plan / symbolic /
//     alibi) and hit/negative-hit/miss/eviction outcomes. The legacy
//     five-counter runtime.Hooks is adapted onto it.
//   - Costs: a bounded concurrent table of observed per-key costs —
//     preparation time, per-sample time, walk steps, LP membership
//     calls, rejection rounds, elimination rounds and atom growth —
//     keyed by the same canonical keys every cache uses. This is the
//     measured input a cost-based planner routes sub-plans by (the
//     regime flip of the paper: exact elimination wins at small
//     description sizes and loses doubly-exponentially as eliminated
//     variables grow — a cliff that must be observed, not assumed).
//
// The package depends only on the standard library, so every layer
// (walk, core, runtime, server, the cdb facade) can import it.
package obs

import (
	"fmt"
	"hash/fnv"
	"os"
	"strconv"
	"sync/atomic"
	"time"
)

// CacheKind labels which prepared cache an event belongs to.
type CacheKind uint8

const (
	// KindPlan is the prepared-sampler cache (canonical sampling plans,
	// time slices and windows).
	KindPlan CacheKind = iota
	// KindSymbolic is the prepared-symbolic cache (eliminated DNF
	// relations and their exact volumes).
	KindSymbolic
	// KindAlibi is the prepared-alibi cache (meet regions, meeting-time
	// intervals and their volume observables).
	KindAlibi
)

// String returns the metric label of the kind.
func (k CacheKind) String() string {
	switch k {
	case KindSymbolic:
		return "symbolic"
	case KindAlibi:
		return "alibi"
	default:
		return "plan"
	}
}

// CacheOutcome is what happened on one cache access (or maintenance
// pass).
type CacheOutcome uint8

const (
	// Hit is a warm positive entry (including joins of an in-flight
	// build).
	Hit CacheOutcome = iota
	// NegativeHit is a replayed cached verdict (empty target,
	// projection-needing plan, out-of-support slice).
	NegativeHit
	// Miss is a cold build.
	Miss
	// Eviction is an LRU eviction.
	Eviction
)

// String returns the metric label of the outcome.
func (o CacheOutcome) String() string {
	switch o {
	case NegativeHit:
		return "negative_hit"
	case Miss:
		return "miss"
	case Eviction:
		return "eviction"
	default:
		return "hit"
	}
}

// Sink receives runtime events; a serving layer maps them onto its
// metrics. All methods must be safe for concurrent use. A nil Sink is
// valid and drops every event.
//
// This is the richer successor of the five-method runtime.Hooks: cache
// events carry the cache kind and distinguish negative hits, so a
// metrics layer can report per-kind hit rates and negative-entry
// traffic without guessing.
type Sink interface {
	// CacheEvent records one cache access outcome for the given kind.
	CacheEvent(kind CacheKind, outcome CacheOutcome)
	// CoalescedDraw records a batched draw served by an identical
	// in-flight draw.
	CoalescedDraw()
	// BatchJob records one worker-pool job execution.
	BatchJob()
}

// AuditOutcome is the verdict of one statistical audit check.
type AuditOutcome uint8

const (
	// AuditPass means the empirical statistic stayed inside the warn
	// threshold.
	AuditPass AuditOutcome = iota
	// AuditWarn means the statistic exceeded the warn threshold but not
	// the fail threshold — worth watching, not yet quarantined.
	AuditWarn
	// AuditFail means the statistic exceeded the fail threshold: the
	// cached sampler's output is inconsistent with the exact geometry.
	AuditFail
)

// String returns the metric label of the outcome.
func (o AuditOutcome) String() string {
	switch o {
	case AuditWarn:
		return "warn"
	case AuditFail:
		return "fail"
	default:
		return "pass"
	}
}

// MarshalJSON renders the label ("pass"/"warn"/"fail"), not the raw
// enum value — audit events are a JSON API surface (/v1/audit).
func (o AuditOutcome) MarshalJSON() ([]byte, error) {
	return []byte(`"` + o.String() + `"`), nil
}

// UnmarshalJSON accepts the labels MarshalJSON produces.
func (o *AuditOutcome) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"pass"`:
		*o = AuditPass
	case `"warn"`:
		*o = AuditWarn
	case `"fail"`:
		*o = AuditFail
	default:
		return fmt.Errorf("obs: unknown audit outcome %s", b)
	}
	return nil
}

// AuditEvent is one statistical check of a warm cached sampler against
// its exact (symbolic) geometry: the background auditor re-draws a
// small batch and compares empirical cell masses and per-disjunct draw
// shares against exact volumes. Stat is the check's normalized test
// statistic (worst per-cell z-score for "cells"/"shares"), Threshold
// the fail bound it is compared to.
type AuditEvent struct {
	// Key is the prepared-sampler cache key that was audited.
	Key string `json:"key"`
	// Check names the statistical test: "cells" (chi-square cell masses
	// vs exact volumes), "shares" (per-disjunct canonical draw shares vs
	// exact inclusion–exclusion volumes) or "mixing" (walk diagnostics).
	Check string `json:"check"`
	// Outcome is the verdict.
	Outcome AuditOutcome `json:"outcome"`
	// Stat is the observed test statistic, Threshold the fail bound.
	Stat      float64 `json:"stat"`
	Threshold float64 `json:"threshold"`
	// Samples is the number of audit draws behind the statistic.
	Samples int `json:"samples"`
	// Detail localizes the worst deviation (cell index, member index).
	Detail string `json:"detail,omitempty"`
}

// AuditSink receives audit events. Sink implementors may additionally
// implement AuditSink to observe the background auditor; the runtime
// type-asserts, so existing Sink implementations keep working
// unchanged. AuditEvent must be safe for concurrent use.
type AuditSink interface {
	AuditEvent(ev AuditEvent)
}

// NopSink is the no-op Sink: embed it to implement only the events a
// layer cares about.
type NopSink struct{}

// CacheEvent drops the event.
func (NopSink) CacheEvent(CacheKind, CacheOutcome) {}

// CoalescedDraw drops the event.
func (NopSink) CoalescedDraw() {}

// BatchJob drops the event.
func (NopSink) BatchJob() {}

var _ Sink = NopSink{}

// Trace IDs: unique per process run, cheap to mint (one atomic add and
// one short FNV hash), stable in width (16 hex digits) so log lines
// align. The base folds in the process start time and pid, so IDs from
// different runs do not collide in aggregated logs.
var (
	traceSeq  atomic.Uint64
	traceBase = func() uint64 {
		h := fnv.New64a()
		h.Write([]byte(time.Now().Format(time.RFC3339Nano)))
		h.Write([]byte{0x1f})
		h.Write([]byte(strconv.Itoa(os.Getpid())))
		return h.Sum64()
	}()
)

// NewTraceID mints a process-unique 16-hex-digit trace identifier.
func NewTraceID() string {
	h := fnv.New64a()
	var buf [16]byte
	putUint64(buf[:8], traceBase)
	putUint64(buf[8:], traceSeq.Add(1))
	h.Write(buf[:])
	const hexdigits = "0123456789abcdef"
	v := h.Sum64()
	var out [16]byte
	for i := 15; i >= 0; i-- {
		out[i] = hexdigits[v&0xf]
		v >>= 4
	}
	return string(out[:])
}

// putUint64 is binary.BigEndian.PutUint64 without the import.
func putUint64(b []byte, v uint64) {
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}
