package quality

import "math"

// essWindow is the ring-buffer length of the autocorrelation
// accumulator; essMaxLag the largest lag estimated. The scalar tracked
// is a fixed 1-D projection of each draw (the sum of coordinates),
// which is where a slowly mixing walk shows its correlation first.
const (
	essWindow = 1024
	essMaxLag = 32
)

// ESSAccumulator estimates lag-k autocorrelation and effective sample
// size of a scalar stream over a sliding window. Not safe for
// concurrent use; callers serialize (the Tracker does).
type ESSAccumulator struct {
	ring [essWindow]float64
	n    int64 // total observed
	fill int   // valid entries in ring
	next int   // ring write index
}

// Observe appends one scalar.
func (a *ESSAccumulator) Observe(v float64) {
	a.ring[a.next] = v
	a.next = (a.next + 1) % essWindow
	if a.fill < essWindow {
		a.fill++
	}
	a.n++
}

// Count returns the total number of observed scalars.
func (a *ESSAccumulator) Count() int64 { return a.n }

// Autocorrelation returns the lag-k sample autocorrelation over the
// window (0 when the window is too short or the stream is constant).
func (a *ESSAccumulator) Autocorrelation(k int) float64 {
	rho := a.autocovs(k)
	if rho == nil {
		return 0
	}
	return rho[k]
}

// autocovs returns normalized autocorrelations rho[0..maxLag] (rho[0]
// = 1), or nil when undefined.
func (a *ESSAccumulator) autocovs(maxLag int) []float64 {
	n := a.fill
	if maxLag < 0 || maxLag >= n || n < 4 {
		return nil
	}
	// Chronological copy of the window.
	xs := make([]float64, n)
	start := a.next - n
	if start < 0 {
		start += essWindow
	}
	for i := 0; i < n; i++ {
		xs[i] = a.ring[(start+i)%essWindow]
	}
	var mean float64
	for _, v := range xs {
		mean += v
	}
	mean /= float64(n)
	var c0 float64
	for _, v := range xs {
		d := v - mean
		c0 += d * d
	}
	if c0 <= 0 {
		return nil
	}
	rho := make([]float64, maxLag+1)
	rho[0] = 1
	for k := 1; k <= maxLag; k++ {
		var ck float64
		for i := 0; i+k < n; i++ {
			ck += (xs[i] - mean) * (xs[i+k] - mean)
		}
		rho[k] = ck / c0
	}
	return rho
}

// ESS returns the effective sample size of the window:
// N / (1 + 2 Σ_k rho_k), summing positive-prefix autocorrelations
// (Geyer's initial positive sequence cut at the first non-positive
// pair keeps the estimate stable under noise). An i.i.d. stream
// returns ≈ N; a sticky walk far less.
func (a *ESSAccumulator) ESS() float64 {
	n := a.fill
	rho := a.autocovs(min(essMaxLag, n-1))
	if rho == nil {
		return float64(n)
	}
	var sum float64
	for k := 1; k+1 < len(rho); k += 2 {
		pair := rho[k] + rho[k+1]
		if pair <= 0 {
			break
		}
		sum += pair
	}
	ess := float64(n) / (1 + 2*sum)
	return math.Max(1, math.Min(ess, float64(n)))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
