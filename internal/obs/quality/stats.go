package quality

import "math"

// ChiSquare returns the chi-square statistic of observed counts against
// expected probabilities: Σ (n_i − N·p_i)² / (N·p_i) over cells with
// p_i > 0, together with the degrees of freedom (cells with p_i > 0,
// minus one). Counts falling in zero-probability cells contribute their
// full squared mass against a floor expectation, so impossible draws
// are loudly wrong rather than silently dropped.
func ChiSquare(counts []int64, probs []float64) (stat float64, dof int) {
	var n int64
	for _, c := range counts {
		n += c
	}
	if n == 0 {
		return 0, 0
	}
	nf := float64(n)
	const floor = 0.5 // expectation floor for p_i = 0 cells
	live := 0
	for i, c := range counts {
		p := 0.0
		if i < len(probs) {
			p = probs[i]
		}
		if p > 0 {
			live++
			e := nf * p
			d := float64(c) - e
			stat += d * d / e
		} else if c > 0 {
			d := float64(c)
			stat += d * d / floor
		}
	}
	if live > 1 {
		dof = live - 1
	}
	return stat, dof
}

// ChiSquareTwoSample compares two count vectors over the same cells —
// the reference-window drift test. Returns the statistic and degrees of
// freedom (cells live in either sample, minus one).
func ChiSquareTwoSample(a, b []int64) (stat float64, dof int) {
	var na, nb int64
	for _, c := range a {
		na += c
	}
	for _, c := range b {
		nb += c
	}
	if na == 0 || nb == 0 {
		return 0, 0
	}
	ka := math.Sqrt(float64(nb) / float64(na))
	kb := 1 / ka
	live := 0
	for i := range a {
		var bi int64
		if i < len(b) {
			bi = b[i]
		}
		if a[i]+bi == 0 {
			continue
		}
		live++
		d := ka*float64(a[i]) - kb*float64(bi)
		stat += d * d / float64(a[i]+bi)
	}
	if live > 1 {
		dof = live - 1
	}
	return stat, dof
}

// ChiSquarePValue approximates P(X² ≥ stat) for a chi-square variable
// with dof degrees of freedom via the Wilson–Hilferty cube-root normal
// approximation — accurate to a few 1e-3 for dof ≥ 3, plenty for
// pass/warn/fail thresholds.
func ChiSquarePValue(stat float64, dof int) float64 {
	if dof <= 0 {
		return 1
	}
	k := float64(dof)
	z := (math.Cbrt(stat/k) - (1 - 2/(9*k))) / math.Sqrt(2/(9*k))
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// CellVerdict is the per-cell outcome of an ε-tolerance binomial test.
type CellVerdict struct {
	// Worst is the largest tolerance-normalized z-score over cells: the
	// observed deviation beyond the ε allowance, in units of the
	// binomial standard error. ≤ WarnZ passes, ≤ FailZ warns, above
	// fails.
	Worst float64
	// Cell is the index of the worst cell.
	Cell int
	// Samples is the total count.
	Samples int64
}

// CellTest runs the ε-tolerance binomial test per cell: a cell fails
// only when |n_i/N − p_i| exceeds ε·p_i (the paper's ε-closeness
// allowance — a correct generator is promised no better) by more than
// z·sqrt(p_i(1−p_i)/N) (sampling noise at z standard errors). The
// returned verdict carries the worst z over cells:
//
//	z_i = (|n_i/N − p_i| − ε·p_i) / sqrt(p_i(1−p_i)/N)
//
// clamped below at 0. Cells with p_i = 0 use a pseudo-probability of
// 1/(2N) so impossible mass registers.
func CellTest(counts []int64, probs []float64, eps float64) CellVerdict {
	var n int64
	for _, c := range counts {
		n += c
	}
	v := CellVerdict{Samples: n, Cell: -1}
	if n == 0 {
		return v
	}
	nf := float64(n)
	for i, c := range counts {
		p := 0.0
		if i < len(probs) {
			p = probs[i]
		}
		if p <= 0 {
			if c == 0 {
				continue
			}
			p = 0.5 / nf
		}
		dev := math.Abs(float64(c)/nf-p) - eps*p
		if dev <= 0 {
			continue
		}
		se := math.Sqrt(p * (1 - p) / nf)
		if se <= 0 {
			se = 1 / nf
		}
		if z := dev / se; z > v.Worst {
			v.Worst, v.Cell = z, i
		}
	}
	return v
}
