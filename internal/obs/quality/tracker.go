package quality

import (
	"sort"
	"sync"

	"repro/internal/linalg"
	"repro/internal/obs"
)

// RoundsHistBuckets is the number of buckets in the rejection-round
// histogram: bucket i counts accepted samples that needed
// 2^i … 2^(i+1)−1 canonical-index rounds (the last bucket is open).
const RoundsHistBuckets = 8

// RoundsBucket returns the histogram bucket of a rounds-per-sample
// count.
func RoundsBucket(rounds int64) int {
	b := 0
	for rounds > 1 && b < RoundsHistBuckets-1 {
		rounds >>= 1
		b++
	}
	return b
}

// Effort is the per-draw effort attached to an observation — a plain
// superset of core.SampleStats so quality does not import core.
type Effort struct {
	WalkSteps      int64
	WalkAccepted   int64
	OracleCalls    int64
	InterruptPolls int64
	Rounds         int64
	Accepts        int64
	// RoundsHist is the rejection-round distribution (see RoundsBucket).
	RoundsHist [RoundsHistBuckets]int64
	// MemberDraws counts accepted draws per canonical union member.
	MemberDraws []int64
}

// refFreeze is the sample count at which the drift reference window is
// frozen: later draws are compared against this early snapshot by a
// two-sample chi-square, so mixture drift shows up without any exact
// oracle.
const refFreeze = 2048

// maxTrackedKeys bounds the tracker; keys beyond the cap are dropped
// (observability must never become the memory leak it watches for).
const maxTrackedKeys = 512

// entry is the per-sampler accumulator state.
type entry struct {
	mu sync.Mutex

	part       *Partition
	memberVols []float64

	counts    []int64 // per-cell draw counts (total)
	refCounts []int64 // frozen reference window (nil until frozen)
	samples   int64

	memberDraws []int64
	eff         Effort
	ess         ESSAccumulator

	// Exact data, installed by the auditor.
	exactCellProbs []float64
	exactShares    []float64
	exactVol       float64

	// Audit status, installed by the auditor. Flagged is sticky while
	// failing and cleared by a later pass — quarantine, never silently.
	audited      bool
	auditRounds  int64
	auditOutcome obs.AuditOutcome
	lastEvents   []obs.AuditEvent
	flagged      bool
}

// Tracker accumulates per-prepared-sampler quality diagnostics, keyed
// by the same cache keys the runtime uses. Safe for concurrent use. A
// nil Tracker drops everything.
type Tracker struct {
	mu       sync.RWMutex
	maxCells int
	m        map[string]*entry
}

// NewTracker builds a tracker whose cell partitions have at most
// maxCells cells (default 16).
func NewTracker(maxCells int) *Tracker {
	if maxCells <= 0 {
		maxCells = 16
	}
	return &Tracker{maxCells: maxCells, m: make(map[string]*entry)}
}

// lookup returns the entry for key, or nil.
func (t *Tracker) lookup(key string) *entry {
	if t == nil {
		return nil
	}
	t.mu.RLock()
	e := t.m[key]
	t.mu.RUnlock()
	return e
}

// Bind registers (or refreshes) the sampler geometry under key: the
// bounding box that seeds the deterministic cell partition and the
// per-member volume estimates. Repeat binds of a warm sampler are
// cheap no-ops.
func (t *Tracker) Bind(key string, lo, hi linalg.Vector, memberVols []float64) {
	if t == nil || len(lo) == 0 {
		return
	}
	if e := t.lookup(key); e != nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.m[key] != nil || len(t.m) >= maxTrackedKeys {
		return
	}
	part := NewPartition(lo, hi, t.maxCells)
	e := &entry{
		part:        part,
		memberVols:  append([]float64(nil), memberVols...),
		counts:      make([]int64, part.Cells()),
		memberDraws: make([]int64, len(memberVols)),
	}
	t.m[key] = e
}

// ObserveDraw folds one executed batch of draws into the accumulator:
// cell counts, member draw shares, walk effort and the ESS stream. A
// key that was never Bind-ed is ignored.
func (t *Tracker) ObserveDraw(key string, pts []linalg.Vector, eff Effort) {
	e := t.lookup(key)
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, x := range pts {
		if len(x) != e.part.Dim() {
			continue
		}
		e.counts[e.part.CellOf(x)]++
		e.samples++
		var s float64
		for _, v := range x {
			s += v
		}
		e.ess.Observe(s)
	}
	if e.refCounts == nil && e.samples >= refFreeze {
		e.refCounts = append([]int64(nil), e.counts...)
	}
	e.eff.WalkSteps += eff.WalkSteps
	e.eff.WalkAccepted += eff.WalkAccepted
	e.eff.OracleCalls += eff.OracleCalls
	e.eff.InterruptPolls += eff.InterruptPolls
	e.eff.Rounds += eff.Rounds
	e.eff.Accepts += eff.Accepts
	for i, v := range eff.RoundsHist {
		e.eff.RoundsHist[i] += v
	}
	for i, v := range eff.MemberDraws {
		if i < len(e.memberDraws) {
			e.memberDraws[i] += v
		}
	}
}

// SetExact installs exact (symbolically computed) references for key:
// per-cell masses of the partition, per-member canonical shares
// (cumulative inclusion–exclusion volume differences) and the exact
// total volume. Installed once by the first audit and reused.
func (t *Tracker) SetExact(key string, cellProbs, shares []float64, vol float64) {
	e := t.lookup(key)
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.exactCellProbs = append([]float64(nil), cellProbs...)
	e.exactShares = append([]float64(nil), shares...)
	e.exactVol = vol
}

// HasExact reports whether exact references are already installed.
func (t *Tracker) HasExact(key string) bool {
	e := t.lookup(key)
	if e == nil {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.exactCellProbs != nil
}

// Partition returns the cell partition bound under key (nil when
// unknown) — the auditor integrates exact masses over its cells.
func (t *Tracker) Partition(key string) *Partition {
	e := t.lookup(key)
	if e == nil {
		return nil
	}
	return e.part
}

// MemberVolumes returns the per-member volume estimates bound under
// key.
func (t *Tracker) MemberVolumes(key string) []float64 {
	e := t.lookup(key)
	if e == nil {
		return nil
	}
	return append([]float64(nil), e.memberVols...)
}

// RecordAudit installs the outcome of one audit round: the events, the
// worst outcome, and the flag. Fail flags; pass clears — a failing
// entry is quarantined visibly, never silently, and never evicted.
func (t *Tracker) RecordAudit(key string, events []obs.AuditEvent) {
	e := t.lookup(key)
	if e == nil {
		return
	}
	worst := obs.AuditPass
	for _, ev := range events {
		if ev.Outcome > worst {
			worst = ev.Outcome
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.audited = true
	e.auditRounds++
	e.auditOutcome = worst
	e.lastEvents = append([]obs.AuditEvent(nil), events...)
	switch worst {
	case obs.AuditFail:
		e.flagged = true
	case obs.AuditPass:
		e.flagged = false
	}
}

// Flagged returns the keys currently quarantined by a failing audit,
// sorted.
func (t *Tracker) Flagged() []string {
	if t == nil {
		return nil
	}
	t.mu.RLock()
	keys := make([]string, 0, len(t.m))
	for k := range t.m {
		keys = append(keys, k)
	}
	t.mu.RUnlock()
	var out []string
	for _, k := range keys {
		e := t.lookup(k)
		e.mu.Lock()
		f := e.flagged
		e.mu.Unlock()
		if f {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Keys returns all tracked keys, sorted.
func (t *Tracker) Keys() []string {
	if t == nil {
		return nil
	}
	t.mu.RLock()
	keys := make([]string, 0, len(t.m))
	for k := range t.m {
		keys = append(keys, k)
	}
	t.mu.RUnlock()
	sort.Strings(keys)
	return keys
}

// Report is a point-in-time quality report for one prepared sampler.
type Report struct {
	Key     string `json:"key"`
	Samples int64  `json:"samples"`
	Cells   int    `json:"cells"`

	// Uniformity: one-sample chi-square against exact cell masses (only
	// when an audit installed them) and the reference-window drift test
	// (available after refFreeze samples with no oracle at all).
	CellCounts     []int64   `json:"cell_counts,omitempty"`
	ExactCellProbs []float64 `json:"exact_cell_probs,omitempty"`
	ChiSquare      float64   `json:"chi_square,omitempty"`
	ChiSquareDOF   int       `json:"chi_square_dof,omitempty"`
	PValue         float64   `json:"p_value,omitempty"`
	DriftStat      float64   `json:"drift_stat,omitempty"`
	DriftPValue    float64   `json:"drift_p_value,omitempty"`

	// Mixture: observed canonical-member draw shares vs the exact
	// shares (cumulative inclusion–exclusion volume differences).
	MemberDraws  []int64   `json:"member_draws,omitempty"`
	MemberShares []float64 `json:"member_shares,omitempty"`
	ExactShares  []float64 `json:"exact_shares,omitempty"`

	// Mixing: walk acceptance, rejection rounds, autocorrelation.
	AcceptanceRate  float64 `json:"acceptance_rate,omitempty"`
	RoundsPerSample float64 `json:"rounds_per_sample,omitempty"`
	RoundsHist      []int64 `json:"rounds_hist,omitempty"`
	ESS             float64 `json:"ess,omitempty"`
	ESSWindow       int     `json:"ess_window,omitempty"`
	Autocorr1       float64 `json:"autocorr_lag1,omitempty"`

	// Audit status.
	Audited      bool             `json:"audited,omitempty"`
	AuditRounds  int64            `json:"audit_rounds,omitempty"`
	AuditOutcome string           `json:"audit_outcome,omitempty"`
	LastEvents   []obs.AuditEvent `json:"last_events,omitempty"`
	Flagged      bool             `json:"flagged,omitempty"`
	ExactVolume  float64          `json:"exact_volume,omitempty"`
}

// Report assembles the current quality report for key.
func (t *Tracker) Report(key string) (Report, bool) {
	e := t.lookup(key)
	if e == nil {
		return Report{}, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	r := Report{
		Key:        key,
		Samples:    e.samples,
		Cells:      e.part.Cells(),
		CellCounts: append([]int64(nil), e.counts...),
	}
	if e.exactCellProbs != nil {
		r.ExactCellProbs = append([]float64(nil), e.exactCellProbs...)
		r.ChiSquare, r.ChiSquareDOF = ChiSquare(e.counts, e.exactCellProbs)
		r.PValue = ChiSquarePValue(r.ChiSquare, r.ChiSquareDOF)
	}
	if e.refCounts != nil {
		cur := make([]int64, len(e.counts))
		for i := range cur {
			cur[i] = e.counts[i] - e.refCounts[i]
		}
		var stat float64
		var dof int
		stat, dof = ChiSquareTwoSample(e.refCounts, cur)
		r.DriftStat = stat
		r.DriftPValue = ChiSquarePValue(stat, dof)
	}
	r.MemberDraws = append([]int64(nil), e.memberDraws...)
	var md int64
	for _, v := range e.memberDraws {
		md += v
	}
	if md > 0 {
		r.MemberShares = make([]float64, len(e.memberDraws))
		for i, v := range e.memberDraws {
			r.MemberShares[i] = float64(v) / float64(md)
		}
	}
	if e.exactShares != nil {
		r.ExactShares = append([]float64(nil), e.exactShares...)
	}
	if e.eff.WalkSteps > 0 {
		r.AcceptanceRate = float64(e.eff.WalkAccepted) / float64(e.eff.WalkSteps)
	}
	if e.eff.Accepts > 0 {
		r.RoundsPerSample = float64(e.eff.Rounds) / float64(e.eff.Accepts)
	}
	var histTotal int64
	for _, v := range e.eff.RoundsHist {
		histTotal += v
	}
	if histTotal > 0 {
		r.RoundsHist = append([]int64(nil), e.eff.RoundsHist[:]...)
	}
	if w := e.ess.fill; w >= 4 {
		r.ESS = e.ess.ESS()
		r.ESSWindow = w
		r.Autocorr1 = e.ess.Autocorrelation(1)
	}
	r.Audited = e.audited
	r.AuditRounds = e.auditRounds
	if e.audited {
		r.AuditOutcome = e.auditOutcome.String()
	}
	r.LastEvents = append([]obs.AuditEvent(nil), e.lastEvents...)
	r.Flagged = e.flagged
	r.ExactVolume = e.exactVol
	return r, true
}

// Reports returns reports for every tracked key, sorted by key.
func (t *Tracker) Reports() []Report {
	keys := t.Keys()
	out := make([]Report, 0, len(keys))
	for _, k := range keys {
		if r, ok := t.Report(k); ok {
			out = append(out, r)
		}
	}
	return out
}
