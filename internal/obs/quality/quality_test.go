package quality

import (
	"math"
	"testing"

	"repro/internal/linalg"
	"repro/internal/rng"
)

func TestPartitionDeterministicAndCovering(t *testing.T) {
	lo := linalg.Vector{0, -1}
	hi := linalg.Vector{2, 1}
	a := NewPartition(lo, hi, 16)
	b := NewPartition(lo, hi, 16)
	if a.Cells() != b.Cells() || a.Cells() > 16 || a.Cells() < 2 {
		t.Fatalf("partition not deterministic or out of bounds: %d vs %d", a.Cells(), b.Cells())
	}
	for i := 0; i < a.Cells(); i++ {
		alo, ahi := a.CellBounds(i)
		blo, bhi := b.CellBounds(i)
		for d := range alo {
			if alo[d] != blo[d] || ahi[d] != bhi[d] {
				t.Fatalf("cell %d bounds differ between identical partitions", i)
			}
		}
	}
	// Every point of the box maps to a valid cell whose bounds contain it.
	r := rng.New(7)
	for i := 0; i < 1000; i++ {
		x := linalg.Vector{r.Uniform(0, 2), r.Uniform(-1, 1)}
		c := a.CellOf(x)
		if c < 0 || c >= a.Cells() {
			t.Fatalf("CellOf out of range: %d", c)
		}
		clo, chi := a.CellBounds(c)
		for d := range x {
			if x[d] < clo[d]-1e-12 || x[d] > chi[d]+1e-12 {
				t.Fatalf("point %v assigned to cell %d outside its bounds [%v, %v]", x, c, clo, chi)
			}
		}
	}
	// Points outside the box clamp to edge cells rather than panicking.
	if c := a.CellOf(linalg.Vector{-5, 10}); c < 0 || c >= a.Cells() {
		t.Fatalf("clamped CellOf out of range: %d", c)
	}
}

// drawCounts buckets n synthetic 2-D points into a partition of
// [0,1]^2 — the SpiderWeb-style fixture harness: gen maps two uniforms
// onto a point.
func drawCounts(part *Partition, n int, seed uint64, gen func(u, v float64) (float64, float64)) []int64 {
	r := rng.New(seed)
	counts := make([]int64, part.Cells())
	for i := 0; i < n; i++ {
		x, y := gen(r.Float64(), r.Float64())
		counts[part.CellOf(linalg.Vector{x, y})]++
	}
	return counts
}

func uniformProbs(cells int) []float64 {
	p := make([]float64, cells)
	for i := range p {
		p[i] = 1 / float64(cells)
	}
	return p
}

func TestChiSquareUniformPasses(t *testing.T) {
	part := NewPartition(linalg.Vector{0, 0}, linalg.Vector{1, 1}, 16)
	counts := drawCounts(part, 20000, 1, func(u, v float64) (float64, float64) { return u, v })
	stat, dof := ChiSquare(counts, uniformProbs(part.Cells()))
	p := ChiSquarePValue(stat, dof)
	if p < 0.001 {
		t.Fatalf("uniform sampler rejected: chi2=%.2f dof=%d p=%g", stat, dof, p)
	}
	if v := CellTest(counts, uniformProbs(part.Cells()), 0.25); v.Worst > 3 {
		t.Fatalf("uniform sampler fails the eps-tolerance cell test: worst z=%.2f", v.Worst)
	}
}

func TestChiSquareDiagonalFails(t *testing.T) {
	part := NewPartition(linalg.Vector{0, 0}, linalg.Vector{1, 1}, 16)
	// Degenerate "diagonal" sampler: mass concentrates on x == y.
	counts := drawCounts(part, 20000, 2, func(u, v float64) (float64, float64) { return u, u })
	stat, dof := ChiSquare(counts, uniformProbs(part.Cells()))
	p := ChiSquarePValue(stat, dof)
	if p > 1e-6 {
		t.Fatalf("diagonal sampler not rejected: chi2=%.2f dof=%d p=%g", stat, dof, p)
	}
	if v := CellTest(counts, uniformProbs(part.Cells()), 0.25); v.Worst <= 4 {
		t.Fatalf("diagonal sampler passes the eps-tolerance cell test: worst z=%.2f", v.Worst)
	}
}

func TestChiSquareLowBitFails(t *testing.T) {
	part := NewPartition(linalg.Vector{0, 0}, linalg.Vector{1, 1}, 16)
	// "Bad bit" sampler: the x coordinate never enters [0, 1/2).
	counts := drawCounts(part, 20000, 3, func(u, v float64) (float64, float64) { return 0.5 + u/2, v })
	stat, dof := ChiSquare(counts, uniformProbs(part.Cells()))
	if p := ChiSquarePValue(stat, dof); p > 1e-6 {
		t.Fatalf("half-support sampler not rejected: chi2=%.2f dof=%d p=%g", stat, dof, p)
	}
}

func TestCellTestEpsTolerance(t *testing.T) {
	// A sampler that is exactly eps-close on one cell must pass: the
	// paper's Definition 2.2 allows relative deviation eps per region.
	probs := []float64{0.5, 0.5}
	n := int64(100000)
	eps := 0.25
	skew := int64(float64(n) * 0.5 * (1 + eps*0.9)) // inside the allowance
	counts := []int64{skew, n - skew}
	if v := CellTest(counts, probs, eps); v.Worst > 3 {
		t.Fatalf("eps-close sampler rejected: worst z=%.2f", v.Worst)
	}
	// The same deviation with no tolerance is a blow-out rejection.
	if v := CellTest(counts, probs, 0); v.Worst < 10 {
		t.Fatalf("tolerance-free test too lenient: worst z=%.2f", v.Worst)
	}
}

func TestChiSquareTwoSampleAgreement(t *testing.T) {
	part := NewPartition(linalg.Vector{0, 0}, linalg.Vector{1, 1}, 16)
	a := drawCounts(part, 10000, 4, func(u, v float64) (float64, float64) { return u, v })
	b := drawCounts(part, 10000, 5, func(u, v float64) (float64, float64) { return u, v })
	stat, dof := ChiSquareTwoSample(a, b)
	if p := ChiSquarePValue(stat, dof); p < 0.001 {
		t.Fatalf("two uniform windows drift apart: chi2=%.2f p=%g", stat, p)
	}
	c := drawCounts(part, 10000, 6, func(u, v float64) (float64, float64) { return u, u })
	stat, dof = ChiSquareTwoSample(a, c)
	if p := ChiSquarePValue(stat, dof); p > 1e-6 {
		t.Fatalf("uniform vs diagonal windows not detected: chi2=%.2f p=%g", stat, p)
	}
}

func TestESSIIDNearWindow(t *testing.T) {
	var acc ESSAccumulator
	r := rng.New(11)
	for i := 0; i < essWindow; i++ {
		acc.Observe(r.Normal())
	}
	ess := acc.ESS()
	if ess < 0.5*essWindow || ess > float64(essWindow) {
		t.Fatalf("iid ESS should be near the window size %d, got %.1f", essWindow, ess)
	}
}

func TestESSAR1MuchSmaller(t *testing.T) {
	var acc ESSAccumulator
	r := rng.New(12)
	const rho = 0.95
	x := 0.0
	for i := 0; i < essWindow; i++ {
		x = rho*x + math.Sqrt(1-rho*rho)*r.Normal()
		acc.Observe(x)
	}
	ess := acc.ESS()
	// Theoretical ESS factor for AR(1) is (1-rho)/(1+rho) ≈ 0.026.
	if ess > 0.2*essWindow {
		t.Fatalf("AR(1) rho=%.2f ESS should collapse, got %.1f of %d", rho, ess, essWindow)
	}
	if a1 := acc.Autocorrelation(1); a1 < 0.8 {
		t.Fatalf("AR(1) lag-1 autocorrelation should be near rho, got %.3f", a1)
	}
	if ess < 1 {
		t.Fatalf("ESS clamps at 1, got %.3f", ess)
	}
}

func TestRoundsBucket(t *testing.T) {
	cases := map[int64]int{1: 0, 2: 1, 3: 1, 4: 2, 7: 2, 8: 3, 1 << 20: RoundsHistBuckets - 1}
	for rounds, want := range cases {
		if got := RoundsBucket(rounds); got != want {
			t.Errorf("RoundsBucket(%d) = %d, want %d", rounds, got, want)
		}
	}
}

func TestTrackerReportFlow(t *testing.T) {
	tr := NewTracker(8)
	lo, hi := linalg.Vector{0, 0}, linalg.Vector{1, 1}
	tr.Bind("k", lo, hi, []float64{0.5, 0.5})
	r := rng.New(13)
	pts := make([]linalg.Vector, 0, 4096)
	for i := 0; i < 4096; i++ {
		pts = append(pts, linalg.Vector{r.Float64(), r.Float64()})
	}
	tr.ObserveDraw("k", pts, Effort{
		WalkSteps: 1000, WalkAccepted: 600, Rounds: 4096, Accepts: 4096,
		MemberDraws: []int64{2000, 2096},
	})
	rep, ok := tr.Report("k")
	if !ok {
		t.Fatal("report missing after ObserveDraw")
	}
	if rep.Samples != 4096 {
		t.Fatalf("samples = %d, want 4096", rep.Samples)
	}
	if rep.AcceptanceRate < 0.59 || rep.AcceptanceRate > 0.61 {
		t.Fatalf("acceptance = %g, want 0.6", rep.AcceptanceRate)
	}
	if rep.DriftPValue == 0 {
		t.Fatal("drift test should be armed after the reference freeze")
	}
	if len(rep.MemberShares) != 2 || math.Abs(rep.MemberShares[0]-2000.0/4096) > 1e-9 {
		t.Fatalf("member shares = %v", rep.MemberShares)
	}
	// Exact references arm the one-sample chi-square.
	tr.SetExact("k", uniformProbs(rep.Cells), []float64{0.5, 0.5}, 1)
	rep, _ = tr.Report("k")
	if rep.ChiSquareDOF == 0 || rep.PValue < 0.001 {
		t.Fatalf("uniform draws should pass against exact probs: chi2=%.2f p=%g", rep.ChiSquare, rep.PValue)
	}
	if !tr.HasExact("k") {
		t.Fatal("HasExact after SetExact")
	}
	// A nil tracker drops everything without panicking.
	var nilT *Tracker
	nilT.Bind("x", lo, hi, nil)
	nilT.ObserveDraw("x", pts, Effort{})
	if _, ok := nilT.Report("x"); ok {
		t.Fatal("nil tracker produced a report")
	}
}
