// Package quality is the statistical-quality layer of the observability
// stack: streaming uniformity diagnostics (chi-square over a
// deterministic cell partition of the bounding box, per-disjunct
// canonical draw shares), walk-mixing diagnostics (acceptance rate,
// rejection-round distribution, lag-k autocorrelation and effective
// sample size), and the verdict machinery the background auditor uses
// to compare a warm cached sampler's empirical output against exact
// symbolic volumes.
//
// The paper's contract is quantitative — every sample is promised
// ε-close to uniform with confidence 1−δ — and this package is how the
// running system checks the contract instead of assuming it. All tests
// bake the ε tolerance in: a correct generator that is merely ε-close
// (not exactly uniform) must pass.
package quality

import (
	"math"

	"repro/internal/linalg"
)

// Partition is a deterministic axis-aligned grid over a bounding box.
// Cells are the Cartesian product of per-dimension splits; the split
// counts depend only on (box, maxCells), so every auditor and every
// restart partitions the same geometry identically.
type Partition struct {
	lo, hi linalg.Vector
	splits []int // cells per dimension
	width  []float64
	cells  int
}

// NewPartition builds a partition of [lo, hi] with at most maxCells
// cells (minimum 1). Dimensions with zero (or negative) extent get a
// single degenerate cell. Splits are assigned greedily to the widest
// remaining dimension, so elongated boxes are cut along their long
// axes first — the shape a drifting mixture distorts most visibly.
func NewPartition(lo, hi linalg.Vector, maxCells int) *Partition {
	d := len(lo)
	if maxCells < 1 {
		maxCells = 1
	}
	p := &Partition{
		lo:     lo.Clone(),
		hi:     hi.Clone(),
		splits: make([]int, d),
		width:  make([]float64, d),
		cells:  1,
	}
	type dim struct {
		i      int
		extent float64
	}
	dims := make([]dim, 0, d)
	for i := 0; i < d; i++ {
		p.splits[i] = 1
		ext := hi[i] - lo[i]
		if ext > 0 && !math.IsInf(ext, 0) {
			dims = append(dims, dim{i, ext})
		}
	}
	// Double the split count of the dimension with the widest current
	// cell until the budget is spent. Deterministic: ties break on the
	// lowest index.
	for {
		best, bestW := -1, 0.0
		for _, dm := range dims {
			w := dm.extent / float64(p.splits[dm.i])
			if w > bestW {
				best, bestW = dm.i, w
			}
		}
		if best < 0 || p.cells*2 > maxCells {
			break
		}
		p.cells /= p.splits[best]
		p.splits[best] *= 2
		p.cells *= p.splits[best]
	}
	for i := 0; i < d; i++ {
		p.width[i] = (hi[i] - lo[i]) / float64(p.splits[i])
	}
	return p
}

// Cells returns the number of cells.
func (p *Partition) Cells() int { return p.cells }

// Dim returns the dimension of the partitioned box.
func (p *Partition) Dim() int { return len(p.lo) }

// CellOf returns the cell index of x (points outside the box clamp to
// the boundary cells, so every point lands somewhere).
func (p *Partition) CellOf(x linalg.Vector) int {
	idx := 0
	for i := len(p.splits) - 1; i >= 0; i-- {
		c := 0
		if p.width[i] > 0 {
			c = int((x[i] - p.lo[i]) / p.width[i])
			if c < 0 {
				c = 0
			}
			if c >= p.splits[i] {
				c = p.splits[i] - 1
			}
		}
		idx = idx*p.splits[i] + c
	}
	return idx
}

// CellBounds returns the axis-aligned bounds of cell i in the same
// mixed-radix order CellOf uses.
func (p *Partition) CellBounds(i int) (lo, hi linalg.Vector) {
	lo = p.lo.Clone()
	hi = p.hi.Clone()
	for d := 0; d < len(p.splits); d++ {
		c := i % p.splits[d]
		i /= p.splits[d]
		if p.width[d] > 0 {
			lo[d] = p.lo[d] + float64(c)*p.width[d]
			hi[d] = lo[d] + p.width[d]
		}
	}
	return lo, hi
}

// Bounds returns the partitioned box.
func (p *Partition) Bounds() (lo, hi linalg.Vector) { return p.lo, p.hi }
