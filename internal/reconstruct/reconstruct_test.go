package reconstruct

import (
	"math"
	"testing"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/linalg"
	"repro/internal/polytope"
	"repro/internal/rng"
	"repro/internal/walk"
)

func fastOpts() core.Options {
	return core.Options{
		Params: core.Params{Gamma: 0.25, Eps: 0.3, Delta: 0.1},
		Walk:   walk.HitAndRun,
	}
}

func TestHullFromGeneratorSquare(t *testing.T) {
	// Hull of samples from the unit square approximates the square:
	// exact shoelace area close to 1 for enough samples (Lemma 4.1's
	// phenomenon).
	p := polytope.FromTuple(constraint.Cube(2, 0, 1))
	gen, err := core.NewConvexPolytope(p, rng.New(1), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	h, err := HullFromGenerator(gen, 800)
	if err != nil {
		t.Fatal(err)
	}
	area := h.Area2D()
	if area < 0.9 || area > 1.001 {
		t.Errorf("hull area = %g, want ~1 from below", area)
	}
	// Hull is contained in the square.
	for _, pt := range h.Points {
		if !p.Contains(pt) {
			t.Fatalf("hull point %v outside the square", pt)
		}
	}
}

func TestHullConvergesWithN(t *testing.T) {
	// The volume defect shrinks as N grows (the ln^{d-1}(N)/N envelope).
	p := polytope.FromTuple(constraint.Cube(2, 0, 1))
	defect := func(n int, seed uint64) float64 {
		gen, err := core.NewConvexPolytope(p, rng.New(seed), fastOpts())
		if err != nil {
			t.Fatal(err)
		}
		h, err := HullFromGenerator(gen, n)
		if err != nil {
			t.Fatal(err)
		}
		return 1 - h.Area2D()
	}
	small := defect(60, 2)
	large := defect(1500, 3)
	if large >= small {
		t.Errorf("hull defect must shrink with N: %g (N=60) vs %g (N=1500)", small, large)
	}
	if large > 0.08 {
		t.Errorf("hull defect at N=1500 = %g, want < 0.08", large)
	}
}

func TestConvexEstimateDefinition41(t *testing.T) {
	// Definition 4.1: the estimator uses only membership + sampling, and
	// vol(S Δ Ŝ) <= eps·vol(S) for the square.
	p := polytope.FromTuple(constraint.Cube(2, 0, 1))
	gen, err := core.NewConvexPolytope(p, rng.New(4), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	h, err := ConvexEstimate(gen, 4, 0.2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Ŝ ⊆ S here, so vol(SΔŜ) = vol(S) - vol(Ŝ).
	if sym := 1 - h.Area2D(); sym > 0.2 {
		t.Errorf("symmetric difference = %g > eps=0.2", sym)
	}
}

func TestProjectionEstimateAlgorithm3(t *testing.T) {
	// Project the 3-simplex onto (x, y): the triangle of area 1/2. The
	// hull of projection-generator samples must approximate it.
	p := polytope.FromTuple(constraint.Simplex(3, 1))
	h, err := ProjectionEstimate(p, []int{0, 1}, 400, rng.New(5), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	area := h.Area2D()
	if math.Abs(area-0.5) > 0.08 {
		t.Errorf("projected hull area = %g, want ~0.5", area)
	}
}

func TestEstimateExistentialPositiveUnionOfHulls(t *testing.T) {
	// Algorithm 5 on (cube ∪ shifted cube): two hulls, membership is
	// their union.
	ds := []Disjunct{
		{Tuples: []constraint.Tuple{constraint.Cube(2, 0, 1)}},
		{Tuples: []constraint.Tuple{constraint.Box(linalg.Vector{3, 0}, linalg.Vector{4, 1})}},
	}
	est, err := EstimateExistentialPositive(ds, 300, rng.New(6), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(est.Hulls) != 2 {
		t.Fatalf("hulls = %d, want 2", len(est.Hulls))
	}
	if !est.Contains(linalg.Vector{0.5, 0.5}) || !est.Contains(linalg.Vector{3.5, 0.5}) {
		t.Error("union estimate must cover both components")
	}
	if est.Contains(linalg.Vector{2, 0.5}) {
		t.Error("gap between components must stay outside")
	}
	if est.Dim() != 2 || est.VertexCount() == 0 {
		t.Error("estimate metadata wrong")
	}
}

func TestEstimateExistentialPositiveConjunctionAndProjection(t *testing.T) {
	// Algorithm 4's example shape: ∃z (R1(x,z) ∧ R2(z,y)) with R1, R2
	// boxes: R1 = [0,1]x[0,1] over (x,z), R2 = [0,1]x[0,1] over (z,y):
	// over frame (x, y, z): conjunction is the cube; projecting z gives
	// the unit square in (x, y).
	r1 := constraint.Box(linalg.Vector{0, -10, 0}, linalg.Vector{1, 10, 1}) // constrains x, z
	r2 := constraint.Box(linalg.Vector{-10, 0, 0}, linalg.Vector{10, 1, 1}) // constrains y, z
	ds := []Disjunct{{
		Tuples: []constraint.Tuple{r1, r2},
		Keep:   []int{0, 1},
	}}
	est, err := EstimateExistentialPositive(ds, 400, rng.New(7), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(est.Hulls) != 1 {
		t.Fatalf("hulls = %d, want 1", len(est.Hulls))
	}
	area := est.Hulls[0].Area2D()
	if math.Abs(area-1) > 0.12 {
		t.Errorf("reconstructed area = %g, want ~1", area)
	}
}

func TestEstimateSkipsEmptyDisjuncts(t *testing.T) {
	empty := constraint.NewTuple(2,
		constraint.NewAtom(linalg.Vector{1, 0}, 0, false),
		constraint.NewAtom(linalg.Vector{-1, 0}, -1, false))
	ds := []Disjunct{
		{Tuples: []constraint.Tuple{empty}},
		{Tuples: []constraint.Tuple{constraint.Cube(2, 0, 1)}},
	}
	est, err := EstimateExistentialPositive(ds, 200, rng.New(8), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(est.Hulls) != 1 {
		t.Errorf("hulls = %d, want 1 (empty disjunct skipped)", len(est.Hulls))
	}
}

func TestEstimateRejectsNoTuples(t *testing.T) {
	if _, err := EstimateExistentialPositive([]Disjunct{{}}, 10, rng.New(9), fastOpts()); err == nil {
		t.Error("disjunct without tuples must fail")
	}
}

func TestQualityMC(t *testing.T) {
	// Estimate quality of a perfect reconstruction is ~0; of an empty
	// one is ~1.
	square := func(x linalg.Vector) bool {
		return x[0] >= 0 && x[0] <= 1 && x[1] >= 0 && x[1] <= 1
	}
	// Build the hull estimate from the square's corners: an exact
	// reconstruction.
	est := &SetEstimate{Hulls: []*geom.Hull{geom.NewHull([]linalg.Vector{
		{0, 0}, {1, 0}, {1, 1}, {0, 1},
	})}}
	q := QualityMC(square, est, linalg.Vector{-0.5, -0.5}, linalg.Vector{1.5, 1.5}, 20000, rng.New(10), 1)
	if q > 0.02 {
		t.Errorf("perfect reconstruction quality = %g, want ~0", q)
	}
	emptyEst := &SetEstimate{}
	q = QualityMC(square, emptyEst, linalg.Vector{-0.5, -0.5}, linalg.Vector{1.5, 1.5}, 20000, rng.New(11), 1)
	if math.Abs(q-1) > 0.05 {
		t.Errorf("empty reconstruction quality = %g, want ~1", q)
	}
	if QualityMC(square, emptyEst, nil, nil, 0, rng.New(12), 0) != 0 {
		t.Error("zero reference volume must yield 0")
	}
}
