package reconstruct

import (
	"math"
	"testing"

	"repro/internal/linalg"
	"repro/internal/num"
	"repro/internal/rng"
	"repro/internal/walk"
)

// diskOracle is a membership-only disk — a polynomial-constraint convex
// body in the sense of §5.
type diskOracle struct {
	c linalg.Vector
	r float64
}

func (d diskOracle) Dim() int                      { return len(d.c) }
func (d diskOracle) Contains(x linalg.Vector) bool { return x.Dist(d.c) <= d.r }

func TestOracleEstimateDisk(t *testing.T) {
	// Lemma 5.1 scenario: reconstruct the unit disk as a polytope hull;
	// its area must approach π from below.
	disk := diskOracle{c: linalg.Vector{3, -2}, r: 1}
	h, err := OracleEstimate(disk, disk.c, 1, 1, 600, rng.New(1), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	area := h.Area2D()
	if area > math.Pi+1e-9 {
		t.Errorf("hull area %g exceeds the disk area", area)
	}
	if num.RelErr(area, math.Pi) > 0.1 {
		t.Errorf("hull area = %g, want ~π", area)
	}
	// Every hull point lies in the disk.
	for _, p := range h.Points {
		if !disk.Contains(p) {
			t.Fatalf("hull point %v outside the disk", p)
		}
	}
}

func TestOracleEstimateVertexCountGrowsSlowly(t *testing.T) {
	// The hull of N samples of a smooth body has far fewer extreme
	// points than samples (Lemma 5.1's r = poly(d, 1/ε) intuition: for a
	// disk, E[vertices] = O(N^{1/3})).
	disk := diskOracle{c: linalg.Vector{0, 0}, r: 1}
	h, err := OracleEstimate(disk, disk.c, 1, 1, 400, rng.New(2), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	vs := h.Vertices()
	if len(vs) >= 150 {
		t.Errorf("disk hull has %d extreme points of 400 samples; smooth bodies must have few", len(vs))
	}
	if len(vs) < 8 {
		t.Errorf("disk hull has only %d extreme points; too coarse", len(vs))
	}
}

func TestOracleEstimateEllipsoid(t *testing.T) {
	// Anisotropic oracle: rounding must handle the 4:1 ellipse and the
	// hull area must approach π·a·b.
	ell := ellipseOracle{a: 2, b: 0.5}
	h, err := OracleEstimate(ell, linalg.Vector{0, 0}, 0.5, 2, 700, rng.New(3), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pi * 2 * 0.5
	if num.RelErr(h.Area2D(), want) > 0.12 {
		t.Errorf("ellipse hull area = %g, want ~%g", h.Area2D(), want)
	}
}

type ellipseOracle struct{ a, b float64 }

func (e ellipseOracle) Dim() int { return 2 }
func (e ellipseOracle) Contains(x linalg.Vector) bool {
	return (x[0]/e.a)*(x[0]/e.a)+(x[1]/e.b)*(x[1]/e.b) <= 1
}

func TestOracleEstimateRejectsBadWitnesses(t *testing.T) {
	disk := diskOracle{c: linalg.Vector{0, 0}, r: 1}
	if _, err := OracleEstimate(disk, disk.c, 0, 1, 10, rng.New(4), fastOpts()); err == nil {
		t.Error("zero inner radius must be rejected")
	}
}

var _ walk.Body = diskOracle{}
