// Package reconstruct implements Section 4.3 of the paper: approximating
// the *shape* of a definable set — not only its volume — from almost
// uniform samples.
//
// The basic tool is Lemma 4.1 (via Affentranger–Wieacker): the convex
// hull of N uniform points in a convex polytope with r vertices is an
// (ε, δ)-estimator of the polytope for N = O(4r²d²/(ε⁴d^{2d−2})·ln(1/δ)).
// Algorithm 3 reconstructs a projection with the projection generator
// plus a hull (Proposition 4.3's asymptotic speed-up over
// Fourier–Motzkin); Algorithms 4 and 5 reconstruct any existential
// positive formula as the union of per-disjunct hulls (Theorem 4.4).
package reconstruct

import (
	"errors"
	"fmt"

	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/linalg"
	"repro/internal/polytope"
	"repro/internal/rng"
	"repro/internal/walk"
)

// ErrNoSamples is returned when a generator produced no usable samples.
var ErrNoSamples = errors.New("reconstruct: generator produced no samples")

// HullFromGenerator draws n samples from gen and returns their convex
// hull. Generator failures (the δ-probability aborts) are tolerated up
// to half the budget. In two dimensions the point set is compacted to
// its extreme points immediately (identical hull, and the LP membership
// tests downstream shrink from n points to the O(n^{1/3})-ish hull
// size).
func HullFromGenerator(gen core.Generator, n int) (*geom.Hull, error) {
	pts := make([]linalg.Vector, 0, n)
	failures := 0
	for len(pts) < n {
		x, err := gen.Sample()
		if err != nil {
			failures++
			if failures > n/2+8 {
				return nil, fmt.Errorf("%w: %d failures", ErrNoSamples, failures)
			}
			continue
		}
		pts = append(pts, x)
	}
	if gen.Dim() == 2 && len(pts) > 8 {
		if compact := geom.Hull2D(pts); len(compact) >= 3 {
			return geom.NewHull(compact), nil
		}
	}
	return geom.NewHull(pts), nil
}

// ConvexEstimate is the (ε, δ)-estimator of Definition 4.1 for a convex
// relation with (at most) r vertices: it draws Lemma 4.1's sample count
// and returns the hull. The returned hull uses only point membership
// queries on the relation, as the definition requires.
func ConvexEstimate(gen core.Generator, r int, eps, delta float64) (*geom.Hull, error) {
	n := geom.SampleCountForHull(gen.Dim(), r, eps, delta)
	if n == 0 {
		return nil, fmt.Errorf("reconstruct: invalid parameters eps=%g delta=%g", eps, delta)
	}
	// The literal Lemma 4.1 count explodes for small ε; the paper's
	// interest is asymptotic. Budget-cap and let callers iterate.
	if n > 20000 {
		n = 20000
	}
	return HullFromGenerator(gen, n)
}

// ProjectionEstimate is Algorithm 3: generate N almost-uniform points in
// the projection of the convex polytope p onto keep with the projection
// generator, and form their convex hull — an (ε, δ)-estimation in
// O(2^{e/2}·poly(d+e)) instead of Fourier–Motzkin's O(2^{2^k}).
func ProjectionEstimate(p *polytope.Polytope, keep []int, n int, r *rng.RNG, opts core.Options) (*geom.Hull, error) {
	pr, err := core.NewProjection(p, keep, r, opts)
	if err != nil {
		return nil, err
	}
	return HullFromGenerator(pr, n)
}

// Disjunct is one ϕ_i of Algorithm 5's decomposition: a conjunction of
// generalized tuples (their intersection is convex) optionally under an
// existential quantifier that keeps the coordinates Keep.
type Disjunct struct {
	// Tuples are intersected (conjunction).
	Tuples []constraint.Tuple
	// Keep lists the coordinates surviving projection; nil keeps all.
	Keep []int
}

// polytopeOf intersects the tuples.
func (d Disjunct) polytopeOf() (*polytope.Polytope, error) {
	if len(d.Tuples) == 0 {
		return nil, errors.New("reconstruct: disjunct with no tuples")
	}
	p := polytope.FromTuple(d.Tuples[0])
	for _, t := range d.Tuples[1:] {
		p = p.Intersect(polytope.FromTuple(t))
	}
	return p, nil
}

// SetEstimate is the output of Algorithms 4/5: a union of convex hulls
// approximating the set defined by an existential positive formula.
type SetEstimate struct {
	Hulls []*geom.Hull
}

// Contains reports membership in the union of hulls.
func (s *SetEstimate) Contains(x linalg.Vector) bool {
	for _, h := range s.Hulls {
		if h.Contains(x) {
			return true
		}
	}
	return false
}

// Dim returns the common hull dimension (0 when empty).
func (s *SetEstimate) Dim() int {
	if len(s.Hulls) == 0 {
		return 0
	}
	return s.Hulls[0].Dim
}

// VertexCount sums hull vertex counts (the size of the reconstruction's
// description).
func (s *SetEstimate) VertexCount() int {
	n := 0
	for _, h := range s.Hulls {
		n += len(h.Points)
	}
	return n
}

// EstimateExistentialPositive is Algorithm 5: the formula is given as a
// disjunction of conjunction+projection disjuncts; each disjunct gets a
// uniform generator (DFK for plain conjunctions, the projection
// generator under ∃), n samples and a hull; the result is the union of
// the hulls (Theorem 4.4: if each ϕ_i has a uniform generator, the union
// of hull estimates is an (ε, δ)-estimator for the formula's set).
//
// Disjuncts whose generator construction fails because they are empty or
// flat are skipped — they contribute no volume. Other failures abort.
func EstimateExistentialPositive(disjuncts []Disjunct, n int, r *rng.RNG, opts core.Options) (*SetEstimate, error) {
	out := &SetEstimate{}
	for i, d := range disjuncts {
		p, err := d.polytopeOf()
		if err != nil {
			return nil, fmt.Errorf("reconstruct: disjunct %d: %w", i, err)
		}
		if p.IsEmpty() {
			continue
		}
		var gen core.Generator
		if len(d.Keep) == 0 || len(d.Keep) == p.Dim() {
			conv, err := core.NewConvexPolytope(p, core.NewRNGFromSplit(r), opts)
			if err != nil {
				if errors.Is(err, core.ErrNotWellBounded) {
					continue // flat disjunct: zero measure
				}
				return nil, fmt.Errorf("reconstruct: disjunct %d: %w", i, err)
			}
			gen = conv
		} else {
			pr, err := core.NewProjection(p, d.Keep, core.NewRNGFromSplit(r), opts)
			if err != nil {
				if errors.Is(err, core.ErrNotWellBounded) {
					continue
				}
				return nil, fmt.Errorf("reconstruct: disjunct %d: %w", i, err)
			}
			gen = pr
		}
		h, err := HullFromGenerator(gen, n)
		if err != nil {
			return nil, fmt.Errorf("reconstruct: disjunct %d: %w", i, err)
		}
		out.Hulls = append(out.Hulls, h)
	}
	return out, nil
}

// OracleEstimate implements the paper's §5 extension (Lemma 5.1):
// reconstruct a *smooth* convex body given only by a membership oracle —
// e.g. a ball or ellipsoid defined by polynomial constraints — as a
// convex polytope, the hull of n almost-uniform samples. The paper's
// Lemma 5.1 makes this an (ε, δ)-relation-estimator whenever the grid
// hull has r = poly(d, 1/ε) vertices, which it conjectures for smooth
// bodies of fixed degree; the E12-family tests validate it empirically
// on balls and ellipsoids.
func OracleEstimate(body walk.Body, center linalg.Vector, innerR, outerR float64, n int, r *rng.RNG, opts core.Options) (*geom.Hull, error) {
	conv, err := core.NewConvex(body, center, innerR, outerR, r, opts)
	if err != nil {
		return nil, err
	}
	return HullFromGenerator(conv, n)
}

// QualityMC measures vol(S Δ Ŝ)/vol(S) by Monte Carlo over a sampling
// box — the acceptance criterion of Definition 4.1 — for a reference
// membership oracle of S.
func QualityMC(s func(linalg.Vector) bool, est *SetEstimate, lo, hi linalg.Vector, n int, r *rng.RNG, volS float64) float64 {
	if volS <= 0 {
		return 0
	}
	sym := geom.SymmetricDifferenceMC(s, est.Contains, lo, hi, n, r)
	return sym / volS
}
