package polytope

import (
	"math"
	"testing"

	"repro/internal/constraint"
	"repro/internal/linalg"
	"repro/internal/num"
	"repro/internal/rng"
)

func cube(d int, lo, hi float64) *Polytope {
	return FromTuple(constraint.Cube(d, lo, hi))
}

func simplex(d int, s float64) *Polytope {
	return FromTuple(constraint.Simplex(d, s))
}

func TestContains(t *testing.T) {
	p := cube(3, 0, 1)
	if !p.Contains(linalg.Vector{0.5, 0.5, 0.5}) || p.Contains(linalg.Vector{1.5, 0.5, 0.5}) {
		t.Error("cube membership wrong")
	}
	if !p.ContainsStrict(linalg.Vector{0.5, 0.5, 0.5}, 0.4) {
		t.Error("deep interior point must pass strict margin")
	}
	if p.ContainsStrict(linalg.Vector{0.95, 0.5, 0.5}, 0.4) {
		t.Error("near-boundary point must fail strict margin")
	}
}

func TestEmptiness(t *testing.T) {
	p := New([]linalg.Vector{{1}, {-1}}, []float64{0, -1})
	if !p.IsEmpty() {
		t.Error("x<=0 & x>=1 must be empty")
	}
	if cube(2, 0, 1).IsEmpty() {
		t.Error("cube must not be empty")
	}
}

func TestChebyshev(t *testing.T) {
	c, r, err := cube(4, -2, 2).Chebyshev()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-2) > 1e-8 {
		t.Errorf("cube inradius = %g, want 2", r)
	}
	if !c.Equal(linalg.NewVector(4), 1e-8) {
		t.Errorf("cube centre = %v, want origin", c)
	}
}

func TestBoundingBoxAndEnclosingBall(t *testing.T) {
	p := FromTuple(constraint.Box(linalg.Vector{0, -1}, linalg.Vector{2, 1}))
	lo, hi, err := p.BoundingBox()
	if err != nil {
		t.Fatal(err)
	}
	if !lo.Equal((linalg.Vector{0, -1}), 1e-8) || !hi.Equal((linalg.Vector{2, 1}), 1e-8) {
		t.Errorf("box = %v..%v", lo, hi)
	}
	c, rad, err := p.EnclosingBall()
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal((linalg.Vector{1, 0}), 1e-8) || math.Abs(rad-math.Sqrt2) > 1e-8 {
		t.Errorf("ball = %v radius %g", c, rad)
	}
	// Errors for empty and unbounded.
	empty := New([]linalg.Vector{{1}, {-1}}, []float64{0, -1})
	if _, _, err := empty.BoundingBox(); err != ErrEmpty {
		t.Errorf("empty box error = %v", err)
	}
	unb := New([]linalg.Vector{{-1}}, []float64{0})
	if _, _, err := unb.BoundingBox(); err != ErrUnbounded {
		t.Errorf("unbounded box error = %v", err)
	}
}

func TestTranslateAndIntersect(t *testing.T) {
	p := cube(2, 0, 1).Translate(linalg.Vector{10, 0})
	if !p.Contains(linalg.Vector{10.5, 0.5}) || p.Contains(linalg.Vector{0.5, 0.5}) {
		t.Error("translate wrong")
	}
	q := cube(2, 0, 1).Intersect(FromTuple(constraint.Box(linalg.Vector{0.5, 0}, linalg.Vector{2, 1})))
	if !q.Contains(linalg.Vector{0.7, 0.5}) || q.Contains(linalg.Vector{0.3, 0.5}) {
		t.Error("intersect wrong")
	}
}

func TestImageUnderAffineMap(t *testing.T) {
	// Scale the unit square by 2 and shift: membership must transform
	// covariantly, and the image volume must scale by |det|.
	m := linalg.NewMatrix(2, 2)
	copy(m.Data, []float64{2, 0, 1, 3}) // det 6
	am, err := linalg.NewAffineMap(m, linalg.Vector{5, -1})
	if err != nil {
		t.Fatal(err)
	}
	p := cube(2, 0, 1)
	img := p.Image(am)
	r := rng.New(4)
	for i := 0; i < 500; i++ {
		x := linalg.Vector{r.Float64(), r.Float64()}
		y := am.Apply(x)
		if !img.Contains(y) {
			t.Fatalf("image must contain transformed point %v", y)
		}
	}
	out := am.Apply(linalg.Vector{1.4, 0.5})
	if img.Contains(out) {
		t.Error("image contains transform of an outside point")
	}
	v, err := img.Volume()
	if err != nil {
		t.Fatal(err)
	}
	if num.RelErr(v, 6) > 1e-6 {
		t.Errorf("image volume = %g, want 6", v)
	}
}

func TestSliceCylinder(t *testing.T) {
	// Triangle x,y >= 0, x+y <= 1 sliced at x = 0.25: y in [0, 0.75].
	tri := New(
		[]linalg.Vector{{-1, 0}, {0, -1}, {1, 1}},
		[]float64{0, 0, 1},
	)
	s := tri.Slice([]int{0}, []float64{0.25})
	if s.Dim() != 1 {
		t.Fatalf("slice dim = %d", s.Dim())
	}
	v, err := s.Volume()
	if err != nil {
		t.Fatal(err)
	}
	if num.RelErr(v, 0.75) > 1e-9 {
		t.Errorf("slice length = %g, want 0.75", v)
	}
	// Slice outside the body is empty.
	s2 := tri.Slice([]int{0}, []float64{2})
	if !s2.IsEmpty() {
		t.Error("slice at x=2 must be empty")
	}
	// Slicing middle coordinate keeps order of the rest.
	box := FromTuple(constraint.Box(linalg.Vector{0, 10, -1}, linalg.Vector{1, 20, 1}))
	s3 := box.Slice([]int{1}, []float64{15})
	if !s3.Contains(linalg.Vector{0.5, 0}) || s3.Contains(linalg.Vector{0.5, 2}) {
		t.Error("middle-coordinate slice wrong")
	}
}

func TestRemoveRedundant(t *testing.T) {
	p := cube(2, 0, 1).WithHalfspace(linalg.Vector{1, 0}, 5) // x <= 5 redundant
	q := p.RemoveRedundant()
	if q.Rows() != 4 {
		t.Errorf("rows after pruning = %d, want 4", q.Rows())
	}
}

func TestVolumeCube(t *testing.T) {
	for d := 1; d <= 5; d++ {
		v, err := cube(d, -1, 1).Volume()
		if err != nil {
			t.Fatal(err)
		}
		want := num.CubeVolume(d, 2)
		if num.RelErr(v, want) > 1e-7 {
			t.Errorf("d=%d: cube volume = %g, want %g", d, v, want)
		}
	}
}

func TestVolumeSimplex(t *testing.T) {
	for d := 1; d <= 5; d++ {
		v, err := simplex(d, 1).Volume()
		if err != nil {
			t.Fatal(err)
		}
		want := num.SimplexVolume(d, 1)
		if num.RelErr(v, want) > 1e-7 {
			t.Errorf("d=%d: simplex volume = %g, want %g", d, v, want)
		}
	}
}

func TestVolumeCrossPolytope(t *testing.T) {
	for d := 2; d <= 4; d++ {
		v, err := FromTuple(constraint.CrossPolytope(d, 1)).Volume()
		if err != nil {
			t.Fatal(err)
		}
		want := num.CrossPolytopeVolume(d, 1)
		if num.RelErr(v, want) > 1e-7 {
			t.Errorf("d=%d: cross-polytope volume = %g, want %g", d, v, want)
		}
	}
}

func TestVolumeDegenerate(t *testing.T) {
	// Flat polytope (x = 0 slab) has zero area.
	flat := New([]linalg.Vector{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}, []float64{0, 0, 1, 1})
	v, err := flat.Volume()
	if err != nil {
		t.Fatal(err)
	}
	if v > 1e-9 {
		t.Errorf("flat polytope volume = %g, want 0", v)
	}
	// Empty polytope.
	empty := New([]linalg.Vector{{1}, {-1}}, []float64{0, -1})
	v, err = empty.Volume()
	if err != nil || v != 0 {
		t.Errorf("empty volume = %g err=%v", v, err)
	}
}

func TestVolumeTranslationInvariance(t *testing.T) {
	r := rng.New(12)
	for trial := 0; trial < 10; trial++ {
		p := randomPolytope(r, 3)
		if p.IsEmpty() {
			continue
		}
		v1, err := p.Volume()
		if err != nil {
			t.Fatal(err)
		}
		shift := linalg.Vector{r.Normal(), r.Normal(), r.Normal()}
		v2, err := p.Translate(shift).Volume()
		if err != nil {
			t.Fatal(err)
		}
		if num.RelErr(v1, v2) > 1e-6 {
			t.Errorf("translation changed volume: %g vs %g", v1, v2)
		}
	}
}

// randomPolytope cuts the cube [-1,1]^d with a few random halfspaces.
func randomPolytope(r *rng.RNG, d int) *Polytope {
	p := cube(d, -1, 1)
	for k := 0; k < d; k++ {
		coef := make(linalg.Vector, d)
		for j := range coef {
			coef[j] = r.Normal()
		}
		p = p.WithHalfspace(coef, r.Uniform(0.3, 1.2))
	}
	return p
}

func TestVolumeAgainstMonteCarlo(t *testing.T) {
	// Property: exact volume matches a Monte Carlo estimate over the
	// bounding cube for random polytopes.
	r := rng.New(2025)
	for trial := 0; trial < 5; trial++ {
		p := randomPolytope(r, 3)
		if p.IsEmpty() {
			continue
		}
		v, err := p.Volume()
		if err != nil {
			t.Fatal(err)
		}
		const n = 200000
		hits := 0
		x := make(linalg.Vector, 3)
		for i := 0; i < n; i++ {
			for j := range x {
				x[j] = r.Uniform(-1, 1)
			}
			if p.Contains(x) {
				hits++
			}
		}
		mc := float64(hits) / n * 8
		if math.Abs(v-mc) > 0.05*8 {
			t.Errorf("trial %d: exact %g vs MC %g", trial, v, mc)
		}
	}
}

func TestVolumeDimensionLimit(t *testing.T) {
	if _, err := cube(MaxExactDim+1, 0, 1).Volume(); err == nil {
		t.Error("exact volume above MaxExactDim must fail")
	}
}

func TestVolumeUnbounded(t *testing.T) {
	unb := New([]linalg.Vector{{-1, 0}, {0, -1}}, []float64{0, 0})
	if _, err := unb.Volume(); err == nil {
		t.Error("unbounded volume must fail")
	}
}

func TestVerticesSquare(t *testing.T) {
	vs, err := cube(2, 0, 1).Vertices()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 4 {
		t.Fatalf("square vertices = %d, want 4", len(vs))
	}
	want := []linalg.Vector{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	for _, w := range want {
		found := false
		for _, v := range vs {
			if v.Equal(w, 1e-8) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("vertex %v missing", w)
		}
	}
}

func TestVerticesSimplex(t *testing.T) {
	vs, err := simplex(3, 1).Vertices()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 4 {
		t.Errorf("3-simplex vertices = %d, want 4", len(vs))
	}
}

func TestVerticesCubeCounts(t *testing.T) {
	for d := 1; d <= 4; d++ {
		vs, err := cube(d, 0, 1).Vertices()
		if err != nil {
			t.Fatal(err)
		}
		if len(vs) != 1<<d {
			t.Errorf("d=%d: cube vertices = %d, want %d", d, len(vs), 1<<d)
		}
	}
}

func TestVerticesWithRedundancy(t *testing.T) {
	p := cube(2, 0, 1).WithHalfspace(linalg.Vector{1, 1}, 5)
	vs, err := p.Vertices()
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 4 {
		t.Errorf("redundant constraint changed vertex count: %d", len(vs))
	}
}

func TestRelationVolumeDisjointUnion(t *testing.T) {
	r := constraint.MustRelation("R", []string{"x", "y"},
		constraint.Cube(2, 0, 1),
		constraint.Box(linalg.Vector{5, 0}, linalg.Vector{6, 2}),
	)
	v, err := RelationVolume(r)
	if err != nil {
		t.Fatal(err)
	}
	if num.RelErr(v, 3) > 1e-7 {
		t.Errorf("disjoint union volume = %g, want 3", v)
	}
}

func TestRelationVolumeOverlap(t *testing.T) {
	// [0,2]^2 ∪ [1,3]^2: 4 + 4 − 1 = 7.
	r := constraint.MustRelation("R", []string{"x", "y"},
		constraint.Cube(2, 0, 2),
		constraint.Cube(2, 1, 3),
	)
	v, err := RelationVolume(r)
	if err != nil {
		t.Fatal(err)
	}
	if num.RelErr(v, 7) > 1e-7 {
		t.Errorf("overlapping union volume = %g, want 7", v)
	}
}

func TestRelationVolumeTripleOverlap(t *testing.T) {
	// Three pairwise-overlapping intervals on the line:
	// [0,2] ∪ [1,3] ∪ [2,4] = [0,4]: length 4.
	r := constraint.MustRelation("R", []string{"x"},
		constraint.Cube(1, 0, 2),
		constraint.Cube(1, 1, 3),
		constraint.Cube(1, 2, 4),
	)
	v, err := RelationVolume(r)
	if err != nil {
		t.Fatal(err)
	}
	if num.RelErr(v, 4) > 1e-9 {
		t.Errorf("triple overlap volume = %g, want 4", v)
	}
}

func TestRelationVolumeEmpty(t *testing.T) {
	r := constraint.MustRelation("E", []string{"x"})
	v, err := RelationVolume(r)
	if err != nil || v != 0 {
		t.Errorf("empty relation volume = %g err=%v", v, err)
	}
}

func TestTupleRoundTrip(t *testing.T) {
	p := cube(2, 0, 1)
	tup := p.Tuple()
	q := FromTuple(tup)
	r := rng.New(8)
	for i := 0; i < 200; i++ {
		x := linalg.Vector{r.Uniform(-0.5, 1.5), r.Uniform(-0.5, 1.5)}
		if p.Contains(x) != q.Contains(x) {
			t.Fatalf("round trip changed membership at %v", x)
		}
	}
}

func TestNewPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with mismatched rows must panic")
		}
	}()
	New([]linalg.Vector{{1}}, []float64{1, 2})
}
