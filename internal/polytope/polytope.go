// Package polytope implements H-polytopes {x : A x <= b} and the exact
// geometric computations the paper's fixed-dimension results (Section 3)
// rely on: Chebyshev (inner) balls, bounding boxes and enclosing balls
// (well-boundedness witnesses), affine images, coordinate slices, vertex
// enumeration, exact volume via Lasserre's recursion, and exact volume of
// generalized relations via signed inclusion–exclusion.
//
// The exact volume algorithms are polynomial for fixed dimension and
// exponential in the dimension — exactly the behaviour Lemma 3.1 admits
// and the behaviour the randomized estimators of Section 4 avoid.
package polytope

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/constraint"
	"repro/internal/linalg"
	"repro/internal/lp"
	"repro/internal/num"
)

// ErrUnbounded is returned when an operation requires a bounded polytope.
var ErrUnbounded = errors.New("polytope: unbounded")

// ErrEmpty is returned when an operation requires a non-empty polytope.
var ErrEmpty = errors.New("polytope: empty")

// MaxExactDim bounds the dimension accepted by the exact (exponential in
// d) algorithms: Volume and Vertices.
const MaxExactDim = 9

// Polytope is the solution set of A x <= b.
type Polytope struct {
	A []linalg.Vector
	B []float64
}

// New returns the polytope {x : a x <= b}. It panics when the row counts
// disagree, which is always a programming error.
func New(a []linalg.Vector, b []float64) *Polytope {
	if len(a) != len(b) {
		panic(fmt.Sprintf("polytope: %d rows vs %d bounds", len(a), len(b)))
	}
	return &Polytope{A: a, B: b}
}

// FromTuple converts a generalized tuple (strictness dropped; the closure
// has the same volume and the same grid discretization up to measure
// zero).
func FromTuple(t constraint.Tuple) *Polytope {
	a, b := t.System()
	return New(a, b)
}

// Tuple converts back to a generalized tuple.
func (p *Polytope) Tuple() constraint.Tuple {
	atoms := make([]constraint.Atom, len(p.A))
	for i := range p.A {
		atoms[i] = constraint.NewAtom(p.A[i], p.B[i], false)
	}
	return constraint.NewTuple(p.Dim(), atoms...)
}

// Dim returns the ambient dimension (0 for a constraint-free polytope,
// whose dimension is unknowable; such polytopes are rejected by the
// geometric routines).
func (p *Polytope) Dim() int {
	if len(p.A) == 0 {
		return 0
	}
	return len(p.A[0])
}

// Rows returns the number of constraints.
func (p *Polytope) Rows() int { return len(p.A) }

// Clone returns a deep copy.
func (p *Polytope) Clone() *Polytope {
	a := make([]linalg.Vector, len(p.A))
	for i, row := range p.A {
		a[i] = row.Clone()
	}
	b := append([]float64{}, p.B...)
	return New(a, b)
}

// Contains reports whether x satisfies every constraint (within
// tolerance).
func (p *Polytope) Contains(x linalg.Vector) bool {
	for i, row := range p.A {
		if row.Dot(x) > p.B[i]+num.Eps {
			return false
		}
	}
	return true
}

// ContainsStrict reports whether x satisfies every constraint with slack
// at least margin.
func (p *Polytope) ContainsStrict(x linalg.Vector, margin float64) bool {
	for i, row := range p.A {
		if row.Dot(x) > p.B[i]-margin {
			return false
		}
	}
	return true
}

// IsEmpty reports infeasibility of the closed polytope.
func (p *Polytope) IsEmpty() bool {
	_, ok := lp.Feasible(p.A, p.B)
	return !ok
}

// Chebyshev returns the centre and radius of the largest inscribed ball:
// the paper's inner-ball witness r_inf for well-boundedness.
func (p *Polytope) Chebyshev() (linalg.Vector, float64, error) {
	return lp.ChebyshevCenter(p.A, p.B)
}

// BoundingBox returns coordinate bounds, failing with ErrUnbounded or
// ErrEmpty as appropriate.
func (p *Polytope) BoundingBox() (lo, hi linalg.Vector, err error) {
	if p.IsEmpty() {
		return nil, nil, ErrEmpty
	}
	lo, hi, ok := lp.BoundingBox(p.A, p.B)
	if !ok {
		return nil, nil, ErrUnbounded
	}
	return lo, hi, nil
}

// EnclosingBall returns a centre and radius R with P ⊆ B(c, R): the
// paper's outer-ball witness r_sup, computed from the bounding box.
func (p *Polytope) EnclosingBall() (linalg.Vector, float64, error) {
	lo, hi, err := p.BoundingBox()
	if err != nil {
		return nil, 0, err
	}
	d := len(lo)
	c := make(linalg.Vector, d)
	var r2 float64
	for j := 0; j < d; j++ {
		c[j] = (lo[j] + hi[j]) / 2
		half := (hi[j] - lo[j]) / 2
		r2 += half * half
	}
	return c, math.Sqrt(r2), nil
}

// WithHalfspace returns p ∩ {x : a·x <= b}.
func (p *Polytope) WithHalfspace(a linalg.Vector, b float64) *Polytope {
	q := p.Clone()
	q.A = append(q.A, a.Clone())
	q.B = append(q.B, b)
	return q
}

// Intersect returns p ∩ q (same dimension).
func (p *Polytope) Intersect(q *Polytope) *Polytope {
	out := p.Clone()
	for i := range q.A {
		out.A = append(out.A, q.A[i].Clone())
		out.B = append(out.B, q.B[i])
	}
	return out
}

// Translate returns p + t.
func (p *Polytope) Translate(t linalg.Vector) *Polytope {
	q := p.Clone()
	for i := range q.A {
		q.B[i] += q.A[i].Dot(t)
	}
	return q
}

// Image returns the image of p under the invertible affine map y = Mx + t:
// {y : (A M^{-1}) y <= b + A M^{-1} t}.
func (p *Polytope) Image(m *linalg.AffineMap) *Polytope {
	a := make([]linalg.Vector, len(p.A))
	b := append([]float64{}, p.B...)
	for i, row := range p.A {
		// row · M^{-1}(y - t) <= b_i.
		newRow := make(linalg.Vector, len(row))
		// newRow = (M^{-1})^T row; compute via solving is overkill — the
		// AffineMap caches the inverse, exposed through Invert on basis
		// vectors would be wasteful; instead apply row to columns of
		// M^{-1} by transpose-multiplication.
		newRow = m.InvTMulVec(row)
		a[i] = newRow
		b[i] += newRow.Dot(m.T)
	}
	return New(a, b)
}

// Slice fixes coordinates fixed[i] to values vals[i] and returns the
// polytope over the remaining coordinates (in their original order).
// This is the cylinder H_S(y) of the paper's projection generator
// (Algorithm 2) expressed in the un-projected coordinates.
func (p *Polytope) Slice(fixed []int, vals []float64) *Polytope {
	d := p.Dim()
	isFixed := make([]bool, d)
	value := make([]float64, d)
	for i, j := range fixed {
		isFixed[j] = true
		value[j] = vals[i]
	}
	var keep []int
	for j := 0; j < d; j++ {
		if !isFixed[j] {
			keep = append(keep, j)
		}
	}
	a := make([]linalg.Vector, 0, len(p.A))
	b := make([]float64, 0, len(p.B))
	for i, row := range p.A {
		newRow := make(linalg.Vector, len(keep))
		rhs := p.B[i]
		for k, j := range keep {
			newRow[k] = row[j]
		}
		for j := 0; j < d; j++ {
			if isFixed[j] {
				rhs -= row[j] * value[j]
			}
		}
		// Constant rows (all kept coefficients ~0) are retained: they make
		// the slice empty when violated.
		a = append(a, newRow)
		b = append(b, rhs)
	}
	return New(a, b)
}

// Chord returns the parameter interval [tmin, tmax] for which x + t·dir
// stays inside the polytope. ok is false only when the line misses the
// polytope; bounds may be ±Inf when the polytope is unbounded along dir
// (callers composing chords — e.g. body intersections — clamp them).
// Exact chords make hit-and-run steps O(m) instead of a binary search on
// the membership oracle.
func (p *Polytope) Chord(x, dir linalg.Vector) (tmin, tmax float64, ok bool) {
	tmin, tmax = math.Inf(-1), math.Inf(1)
	for i, row := range p.A {
		au := row.Dot(dir)
		slack := p.B[i] - row.Dot(x)
		switch {
		case au > num.Eps:
			if t := slack / au; t < tmax {
				tmax = t
			}
		case au < -num.Eps:
			if t := slack / au; t > tmin {
				tmin = t
			}
		default:
			if slack < -num.Eps {
				return 0, 0, false
			}
		}
	}
	if tmax < tmin {
		return 0, 0, false
	}
	return tmin, tmax, true
}

// RemoveRedundant drops constraints implied by the others (one LP per
// constraint).
func (p *Polytope) RemoveRedundant() *Polytope {
	a := make([]linalg.Vector, len(p.A))
	copy(a, p.A)
	b := append([]float64{}, p.B...)
	for i := 0; i < len(a); i++ {
		others := append([]linalg.Vector{}, a[:i]...)
		others = append(others, a[i+1:]...)
		rhs := append([]float64{}, b[:i]...)
		rhs = append(rhs, b[i+1:]...)
		if len(others) == 0 {
			break
		}
		v, ok := lp.Extent(others, rhs, a[i])
		if ok && v <= b[i]+num.Eps {
			a = append(a[:i], a[i+1:]...)
			b = append(b[:i], b[i+1:]...)
			i--
		}
	}
	return New(a, b)
}

// Volume computes the exact d-dimensional volume by Lasserre's recursive
// formula
//
//	vol_d(P) = (1/d) Σ_i dist(x0, H_i) · vol_{d-1}(P ∩ H_i),
//
// where x0 is the Chebyshev centre and H_i the i-th facet hyperplane.
// It is exact and polynomial for fixed dimension but exponential in d
// (Lemma 3.1's regime); dimensions above MaxExactDim are rejected.
func (p *Polytope) Volume() (float64, error) {
	d := p.Dim()
	if d == 0 {
		return 0, ErrUnbounded
	}
	if d > MaxExactDim {
		return 0, fmt.Errorf("polytope: exact volume limited to dimension <= %d (got %d); use the randomized estimator", MaxExactDim, d)
	}
	if p.IsEmpty() {
		return 0, nil
	}
	if _, _, err := p.BoundingBox(); err != nil {
		return 0, err
	}
	q := p.RemoveRedundant()
	return lasserre(q.A, q.B), nil
}

// lasserre is the recursion body; inputs define a bounded (possibly
// empty or degenerate) polytope.
func lasserre(a []linalg.Vector, b []float64) float64 {
	a, b = dedupRows(a, b)
	d := len(a[0])
	if d == 1 {
		lo, hi := math.Inf(-1), math.Inf(1)
		for i, row := range a {
			c := row[0]
			switch {
			case c > num.Eps:
				if v := b[i] / c; v < hi {
					hi = v
				}
			case c < -num.Eps:
				if v := b[i] / c; v > lo {
					lo = v
				}
			default:
				if b[i] < -num.Eps {
					return 0
				}
			}
		}
		if hi <= lo || math.IsInf(hi, 1) || math.IsInf(lo, -1) {
			return 0
		}
		return hi - lo
	}
	// Recentre at the Chebyshev centre so every signed distance is
	// non-negative (improves stability and guarantees positivity).
	c, r, err := lp.ChebyshevCenter(a, b)
	if err != nil {
		return 0
	}
	if r <= num.Eps {
		return 0 // flat polytope: zero d-volume
	}
	shifted := make([]float64, len(b))
	for i := range b {
		shifted[i] = b[i] - a[i].Dot(c)
	}
	terms := make([]float64, 0, len(a))
	for i := range a {
		norm := a[i].Norm()
		if norm <= num.Eps {
			continue
		}
		dist := shifted[i] / norm
		if dist <= num.Eps {
			continue // facet through the centre contributes nothing measurable
		}
		fv := facetVolume(a, shifted, i)
		if fv > 0 {
			terms = append(terms, dist*fv)
		}
	}
	return num.Sum(terms) / float64(d)
}

// dedupRows removes duplicate halfspaces (same normalized row and bound),
// keeping the tighter bound for parallel rows pointing the same way. Two
// distinct parent constraints can substitute to the same halfspace one
// recursion level down; without deduplication their shared facet would be
// counted twice.
func dedupRows(a []linalg.Vector, b []float64) ([]linalg.Vector, []float64) {
	outA := make([]linalg.Vector, 0, len(a))
	outB := make([]float64, 0, len(b))
	for i, row := range a {
		norm := row.Norm()
		if norm <= num.Eps {
			// Trivial rows: keep an infeasibility witness, drop the rest.
			if b[i] < -num.Eps {
				outA = append(outA, row)
				outB = append(outB, b[i])
			}
			continue
		}
		unit := row.Scale(1 / norm)
		bound := b[i] / norm
		merged := false
		for k := range outA {
			n2 := outA[k].Norm()
			if n2 <= num.Eps {
				continue
			}
			if outA[k].Scale(1/n2).Equal(unit, 1e-9) {
				if bound < outB[k]/n2 {
					outA[k] = unit
					outB[k] = bound
				}
				merged = true
				break
			}
		}
		if !merged {
			outA = append(outA, unit)
			outB = append(outB, bound)
		}
	}
	return outA, outB
}

// facetVolume returns the (d-1)-volume of the facet P ∩ {a_i x = b_i} by
// substituting out the coordinate with the largest |a_i| entry and
// recursing; the Jacobian factor ||a_i|| / |a_ik| converts the volume of
// the projected polytope back to the facet's intrinsic volume.
func facetVolume(a []linalg.Vector, b []float64, i int) float64 {
	row := a[i]
	d := len(row)
	k, best := -1, 0.0
	for j, v := range row {
		if math.Abs(v) > best {
			best, k = math.Abs(v), j
		}
	}
	if k < 0 {
		return 0
	}
	aik := row[k]
	bi := b[i]
	subA := make([]linalg.Vector, 0, len(a)-1)
	subB := make([]float64, 0, len(b)-1)
	for l := range a {
		if l == i {
			continue
		}
		alk := a[l][k]
		newRow := make(linalg.Vector, 0, d-1)
		for j := 0; j < d; j++ {
			if j == k {
				continue
			}
			newRow = append(newRow, a[l][j]-alk*row[j]/aik)
		}
		subA = append(subA, newRow)
		subB = append(subB, b[l]-alk*bi/aik)
	}
	if len(subA) == 0 {
		return 0
	}
	sub := lasserre(subA, subB)
	if sub == 0 {
		return 0
	}
	return sub * row.Norm() / math.Abs(aik)
}

// Vertices enumerates the vertices of a bounded polytope by solving
// every d-subset of tight constraints (exponential in d; rejected above
// MaxExactDim).
func (p *Polytope) Vertices() ([]linalg.Vector, error) {
	d := p.Dim()
	if d == 0 {
		return nil, ErrUnbounded
	}
	if d > MaxExactDim {
		return nil, fmt.Errorf("polytope: vertex enumeration limited to dimension <= %d", MaxExactDim)
	}
	if _, _, err := p.BoundingBox(); err != nil {
		return nil, err
	}
	m := len(p.A)
	idx := make([]int, d)
	var verts []linalg.Vector
	var rec func(start, k int)
	mat := linalg.NewMatrix(d, d)
	rhs := make(linalg.Vector, d)
	rec = func(start, k int) {
		if k == d {
			for r := 0; r < d; r++ {
				copy(mat.Data[r*d:(r+1)*d], p.A[idx[r]])
				rhs[r] = p.B[idx[r]]
			}
			x, err := linalg.SolveSystem(mat, rhs, 1e-10)
			if err != nil {
				return
			}
			if !p.Contains(x) {
				return
			}
			for _, v := range verts {
				if v.Equal(x, 1e-7) {
					return
				}
			}
			verts = append(verts, x)
			return
		}
		for i := start; i <= m-(d-k); i++ {
			idx[k] = i
			rec(i+1, k+1)
		}
	}
	rec(0, 0)
	return verts, nil
}

// RelationVolume computes the exact volume of a generalized relation by
// signed inclusion–exclusion over its tuples:
//
//	vol(∪ T_i) = Σ_{∅≠J} (−1)^{|J|+1} vol(∩_{j∈J} T_j).
//
// Each intersection is a polytope measured exactly by Volume. The cost is
// exponential in the number of tuples and in the dimension — the paper's
// Lemma 3.1 regime (exact evaluation is polynomial only for fixed
// dimension). Tuples beyond maxTuples are rejected.
func RelationVolume(r *constraint.Relation) (float64, error) {
	return RelationVolumeInterruptible(r, nil)
}

// RelationVolumeInterruptible is RelationVolume with an optional
// interrupt polled once per inclusion–exclusion term (up to 2^n − 1 of
// them), so serving layers can abandon the exponential pass when the
// request is cancelled. A non-nil interrupt return aborts with that
// error.
func RelationVolumeInterruptible(r *constraint.Relation, interrupt func() error) (float64, error) {
	const maxTuples = 20
	tuples := r.PruneEmpty().Tuples
	n := len(tuples)
	if n == 0 {
		return 0, nil
	}
	if n > maxTuples {
		return 0, fmt.Errorf("polytope: inclusion-exclusion limited to %d tuples (got %d)", maxTuples, n)
	}
	polys := make([]*Polytope, n)
	for i, t := range tuples {
		polys[i] = FromTuple(t)
	}
	terms := make([]float64, 0, 1<<n)
	for mask := 1; mask < 1<<n; mask++ {
		if interrupt != nil {
			if err := interrupt(); err != nil {
				return 0, err
			}
		}
		var inter *Polytope
		bits := 0
		for i := 0; i < n; i++ {
			if mask&(1<<i) == 0 {
				continue
			}
			bits++
			if inter == nil {
				inter = polys[i].Clone()
			} else {
				inter = inter.Intersect(polys[i])
			}
		}
		if inter.IsEmpty() {
			continue
		}
		v, err := inter.Volume()
		if err != nil {
			return 0, err
		}
		if bits%2 == 1 {
			terms = append(terms, v)
		} else {
			terms = append(terms, -v)
		}
	}
	vol := num.Sum(terms)
	if vol < 0 {
		vol = 0 // rounding in alternating sums
	}
	return vol, nil
}
