package polytope

import (
	"fmt"
	"testing"

	"repro/internal/constraint"
	"repro/internal/linalg"
	"repro/internal/rng"
)

func BenchmarkExactVolumeLasserre(b *testing.B) {
	for _, d := range []int{2, 4, 6} {
		b.Run(fmt.Sprintf("cube-d=%d", d), func(b *testing.B) {
			p := FromTuple(constraint.Cube(d, -1, 1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Volume(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkVertices(b *testing.B) {
	for _, d := range []int{2, 4} {
		b.Run(fmt.Sprintf("cube-d=%d", d), func(b *testing.B) {
			p := FromTuple(constraint.Cube(d, -1, 1))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Vertices(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkChord(b *testing.B) {
	r := rng.New(1)
	p := randomPolytope(r, 6)
	c, _, err := p.Chebyshev()
	if err != nil {
		b.Fatal(err)
	}
	dir := make(linalg.Vector, 6)
	r.OnSphere(dir)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Chord(c, dir)
	}
}

func BenchmarkContains(b *testing.B) {
	r := rng.New(2)
	p := randomPolytope(r, 8)
	x := make(linalg.Vector, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Contains(x)
	}
}

func BenchmarkRelationVolumeInclusionExclusion(b *testing.B) {
	for _, m := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("tuples=%d", m), func(b *testing.B) {
			tuples := make([]constraint.Tuple, m)
			for i := range tuples {
				lo := float64(i) * 0.5
				tuples[i] = constraint.Box(linalg.Vector{lo, 0}, linalg.Vector{lo + 1, 1})
			}
			rel := constraint.MustRelation("R", []string{"x", "y"}, tuples...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := RelationVolume(rel); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
