package polytope

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
	"repro/internal/rng"
)

// TestPropertyVolumeAffineCovariance: vol(M(P)) = |det M| · vol(P) for
// random polytopes and random well-conditioned affine maps.
func TestPropertyVolumeAffineCovariance(t *testing.T) {
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		d := 2 + r.Intn(2) // 2..3
		p := randomPolytope(r, d)
		if p.IsEmpty() {
			return true
		}
		v, err := p.Volume()
		if err != nil {
			return false
		}
		// Random map: identity + small perturbation + scaling (keeps
		// conditioning sane).
		m := linalg.Identity(d)
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				m.Data[i*d+j] += 0.3 * r.Normal()
			}
			m.Data[i*d+i] += 1
		}
		shift := make(linalg.Vector, d)
		for i := range shift {
			shift[i] = r.Normal()
		}
		am, err := linalg.NewAffineMap(m, shift)
		if err != nil {
			return true // singular draw, skip
		}
		img := p.Image(am)
		vi, err := img.Volume()
		if err != nil {
			return false
		}
		want := v * am.DetAbs()
		return math.Abs(vi-want) <= 1e-6*math.Max(1, want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyVolumeMonotone: adding a halfspace never increases volume.
func TestPropertyVolumeMonotone(t *testing.T) {
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		d := 2 + r.Intn(2)
		p := randomPolytope(r, d)
		if p.IsEmpty() {
			return true
		}
		v1, err := p.Volume()
		if err != nil {
			return false
		}
		coef := make(linalg.Vector, d)
		for j := range coef {
			coef[j] = r.Normal()
		}
		q := p.WithHalfspace(coef, r.Uniform(-0.5, 1))
		if q.IsEmpty() {
			return true
		}
		v2, err := q.Volume()
		if err != nil {
			return false
		}
		return v2 <= v1+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertyRedundancyPreservesMembership: RemoveRedundant never
// changes the set.
func TestPropertyRedundancyPreservesMembership(t *testing.T) {
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		d := 2 + r.Intn(3)
		p := randomPolytope(r, d)
		q := p.RemoveRedundant()
		for i := 0; i < 40; i++ {
			x := make(linalg.Vector, d)
			for j := range x {
				x[j] = r.Uniform(-1.5, 1.5)
			}
			if p.Contains(x) != q.Contains(x) {
				// Retry off the tolerance band once.
				for j := range x {
					x[j] += 1e-5 * r.Normal()
				}
				if p.Contains(x) != q.Contains(x) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertyChordEndpointsOnBoundary: for random interior points and
// directions, both chord endpoints are contained (within tolerance) and
// points slightly beyond them are not.
func TestPropertyChordEndpointsOnBoundary(t *testing.T) {
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		d := 2 + r.Intn(3)
		p := randomPolytope(r, d)
		c, rad, err := p.Chebyshev()
		if err != nil || rad < 1e-6 {
			return true
		}
		dir := make(linalg.Vector, d)
		for i := 0; i < 15; i++ {
			r.OnSphere(dir)
			lo, hi, ok := p.Chord(c, dir)
			if !ok || math.IsInf(lo, -1) || math.IsInf(hi, 1) {
				return false // bounded polytope through interior point must chord
			}
			inside := c.Clone()
			inside.AddScaled(hi-1e-9, dir)
			if !p.Contains(inside) {
				return false
			}
			outside := c.Clone()
			outside.AddScaled(hi+1e-4, dir)
			if p.ContainsStrict(outside, 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestPropertySliceConsistency: a point y is in the slice at x_I = v iff
// the recombined point is in the polytope.
func TestPropertySliceConsistency(t *testing.T) {
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		d := 3
		p := randomPolytope(r, d)
		fixAt := r.Intn(d)
		val := r.Uniform(-1, 1)
		s := p.Slice([]int{fixAt}, []float64{val})
		for i := 0; i < 25; i++ {
			rest := linalg.Vector{r.Uniform(-1.2, 1.2), r.Uniform(-1.2, 1.2)}
			full := make(linalg.Vector, d)
			k := 0
			for j := 0; j < d; j++ {
				if j == fixAt {
					full[j] = val
				} else {
					full[j] = rest[k]
					k++
				}
			}
			if s.Contains(rest) != p.Contains(full) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyVerticesInsideAndExtreme: every enumerated vertex is
// contained and is not a convex combination of the others
// (cross-checked with the LP hull membership via geometry of supports).
func TestPropertyVerticesInsideAndExtreme(t *testing.T) {
	prop := func(seed uint64) bool {
		r := rng.New(seed)
		d := 2 + r.Intn(2)
		p := randomPolytope(r, d).RemoveRedundant()
		if p.IsEmpty() {
			return true
		}
		vs, err := p.Vertices()
		if err != nil || len(vs) == 0 {
			return false
		}
		for _, v := range vs {
			if !p.Contains(v) {
				return false
			}
		}
		// Their centroid is contained too (convexity sanity).
		cen := make(linalg.Vector, d)
		for _, v := range vs {
			cen.AddScaled(1/float64(len(vs)), v)
		}
		return p.Contains(cen)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
