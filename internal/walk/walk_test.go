package walk

import (
	"math"
	"testing"

	"repro/internal/constraint"
	"repro/internal/geom"
	"repro/internal/linalg"
	"repro/internal/polytope"
	"repro/internal/rng"
)

func square() *polytope.Polytope {
	return polytope.FromTuple(constraint.Cube(2, 0, 1))
}

func TestGridWalkStaysInside(t *testing.T) {
	r := rng.New(1)
	g := geom.NewGrid(2, 0.1)
	w, err := New(square(), linalg.Vector{0.5, 0.5}, r, Config{Kind: GridWalk, Grid: g})
	if err != nil {
		t.Fatal(err)
	}
	body := square()
	for i := 0; i < 5000; i++ {
		w.Step()
		if !body.Contains(w.Current()) {
			t.Fatalf("walk left the body at step %d: %v", i, w.Current())
		}
	}
	if w.AcceptanceRate() == 0 {
		t.Error("grid walk never moved")
	}
}

func TestGridWalkStaysOnGrid(t *testing.T) {
	r := rng.New(2)
	g := geom.NewGrid(2, 0.25)
	w, err := New(square(), linalg.Vector{0.5, 0.5}, r, Config{Kind: GridWalk, Grid: g})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		w.Step()
		for _, c := range w.Current() {
			snapped := math.Round(c/0.25) * 0.25
			if math.Abs(c-snapped) > 1e-9 {
				t.Fatalf("walker off grid: %v", w.Current())
			}
		}
	}
}

func TestGridWalkUniformOnSquare(t *testing.T) {
	// Chi-square-ish check: on a 4x4 grid of cells inside the unit
	// square, long-run visit frequencies are near uniform.
	r := rng.New(3)
	g := geom.NewGrid(2, 0.25)
	w, err := New(square(), linalg.Vector{0.5, 0.5}, r, Config{Kind: GridWalk, Grid: g})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const samples = 4000
	for i := 0; i < samples; i++ {
		p := w.Sample(200)
		counts[g.Key(p)]++
	}
	// 5x5 = 25 grid points in [0,1]^2 at step 0.25.
	if len(counts) < 23 {
		t.Fatalf("visited %d cells, want ~25", len(counts))
	}
	flat := make([]int, 0, len(counts))
	for _, c := range counts {
		flat = append(flat, c)
	}
	tv := geom.TVDistanceUniform(flat)
	if tv > 0.15 {
		t.Errorf("grid walk TV distance to uniform = %g, want < 0.15", tv)
	}
}

func TestBallWalk(t *testing.T) {
	r := rng.New(4)
	w, err := New(square(), linalg.Vector{0.5, 0.5}, r, Config{Kind: BallWalk, Delta: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	body := square()
	var mean linalg.Vector = make(linalg.Vector, 2)
	const n = 3000
	for i := 0; i < n; i++ {
		p := w.Sample(30)
		if !body.Contains(p) {
			t.Fatalf("ball walk left the body: %v", p)
		}
		mean.AddScaled(1.0/n, p)
	}
	if math.Abs(mean[0]-0.5) > 0.05 || math.Abs(mean[1]-0.5) > 0.05 {
		t.Errorf("ball walk mean = %v, want ~(0.5, 0.5)", mean)
	}
}

func TestBallWalkRequiresDelta(t *testing.T) {
	r := rng.New(5)
	if _, err := New(square(), linalg.Vector{0.5, 0.5}, r, Config{Kind: BallWalk}); err == nil {
		t.Error("BallWalk without Delta must fail")
	}
}

func TestHitAndRunPolytopeChords(t *testing.T) {
	r := rng.New(6)
	w, err := New(square(), linalg.Vector{0.5, 0.5}, r, Config{Kind: HitAndRun})
	if err != nil {
		t.Fatal(err)
	}
	body := square()
	var mean linalg.Vector = make(linalg.Vector, 2)
	const n = 3000
	for i := 0; i < n; i++ {
		p := w.Sample(20)
		if !body.Contains(p) {
			t.Fatalf("hit-and-run left the body: %v", p)
		}
		mean.AddScaled(1.0/n, p)
	}
	if math.Abs(mean[0]-0.5) > 0.04 || math.Abs(mean[1]-0.5) > 0.04 {
		t.Errorf("hit-and-run mean = %v, want ~(0.5, 0.5)", mean)
	}
	if w.AcceptanceRate() < 0.95 {
		t.Errorf("hit-and-run acceptance = %g, want ~1", w.AcceptanceRate())
	}
}

func TestHitAndRunSecondMoment(t *testing.T) {
	// On [0,1], uniform second moment about 0.5 is 1/12.
	r := rng.New(7)
	seg := polytope.FromTuple(constraint.Cube(1, 0, 1))
	w, err := New(seg, linalg.Vector{0.5}, r, Config{Kind: HitAndRun})
	if err != nil {
		t.Fatal(err)
	}
	var m2 float64
	const n = 20000
	for i := 0; i < n; i++ {
		p := w.Sample(5)
		m2 += (p[0] - 0.5) * (p[0] - 0.5)
	}
	m2 /= n
	if math.Abs(m2-1.0/12) > 0.004 {
		t.Errorf("second moment = %g, want %g", m2, 1.0/12)
	}
}

func TestHitAndRunMembershipOnlyBody(t *testing.T) {
	// Ball given only by membership (chord via bisection).
	r := rng.New(8)
	type oracleOnly struct{ BallBody }
	ball := BallBody{Center: linalg.Vector{0, 0}, Radius: 1}
	body := struct{ Body }{Body: oracleBody{ball}}
	w, err := New(body, linalg.Vector{0, 0}, r, Config{Kind: HitAndRun, OuterRadius: 1})
	if err != nil {
		t.Fatal(err)
	}
	var meanNorm float64
	const n = 2000
	for i := 0; i < n; i++ {
		p := w.Sample(15)
		if p.Norm() > 1+1e-6 {
			t.Fatalf("left the ball: %v", p)
		}
		meanNorm += p.Norm()
	}
	meanNorm /= n
	// Uniform disk: E|X| = 2/3.
	if math.Abs(meanNorm-2.0/3) > 0.03 {
		t.Errorf("mean radius = %g, want 2/3", meanNorm)
	}
	_ = oracleOnly{}
}

// oracleBody strips the Chord method from a body, leaving membership only.
type oracleBody struct{ b Body }

func (o oracleBody) Dim() int                      { return o.b.Dim() }
func (o oracleBody) Contains(x linalg.Vector) bool { return o.b.Contains(x) }

func TestHitAndRunMembershipOnlyNeedsOuterRadius(t *testing.T) {
	r := rng.New(9)
	ball := oracleBody{BallBody{Center: linalg.Vector{0, 0}, Radius: 1}}
	if _, err := New(ball, linalg.Vector{0, 0}, r, Config{Kind: HitAndRun}); err == nil {
		t.Error("membership-only hit-and-run without OuterRadius must fail")
	}
}

func TestStartOutsideRejected(t *testing.T) {
	r := rng.New(10)
	if _, err := New(square(), linalg.Vector{5, 5}, r, Config{Kind: HitAndRun}); err == nil {
		t.Error("start outside must fail")
	}
}

func TestBallBodyChord(t *testing.T) {
	b := BallBody{Center: linalg.Vector{0, 0}, Radius: 2}
	lo, hi, ok := b.Chord(linalg.Vector{0, 0}, linalg.Vector{1, 0})
	if !ok || math.Abs(lo+2) > 1e-12 || math.Abs(hi-2) > 1e-12 {
		t.Errorf("chord = [%g, %g] ok=%v", lo, hi, ok)
	}
	// Line missing the ball.
	_, _, ok = b.Chord(linalg.Vector{0, 5}, linalg.Vector{1, 0})
	if ok {
		t.Error("missing line must report !ok")
	}
}

func TestIntersectionBody(t *testing.T) {
	ball := BallBody{Center: linalg.Vector{0, 0}, Radius: 1}
	halfPlane := polytope.New([]linalg.Vector{{0, -1}}, []float64{0}) // y >= 0
	ib := IntersectionBody{Bodies: []Body{ball, halfPlane}}
	if !ib.Contains(linalg.Vector{0, 0.5}) || ib.Contains(linalg.Vector{0, -0.5}) {
		t.Error("intersection membership wrong")
	}
	lo, hi, ok := ib.Chord(linalg.Vector{0, 0.5}, linalg.Vector{0, 1})
	if !ok || math.Abs(lo+0.5) > 1e-9 || math.Abs(hi-0.5) > 1e-9 {
		t.Errorf("intersection chord = [%g, %g] ok=%v", lo, hi, ok)
	}
}

func TestMappedBody(t *testing.T) {
	// Map the unit square by scaling 2x; mapped body contains (1.5, 1.5).
	m := linalg.NewMatrix(2, 2)
	copy(m.Data, []float64{2, 0, 0, 2})
	am, err := linalg.NewAffineMap(m, linalg.Vector{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	mb := MappedBody{Orig: square(), Map: am}
	if !mb.Contains(linalg.Vector{1.5, 1.5}) || mb.Contains(linalg.Vector{2.5, 0.5}) {
		t.Error("mapped membership wrong")
	}
	// Chord transfers: through the centre along x, [−1, 1] around (1,1).
	lo, hi, ok := mb.Chord(linalg.Vector{1, 1}, linalg.Vector{1, 0})
	if !ok || math.Abs(lo+1) > 1e-9 || math.Abs(hi-1) > 1e-9 {
		t.Errorf("mapped chord = [%g, %g] ok=%v", lo, hi, ok)
	}
}

func TestPolytopeChord(t *testing.T) {
	p := square()
	lo, hi, ok := p.Chord(linalg.Vector{0.5, 0.5}, linalg.Vector{1, 0})
	if !ok || math.Abs(lo+0.5) > 1e-12 || math.Abs(hi-0.5) > 1e-12 {
		t.Errorf("chord = [%g, %g] ok=%v", lo, hi, ok)
	}
	// Diagonal direction.
	s := 1 / math.Sqrt2
	lo, hi, ok = p.Chord(linalg.Vector{0.5, 0.5}, linalg.Vector{s, s})
	want := 0.5 * math.Sqrt2
	if !ok || math.Abs(hi-want) > 1e-9 || math.Abs(lo+want) > 1e-9 {
		t.Errorf("diagonal chord = [%g, %g]", lo, hi)
	}
	// Unbounded direction returns an infinite upper bound (ok), which
	// the walker then rejects; a line missing the polytope reports !ok.
	unb := polytope.New([]linalg.Vector{{-1, 0}}, []float64{0})
	if _, hiU, ok := unb.Chord(linalg.Vector{1, 0}, linalg.Vector{1, 0}); !ok || !math.IsInf(hiU, 1) {
		t.Error("unbounded chord must report ok with +Inf upper bound")
	}
	miss := polytope.New([]linalg.Vector{{1, 0}, {-1, 0}}, []float64{1, 0})
	if _, _, ok := miss.Chord(linalg.Vector{5, 0}, linalg.Vector{0, 1}); ok {
		t.Error("line missing the slab must report !ok")
	}
}

func TestDefaultStepBudgets(t *testing.T) {
	if DefaultGridSteps(2, 1, 10) < 2000 {
		t.Error("grid steps floor broken")
	}
	if DefaultGridSteps(50, 100, 1000) > 2e6 {
		t.Error("grid steps cap broken")
	}
	if DefaultHitAndRunSteps(2, 1) < 48 {
		t.Error("hit-and-run floor broken")
	}
	if DefaultHitAndRunSteps(10, 1) <= DefaultHitAndRunSteps(2, 1) {
		t.Error("hit-and-run steps must grow with d")
	}
}

func TestKindString(t *testing.T) {
	if GridWalk.String() != "grid" || BallWalk.String() != "ball" || HitAndRun.String() != "hit-and-run" {
		t.Error("Kind.String misbehaves")
	}
}

func TestWalkerStats(t *testing.T) {
	// Grid walk: every non-lazy step queries the oracle exactly once.
	r := rng.New(11)
	g := geom.NewGrid(2, 0.1)
	w, err := New(square(), linalg.Vector{0.5, 0.5}, r, Config{Kind: GridWalk, Grid: g})
	if err != nil {
		t.Fatal(err)
	}
	w.Run(500)
	st := w.Stats()
	if st.Steps != 500 {
		t.Fatalf("Steps = %d, want 500", st.Steps)
	}
	if st.OracleCalls <= 0 || st.OracleCalls > 500 {
		t.Fatalf("grid OracleCalls = %d, want in (0, 500]", st.OracleCalls)
	}
	if st.Accepted <= 0 || st.Accepted > st.OracleCalls {
		t.Fatalf("Accepted = %d vs oracle %d", st.Accepted, st.OracleCalls)
	}
	if st.InterruptPolls != 0 {
		t.Fatalf("InterruptPolls = %d without a hook", st.InterruptPolls)
	}

	// Hit-and-run: chord + endpoint guard per step, two oracle calls.
	w2, err := New(square(), linalg.Vector{0.5, 0.5}, rng.New(12), Config{
		Kind:      HitAndRun,
		Interrupt: func() error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	w2.Run(128)
	st2 := w2.Stats()
	if st2.Steps != 128 || st2.OracleCalls != 256 {
		t.Fatalf("hit-and-run stats = %+v, want 128 steps / 256 oracle calls", st2)
	}
	// 128 steps poll at i = 0, 32, 64, 96.
	if st2.InterruptPolls != 4 {
		t.Fatalf("InterruptPolls = %d, want 4", st2.InterruptPolls)
	}
}
