package walk

import (
	"fmt"
	"testing"

	"repro/internal/constraint"
	"repro/internal/geom"
	"repro/internal/linalg"
	"repro/internal/polytope"
	"repro/internal/rng"
)

func benchBody(d int) *polytope.Polytope {
	return polytope.FromTuple(constraint.Cube(d, -1, 1))
}

func center(d int) linalg.Vector { return make(linalg.Vector, d) }

func BenchmarkGridWalkStep(b *testing.B) {
	for _, d := range []int{2, 6} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			w, err := New(benchBody(d), center(d), rng.New(1), Config{
				Kind: GridWalk, Grid: geom.NewGrid(d, 0.05),
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Step()
			}
		})
	}
}

func BenchmarkBallWalkStep(b *testing.B) {
	for _, d := range []int{2, 6} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			w, err := New(benchBody(d), center(d), rng.New(2), Config{
				Kind: BallWalk, Delta: 0.3,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Step()
			}
		})
	}
}

func BenchmarkHitAndRunStep(b *testing.B) {
	for _, d := range []int{2, 6, 12} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			w, err := New(benchBody(d), center(d), rng.New(3), Config{Kind: HitAndRun})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.Step()
			}
		})
	}
}

func BenchmarkHitAndRunBisectionStep(b *testing.B) {
	// Membership-only oracle forces the bisection chord.
	d := 4
	ball := oracleBody{BallBody{Center: center(d), Radius: 1}}
	w, err := New(ball, center(d), rng.New(4), Config{Kind: HitAndRun, OuterRadius: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Step()
	}
}
