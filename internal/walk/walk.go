// Package walk implements the random walks that drive the paper's
// generators: the Dyer–Frieze–Kannan lazy grid walk (the walk of the
// theorem quoted in Section 2), plus the ball walk and hit-and-run as
// engineered alternatives with much faster practical mixing.
//
// All walks operate on a membership oracle (a Body), matching the
// paper's §5 observation that only a membership oracle is needed — which
// is why polynomial-constraint convex sets sample through the identical
// code path.
package walk

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/linalg"
	"repro/internal/rng"
)

// Body is a membership oracle for a (convex) set.
type Body interface {
	Dim() int
	Contains(x linalg.Vector) bool
}

// ChordBody is a Body that can intersect lines with itself exactly.
// H-polytopes implement it; membership-only oracles fall back to a
// bisection chord.
type ChordBody interface {
	Body
	Chord(x, dir linalg.Vector) (tmin, tmax float64, ok bool)
}

// ChordCapable lets wrapper bodies (MappedBody, IntersectionBody) report
// whether their Chord method is actually backed by every underlying
// body. A wrapper always *has* a Chord method, so the interface check
// alone would silently route membership-only oracles onto the exact
// path, where every chord fails and the walk never moves.
type ChordCapable interface {
	ChordBody
	ChordSupported() bool
}

// ChordSupport reports whether b can produce exact chords.
func ChordSupport(b Body) bool {
	if cc, ok := b.(ChordCapable); ok {
		return cc.ChordSupported()
	}
	_, ok := b.(ChordBody)
	return ok
}

// ErrStartOutside is returned when a walk is started at a point outside
// the body.
var ErrStartOutside = errors.New("walk: start point outside the body")

// Kind selects a walk implementation.
type Kind int

const (
	// GridWalk is the paper's lazy walk on the γ-grid graph induced on
	// the body: stay with probability 1/2, otherwise move to a uniform
	// axis neighbour if it is inside. Its stationary distribution is
	// uniform on the connected grid graph.
	GridWalk Kind = iota
	// BallWalk proposes a uniform point in a δ-ball and accepts if it is
	// inside.
	BallWalk
	// HitAndRun picks a uniform chord direction and a uniform point on
	// the chord; it mixes fastest in practice.
	HitAndRun
)

// String returns the walk name.
func (k Kind) String() string {
	switch k {
	case GridWalk:
		return "grid"
	case BallWalk:
		return "ball"
	default:
		return "hit-and-run"
	}
}

// Walker performs random-walk steps over a body.
type Walker struct {
	kind Kind
	body Body
	grid geom.Grid // grid walk only
	// delta is the ball-walk proposal radius.
	delta float64
	// outerRadius bounds the chord search for membership-only bodies.
	outerRadius float64
	cur         linalg.Vector
	r           *rng.RNG
	dirBuf      linalg.Vector
	// interrupt aborts long runs early (see Config.Interrupt); err holds
	// the abort cause until read through Err.
	interrupt func() error
	err       error
	// Steps executed and proposals accepted, for diagnostics.
	steps, accepted int
	// oracle counts membership/chord oracle invocations (a bisection
	// chord, though it probes Contains ~120 times internally, counts as
	// one invocation — the unit a planner prices is "oracle query", and
	// the bisection constant is fixed); polls counts interrupt polls.
	oracle, polls int
}

// Stats is a snapshot of a walker's accumulated effort counters.
type Stats struct {
	// Steps executed and proposals accepted.
	Steps, Accepted int
	// OracleCalls is the number of membership/chord oracle invocations.
	OracleCalls int
	// InterruptPolls is the number of interrupt-hook polls during Runs.
	InterruptPolls int
}

// Stats returns the walker's effort counters.
func (w *Walker) Stats() Stats {
	return Stats{Steps: w.steps, Accepted: w.accepted, OracleCalls: w.oracle, InterruptPolls: w.polls}
}

// Config carries walk construction parameters.
type Config struct {
	Kind Kind
	// Grid is required for GridWalk (the γ-grid of Definition 2.2).
	Grid geom.Grid
	// Delta is the BallWalk proposal radius; default r/√d is chosen by
	// the caller.
	Delta float64
	// OuterRadius bounds bisection chords for membership-only bodies
	// under HitAndRun. Required when the body is not a ChordBody.
	OuterRadius float64
	// Interrupt, when non-nil, is polled during multi-step runs; a
	// non-nil return aborts the run early (the walker stays at its last
	// position and reports the cause through Err). Callers wire a
	// context's Err here to make mixing runs cancellable mid-epoch.
	Interrupt func() error
}

// New returns a walker positioned at start.
func New(body Body, start linalg.Vector, r *rng.RNG, cfg Config) (*Walker, error) {
	cur := start.Clone()
	if cfg.Kind == GridWalk {
		cur = cfg.Grid.Snap(cur)
	}
	if !body.Contains(cur) {
		// A snapped start can fall out of thin bodies; walk back toward
		// the original point is not possible without membership, so fail
		// loudly — callers pick a finer grid.
		return nil, fmt.Errorf("%w (kind=%s)", ErrStartOutside, cfg.Kind)
	}
	if cfg.Kind == BallWalk && cfg.Delta <= 0 {
		return nil, errors.New("walk: BallWalk requires a positive Delta")
	}
	if cfg.Kind == HitAndRun && !ChordSupport(body) && cfg.OuterRadius <= 0 {
		return nil, errors.New("walk: HitAndRun on a membership-only body requires OuterRadius")
	}
	return &Walker{
		kind:        cfg.Kind,
		body:        body,
		grid:        cfg.Grid,
		delta:       cfg.Delta,
		outerRadius: cfg.OuterRadius,
		cur:         cur,
		r:           r,
		dirBuf:      make(linalg.Vector, body.Dim()),
		interrupt:   cfg.Interrupt,
	}, nil
}

// interruptStride bounds how many steps run between interrupt polls, so
// cancellation latency is a tiny fraction of any mixing epoch while the
// poll stays off the per-step fast path.
const interruptStride = 32

// Err returns the interrupt error that aborted the last Run, if any.
func (w *Walker) Err() error { return w.err }

// Current returns the walker's position (aliased; clone to keep).
func (w *Walker) Current() linalg.Vector { return w.cur }

// AcceptanceRate returns accepted proposals / steps (1.0 for hit-and-run).
func (w *Walker) AcceptanceRate() float64 {
	if w.steps == 0 {
		return 0
	}
	return float64(w.accepted) / float64(w.steps)
}

// Step advances the walk by one step.
func (w *Walker) Step() {
	w.steps++
	switch w.kind {
	case GridWalk:
		// Lazy: stay with probability 1/2 (guarantees aperiodicity, as in
		// the DFK analysis).
		if w.r.Bool() {
			return
		}
		d := w.body.Dim()
		j := w.r.Intn(d)
		sign := 1
		if w.r.Bool() {
			sign = -1
		}
		cand := w.grid.Neighbor(w.cur, j, sign)
		w.oracle++
		if w.body.Contains(cand) {
			w.cur = cand
			w.accepted++
		}
	case BallWalk:
		cand := w.cur.Clone()
		w.r.InBall(w.dirBuf)
		cand.AddScaled(w.delta, w.dirBuf)
		w.oracle++
		if w.body.Contains(cand) {
			w.cur = cand
			w.accepted++
		}
	case HitAndRun:
		w.r.OnSphere(w.dirBuf)
		w.oracle++
		tmin, tmax, ok := w.chord(w.cur, w.dirBuf)
		if !ok || tmax <= tmin || math.IsInf(tmin, -1) || math.IsInf(tmax, 1) {
			return
		}
		t := w.r.Uniform(tmin, tmax)
		next := w.cur.Clone()
		next.AddScaled(t, w.dirBuf)
		// Guard against numerically escaping the body at chord endpoints.
		w.oracle++
		if w.body.Contains(next) {
			w.cur = next
			w.accepted++
		}
	}
}

// Run advances n steps and returns the (aliased) final position. When
// the walker has an Interrupt hook, it is polled every interruptStride
// steps; a non-nil return aborts the run and is reported through Err.
// The hook check is hoisted out of the loop so uncancellable walkers
// pay nothing per step.
func (w *Walker) Run(n int) linalg.Vector {
	if w.interrupt == nil {
		//cdbcheck:ignore interruptpoll -- nil-hook fast path: the poll is hoisted into the branch guard above
		for i := 0; i < n; i++ {
			w.Step()
		}
		return w.cur
	}
	w.err = nil
	for i := 0; i < n; i++ {
		if i%interruptStride == 0 {
			w.polls++
			if err := w.interrupt(); err != nil {
				w.err = err
				return w.cur
			}
		}
		w.Step()
	}
	return w.cur
}

// Sample runs n mixing steps and returns a cloned point.
func (w *Walker) Sample(n int) linalg.Vector {
	return w.Run(n).Clone()
}

// chord returns the line-body intersection parameters, exact for
// chord-supporting bodies and by bisection otherwise.
func (w *Walker) chord(x, dir linalg.Vector) (float64, float64, bool) {
	if ChordSupport(w.body) {
		return w.body.(ChordBody).Chord(x, dir)
	}
	// Bisection within [-2R, 2R]: the body lies in a ball of radius R
	// around some centre at distance <= R from x, so 2R bounds any chord.
	span := 2 * w.outerRadius
	lo := bisectBoundary(w.body, x, dir, -span)
	hi := bisectBoundary(w.body, x, dir, span)
	return lo, hi, hi > lo
}

// bisectBoundary finds the boundary crossing between t=0 (inside) and
// t=far (assumed outside or at the limit) to 1e-9 relative precision.
func bisectBoundary(b Body, x, dir linalg.Vector, far float64) float64 {
	inside := 0.0
	outside := far
	probe := x.Clone()
	at := func(t float64) bool {
		copy(probe, x)
		probe.AddScaled(t, dir)
		return b.Contains(probe)
	}
	if at(far) {
		return far // body extends past the sweep: clamp
	}
	for i := 0; i < 60; i++ {
		mid := (inside + outside) / 2
		if at(mid) {
			inside = mid
		} else {
			outside = mid
		}
	}
	return inside
}

// DefaultGridSteps returns the engineering default step budget for the
// grid walk in dimension d with sandwiching ratio ratio = R/r. The
// theoretical DFK bound O(d^19/(εγ) ln 1/δ) is astronomically
// conservative; empirically O(d² ratio²) · grid-diameter steps mix well
// on the well-rounded bodies the sampler produces (validated by the E2
// experiment).
func DefaultGridSteps(d int, ratio float64, gridDiameter int) int {
	if ratio < 1 {
		ratio = 1
	}
	steps := float64(d*d) * ratio * ratio * float64(gridDiameter)
	if steps < 2000 {
		steps = 2000
	}
	if steps > 2e6 {
		steps = 2e6
	}
	return int(steps)
}

// DefaultHitAndRunSteps returns the engineering default step budget for
// hit-and-run: O(d²) steps with a floor, scaled by the sandwiching
// ratio.
func DefaultHitAndRunSteps(d int, ratio float64) int {
	if ratio < 1 {
		ratio = 1
	}
	steps := 12*d*d + int(10*ratio*float64(d))
	if steps < 60 {
		steps = 60
	}
	return steps
}

// BallBody is a Euclidean ball membership oracle (a convenience Body
// used by tests and the telescoping volume estimator).
type BallBody struct {
	Center linalg.Vector
	Radius float64
}

// Dim returns the ambient dimension.
func (b BallBody) Dim() int { return len(b.Center) }

// Contains reports membership.
func (b BallBody) Contains(x linalg.Vector) bool {
	return x.Dist(b.Center) <= b.Radius
}

// Chord intersects a line with the ball exactly.
func (b BallBody) Chord(x, dir linalg.Vector) (float64, float64, bool) {
	// |x + t·dir - c|² = R²; dir is unit for walk use, but handle any norm.
	diff := x.Sub(b.Center)
	a := dir.Dot(dir)
	bb := 2 * diff.Dot(dir)
	c := diff.Dot(diff) - b.Radius*b.Radius
	disc := bb*bb - 4*a*c
	if disc < 0 || a == 0 {
		return 0, 0, false
	}
	s := math.Sqrt(disc)
	return (-bb - s) / (2 * a), (-bb + s) / (2 * a), true
}

// IntersectionBody is the membership intersection of bodies (used for
// the telescoping estimator's K ∩ B(0, r_i) sequence).
type IntersectionBody struct {
	Bodies []Body
}

// Dim returns the common dimension.
func (ib IntersectionBody) Dim() int {
	if len(ib.Bodies) == 0 {
		return 0
	}
	return ib.Bodies[0].Dim()
}

// Contains reports membership in every body.
func (ib IntersectionBody) Contains(x linalg.Vector) bool {
	for _, b := range ib.Bodies {
		if !b.Contains(x) {
			return false
		}
	}
	return true
}

// ChordSupported reports whether every member can produce exact chords.
func (ib IntersectionBody) ChordSupported() bool {
	for _, b := range ib.Bodies {
		if !ChordSupport(b) {
			return false
		}
	}
	return true
}

// Chord intersects chords when every member supports them.
func (ib IntersectionBody) Chord(x, dir linalg.Vector) (float64, float64, bool) {
	tmin, tmax := math.Inf(-1), math.Inf(1)
	for _, b := range ib.Bodies {
		cb, ok := b.(ChordBody)
		if !ok {
			return 0, 0, false
		}
		lo, hi, ok := cb.Chord(x, dir)
		if !ok {
			return 0, 0, false
		}
		tmin = math.Max(tmin, lo)
		tmax = math.Min(tmax, hi)
	}
	if tmax < tmin {
		return 0, 0, false
	}
	return tmin, tmax, true
}

// MappedBody is the image of a Body under an invertible affine map:
// y ∈ MappedBody iff map⁻¹(y) ∈ Orig. Chords transfer exactly because
// affine maps preserve line parametrisation.
type MappedBody struct {
	Orig Body
	Map  *linalg.AffineMap
}

// Dim returns the ambient dimension.
func (m MappedBody) Dim() int { return m.Orig.Dim() }

// Contains reports membership of the pre-image.
func (m MappedBody) Contains(y linalg.Vector) bool {
	return m.Orig.Contains(m.Map.Invert(y))
}

// ChordSupported reports whether the wrapped body supports chords.
func (m MappedBody) ChordSupported() bool { return ChordSupport(m.Orig) }

// Chord maps the line into the original space: x + t·dir pre-images to
// M⁻¹(x - T) + t·(M⁻¹ dir), so the t interval is unchanged.
func (m MappedBody) Chord(x, dir linalg.Vector) (float64, float64, bool) {
	cb, ok := m.Orig.(ChordBody)
	if !ok {
		return 0, 0, false
	}
	x0 := m.Map.Invert(x)
	// Direction transforms without the translation.
	d0 := m.Map.Invert(dir.Add(m.Map.T))
	return cb.Chord(x0, d0)
}
