// Package seededrand enforces the determinism invariant PR 7's
// statistical auditing depends on: every random choice in library code
// flows from an explicit seed through internal/rng streams, so audits,
// differential fuzzers and EXPERIMENTS.md replays are reproducible.
//
// Two things are flagged in non-test files of every package except
// internal/rng itself:
//
//   - importing math/rand or math/rand/v2 (their global generators and
//     auto-seeding bypass the seeded streams), and
//   - deriving numbers from the wall clock via
//     time.Now().UnixNano()/Unix()/UnixMilli()/UnixMicro() — the
//     classic ad-hoc seed idiom. Plain time.Now() for durations and
//     timestamps stays legal.
package seededrand

import (
	"go/ast"
	"strconv"

	"repro/internal/analysis"
)

// Analyzer is the seededrand invariant check.
var Analyzer = &analysis.Analyzer{
	Name: "seededrand",
	Doc:  "randomness must flow through seeded internal/rng streams, not math/rand or wall-clock seeds (PR 7 determinism invariant)",
	Run:  run,
}

// clockInts are time.Time methods that turn the wall clock into an
// integer — seed material in every case this repository has seen.
var clockInts = map[string]bool{
	"UnixNano":  true,
	"Unix":      true,
	"UnixMilli": true,
	"UnixMicro": true,
}

func run(pass *analysis.Pass) error {
	if analysis.PathEndsIn(pass.Pkg.Path(), "internal/rng") {
		return nil
	}
	for _, f := range pass.SourceFiles() {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s: use seeded internal/rng streams so samples and audits replay deterministically", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !clockInts[sel.Sel.Name] {
				return true
			}
			// Only the direct time.Now().UnixX() chain is flagged: that
			// is the seed idiom, while UnixX on a stored timestamp is
			// data, not entropy.
			recv, ok := ast.Unparen(sel.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if f := analysis.StaticCallee(pass.TypesInfo, recv); analysis.IsFuncNamed(f, "time", "Now") {
				pass.Reportf(call.Pos(), "wall-clock-derived integer (time.Now().%s): seeds must be explicit and flow through internal/rng", sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
