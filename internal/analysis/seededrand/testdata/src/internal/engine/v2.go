package engine

import (
	mrand "math/rand/v2" // want `import of math/rand/v2`
)

func drawV2() int {
	return mrand.Int()
}
