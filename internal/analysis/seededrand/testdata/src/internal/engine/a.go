// Fixture for the seededrand analyzer: library packages must not
// import math/rand or derive seeds from the wall clock.
package engine

import (
	"math/rand" // want `import of math/rand`
	"time"
)

func draw() int {
	return rand.Int()
}

func badSeed() int64 {
	return time.Now().UnixNano() // want `wall-clock-derived integer \(time.Now\(\).UnixNano\)`
}

func badSeedMilli() int64 {
	return time.Now().UnixMilli() // want `wall-clock-derived integer \(time.Now\(\).UnixMilli\)`
}

// Plain time.Now for timestamps and durations stays legal.
func timestamp() time.Time { return time.Now() }

func elapsed(start time.Time) time.Duration { return time.Since(start) }

// UnixNano on a stored timestamp is data, not entropy.
func encode(t time.Time) int64 { return t.UnixNano() }
