// Fixture for the seededrand analyzer's scoping: internal/rng is the
// one package allowed to touch math/rand, so nothing here is flagged.
package rng

import "math/rand"

func New(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
