package seededrand

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestSeededRand(t *testing.T) {
	analysistest.Run(t, Analyzer, "internal/engine", "internal/rng")
}
