// Package analysis is the repository's static-analysis framework: a
// deliberately small, dependency-free reimplementation of the
// golang.org/x/tools go/analysis vocabulary (Analyzer, Pass,
// Diagnostic) that the cdbcheck suite builds on.
//
// The analyzers machine-enforce invariants that earlier PRs introduced
// by convention and review only:
//
//   - interruptpoll: sampling hot loops poll Interrupt/ctx (PR 3),
//   - cachekey: cache entries are keyed by the canonical key
//     constructors and every Options field reaches the fingerprint
//     (PR 1/4/9),
//   - spanend: every obs.Span started is ended on all paths (PR 6),
//   - seededrand: all randomness flows through seeded internal/rng
//     streams (PR 7),
//   - structerr: server handlers emit structured {error,...} JSON,
//     never bare http.Error (PR 9).
//
// False positives are suppressed with a line directive:
//
//	//cdbcheck:ignore <analyzer>[,<analyzer>...] -- reason
//
// placed on the flagged line or on the line directly above it. The
// reason is mandatory in spirit: reviewers treat a bare directive the
// way they treat a bare nolint.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis/load"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics and in
	// //cdbcheck:ignore directives.
	Name string
	// Doc describes the invariant, why it exists and which PR
	// introduced it.
	Doc string
	// Run reports the analyzer's findings on one package through
	// pass.Report.
	Run func(pass *Pass) error
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// SourceFiles returns the package's non-test files. The invariants the
// suite enforces are production-code contracts; tests legitimately use
// raw cache keys, ad-hoc seeds and unfinished spans.
func (p *Pass) SourceFiles() []*ast.File {
	var out []*ast.File
	for _, f := range p.Files {
		name := p.Fset.Position(f.FileStart).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, f)
	}
	return out
}

// PathEndsIn reports whether the slash-separated import path ends with
// one of the given suffixes (each a slash-separated path fragment).
// Analyzers scope themselves by suffix so analysistest fixtures — which
// live under fake import paths like "internal/core" — exercise the
// same code paths as the real packages.
func PathEndsIn(path string, suffixes ...string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// Run executes the analyzers over one loaded package and returns their
// findings, sorted by position, with //cdbcheck:ignore directives
// already applied.
func Run(pkg *load.Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	ignores := collectIgnores(pkg)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			report: func(d Diagnostic) {
				if !ignores.covers(pkg.Fset, d) {
					diags = append(diags, d)
				}
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// ignoreIndex records, per analyzer name, the set of (file, line)
// positions covered by a //cdbcheck:ignore directive. A directive
// covers its own line and the line below it, so both trailing and
// preceding placement work.
type ignoreIndex map[string]map[string]map[int]bool

func (ix ignoreIndex) add(analyzer, file string, line int) {
	byFile, ok := ix[analyzer]
	if !ok {
		byFile = map[string]map[int]bool{}
		ix[analyzer] = byFile
	}
	lines, ok := byFile[file]
	if !ok {
		lines = map[int]bool{}
		byFile[file] = lines
	}
	lines[line] = true
	lines[line+1] = true
}

func (ix ignoreIndex) covers(fset *token.FileSet, d Diagnostic) bool {
	byFile, ok := ix[d.Analyzer]
	if !ok {
		return false
	}
	pos := fset.Position(d.Pos)
	return byFile[pos.Filename][pos.Line]
}

const ignorePrefix = "//cdbcheck:ignore"

// collectIgnores scans every comment of the package for ignore
// directives.
func collectIgnores(pkg *load.Package) ignoreIndex {
	ix := ignoreIndex{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				// Everything after "--" is the human rationale.
				names, _, _ := strings.Cut(strings.TrimSpace(rest), "--")
				pos := pkg.Fset.Position(c.Pos())
				for _, name := range strings.Split(names, ",") {
					name = strings.TrimSpace(name)
					if name != "" {
						ix.add(name, pos.Filename, pos.Line)
					}
				}
			}
		}
	}
	return ix
}

// --- shared type helpers used by several analyzers ---

// NamedIn reports whether t (after pointer indirection) is a named
// type with the given name whose defining package's path ends in
// pkgSuffix. Generic instantiations match through their origin.
func NamedIn(t types.Type, name, pkgSuffix string) bool {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Origin().Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return PathEndsIn(obj.Pkg().Path(), pkgSuffix)
}

// CalleeName returns the bare name of a call's callee: the method name
// for selector calls, the function name for identifier calls, "" for
// anything else (indirect calls, conversions through parens, ...).
func CalleeName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := ast.Unparen(fn.X).(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}

// StaticCallee resolves a call to the *types.Func it invokes, or nil
// for indirect calls and conversions.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fn].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified call: pkg.Func.
		if f, ok := info.Uses[fn.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// IsFuncNamed reports whether f is the named function of the package
// whose import path ends in pkgSuffix (e.g. "net/http", "Error").
func IsFuncNamed(f *types.Func, pkgSuffix, name string) bool {
	return f != nil && f.Name() == name && f.Pkg() != nil && PathEndsIn(f.Pkg().Path(), pkgSuffix)
}
