// Fixture for the spanend analyzer: a stand-in for the real obs span
// surface (same type/constructor names, same path suffix).
package obs

import "context"

// Span mimics obs.Span.
type Span struct{}

func (s *Span) End()                         {}
func (s *Span) Set(key string, v any)        {}
func (s *Span) TraceID() string              { return "" }
func (s *Span) StartChild(name string) *Span { return &Span{} }

// Start mimics obs.Start: it returns (ctx, span).
func Start(ctx context.Context, name string) (context.Context, *Span) {
	return ctx, &Span{}
}
