package obs

import (
	"context"
	"fmt"
	"os"
)

func goodDefer(ctx context.Context) {
	ctx, sp := Start(ctx, "good")
	defer sp.End()
	_ = ctx
}

func goodDeferClosure(ctx context.Context) {
	_, sp := Start(ctx, "good")
	defer func() {
		sp.Set("done", true)
		sp.End()
	}()
}

func goodExplicit(ctx context.Context) {
	_, sp := Start(ctx, "good")
	sp.End()
}

func goodChild(ctx context.Context) {
	_, sp := Start(ctx, "parent")
	defer sp.End()
	child := sp.StartChild("phase")
	child.End()
}

func bad(ctx context.Context) {
	_, sp := Start(ctx, "bad") // want `span "sp" is not ended on all paths`
	_ = sp
}

func badChild(ctx context.Context) {
	_, sp := Start(ctx, "parent")
	defer sp.End()
	child := sp.StartChild("phase") // want `span "child" is not ended on all paths`
	child.Set("k", 1)
}

func badEarlyReturn(ctx context.Context, fail bool) {
	_, sp := Start(ctx, "r")
	if fail {
		return // want `return with span "sp" still open`
	}
	sp.End()
}

func goodBranches(ctx context.Context, v bool) {
	_, sp := Start(ctx, "b")
	if v {
		sp.End()
	} else {
		sp.End()
	}
}

func badBranch(ctx context.Context, v bool) {
	_, sp := Start(ctx, "bb") // want `span "sp" is not ended on all paths`
	if v {
		sp.End()
	}
}

func goodSwitch(ctx context.Context, n int) {
	_, sp := Start(ctx, "sw")
	switch n {
	case 0:
		sp.End()
	default:
		sp.End()
	}
}

func goodTerminator(ctx context.Context, broken bool) {
	_, sp := Start(ctx, "t")
	if broken {
		fmt.Fprintln(os.Stderr, "fatal state")
		panic("unreachable beyond here")
	}
	sp.End()
}

// escaped spans transfer the End obligation to their new owner.
func escaped(ctx context.Context) *Span {
	_, sp := Start(ctx, "esc")
	return sp
}

type holder struct{ sp *Span }

func stored(ctx context.Context, h *holder) {
	_, sp := Start(ctx, "stored")
	h.sp = sp
}
