// Package spanend enforces the tracing invariant PR 6 introduced:
// every obs.Span started (obs.Start, obs.NewTrace, cdb.StartTrace,
// Span.StartChild) must be ended on every path out of the function
// that started it — otherwise the span never reports its duration, its
// parent's stage breakdown silently loses a stage, and slow-query logs
// under-attribute time.
//
// The check is block-structured rather than a full CFG: after the
// starting statement it scans forward through the enclosing block;
// a `defer v.End()` (directly or inside a deferred closure) discharges
// everything after it, a plain `v.End()` discharges the statements
// below it, and any `return` reached while the span is still open is
// flagged, recursively through if/for/switch/select branches. Spans
// that escape the function — returned, stored, or passed to another
// call — transfer the obligation to their new owner and are skipped,
// as are paths that terminate the process (panic, log.Fatal, os.Exit).
package spanend

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the spanend invariant check.
var Analyzer = &analysis.Analyzer{
	Name: "spanend",
	Doc:  "every obs.Span started must be ended on all return paths (PR 6 tracing invariant)",
	Run:  run,
}

// startNames are the callee names that mint a span.
var startNames = map[string]bool{
	"Start":      true,
	"NewTrace":   true,
	"StartTrace": true,
	"StartChild": true,
}

// terminators are callee names after which control does not return to
// the function (process exit or panic), so an open span is moot.
var terminators = map[string]bool{
	"panic":   true,
	"Exit":    true,
	"Fatal":   true,
	"Fatalf":  true,
	"Fatalln": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// spanStart is one span-minting assignment inside a function body.
type spanStart struct {
	obj  types.Object // the variable holding the span
	stmt ast.Stmt     // the assignment statement
	name string       // span variable name, for the message
}

// checkFunc finds span starts in one function body and verifies each.
// Nested function literals are checked by their own invocation of
// checkFunc; their bodies are skipped here so a span started inside a
// closure is attributed to the closure's paths, not the enclosing
// function's.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	var starts []spanStart
	forEachStmt(body, func(stmt ast.Stmt) {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !startNames[analysis.CalleeName(call)] {
			return
		}
		// The span is the last value: Start/NewTrace return (ctx, span),
		// StartChild returns the span alone.
		lhs := as.Lhs[len(as.Lhs)-1]
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil || !analysis.NamedIn(obj.Type(), "Span", "internal/obs") {
			return
		}
		starts = append(starts, spanStart{obj: obj, stmt: stmt, name: id.Name})
	})
	for _, st := range starts {
		if escapes(pass, body, st) {
			continue
		}
		checkStart(pass, body, st)
	}
}

// forEachStmt visits every statement in the function body except those
// inside nested function literals.
func forEachStmt(body *ast.BlockStmt, fn func(ast.Stmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if s, ok := n.(ast.Stmt); ok {
			fn(s)
		}
		return true
	})
}

// escapes reports whether the span variable leaves the function's
// hands: returned, stored into a structure, sent, captured by a
// non-defer closure, or passed as a call argument. The obligation to
// End transfers to the new owner, so escaped spans are skipped. Method
// calls ON the span (sp.End(), sp.Set(...), foo(sp.TraceID())) are not
// escapes — only the span value itself moving counts.
func escapes(pass *analysis.Pass, body *ast.BlockStmt, st spanStart) bool {
	// isSpan reports whether e is the tracked variable itself (through
	// parens and address-of).
	var isSpan func(e ast.Expr) bool
	isSpan = func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			return pass.TypesInfo.Uses[e] == st.obj
		case *ast.UnaryExpr:
			return isSpan(e.X)
		}
		return false
	}
	capturedBy := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(c ast.Node) bool {
			if id, ok := c.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == st.obj {
				found = true
			}
			return !found
		})
		return found
	}
	escaped := false
	ast.Inspect(body, func(n ast.Node) bool {
		if escaped {
			return false
		}
		switch n := n.(type) {
		case *ast.DeferStmt:
			// Defers may mention the span (the defer-End idiom).
			return false
		case *ast.FuncLit:
			// A non-defer closure capturing the span owns it now.
			if capturedBy(n) {
				escaped = true
			}
			return false
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if isSpan(r) {
					escaped = true
				}
			}
		case *ast.SendStmt:
			if isSpan(n.Value) {
				escaped = true
			}
		case *ast.AssignStmt:
			// Storing the span anywhere other than a plain local rebinding.
			for i, lhs := range n.Lhs {
				if _, ok := lhs.(*ast.Ident); !ok && i < len(n.Rhs) && isSpan(n.Rhs[i]) {
					escaped = true
				}
			}
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if isSpan(arg) {
					escaped = true
				}
			}
		case *ast.CompositeLit:
			for _, e := range n.Elts {
				if kv, ok := e.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if isSpan(e) {
					escaped = true
				}
			}
		}
		return !escaped
	})
	return escaped
}

// checkStart verifies one span start against the block structure: the
// span must be discharged within the statement list that contains the
// start (an End or defer-End there dominates every later exit from
// it), with returns-while-open reported where they happen.
func checkStart(pass *analysis.Pass, body *ast.BlockStmt, st spanStart) {
	list := enclosingList(body, st.stmt)
	if list == nil {
		return
	}
	idx := -1
	for i, s := range list {
		if s == st.stmt {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	ended, violated := scanStmts(pass, st, list[idx+1:])
	if !ended && !violated {
		pass.Reportf(st.stmt.Pos(), "span %q is not ended on all paths out of its block: add `defer %s.End()` after the start", st.name, st.name)
	}
}

// enclosingList returns the statement list that directly contains
// target: a block's statements or a case/comm clause body.
func enclosingList(body *ast.BlockStmt, target ast.Stmt) []ast.Stmt {
	var found []ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		var list []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			return true
		}
		for _, s := range list {
			if s == target {
				found = list
				return false
			}
		}
		return true
	})
	return found
}

// scanStmts scans a statement list that begins with the span open.
// ended reports whether the span is discharged by the end of the list;
// violated reports whether a violation was found (and reported).
func scanStmts(pass *analysis.Pass, st spanStart, stmts []ast.Stmt) (ended, violated bool) {
	for _, s := range stmts {
		if ended {
			return true, violated
		}
		switch s := s.(type) {
		case *ast.DeferStmt:
			if mentionsEnd(pass, st, s) {
				ended = true
			}
		case *ast.ExprStmt:
			if isEndCall(pass, st, s.X) {
				ended = true
			} else if isTerminator(s.X) {
				return false, violated // process exits; remaining stmts unreachable
			}
		case *ast.AssignStmt:
			// Rebinding the variable to a new span closes this check's
			// window (the new binding is checked separately).
			if rebinds(pass, st, s) {
				return false, violated
			}
		case *ast.ReturnStmt:
			pass.Reportf(s.Pos(), "return with span %q still open: end it before returning or use `defer %s.End()`", st.name, st.name)
			return false, true
		case *ast.IfStmt:
			e, v := scanIf(pass, st, s)
			ended, violated = ended || e, violated || v
		case *ast.ForStmt:
			_, v := scanStmts(pass, st, s.Body.List)
			violated = violated || v
		case *ast.RangeStmt:
			_, v := scanStmts(pass, st, s.Body.List)
			violated = violated || v
		case *ast.SwitchStmt:
			e, v := scanClauses(pass, st, s.Body)
			ended, violated = ended || e, violated || v
		case *ast.TypeSwitchStmt:
			e, v := scanClauses(pass, st, s.Body)
			ended, violated = ended || e, violated || v
		case *ast.SelectStmt:
			e, v := scanClauses(pass, st, s.Body)
			ended, violated = ended || e, violated || v
		case *ast.BlockStmt:
			e, v := scanStmts(pass, st, s.List)
			ended, violated = ended || e, violated || v
		}
	}
	return ended, violated
}

// scanIf handles an if/else chain: the span counts as ended after the
// chain only if every branch (including an implicit empty else) ends
// it.
func scanIf(pass *analysis.Pass, st spanStart, s *ast.IfStmt) (ended, violated bool) {
	thenEnded, v1 := scanStmts(pass, st, s.Body.List)
	violated = v1
	switch els := s.Else.(type) {
	case nil:
		return false, violated
	case *ast.BlockStmt:
		elseEnded, v2 := scanStmts(pass, st, els.List)
		return thenEnded && elseEnded, violated || v2
	case *ast.IfStmt:
		elseEnded, v2 := scanIf(pass, st, els)
		return thenEnded && elseEnded, violated || v2
	}
	return false, violated
}

// scanClauses handles switch/select bodies: ended only if every clause
// ends the span.
func scanClauses(pass *analysis.Pass, st spanStart, body *ast.BlockStmt) (ended, violated bool) {
	all := true
	any := false
	for _, c := range body.List {
		var list []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			list = c.Body
		case *ast.CommClause:
			list = c.Body
		}
		e, v := scanStmts(pass, st, list)
		violated = violated || v
		all = all && e
		any = true
	}
	return any && all, violated
}

// isEndCall reports whether e is `v.End()` for the tracked span.
func isEndCall(pass *analysis.Pass, st spanStart, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == st.obj
}

// mentionsEnd reports whether the defer statement ends the span,
// either directly (`defer v.End()`) or inside a deferred closure.
func mentionsEnd(pass *analysis.Pass, st spanStart, s *ast.DeferStmt) bool {
	if isEndCall(pass, st, s.Call) {
		return true
	}
	found := false
	ast.Inspect(s.Call, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && isEndCall(pass, st, e) {
			found = true
		}
		return !found
	})
	return found
}

// isTerminator reports whether the expression statement never returns
// control (panic, os.Exit, log.Fatal*).
func isTerminator(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	return ok && terminators[analysis.CalleeName(call)]
}

// rebinds reports whether the assignment rebinds the tracked variable.
func rebinds(pass *analysis.Pass, st spanStart, as *ast.AssignStmt) bool {
	for _, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		if pass.TypesInfo.Defs[id] == st.obj || pass.TypesInfo.Uses[id] == st.obj {
			return true
		}
	}
	return false
}
