package spanend

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestSpanEnd(t *testing.T) {
	analysistest.Run(t, Analyzer, "internal/obs")
}
