// Package interruptpoll enforces the cancellation invariant PR 3
// introduced: every sampling hot loop in internal/core, internal/walk
// and internal/runtime must reach an Interrupt/ctx poll, so a context
// cancellation aborts an in-flight draw mid-walk instead of after it.
//
// A `for` loop is flagged when its body performs draw work — a call
// named Sample/SampleN/SampleRounded/Step/Volume, a walker Run, or a
// same-package function that transitively does — while nothing in the
// body observes an interrupt: no call named
// interrupted/Interrupt/interrupt/Err/Done, no transitively polling
// same-package call, and no draw whose error result is consumed
// (generators propagate the interrupt cause through their error
// return, so checking it is reaching the poll).
package interruptpoll

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the interruptpoll invariant check.
var Analyzer = &analysis.Analyzer{
	Name: "interruptpoll",
	Doc:  "sampling hot loops must reach an Interrupt/ctx.Err poll (PR 3 cancellation invariant)",
	Run:  run,
}

// pollNames are callee names whose invocation counts as observing an
// interrupt: the Options.interrupted helper, a raw Interrupt hook, a
// walker's Err readback, or a context's Err/Done.
var pollNames = map[string]bool{
	"interrupted": true,
	"Interrupted": true,
	"Interrupt":   true,
	"interrupt":   true,
	"Err":         true,
	"Done":        true,
}

// drawNames are callee names that perform sampling work wherever they
// appear.
var drawNames = map[string]bool{
	"Sample":        true,
	"SampleN":       true,
	"SampleRounded": true,
	"Step":          true,
	"Volume":        true,
}

type fact struct{ draws, polls bool }

func run(pass *analysis.Pass) error {
	if !analysis.PathEndsIn(pass.Pkg.Path(), "internal/core", "internal/walk", "internal/runtime") {
		return nil
	}
	files := pass.SourceFiles()

	// Same-package function facts: does each declared function draw or
	// poll, directly or through same-package calls (fixpoint)?
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
		}
	}
	facts := map[*types.Func]*fact{}
	edges := map[*types.Func][]*types.Func{}
	for obj, fd := range decls {
		fs := &fact{}
		facts[obj] = fs
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isPollCall(call) {
				fs.polls = true
			}
			if isDrawCall(pass, call) {
				fs.draws = true
			}
			if callee := localCallee(pass, call); callee != nil {
				edges[obj] = append(edges[obj], callee)
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for obj := range decls {
			fs := facts[obj]
			for _, callee := range edges[obj] {
				cf := facts[callee]
				if cf == nil {
					continue
				}
				if cf.draws && !fs.draws {
					fs.draws = true
					changed = true
				}
				if cf.polls && !fs.polls {
					fs.polls = true
					changed = true
				}
			}
		}
	}

	// Flag loops that draw without polling. Each loop is judged on its
	// own body (a poll in an outer loop does not unblock an inner loop
	// that never exits).
	for _, fd := range decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch s := n.(type) {
			case *ast.ForStmt:
				body = s.Body
			case *ast.RangeStmt:
				body = s.Body
			default:
				return true
			}
			draws, polls := scanLoop(pass, facts, body)
			if draws && !polls {
				pass.Reportf(n.Pos(), "sampling loop never reaches an Interrupt/ctx poll: poll Options.Interrupt or ctx.Err, check the walker's Err, or consume the draw's error result")
			}
			return true
		})
	}
	return nil
}

// scanLoop classifies one loop body.
func scanLoop(pass *analysis.Pass, facts map[*types.Func]*fact, body *ast.BlockStmt) (draws, polls bool) {
	consumed := consumedErrorCalls(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isPollCall(call) {
			polls = true
		}
		transDraw := isDrawCall(pass, call)
		if callee := localCallee(pass, call); callee != nil {
			if cf := facts[callee]; cf != nil {
				transDraw = transDraw || cf.draws
				polls = polls || cf.polls
			}
		}
		if transDraw {
			draws = true
			if consumed[call] {
				polls = true
			}
		}
		return true
	})
	return draws, polls
}

// consumedErrorCalls returns the calls in body whose trailing error
// result is assigned to a non-blank variable or returned to the
// caller.
func consumedErrorCalls(pass *analysis.Pass, body *ast.BlockStmt) map[*ast.CallExpr]bool {
	consumed := map[*ast.CallExpr]bool{}
	mark := func(e ast.Expr, blank bool) {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok || blank || !lastResultIsError(pass, call) {
			return
		}
		consumed[call] = true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Rhs) == 1 {
				mark(s.Rhs[0], isBlank(s.Lhs[len(s.Lhs)-1]))
				return true
			}
			for i, rhs := range s.Rhs {
				if i < len(s.Lhs) {
					mark(rhs, isBlank(s.Lhs[i]))
				}
			}
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				mark(r, false)
			}
		}
		return true
	})
	return consumed
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// lastResultIsError reports whether the call's final result has type
// error.
func lastResultIsError(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return false
	}
	t := tv.Type
	if tuple, ok := t.(*types.Tuple); ok {
		if tuple.Len() == 0 {
			return false
		}
		t = tuple.At(tuple.Len() - 1).Type()
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func isPollCall(call *ast.CallExpr) bool {
	return pollNames[analysis.CalleeName(call)]
}

// isDrawCall reports whether the call performs draw work by name. Run
// counts only on a walk.Walker receiver (Run is too common a name to
// match globally).
func isDrawCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	name := analysis.CalleeName(call)
	if drawNames[name] {
		return true
	}
	if name != "Run" {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	return ok && analysis.NamedIn(tv.Type, "Walker", "internal/walk")
}

// localCallee resolves a call to a function declared in the package
// under analysis, or nil.
func localCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	f := analysis.StaticCallee(pass.TypesInfo, call)
	if f == nil {
		return nil
	}
	f = f.Origin()
	if f.Pkg() != pass.Pkg {
		return nil
	}
	return f
}
