package interruptpoll

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestInterruptPoll(t *testing.T) {
	analysistest.Run(t, Analyzer, "internal/core", "internal/walk", "internal/other")
}
