// Fixture for the interruptpoll analyzer's scoping: packages outside
// internal/core, internal/walk and internal/runtime are not checked,
// so this drawing loop must produce no diagnostics.
package other

func Sample() (float64, error) { return 0, nil }

func unchecked(n int) {
	for i := 0; i < n; i++ {
		Sample()
	}
}
