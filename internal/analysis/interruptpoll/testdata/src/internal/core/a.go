// Fixture for the interruptpoll analyzer: sampling loops in
// internal/core must reach an Interrupt/ctx poll.
package core

// Sample stands in for a generator draw: it does draw work by name and
// propagates the interrupt cause through its error result.
func Sample() (float64, error) { return 0, nil }

// interrupted stands in for the Options.interrupted poll helper.
func interrupted() error { return nil }

// drawHelper draws transitively.
func drawHelper() { Sample() }

// pollHelper polls transitively.
func pollHelper() error { return interrupted() }

func bad(n int) {
	for i := 0; i < n; i++ { // want `sampling loop never reaches an Interrupt/ctx poll`
		Sample()
	}
}

func rangeBad(xs []int) {
	for range xs { // want `sampling loop never reaches an Interrupt/ctx poll`
		Sample()
	}
}

func discarding(n int) {
	for i := 0; i < n; i++ { // want `sampling loop never reaches an Interrupt/ctx poll`
		_, _ = Sample()
	}
}

func transitiveBad(n int) {
	for i := 0; i < n; i++ { // want `sampling loop never reaches an Interrupt/ctx poll`
		drawHelper()
	}
}

func goodDirectPoll(n int) {
	for i := 0; i < n; i++ {
		Sample()
		if err := interrupted(); err != nil {
			return
		}
	}
}

func goodTransitivePoll(n int) {
	for i := 0; i < n; i++ {
		drawHelper()
		if err := pollHelper(); err != nil {
			return
		}
	}
}

func goodConsumesError(n int) error {
	for i := 0; i < n; i++ {
		if _, err := Sample(); err != nil {
			return err
		}
	}
	return nil
}

func goodNoDraw(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}

func suppressed(n int) {
	//cdbcheck:ignore interruptpoll -- fixture: deliberate uncancellable warm-up loop
	for i := 0; i < n; i++ {
		Sample()
	}
}

func wrongDirective(n int) {
	//cdbcheck:ignore cachekey -- fixture: names a different analyzer, so it must not suppress
	for i := 0; i < n; i++ { // want `sampling loop never reaches an Interrupt/ctx poll`
		Sample()
	}
}
