// Fixture for the interruptpoll analyzer's Walker.Run recognition:
// Run only counts as draw work on a walk.Walker receiver.
package walk

// Walker mimics the real walker's surface.
type Walker struct{}

func (w *Walker) Run(n int) int { return n }
func (w *Walker) Err() error    { return nil }

// runner is an unrelated type whose Run must NOT count as draw work.
type runner struct{}

func (r *runner) Run(n int) int { return n }

func driveBad(w *Walker, n int) {
	for i := 0; i < n; i++ { // want `sampling loop never reaches an Interrupt/ctx poll`
		w.Run(64)
	}
}

func driveGood(w *Walker, n int) error {
	for i := 0; i < n; i++ {
		w.Run(64)
		if err := w.Err(); err != nil {
			return err
		}
	}
	return nil
}

func unrelatedRun(r *runner, n int) {
	for i := 0; i < n; i++ {
		r.Run(64)
	}
}
