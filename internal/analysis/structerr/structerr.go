// Package structerr enforces the error-shape invariant of the HTTP
// surface (PR 1, tightened by PR 9): internal/server handlers emit
// structured JSON error bodies — {"error": ...} with op_path/line/col
// attribution where available — via Server.writeError, never bare
// http.Error text. Cluster peers, the CLI tools and the SQL surface
// all parse these bodies; a stray http.Error turns a machine-readable
// failure into an unparseable string and breaks error forwarding.
package structerr

import (
	"go/ast"

	"repro/internal/analysis"
)

// Analyzer is the structerr invariant check.
var Analyzer = &analysis.Analyzer{
	Name: "structerr",
	Doc:  "internal/server must emit structured {error,...} JSON via writeError, never bare http.Error (PR 1/9 error-shape invariant)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !analysis.PathEndsIn(pass.Pkg.Path(), "internal/server") {
		return nil
	}
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := analysis.StaticCallee(pass.TypesInfo, call); analysis.IsFuncNamed(fn, "net/http", "Error") {
				pass.Reportf(call.Pos(), "bare http.Error in a server handler: use writeError so clients get the structured {error,...} JSON body")
			}
			return true
		})
	}
	return nil
}
