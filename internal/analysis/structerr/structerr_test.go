package structerr

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestStructErr(t *testing.T) {
	analysistest.Run(t, Analyzer, "internal/server", "internal/client")
}
