// Fixture for the structerr analyzer: internal/server handlers must
// route errors through writeError, never bare http.Error.
package server

import (
	"encoding/json"
	"net/http"
)

type server struct{}

func (s *server) writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func (s *server) handleBad(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "boom", http.StatusInternalServerError) // want `bare http.Error in a server handler`
}

func (s *server) handleGood(w http.ResponseWriter, r *http.Request, err error) {
	s.writeError(w, http.StatusBadRequest, err)
}

// A local helper that happens to be called Error is fine.
type reporter struct{}

func (reporter) Error(w http.ResponseWriter, msg string, code int) {}

func (s *server) handleLocalError(w http.ResponseWriter, r *http.Request) {
	var rep reporter
	rep.Error(w, "structured elsewhere", http.StatusTeapot)
}
