// Fixture for the structerr analyzer's scoping: packages outside
// internal/server may use http.Error freely.
package client

import "net/http"

func serveDebug(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "not a server handler", http.StatusNotFound)
}
