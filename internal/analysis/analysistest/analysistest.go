// Package analysistest runs cdbcheck analyzers over fixture packages
// and checks their diagnostics against // want comments, mirroring the
// golang.org/x/tools analysistest contract on the standard library
// alone.
//
// Fixtures live under the analyzer package's testdata/src/<importpath>
// directory and are loaded with that (fake) import path, so analyzers
// that scope themselves by path suffix — internal/core,
// internal/server, ... — exercise exactly the code paths they take on
// the real tree. A fixture line that should be flagged carries a
// comment of the form
//
//	// want `regexp` [`regexp` ...]
//
// where each regexp must match the message of a distinct diagnostic
// reported on that line. Diagnostics without a matching want, and
// wants without a matching diagnostic, fail the test.
package analysistest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// Run checks one analyzer against the fixture packages named by their
// import paths under testdata/src. It must be called from the analyzer
// package's own test (the working directory anchors testdata).
func Run(t *testing.T, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	loader, err := load.New(".")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	for _, path := range pkgPaths {
		t.Run(strings.ReplaceAll(path, "/", "_"), func(t *testing.T) {
			runOne(t, loader, a, path)
		})
	}
}

func runOne(t *testing.T, loader *load.Loader, a *analysis.Analyzer, path string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", filepath.FromSlash(path))
	pkg, err := loader.LoadDir(dir, path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture %s does not type-check: %v", dir, pkg.TypeErrors)
	}
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, path, err)
	}

	wants := parseWants(t, pkg.Fset, pkg)
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if w := match(wants, pos, d.Message); w != nil {
			w.matched = true
			continue
		}
		t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// want is one expectation extracted from a fixture comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// match finds the first unmatched want on the diagnostic's line whose
// pattern matches the message.
func match(wants []*want, pos token.Position, msg string) *want {
	for _, w := range wants {
		if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(msg) {
			return w
		}
	}
	return nil
}

const wantPrefix = "// want "

// parseWants extracts every // want expectation from the fixture's
// comments. Each quoted token (double- or back-quoted, per Go string
// syntax) is an independent expectation for the comment's line.
func parseWants(t *testing.T, fset *token.FileSet, pkg *load.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, wantPrefix)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for rest = strings.TrimSpace(rest); rest != ""; rest = strings.TrimSpace(rest) {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s:%d: malformed want comment near %q", pos.Filename, pos.Line, rest)
					}
					rest = rest[len(q):]
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: unquoting %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}
