// Package load turns Go packages into the parsed, type-checked form
// the cdbcheck analyzers consume.
//
// The repository's static-analysis suite cannot depend on
// golang.org/x/tools (the module is deliberately dependency-free), so
// this package reimplements the small slice of go/packages it needs on
// the standard library alone:
//
//   - module packages (import paths under the module path, plus
//     analysistest fixture directories) are parsed and type-checked
//     from source, and
//   - everything else — in practice the standard library — is imported
//     from the compiler's export data, located by one
//     `go list -export -deps -json ./...` run over the module.
//
// The two worlds share one gc importer and one token.FileSet, so type
// identity is consistent across them: a fixture package and the real
// repro/internal/runtime see the same *types.Package for "context".
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one type-checked package: the syntax the analyzers walk
// and the type information that anchors it.
type Package struct {
	// Path is the package's import path (fixtures use the path of their
	// directory under testdata/src, e.g. "internal/server").
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors holds type-checking problems that did not prevent a
	// best-effort load (fixtures may reference deliberately odd code).
	TypeErrors []error
}

// listPkg is the subset of `go list -json` output the loader uses.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	Standard   bool
	GoFiles    []string
	Imports    []string
	Module     *struct{ Path, Dir string }
}

// Loader loads packages for analysis. It is safe for concurrent use.
type Loader struct {
	Fset *token.FileSet

	modDir  string
	modPath string

	mu    sync.Mutex
	meta  map[string]*listPkg // import path -> go list metadata
	src   map[string]*Package // source-checked module packages
	gcImp types.Importer      // export-data importer for non-module deps
}

// New returns a loader rooted at the module containing dir. It runs
// `go list -export -deps -json ./...` once to learn every package in
// the module's build graph and where its export data lives.
func New(dir string) (*Loader, error) {
	modDir, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	l := &Loader{
		Fset:    token.NewFileSet(),
		modDir:  modDir,
		modPath: modPath,
		meta:    map[string]*listPkg{},
		src:     map[string]*Package{},
	}
	l.gcImp = importer.ForCompiler(l.Fset, "gc", l.lookupExport)
	if err := l.runList("-export", "-deps", "-json", "./..."); err != nil {
		return nil, err
	}
	return l, nil
}

// ModuleDir returns the root directory of the loaded module.
func (l *Loader) ModuleDir() string { return l.modDir }

// ModulePath returns the module path (the import-path prefix of every
// module package).
func (l *Loader) ModulePath() string { return l.modPath }

// findModule walks up from dir to the enclosing go.mod.
func findModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("load: %s/go.mod has no module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("load: no go.mod above %s", abs)
		}
	}
}

// runList runs `go list` with args in the module root and folds the
// JSON stream into l.meta.
func (l *Loader) runList(args ...string) error {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = l.modDir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("load: go list %s: %v\n%s", strings.Join(args, " "), err, errb.String())
	}
	dec := json.NewDecoder(&out)
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			return nil
		} else if err != nil {
			return fmt.Errorf("load: decoding go list output: %v", err)
		}
		if _, ok := l.meta[p.ImportPath]; !ok {
			cp := p
			l.meta[p.ImportPath] = &cp
		}
	}
}

// lookupExport opens the export data for a non-module import path,
// running a targeted `go list -export` for paths outside the module's
// own dependency graph (a fixture importing a stdlib package the
// repository does not).
func (l *Loader) lookupExport(path string) (io.ReadCloser, error) {
	l.mu.Lock()
	p, ok := l.meta[path]
	l.mu.Unlock()
	if !ok || p.Export == "" {
		if err := l.runList("-export", "-json", path); err != nil {
			return nil, err
		}
		l.mu.Lock()
		p, ok = l.meta[path]
		l.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("load: no metadata for %q", path)
		}
	}
	if p.Export == "" {
		return nil, fmt.Errorf("load: no export data for %q", path)
	}
	return os.Open(p.Export)
}

// local reports whether path names a package inside the module.
func (l *Loader) local(path string) bool {
	return path == l.modPath || strings.HasPrefix(path, l.modPath+"/")
}

// Import implements types.Importer over both worlds.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.local(path) {
		pkg, err := l.loadLocal(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.gcImp.Import(path)
}

// loadLocal source-loads a module package by import path, memoized.
func (l *Loader) loadLocal(path string) (*Package, error) {
	l.mu.Lock()
	if pkg, ok := l.src[path]; ok {
		l.mu.Unlock()
		if pkg == nil {
			return nil, fmt.Errorf("load: import cycle through %q", path)
		}
		return pkg, nil
	}
	meta, ok := l.meta[path]
	l.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("load: unknown module package %q", path)
	}
	return l.loadDir(meta.Dir, path, meta.GoFiles)
}

// LoadPackage loads one module package by import path or by a
// directory-ish pattern ("./internal/core").
func (l *Loader) LoadPackage(pattern string) (*Package, error) {
	path := pattern
	if strings.HasPrefix(pattern, "./") || pattern == "." {
		rel := strings.TrimPrefix(filepath.ToSlash(filepath.Clean(pattern)), "./")
		if rel == "." || rel == "" {
			path = l.modPath
		} else {
			path = l.modPath + "/" + rel
		}
	}
	return l.loadLocal(path)
}

// LoadAll loads every package of the module (the "./..." pattern),
// sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	l.mu.Lock()
	var paths []string
	for path := range l.meta {
		if l.local(path) {
			paths = append(paths, path)
		}
	}
	l.mu.Unlock()
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, path := range paths {
		pkg, err := l.loadLocal(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the .go files of one directory under
// the given import path. It is how analysistest loads fixture packages
// that live in testdata (invisible to the go tool) yet import real
// module packages.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load: no .go files in %s", dir)
	}
	sort.Strings(files)
	return l.loadDir(dir, path, files)
}

// loadDir does the parse + type-check work shared by module packages
// and fixture directories.
func (l *Loader) loadDir(dir, path string, fileNames []string) (*Package, error) {
	l.mu.Lock()
	if pkg, ok := l.src[path]; ok {
		l.mu.Unlock()
		if pkg == nil {
			return nil, fmt.Errorf("load: import cycle through %q", path)
		}
		return pkg, nil
	}
	l.src[path] = nil // cycle marker
	l.mu.Unlock()

	var files []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			l.forget(path)
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil && tpkg == nil {
		l.forget(path)
		return nil, fmt.Errorf("load: type-checking %s: %v", path, err)
	}
	pkg := &Package{
		Path:       path,
		Fset:       l.Fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		TypeErrors: typeErrs,
	}
	l.mu.Lock()
	l.src[path] = pkg
	l.mu.Unlock()
	return pkg, nil
}

// forget clears a failed load's cycle marker so a later retry does not
// report a phantom cycle.
func (l *Loader) forget(path string) {
	l.mu.Lock()
	delete(l.src, path)
	l.mu.Unlock()
}
