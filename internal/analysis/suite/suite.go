// Package suite registers the cdbcheck analyzers. cmd/cdbcheck runs
// exactly this list; adding an analyzer here wires it into both the
// standalone and the go vet -vettool modes.
package suite

import (
	"repro/internal/analysis"
	"repro/internal/analysis/cachekey"
	"repro/internal/analysis/interruptpoll"
	"repro/internal/analysis/seededrand"
	"repro/internal/analysis/spanend"
	"repro/internal/analysis/structerr"
)

// All is the cdbcheck analyzer suite, in reporting order.
var All = []*analysis.Analyzer{
	cachekey.Analyzer,
	interruptpoll.Analyzer,
	seededrand.Analyzer,
	spanend.Analyzer,
	structerr.Analyzer,
}
