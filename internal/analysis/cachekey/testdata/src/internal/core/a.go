// Fixture for the cachekey analyzer's fingerprint check: every
// Options field must be reachable from CacheKey, except documented
// exclusions (Interrupt).
package core

import "fmt"

type Options struct {
	Gamma     float64
	Steps     int
	Missing   int          // want `Options.Missing is not folded into the CacheKey fingerprint`
	Interrupt func() error // exempt: per-call state, deliberately outside the fingerprint
}

func (o Options) CacheKey() string {
	return fmt.Sprintf("v1|%g|%d", o.Gamma, o.steps())
}

// steps proves indirect field references through same-package helpers
// count.
func (o Options) steps() int {
	if o.Steps == 0 {
		return 100
	}
	return o.Steps
}
