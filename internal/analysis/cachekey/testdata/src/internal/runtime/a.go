// Fixture for the cachekey analyzer: a stand-in for the real runtime
// cache surface (same type/constructor names, same path suffix) plus
// call sites exercising every key-shape classification.
package runtime

import "fmt"

// Cache mimics runtime.Cache's keyed surface.
type Cache[V any] struct{}

func (c *Cache[V]) Get(key string, build func() (V, error)) (V, error) {
	var zero V
	return zero, nil
}

func (c *Cache[V]) Peek(key string) (V, bool) {
	var zero V
	return zero, false
}

// SamplerKey mimics the canonical key constructor (the fmt call inside
// a constructor is the one sanctioned place to format a key).
func SamplerKey(dim int, walk string) string {
	return fmt.Sprintf("sampler|%d|%s", dim, walk)
}

func build() (int, error) { return 0, nil }

func lookups(c *Cache[int], dim int) {
	c.Get(SamplerKey(dim, "ball"), build)
	c.Get("sampler|7|ball", build)     // want `cache key is a raw string literal`
	c.Get("sampler|"+"ball", build)    // want `cache key is an ad-hoc string concatenation`
	c.Get(fmt.Sprint("k", dim), build) // want `cache key is fmt-formatted`

	k := fmt.Sprintf("plan|%d", dim)
	c.Peek(k) // want `cache key is fmt-formatted`

	canon := SamplerKey(dim, "walk")
	c.Peek(canon)
}

// passthrough keys are trusted: the producing site is checked where it
// builds the key.
func passthrough(c *Cache[int], key string) (int, bool) {
	return c.Peek(key)
}

// unrelated Get calls (not on a runtime Cache) are never flagged.
type bag struct{}

func (bag) Get(key string) string { return key }

func other(b bag) string {
	return b.Get("raw is fine here")
}
