// Fixture for the cachekey analyzer: an Options type with no CacheKey
// method at all is itself a violation.
package core

type Options struct { // want `Options has no CacheKey fingerprint method`
	Gamma float64
}
