// Package cachekey enforces the canonical-key invariant behind every
// warm-path speedup since PR 1: entries of the runtime caches are
// keyed only by the canonical key constructors (SamplerKey, PlanKey,
// SymbolicKey, SliceKey, WindowKey, AlibiKey), never by raw strings —
// two surfaces that hash the same work must share one cache entry, and
// an ad-hoc key silently forks the cache (PR 4/9).
//
// It additionally checks the fingerprint side of the invariant inside
// internal/core: every field of core.Options must be reachable from
// Options.CacheKey (directly or through same-package helpers), except
// the documented per-call exclusions (Interrupt). The reflection test
// in internal/runtime checks the same property at the value level;
// this check anchors it to the field declaration at compile time.
package cachekey

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the cachekey invariant check.
var Analyzer = &analysis.Analyzer{
	Name: "cachekey",
	Doc:  "runtime cache entries must use canonical key constructors and a complete Options fingerprint (PR 1/4/9 cache invariants)",
	Run:  run,
}

// canonical are the key constructors of internal/runtime. PrepSeedFor
// is included because a key derived from a canonical key stays
// canonical.
var canonical = map[string]bool{
	"SamplerKey":  true,
	"PlanKey":     true,
	"SymbolicKey": true,
	"SliceKey":    true,
	"WindowKey":   true,
	"AlibiKey":    true,
}

// fingerprintExempt are core.Options fields deliberately excluded from
// CacheKey. Interrupt is per-call state: baking a request's context
// into shared prepared geometry would poison the cache (see the
// Options doc in internal/core). Mirror any change here in the
// TestOptionsFingerprintComplete exclusion list in internal/runtime.
var fingerprintExempt = map[string]bool{
	"Interrupt": true,
}

func run(pass *analysis.Pass) error {
	checkGetKeys(pass)
	if analysis.PathEndsIn(pass.Pkg.Path(), "internal/core") {
		checkFingerprint(pass)
	}
	return nil
}

// checkGetKeys flags Cache.Get/Peek calls whose key argument is built
// ad hoc (string literal, concatenation, fmt formatting) instead of
// flowing from a canonical key constructor.
func checkGetKeys(pass *analysis.Pass) {
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			assigns := localAssignments(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isCacheKeyedCall(pass, call) || len(call.Args) == 0 {
					return true
				}
				if reason := suspicious(pass, call.Args[0], assigns, 0); reason != "" {
					pass.Reportf(call.Args[0].Pos(), "cache key is %s: build it with a canonical key constructor (SamplerKey/PlanKey/SymbolicKey/SliceKey/WindowKey/AlibiKey)", reason)
				}
				return true
			})
			return true
		})
	}
}

// isCacheKeyedCall reports whether call is Get or Peek on a
// runtime.Cache value.
func isCacheKeyedCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if name := sel.Sel.Name; name != "Get" && name != "Peek" {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	return ok && analysis.NamedIn(tv.Type, "Cache", "internal/runtime")
}

// localAssignments maps each local variable object to the expressions
// assigned to it anywhere in the function body. Multi-value
// assignments from a single call are skipped: a call producer is
// trusted (its own body is checked where it builds the key).
func localAssignments(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object][]ast.Expr {
	assigns := map[types.Object][]ast.Expr{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj != nil {
				assigns[obj] = append(assigns[obj], as.Rhs[i])
			}
		}
		return true
	})
	return assigns
}

// suspicious classifies a key expression; it returns a non-empty
// human-readable reason when the expression is an ad-hoc key. Local
// variables are traced one level through their assignments; anything
// that is a call (other than fmt formatting), a parameter or a field
// is trusted — the producing site is itself checked where it builds
// the key.
func suspicious(pass *analysis.Pass, e ast.Expr, assigns map[types.Object][]ast.Expr, depth int) string {
	if depth > 4 {
		return ""
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		if e.Kind == token.STRING {
			return "a raw string literal"
		}
	case *ast.BinaryExpr:
		if e.Op == token.ADD {
			return "an ad-hoc string concatenation"
		}
	case *ast.CallExpr:
		if canonical[analysis.CalleeName(e)] {
			return "" // a canonical constructor: exactly what the invariant wants
		}
		callee := analysis.StaticCallee(pass.TypesInfo, e)
		if callee != nil && callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
			return "fmt-formatted"
		}
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		if obj == nil {
			return ""
		}
		for _, rhs := range assigns[obj] {
			if reason := suspicious(pass, rhs, assigns, depth+1); reason != "" {
				return reason
			}
		}
	}
	return ""
}

// checkFingerprint verifies, inside internal/core, that every field of
// the Options struct is referenced from Options.CacheKey — directly or
// through same-package functions it calls.
func checkFingerprint(pass *analysis.Pass) {
	files := pass.SourceFiles()

	// Locate the Options named type and its struct fields.
	optObj := pass.Pkg.Scope().Lookup("Options")
	if optObj == nil {
		return
	}
	optNamed, ok := optObj.Type().(*types.Named)
	if !ok {
		return
	}
	optStruct, ok := optNamed.Underlying().(*types.Struct)
	if !ok {
		return
	}

	decls := map[*types.Func]*ast.FuncDecl{}
	var cacheKey *types.Func
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[obj] = fd
			if fd.Name.Name == "CacheKey" && fd.Recv != nil && receiverIs(pass, fd, optNamed) {
				cacheKey = obj
			}
		}
	}
	if cacheKey == nil {
		pass.Reportf(optObj.Pos(), "Options has no CacheKey fingerprint method")
		return
	}

	// Collect Options fields referenced from CacheKey's call closure.
	referenced := map[string]bool{}
	seen := map[*types.Func]bool{}
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		if seen[fn] {
			return
		}
		seen[fn] = true
		fd := decls[fn]
		if fd == nil {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				tv, ok := pass.TypesInfo.Types[n.X]
				if ok && analysis.NamedIn(tv.Type, optObj.Name(), "internal/core") {
					referenced[n.Sel.Name] = true
				}
			case *ast.CallExpr:
				if callee := analysis.StaticCallee(pass.TypesInfo, n); callee != nil && callee.Origin().Pkg() == pass.Pkg {
					visit(callee.Origin())
				}
			}
			return true
		})
	}
	visit(cacheKey)

	for i := 0; i < optStruct.NumFields(); i++ {
		field := optStruct.Field(i)
		if fingerprintExempt[field.Name()] || referenced[field.Name()] {
			continue
		}
		pass.Reportf(field.Pos(), "Options.%s is not folded into the CacheKey fingerprint: add it to CacheKey (or to the documented exclusion lists in cachekey and TestOptionsFingerprintComplete)", field.Name())
	}
}

// receiverIs reports whether fd's receiver type is the named type (by
// identity, through pointers).
func receiverIs(pass *analysis.Pass, fd *ast.FuncDecl, named *types.Named) bool {
	if len(fd.Recv.List) != 1 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[fd.Recv.List[0].Type]
	if !ok {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Origin().Obj() == named.Origin().Obj()
}
