package cachekey

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

func TestCacheKey(t *testing.T) {
	analysistest.Run(t, Analyzer, "internal/runtime", "internal/core", "missingkey/internal/core")
}
