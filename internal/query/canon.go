package query

// Plan canonicalization: the rewrite pass that turns a freshly compiled
// Plan into a normal form with a stable fingerprint. Structurally equal
// expressions — however they were built (operand order of unions and
// intersections, nested vs flat projections, duplicated atoms) — reach
// the same canonical plan and therefore the same cache key, so every
// surface of the system (cdb.Expr, the HTTP /v1/expr endpoint, named
// queries through the DB handle) shares one prepared-sampler entry per
// distinct geometry.
//
// The pass applies, per disjunct: atom normalization (unit ∞-norm
// coefficients), trivial-atom elimination, duplicate-atom removal,
// lexicographic atom sorting (commutative-conjunct canonicalization) and
// LP-feasibility pruning; then across disjuncts: duplicate removal
// (union idempotence) and lexicographic sorting (commutative-operand
// canonicalization). The key hashes the sorted renders, so it is a pure
// function of the denoted geometry's normal form — column names are
// deliberately excluded (coordinates are positional).

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/constraint"
	"repro/internal/linalg"
	"repro/internal/polytope"
)

// CanonicalPlan couples a normalized executable plan with its stable
// fingerprint.
type CanonicalPlan struct {
	// Plan is the normalized plan: sorted, deduplicated, LP-pruned. It
	// is what executors should run — two expressions with equal Keys
	// execute byte-identical plans.
	Plan *Plan
	// Key is the canonical fingerprint: equal for structurally equal
	// expressions regardless of construction order.
	Key string

	disjunctRenders []string
}

// Canonicalize rewrites the plan into its normal form and fingerprints
// it. The input plan is not modified.
func Canonicalize(p *Plan) *CanonicalPlan {
	type cd struct {
		render string
		d      PlanDisjunct
	}
	var cds []cd
	seen := map[string]bool{}
	for _, d := range p.Disjuncts {
		nd, render, ok := canonicalDisjunct(d)
		if !ok || seen[render] {
			continue // LP-infeasible, trivially empty, or a duplicate disjunct
		}
		seen[render] = true
		cds = append(cds, cd{render: render, d: nd})
	}
	sort.Slice(cds, func(i, j int) bool { return cds[i].render < cds[j].render })
	cp := &CanonicalPlan{Plan: &Plan{OutVars: append([]string(nil), p.OutVars...)}}
	for _, c := range cds {
		cp.Plan.Disjuncts = append(cp.Plan.Disjuncts, c.d)
		cp.disjunctRenders = append(cp.disjunctRenders, c.render)
	}
	cp.Key = keyFor(len(p.OutVars), cp.disjunctRenders)
	return cp
}

// keyFor hashes the output arity plus the sorted disjunct renders into
// the canonical fingerprint.
func keyFor(arity int, renders []string) string {
	h := sha256.New()
	fmt.Fprintf(h, "v1|out=%d", arity)
	for _, r := range renders {
		h.Write([]byte{0x1e})
		h.Write([]byte(r))
	}
	return "cplan:" + hex.EncodeToString(h.Sum(nil))[:32]
}

// canonicalDisjunct normalizes one disjunct: rows scaled to unit ∞-norm,
// trivial rows resolved, duplicates dropped, existential coordinates
// relabeled to a canonical order, rows sorted; ok is false when the
// disjunct is provably empty (a trivially false row, or LP infeasibility
// of the normalized system).
func canonicalDisjunct(d PlanDisjunct) (PlanDisjunct, string, bool) {
	type row struct {
		render string
		coef   linalg.Vector
		b      float64
	}
	var rows []row
	seen := map[string]bool{}
	for i := range d.Poly.A {
		a := constraint.Atom{Coef: d.Poly.A[i], B: d.Poly.B[i]}.Normalize()
		if trivial, sat := a.IsTrivial(); trivial {
			if !sat {
				return PlanDisjunct{}, "", false
			}
			continue
		}
		r := renderRow(a.Coef, a.B)
		if seen[r] {
			continue
		}
		seen[r] = true
		rows = append(rows, row{render: r, coef: a.Coef, b: a.B})
	}
	// Existential coordinates are interchangeable up to renaming: the
	// plan pipeline lays them out in alpha-renamed name order, so two
	// expressions differing only in binder numbering would otherwise
	// reach different renders (and miss each other's cache entries).
	// Relabel them to the canonical (render-minimizing) order before
	// rendering, so the key is invariant under binder numbering.
	if d.ExVars > 1 && len(rows) > 0 {
		nOut := d.Poly.Dim() - d.ExVars
		coefs := make([]linalg.Vector, len(rows))
		bs := make([]float64, len(rows))
		for i, r := range rows {
			coefs[i], bs[i] = r.coef, r.b
		}
		if perm := canonicalExOrder(coefs, bs, nOut, d.ExVars); perm != nil {
			for i := range rows {
				rows[i].coef = permuteEx(rows[i].coef, nOut, perm)
				rows[i].render = renderRow(rows[i].coef, rows[i].b)
			}
		}
	}
	if len(rows) == 0 {
		// No constraints left: the whole space — unbounded, and never
		// produced by a feasible compile; treat as empty for safety.
		return PlanDisjunct{}, "", false
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].render < rows[j].render })
	a := make([]linalg.Vector, len(rows))
	b := make([]float64, len(rows))
	renders := make([]string, len(rows))
	for i, r := range rows {
		a[i], b[i], renders[i] = r.coef, r.b, r.render
	}
	poly := polytope.New(a, b)
	if poly.IsEmpty() {
		return PlanDisjunct{}, "", false
	}
	if d.ExVars == 0 {
		// Flat pruning: a bounded disjunct with zero inner radius is a
		// measure-zero sliver (negated boundary atoms of a difference
		// produce these) — it contributes nothing to sampling or volume
		// and would only fail the well-boundedness check at preparation.
		// Disjuncts with existential coordinates are kept: a flat body
		// can still project to a full-dimensional set. Chebyshev errors
		// (unbounded bodies) keep the disjunct, so unbounded inputs
		// surface ErrNotWellBounded at preparation as before.
		if _, r, err := poly.Chebyshev(); err == nil && r <= 1e-9 {
			return PlanDisjunct{}, "", false
		}
	}
	render := fmt.Sprintf("ex=%d|%s", d.ExVars, strings.Join(renders, ";"))
	return PlanDisjunct{Poly: poly, ExVars: d.ExVars}, render, true
}

// maxExactExPerm bounds the exact (minimum-render) search over
// existential-column orders: up to 6 columns is 720 candidate
// labelings, cheap next to the LP pruning pass that follows. Beyond it
// the signature sort below is used alone — deterministic and invariant
// under binder numbering in all but fully symmetric cases.
const maxExactExPerm = 6

// canonicalExOrder returns the canonical relabeling of the ex trailing
// existential columns: perm[k] is the index (0-based within the ex
// block) of the column to place at position k. The order is a pure
// function of the disjunct's geometry — never of the binder names or
// numbering the plan pipeline happened to assign — computed by exact
// minimization of the sorted row renders for small blocks and by a
// column-signature sort for large ones. A nil return means the
// identity order is already canonical.
func canonicalExOrder(coefs []linalg.Vector, bs []float64, nOut, ex int) []int {
	// Deterministic starting point: sort columns by signature (the
	// sorted multiset of the column's entries paired with each row's
	// out-block render, so symmetric columns collide only when the
	// geometry itself is symmetric in them).
	sigs := make([]string, ex)
	for j := 0; j < ex; j++ {
		rowsSig := make([]string, len(coefs))
		for i, c := range coefs {
			rowsSig[i] = renderFloat(c[nOut+j]) + "@" + renderRow(c[:nOut], bs[i])
		}
		sort.Strings(rowsSig)
		sigs[j] = strings.Join(rowsSig, "|")
	}
	perm := make([]int, ex)
	for j := range perm {
		perm[j] = j
	}
	sort.SliceStable(perm, func(a, b int) bool { return sigs[perm[a]] < sigs[perm[b]] })
	if ex > maxExactExPerm {
		if isIdentity(perm) {
			return nil
		}
		return perm
	}
	// Exact search: among all labelings, keep the one whose sorted row
	// renders are lexicographically least. Ties (symmetric columns)
	// all produce the same render, so any winner is canonical.
	best := append([]int(nil), perm...)
	bestRender := exRender(coefs, bs, nOut, best)
	permutations(ex, func(cand []int) {
		if r := exRender(coefs, bs, nOut, cand); r < bestRender {
			bestRender = r
			copy(best, cand)
		}
	})
	if isIdentity(best) {
		return nil
	}
	return best
}

// exRender renders the rows under one ex-column labeling: sorted row
// renders, joined — the same form keyFor hashes.
func exRender(coefs []linalg.Vector, bs []float64, nOut int, perm []int) string {
	renders := make([]string, len(coefs))
	for i, c := range coefs {
		renders[i] = renderRow(permuteEx(c, nOut, perm), bs[i])
	}
	sort.Strings(renders)
	return strings.Join(renders, ";")
}

// permuteEx returns the row with its existential block reordered:
// position nOut+k receives the column nOut+perm[k].
func permuteEx(coef linalg.Vector, nOut int, perm []int) linalg.Vector {
	out := append(coef[:nOut:nOut], make(linalg.Vector, len(perm))...)
	for k, j := range perm {
		out[nOut+k] = coef[nOut+j]
	}
	return out
}

// permutations calls f with every permutation of 0..n-1 (the slice is
// reused across calls).
func permutations(n int, f func([]int)) {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			f(p)
			return
		}
		for i := k; i < n; i++ {
			p[k], p[i] = p[i], p[k]
			rec(k + 1)
			p[k], p[i] = p[i], p[k]
		}
	}
	rec(0)
}

func isIdentity(perm []int) bool {
	for i, v := range perm {
		if i != v {
			return false
		}
	}
	return true
}

// renderRow renders one normalized constraint row deterministically
// (shortest round-trip decimals; -0 folded into +0).
func renderRow(coef linalg.Vector, b float64) string {
	var sb strings.Builder
	for i, c := range coef {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(renderFloat(c))
	}
	sb.WriteByte('<')
	sb.WriteString(renderFloat(b))
	return sb.String()
}

func renderFloat(v float64) string {
	if v == 0 {
		v = 0 // fold -0 into +0
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Empty reports whether the canonical plan has no feasible disjunct:
// the expression provably denotes the empty set.
func (cp *CanonicalPlan) Empty() bool { return len(cp.Plan.Disjuncts) == 0 }

// NeedsProjection reports whether any disjunct carries existential
// coordinates — such plans need Algorithm 2's projection generator and
// cannot be served from the prepared-sampler cache.
func (cp *CanonicalPlan) NeedsProjection() bool {
	for _, d := range cp.Plan.Disjuncts {
		if d.ExVars > 0 {
			return true
		}
	}
	return false
}

// Relation materialises a quantifier-free canonical plan as a derived
// generalized relation (one tuple per disjunct) ready for sampler
// preparation. It errors on plans that need the projection generator.
func (cp *CanonicalPlan) Relation(name string) (*constraint.Relation, error) {
	if cp.NeedsProjection() {
		return nil, fmt.Errorf("query: plan with existential coordinates has no derived relation")
	}
	tuples := make([]constraint.Tuple, 0, len(cp.Plan.Disjuncts))
	for _, d := range cp.Plan.Disjuncts {
		tuples = append(tuples, d.Poly.Tuple())
	}
	return constraint.NewRelation(name, cp.Plan.OutVars, tuples...)
}

// DisjunctKeys returns the canonical key each disjunct would have as a
// standalone single-disjunct expression — what Explain uses to report
// per-disjunct cache residency.
func (cp *CanonicalPlan) DisjunctKeys() []string {
	keys := make([]string, len(cp.disjunctRenders))
	for i, r := range cp.disjunctRenders {
		keys[i] = keyFor(len(cp.Plan.OutVars), []string{r})
	}
	return keys
}
