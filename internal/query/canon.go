package query

// Plan canonicalization: the rewrite pass that turns a freshly compiled
// Plan into a normal form with a stable fingerprint. Structurally equal
// expressions — however they were built (operand order of unions and
// intersections, nested vs flat projections, duplicated atoms) — reach
// the same canonical plan and therefore the same cache key, so every
// surface of the system (cdb.Expr, the HTTP /v1/expr endpoint, named
// queries through the DB handle) shares one prepared-sampler entry per
// distinct geometry.
//
// The pass applies, per disjunct: atom normalization (unit ∞-norm
// coefficients), trivial-atom elimination, duplicate-atom removal,
// lexicographic atom sorting (commutative-conjunct canonicalization) and
// LP-feasibility pruning; then across disjuncts: duplicate removal
// (union idempotence) and lexicographic sorting (commutative-operand
// canonicalization). The key hashes the sorted renders, so it is a pure
// function of the denoted geometry's normal form — column names are
// deliberately excluded (coordinates are positional).

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/constraint"
	"repro/internal/linalg"
	"repro/internal/polytope"
)

// CanonicalPlan couples a normalized executable plan with its stable
// fingerprint.
type CanonicalPlan struct {
	// Plan is the normalized plan: sorted, deduplicated, LP-pruned. It
	// is what executors should run — two expressions with equal Keys
	// execute byte-identical plans.
	Plan *Plan
	// Key is the canonical fingerprint: equal for structurally equal
	// expressions regardless of construction order.
	Key string

	disjunctRenders []string
}

// Canonicalize rewrites the plan into its normal form and fingerprints
// it. The input plan is not modified.
func Canonicalize(p *Plan) *CanonicalPlan {
	type cd struct {
		render string
		d      PlanDisjunct
	}
	var cds []cd
	seen := map[string]bool{}
	for _, d := range p.Disjuncts {
		nd, render, ok := canonicalDisjunct(d)
		if !ok || seen[render] {
			continue // LP-infeasible, trivially empty, or a duplicate disjunct
		}
		seen[render] = true
		cds = append(cds, cd{render: render, d: nd})
	}
	sort.Slice(cds, func(i, j int) bool { return cds[i].render < cds[j].render })
	cp := &CanonicalPlan{Plan: &Plan{OutVars: append([]string(nil), p.OutVars...)}}
	for _, c := range cds {
		cp.Plan.Disjuncts = append(cp.Plan.Disjuncts, c.d)
		cp.disjunctRenders = append(cp.disjunctRenders, c.render)
	}
	cp.Key = keyFor(len(p.OutVars), cp.disjunctRenders)
	return cp
}

// keyFor hashes the output arity plus the sorted disjunct renders into
// the canonical fingerprint.
func keyFor(arity int, renders []string) string {
	h := sha256.New()
	fmt.Fprintf(h, "v1|out=%d", arity)
	for _, r := range renders {
		h.Write([]byte{0x1e})
		h.Write([]byte(r))
	}
	return "cplan:" + hex.EncodeToString(h.Sum(nil))[:32]
}

// canonicalDisjunct normalizes one disjunct: rows scaled to unit ∞-norm,
// trivial rows resolved, duplicates dropped, rows sorted; ok is false
// when the disjunct is provably empty (a trivially false row, or LP
// infeasibility of the normalized system).
func canonicalDisjunct(d PlanDisjunct) (PlanDisjunct, string, bool) {
	type row struct {
		render string
		coef   linalg.Vector
		b      float64
	}
	var rows []row
	seen := map[string]bool{}
	for i := range d.Poly.A {
		a := constraint.Atom{Coef: d.Poly.A[i], B: d.Poly.B[i]}.Normalize()
		if trivial, sat := a.IsTrivial(); trivial {
			if !sat {
				return PlanDisjunct{}, "", false
			}
			continue
		}
		r := renderRow(a.Coef, a.B)
		if seen[r] {
			continue
		}
		seen[r] = true
		rows = append(rows, row{render: r, coef: a.Coef, b: a.B})
	}
	if len(rows) == 0 {
		// No constraints left: the whole space — unbounded, and never
		// produced by a feasible compile; treat as empty for safety.
		return PlanDisjunct{}, "", false
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].render < rows[j].render })
	a := make([]linalg.Vector, len(rows))
	b := make([]float64, len(rows))
	renders := make([]string, len(rows))
	for i, r := range rows {
		a[i], b[i], renders[i] = r.coef, r.b, r.render
	}
	poly := polytope.New(a, b)
	if poly.IsEmpty() {
		return PlanDisjunct{}, "", false
	}
	if d.ExVars == 0 {
		// Flat pruning: a bounded disjunct with zero inner radius is a
		// measure-zero sliver (negated boundary atoms of a difference
		// produce these) — it contributes nothing to sampling or volume
		// and would only fail the well-boundedness check at preparation.
		// Disjuncts with existential coordinates are kept: a flat body
		// can still project to a full-dimensional set. Chebyshev errors
		// (unbounded bodies) keep the disjunct, so unbounded inputs
		// surface ErrNotWellBounded at preparation as before.
		if _, r, err := poly.Chebyshev(); err == nil && r <= 1e-9 {
			return PlanDisjunct{}, "", false
		}
	}
	render := fmt.Sprintf("ex=%d|%s", d.ExVars, strings.Join(renders, ";"))
	return PlanDisjunct{Poly: poly, ExVars: d.ExVars}, render, true
}

// renderRow renders one normalized constraint row deterministically
// (shortest round-trip decimals; -0 folded into +0).
func renderRow(coef linalg.Vector, b float64) string {
	var sb strings.Builder
	for i, c := range coef {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(renderFloat(c))
	}
	sb.WriteByte('<')
	sb.WriteString(renderFloat(b))
	return sb.String()
}

func renderFloat(v float64) string {
	if v == 0 {
		v = 0 // fold -0 into +0
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Empty reports whether the canonical plan has no feasible disjunct:
// the expression provably denotes the empty set.
func (cp *CanonicalPlan) Empty() bool { return len(cp.Plan.Disjuncts) == 0 }

// NeedsProjection reports whether any disjunct carries existential
// coordinates — such plans need Algorithm 2's projection generator and
// cannot be served from the prepared-sampler cache.
func (cp *CanonicalPlan) NeedsProjection() bool {
	for _, d := range cp.Plan.Disjuncts {
		if d.ExVars > 0 {
			return true
		}
	}
	return false
}

// Relation materialises a quantifier-free canonical plan as a derived
// generalized relation (one tuple per disjunct) ready for sampler
// preparation. It errors on plans that need the projection generator.
func (cp *CanonicalPlan) Relation(name string) (*constraint.Relation, error) {
	if cp.NeedsProjection() {
		return nil, fmt.Errorf("query: plan with existential coordinates has no derived relation")
	}
	tuples := make([]constraint.Tuple, 0, len(cp.Plan.Disjuncts))
	for _, d := range cp.Plan.Disjuncts {
		tuples = append(tuples, d.Poly.Tuple())
	}
	return constraint.NewRelation(name, cp.Plan.OutVars, tuples...)
}

// DisjunctKeys returns the canonical key each disjunct would have as a
// standalone single-disjunct expression — what Explain uses to report
// per-disjunct cache residency.
func (cp *CanonicalPlan) DisjunctKeys() []string {
	keys := make([]string, len(cp.disjunctRenders))
	for i, r := range cp.disjunctRenders {
		keys[i] = keyFor(len(cp.Plan.OutVars), []string{r})
	}
	return keys
}
