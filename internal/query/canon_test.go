package query

// White-box tests of the algebra compiler (Node → Plan) and the
// canonicalization pass: operand-order invariance, idempotent unions,
// duplicate-atom removal, LP and flat pruning, capture-avoiding
// renames and constant substitution.

import (
	"errors"
	"testing"

	"repro/internal/constraint"
)

func mustParseCanon(t *testing.T, src string) *constraint.Database {
	t.Helper()
	db, err := constraint.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func canonKey(t *testing.T, db *constraint.Database, n *Node) string {
	t.Helper()
	plan, err := n.Compile(db)
	if err != nil {
		t.Fatal(err)
	}
	return Canonicalize(plan).Key
}

const canonProgram = `
rel A(x, y) := { 0 <= x <= 1, 0 <= y <= 1 };
rel B(x, y) := { 0.5 <= x <= 2, 0 <= y <= 1 };
rel C(x, y) := { 3 <= x <= 4, 0 <= y <= 1 };
`

// TestCanonicalKeyOperandOrder: commutative operands reach one key.
func TestCanonicalKeyOperandOrder(t *testing.T) {
	db := mustParseCanon(t, canonProgram)
	a, b, c := NewRel("A"), NewRel("B"), NewRel("C")

	if k1, k2 := canonKey(t, db, a.Intersect(b)), canonKey(t, db, b.Intersect(a)); k1 != k2 {
		t.Fatalf("intersect order changed the key:\n%s\n%s", k1, k2)
	}
	if k1, k2 := canonKey(t, db, a.Union(c)), canonKey(t, db, c.Union(a)); k1 != k2 {
		t.Fatalf("union order changed the key:\n%s\n%s", k1, k2)
	}
	k1 := canonKey(t, db, NewRel("A").Union(NewRel("C")).Intersect(NewRel("B")))
	k2 := canonKey(t, db, NewRel("B").Intersect(NewRel("C").Union(NewRel("A"))))
	if k1 != k2 {
		t.Fatalf("nested construction order changed the key:\n%s\n%s", k1, k2)
	}
	// Note (A ∪ C) ∩ B canonicalizes to A ∩ B: the C ∩ B disjunct is
	// LP-infeasible and pruned, so the keys coincide — semantically
	// equal expressions converge even across different shapes.
	if k1 != canonKey(t, db, a.Intersect(b)) {
		t.Fatal("(A ∪ C) ∩ B should prune to A ∩ B's key")
	}
	// Genuinely distinct geometry must not collide.
	if canonKey(t, db, a.Union(b)) == canonKey(t, db, a.Union(c)) {
		t.Fatal("distinct expressions share a key")
	}
}

// TestCanonicalUnionIdempotence: A ∪ A canonicalizes to A's single
// disjunct and A's key.
func TestCanonicalUnionIdempotence(t *testing.T) {
	db := mustParseCanon(t, canonProgram)
	plan, err := NewRel("A").Union(NewRel("A")).Compile(db)
	if err != nil {
		t.Fatal(err)
	}
	cp := Canonicalize(plan)
	if len(cp.Plan.Disjuncts) != 1 {
		t.Fatalf("A ∪ A has %d canonical disjuncts, want 1", len(cp.Plan.Disjuncts))
	}
	if cp.Key != canonKey(t, db, NewRel("A")) {
		t.Fatal("A ∪ A and A have different keys")
	}
}

// TestCanonicalDuplicateAtoms: repeating a selection produces the same
// key (duplicate rows collapse).
func TestCanonicalDuplicateAtoms(t *testing.T) {
	db := mustParseCanon(t, canonProgram)
	half := constraint.NewAtom([]float64{1, 0}, 0.5, false)
	k1 := canonKey(t, db, NewRel("A").Where(half))
	k2 := canonKey(t, db, NewRel("A").Where(half, half).Where(half))
	if k1 != k2 {
		t.Fatalf("duplicate atoms changed the key:\n%s\n%s", k1, k2)
	}
	// Scaled duplicates collapse too (rows normalize to unit ∞-norm).
	double := constraint.NewAtom([]float64{2, 0}, 1, false)
	if k1 != canonKey(t, db, NewRel("A").Where(double)) {
		t.Fatal("scaled duplicate atom changed the key")
	}
}

// TestCanonicalPruning: LP-infeasible and measure-zero disjuncts drop;
// a fully infeasible expression reports Empty.
func TestCanonicalPruning(t *testing.T) {
	db := mustParseCanon(t, canonProgram)
	plan, err := NewRel("A").Intersect(NewRel("C")).Compile(db)
	if err != nil {
		t.Fatal(err)
	}
	cp := Canonicalize(plan)
	if !cp.Empty() {
		t.Fatalf("A ∩ C should be empty, got %d disjuncts", len(cp.Plan.Disjuncts))
	}

	// A \ B: the negated boundary atoms produce flat slivers that must
	// be pruned, leaving the single full-dimensional piece [0,0.5)×[0,1].
	plan, err = NewRel("A").Minus(NewRel("B")).Compile(db)
	if err != nil {
		t.Fatal(err)
	}
	cp = Canonicalize(plan)
	if len(cp.Plan.Disjuncts) != 1 {
		t.Fatalf("A \\ B canonicalizes to %d disjuncts, want 1", len(cp.Plan.Disjuncts))
	}
}

// TestCompileProjectAndColumns: Project reorders and drops columns;
// nested projections collapse into one existential block.
func TestCompileProjectAndColumns(t *testing.T) {
	db := mustParseCanon(t, canonProgram)
	plan, err := NewRel("A").Project("y").Compile(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.OutVars) != 1 || plan.OutVars[0] != "y" {
		t.Fatalf("OutVars = %v, want [y]", plan.OutVars)
	}
	if len(plan.Disjuncts) != 1 || plan.Disjuncts[0].ExVars != 1 {
		t.Fatalf("disjuncts = %+v, want one with 1 existential coordinate", plan.Disjuncts)
	}
	// Reorder-only projection stays quantifier-free.
	plan, err = NewRel("A").Project("y", "x").Compile(db)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Disjuncts[0].ExVars != 0 {
		t.Fatal("reorder-only projection introduced existential coordinates")
	}
	if _, err := NewRel("A").Project("z").Compile(db); err == nil {
		t.Fatal("projecting an unknown column must fail")
	}
	if _, err := NewRel("A").Project("x", "x").Compile(db); err == nil {
		t.Fatal("repeated projection column must fail")
	}
}

// TestCompileRenameCaptureAvoidance: a binary operand whose columns are
// renamed onto the left's must not let the rename be captured by an
// inner binder of the same name.
func TestCompileRenameCaptureAvoidance(t *testing.T) {
	db := mustParseCanon(t, `
rel A(x, y)  := { 0 <= x <= 1, 0 <= y <= 1 };
rel P(u, v)  := { 0 <= u <= 1, 0 <= v <= 1 };
query R(u, y) := exists x. (P(u, x) & P(x, y) & u <= 1/2);
`)
	// Left columns are (x, y); right is the query R(u, y) whose body
	// binds x. Renaming u → x must freshen R's binder, not capture it.
	plan, err := NewRel("A").Intersect(NewRel("R")).Compile(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Disjuncts) != 1 {
		t.Fatalf("%d disjuncts, want 1", len(plan.Disjuncts))
	}
	d := plan.Disjuncts[0]
	if d.ExVars != 1 {
		t.Fatalf("ExVars = %d, want 1 (the renamed binder)", d.ExVars)
	}
	// Output x inherits R's u <= 1/2 bound: no feasible point has x > 0.5.
	p := d.Poly
	if p.Contains([]float64{0.9, 0.5, 0.5}) {
		t.Fatal("rename was captured: x > 1/2 should be infeasible")
	}
	if !p.Contains([]float64{0.3, 0.5, 0.4}) {
		t.Fatal("feasible point rejected")
	}
}

// TestCompileTimeSlice: substitution fixes the time column, drops it
// from the frame and respects binder shadowing.
func TestCompileTimeSlice(t *testing.T) {
	db := mustParseCanon(t, `
rel M(x, t) := { 0 <= x <= 2, 0 <= t <= 10, x <= t };
rel N(a, b) := { 0 <= a <= 1, 0 <= b <= 1 };
`)
	plan, err := NewRel("M").TimeSlice(1).Compile(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.OutVars) != 1 || plan.OutVars[0] != "x" {
		t.Fatalf("OutVars = %v, want [x]", plan.OutVars)
	}
	d := plan.Disjuncts[0]
	if d.Poly.Dim() != 1 {
		t.Fatalf("slice dimension %d, want 1", d.Poly.Dim())
	}
	if !d.Poly.Contains([]float64{0.5}) || d.Poly.Contains([]float64{1.5}) {
		t.Fatal("slice at t=1 should be exactly [0, 1] in x")
	}
	// No column named "t": the last column is the time axis.
	plan, err = NewRel("N").TimeSlice(0.5).Compile(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.OutVars) != 1 || plan.OutVars[0] != "a" {
		t.Fatalf("OutVars = %v, want [a]", plan.OutVars)
	}
}

// TestCompileErrors: unknown targets, arity mismatches, Where arity and
// Minus over a projection are all rejected.
func TestCompileErrors(t *testing.T) {
	db := mustParseCanon(t, `
rel A(x, y) := { 0 <= x <= 1, 0 <= y <= 1 };
rel D(x)    := { 0 <= x <= 1 };
query Q(x)  := exists y. A(x, y);
`)
	if _, err := NewRel("nope").Compile(db); !errors.Is(err, ErrUnknownTarget) {
		t.Fatalf("unknown target error = %v, want ErrUnknownTarget", err)
	}
	if _, err := NewRel("A").Union(NewRel("D")).Compile(db); err == nil {
		t.Fatal("arity mismatch must fail")
	}
	if _, err := NewRel("A").Where(constraint.NewAtom([]float64{1}, 0, false)).Compile(db); err == nil {
		t.Fatal("Where atom arity mismatch must fail")
	}
	if _, err := NewRel("D").Minus(NewRel("Q")).Compile(db); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("Minus over a projection = %v, want ErrUnsupported", err)
	}
}

// TestRelationFromCanonicalPlan: quantifier-free canonical plans
// materialise as derived relations; projection plans refuse.
func TestRelationFromCanonicalPlan(t *testing.T) {
	db := mustParseCanon(t, canonProgram)
	plan, err := NewRel("A").Intersect(NewRel("B")).Compile(db)
	if err != nil {
		t.Fatal(err)
	}
	cp := Canonicalize(plan)
	rel, err := cp.Relation("derived")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Arity() != 2 || len(rel.Tuples) != 1 {
		t.Fatalf("derived relation %d-ary with %d tuples, want 2/1", rel.Arity(), len(rel.Tuples))
	}
	if !rel.Contains([]float64{0.7, 0.5}) || rel.Contains([]float64{0.2, 0.5}) {
		t.Fatal("derived relation has the wrong geometry")
	}

	proj, err := NewRel("A").Project("x").Compile(db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Canonicalize(proj).Relation("derived"); err == nil {
		t.Fatal("projection plan must not materialise as a relation")
	}
	keys := Canonicalize(plan).DisjunctKeys()
	if len(keys) != 1 || keys[0] == cp.Key {
		// A single-disjunct plan's standalone disjunct key IS the plan key.
		if len(keys) != 1 {
			t.Fatalf("DisjunctKeys = %v", keys)
		}
	}
	if keys[0] != cp.Key {
		t.Fatal("single-disjunct plan should equal its disjunct's standalone key")
	}
}

// TestCanonicalExistentialBinderOrder: the canonical key is invariant
// under existential-binder numbering. Both pairs below denote the same
// set but assign alpha-rename counters to the binders in opposite
// orders, so before the graph-canonical labeling of existential
// coordinates their trailing-column layouts — and therefore their
// keys — differed.
func TestCanonicalExistentialBinderOrder(t *testing.T) {
	db := mustParseCanon(t, `
rel P(x, u) := { 0 <= x <= 1, 0 <= u <= 1, u - x <= 0.5 };
rel Q(x, v) := { 0 <= x <= 1, 2 <= v <= 5, x + v <= 5.5 };
query C1(x) := (exists y. P(x, y)) & (exists y. Q(x, y));
query C2(x) := (exists y. Q(x, y)) & (exists y. P(x, y));
`)
	// Named queries with swapped conjunct order: the alpha renamer
	// numbers the first conjunct's binder y!1 and the second's y!2, so
	// C1 carries P's constraints on the first existential coordinate
	// while C2 carries Q's.
	k1, k2 := canonKey(t, db, NewRel("C1")), canonKey(t, db, NewRel("C2"))
	if k1 != k2 {
		t.Fatalf("binder numbering changed the key:\n%s\n%s", k1, k2)
	}

	// The same through the algebra surface: intersecting two projections
	// numbers the binders in operand order.
	pp := NewRel("P").Project("x")
	pq := NewRel("Q").Project("x")
	e1, e2 := canonKey(t, db, pp.Intersect(pq)), canonKey(t, db, pq.Intersect(pp))
	if e1 != e2 {
		t.Fatalf("projection intersect order changed the key:\n%s\n%s", e1, e2)
	}
	if e1 != k1 {
		t.Fatalf("algebra and formula forms of the same set diverged:\n%s\n%s", e1, k1)
	}
}

// TestCanonicalExOrderPreservesSet: relabeling existential columns must
// not change the denoted set — the permuted disjunct still projects to
// the same output geometry.
func TestCanonicalExOrderPreservesSet(t *testing.T) {
	db := mustParseCanon(t, `
rel P(x, u) := { 0 <= x <= 1, 0 <= u <= 1, u - x <= 0.5 };
rel Q(x, v) := { 0 <= x <= 1, 2 <= v <= 5, x + v <= 5.5 };
query C1(x) := (exists y. P(x, y)) & (exists y. Q(x, y));
`)
	plan, err := NewRel("C1").Compile(db)
	if err != nil {
		t.Fatal(err)
	}
	cp := Canonicalize(plan)
	if len(cp.Plan.Disjuncts) != 1 {
		t.Fatalf("want 1 disjunct, got %d", len(cp.Plan.Disjuncts))
	}
	d := cp.Plan.Disjuncts[0]
	if d.ExVars != 2 {
		t.Fatalf("want 2 existential coordinates, got %d", d.ExVars)
	}
	// Eliminate the existential coordinates symbolically: the projected
	// relation must be x ∈ [0, 1] regardless of the column labeling
	// (P's u admits any x in [0,1]; Q's v likewise since x+2 <= 5.5).
	rel, err := cp.EvalSymbolic("t")
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0.01, 0.5, 0.99} {
		if !rel.Contains([]float64{x}) {
			t.Fatalf("projected set lost x=%g after relabeling", x)
		}
	}
	for _, x := range []float64{-0.1, 1.1} {
		if rel.Contains([]float64{x}) {
			t.Fatalf("projected set gained x=%g after relabeling", x)
		}
	}
}
