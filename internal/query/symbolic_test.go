package query

import (
	"math"
	"strings"
	"testing"

	"repro/internal/constraint"
	"repro/internal/linalg"
)

// TestTimeSliceOverflowEmpty: a slice time large enough to overflow the
// folded bound (coef·t0 = +Inf) makes the atom unsatisfiable — the
// provably empty slice must stay empty, not become the whole space.
// (Regression: substConst mapped every degenerate fold to b = +Inf,
// i.e. trivially true.)
func TestTimeSliceOverflowEmpty(t *testing.T) {
	db := mustParse(t, `rel R(x, t) := { 0 <= x <= 1, 0 <= t, x + 1e10 t <= 1 };`)
	plan, err := NewRel("R").TimeSlice(1e308).Compile(db)
	if err != nil {
		t.Fatal(err)
	}
	if cp := Canonicalize(plan); !cp.Empty() {
		t.Fatalf("slice at t0=1e308 must be provably empty, got %d disjunct(s): %s",
			len(cp.Plan.Disjuncts), cp.Plan.Describe())
	}
	// The mirrored overflow (-Inf fold on the lower-bound side via a
	// negative coefficient) keeps the trivially-true contract: the atom
	// x - 1e10 t <= 1 is vacuous at huge t, so the slice is [0, 1].
	db2 := mustParse(t, `rel R2(x, t) := { 0 <= x <= 1, 0 <= t, x - 1e10 t <= 1 };`)
	plan2, err := NewRel("R2").TimeSlice(1e308).Compile(db2)
	if err != nil {
		t.Fatal(err)
	}
	if cp := Canonicalize(plan2); cp.Empty() {
		t.Fatal("vacuous overflowed atom must not empty the slice")
	}
	// Slicing at t = NaN denotes the empty set (every comparison with
	// NaN is false), not the full cylinder.
	plan3, err := NewRel("R").TimeSlice(math.NaN()).Compile(db)
	if err != nil {
		t.Fatal(err)
	}
	if cp := Canonicalize(plan3); !cp.Empty() {
		t.Fatalf("slice at t0=NaN must be provably empty: %s", cp.Plan.Describe())
	}
}

// TestDivCompilesToUniversal: Div lowers to ∀y (o(y) → n(x, y)) — the
// sampling pipeline rejects it, the symbolic pipeline accepts it.
func TestDivCompilesToUniversal(t *testing.T) {
	db := mustParse(t, `
		rel N(x, y) := { 0 <= x <= 3, 0 <= y <= 1, x + y <= 3 };
		rel O(y)    := { 0 <= y <= 1 };
	`)
	node := NewRel("N").Div(NewRel("O"))
	if _, err := node.Compile(db); err == nil {
		t.Fatal("sampling compile of Div must be rejected (universal quantifier)")
	}
	sq, err := node.CompileSymbolic(db)
	if err != nil {
		t.Fatal(err)
	}
	if sq.InFragment() {
		t.Error("Div expression reported in the sampling fragment")
	}
	if got := sq.OutVars; len(got) != 1 || got[0] != "x" {
		t.Fatalf("OutVars = %v, want [x]", got)
	}
	if !strings.Contains(sq.Formula().String(), "forall") {
		t.Errorf("formula %q lacks the universal quantifier", sq.Formula())
	}
	rel, err := sq.Eval()
	if err != nil {
		t.Fatal(err)
	}
	// ∀y∈[0,1]: x+y <= 3 ⇒ x <= 2; result [0, 2].
	for _, c := range []struct {
		x  float64
		in bool
	}{{-0.5, false}, {0, true}, {1.9, true}, {2, true}, {2.1, false}, {3, false}} {
		if rel.Contains(linalg.Vector{c.x}) != c.in {
			t.Errorf("N ÷ O at x=%g: contains = %v, want %v (rel %s)", c.x, !c.in, c.in, rel)
		}
	}
}

// TestDivArityValidation: the divisor's arity must be positive and
// strictly below the dividend's.
func TestDivArityValidation(t *testing.T) {
	db := mustParse(t, `
		rel N(x, y) := { 0 <= x <= 1, 0 <= y <= 1 };
		rel O(x, y) := { 0 <= x <= 1, 0 <= y <= 1 };
	`)
	if _, err := NewRel("N").Div(NewRel("O")).CompileSymbolic(db); err == nil {
		t.Error("equal-arity Div must be rejected")
	}
}

// TestCompileSymbolicSharesCanonicalKey: in-fragment expressions key
// the symbolic cache by their canonical plan hash, so operand
// permutations share one entry; full-FO expressions get a distinct
// formula-hash key.
func TestCompileSymbolicSharesCanonicalKey(t *testing.T) {
	db := mustParse(t, `
		rel A(x, y) := { 0 <= x <= 1, 0 <= y <= 1 };
		rel B(x, y) := { 0.5 <= x <= 2, 0 <= y <= 1 };
		rel O(y)    := { 0 <= y <= 0.5 };
	`)
	s1, err := NewRel("A").Intersect(NewRel("B")).CompileSymbolic(db)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewRel("B").Intersect(NewRel("A")).CompileSymbolic(db)
	if err != nil {
		t.Fatal(err)
	}
	if !s1.InFragment() || s1.Key != s2.Key {
		t.Errorf("in-fragment symbolic keys differ: %q vs %q", s1.Key, s2.Key)
	}
	cp := Canonicalize(mustCompile(t, NewRel("A").Intersect(NewRel("B")), db))
	if s1.Key != cp.Key {
		t.Errorf("symbolic key %q != canonical plan key %q", s1.Key, cp.Key)
	}
	// A full-FO tree compiled twice yields the same formula-hash key,
	// marked distinctly from canonical plan keys.
	f1, err := NewRel("A").Div(NewRel("O")).CompileSymbolic(db)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := NewRel("A").Div(NewRel("O")).CompileSymbolic(db)
	if err != nil {
		t.Fatal(err)
	}
	if f1.Key != f2.Key {
		t.Errorf("full-FO keys unstable: %q vs %q", f1.Key, f2.Key)
	}
	if !strings.HasPrefix(f1.Key, "fo:") {
		t.Errorf("full-FO key %q should carry the fo: marker", f1.Key)
	}
}

func mustCompile(t *testing.T, n *Node, db *constraint.Database) *Plan {
	t.Helper()
	p, err := n.Compile(db)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestEvalSymbolicMinusOfProjection: the full-FO pipeline — negation
// pushed through ∃ as ¬∃¬ — evaluates R \ π_x(S) correctly, with the
// complement's open boundaries preserved.
func TestEvalSymbolicMinusOfProjection(t *testing.T) {
	db := mustParse(t, `
		rel R(x)    := { 0 <= x <= 4 };
		rel S(x, y) := { 1 <= x <= 2, 0 <= y <= 1 };
	`)
	node := NewRel("R").Minus(NewRel("S").Project("x"))
	if _, err := node.Compile(db); err == nil {
		t.Fatal("sampling compile of Minus-of-projection must be rejected (negated ∃)")
	}
	sq, err := node.CompileSymbolic(db)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := sq.Eval()
	if err != nil {
		t.Fatal(err)
	}
	// [0,4] \ [1,2] = [0,1) ∪ (2,4].
	for _, c := range []struct {
		x  float64
		in bool
	}{{0, true}, {0.9, true}, {1, false}, {1.5, false}, {2, false}, {2.1, true}, {4, true}, {4.1, false}} {
		if rel.Contains(linalg.Vector{c.x}) != c.in {
			t.Errorf("R \\ πx(S) at x=%g: contains = %v, want %v (rel %s)", c.x, !c.in, c.in, rel)
		}
	}
	// The open boundary survives a Source() round-trip.
	if !strings.Contains(rel.Source(), "<") {
		t.Errorf("source %q lost every inequality", rel.Source())
	}
}

// TestCanonicalPlanEvalSymbolic: an in-fragment projection plan
// eliminates its existential coordinates to the exact interval.
func TestCanonicalPlanEvalSymbolic(t *testing.T) {
	db := mustParse(t, `rel S(x, y) := { 0 <= y <= 1, y <= x <= y + 2 };`)
	plan, err := NewRel("S").Project("x").Compile(db)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := Canonicalize(plan).EvalSymbolic("P")
	if err != nil {
		t.Fatal(err)
	}
	if rel.Arity() != 1 {
		t.Fatalf("arity = %d, want 1", rel.Arity())
	}
	// π_x(S) = [0, 3].
	for _, c := range []struct {
		x  float64
		in bool
	}{{-0.1, false}, {0, true}, {1.5, true}, {3, true}, {3.1, false}} {
		if rel.Contains(linalg.Vector{c.x}) != c.in {
			t.Errorf("πx(S) at x=%g: contains = %v, want %v", c.x, !c.in, c.in)
		}
	}
}

// TestDivUnderIntersectNoCapture: composing Div under a binary operator
// whose column renaming targets the quantified variable must not
// capture the quotient's free variable under the ∀ binder. (Regression:
// renameFree's ForAll branch did no shadowing/freshening, so the
// quotient column x was renamed to y and silently bound, turning the
// divisor condition vacuous.)
func TestDivUnderIntersectNoCapture(t *testing.T) {
	db := mustParse(t, `
		rel N(x, y) := { 0 <= x <= 1, 0 <= y <= 1 };
		rel O(y)    := { 0 <= y <= 1 };
		rel M(y)    := { 0 <= y <= 2 };
	`)
	// M(y) ∩ (N ÷ O): the quotient column is named x, M's is named y —
	// the rename x → y must not be captured by ∀y. Correct answer:
	// [0,2] ∩ [0,1] = [0,1].
	sq, err := NewRel("M").Intersect(NewRel("N").Div(NewRel("O"))).CompileSymbolic(db)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := sq.Eval()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		x  float64
		in bool
	}{{0.5, true}, {1, true}, {1.5, false}, {2, false}} {
		if rel.Contains(linalg.Vector{c.x}) != c.in {
			t.Errorf("M ∩ (N ÷ O) at %g: contains = %v, want %v (formula %s, rel %s)",
				c.x, !c.in, c.in, sq.Formula(), rel)
		}
	}
}
